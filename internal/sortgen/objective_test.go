package sortgen

import (
	"math/rand"
	"sort"
	"testing"

	"sortsynth/internal/enum"
)

// TestComposeObjectiveKernelSets pins the objective split: shortest and
// fastest plans share the block cover and merge schedule but inline
// different kernel bodies, and both sort — including inputs with ties.
func TestComposeObjectiveKernelSets(t *testing.T) {
	const n = 13
	short, err := ComposeObjective(n, enum.ObjectiveShortest)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ComposeObjective(n, enum.ObjectiveFastest)
	if err != nil {
		t.Fatal(err)
	}
	if short.Comparators() != fast.Comparators() || len(short.Blocks) != len(fast.Blocks) {
		t.Error("objective changed the block cover or merge schedule")
	}
	ssrc, err := short.GoFile(EmitOptions{Elem: "int"})
	if err != nil {
		t.Fatal(err)
	}
	fsrc, err := fast.GoFile(EmitOptions{Elem: "int"})
	if err != nil {
		t.Fatal(err)
	}
	if ssrc == fsrc {
		t.Error("shortest and fastest sorters emitted identical source; the kernel sets should diverge")
	}

	rng := rand.New(rand.NewSource(7))
	for _, p := range []*Plan{short, fast} {
		sorter := p.Sorter()
		for trial := 0; trial < 200; trial++ {
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Intn(5) // dense ties
			}
			want := append([]int(nil), a...)
			sort.Ints(want)
			sorter(a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("objective %v: mis-sorted at %d", p.Objective, i)
				}
			}
		}
	}
}

// TestComposeDefaultsToFastest pins Compose's choice: the deployment
// default inlines the model-best (fastest) kernels — the bytes the
// endpoint has always served.
func TestComposeDefaultsToFastest(t *testing.T) {
	p, err := Compose(9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Objective != enum.ObjectiveFastest {
		t.Errorf("Compose objective = %v, want fastest", p.Objective)
	}
}

func TestComposeObjectiveRejectsBalanced(t *testing.T) {
	if _, err := ComposeObjective(9, enum.ObjectiveBalanced); err == nil {
		t.Fatal("balanced should be rejected: no frozen kernel set")
	}
}
