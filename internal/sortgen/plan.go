// Package sortgen generates complete sorting libraries from synthesized
// kernels: the deployment story of the paper (§1, §5.3), where the
// n ≤ 5 kernels matter because they sit inside real sorts, not because
// anyone sorts exactly five elements.
//
// The package has two halves:
//
//   - a composer (Compose) that plans a fully branchless sorter for a
//     fixed small n by covering the array with synthesized-kernel blocks
//     and gluing the sorted runs with Batcher odd-even merge layers, and
//     a hybrid introsort (HybridSort) that uses the kernels as ≤ 5-element
//     base cases for arbitrary or dynamic n; and
//   - an emitter (Plan.GoFile) that renders a plan as compilable,
//     gofmt-clean Go source, next to an in-process interpreter
//     (Plan.Sorter) for serving a sorter without a codegen round-trip.
//
// Every plan is certified at composition time: each merge layer is
// exhaustively checked over all (m+1)·(k+1) sorted 0-1 run pairs (the
// 0-1 principle restricted to merge inputs), and the kernel blocks are
// synthesized programs that were verified over all n! permutations and
// the duplicate suite when they entered internal/kernels.
package sortgen

import (
	"fmt"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/kernels"
	"sortsynth/internal/sortnet"
)

// MaxKernelN is the largest block a synthesized kernel covers; beyond it
// the composer merges and the hybrid sorter partitions.
const MaxKernelN = 5

// Block is one kernel application in a plan: the synthesized kernel for
// length N sorts the elements [Lo, Lo+N). Blocks of length ≤ 1 are
// already sorted and cost nothing; a block of length 2 is a single
// compare-and-swap.
type Block struct {
	Lo int
	N  int
}

// Merge is one merge layer: an oblivious comparator schedule (absolute
// element indices) that merges the sorted runs [Lo, Lo+M) and
// [Lo+M, Lo+M+K).
type Merge struct {
	Lo   int
	M, K int
	Ops  []sortnet.CAS
}

// Plan is a branchless sorter for a fixed array length: kernel blocks
// followed by merge layers. The zero-length and length-1 plans are
// valid no-ops.
type Plan struct {
	N      int
	Blocks []Block
	Merges []Merge
	// Objective selects which frozen kernel set the blocks execute and
	// emit: ObjectiveFastest (the model-best picks, Compose's choice)
	// or ObjectiveShortest (the first picks, kernels.FirstPick). It
	// changes the kernel bodies, never the block cover or the merges.
	Objective enum.Objective
}

// Compose plans a branchless sorter for fixed length n using the
// fastest (model-best) kernels — the deployment default: a generated
// sorter exists to be executed, so it inlines the uarch-ranked picks.
// ComposeObjective selects the kernel set explicitly.
func Compose(n int) (*Plan, error) {
	return ComposeObjective(n, enum.ObjectiveFastest)
}

// ComposeObjective plans a branchless sorter for fixed length n with
// the kernel set for obj: fastest (model-best picks) or shortest
// (first picks). Balanced is rejected — sortgen inlines frozen,
// duplicate-verified kernels, and only those two sets are frozen.
//
// The block cutover policy (DESIGN.md §12): cover the array with
// synthesized 5-kernels while more than 7 elements remain, then split
// the tail so no block is smaller than 2 unless n itself is (6 → 3+3,
// 7 → 4+3, 2..5 → one kernel). Runs are then merged pairwise,
// balanced-tree style, with Batcher odd-even merges; every merge layer
// is certified against all sorted 0-1 run pairs before the plan is
// returned.
func ComposeObjective(n int, obj enum.Objective) (*Plan, error) {
	switch obj {
	case enum.ObjectiveShortest, enum.ObjectiveFastest:
	default:
		return nil, fmt.Errorf("sortgen: no frozen kernel set for objective %q (want shortest or fastest)", obj)
	}
	blocks, err := BlocksFor(n)
	if err != nil {
		return nil, err
	}
	p := &Plan{N: n, Blocks: blocks, Objective: obj}

	// Merge adjacent runs pairwise until one run spans the array.
	runs := make([]Block, len(p.Blocks))
	copy(runs, p.Blocks)
	for len(runs) > 1 {
		var next []Block
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				next = append(next, runs[i])
				continue
			}
			a, b := runs[i], runs[i+1]
			m, err := mergeRuns(a.Lo, a.N, b.N)
			if err != nil {
				return nil, err
			}
			p.Merges = append(p.Merges, m)
			next = append(next, Block{Lo: a.Lo, N: a.N + b.N})
		}
		runs = next
	}
	return p, nil
}

// BlocksFor returns the deterministic kernel-block cover for length n
// under the cutover policy, without building (or certifying) the merge
// layers — cheap enough for cache-hit metadata on the serving path.
func BlocksFor(n int) ([]Block, error) {
	if n < 0 {
		return nil, fmt.Errorf("sortgen: invalid length n=%d", n)
	}
	var blocks []Block
	for lo := 0; lo < n; {
		rem := n - lo
		var size int
		switch {
		case rem > 7:
			size = 5
		case rem == 7:
			size = 4
		case rem == 6:
			size = 3
		default: // 1..5
			size = rem
		}
		blocks = append(blocks, Block{Lo: lo, N: size})
		lo += size
	}
	return blocks, nil
}

// mergeRuns builds and certifies the odd-even merge of the adjacent
// sorted runs [lo, lo+m) and [lo+m, lo+m+k).
func mergeRuns(lo, m, k int) (Merge, error) {
	chA := make([]int, m)
	for i := range chA {
		chA[i] = i
	}
	chB := make([]int, k)
	for i := range chB {
		chB[i] = m + i
	}
	rel := sortnet.OddEvenMergeRuns(chA, chB)
	if !sortnet.MergesRuns01(rel, m, k) {
		// Unreachable for a correct generator; certified anyway so a
		// regression in the construction can never ship a wrong sorter.
		return Merge{}, fmt.Errorf("sortgen: generated merge(%d,%d) failed 0-1 certification", m, k)
	}
	ops := make([]sortnet.CAS, len(rel))
	for i, c := range rel {
		ops[i] = sortnet.CAS{I: lo + c.I, J: lo + c.J}
	}
	return Merge{Lo: lo, M: m, K: k, Ops: ops}, nil
}

// Comparators returns the total number of merge-layer compare-and-swaps.
func (p *Plan) Comparators() int {
	total := 0
	for _, m := range p.Merges {
		total += len(m.Ops)
	}
	return total
}

// KernelInstructions returns the total abstract-instruction count of the
// plan's kernel blocks (a length-2 block counts as one comparator's
// worth of work, reported as 0 abstract instructions). Both frozen
// kernel sets are optimal-length, so the count is objective-independent.
func (p *Plan) KernelInstructions() int {
	total := 0
	for _, b := range p.Blocks {
		if prog := p.kernel(b.N); prog != nil {
			total += len(prog.prog)
		}
	}
	return total
}

// MergeOps returns the flattened merge schedule in execution order.
func (p *Plan) MergeOps() []sortnet.CAS {
	ops := make([]sortnet.CAS, 0, p.Comparators())
	for _, m := range p.Merges {
		ops = append(ops, m.Ops...)
	}
	return ops
}

// Sorter returns an in-process sorter executing the plan directly —
// kernel blocks through their compiled Go forms, merge layers as
// compare-and-swap loops — so the service can hand out a working
// sorter without emitting and compiling source. The returned function
// sorts a[:p.N] in place and panics if len(a) < p.N.
func (p *Plan) Sorter() func(a []int) {
	type blockFn struct {
		lo, n int
		fn    func([]int)
	}
	var blocks []blockFn
	for _, b := range p.Blocks {
		if b.N < 2 {
			continue
		}
		fn := sort2
		if b.N > 2 {
			fn = p.kernel(b.N).fn
		}
		blocks = append(blocks, blockFn{lo: b.Lo, n: b.N, fn: fn})
	}
	ops := p.MergeOps()
	n := p.N
	return func(a []int) {
		a = a[:n]
		for _, b := range blocks {
			b.fn(a[b.lo : b.lo+b.n])
		}
		for _, c := range ops {
			if a[c.I] > a[c.J] {
				a[c.I], a[c.J] = a[c.J], a[c.I]
			}
		}
	}
}

// kernelEntry is one synthesized kernel in both forms: the native Go
// function for execution and the abstract program for emission.
type kernelEntry struct {
	fn   func([]int)
	prog isa.Program
	set  *isa.Set
}

// synthKernels caches the registry lookups: the model-best synthesized
// cmov kernels for n = 3, 4, 5 (the "enum" contenders of §5.3) — the
// fastest-objective set.
var synthKernels = func() map[int]kernelEntry {
	ks := make(map[int]kernelEntry, 3)
	for n := 3; n <= MaxKernelN; n++ {
		k, ok := kernels.Lookup("enum", n)
		if !ok {
			panic(fmt.Sprintf("sortgen: no synthesized kernel for n=%d in the registry", n))
		}
		ks[n] = kernelEntry{fn: k.Go, prog: k.Prog, set: k.Set}
	}
	return ks
}()

// firstKernels caches the shortest-objective set: the frozen first
// picks of the sequential search (kernels.FirstPick).
var firstKernels = func() map[int]kernelEntry {
	ks := make(map[int]kernelEntry, 3)
	for n := 3; n <= MaxKernelN; n++ {
		k, ok := kernels.FirstPick(n)
		if !ok {
			panic(fmt.Sprintf("sortgen: no first-pick kernel for n=%d in the registry", n))
		}
		ks[n] = kernelEntry{fn: k.Go, prog: k.Prog, set: k.Set}
	}
	return ks
}()

// kernel returns the abstract-and-native kernel behind a block of
// length n under the plan's objective, or nil when the block is a bare
// compare-and-swap (n ≤ 2).
func (p *Plan) kernel(n int) *kernelEntry {
	ks := synthKernels
	if p.Objective == enum.ObjectiveShortest {
		ks = firstKernels
	}
	if e, ok := ks[n]; ok {
		return &e
	}
	return nil
}

func sort2(a []int) {
	if a[1] < a[0] {
		a[0], a[1] = a[1], a[0]
	}
}
