package sortgen

import (
	"math/rand"
	"slices"
	"testing"
)

func TestHybridDifferential(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 17, 63, 100, 1024, 20000}
	if err := CheckDynamic(HybridSort, sizes, 8, 11); err != nil {
		t.Fatal(err)
	}
	if err := CheckDynamic(HybridMergesort, sizes, 8, 12); err != nil {
		t.Fatal(err)
	}
}

// medianOf3Killer builds the classic adversarial permutation that
// drives median-of-three quicksort quadratic, forcing the heapsort
// fallback path; the output must still be byte-equal with slices.Sort.
func medianOf3Killer(n int) []int {
	a := make([]int, n)
	k := n / 2
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			a[i] = i + 1
		} else {
			a[i] = k + i
		}
		a[k+i] = 2 * (i + 1)
	}
	if n%2 == 1 {
		a[n-1] = n
	}
	return a
}

func TestHybridAdversarial(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		in := medianOf3Killer(n)
		want := slices.Clone(in)
		slices.Sort(want)
		got := slices.Clone(in)
		HybridSort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("HybridSort diverges on median-of-3 killer n=%d", n)
		}
	}
	// All-equal and two-valued inputs stress the partition's duplicate
	// handling.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(2)
		}
		want := slices.Clone(in)
		slices.Sort(want)
		HybridSort(in)
		if !slices.Equal(in, want) {
			t.Fatalf("HybridSort diverges on two-valued input n=%d", n)
		}
	}
}

func TestHeapsortFallbackDirect(t *testing.T) {
	// The fallback must be correct on its own, not only as a rescue.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(50) - 25
		}
		want := slices.Clone(in)
		slices.Sort(want)
		heapsort(in)
		if !slices.Equal(in, want) {
			t.Fatalf("heapsort diverges at n=%d", n)
		}
	}
}
