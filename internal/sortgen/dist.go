package sortgen

import (
	"fmt"
	"math/rand"
	"slices"
)

// Distribution is one adversarial input shape for the differential
// harness and the benchmarks.
type Distribution struct {
	Name string
	Gen  func(rng *rand.Rand, n int) []int
}

// Distributions returns the five shapes every generated sorter is
// checked and benchmarked against: uniform random, already sorted,
// reverse sorted, duplicate-heavy (eight distinct values), and a
// sawtooth pattern.
func Distributions() []Distribution {
	return []Distribution{
		{Name: "random", Gen: func(rng *rand.Rand, n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Intn(20001) - 10000
			}
			return a
		}},
		{Name: "sorted", Gen: func(rng *rand.Rand, n int) []int {
			a := make([]int, n)
			v := -n
			for i := range a {
				v += rng.Intn(3)
				a[i] = v
			}
			return a
		}},
		{Name: "reversed", Gen: func(rng *rand.Rand, n int) []int {
			a := make([]int, n)
			v := n
			for i := range a {
				v -= rng.Intn(3)
				a[i] = v
			}
			return a
		}},
		{Name: "dups", Gen: func(rng *rand.Rand, n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Intn(8)
			}
			return a
		}},
		{Name: "sawtooth", Gen: func(rng *rand.Rand, n int) []int {
			a := make([]int, n)
			period := 43
			if n < period {
				period = n/2 + 1
			}
			for i := range a {
				a[i] = i % period
			}
			return a
		}},
	}
}

// CheckFixed differentially tests a fixed-length sorter against
// slices.Sort: trials inputs per distribution, requiring byte-equal
// output (not just sortedness — equal multiset and order of ties is
// what slices.Sort produces on ints, so equality is the full contract).
func CheckFixed(sorter func([]int), n, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, d := range Distributions() {
		for t := 0; t < trials; t++ {
			in := d.Gen(rng, n)
			want := slices.Clone(in)
			slices.Sort(want)
			got := slices.Clone(in)
			sorter(got)
			if !slices.Equal(got, want) {
				return fmt.Errorf("sortgen: fixed n=%d sorter diverges from slices.Sort on %s input %v: got %v, want %v",
					n, d.Name, in, got, want)
			}
		}
	}
	return nil
}

// CheckDynamic differentially tests an arbitrary-length sorter against
// slices.Sort over every distribution at each given size.
func CheckDynamic(sorter func([]int), sizes []int, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, n := range sizes {
		for _, d := range Distributions() {
			for t := 0; t < trials; t++ {
				in := d.Gen(rng, n)
				want := slices.Clone(in)
				slices.Sort(want)
				got := slices.Clone(in)
				sorter(got)
				if !slices.Equal(got, want) {
					return fmt.Errorf("sortgen: dynamic sorter diverges from slices.Sort at n=%d on %s input: got %v, want %v",
						n, d.Name, truncate(in), truncate(got))
				}
			}
		}
	}
	return nil
}

func truncate(a []int) []int {
	if len(a) > 32 {
		return a[:32]
	}
	return a
}
