package sortgen

import (
	"encoding/binary"
	"slices"
	"testing"
)

// FuzzSortgenVsSlicesSort drives arbitrary byte-derived inputs through
// both sortgen paths — the hybrid dynamic-n sorter on the full slice
// and a composed fixed-n plan interpreter on the same values — and
// requires byte-equal output with slices.Sort for each.
func FuzzSortgenVsSlicesSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 3, 9, 1, 0, 255, 128, 2, 2, 2, 64, 5})
	f.Add([]byte("sortgen differential fuzzing against slices.Sort"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode signed 16-bit values; cap the length so each iteration
		// composes a plan in microseconds.
		var in []int
		for i := 0; i+1 < len(data) && len(in) < 48; i += 2 {
			in = append(in, int(int16(binary.BigEndian.Uint16(data[i:]))))
		}
		want := slices.Clone(in)
		slices.Sort(want)

		got := slices.Clone(in)
		HybridSort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("HybridSort(%v) = %v, want %v", in, got, want)
		}

		got = slices.Clone(in)
		HybridMergesort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("HybridMergesort(%v) = %v, want %v", in, got, want)
		}

		p, err := Compose(len(in))
		if err != nil {
			t.Fatalf("Compose(%d): %v", len(in), err)
		}
		got = slices.Clone(in)
		p.Sorter()(got)
		if !slices.Equal(got, want) {
			t.Fatalf("plan(%d).Sorter()(%v) = %v, want %v", len(in), in, got, want)
		}
	})
}
