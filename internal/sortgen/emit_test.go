package sortgen

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenSort6(t *testing.T) {
	p, err := Compose(6)
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.GoFile(EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sort6_int.go.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if src != string(want) {
		t.Errorf("emitted source for n=6 drifted from %s (run with -update if intentional):\n%s", golden, src)
	}
}

func TestEmitGofmtClean(t *testing.T) {
	for _, n := range []int{0, 1, 2, 6, 13, 32} {
		p, err := Compose(n)
		if err != nil {
			t.Fatal(err)
		}
		src, err := p.GoFile(EmitOptions{Elem: "int64"})
		if err != nil {
			t.Fatal(err)
		}
		formatted, err := format.Source([]byte(src))
		if err != nil {
			t.Fatalf("n=%d: emitted source does not parse: %v", n, err)
		}
		if src != string(formatted) {
			t.Errorf("n=%d: emitted source is not gofmt-clean", n)
		}
	}
}

func TestEmitOptionValidation(t *testing.T) {
	p, err := Compose(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, elem := range []string{"float64", "float32", "bool", "[]int", "int;"} {
		if _, err := p.GoFile(EmitOptions{Elem: elem}); err == nil {
			t.Errorf("GoFile accepted element type %q", elem)
		}
	}
	src, err := p.GoFile(EmitOptions{Package: "kern", FuncName: "Quad", Elem: "uint32"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package kern", "func Quad(a []uint32)"} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted source missing %q", want)
		}
	}
}

// TestEmittedModule is the generate → vet → build → differential gate
// (`make sortgen-check`): it writes generated sorters for n = 6, 13, 32
// into a throwaway module together with a differential main, then runs
// go vet, go build, and the compiled differential test against
// slices.Sort over all five distributions.
func TestEmittedModule(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not in PATH: %v", err)
	}
	dir := t.TempDir()
	ns := []int{6, 13, 32}
	for _, n := range ns {
		p, err := Compose(n)
		if err != nil {
			t.Fatal(err)
		}
		src, err := p.GoFile(EmitOptions{Package: "main"})
		if err != nil {
			t.Fatal(err)
		}
		file := filepath.Join(dir, fmt.Sprintf("sort%d.go", n))
		if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module sortgencheck\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(diffMain), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) {
		t.Helper()
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOWORK=off", "GO111MODULE=on")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
		}
	}
	run("vet", "./...")
	run("build", "-o", filepath.Join(dir, "sortgencheck"), ".")

	cmd := exec.Command(filepath.Join(dir, "sortgencheck"))
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("differential test on emitted sorters failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "OK") {
		t.Fatalf("differential main did not report OK:\n%s", out)
	}
}

// diffMain is the differential harness compiled into the throwaway
// module: byte-equality with slices.Sort over adversarial shapes. It is
// deliberately self-contained (stdlib only) so the temp module needs no
// dependencies.
const diffMain = `package main

import (
	"fmt"
	"math/rand"
	"os"
	"slices"
)

func main() {
	sorters := map[int]func([]int){6: Sort6, 13: Sort13, 32: Sort32}
	rng := rand.New(rand.NewSource(99))
	gens := []func(n int) []int{
		func(n int) []int { // random
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Intn(20001) - 10000
			}
			return a
		},
		func(n int) []int { // sorted
			a := make([]int, n)
			for i := range a {
				a[i] = i
			}
			return a
		},
		func(n int) []int { // reversed
			a := make([]int, n)
			for i := range a {
				a[i] = n - i
			}
			return a
		},
		func(n int) []int { // dup-heavy
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Intn(4)
			}
			return a
		},
		func(n int) []int { // sawtooth
			a := make([]int, n)
			for i := range a {
				a[i] = i % 5
			}
			return a
		},
	}
	for n, sorter := range sorters {
		for gi, gen := range gens {
			for trial := 0; trial < 500; trial++ {
				in := gen(n)
				want := slices.Clone(in)
				slices.Sort(want)
				got := slices.Clone(in)
				sorter(got)
				if !slices.Equal(got, want) {
					fmt.Printf("FAIL n=%d gen=%d: in=%v got=%v want=%v\n", n, gi, in, got, want)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Println("OK")
}
`
