package sortgen

import (
	"testing"
)

func TestComposeCoversArray(t *testing.T) {
	for n := 0; n <= 130; n++ {
		p, err := Compose(n)
		if err != nil {
			t.Fatalf("Compose(%d): %v", n, err)
		}
		if p.N != n {
			t.Fatalf("Compose(%d).N = %d", n, p.N)
		}
		lo := 0
		for _, b := range p.Blocks {
			if b.Lo != lo {
				t.Fatalf("Compose(%d): block gap at %d (got Lo=%d)", n, lo, b.Lo)
			}
			if b.N < 1 || b.N > MaxKernelN {
				t.Fatalf("Compose(%d): block size %d out of 1..%d", n, b.N, MaxKernelN)
			}
			// The tail-splitting policy never leaves a 1-block unless the
			// whole array is one element.
			if b.N == 1 && n > 1 {
				t.Fatalf("Compose(%d): stranded 1-element block at %d", n, b.Lo)
			}
			lo += b.N
		}
		if lo != n {
			t.Fatalf("Compose(%d): blocks cover %d elements", n, lo)
		}
	}
}

func TestComposePolicy(t *testing.T) {
	// The documented cutover policy: 5s while > 7 remain, 6 → 3+3,
	// 7 → 4+3.
	cases := map[int][]int{
		2:  {2},
		3:  {3},
		5:  {5},
		6:  {3, 3},
		7:  {4, 3},
		8:  {5, 3},
		12: {5, 4, 3},
		13: {5, 5, 3},
		32: {5, 5, 5, 5, 5, 4, 3},
	}
	for n, want := range cases {
		p, err := Compose(n)
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for _, b := range p.Blocks {
			got = append(got, b.N)
		}
		if len(got) != len(want) {
			t.Errorf("Compose(%d) blocks = %v, want %v", n, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Compose(%d) blocks = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestComposeRejectsNegative(t *testing.T) {
	if _, err := Compose(-1); err == nil {
		t.Error("Compose(-1) succeeded")
	}
}

func TestPlanDifferential(t *testing.T) {
	// Every fixed-n interpreter up to 96 (and the acceptance sizes 6,
	// 13, 32 with more trials) must be byte-equal with slices.Sort over
	// all five distributions.
	for n := 0; n <= 96; n++ {
		p, err := Compose(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFixed(p.Sorter(), n, 25, int64(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{6, 13, 32} {
		p, err := Compose(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFixed(p.Sorter(), n, 400, int64(1000+n)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanCounters(t *testing.T) {
	p, err := Compose(13)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks 5+5+3: two 33-instruction and one 11-instruction kernel.
	if got := p.KernelInstructions(); got != 33+33+11 {
		t.Errorf("KernelInstructions() = %d, want 77", got)
	}
	if got := p.Comparators(); got != len(p.MergeOps()) || got == 0 {
		t.Errorf("Comparators() = %d inconsistent with MergeOps() (%d)", got, len(p.MergeOps()))
	}
	if got := p.BlocksDesc(); got != "5+5+3" {
		t.Errorf("BlocksDesc() = %q", got)
	}
	if got, err := Compose(0); err != nil || got.BlocksDesc() != "0" {
		t.Errorf("Compose(0) = %v, %v", got.BlocksDesc(), err)
	}
}

func TestSorterPanicsOnShortSlice(t *testing.T) {
	p, err := Compose(8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Sorter() accepted a slice shorter than n")
		}
	}()
	p.Sorter()(make([]int, 7))
}

func TestSorterSortsPrefixOnly(t *testing.T) {
	p, err := Compose(6)
	if err != nil {
		t.Fatal(err)
	}
	a := []int{5, 4, 3, 2, 1, 0, -99, 42}
	p.Sorter()(a)
	for i := 0; i < 5; i++ {
		if a[i] > a[i+1] {
			t.Fatalf("prefix not sorted: %v", a)
		}
	}
	if a[6] != -99 || a[7] != 42 {
		t.Fatalf("suffix touched: %v", a)
	}
}
