package sortgen

import "math/bits"

// HybridSort sorts a in place for arbitrary n: an introsort outer loop
// (median-of-three quicksort, recursing into the smaller side first,
// with a heapsort fallback past 2·⌊log₂ n⌋ partition depth) that hands
// every segment of ≤ 5 elements to the synthesized kernel of exactly
// that length — the Gamal Aly et al. hybrid with the AlphaDev-style
// base cases replaced by this repository's synthesized kernels.
func HybridSort(a []int) {
	if len(a) <= MaxKernelN {
		sortBase(a)
		return
	}
	quicksort(a, 2*bits.Len(uint(len(a))))
}

// sortBase dispatches a ≤ 5-element segment to the matching kernel.
func sortBase(a []int) {
	switch len(a) {
	case 0, 1:
	case 2:
		sort2(a)
	default:
		synthKernels[len(a)].fn(a)
	}
}

func quicksort(a []int, depth int) {
	for len(a) > MaxKernelN {
		if depth == 0 {
			// Adversarial pivot run: bound the worst case at O(n log n)
			// like the standard library's introsort does.
			heapsort(a)
			return
		}
		depth--
		p := partition(a)
		if p < len(a)-p-1 {
			quicksort(a[:p], depth)
			a = a[p+1:]
		} else {
			quicksort(a[p+1:], depth)
			a = a[:p]
		}
	}
	sortBase(a)
}

// partition performs a median-of-three Hoare-style partition and
// returns the pivot's final index. len(a) must be ≥ 3.
func partition(a []int) int {
	mid := len(a) / 2
	hi := len(a) - 1
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi-1] = a[hi-1], a[mid]
	pivot := a[hi-1]
	i := 0
	for j := 1; j < hi-1; j++ {
		if a[j] < pivot {
			i++
			if i != j {
				a[i], a[j] = a[j], a[i]
			}
		}
	}
	a[i+1], a[hi-1] = a[hi-1], a[i+1]
	return i + 1
}

func heapsort(a []int) {
	for i := len(a)/2 - 1; i >= 0; i-- {
		siftDown(a, i)
	}
	for end := len(a) - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a[:end], 0)
	}
}

func siftDown(a []int, root int) {
	for {
		child := 2*root + 1
		if child >= len(a) {
			return
		}
		if child+1 < len(a) && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// HybridMergesort sorts a in place through a top-down mergesort whose
// base cases are the synthesized kernels — the second hybrid of the
// Gamal Aly et al. comparison. It allocates one scratch buffer.
func HybridMergesort(a []int) {
	if len(a) <= MaxKernelN {
		sortBase(a)
		return
	}
	buf := make([]int, len(a))
	hybridMerge(a, buf)
}

func hybridMerge(a, buf []int) {
	if len(a) <= MaxKernelN {
		sortBase(a)
		return
	}
	mid := len(a) / 2
	hybridMerge(a[:mid], buf[:mid])
	hybridMerge(a[mid:], buf[mid:])
	copy(buf, a)
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if buf[j] < buf[i] {
			a[k] = buf[j]
			j++
		} else {
			a[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = buf[i]
		i++
		k++
	}
	for j < len(a) {
		a[k] = buf[j]
		j++
		k++
	}
}
