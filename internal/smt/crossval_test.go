package smt

import (
	"testing"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

func TestMinimalLengthsAgreeAcrossTechniques(t *testing.T) {
	// Cross-validation matrix: for every small machine, the enumerative
	// search and the SMT route must agree on the minimal kernel length —
	// including refuting one instruction below it.
	for _, tc := range []struct {
		set  *isa.Set
		want int
	}{
		{isa.NewCmov(2, 1), 4},
		{isa.NewCmov(2, 2), 4}, // an extra scratch register does not help
		{isa.NewMinMax(2, 1), 3},
		{isa.NewMinMax(2, 2), 3},
		{isa.NewMinMax(3, 1), 8},
	} {
		// Enumerative: certified minimum via RunMinimal.
		res := enum.RunMinimal(tc.set, 4*tc.want, 0)
		if res.Length != tc.want || !res.Proof {
			t.Errorf("%v: enum minimal = %d (certified %v), want %d", tc.set, res.Length, res.Proof, tc.want)
		}
		if tc.set.N > 2 {
			continue // SMT minimality loop gets slow beyond n=2
		}
		// SMT: FindMinimal increases the length until satisfiable.
		sres := FindMinimal(tc.set, Options{Goal: GoalAscCounts0, Encoding: EncodingDense}, 1, tc.want+1, false)
		if sres.Status != Found || len(sres.Program) != tc.want {
			t.Errorf("%v: SMT minimal = %d (%v), want %d", tc.set, len(sres.Program), sres.Status, tc.want)
		}
	}
}
