// Package smt implements the paper's solver-based synthesis baselines
// (§4.1): a finite-domain program encoding solved with the CDCL core in
// internal/sat, in two protocols:
//
//   - SMT-PERM: a single query constraining the program to sort every
//     permutation of 1..n at once, and
//   - SMT-CEGIS: counterexample-guided synthesis that starts from a few
//     examples and adds failing permutations until the verifier (the
//     exhaustive permutation oracle of §2.3) accepts.
//
// Register values range over 0..n and are one-hot encoded; instruction
// choice per timestep is either a dense one-hot over the legal
// instruction list (symmetries built in) or a raw (cmd, dst, src) triple
// on which the paper's §4 heuristics — no consecutive compares, compare
// argument symmetry, reading only initialized registers — are expressible
// as explicit constraints (the formulation-sensitivity experiment of
// §5.2).
package smt

import (
	"fmt"

	"sortsynth/internal/isa"
	"sortsynth/internal/sat"
)

// Goal selects the correctness formulation (§4's goal-formulation list).
type Goal uint8

// Goal formulations from §4/§5.2.
const (
	// GoalExact asserts the output registers are exactly 1..n ("= 123").
	GoalExact Goal = iota
	// GoalAscCounts0 asserts ascending output plus occurrence counts for
	// the values 0..n ("≤, #0123"): every value 1..n occurs exactly once
	// in the output registers and 0 does not occur.
	GoalAscCounts0
	// GoalAscCounts is the same without the 0 constraint ("≤, #123").
	GoalAscCounts
	// GoalAscExact combines the ascending constraint with GoalExact
	// ("≤, #0123, = 123" — the over-constrained variant).
	GoalAscExact
)

func (g Goal) String() string {
	switch g {
	case GoalExact:
		return "=123"
	case GoalAscCounts0:
		return "<=,#0123"
	case GoalAscCounts:
		return "<=,#123"
	case GoalAscExact:
		return "<=,#0123,=123"
	}
	return "goal?"
}

// Encoding selects the instruction-variable shape.
type Encoding uint8

// Encodings.
const (
	// EncodingDense uses one selector over the legal instruction list.
	EncodingDense Encoding = iota
	// EncodingRaw uses separate cmd/dst/src selectors, enabling the §4
	// heuristic constraints.
	EncodingRaw
)

// Heuristics toggles the §4 search-space constraints (raw encoding).
type Heuristics struct {
	NoConsecutiveCmp bool // (I): no two compares in a row
	CmpSymmetry      bool // (II): cmp arguments in index order
	NoSelfOps        bool // dst ≠ src
	FirstIsCmp       bool // cmd[0] = cmp (partial skeleton)
	OnlyInitialized  bool // never read an unwritten scratch register
}

// fd is a one-hot finite-domain variable: lits[k] ⇔ value k.
type fd struct{ lits []sat.Lit }

type encoder struct {
	s   *sat.Solver
	set *isa.Set
}

func (e *encoder) newFD(domain int) fd {
	v := fd{lits: make([]sat.Lit, domain)}
	atLeast := make([]sat.Lit, domain)
	for k := 0; k < domain; k++ {
		v.lits[k] = sat.Pos(e.s.NewVar())
		atLeast[k] = v.lits[k]
	}
	e.s.AddClause(atLeast...)
	for a := 0; a < domain; a++ {
		for b := a + 1; b < domain; b++ {
			e.s.AddClause(v.lits[a].Not(), v.lits[b].Not())
		}
	}
	return v
}

func (e *encoder) newBool() sat.Lit { return sat.Pos(e.s.NewVar()) }

// fixFD pins an fd to one value.
func (e *encoder) fixFD(x fd, k int) {
	e.s.AddClause(x.lits[k])
}

// traceVars holds the per-example execution trace variables.
type traceVars struct {
	val    [][]fd    // val[t][r]: value of register r before step t
	lt, gt []sat.Lit // flags before step t
}

// progVars holds the program variables.
type progVars struct {
	enc Encoding
	// Dense: sel[t] over the legal instruction list.
	sel []fd
	// Raw: cmd/dst/src selectors.
	cmd, dst, src []fd
}

// instance is one complete encoding of the synthesis problem.
type instance struct {
	e     *encoder
	set   *isa.Set
	len   int
	prog  progVars
	goal  Goal
	heur  Heuristics
	nCmds int
	ops   []isa.Op
}

func newInstance(set *isa.Set, length int, encoding Encoding, goal Goal, heur Heuristics) *instance {
	e := &encoder{s: sat.New(), set: set}
	in := &instance{e: e, set: set, len: length, goal: goal, heur: heur}
	in.prog.enc = encoding
	switch set.Kind {
	case isa.KindCmov:
		in.ops = []isa.Op{isa.Mov, isa.Cmp, isa.Cmovl, isa.Cmovg}
	case isa.KindMinMax:
		in.ops = []isa.Op{isa.Mov, isa.Min, isa.Max}
	}
	in.nCmds = len(in.ops)
	r := set.Regs()
	switch encoding {
	case EncodingDense:
		in.prog.sel = make([]fd, length)
		for t := range in.prog.sel {
			in.prog.sel[t] = e.newFD(set.NumInstrs())
		}
	case EncodingRaw:
		in.prog.cmd = make([]fd, length)
		in.prog.dst = make([]fd, length)
		in.prog.src = make([]fd, length)
		for t := 0; t < length; t++ {
			in.prog.cmd[t] = e.newFD(in.nCmds)
			in.prog.dst[t] = e.newFD(r)
			in.prog.src[t] = e.newFD(r)
		}
		in.addHeuristics()
	}
	return in
}

// selLits returns, for timestep t and concrete instruction in, the
// literals whose conjunction means "instruction in is selected at t"
// (one literal for dense, three for raw).
func (in *instance) selLits(t int, instr isa.Instr, id int) []sat.Lit {
	if in.prog.enc == EncodingDense {
		return []sat.Lit{in.prog.sel[t].lits[id]}
	}
	ci := -1
	for i, op := range in.ops {
		if op == instr.Op {
			ci = i
		}
	}
	return []sat.Lit{
		in.prog.cmd[t].lits[ci],
		in.prog.dst[t].lits[instr.Dst],
		in.prog.src[t].lits[instr.Src],
	}
}

// blockProgram adds a clause forbidding the exact instruction sequence p.
// CEGIS uses it when a counterexample cannot be expressed in the
// per-example finite value domain: instead of the failing input, the
// refuted candidate itself is excluded from the search space.
func (in *instance) blockProgram(p isa.Program) {
	legal := in.legal()
	var clause []sat.Lit
	for t := 0; t < in.len && t < len(p); t++ {
		id := -1
		for i, instr := range legal {
			if instr == p[t] {
				id = i
				break
			}
		}
		if id < 0 {
			return // p is outside this encoding's space; nothing to block
		}
		for _, l := range in.selLits(t, p[t], id) {
			clause = append(clause, l.Not())
		}
	}
	in.e.s.AddClause(clause...)
}

// legal returns the instruction list the encoding ranges over: the
// symmetry-reduced set for dense, the full raw product for raw.
func (in *instance) legal() []isa.Instr {
	if in.prog.enc == EncodingDense {
		return in.set.Instrs()
	}
	r := in.set.Regs()
	var out []isa.Instr
	for _, op := range in.ops {
		for d := 0; d < r; d++ {
			for s := 0; s < r; s++ {
				out = append(out, isa.Instr{Op: op, Dst: uint8(d), Src: uint8(s)})
			}
		}
	}
	return out
}

func (in *instance) addHeuristics() {
	h := in.heur
	cmpIdx := -1
	for i, op := range in.ops {
		if op == isa.Cmp {
			cmpIdx = i
		}
	}
	r := in.set.Regs()
	if h.NoConsecutiveCmp && cmpIdx >= 0 {
		for t := 0; t+1 < in.len; t++ {
			in.e.s.AddClause(in.prog.cmd[t].lits[cmpIdx].Not(), in.prog.cmd[t+1].lits[cmpIdx].Not())
		}
	}
	if h.CmpSymmetry && cmpIdx >= 0 {
		for t := 0; t < in.len; t++ {
			for d := 0; d < r; d++ {
				for s := 0; s <= d; s++ {
					in.e.s.AddClause(in.prog.cmd[t].lits[cmpIdx].Not(),
						in.prog.dst[t].lits[d].Not(), in.prog.src[t].lits[s].Not())
				}
			}
		}
	}
	if h.NoSelfOps {
		for t := 0; t < in.len; t++ {
			for d := 0; d < r; d++ {
				in.e.s.AddClause(in.prog.dst[t].lits[d].Not(), in.prog.src[t].lits[d].Not())
			}
		}
	}
	if h.FirstIsCmp && cmpIdx >= 0 {
		in.e.fixFD(in.prog.cmd[0], cmpIdx)
	}
	if h.OnlyInitialized {
		// A scratch register may be read at step t only if some earlier
		// step wrote it (writing ops are everything but cmp).
		for sc := in.set.N; sc < r; sc++ {
			written := make([]sat.Lit, in.len+1)
			written[0] = in.e.newBool()
			in.e.s.AddClause(written[0].Not()) // initially unwritten
			for t := 0; t < in.len; t++ {
				w := in.e.newBool()
				written[t+1] = w
				// w ↔ written[t] ∨ (dst=sc ∧ cmd writes)
				writesLit := in.e.newBool()
				// writesLit ↔ dst[t]=sc ∧ cmd ≠ cmp
				if cmpIdx >= 0 {
					in.e.s.AddClause(writesLit.Not(), in.prog.dst[t].lits[sc])
					in.e.s.AddClause(writesLit.Not(), in.prog.cmd[t].lits[cmpIdx].Not())
					in.e.s.AddClause(writesLit, in.prog.dst[t].lits[sc].Not(), in.prog.cmd[t].lits[cmpIdx])
				} else {
					in.e.s.AddClause(writesLit.Not(), in.prog.dst[t].lits[sc])
					in.e.s.AddClause(writesLit, in.prog.dst[t].lits[sc].Not())
				}
				in.e.s.AddClause(w.Not(), written[t], writesLit)
				in.e.s.AddClause(w, written[t].Not())
				in.e.s.AddClause(w, writesLit.Not())
				// Reading sc at t requires written[t].
				in.e.s.AddClause(in.prog.src[t].lits[sc].Not(), written[t])
			}
		}
	}
}

// addExample encodes the execution trace of one input and its goal.
func (in *instance) addExample(input []int) {
	set := in.set
	e := in.e
	r := set.Regs()
	n := set.N
	d := n + 1 // value domain 0..n

	tv := traceVars{val: make([][]fd, in.len+1)}
	hasFlags := set.HasFlags()
	if hasFlags {
		tv.lt = make([]sat.Lit, in.len+1)
		tv.gt = make([]sat.Lit, in.len+1)
	}
	for t := 0; t <= in.len; t++ {
		tv.val[t] = make([]fd, r)
		for reg := 0; reg < r; reg++ {
			tv.val[t][reg] = e.newFD(d)
		}
		if hasFlags {
			tv.lt[t] = e.newBool()
			tv.gt[t] = e.newBool()
		}
	}

	// Initial state.
	for i, v := range input {
		e.fixFD(tv.val[0][i], v)
	}
	for sc := n; sc < r; sc++ {
		e.fixFD(tv.val[0][sc], 0)
	}
	if hasFlags {
		e.s.AddClause(tv.lt[0].Not())
		e.s.AddClause(tv.gt[0].Not())
	}

	// Transitions.
	legal := in.legal()
	for t := 0; t < in.len; t++ {
		for id, instr := range legal {
			sel := in.selLits(t, instr, id)
			neg := make([]sat.Lit, len(sel))
			for i, l := range sel {
				neg[i] = l.Not()
			}
			in.addTransition(neg, tv, t, instr)
		}
	}

	in.addGoal(tv, input)
}

// imply adds clause (¬sel... ∨ extra...).
func (in *instance) imply(negSel []sat.Lit, extra ...sat.Lit) {
	clause := append(append([]sat.Lit(nil), negSel...), extra...)
	in.e.s.AddClause(clause...)
}

// copyVal asserts sel → (dst-at-t+1 equals src-at-t) for one register.
func (in *instance) copyVal(negSel []sat.Lit, from, to fd) {
	for k := range from.lits {
		in.imply(append(negSel, from.lits[k].Not()), to.lits[k])
	}
}

func (in *instance) addTransition(negSel []sat.Lit, tv traceVars, t int, instr isa.Instr) {
	set := in.set
	r := set.Regs()
	hasFlags := set.HasFlags()
	dst, src := int(instr.Dst), int(instr.Src)

	keepReg := func(reg int) {
		in.copyVal(negSel, tv.val[t][reg], tv.val[t+1][reg])
	}
	keepFlags := func() {
		if !hasFlags {
			return
		}
		in.imply(append(negSel, tv.lt[t].Not()), tv.lt[t+1])
		in.imply(append(negSel, tv.lt[t]), tv.lt[t+1].Not())
		in.imply(append(negSel, tv.gt[t].Not()), tv.gt[t+1])
		in.imply(append(negSel, tv.gt[t]), tv.gt[t+1].Not())
	}

	switch instr.Op {
	case isa.Mov:
		for reg := 0; reg < r; reg++ {
			if reg == dst {
				in.copyVal(negSel, tv.val[t][src], tv.val[t+1][dst])
			} else {
				keepReg(reg)
			}
		}
		keepFlags()
	case isa.Cmp:
		for reg := 0; reg < r; reg++ {
			keepReg(reg)
		}
		// Flags from the value pair.
		a, b := tv.val[t][dst], tv.val[t][src]
		for x := range a.lits {
			for y := range b.lits {
				cond := append(negSel, a.lits[x].Not(), b.lits[y].Not())
				if x < y {
					in.imply(cond, tv.lt[t+1])
					in.imply(cond, tv.gt[t+1].Not())
				} else if x > y {
					in.imply(cond, tv.gt[t+1])
					in.imply(cond, tv.lt[t+1].Not())
				} else {
					in.imply(cond, tv.lt[t+1].Not())
					in.imply(cond, tv.gt[t+1].Not())
				}
			}
		}
	case isa.Cmovl, isa.Cmovg:
		flag := tv.lt[t]
		if instr.Op == isa.Cmovg {
			flag = tv.gt[t]
		}
		for reg := 0; reg < r; reg++ {
			if reg == dst {
				// flag set → copy, flag clear → keep.
				in.copyVal(append(negSel, flag.Not()), tv.val[t][src], tv.val[t+1][dst])
				in.copyVal(append(negSel, flag), tv.val[t][dst], tv.val[t+1][dst])
			} else {
				keepReg(reg)
			}
		}
		keepFlags()
	case isa.Min, isa.Max:
		a, b := tv.val[t][dst], tv.val[t][src]
		for reg := 0; reg < r; reg++ {
			if reg != dst {
				keepReg(reg)
			}
		}
		for x := range a.lits {
			for y := range b.lits {
				res := x
				if (instr.Op == isa.Min && y < x) || (instr.Op == isa.Max && y > x) {
					res = y
				}
				cond := append(negSel, a.lits[x].Not(), b.lits[y].Not())
				in.imply(cond, tv.val[t+1][dst].lits[res])
			}
		}
	default:
		panic(fmt.Sprintf("smt: cannot encode op %v", instr.Op))
	}
}

func (in *instance) addGoal(tv traceVars, input []int) {
	e := in.e
	n := in.set.N
	final := tv.val[in.len]

	exact := func() {
		for i := 0; i < n; i++ {
			e.fixFD(final[i], i+1)
		}
	}
	ascending := func() {
		for i := 0; i+1 < n; i++ {
			for x := 0; x <= n; x++ {
				for y := 0; y < x; y++ {
					e.s.AddClause(final[i].lits[x].Not(), final[i+1].lits[y].Not())
				}
			}
		}
	}
	counts := func(with0 bool) {
		// Every value 1..n occurs exactly once among r1..rn.
		for v := 1; v <= n; v++ {
			atLeast := make([]sat.Lit, n)
			for i := 0; i < n; i++ {
				atLeast[i] = final[i].lits[v]
			}
			e.s.AddClause(atLeast...)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					e.s.AddClause(final[i].lits[v].Not(), final[j].lits[v].Not())
				}
			}
		}
		if with0 {
			for i := 0; i < n; i++ {
				e.s.AddClause(final[i].lits[0].Not())
			}
		}
	}

	switch in.goal {
	case GoalExact:
		exact()
	case GoalAscCounts0:
		ascending()
		counts(true)
	case GoalAscCounts:
		ascending()
		counts(false)
	case GoalAscExact:
		ascending()
		counts(true)
		exact()
	}
}

// decode reads the synthesized program out of a satisfying model.
func (in *instance) decode() isa.Program {
	p := make(isa.Program, in.len)
	s := in.e.s
	value := func(x fd) int {
		for k, l := range x.lits {
			if s.Value(l.Var()) {
				return k
			}
		}
		return -1
	}
	for t := 0; t < in.len; t++ {
		if in.prog.enc == EncodingDense {
			p[t] = in.set.Instrs()[value(in.prog.sel[t])]
		} else {
			p[t] = isa.Instr{
				Op:  in.ops[value(in.prog.cmd[t])],
				Dst: uint8(value(in.prog.dst[t])),
				Src: uint8(value(in.prog.src[t])),
			}
		}
	}
	return p
}
