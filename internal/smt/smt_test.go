package smt

import (
	"os"
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

func TestSynthPermN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := SynthPerm(set, Options{Length: 4, Goal: GoalAscCounts0, Encoding: EncodingDense})
	if res.Status != Found {
		t.Fatalf("status = %v", res.Status)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatalf("synthesized program does not sort: %s", res.Program.FormatInline(2))
	}
}

func TestSynthPermN2NoLength3(t *testing.T) {
	// There is no 3-instruction sorting kernel for n=2; the solver must
	// refute the query.
	set := isa.NewCmov(2, 1)
	res := SynthPerm(set, Options{Length: 3, Goal: GoalExact, Encoding: EncodingDense})
	if res.Status != NoProg {
		t.Fatalf("status = %v, want no-program", res.Status)
	}
}

func TestSynthCEGISN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := SynthCEGIS(set, Options{Length: 4, Goal: GoalAscCounts0, Encoding: EncodingDense})
	if res.Status != Found {
		t.Fatalf("status = %v", res.Status)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("CEGIS program does not sort")
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestSynthPermGoalsN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	for _, g := range []Goal{GoalExact, GoalAscCounts0, GoalAscCounts, GoalAscExact} {
		res := SynthPerm(set, Options{Length: 4, Goal: g, Encoding: EncodingDense})
		if res.Status != Found {
			t.Errorf("goal %v: status = %v", g, res.Status)
			continue
		}
		if !verify.Sorts(set, res.Program) {
			t.Errorf("goal %v: program does not sort", g)
		}
	}
}

func TestSynthPermRawEncodingWithHeuristics(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := SynthPerm(set, Options{
		Length:   4,
		Goal:     GoalAscCounts0,
		Encoding: EncodingRaw,
		Heur: Heuristics{
			NoConsecutiveCmp: true,
			CmpSymmetry:      true,
			NoSelfOps:        true,
			OnlyInitialized:  true,
		},
	})
	if res.Status != Found {
		t.Fatalf("raw encoding status = %v", res.Status)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("raw-encoded program does not sort")
	}
	// The heuristic constraints must hold on the synthesized program.
	for i, in := range res.Program {
		if in.Dst == in.Src {
			t.Errorf("self-op at %d: %v", i, in)
		}
		if in.Op == isa.Cmp && in.Dst > in.Src {
			t.Errorf("cmp symmetry violated at %d: %v", i, in)
		}
		if i > 0 && in.Op == isa.Cmp && res.Program[i-1].Op == isa.Cmp {
			t.Errorf("consecutive compares at %d", i)
		}
	}
}

func TestSynthMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	res := SynthPerm(set, Options{Length: 3, Goal: GoalExact, Encoding: EncodingDense})
	if res.Status != Found {
		t.Fatalf("minmax status = %v", res.Status)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("minmax program does not sort")
	}
}

func TestFindMinimalN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := FindMinimal(set, Options{Goal: GoalAscCounts0, Encoding: EncodingDense}, 1, 5, false)
	if res.Status != Found {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.Program) != 4 {
		t.Errorf("minimal length = %d, want 4", len(res.Program))
	}
}

func TestBudgetStops(t *testing.T) {
	set := isa.NewCmov(3, 1)
	res := SynthPerm(set, Options{Length: 11, Goal: GoalAscCounts0, Encoding: EncodingDense, MaxConflicts: 5})
	if res.Status == Found && !verify.Sorts(set, res.Program) {
		t.Fatal("found incorrect program")
	}
	if res.Status == NoProg {
		t.Fatal("tiny budget cannot refute n=3")
	}
}

func TestCEGISArbitraryInputsN2(t *testing.T) {
	// With weak-order counterexamples the synthesized kernel must also
	// handle duplicates.
	set := isa.NewCmov(2, 1)
	res := SynthCEGIS(set, Options{
		Length: 4, Goal: GoalAscCounts0, Encoding: EncodingDense,
		CEGISArbitrary: true, Timeout: 30 * time.Second,
	})
	if res.Status != Found {
		t.Fatalf("status = %v", res.Status)
	}
	if !verify.SortsDuplicates(set, res.Program) {
		t.Fatal("CEGIS-arbitrary program mishandles duplicates")
	}
}

func TestIncrementalCEGISN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := SynthCEGIS(set, Options{
		Length: 4, Goal: GoalAscCounts0, Encoding: EncodingDense,
		Incremental: true,
	})
	if res.Status != Found {
		t.Fatalf("status = %v", res.Status)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("incremental CEGIS program does not sort")
	}
}

func TestIncrementalMatchesRebuildCEGIS(t *testing.T) {
	// Both modes must find correct kernels on n=3 (CEGIS needs only a
	// handful of counterexamples — the paper's observation that it beats
	// single-query SMT-PERM). ~1–3 minutes; gate behind SORTSYNTH_SLOW.
	if os.Getenv("SORTSYNTH_SLOW") == "" {
		t.Skip("set SORTSYNTH_SLOW=1 for the n=3 CEGIS comparison")
	}
	set := isa.NewCmov(3, 1)
	base := Options{Length: 11, Goal: GoalAscCounts0, Encoding: EncodingDense,
		MaxConflicts: 500_000, Timeout: 4 * time.Minute}
	inc := base
	inc.Incremental = true
	a := SynthCEGIS(set, base)
	b := SynthCEGIS(set, inc)
	for _, r := range []*Result{a, b} {
		if r.Status == Found && !verify.Sorts(set, r.Program) {
			t.Fatal("incorrect program")
		}
	}
	t.Logf("rebuild: %v in %d iters (%v); incremental: %v in %d iters (%v)",
		a.Status, a.Iterations, a.Elapsed, b.Status, b.Iterations, b.Elapsed)
}

func TestSynthPermN3(t *testing.T) {
	// The headline SMT-PERM experiment at n=3, length 11 (paper: 44 min
	// with Z3; this propositional encoding takes ~9–10 min). Too slow for
	// the default suite; enable with SORTSYNTH_SLOW=1 (see also
	// cmd/experiments -table=smt).
	if os.Getenv("SORTSYNTH_SLOW") == "" {
		t.Skip("set SORTSYNTH_SLOW=1 to run the ~10 min SMT-PERM n=3 experiment")
	}
	set := isa.NewCmov(3, 1)
	res := SynthPerm(set, Options{
		Length: 11, Goal: GoalAscCounts0, Encoding: EncodingDense,
		Timeout: 10 * time.Minute,
	})
	if res.Status != Found {
		t.Fatalf("n=3 SMT-PERM status = %v after %v", res.Status, res.Elapsed)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("n=3 SMT-PERM program does not sort")
	}
	t.Logf("n=3 SMT-PERM: %v, %d conflicts", res.Elapsed, res.Conflicts)
}
