package smt

import (
	"context"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/sat"
	"sortsynth/internal/verify"
)

// Status is the synthesis verdict.
type Status uint8

// Verdicts.
const (
	Found     Status = iota // a correct program was synthesized
	NoProg                  // proven: no program of this length satisfies the goal
	Budget                  // solver budget (conflicts/time) exhausted
	Cancelled               // the context passed to a *Context entry was cancelled
)

func (s Status) String() string {
	switch s {
	case Found:
		return "found"
	case NoProg:
		return "no-program"
	case Budget:
		return "budget"
	case Cancelled:
		return "cancelled"
	}
	return "status?"
}

// Options configures a solver-based synthesis run.
type Options struct {
	Length   int
	Goal     Goal
	Encoding Encoding
	Heur     Heuristics

	// Examples overrides the initial example set (default: CEGIS starts
	// with the single reversed permutation; PERM uses all permutations).
	Examples [][]int

	// CEGISArbitrary draws counterexamples from the full weak-order space
	// instead of restricting them to permutations of 1..n (the paper's
	// "arbitrary inputs" vs "inputs in range 1..n" CEGIS rows).
	CEGISArbitrary bool

	// Incremental reuses one solver across CEGIS iterations: each new
	// counterexample's constraints are added to the existing formula and
	// learned clauses carry over, instead of re-encoding from scratch.
	Incremental bool

	MaxConflicts int64
	Timeout      time.Duration
}

// Result reports a solver-based synthesis outcome.
type Result struct {
	Status     Status
	Program    isa.Program
	Iterations int // CEGIS refinement rounds (1 for PERM)
	Conflicts  int64
	Elapsed    time.Duration
}

// SynthPerm runs the SMT-PERM protocol: one query with every permutation
// of 1..n as an example. A Found program is correct by construction
// (§2.3: the permutation suite is complete for distinct values).
func SynthPerm(set *isa.Set, opt Options) *Result {
	return SynthPermContext(context.Background(), set, opt)
}

// SynthPermContext is SynthPerm with cancellation: the underlying CDCL
// loop polls ctx alongside its conflict/time budgets, so a cancelled
// context stops solver work promptly and is reported as Cancelled.
func SynthPermContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	start := time.Now()
	in := newInstance(set, opt.Length, opt.Encoding, opt.Goal, opt.Heur)
	examples := opt.Examples
	if examples == nil {
		examples = perm.All(set.N)
	}
	for _, ex := range examples {
		in.addExample(ex)
	}
	in.e.s.MaxConflicts = opt.MaxConflicts
	in.e.s.Timeout = opt.Timeout
	in.e.s.Stop = func() bool { return ctx.Err() != nil }
	res := &Result{Iterations: 1}
	switch in.e.s.Solve() {
	case sat.Sat:
		res.Status = Found
		res.Program = in.decode()
	case sat.Unsat:
		res.Status = NoProg
	default:
		res.Status = Budget
		if ctx.Err() != nil {
			res.Status = Cancelled
		}
	}
	res.Conflicts = in.e.s.Stats().Conflicts
	res.Elapsed = time.Since(start)
	return res
}

// SynthCEGIS runs counterexample-guided synthesis: synthesize against the
// current example set, verify on the complete suite, and add the failing
// input until verification passes. The verification oracle is exhaustive
// execution (sound and complete here), standing in for the SMT solver's
// model-based counterexample generation.
func SynthCEGIS(set *isa.Set, opt Options) *Result {
	return SynthCEGISContext(context.Background(), set, opt)
}

// SynthCEGISContext is SynthCEGIS with cancellation: the context is
// polled between refinement rounds and inside the CDCL loop of every
// solver call, so a cancelled context stops solver work promptly and is
// reported as Cancelled.
func SynthCEGISContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	start := time.Now()
	deadline := time.Time{}
	if opt.Timeout > 0 {
		deadline = start.Add(opt.Timeout)
	}
	examples := opt.Examples
	if examples == nil {
		// Start with the hardest single example: the reversed array.
		rev := make([]int, set.N)
		for i := range rev {
			rev[i] = set.N - i
		}
		examples = [][]int{rev}
	}
	res := &Result{}
	var in *instance                 // reused across iterations in incremental mode
	var blocked []isa.Program        // every candidate refuted without an expressible example
	var pendingBlocked []isa.Program // not yet encoded into the live instance
	pending := examples
	for {
		res.Iterations++
		if ctx.Err() != nil {
			res.Status = Cancelled
			res.Elapsed = time.Since(start)
			return res
		}
		if in == nil {
			in = newInstance(set, opt.Length, opt.Encoding, opt.Goal, opt.Heur)
			in.e.s.Stop = func() bool { return ctx.Err() != nil }
			pending = examples
			pendingBlocked = blocked // fresh instance: re-apply them all
		} else {
			// Incremental: keep the formula and learned clauses, undo the
			// previous model's decisions, add only the new example.
			in.e.s.ResetSearch()
		}
		for _, ex := range pending {
			in.addExample(ex)
		}
		pending = nil
		for _, b := range pendingBlocked {
			in.blockProgram(b)
		}
		pendingBlocked = nil
		in.e.s.MaxConflicts = opt.MaxConflicts
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				res.Status = Budget
				res.Elapsed = time.Since(start)
				return res
			}
			in.e.s.Timeout = remain
		}
		verdict := in.e.s.Solve()
		res.Conflicts += in.e.s.Stats().Conflicts
		switch verdict {
		case sat.Unsat:
			res.Status = NoProg
			res.Elapsed = time.Since(start)
			return res
		case sat.Unknown:
			res.Status = Budget
			if ctx.Err() != nil {
				res.Status = Cancelled
			}
			res.Elapsed = time.Since(start)
			return res
		}
		cand := in.decode()
		var ce []int
		if opt.CEGISArbitrary {
			ce = verify.DuplicateCounterexample(set, cand)
		} else {
			ce = verify.Counterexample(set, cand)
		}
		if ce == nil {
			res.Status = Found
			res.Program = cand
			res.Elapsed = time.Since(start)
			return res
		}
		if isPermutation(set.N, ce) {
			if opt.Incremental {
				pending = [][]int{ce}
			} else {
				examples = append(examples, ce)
				in = nil // re-encode everything next round
			}
		} else {
			// The extended duplicate suite can return counterexamples the
			// per-example encoding cannot express (repeated values, or
			// values at or below the zero-initialized scratch constant).
			// Exclude the refuted candidate directly and keep searching;
			// the clause is added next round, after ResetSearch.
			blocked = append(blocked, cand)
			pendingBlocked = append(pendingBlocked, cand)
		}
	}
}

// isPermutation reports whether in is a permutation of 1..n — the only
// example shape addGoal constrains correctly.
func isPermutation(n int, in []int) bool {
	if len(in) != n {
		return false
	}
	seen := make([]bool, n+1)
	for _, v := range in {
		if v < 1 || v > n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// FindMinimal searches for the shortest program by increasing the length
// from lo to hi with the given protocol ("perm" or "cegis"). It returns
// the first Found result, or the last non-Found result.
func FindMinimal(set *isa.Set, opt Options, lo, hi int, cegis bool) *Result {
	var last *Result
	for l := lo; l <= hi; l++ {
		opt.Length = l
		if cegis {
			last = SynthCEGIS(set, opt)
		} else {
			last = SynthPerm(set, opt)
		}
		if last.Status == Found {
			return last
		}
		if last.Status == Budget {
			return last
		}
	}
	return last
}
