package service

import (
	"context"
	"sync"

	"sortsynth/internal/kcache"
)

// flight is one in-progress synthesis shared by every caller that asked
// for the same cache key while it was running.
type flight struct {
	done    chan struct{} // closed after entry/err are set
	entry   *kcache.Entry
	err     error
	waiters int
	cancel  context.CancelFunc
}

// flightGroup coalesces concurrent synthesis calls per key, so a
// thundering herd of identical requests triggers exactly one search.
// Unlike the classic singleflight, a flight runs under its own context
// derived from the group's base context: it survives any single caller's
// disconnect, but is cancelled as soon as the last waiting caller goes
// away — or the base context (server shutdown) is cancelled.
type flightGroup struct {
	base context.Context
	mu   sync.Mutex
	m    map[string]*flight
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, m: make(map[string]*flight)}
}

// Do returns fn's result for key, running fn at most once concurrently
// per key. shared reports whether this caller joined a flight started by
// an earlier caller. If ctx is cancelled while waiting, the caller
// detaches with ctx.Err(); the detachment of the last waiter cancels the
// flight's context, which stops the underlying search promptly.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (*kcache.Entry, error)) (entry *kcache.Entry, shared bool, err error) {
	g.mu.Lock()
	f, joined := g.m[key]
	if !joined {
		fctx, cancel := context.WithCancel(g.base)
		f = &flight{done: make(chan struct{}), cancel: cancel}
		g.m[key] = f
		go func() {
			f.entry, f.err = fn(fctx)
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.entry, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, joined, ctx.Err()
	}
}
