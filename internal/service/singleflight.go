package service

import (
	"context"
	"sync"

	"sortsynth/internal/kcache"
)

// flight is one in-progress synthesis shared by every caller that asked
// for the same cache key while it was running.
type flight struct {
	done    chan struct{} // closed after entry/err are set
	entry   *kcache.Entry
	err     error
	waiters int
	cancel  context.CancelFunc
	// cancelled is set, under the group mutex, when the last waiter
	// detached and the flight's context was torn down. A cancelled
	// flight may still sit in the group map for a moment before its
	// completion goroutine removes it; joiners must not attach to it —
	// they would inherit a spurious cancellation — and start a
	// replacement flight instead.
	cancelled bool
}

// flightGroup coalesces concurrent synthesis calls per key, so a
// thundering herd of identical requests triggers exactly one search.
// Unlike the classic singleflight, a flight runs under its own context
// derived from the group's base context: it survives any single caller's
// disconnect, but is cancelled as soon as the last waiting caller goes
// away — or the base context (server shutdown) is cancelled.
type flightGroup struct {
	base context.Context
	mu   sync.Mutex
	m    map[string]*flight
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, m: make(map[string]*flight)}
}

// Do returns fn's result for key, running fn at most once concurrently
// per key. shared reports whether this caller joined a flight started by
// an earlier caller. If ctx is cancelled while waiting, the caller
// detaches with ctx.Err(); the detachment of the last waiter cancels the
// flight's context, which stops the underlying search promptly.
//
// The last-waiter check and the cancellation happen under the group
// mutex as one atomic step. Cancelling outside the lock would race with
// a late joiner: it could attach between the waiters==0 check and the
// cancel call and have its flight killed under it.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (*kcache.Entry, error)) (entry *kcache.Entry, shared bool, err error) {
	g.mu.Lock()
	f, joined := g.m[key]
	if joined && f.cancelled {
		joined = false // doomed flight: start a replacement below
	}
	if !joined {
		fctx, cancel := context.WithCancel(g.base)
		nf := &flight{done: make(chan struct{}), cancel: cancel}
		g.m[key] = nf
		go func() {
			nf.entry, nf.err = fn(fctx)
			g.mu.Lock()
			// A cancelled flight may already have been replaced in the
			// map by a fresh one; only remove our own entry.
			if g.m[key] == nf {
				delete(g.m, key)
			}
			g.mu.Unlock()
			cancel()
			close(nf.done)
		}()
		f = nf
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.mu.Lock()
		f.waiters--
		g.mu.Unlock()
		return f.entry, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 && !f.cancelled {
			f.cancelled = true
			f.cancel()
		}
		g.mu.Unlock()
		return nil, joined, ctx.Err()
	}
}
