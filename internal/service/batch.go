package service

import (
	"net/http"
	"sync"
	"time"
)

// batchRequest is the POST /v1/synthesize/batch body: a bounded list of
// synthesize specs resolved concurrently. With a mounted universe the
// baked specs answer immediately; the stragglers coalesce through the
// same singleflight group as /v1/synthesize, so identical specs in one
// batch (or across concurrent batches) share a single search.
type batchRequest struct {
	Specs []synthesizeRequest `json:"specs"`
}

// batchItem is one spec's outcome. Exactly one of Response (ok) or
// Error (with Status, the HTTP status the spec would have gotten from
// /v1/synthesize) is set.
type batchItem struct {
	OK       bool                `json:"ok"`
	Status   int                 `json:"status"`
	Error    string              `json:"error,omitempty"`
	Response *synthesizeResponse `json:"response,omitempty"`
}

// batchResponse is the POST /v1/synthesize/batch reply: one item per
// spec, in request order.
type batchResponse struct {
	Results []batchItem `json:"results"`
	Count   int         `json:"count"`
}

func (s *Server) handleSynthesizeBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "empty specs list")
		return
	}
	if len(req.Specs) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d specs exceeds the limit %d", len(req.Specs), s.cfg.MaxBatch)
		return
	}

	results := make([]batchItem, len(req.Specs))
	var wg sync.WaitGroup
	for i := range req.Specs {
		sreq := &req.Specs[i]
		p, err := s.prepareSynthesize(sreq)
		if err != nil {
			results[i] = batchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		wg.Add(1)
		go func(i int, timeoutMS int64) {
			defer wg.Done()
			resp, err := s.resolveSynthesize(r.Context(), p, timeoutMS, start)
			if err != nil {
				status, msg := searchErrorStatus(r.Context(), err)
				results[i] = batchItem{Status: status, Error: msg}
				return
			}
			results[i] = batchItem{OK: true, Status: http.StatusOK, Response: &resp}
		}(i, sreq.TimeoutMS)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Results: results, Count: len(results)})
}
