package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestInstrumentUnlistedRoute pins the metrics nil-deref fix: instrument
// used to capture m.latency[route] directly, so wrapping any route that
// was not pre-registered in newMetrics panicked on its first request.
// Unlisted routes must now get a lazily-created histogram and show up in
// the latency snapshot alongside the registered ones.
func TestInstrumentUnlistedRoute(t *testing.T) {
	m := newMetrics([]string{"GET /listed"})
	h := m.instrument("GET /unlisted", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/unlisted", nil)) // used to panic
	if rec.Code != http.StatusNoContent {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusNoContent)
	}

	snap := m.latencySnapshot()
	if _, ok := snap["GET /listed"]; !ok {
		t.Error("registered route missing from snapshot")
	}
	unlisted, ok := snap["GET /unlisted"]
	if !ok {
		t.Fatal("lazily-instrumented route missing from snapshot")
	}
	if unlisted.Count != 1 {
		t.Errorf("unlisted route count = %d, want 1", unlisted.Count)
	}
}

// TestInstrumentSameRouteTwice checks that two wrappers for the same
// route share one histogram rather than clobbering each other.
func TestInstrumentSameRouteTwice(t *testing.T) {
	m := newMetrics(nil)
	ok := func(w http.ResponseWriter, r *http.Request) {}
	h1 := m.instrument("GET /x", ok)
	h2 := m.instrument("GET /x", ok)
	for _, h := range []http.HandlerFunc{h1, h2} {
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	}
	if got := m.latencySnapshot()["GET /x"].Count; got != 2 {
		t.Errorf("shared histogram count = %d, want 2", got)
	}
}
