package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sortsynth/internal/kcache"
)

func TestFlightGroupRunsOnce(t *testing.T) {
	g := newFlightGroup(context.Background())
	var calls atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (*kcache.Entry, error) {
		calls.Add(1)
		<-release
		return &kcache.Entry{Length: 11}, nil
	}

	const n = 16
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, shared, err := g.Do(context.Background(), "k", fn)
			if err != nil || e.Length != 11 {
				t.Errorf("Do = %v, %v", e, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let every caller join before the flight completes.
	for {
		g.mu.Lock()
		f := g.m["k"]
		ready := f != nil && f.waiters == n
		g.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("shared = %d, want %d", got, n-1)
	}
}

func TestFlightGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	g := newFlightGroup(context.Background())
	var calls atomic.Int64
	for _, key := range []string{"a", "b"} {
		_, shared, err := g.Do(context.Background(), key, func(ctx context.Context) (*kcache.Entry, error) {
			calls.Add(1)
			return &kcache.Entry{}, nil
		})
		if err != nil || shared {
			t.Errorf("key %q: shared=%v err=%v", key, shared, err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times, want 2", calls.Load())
	}
}

func TestFlightGroupCancelsWhenLastWaiterLeaves(t *testing.T) {
	g := newFlightGroup(context.Background())
	fnCancelled := make(chan struct{})
	fn := func(ctx context.Context) (*kcache.Entry, error) {
		<-ctx.Done()
		close(fnCancelled)
		return nil, ctx.Err()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, ctx := range []context.Context{ctx1, ctx2} {
		wg.Add(1)
		go func(ctx context.Context) {
			defer wg.Done()
			_, _, err := g.Do(ctx, "k", fn)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Do err = %v, want canceled", err)
			}
		}(ctx)
	}
	// Wait until both callers joined the flight.
	for {
		g.mu.Lock()
		f := g.m["k"]
		ready := f != nil && f.waiters == 2
		g.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cancel1()
	select {
	case <-fnCancelled:
		t.Fatal("flight cancelled while a waiter remains")
	case <-time.After(50 * time.Millisecond):
	}

	cancel2()
	select {
	case <-fnCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight not cancelled after the last waiter left")
	}
	wg.Wait()
}

// TestFlightGroupLateJoinerGetsFreshFlight pins the fix for a race in
// the last-waiter teardown: cancellation used to happen outside the
// group mutex after the waiters==0 check, so a caller joining in that
// window attached to a flight whose context was about to be cancelled
// and got a spurious failure. The fix cancels under the mutex and marks
// the flight, and a joiner that still finds the marked flight in the map
// (its completion goroutine is deliberately held up here, keeping the
// dead flight visible) must start a fresh one instead.
func TestFlightGroupLateJoinerGetsFreshFlight(t *testing.T) {
	g := newFlightGroup(context.Background())
	var calls atomic.Int64
	holdFirst := make(chan struct{})
	fn := func(ctx context.Context) (*kcache.Entry, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			<-holdFirst // keep the cancelled flight in the map
			return nil, ctx.Err()
		}
		return &kcache.Entry{Length: 7}, nil
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctxA, "k", fn)
		aDone <- err
	}()
	for {
		g.mu.Lock()
		f := g.m["k"]
		ready := f != nil && f.waiters == 1
		g.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cancelA()
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller A err = %v, want canceled", err)
	}
	// A's detach marked the flight cancelled before Do returned, and the
	// held-up fn keeps it in the map: the next caller sees exactly the
	// doomed-flight state the original race produced.
	g.mu.Lock()
	f := g.m["k"]
	g.mu.Unlock()
	if f == nil || !f.cancelled {
		t.Fatalf("cancelled flight not visible in the map (flight=%v)", f)
	}

	e, shared, err := g.Do(context.Background(), "k", fn)
	if err != nil || e == nil || e.Length != 7 {
		t.Fatalf("late joiner: entry=%v err=%v, want fresh successful flight", e, err)
	}
	if shared {
		t.Error("late joiner reported shared=true, want a fresh flight")
	}
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times, want 2", calls.Load())
	}
	close(holdFirst)
	// The first flight's completion goroutine must not delete the map
	// entry of any newer flight for the key (the delete is guarded).
	g.mu.Lock()
	stale := g.m["k"] == f
	g.mu.Unlock()
	if stale {
		t.Error("cancelled flight still mapped after replacement")
	}
}

// TestFlightGroupWaitersReturnToZero pins the success-path bookkeeping:
// completing callers decrement waiters too, so the count drains to zero
// rather than leaking upward forever.
func TestFlightGroupWaitersReturnToZero(t *testing.T) {
	g := newFlightGroup(context.Background())
	release := make(chan struct{})
	fn := func(ctx context.Context) (*kcache.Entry, error) {
		<-release
		return &kcache.Entry{}, nil
	}
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := g.Do(context.Background(), "k", fn); err != nil {
				t.Errorf("Do err = %v", err)
			}
		}()
	}
	var f *flight
	for {
		g.mu.Lock()
		f = g.m["k"]
		ready := f != nil && f.waiters == n
		g.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	g.mu.Lock()
	waiters := f.waiters
	g.mu.Unlock()
	if waiters != 0 {
		t.Errorf("waiters = %d after all callers returned, want 0", waiters)
	}
}

func TestFlightGroupBaseContextCancelsFlights(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	g := newFlightGroup(base)
	started := make(chan struct{})
	fn := func(ctx context.Context) (*kcache.Entry, error) {
		close(started)
		<-ctx.Done()
		return nil, errShuttingDown
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", fn)
		done <- err
	}()
	<-started
	cancelBase()
	select {
	case err := <-done:
		if !errors.Is(err, errShuttingDown) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight survived base-context cancellation")
	}
}
