package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func synthesize(t *testing.T, url, body string) synthesizeResponse {
	t.Helper()
	resp, blob := postJSON(t, url+"/v1/synthesize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/synthesize: %d: %s", resp.StatusCode, blob)
	}
	var sr synthesizeResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatalf("bad response %s: %v", blob, err)
	}
	return sr
}

func getMetrics(t *testing.T, url string) map[string]map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Cache    map[string]any `json:"cache"`
		Searches map[string]any `json:"searches"`
		Universe map[string]any `json:"universe"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return map[string]map[string]any{"cache": m.Cache, "searches": m.Searches, "universe": m.Universe}
}

func counter(t *testing.T, m map[string]map[string]any, section, name string) int64 {
	t.Helper()
	v, ok := m[section][name]
	if !ok {
		t.Fatalf("metric %s.%s missing", section, name)
	}
	return int64(v.(float64))
}

func TestSynthesizeMissThenCachedHit(t *testing.T) {
	_, ts := newTestServer(t)

	// distmax on n=3 expands ~130k states (~1s): slow enough that the
	// ≥100× cached speedup is unambiguous, fast enough for the suite.
	body := `{"n": 3, "config": "distmax"}`

	t0 := time.Now()
	first := synthesize(t, ts.URL, body)
	missDur := time.Since(t0)
	if first.Cached {
		t.Fatal("first request reported cached=true")
	}
	if first.Length != 11 {
		t.Fatalf("length = %d, want 11", first.Length)
	}
	if !strings.Contains(first.Kernel, "mov") {
		t.Fatalf("kernel = %q", first.Kernel)
	}

	t0 = time.Now()
	second := synthesize(t, ts.URL, body)
	hitDur := time.Since(t0)
	if !second.Cached {
		t.Fatal("second identical request reported cached=false")
	}
	if second.Kernel != first.Kernel || second.Key != first.Key {
		t.Error("cached reply differs from the synthesized one")
	}
	t.Logf("miss: %v, hit: %v (%.0f× faster)", missDur, hitDur, float64(missDur)/float64(hitDur))
	if hitDur*100 > missDur {
		t.Errorf("cached hit (%v) is not ≥100× faster than the miss (%v)", hitDur, missDur)
	}

	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "cache", "hits"); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := counter(t, m, "searches", "started"); got != 1 {
		t.Errorf("searches started = %d, want 1", got)
	}
}

func TestSynthesizeCoalescesConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t)
	const clients = 8
	body := `{"n": 3, "config": "distmax"}`

	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]synthesizeResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = synthesize(t, ts.URL, body)
		}(i)
	}
	close(start)
	wg.Wait()

	coalesced := 0
	for i, sr := range results {
		if sr.Length != 11 {
			t.Errorf("client %d: length %d", i, sr.Length)
		}
		if sr.Kernel != results[0].Kernel {
			t.Errorf("client %d got a different kernel", i)
		}
		if sr.Coalesced {
			coalesced++
		}
	}
	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "searches", "started"); got != 1 {
		t.Errorf("searches started = %d, want exactly 1 for %d concurrent identical requests", got, clients)
	}
	if got := counter(t, m, "searches", "in_flight"); got != 0 {
		t.Errorf("in_flight = %d after completion", got)
	}
	// Whoever lost the race to open the flight must report coalesced.
	if got := counter(t, m, "searches", "coalesced"); got != int64(coalesced) || coalesced == 0 {
		t.Errorf("coalesced metric = %d, responses flagged = %d (want equal and > 0)", got, coalesced)
	}
	t.Logf("%d/%d requests coalesced onto one search", coalesced, clients)
}

func TestSynthesizeClientCancellationStopsSearch(t *testing.T) {
	_, ts := newTestServer(t)

	// Plain Dijkstra on n=4 runs for minutes; the 150ms client deadline
	// must abort the underlying search, not just the HTTP wait.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/synthesize",
		strings.NewReader(`{"n": 4, "config": "dijkstra"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("request succeeded with status %d, want context deadline error", resp.StatusCode)
	}

	// The search must wind down promptly once its last waiter is gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := getMetrics(t, ts.URL)
		started := counter(t, m, "searches", "started")
		completed := counter(t, m, "searches", "completed")
		cancelled := counter(t, m, "searches", "cancelled")
		inFlight := counter(t, m, "searches", "in_flight")
		if started == 1 && completed == 1 && cancelled == 1 && inFlight == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("search not cancelled: started=%d completed=%d cancelled=%d in_flight=%d",
				started, completed, cancelled, inFlight)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSynthesizeRequestTimeoutReturns504(t *testing.T) {
	_, ts := newTestServer(t)
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize", `{"n": 4, "config": "dijkstra", "timeout_ms": 100}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, blob)
	}
}

func TestSynthesizeMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"truncated json", `{"n": 3,`},
		{"not json", `synthesize me a kernel please`},
		{"unknown field", `{"n": 3, "frobnicate": true}`},
		{"trailing garbage", `{"n": 3} {"n": 4}`},
		{"n too large", `{"n": 6}`},
		{"n too small", `{"n": 1}`},
		{"bad isa", `{"n": 3, "isa": "riscv"}`},
		{"bad config", `{"n": 3, "config": "bogosort"}`},
		{"too many registers", `{"n": 5, "m": 3}`},
		{"negative m", `{"n": 3, "m": -1}`},
		{"no known bound", `{"n": 3, "m": 2}`},
		{"max_solutions without all", `{"n": 3, "max_solutions": 5}`},
		{"max_len beyond depth limit", `{"n": 3, "max_len": 251}`},
	}
	for _, tc := range cases {
		resp, blob := postJSON(t, ts.URL+"/v1/synthesize", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, blob)
		}
		var ae apiError
		if err := json.Unmarshal(blob, &ae); err != nil || ae.Error == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, blob)
		}
	}
}

func TestSynthesizeExplicitBoundTooShort(t *testing.T) {
	_, ts := newTestServer(t)
	// No 3-value cmov kernel of length ≤ 5 exists; the search exhausts.
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize", `{"n": 3, "max_len": 5, "config": "distmax"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, blob)
	}
}

func TestSynthesizeAllSolutionsMinMax(t *testing.T) {
	_, ts := newTestServer(t)
	sr := synthesize(t, ts.URL, `{"n": 2, "isa": "minmax", "all": true, "max_solutions": 5}`)
	if sr.Length != 3 {
		t.Errorf("length = %d, want 3", sr.Length)
	}
	if sr.SolutionCount < 1 || len(sr.Programs) < 1 {
		t.Errorf("solution_count = %d, programs = %d", sr.SolutionCount, len(sr.Programs))
	}
}

func TestKernelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	get := func(path string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	status, m := get("/v1/kernels?n=3")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var list []kernelInfo
	json.Unmarshal(m["kernels"], &list)
	names := map[string]bool{}
	for _, k := range list {
		if k.N != 3 {
			t.Errorf("n filter leaked: %+v", k)
		}
		names[k.Name] = true
	}
	for _, want := range []string{"enum", "network", "std", "sort3_minmax"} {
		if !names[want] {
			t.Errorf("missing contender %q in %v", want, names)
		}
	}

	status, m = get("/v1/kernels?isa=minmax")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	json.Unmarshal(m["kernels"], &list)
	if len(list) == 0 {
		t.Fatal("no minmax contenders")
	}
	for _, k := range list {
		if k.ISA != "minmax" {
			t.Errorf("isa filter leaked: %+v", k)
		}
	}

	status, m = get("/v1/kernels?name=enum&n=4")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	json.Unmarshal(m["kernels"], &list)
	if len(list) != 1 || list[0].Program == "" || list[0].Instructions != 20 {
		t.Errorf("name lookup = %+v", list)
	}

	if status, _ = get("/v1/kernels?name=nonexistent"); status != http.StatusNotFound {
		t.Errorf("bogus name: status = %d, want 404", status)
	}
	if status, _ = get("/v1/kernels?n=9"); status != http.StatusBadRequest {
		t.Errorf("bad n: status = %d, want 400", status)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// The paper's §2.1 kernel: correct on permutations and duplicates.
	status, m := verifyReq(t, ts.URL, `{"n": 3, "program": "mov s1 r1; cmp r3 s1; cmovl s1 r3; cmovl r3 r1; cmp r2 r3; mov r1 r2; cmovg r2 r3; cmovg r3 r1; cmp r1 s1; cmovl r2 s1; cmovg r1 s1"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !m.Correct || !m.DuplicateSafe || m.Counterexample != nil {
		t.Errorf("paper kernel: %+v", m)
	}
	if m.Instructions != 11 || m.Analysis == nil {
		t.Errorf("analysis missing: %+v", m)
	}

	// A program that obviously does not sort.
	status, m = verifyReq(t, ts.URL, `{"n": 3, "program": "mov r1 r2"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if m.Correct || m.Counterexample == nil {
		t.Errorf("non-sorting program accepted: %+v", m)
	}

	// "mov r1 r2" at n=2 leaves both registers equal on every input, so
	// its output is always ascending: only the multiset-preservation half
	// of the correctness check can reject it.
	status, m = verifyReq(t, ts.URL, `{"n": 2, "program": "mov r1 r2"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if m.Correct || m.Counterexample == nil {
		t.Errorf("value-destroying program accepted: %+v", m)
	}

	// Malformed program text and out-of-set registers are 400s.
	for _, body := range []string{
		`{"n": 3, "program": "hcf r1 r2"}`,
		`{"n": 3, "program": "mov r9 r1"}`,
		`{"n": 3, "program": "mov s4 r1"}`,
		`{"n": 3, "program": ""}`,
	} {
		resp, blob := postJSON(t, ts.URL+"/v1/verify", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", body, resp.StatusCode, blob)
		}
	}
}

func verifyReq(t *testing.T, url, body string) (int, verifyResponse) {
	t.Helper()
	resp, blob := postJSON(t, url+"/v1/verify", body)
	var vr verifyResponse
	json.Unmarshal(blob, &vr)
	return resp.StatusCode, vr
}

func TestHealthzAndMetricsShape(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Latency map[string]histogramSnapshot `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{"POST /v1/synthesize", "GET /v1/kernels", "POST /v1/verify", "GET /metrics", "GET /healthz"} {
		if _, ok := m.Latency[route]; !ok {
			t.Errorf("latency histogram for %q missing", route)
		}
	}
	// The /healthz call above must have been observed.
	if m.Latency["GET /healthz"].Count != 1 {
		t.Errorf("healthz latency count = %d, want 1", m.Latency["GET /healthz"].Count)
	}
	if n := len(m.Latency["GET /healthz"].Buckets); n != numBuckets+1 {
		t.Errorf("bucket count = %d, want %d", n, numBuckets+1)
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	first := synthesize(t, ts1.URL, `{"n": 3}`)
	ts1.Close()
	s1.Close()

	// A "restarted" daemon over the same cache dir serves the kernel
	// without searching.
	s2, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Close()
	second := synthesize(t, ts2.URL, `{"n": 3}`)
	if !second.Cached || second.Kernel != first.Kernel {
		t.Errorf("restart lost the disk tier: cached=%v", second.Cached)
	}
	m := getMetrics(t, ts2.URL)
	if got := counter(t, m, "searches", "started"); got != 0 {
		t.Errorf("searches started after restart = %d, want 0", got)
	}
}

func TestServerCloseAbortsInFlightSearches(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, blob := postJSONNoFatal(ts.URL+"/v1/synthesize", `{"n": 4, "config": "dijkstra"}`)
		if resp == nil {
			errc <- fmt.Errorf("request failed entirely")
			return
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			errc <- fmt.Errorf("status = %d (%s), want 503", resp.StatusCode, blob)
			return
		}
		errc <- nil
	}()

	// Wait for the search to actually start, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := getMetrics(t, ts.URL)
		if counter(t, m, "searches", "in_flight") == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Close()

	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("request did not return after Server.Close")
	}
}

func postJSONNoFatal(url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}
