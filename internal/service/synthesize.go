package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/kcache"
)

// synthesizeRequest is the POST /v1/synthesize body.
type synthesizeRequest struct {
	ISA string `json:"isa"` // "cmov" (default) or "minmax"
	N   int    `json:"n"`
	M   *int   `json:"m"` // scratch registers; default 1

	// MaxLen bounds the program length; 0 means the known optimal length
	// for the set (an error if none is known).
	MaxLen int `json:"max_len"`

	// Backend selects the synthesizer from the backend registry:
	// "enum" (default), "smt", "cp", "ilp", "stoke", "mcts", "plan" or
	// "portfolio". Unknown names are a 400. The name participates in
	// the cache key, so different backends never share an artifact.
	Backend string `json:"backend"`

	// Seed seeds the randomized backends (stoke, mcts, portfolio);
	// ignored (and excluded from the cache key) for deterministic ones.
	Seed int64 `json:"seed"`

	// Config selects the search configuration: "best" (default, paper
	// config III), "base", "dijkstra", or "distmax" (admissible A*).
	// Only meaningful for the enum backend.
	Config string `json:"config"`

	DuplicateSafe bool `json:"duplicate_safe"`

	// Objective selects which member of the optimal-length solution set
	// comes back: "shortest" (default — the historical first pick),
	// "fastest" (minimum modeled throughput under the server's uarch
	// profile), or "balanced". Enum only; other backends reject it.
	Objective string `json:"objective"`

	// All enumerates every optimal kernel (ConfigAllSolutions);
	// MaxSolutions caps the materialized programs (default 10).
	All          bool `json:"all"`
	MaxSolutions int  `json:"max_solutions"`

	// TimeoutMS caps how long this request waits (0 = server default).
	// The search itself keeps running as long as any identical request
	// is still waiting on it.
	TimeoutMS int64 `json:"timeout_ms"`
}

// searchStats reports what a synthesis cost.
type searchStats struct {
	Expanded  int64   `json:"expanded"`
	Generated int64   `json:"generated"`
	SearchMS  float64 `json:"search_ms"` // the original search's wall time
	ServedMS  float64 `json:"served_ms"` // this request's wall time
}

// synthesizeResponse is the POST /v1/synthesize reply.
type synthesizeResponse struct {
	Kernel   string   `json:"kernel"`
	Programs []string `json:"programs,omitempty"`
	Length   int      `json:"length"`
	// Objective and Cost report the ranking objective of the kernel and
	// its primary uarch metric; both are omitted for shortest (the
	// historical reply shape).
	Objective     string  `json:"objective,omitempty"`
	Cost          float64 `json:"cost,omitempty"`
	SolutionCount int64   `json:"solution_count"`
	Backend       string  `json:"backend"`
	Cached        bool     `json:"cached"`
	Coalesced     bool     `json:"coalesced,omitempty"`
	// Source is the tier that answered: "universe" (baked L0),
	// "cache" (kcache L1/L2), or "search" (a live synthesis).
	Source string      `json:"source"`
	Key    string      `json:"key"`
	Stats  searchStats `json:"stats"`
}

// noKernelError reports an exhausted search: no kernel exists within the
// requested bound.
type noKernelError struct{ bound int }

func (e noKernelError) Error() string {
	return fmt.Sprintf("no kernel of length ≤ %d exists for this set", e.bound)
}

var errSearchTimeout = errors.New("search timed out")

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req synthesizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	p, err := s.prepareSynthesize(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.resolveSynthesize(r.Context(), p, req.TimeoutMS, start)
	if err != nil {
		s.writeSearchError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSynthesizeGet serves GET /v1/synthesize?n=3[&objective=fastest...]:
// the query-parameter form of the POST body, for curl-friendly reads of
// what is almost always a cached artifact. Unknown parameters are a 400,
// mirroring the strict JSON decoding on the POST side.
func (s *Server) handleSynthesizeGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, err := synthesizeRequestFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := s.prepareSynthesize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.resolveSynthesize(r.Context(), p, req.TimeoutMS, start)
	if err != nil {
		s.writeSearchError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// synthesizeRequestFromQuery maps URL query parameters onto the POST
// body's fields (same names, same semantics).
func synthesizeRequestFromQuery(q url.Values) (*synthesizeRequest, error) {
	var req synthesizeRequest
	ints := map[string]*int{
		"n": &req.N, "max_len": &req.MaxLen, "max_solutions": &req.MaxSolutions,
	}
	bools := map[string]*bool{
		"duplicate_safe": &req.DuplicateSafe, "all": &req.All,
	}
	strs := map[string]*string{
		"isa": &req.ISA, "backend": &req.Backend,
		"config": &req.Config, "objective": &req.Objective,
	}
	for name, vals := range q {
		if len(vals) != 1 {
			return nil, fmt.Errorf("parameter %q given %d times", name, len(vals))
		}
		v := vals[0]
		var err error
		switch {
		case ints[name] != nil:
			*ints[name], err = strconv.Atoi(v)
		case bools[name] != nil:
			*bools[name], err = strconv.ParseBool(v)
		case strs[name] != nil:
			*strs[name] = v
		case name == "m":
			var m int
			if m, err = strconv.Atoi(v); err == nil {
				req.M = &m
			}
		case name == "seed":
			req.Seed, err = strconv.ParseInt(v, 10, 64)
		case name == "timeout_ms":
			req.TimeoutMS, err = strconv.ParseInt(v, 10, 64)
		default:
			return nil, fmt.Errorf("unknown parameter %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", name, v, err)
		}
	}
	return &req, nil
}

// prepared is a validated synthesize request: the serving cache key and
// the flight function that computes the artifact on a full miss. All
// validation errors happen here (client errors, 400) so that resolution
// errors are purely search outcomes.
type prepared struct {
	key  kcache.Key
	hash string
	run  func(fctx context.Context) (*kcache.Entry, error)
}

// prepareSynthesize validates req and builds its cache key and flight.
func (s *Server) prepareSynthesize(req *synthesizeRequest) (prepared, error) {
	var p prepared
	m := 1
	if req.M != nil {
		m = *req.M
	}
	set, err := s.setFor(req.ISA, req.N, m)
	if err != nil {
		return p, err
	}
	beName := req.Backend
	if beName == "" {
		beName = "enum"
	}
	if !s.registry.Has(beName) {
		_, err := s.registry.Get(beName) // *backend.UnknownBackendError
		return p, err
	}

	// The enum backend keeps the full option surface (configs, all-
	// solutions enumeration); every other backend takes the reduced
	// Spec and runs through the registry.
	if beName == "enum" {
		opt, err := s.buildOptions(set, req)
		if err != nil {
			return p, err
		}
		p.key = kcache.KeyFor(set, opt)
		p.run = func(fctx context.Context) (*kcache.Entry, error) {
			return s.runSearch(fctx, p.key, set, opt)
		}
	} else {
		spec, err := s.buildSpec(set, beName, req)
		if err != nil {
			return p, err
		}
		p.key = kcache.KeyForBackend(set, beName, spec.MaxLen, spec.Seed, spec.DuplicateSafe)
		p.run = func(fctx context.Context) (*kcache.Entry, error) {
			return s.runBackend(fctx, p.key, set, beName, spec)
		}
	}
	p.hash = p.key.Hash()
	return p, nil
}

// resolveSynthesize answers a prepared request through the tiers in
// order: the baked universe (L0, lock-free, zero searches), the kcache
// memory/disk tiers (L1/L2), then a singleflight-coalesced live
// synthesis. Errors are search outcomes for writeSearchError.
func (s *Server) resolveSynthesize(ctx context.Context, p prepared, timeoutMS int64, start time.Time) (synthesizeResponse, error) {
	if s.universe != nil {
		if e, ok := s.universe.Lookup(p.key); ok {
			if e.NoKernel {
				// A baked refutation: the search that would prove it
				// again is exactly what the universe exists to avoid.
				s.metrics.universeNegatives.Add(1)
				return synthesizeResponse{}, noKernelError{bound: e.Length}
			}
			return responseFor(e, p.hash, sourceUniverse, false, start), nil
		}
	}

	if e, ok := s.cache.Get(p.key); ok {
		s.metrics.cacheHits.Add(1)
		return responseFor(e, p.hash, sourceCache, false, start), nil
	}
	s.metrics.cacheMisses.Add(1)

	// Bound this caller's wait; the flight itself runs under the group's
	// base context and its own SearchTimeout.
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}

	entry, shared, err := s.flights.Do(ctx, p.hash, p.run)
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		return synthesizeResponse{}, err
	}
	return responseFor(entry, p.hash, sourceSearch, shared, start), nil
}

// buildOptions maps the request onto the named enum configurations.
func (s *Server) buildOptions(set *isa.Set, req *synthesizeRequest) (enum.Options, error) {
	var opt enum.Options
	switch req.Config {
	case "", "best":
		opt = enum.ConfigBest()
	case "base":
		opt = enum.ConfigBase()
	case "dijkstra":
		opt = enum.ConfigDijkstra()
	case "distmax":
		opt = enum.Options{Heuristic: enum.HeurDistMax, UseDistPrune: true, ViabilityErase: true}
	default:
		return opt, fmt.Errorf("unknown config %q (want best, base, dijkstra or distmax)", req.Config)
	}
	if req.All {
		opt = enum.ConfigAllSolutions()
		opt.MaxSolutions = 10
		if req.MaxSolutions > 0 {
			opt.MaxSolutions = min(req.MaxSolutions, 1000)
		}
	} else if req.MaxSolutions != 0 {
		return opt, errors.New("max_solutions requires \"all\": true")
	}
	obj, err := enum.ParseObjective(req.Objective)
	if err != nil {
		return opt, err
	}
	opt.Objective = obj
	// The profile is a server-wide deployment knob (the hardware the
	// fleet ranks for), not a per-request one: per-request profiles would
	// fragment the cache by client whim.
	opt.Profile = s.cfg.UarchProfile
	opt.DuplicateSafe = req.DuplicateSafe
	opt.MaxLen = req.MaxLen
	if opt.MaxLen > enum.MaxDepth {
		// Reject up front: the engines would return the same typed error,
		// but this way it is a plain 400 before any flight is created.
		return opt, fmt.Errorf("max_len %d exceeds the engine depth limit %d", req.MaxLen, enum.MaxDepth)
	}
	if opt.MaxLen == 0 {
		l, ok := knownOptimalLength(set)
		if !ok {
			return opt, fmt.Errorf("no known optimal length for %s; pass max_len", set)
		}
		opt.MaxLen = l
	}
	// Worker count and the server-side wall cap are serving-layer tuning
	// knobs: both are excluded from the cache key, so they never fragment
	// the artifact space.
	opt.Workers = s.cfg.SearchWorkers
	opt.Timeout = s.cfg.SearchTimeout
	return opt, nil
}

// buildSpec maps the request onto a backend.Spec for the non-enum
// backends, rejecting the enum-only knobs up front.
func (s *Server) buildSpec(set *isa.Set, beName string, req *synthesizeRequest) (backend.Spec, error) {
	var spec backend.Spec
	if req.Config != "" {
		return spec, fmt.Errorf("config applies only to the enum backend (got backend %q)", beName)
	}
	if req.All || req.MaxSolutions != 0 {
		return spec, fmt.Errorf("all/max_solutions apply only to the enum backend (got backend %q)", beName)
	}
	if req.DuplicateSafe {
		return spec, fmt.Errorf("duplicate_safe applies only to the enum backend (got backend %q)", beName)
	}
	// Validate the objective spelling, then reject anything but shortest
	// up front: the backend would return the same typed error, but this
	// way it is a plain 400 before any flight is created.
	obj, err := enum.ParseObjective(req.Objective)
	if err != nil {
		return spec, err
	}
	if obj != enum.ObjectiveShortest {
		return spec, fmt.Errorf("objective %q applies only to the enum backend (backend %q synthesizes a single program)", obj, beName)
	}
	spec.MaxLen = req.MaxLen
	if spec.MaxLen > enum.MaxDepth {
		return spec, fmt.Errorf("max_len %d exceeds the engine depth limit %d", req.MaxLen, enum.MaxDepth)
	}
	if spec.MaxLen == 0 {
		l, ok := knownOptimalLength(set)
		if !ok {
			return spec, fmt.Errorf("no known optimal length for %s; pass max_len", set)
		}
		spec.MaxLen = l
	}
	// A seed only changes the artifact for the randomized backends;
	// normalizing it to 0 elsewhere keeps the cache unfragmented.
	if randomizedBackend(beName) {
		spec.Seed = req.Seed
	} else if req.Seed != 0 {
		return spec, fmt.Errorf("seed applies only to the randomized backends (got backend %q)", beName)
	}
	return spec, nil
}

// randomizedBackend reports whether the backend's artifact depends on
// Spec.Seed ("portfolio" races randomized members).
func randomizedBackend(name string) bool {
	switch name {
	case "stoke", "mcts", "portfolio":
		return true
	}
	return false
}

// knownOptimalLength mirrors sortsynth.KnownOptimalLength (the root
// package cannot be imported from internal/ without a cycle).
func knownOptimalLength(set *isa.Set) (int, bool) {
	if set.M != 1 {
		return 0, false
	}
	var table map[int]int
	if set.Kind == isa.KindCmov {
		table = map[int]int{2: 4, 3: 11, 4: 20, 5: 33}
	} else {
		table = map[int]int{2: 3, 3: 8, 4: 15, 5: 26}
	}
	l, ok := table[set.N]
	return l, ok
}

// runSearch executes one coalesced synthesis under the bounded worker
// pool and stores the artifact in the cache on success.
func (s *Server) runSearch(ctx context.Context, key kcache.Key, set *isa.Set, opt enum.Options) (*kcache.Entry, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	s.metrics.searchesStarted.Add(1)
	s.metrics.inFlight.Add(1)
	bc := s.metrics.backendFor("enum")
	bc.started.Add(1)
	res := enum.RunContext(ctx, set, opt)
	s.metrics.inFlight.Add(-1)
	s.metrics.searchesCompleted.Add(1)
	s.metrics.nodesExpanded.Add(res.Expanded)
	bc.completed.Add(1)
	bc.latency.observe(res.Elapsed)

	switch {
	case res.Err != nil:
		bc.errors.Add(1)
		return nil, res.Err
	case res.Cancelled:
		s.metrics.searchesCancelled.Add(1)
		bc.cancelled.Add(1)
		return nil, errShuttingDown
	case res.TimedOut:
		s.metrics.searchesTimedOut.Add(1)
		bc.timedOut.Add(1)
		return nil, errSearchTimeout
	case res.Length < 0:
		bc.noKernel.Add(1)
		return nil, noKernelError{bound: opt.MaxLen}
	}
	bc.found.Add(1)

	var objName string
	if opt.Objective != enum.ObjectiveShortest {
		objName = opt.Objective.String()
	}
	entry := &kcache.Entry{
		Backend:       "enum",
		Objective:     objName,
		Cost:          res.Cost,
		Program:       res.Program.Format(set.N),
		Length:        res.Length,
		SolutionCount: res.SolutionCount,
		Expanded:      res.Expanded,
		Generated:     res.Generated,
		ElapsedNS:     int64(res.Elapsed),
	}
	for _, p := range res.Programs {
		entry.Programs = append(entry.Programs, p.Format(set.N))
	}
	if err := s.cache.Put(key, entry); err != nil {
		// A failed disk write only costs a future re-synthesis; the
		// entry is still served from memory and to this request.
		s.metrics.recordPutError(err)
	}
	return entry, nil
}

// runBackend executes one coalesced non-enum synthesis through the
// backend registry under the bounded worker pool. Correctness of the
// winner is checked centrally inside backend.Run — no verification
// happens here.
func (s *Server) runBackend(ctx context.Context, key kcache.Key, set *isa.Set, beName string, spec backend.Spec) (*kcache.Entry, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	// The registry engines bound their own budgets; the server-side
	// wall cap applies uniformly, like SearchTimeout on the enum path.
	ctx, cancel := context.WithTimeout(ctx, s.cfg.SearchTimeout)
	defer cancel()

	s.metrics.searchesStarted.Add(1)
	s.metrics.inFlight.Add(1)
	bc := s.metrics.backendFor(beName)
	bc.started.Add(1)
	res, err := s.registry.Synthesize(ctx, beName, set, spec)
	s.metrics.inFlight.Add(-1)
	s.metrics.searchesCompleted.Add(1)
	bc.completed.Add(1)

	if err != nil {
		bc.errors.Add(1)
		return nil, err
	}
	bc.latency.observe(res.Stats.Elapsed)
	s.metrics.nodesExpanded.Add(res.Stats.Nodes)
	if sc := res.Sched; sc != nil {
		if sc.FirstPickWin {
			s.metrics.firstPickWins.Add(1)
		}
		if sc.FallbackWin {
			s.metrics.fallbacksWon.Add(1)
		}
		s.metrics.fallbackStarts.Add(int64(sc.FallbackStarts))
		s.metrics.staggeredSavedLaunches.Add(int64(sc.SavedLaunches))
	}

	switch res.Status {
	case backend.StatusFound:
		// fall through to the entry below
	case backend.StatusCancelled:
		s.metrics.searchesCancelled.Add(1)
		bc.cancelled.Add(1)
		return nil, errShuttingDown
	case backend.StatusTimedOut:
		s.metrics.searchesTimedOut.Add(1)
		bc.timedOut.Add(1)
		return nil, errSearchTimeout
	case backend.StatusNoProgram:
		bc.noKernel.Add(1)
		return nil, noKernelError{bound: spec.MaxLen}
	default: // StatusExhausted
		bc.noKernel.Add(1)
		return nil, budgetExhaustedError{backend: beName, bound: spec.MaxLen}
	}
	bc.found.Add(1)

	entry := &kcache.Entry{
		Backend:       beName,
		Program:       res.Program.Format(set.N),
		Length:        res.Length,
		SolutionCount: 1,
		Expanded:      res.Stats.Nodes,
		Generated:     res.Stats.Generated,
		ElapsedNS:     int64(res.Stats.Elapsed),
	}
	if err := s.cache.Put(key, entry); err != nil {
		s.metrics.recordPutError(err) // memory tier still serves it; see runSearch
	}
	return entry, nil
}

// budgetExhaustedError reports a backend that spent its search budget
// without finding a kernel or proving none exists — unlike
// noKernelError this is not a refutation.
type budgetExhaustedError struct {
	backend string
	bound   int
}

func (e budgetExhaustedError) Error() string {
	return fmt.Sprintf("backend %s exhausted its budget without a kernel of length ≤ %d (no refutation)", e.backend, e.bound)
}

// writeSearchError maps flight errors onto HTTP statuses.
func (s *Server) writeSearchError(w http.ResponseWriter, r *http.Request, err error) {
	status, msg := searchErrorStatus(r.Context(), err)
	writeError(w, status, "%s", msg)
}

// searchErrorStatus maps a resolution error onto an HTTP status and
// message. ctx is the caller's request (or batch item) context, used to
// distinguish a gone client from a search timeout.
func searchErrorStatus(ctx context.Context, err error) (int, string) {
	var noKernel noKernelError
	var budgetErr budgetExhaustedError
	var depthErr *enum.DepthLimitError
	var objErr *enum.UnknownObjectiveError
	var profErr *enum.UnknownProfileError
	var unsupErr *backend.UnsupportedObjectiveError
	switch {
	case errors.As(err, &depthErr):
		// Normally rejected in buildOptions before a flight starts; this
		// is the engines' own guard surfacing as a client error.
		return http.StatusBadRequest, err.Error()
	case errors.As(err, &objErr), errors.As(err, &profErr), errors.As(err, &unsupErr):
		// Same story: prepareSynthesize rejects these before a flight,
		// so hitting this arm means the engine-level guard fired.
		return http.StatusBadRequest, err.Error()
	case ctx.Err() != nil:
		// The client is gone; the status is for the log only.
		return http.StatusRequestTimeout, "client disconnected: " + err.Error()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, errSearchTimeout):
		return http.StatusGatewayTimeout, errSearchTimeout.Error()
	case errors.Is(err, errShuttingDown), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, errShuttingDown.Error()
	case errors.As(err, &noKernel):
		return http.StatusUnprocessableEntity, err.Error()
	case errors.As(err, &budgetErr):
		return http.StatusUnprocessableEntity, err.Error()
	default:
		// Includes *backend.IncorrectError: a backend bug, never a
		// client error, so it surfaces as a 500.
		return http.StatusInternalServerError, err.Error()
	}
}

// Response sources, in tier order.
const (
	sourceUniverse = "universe"
	sourceCache    = "cache"
	sourceSearch   = "search"
)

func responseFor(e *kcache.Entry, hash, source string, coalesced bool, start time.Time) synthesizeResponse {
	be := e.Backend
	if be == "" {
		be = "enum" // entries written before the backend field
	}
	return synthesizeResponse{
		Kernel:        e.Program,
		Programs:      e.Programs,
		Length:        e.Length,
		Objective:     e.Objective,
		Cost:          e.Cost,
		SolutionCount: e.SolutionCount,
		Backend:       be,
		Cached:        source != sourceSearch,
		Coalesced:     coalesced,
		Source:        source,
		Key:           hash,
		Stats: searchStats{
			Expanded:  e.Expanded,
			Generated: e.Generated,
			SearchMS:  float64(e.ElapsedNS) / float64(time.Millisecond),
			ServedMS:  float64(time.Since(start)) / float64(time.Millisecond),
		},
	}
}
