package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sortsynth/internal/universe"
)

// bakeMini writes a miniature universe (cmov, n=2, enum, budgets 3..5)
// and returns its path. The space is small enough to bake in
// milliseconds, and covers both a positive (L*=4) and a negative
// (budget 3) record.
func bakeMini(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mini.ssuniv")
	_, stats, err := universe.Bake(context.Background(), path, nil, universe.Options{
		ISAs: []string{"cmov"}, MinN: 2, MaxN: 2, Slack: 1,
		Backends: []string{"enum"}, Workers: 2, SpecTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 || stats.Baked == 0 {
		t.Fatalf("mini bake: %+v", stats)
	}
	return path
}

func newUniverseServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{CacheDir: t.TempDir(), UniversePath: bakeMini(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestUniverseServesBakedSpecWithZeroSearches(t *testing.T) {
	_, ts := newUniverseServer(t)

	// The default request for n=2 (enum, config best, max_len = L* = 4)
	// is exactly a baked spec: it must be answered from the universe
	// without starting a search or touching the kcache tiers.
	sr := synthesize(t, ts.URL, `{"n": 2}`)
	if sr.Source != "universe" || !sr.Cached {
		t.Fatalf("source = %q cached = %v, want universe hit", sr.Source, sr.Cached)
	}
	if sr.Length != 4 || sr.Backend != "enum" {
		t.Errorf("baked kernel: length=%d backend=%q", sr.Length, sr.Backend)
	}

	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "universe", "hits"); got != 1 {
		t.Errorf("universe hits = %d, want 1", got)
	}
	if got := counter(t, m, "searches", "started"); got != 0 {
		t.Errorf("searches started = %d, want 0: the baked spec must not search", got)
	}
	if got := counter(t, m, "cache", "hits") + counter(t, m, "cache", "misses"); got != 0 {
		t.Errorf("kcache consulted %d times, want 0: universe is L0", got)
	}
	if got := counter(t, m, "universe", "records"); got < 3 {
		t.Errorf("universe records = %d, want ≥ 3", got)
	}
}

func TestUniverseServesBakedNegative(t *testing.T) {
	_, ts := newUniverseServer(t)

	// No 2-value cmov kernel of length ≤ 3 exists; the refutation is
	// baked, so the 422 comes straight from the universe.
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize", `{"n": 2, "max_len": 3}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, blob)
	}
	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "universe", "negatives"); got != 1 {
		t.Errorf("universe negatives = %d, want 1", got)
	}
	if got := counter(t, m, "searches", "started"); got != 0 {
		t.Errorf("searches started = %d, want 0: the baked refutation must not re-search", got)
	}
}

func TestUniverseMissFallsThroughToSearch(t *testing.T) {
	_, ts := newUniverseServer(t)

	// minmax n=2 is outside the mini bake (cmov only): a miss on the
	// universe must fall through to a normal live synthesis.
	sr := synthesize(t, ts.URL, `{"n": 2, "isa": "minmax"}`)
	if sr.Source != "search" || sr.Cached {
		t.Fatalf("source = %q cached = %v, want live search", sr.Source, sr.Cached)
	}
	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "universe", "misses"); got != 1 {
		t.Errorf("universe misses = %d, want 1", got)
	}
	if got := counter(t, m, "searches", "started"); got != 1 {
		t.Errorf("searches started = %d, want 1", got)
	}
	// The artifact lands in the kcache, so a repeat is a cache hit (the
	// universe still misses first — no promotion into L0).
	sr = synthesize(t, ts.URL, `{"n": 2, "isa": "minmax"}`)
	if sr.Source != "cache" {
		t.Errorf("repeat source = %q, want cache", sr.Source)
	}
}

func TestUniverseMetricsUnmounted(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Universe map[string]any `json:"universe"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if mounted, ok := m.Universe["mounted"].(bool); !ok || mounted {
		t.Errorf("universe section without -universe = %v, want mounted=false", m.Universe)
	}
}

func TestNewRejectsDamagedUniverse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ssuniv")
	if err := os.WriteFile(path, []byte("not a universe artifact at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := New(Config{UniversePath: path}); err == nil {
		s.Close()
		t.Fatal("New accepted a damaged universe artifact")
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newUniverseServer(t)

	body := `{"specs": [
		{"n": 2},
		{"n": 2, "isa": "riscv"},
		{"n": 2, "max_len": 3},
		{"n": 2}
	]}`
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, blob)
	}
	var br batchResponse
	if err := json.Unmarshal(blob, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 4 || len(br.Results) != 4 {
		t.Fatalf("count = %d, results = %d, want 4", br.Count, len(br.Results))
	}

	// Item 0: baked hit.
	if r := br.Results[0]; !r.OK || r.Response == nil || r.Response.Source != "universe" || r.Response.Length != 4 {
		t.Errorf("item 0 = %+v, want a universe hit of length 4", r)
	}
	// Item 1: validation error, per-item 400 without failing the batch.
	if r := br.Results[1]; r.OK || r.Status != http.StatusBadRequest || r.Error == "" {
		t.Errorf("item 1 = %+v, want a 400 item", r)
	}
	// Item 2: baked refutation, per-item 422.
	if r := br.Results[2]; r.OK || r.Status != http.StatusUnprocessableEntity {
		t.Errorf("item 2 = %+v, want a 422 item", r)
	}
	// Item 3: identical to item 0, also served from the universe.
	if r := br.Results[3]; !r.OK || r.Response == nil || r.Response.Source != "universe" {
		t.Errorf("item 3 = %+v, want a universe hit", r)
	}

	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "searches", "started"); got != 0 {
		t.Errorf("searches started = %d, want 0: every resolvable spec was baked", got)
	}
}

func TestBatchCoalescesIdenticalMisses(t *testing.T) {
	_, ts := newTestServer(t)

	// Four identical non-baked specs in one batch: the flight group must
	// collapse them onto a single search.
	body := `{"specs": [{"n": 3}, {"n": 3}, {"n": 3}, {"n": 3}]}`
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, blob)
	}
	var br batchResponse
	if err := json.Unmarshal(blob, &br); err != nil {
		t.Fatal(err)
	}
	for i, r := range br.Results {
		if !r.OK || r.Response == nil || r.Response.Length != 11 {
			t.Fatalf("item %d = %+v", i, r)
		}
		if r.Response.Kernel != br.Results[0].Response.Kernel {
			t.Errorf("item %d kernel differs", i)
		}
	}
	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "searches", "started"); got != 1 {
		t.Errorf("searches started = %d, want 1 for four identical specs", got)
	}
}

func TestBatchLimits(t *testing.T) {
	s, err := New(Config{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/synthesize/batch", `{"specs": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", resp.StatusCode)
	}
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize/batch", `{"specs": [{"n": 2}, {"n": 2}, {"n": 2}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400: %s", resp.StatusCode, blob)
	}
}

func TestCachePutErrorsAreCounted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	// Break the disk tier out from under the server: replacing the cache
	// directory with a regular file makes every CreateTemp fail (even as
	// root, where permission bits would not).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The synthesis still succeeds — the memory tier serves it — but the
	// failed disk write must be counted, not swallowed.
	sr := synthesize(t, ts.URL, `{"n": 2}`)
	if sr.Length != 4 {
		t.Fatalf("length = %d", sr.Length)
	}
	m := getMetrics(t, ts.URL)
	if got := counter(t, m, "cache", "put_errors"); got != 1 {
		t.Errorf("cache put_errors = %d, want 1", got)
	}
	// And the entry is really in the memory tier.
	if sr = synthesize(t, ts.URL, `{"n": 2}`); sr.Source != "cache" {
		t.Errorf("repeat source = %q, want cache (memory tier)", sr.Source)
	}
}
