package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: bad response: %v", url, err)
	}
	return resp
}

// TestSynthesizeGetObjective drives the acceptance path end to end:
// GET /v1/synthesize?...&objective=fastest returns a verified kernel
// that diverges from the shortest pick, under a distinct cache key.
func TestSynthesizeGetObjective(t *testing.T) {
	_, ts := newTestServer(t)

	var fast synthesizeResponse
	resp := getJSON(t, ts.URL+"/v1/synthesize?isa=cmov&n=3&objective=fastest", &fast)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fastest: status %d", resp.StatusCode)
	}
	if fast.Length != 11 || fast.Objective != "fastest" || fast.Cost <= 0 {
		t.Fatalf("fastest reply: length %d objective %q cost %v", fast.Length, fast.Objective, fast.Cost)
	}
	if fast.SolutionCount < 2 {
		t.Errorf("fastest should report the ranked set size, got %d", fast.SolutionCount)
	}

	var short synthesizeResponse
	resp = getJSON(t, ts.URL+"/v1/synthesize?n=3", &short)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shortest: status %d", resp.StatusCode)
	}
	if short.Objective != "" || short.Cost != 0 {
		t.Errorf("shortest reply should keep the historical shape, got objective %q cost %v", short.Objective, short.Cost)
	}
	if short.Kernel == fast.Kernel {
		t.Error("shortest and fastest served the same kernel at n=3")
	}
	if short.Key == fast.Key {
		t.Error("objectives share a cache key")
	}

	// The GET form and the POST form are the same request: same key,
	// now answered from cache.
	var again synthesizeResponse
	if _, blob := postJSON(t, ts.URL+"/v1/synthesize", `{"n": 3, "objective": "fastest"}`); true {
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("POST reply: %v", err)
		}
	}
	if again.Key != fast.Key || !again.Cached {
		t.Errorf("POST objective=fastest: key %q cached %v, want the GET's key from cache", again.Key, again.Cached)
	}
}

// TestSynthesizeObjectiveRejections pins the 400s: bad spellings,
// unknown query parameters, and non-enum backends.
func TestSynthesizeObjectiveRejections(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"?n=3&objective=speed",
		"?n=3&objective=FASTEST",
		"?n=2&backend=smt&max_len=4&objective=fastest",
		"?n=3&objectve=fastest", // typo must not silently no-op
	} {
		var e apiError
		resp := getJSON(t, ts.URL+"/v1/synthesize"+q, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d (%s), want 400", q, resp.StatusCode, e.Error)
		}
	}
}

// TestSortgenObjective pins the sorter-generation split: fastest is the
// default (today's bytes), shortest inlines the first-pick kernels
// under a distinct key, balanced is a 400.
func TestSortgenObjective(t *testing.T) {
	_, ts := newTestServer(t)

	var def, fast, short sortgenResponse
	getJSON(t, ts.URL+"/v1/sortgen?n=13", &def)
	getJSON(t, ts.URL+"/v1/sortgen?n=13&objective=fastest", &fast)
	getJSON(t, ts.URL+"/v1/sortgen?n=13&objective=shortest", &short)
	if def.Objective != "fastest" || def.Key != fast.Key || def.Source != fast.Source {
		t.Error("default objective should be fastest with identical key and source")
	}
	if short.Key == fast.Key {
		t.Error("objectives share a sortgen cache key")
	}
	if short.Source == fast.Source {
		t.Error("shortest and fastest sorters have identical source")
	}
	if short.Comparators != fast.Comparators || short.KernelInstructions != fast.KernelInstructions {
		t.Error("objective changed the plan counters; only kernel bodies should differ")
	}

	var e apiError
	resp := getJSON(t, ts.URL+"/v1/sortgen?n=13&objective=balanced", &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("balanced sortgen: status %d, want 400", resp.StatusCode)
	}
}
