package service

import (
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// numBuckets is the number of finite histogram buckets; the implicit
// last bucket is +Inf.
const numBuckets = 16

// latencyBuckets are the upper bounds (in milliseconds) of the
// per-endpoint latency histograms.
var latencyBuckets = [numBuckets]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	count  atomic.Int64
	sumUS  atomic.Int64 // total microseconds, for the mean
	bucket [numBuckets + 1]atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
	for i, ub := range latencyBuckets {
		if ms <= ub {
			h.bucket[i].Add(1)
			return
		}
	}
	h.bucket[numBuckets].Add(1)
}

// bucketSnapshot is one histogram bucket in the /metrics JSON.
type bucketSnapshot struct {
	LE    any   `json:"le"` // upper bound in ms, or "+Inf"
	Count int64 `json:"count"`
}

type histogramSnapshot struct {
	Count   int64            `json:"count"`
	SumMS   float64          `json:"sum_ms"`
	Buckets []bucketSnapshot `json:"buckets"`
}

func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{
		Count: h.count.Load(),
		SumMS: float64(h.sumUS.Load()) / 1000,
	}
	for i, ub := range latencyBuckets {
		s.Buckets = append(s.Buckets, bucketSnapshot{LE: ub, Count: h.bucket[i].Load()})
	}
	s.Buckets = append(s.Buckets, bucketSnapshot{LE: "+Inf", Count: h.bucket[numBuckets].Load()})
	return s
}

// metrics holds the expvar-style service counters surfaced by /metrics.
type metrics struct {
	start time.Time

	// Request-level cache outcomes (the kcache tier split lives in
	// kcache.Stats and is merged into the /metrics payload).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// cachePutErrors counts failed kcache.Put disk writes. A dead disk
	// tier silently degrades to permanent re-computation; this is the
	// signal that it is happening.
	cachePutErrors atomic.Int64
	putErrMu       sync.Mutex
	putErrSeen     map[string]bool // error strings already logged

	// universeNegatives counts requests answered 422 straight from a
	// baked refutation record (hits/misses/corruption-skips live in
	// universe.Stats and are merged into the /metrics payload).
	universeNegatives atomic.Int64

	// Staggered-portfolio scheduler outcomes (see backend.SchedStats);
	// tunedLoadErrors counts dispatch tables rejected at mount time.
	firstPickWins          atomic.Int64
	fallbackStarts         atomic.Int64
	fallbacksWon           atomic.Int64
	staggeredSavedLaunches atomic.Int64
	tunedLoadErrors        atomic.Int64

	searchesStarted   atomic.Int64
	searchesCompleted atomic.Int64
	searchesCancelled atomic.Int64
	searchesTimedOut  atomic.Int64
	inFlight          atomic.Int64
	coalesced         atomic.Int64 // requests that joined an existing flight
	nodesExpanded     atomic.Int64

	mu      sync.Mutex            // guards latency (histograms are self-synchronizing)
	latency map[string]*histogram // keyed by route pattern

	bmu      sync.Mutex // guards backends (counters are self-synchronizing)
	backends map[string]*backendCounters
}

// recordPutError counts a failed cache write and logs the first
// occurrence of each distinct error string — enough to surface a dead
// disk tier without flooding the log on every miss.
func (m *metrics) recordPutError(err error) {
	m.cachePutErrors.Add(1)
	msg := err.Error()
	m.putErrMu.Lock()
	defer m.putErrMu.Unlock()
	if m.putErrSeen == nil {
		m.putErrSeen = make(map[string]bool)
	}
	// Bound the dedup set; past it, repeat messages may re-log, which
	// beats unbounded growth on pathological error strings.
	if len(m.putErrSeen) >= 128 {
		m.putErrSeen = make(map[string]bool)
	}
	if !m.putErrSeen[msg] {
		m.putErrSeen[msg] = true
		log.Printf("kcache: disk write failed (will re-synthesize on future misses): %v", err)
	}
}

// backendCounters tracks one registry backend's synthesis outcomes and
// latency, surfaced under "backends" in /metrics.
type backendCounters struct {
	started   atomic.Int64
	completed atomic.Int64
	found     atomic.Int64
	noKernel  atomic.Int64 // no-program proofs and exhausted budgets
	cancelled atomic.Int64
	timedOut  atomic.Int64
	errors    atomic.Int64
	latency   histogram
}

// backendSnapshot is one backend's counters in the /metrics JSON.
type backendSnapshot struct {
	Started   int64             `json:"started"`
	Completed int64             `json:"completed"`
	Found     int64             `json:"found"`
	NoKernel  int64             `json:"no_kernel"`
	Cancelled int64             `json:"cancelled"`
	TimedOut  int64             `json:"timed_out"`
	Errors    int64             `json:"errors"`
	Latency   histogramSnapshot `json:"latency"`
}

// backendFor returns the named backend's counters, creating them on
// first use.
func (m *metrics) backendFor(name string) *backendCounters {
	m.bmu.Lock()
	defer m.bmu.Unlock()
	if m.backends == nil {
		m.backends = make(map[string]*backendCounters)
	}
	bc, ok := m.backends[name]
	if !ok {
		bc = &backendCounters{}
		m.backends[name] = bc
	}
	return bc
}

// backendsSnapshot captures every backend's counters under the map lock.
func (m *metrics) backendsSnapshot() map[string]backendSnapshot {
	m.bmu.Lock()
	defer m.bmu.Unlock()
	out := make(map[string]backendSnapshot, len(m.backends))
	for name, bc := range m.backends {
		out[name] = backendSnapshot{
			Started:   bc.started.Load(),
			Completed: bc.completed.Load(),
			Found:     bc.found.Load(),
			NoKernel:  bc.noKernel.Load(),
			Cancelled: bc.cancelled.Load(),
			TimedOut:  bc.timedOut.Load(),
			Errors:    bc.errors.Load(),
			Latency:   bc.latency.snapshot(),
		}
	}
	return out
}

func newMetrics(routes []string) *metrics {
	m := &metrics{start: time.Now(), latency: make(map[string]*histogram, len(routes))}
	for _, r := range routes {
		m.latency[r] = &histogram{}
	}
	return m
}

// histFor returns the route's histogram, creating it on first use.
// Routes instrumented without being pre-registered in newMetrics used to
// capture a nil histogram and panic on their first request.
func (m *metrics) histFor(route string) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[route]
	if !ok {
		h = &histogram{}
		m.latency[route] = h
	}
	return h
}

// latencySnapshot captures every route's histogram under the map lock.
func (m *metrics) latencySnapshot() map[string]histogramSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]histogramSnapshot, len(m.latency))
	for route, h := range m.latency {
		out[route] = h.snapshot()
	}
	return out
}

// instrument wraps h to record the endpoint's latency histogram.
func (m *metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := m.histFor(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.observe(time.Since(start))
	}
}
