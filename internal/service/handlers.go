package service

import (
	"net/http"
	"strconv"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/kernels"
	"sortsynth/internal/uarch"
	"sortsynth/internal/verify"
)

// kernelInfo is one row of the GET /v1/kernels listing.
type kernelInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// ISA is "cmov" or "minmax" for contenders with an abstract program;
	// empty for pure-Go contenders (network, std, …).
	ISA          string `json:"isa,omitempty"`
	Instructions int    `json:"instructions,omitempty"`
	Native       bool   `json:"native"`
	// Program is the abstract program text, included only for single-
	// kernel lookups (?name=…).
	Program string `json:"program,omitempty"`
}

func isaName(k kernels.Kernel) string {
	if k.Set == nil {
		return ""
	}
	if k.Set.Kind == isa.KindMinMax {
		return "minmax"
	}
	return "cmov"
}

func infoFor(k kernels.Kernel, withProgram bool) kernelInfo {
	info := kernelInfo{
		Name:         k.Name,
		N:            k.N,
		ISA:          isaName(k),
		Instructions: len(k.Prog),
		Native:       k.Go != nil,
	}
	if withProgram && k.Prog != nil {
		info.Program = k.Prog.Format(k.N)
	}
	return info
}

// handleKernels serves the §5.3 contender registry. Query parameters:
// n (3..5), isa (cmov|minmax), name (exact contender name; implies the
// program text in the reply).
func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ns := []int{3, 4, 5}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 3 || n > 5 {
			writeError(w, http.StatusBadRequest, "bad n %q (registry covers 3..5)", v)
			return
		}
		ns = []int{n}
	}
	isaFilter := q.Get("isa")
	switch isaFilter {
	case "", "cmov", "minmax":
	default:
		writeError(w, http.StatusBadRequest, "unknown isa %q (want cmov or minmax)", isaFilter)
		return
	}

	if name := q.Get("name"); name != "" {
		var found []kernelInfo
		for _, n := range ns {
			if k, ok := kernels.Lookup(name, n); ok && (isaFilter == "" || isaName(k) == isaFilter) {
				found = append(found, infoFor(k, true))
			}
		}
		if len(found) == 0 {
			writeError(w, http.StatusNotFound, "no contender %q", name)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"kernels": found, "count": len(found)})
		return
	}

	var list []kernelInfo
	for _, n := range ns {
		for _, k := range kernels.Contenders(n) {
			if isaFilter != "" && isaName(k) != isaFilter {
				continue
			}
			list = append(list, infoFor(k, false))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"kernels": list, "count": len(list)})
}

// verifyRequest is the POST /v1/verify body.
type verifyRequest struct {
	ISA     string `json:"isa"`
	N       int    `json:"n"`
	M       *int   `json:"m"` // default 1
	Program string `json:"program"`
}

// analysisInfo is the §5.4 static cost model in the API's JSON shape.
type analysisInfo struct {
	Instructions int     `json:"instructions"`
	Uops         int     `json:"uops"`
	Score        int     `json:"score"`
	CriticalPath int     `json:"critical_path"`
	ILP          float64 `json:"ilp"`
	Throughput   float64 `json:"throughput"`
}

// verifyResponse reports the correctness check and the static cost model
// for a submitted program.
type verifyResponse struct {
	Correct bool `json:"correct"`
	// DuplicateSafe additionally certifies correctness on repeated
	// values (the weak-order suite). A kernel can sort all permutations
	// yet mis-sort ties.
	DuplicateSafe bool `json:"duplicate_safe"`
	// Counterexample is an input the program fails to sort, when any.
	Counterexample []int         `json:"counterexample,omitempty"`
	Instructions   int           `json:"instructions"`
	Analysis       *analysisInfo `json:"analysis,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m := 1
	if req.M != nil {
		m = *req.M
	}
	set, err := s.setFor(req.ISA, req.N, m)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := isa.ParseProgram(req.Program, set.N)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(p) == 0 {
		writeError(w, http.StatusBadRequest, "empty program")
		return
	}
	// ParseProgram bounds sorted registers by n but accepts any scratch
	// index; bound those by the set before executing.
	for i, in := range p {
		if int(in.Dst) >= set.Regs() || int(in.Src) >= set.Regs() {
			writeError(w, http.StatusBadRequest,
				"instruction %d uses a register outside the %d-register set (m=%d)", i+1, set.Regs(), m)
			return
		}
	}

	resp := verifyResponse{Instructions: len(p)}
	if ce := verify.Counterexample(set, p); ce != nil {
		resp.Counterexample = ce
	} else {
		resp.Correct = true
		if ce := verify.DuplicateCounterexample(set, p); ce != nil {
			resp.Counterexample = ce
		} else {
			resp.DuplicateSafe = true
		}
		a := uarch.Analyze(set, p)
		resp.Analysis = &analysisInfo{
			Instructions: a.Instructions,
			Uops:         a.Uops,
			Score:        a.Score,
			CriticalPath: a.CriticalPath,
			ILP:          a.ILP,
			Throughput:   a.Throughput,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the expvar-style counter snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	cs := s.cache.Stats()
	latency := m.latencySnapshot()
	uni := map[string]any{"mounted": false}
	if s.universe != nil {
		us := s.universe.Stats()
		uni = map[string]any{
			"mounted":       true,
			"records":       us.Records,
			"hits":          us.Hits,
			"misses":        us.Misses,
			"corrupt_skips": us.Corrupt,
			"negatives":     m.universeNegatives.Load(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms": float64(time.Since(m.start)) / float64(time.Millisecond),
		"cache": map[string]any{
			"hits":       m.cacheHits.Load(),
			"misses":     m.cacheMisses.Load(),
			"mem_hits":   cs.MemHits,
			"disk_hits":  cs.DiskHits,
			"corrupt":    cs.Corrupt,
			"evictions":  cs.Evictions,
			"put_errors": m.cachePutErrors.Load(),
		},
		"universe": uni,
		"searches": map[string]any{
			"started":        m.searchesStarted.Load(),
			"completed":      m.searchesCompleted.Load(),
			"cancelled":      m.searchesCancelled.Load(),
			"timed_out":      m.searchesTimedOut.Load(),
			"in_flight":      m.inFlight.Load(),
			"coalesced":      m.coalesced.Load(),
			"nodes_expanded": m.nodesExpanded.Load(),
		},
		"scheduler": s.schedulerMetrics(),
		"backends":  m.backendsSnapshot(),
		"latency":   latency,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(s.metrics.start)) / float64(time.Millisecond),
	})
}
