package service

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

// TestSynthesizeConcurrentRandomCancellation fires a burst of coalescing
// /v1/synthesize requests whose clients disconnect at randomized times
// and asserts the flight group's refcounts drain completely: no flight
// left in the map, every observed flight back at zero waiters, no panic
// on late waiters, and a healthy server afterwards. Run under -race by
// `make race`, this is the service-level companion to the flightGroup
// unit tests.
func TestSynthesizeConcurrentRandomCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	// A burst is vacuous if the sampler never caught a live flight:
	// with warm CPU caches the n=2 searches can finish inside a single
	// scheduler quantum, so the whole burst may drain before the
	// sampling goroutine gets a turn. Retry with fresh state (each
	// attempt uses a new server, so every request is a cache miss)
	// rather than asserting on a run that observed nothing.
	const attempts = 5
	for attempt := 1; attempt <= attempts; attempt++ {
		if runCancellationBurst(t, rng) {
			return
		}
		if attempt == attempts {
			t.Fatalf("sampler observed no flights in %d bursts — the burst never coalesced", attempts)
		}
		t.Logf("attempt %d: burst drained before the sampler saw a flight; retrying", attempt)
	}
}

// runCancellationBurst fires one randomized burst against a fresh
// server and returns whether the sampler observed at least one live
// flight. All refcount and drain assertions run regardless; only the
// "did we actually watch a flight" precondition is reported back.
func runCancellationBurst(t *testing.T, rng *rand.Rand) bool {
	t.Helper()
	s, ts := newTestServer(t)

	bodies := []string{
		`{"n": 2}`,
		`{"n": 2, "config": "dijkstra"}`,
		`{"n": 2, "isa": "minmax"}`,
		`{"n": 2, "duplicate_safe": true}`,
		`{"n": 3}`,
		`{"n": 3, "isa": "minmax"}`,
		// The n=4 search runs a few hundred ms: long enough to span many
		// scheduler quanta, so the samplers reliably observe a live
		// flight even on a single-CPU host where every n ≤ 3 search
		// finishes inside one uninterrupted quantum. Most of its clients
		// disconnect within 40ms, exercising mid-search detach.
		`{"n": 4}`,
	}

	// Sample the flight group while the burst is in progress, so the
	// waiters==0 assertion below covers flights that lived and died
	// mid-run, not just the final state. The sampler spins with
	// Gosched instead of a timer: under a 48-goroutine burst the timer
	// goroutine can be starved past the whole burst, while a runnable
	// spinner keeps getting quanta. On a single-CPU host even the
	// spinner can starve for the whole burst, so the request goroutines
	// below sample too — they are the ones holding the CPU.
	seen := map[*flight]bool{}
	var seenMu sync.Mutex
	sample := func() {
		s.flights.mu.Lock()
		seenMu.Lock()
		for _, f := range s.flights.m {
			seen[f] = true
		}
		seenMu.Unlock()
		s.flights.mu.Unlock()
	}
	var stop sync.Mutex // locked = keep sampling
	stopped := func() bool {
		if stop.TryLock() {
			stop.Unlock()
			return true
		}
		return false
	}
	stop.Lock()
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for !stopped() {
			sample()
			runtime.Gosched()
		}
	}()

	const requests = 48
	delays := make([]time.Duration, requests)
	cancels := make([]bool, requests)
	reqBodies := make([]string, requests)
	for i := range delays {
		reqBodies[i] = bodies[rng.Intn(len(bodies))]
		cancels[i] = rng.Intn(3) > 0 // two thirds disconnect early
		delays[i] = time.Duration(1+rng.Intn(40)) * time.Millisecond
	}

	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if cancels[i] {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, delays[i])
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/synthesize", strings.NewReader(reqBodies[i]))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := ts.Client().Do(req)
			// Mid-burst sample: other requests' flights are live right
			// now, whatever happened to this one.
			sample()
			if err != nil {
				return // cancelled mid-flight: exactly the point
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	stop.Unlock()
	samplerWG.Wait()

	// Every flight must leave the map once its search completes or its
	// last waiter detaches; poll briefly because completion goroutines
	// may still be unwinding.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.flights.mu.Lock()
		remaining := len(s.flights.m)
		s.flights.mu.Unlock()
		if remaining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d flights leaked in the group map", remaining)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.flights.mu.Lock()
	for f := range seen {
		if f.waiters != 0 {
			t.Errorf("flight finished with %d waiters", f.waiters)
		}
	}
	s.flights.mu.Unlock()

	// The server must still serve fresh work after the churn.
	res := synthesize(t, ts.URL, `{"n": 2, "config": "best"}`)
	if res.Length != 4 {
		t.Fatalf("post-churn synthesis length = %d, want 4", res.Length)
	}
	return len(seen) > 0
}

// TestCorruptDiskEntryFallsThroughToFreshSearch corrupts a persisted
// cache entry on disk and asserts the restarted service rejects it via
// the checksum and re-synthesizes a correct kernel instead of serving
// garbage — the service-level counterpart of kcache's
// TestCorruptEntryIsAMiss.
func TestCorruptDiskEntryFallsThroughToFreshSearch(t *testing.T) {
	dir := t.TempDir()
	body := `{"n": 2}`

	s1, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	first := synthesize(t, ts1.URL, body)
	ts1.Close()
	s1.Close()
	if first.Cached || first.Length != 4 {
		t.Fatalf("seed synthesis: %+v", first)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir has %d entry files (%v)", len(files), err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes inside the stored program text: the JSON still parses,
	// so only the checksummed load can catch it.
	mutated := strings.Replace(string(blob), "mov", "vom", 1)
	if mutated == string(blob) {
		t.Fatal("test setup: program text not found in the entry file")
	}
	if err := os.WriteFile(files[0], []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Close()

	second := synthesize(t, ts2.URL, body)
	if second.Cached {
		t.Fatal("corrupt entry was served from cache")
	}
	if second.Length != 4 || second.Kernel == "" {
		t.Fatalf("fresh synthesis after corruption: %+v", second)
	}
	set := isa.NewCmov(2, 1)
	p, err := isa.ParseProgram(second.Kernel, 2)
	if err != nil {
		t.Fatalf("fresh kernel does not parse: %v", err)
	}
	if ce := verify.Counterexample(set, p); ce != nil {
		t.Fatalf("fresh kernel fails on %v", ce)
	}

	m := getMetrics(t, ts2.URL)
	if got := counter(t, m, "cache", "corrupt"); got != 1 {
		t.Errorf("cache corrupt counter = %d, want 1", got)
	}
	// The healed entry must serve as a normal hit again.
	third := synthesize(t, ts2.URL, body)
	if !third.Cached || third.Kernel != second.Kernel {
		t.Fatalf("healed entry not served: %+v", third)
	}
}
