package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestSynthesizeUnknownBackend400(t *testing.T) {
	_, ts := newTestServer(t)
	resp, blob := postJSON(t, ts.URL+"/v1/synthesize", `{"isa":"cmov","n":2,"backend":"nosuch"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, blob)
	}
	if !strings.Contains(string(blob), `unknown backend \"nosuch\"`) {
		t.Fatalf("error body %s does not name the unknown backend", blob)
	}
}

func TestSynthesizeBackendFieldCacheKeyAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)

	sr := synthesize(t, ts.URL, `{"isa":"cmov","n":2,"backend":"smt"}`)
	if sr.Backend != "smt" || sr.Cached || sr.Length != 4 {
		t.Fatalf("smt response %+v, want fresh backend=smt length=4", sr)
	}

	// The backend name is part of the cache key, so the same request
	// hits the smt artifact while an enum request misses it.
	if again := synthesize(t, ts.URL, `{"isa":"cmov","n":2,"backend":"smt"}`); !again.Cached || again.Backend != "smt" {
		t.Fatalf("repeat smt request %+v, want cached backend=smt", again)
	}
	if viaEnum := synthesize(t, ts.URL, `{"isa":"cmov","n":2}`); viaEnum.Cached || viaEnum.Backend != "enum" {
		t.Fatalf("enum request %+v, want a fresh search (distinct cache key)", viaEnum)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Backends map[string]struct {
			Started   int64 `json:"started"`
			Completed int64 `json:"completed"`
			Found     int64 `json:"found"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"smt", "enum"} {
		bc, ok := m.Backends[name]
		if !ok {
			t.Fatalf("/metrics backends missing %q: %+v", name, m.Backends)
		}
		if bc.Started < 1 || bc.Completed < 1 || bc.Found < 1 {
			t.Fatalf("backend %q counters %+v, want started/completed/found ≥ 1", name, bc)
		}
	}
}

func TestSynthesizeBackendRejectsEnumOnlyOptions(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"isa":"cmov","n":2,"backend":"smt","all":true}`,
		`{"isa":"cmov","n":2,"backend":"smt","config":"base"}`,
		`{"isa":"cmov","n":2,"backend":"cp","seed":7}`,
	} {
		resp, blob := postJSON(t, ts.URL+"/v1/synthesize", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", body, resp.StatusCode, blob)
		}
	}
}
