package service

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"sortsynth/internal/tuned"
)

// writeTunedTable persists a minimal valid dispatch table covering the
// cmov n=2 shortest class: enum first with a stagger so generous that
// the fallbacks never launch in a healthy run.
func writeTunedTable(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tuned.json")
	tab := &tuned.Table{
		Entries: map[string]tuned.Plan{
			tuned.Class{ISA: "cmov", N: 2}.Key(): {
				Ranked: []tuned.Candidate{
					{Backend: "enum", WallMS: 0.5, Rounds: 3, OK: true},
					{Backend: "smt", WallMS: 2.0, Rounds: 3, OK: true},
					{Backend: "stoke", WallMS: 9.0, Rounds: 3, OK: true},
				},
				StaggerMS: 60_000,
			},
		},
	}
	if err := tuned.Write(path, tab); err != nil {
		t.Fatal(err)
	}
	return path
}

func schedMetrics(t *testing.T, url string) map[string]any {
	t.Helper()
	var m struct {
		Scheduler map[string]any `json:"scheduler"`
	}
	resp := getJSON(t, url+"/metrics", &m)
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if m.Scheduler == nil {
		t.Fatal("/metrics has no scheduler section")
	}
	return m.Scheduler
}

// TestTunedMountStaggersThePortfolio mounts a real table and drives a
// portfolio request through it: the predicted-best engine (enum) wins
// inside its solo window, both fallbacks are parked, the answer is
// byte-identical to a direct enum synthesis, and the scheduler counters
// say exactly that.
func TestTunedMountStaggersThePortfolio(t *testing.T) {
	s, err := New(Config{CacheDir: t.TempDir(), TunedPath: writeTunedTable(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	sched := schedMetrics(t, ts.URL)
	if sched["tuned_mounted"] != true {
		t.Fatalf("scheduler = %v, want tuned_mounted=true", sched)
	}
	if got := sched["tuned_classes"].(float64); got != 1 {
		t.Fatalf("tuned_classes = %v, want 1", got)
	}

	viaPortfolio := synthesize(t, ts.URL, `{"isa":"cmov","n":2,"backend":"portfolio"}`)
	if viaPortfolio.Cached || viaPortfolio.Length != 4 {
		t.Fatalf("portfolio response %+v, want fresh length-4 kernel", viaPortfolio)
	}
	viaEnum := synthesize(t, ts.URL, `{"isa":"cmov","n":2}`)
	if viaPortfolio.Kernel != viaEnum.Kernel {
		t.Fatalf("staggered portfolio kernel diverges from enum:\n%s\nvs\n%s",
			viaPortfolio.Kernel, viaEnum.Kernel)
	}

	sched = schedMetrics(t, ts.URL)
	if got := sched["first_pick_wins"].(float64); got != 1 {
		t.Fatalf("first_pick_wins = %v, want 1 (scheduler %v)", got, sched)
	}
	if got := sched["staggered_saved_launches"].(float64); got != 2 {
		t.Fatalf("staggered_saved_launches = %v, want 2 (scheduler %v)", got, sched)
	}
	if got := sched["fallback_starts"].(float64); got != 0 {
		t.Fatalf("fallback_starts = %v, want 0 (scheduler %v)", got, sched)
	}
	if got := sched["fallbacks_won"].(float64); got != 0 {
		t.Fatalf("fallbacks_won = %v, want 0 (scheduler %v)", got, sched)
	}
	// An n=3 request has no tuned class: the portfolio races everything
	// and the miss is counted.
	if res := synthesize(t, ts.URL, `{"isa":"cmov","n":3,"backend":"portfolio"}`); res.Length != 11 {
		t.Fatalf("untuned-class portfolio response %+v, want length 11", res)
	}
	sched = schedMetrics(t, ts.URL)
	if got := sched["plan_misses"].(float64); got != 1 {
		t.Fatalf("plan_misses = %v, want 1 (scheduler %v)", got, sched)
	}
}

// TestTunedBadTableDegradesToRacing holds the failure posture: a
// corrupt, truncated, version-skewed, or missing table must leave the
// server fully functional on the plain racing portfolio, with the load
// error counted and tuned_mounted=false.
func TestTunedBadTableDegradesToRacing(t *testing.T) {
	good, err := os.ReadFile(writeTunedTable(t))
	if err != nil {
		t.Fatal(err)
	}
	mkCases := map[string]func(dir string) string{
		"corrupt": func(dir string) string {
			p := filepath.Join(dir, "tuned.json")
			raw := []byte(string(good))
			raw[len(raw)/2] ^= 0x20 // flip one bit mid-table
			os.WriteFile(p, raw, 0o644)
			return p
		},
		"truncated": func(dir string) string {
			p := filepath.Join(dir, "tuned.json")
			os.WriteFile(p, good[:len(good)/3], 0o644)
			return p
		},
		"missing": func(dir string) string {
			return filepath.Join(dir, "does-not-exist.json")
		},
	}
	for name, mk := range mkCases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := New(Config{CacheDir: t.TempDir(), TunedPath: mk(dir)})
			if err != nil {
				t.Fatalf("New must degrade, not fail: %v", err)
			}
			ts := httptest.NewServer(s)
			defer func() { ts.Close(); s.Close() }()

			sched := schedMetrics(t, ts.URL)
			if sched["tuned_mounted"] != false {
				t.Fatalf("scheduler = %v, want tuned_mounted=false", sched)
			}
			if got := sched["tuned_load_errors"].(float64); got != 1 {
				t.Fatalf("tuned_load_errors = %v, want 1", got)
			}
			// The racing portfolio still answers correctly.
			if res := synthesize(t, ts.URL, `{"isa":"cmov","n":2,"backend":"portfolio"}`); res.Length != 4 {
				t.Fatalf("degraded portfolio response %+v, want length 4", res)
			}
			sched = schedMetrics(t, ts.URL)
			if got := sched["staggered_saved_launches"].(float64); got != 0 {
				t.Fatalf("degraded server reported staggered stats: %v", sched)
			}
		})
	}
}
