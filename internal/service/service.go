// Package service implements the sortsynthd HTTP JSON API: a serving
// layer over the enumerative synthesizer. For a given (isa, n, m,
// options) tuple the optimal kernel is a pure, deterministic artifact,
// so the service synthesizes it once — coalescing concurrent identical
// requests into a single search — and serves it from a two-tier
// content-addressed cache (kcache) forever after.
//
// Endpoints (stdlib net/http only):
//
//	POST /v1/synthesize        synthesize (or fetch) a kernel
//	POST /v1/synthesize/batch  many specs, one response each
//	GET  /v1/kernels     the §5.3 contender registry, filterable
//	GET  /v1/sortgen     a full generated sorter for fixed n (Go source)
//	POST /v1/verify      counterexample check + cost model for a program
//	GET  /metrics        expvar-style counters and latency histograms
//	GET  /healthz        liveness
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
	"sortsynth/internal/kcache"
	"sortsynth/internal/uarch"
	"sortsynth/internal/universe"
)

// Config tunes a Server. The zero value is usable: an in-memory-only
// cache and GOMAXPROCS concurrent searches.
type Config struct {
	// CacheDir is the on-disk kernel store ("" = memory-only).
	CacheDir string
	// CacheSize bounds the in-memory LRU tier (0 = 256).
	CacheSize int
	// MaxConcurrentSearches bounds the search worker pool
	// (0 = GOMAXPROCS). Requests beyond the bound queue.
	MaxConcurrentSearches int
	// SearchTimeout caps any single search's wall time (0 = 2m).
	SearchTimeout time.Duration
	// MaxN bounds the array length accepted by /v1/synthesize (0 = 5;
	// the packed state machine additionally requires n+m ≤ 7).
	MaxN int
	// SearchWorkers sets enum.Options.Workers for every search
	// (0 = GOMAXPROCS; 1 forces the sequential engine). The parallel
	// engine's results are identical for every worker count, and the
	// cache key excludes Workers, so this only tunes throughput.
	SearchWorkers int
	// MaxSortN bounds the array length accepted by /v1/sortgen (0 =
	// 256). Unlike MaxN this is a cost bound, not a state-machine
	// limit: composition is polynomial, but the emitted source grows
	// O(n log² n) comparators.
	MaxSortN int
	// UniversePath mounts a baked universe artifact (sortsynth-bake) as
	// the L0 tier: read-only, mmap-served, consulted before the kcache
	// tiers, so a replica answers every baked spec with zero searches
	// and zero warmup ("" = no universe).
	UniversePath string
	// MaxBatch bounds the spec list accepted by /v1/synthesize/batch
	// (0 = 32).
	MaxBatch int
	// UarchProfile names the uarch profile objective rankings run under
	// ("" = the default big out-of-order core; see internal/uarch).
	// Deployment-wide, like SearchWorkers: the profile describes the
	// hardware the fleet serves, so it is a server flag, not a request
	// field. It participates in non-shortest cache keys.
	UarchProfile string
	// TunedPath mounts an autotuned dispatch table (results/tuned.json,
	// written by `experiments -table=autotune`) that turns the portfolio
	// backend's race-everything dispatch into staggered dispatch:
	// predicted-best engine first, fallbacks only after a tuned delay.
	// Like SearchWorkers it is cache-key-excluded by design — the table
	// changes which engine answers first, never which kernel is correct,
	// so tuned and untuned replicas share one cache. A missing or corrupt
	// table degrades to the plain racing portfolio with a logged-once
	// warning and a counted load error ("" = no table).
	TunedPath string
}

// Server is the sortsynthd HTTP handler. Create it with New, serve it
// with net/http, and call Close during shutdown to abort any searches
// still in flight after the drain period.
type Server struct {
	cfg        Config
	cache      *kcache.Cache
	universe   *universe.Store // L0 baked tier; nil when not mounted
	flights    *flightGroup
	sem        chan struct{} // bounded search worker pool
	metrics    *metrics
	registry   *backend.Registry
	tuned      *tunedState // staggered-dispatch table; nil when not mounted
	mux        *http.ServeMux
	baseCancel context.CancelFunc
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrentSearches <= 0 {
		cfg.MaxConcurrentSearches = runtime.GOMAXPROCS(0)
	}
	if cfg.SearchTimeout <= 0 {
		cfg.SearchTimeout = 2 * time.Minute
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 5
	}
	if cfg.SearchWorkers <= 0 {
		cfg.SearchWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSortN <= 0 {
		cfg.MaxSortN = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if _, ok := uarch.ProfileByName(cfg.UarchProfile); !ok {
		return nil, fmt.Errorf("service: unknown uarch profile %q (known: %s)",
			cfg.UarchProfile, strings.Join(uarch.ProfileNames(), ", "))
	}
	cache, err := kcache.New(cfg.CacheDir, cfg.CacheSize)
	if err != nil {
		return nil, err
	}
	var uni *universe.Store
	if cfg.UniversePath != "" {
		uni, err = universe.Open(cfg.UniversePath)
		if err != nil {
			return nil, err
		}
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache,
		universe:   uni,
		flights:    newFlightGroup(base),
		sem:        make(chan struct{}, cfg.MaxConcurrentSearches),
		registry:   backend.Default(),
		mux:        http.NewServeMux(),
		baseCancel: cancel,
	}
	routes := map[string]http.HandlerFunc{
		"POST /v1/synthesize":       s.handleSynthesize,
		"GET /v1/synthesize":        s.handleSynthesizeGet,
		"POST /v1/synthesize/batch": s.handleSynthesizeBatch,
		"GET /v1/kernels":           s.handleKernels,
		"GET /v1/sortgen":     s.handleSortgen,
		"POST /v1/verify":     s.handleVerify,
		"GET /metrics":        s.handleMetrics,
		"GET /healthz":        s.handleHealthz,
	}
	patterns := make([]string, 0, len(routes))
	for p := range routes {
		patterns = append(patterns, p)
	}
	s.metrics = newMetrics(patterns)
	for p, h := range routes {
		s.mux.HandleFunc(p, s.metrics.instrument(p, h))
	}
	if cfg.TunedPath != "" {
		s.mountTuned(cfg.TunedPath)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels the server's base context, aborting every in-flight
// search, and unmaps the universe artifact if one is mounted. Call it
// after http.Server.Shutdown has drained (or given up on) the in-flight
// requests.
func (s *Server) Close() {
	s.baseCancel()
	if s.universe != nil {
		s.universe.Close()
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON strictly decodes the request body into v, rejecting unknown
// fields and trailing garbage so malformed requests fail fast with 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "bad request body: trailing data")
		return false
	}
	return true
}

// setFor builds the instruction set for an (isa, n, m) triple, or
// reports a descriptive error for invalid combinations.
func (s *Server) setFor(isaName string, n, m int) (*isa.Set, error) {
	var kind isa.Kind
	switch isaName {
	case "", "cmov":
		kind = isa.KindCmov
	case "minmax":
		kind = isa.KindMinMax
	default:
		return nil, fmt.Errorf("unknown isa %q (want cmov or minmax)", isaName)
	}
	if n < 2 || n > s.cfg.MaxN {
		return nil, fmt.Errorf("n=%d out of range (want 2..%d)", n, s.cfg.MaxN)
	}
	if m < 0 || n+m > 7 {
		return nil, fmt.Errorf("m=%d out of range (need m ≥ 0 and n+m ≤ 7 for the packed state machine)", m)
	}
	return isa.New(kind, n, m), nil
}

var errShuttingDown = errors.New("search aborted: server shutting down")
