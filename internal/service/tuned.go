package service

import (
	"log"

	"sortsynth/internal/backend"
	"sortsynth/internal/tuned"
)

// tunedState is the mounted dispatch table's serving-side handle: the
// scheduler (for the plan-miss counter) and the class count surfaced by
// /metrics.
type tunedState struct {
	scheduler *tuned.Scheduler
	classes   int
	path      string
}

// mountTuned loads the autotuned dispatch table and swaps the server's
// portfolio for a staggered one scheduled by it. Every failure mode —
// missing file, truncation, corruption, version skew, invalid content —
// degrades to the plain race-everything portfolio the server already
// has, with one warning line and a counted load error: a bad table must
// never take serving down or change an answer. The table is
// deliberately absent from every cache key (it decides which engine
// answers first, never what the answer is), so tuned and untuned
// replicas stay cache-compatible.
func (s *Server) mountTuned(path string) {
	tab, err := tuned.Load(path)
	if err != nil {
		s.metrics.tunedLoadErrors.Add(1)
		log.Printf("tuned: %v — serving with the race-everything portfolio", err)
		return
	}
	// Replace must not touch the process-global Default registry: build
	// a fresh lineup and reconfigure only this server's portfolio slot.
	reg := backend.NewDefault()
	pb, err := reg.Get("portfolio")
	if err != nil {
		s.metrics.tunedLoadErrors.Add(1)
		log.Printf("tuned: no portfolio backend to schedule: %v", err)
		return
	}
	pf, ok := pb.(*backend.Portfolio)
	if !ok {
		s.metrics.tunedLoadErrors.Add(1)
		log.Printf("tuned: portfolio backend is %T, cannot schedule it", pb)
		return
	}
	sched := tuned.NewScheduler(tab, pf.Backends())
	reg.Replace(pf.WithScheduler(sched))
	s.registry = reg
	s.tuned = &tunedState{scheduler: sched, classes: len(tab.Entries), path: path}
	log.Printf("tuned: mounted %s (%d classes)", path, len(tab.Entries))
}

// schedulerMetrics assembles the /metrics "scheduler" section.
func (s *Server) schedulerMetrics() map[string]any {
	m := s.metrics
	out := map[string]any{
		"tuned_mounted":            s.tuned != nil,
		"tuned_load_errors":        m.tunedLoadErrors.Load(),
		"first_pick_wins":          m.firstPickWins.Load(),
		"fallback_starts":          m.fallbackStarts.Load(),
		"fallbacks_won":            m.fallbacksWon.Load(),
		"staggered_saved_launches": m.staggeredSavedLaunches.Load(),
	}
	if s.tuned != nil {
		out["tuned_classes"] = s.tuned.classes
		out["plan_misses"] = s.tuned.scheduler.Misses()
	}
	return out
}
