package service

import (
	"encoding/json"
	"go/format"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func getSortgen(t *testing.T, url, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/v1/sortgen" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(sb.String())
}

func TestSortgenEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	resp, blob := getSortgen(t, ts.URL, "?n=13")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sortgen?n=13: %d: %s", resp.StatusCode, blob)
	}
	var sr sortgenResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatalf("bad response %s: %v", blob, err)
	}
	if sr.N != 13 || sr.Elem != "int" || sr.Func != "Sort13" {
		t.Fatalf("bad metadata: %+v", sr)
	}
	if sr.Blocks != "5+5+3" {
		t.Fatalf("Blocks = %q, want 5+5+3", sr.Blocks)
	}
	if sr.Cached {
		t.Fatal("first request reported cached")
	}
	if sr.KernelInstructions <= 0 || sr.Comparators <= 0 {
		t.Fatalf("bad counters: %+v", sr)
	}
	if !strings.Contains(sr.Source, "func Sort13(a []int)") {
		t.Fatalf("source missing Sort13:\n%s", sr.Source)
	}
	formatted, err := format.Source([]byte(sr.Source))
	if err != nil {
		t.Fatalf("served source does not parse: %v", err)
	}
	if sr.Source != string(formatted) {
		t.Fatal("served source is not gofmt-clean")
	}

	// Second hit must be served from cache, byte-identical.
	resp2, blob2 := getSortgen(t, ts.URL, "?n=13")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second GET: %d: %s", resp2.StatusCode, blob2)
	}
	var sr2 sortgenResponse
	if err := json.Unmarshal(blob2, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Fatal("second request not served from cache")
	}
	if sr2.Source != sr.Source || sr2.Key != sr.Key {
		t.Fatal("cached response differs from the original")
	}
	if sr2.Comparators != sr.Comparators || sr2.KernelInstructions != sr.KernelInstructions {
		t.Fatalf("cached counters drifted: %+v vs %+v", sr2, sr)
	}

	// A different element type is a different artifact, not a cache hit.
	resp3, blob3 := getSortgen(t, ts.URL, "?n=13&elem=uint64")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GET elem=uint64: %d: %s", resp3.StatusCode, blob3)
	}
	var sr3 sortgenResponse
	if err := json.Unmarshal(blob3, &sr3); err != nil {
		t.Fatal(err)
	}
	if sr3.Cached {
		t.Fatal("elem=uint64 request hit the elem=int entry")
	}
	if !strings.Contains(sr3.Source, "[]uint64") {
		t.Fatalf("uint64 source missing element type:\n%s", sr3.Source)
	}
}

func TestSortgenEndpointRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"",                  // missing n
		"?n=abc",            // unparsable
		"?n=-1",             // negative
		"?n=257",            // beyond default MaxSortN
		"?n=8&elem=float64", // NaN breaks the verified total order
		"?n=8&elem=chan+int",
		// Element types are exact Go spellings: case variants are
		// rejected, not normalized, so "Int" can never mint a cache key
		// distinct from "int" through the ISA slot.
		"?n=8&elem=Int",
		"?n=8&elem=INT",
		"?n=8&elem=String",
	} {
		resp, blob := getSortgen(t, ts.URL, q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/sortgen%s: got %d, want 400: %s", q, resp.StatusCode, blob)
		}
	}
}

func TestSortgenRejectedElemDoesNoWork(t *testing.T) {
	_, ts := newTestServer(t)

	// A bogus element type must be rejected before the handler touches
	// the cache or composes anything: no cache traffic (the old code
	// counted a miss and ran the full Compose before the emitter's 400)
	// and a message naming the element type, not an emitter internal.
	resp, blob := getSortgen(t, ts.URL, "?n=200&elem=float64")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", resp.StatusCode, blob)
	}
	if !strings.Contains(string(blob), "unsupported element type") {
		t.Errorf("error does not name the element type: %s", blob)
	}
	m := getMetrics(t, ts.URL)
	hits := int(m["cache"]["hits"].(float64))
	misses := int(m["cache"]["misses"].(float64))
	if hits != 0 || misses != 0 {
		t.Errorf("rejected elem touched the cache: hits=%d misses=%d, want 0/0", hits, misses)
	}
}

func TestSortgenServedMSDistinctFromGeneratedMS(t *testing.T) {
	_, ts := newTestServer(t)

	// n=200 makes generation (compose + emit + gofmt) expensive enough
	// that a cache hit's serving time is unambiguously smaller.
	resp, blob := getSortgen(t, ts.URL, "?n=200")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("miss: %d: %s", resp.StatusCode, blob)
	}
	var first sortgenResponse
	if err := json.Unmarshal(blob, &first); err != nil {
		t.Fatal(err)
	}
	if first.GeneratedMS <= 0 {
		t.Fatalf("miss generated_ms = %v, want > 0", first.GeneratedMS)
	}
	// On a miss, serving includes generation, so served_ms ≥ generated_ms.
	if first.ServedMS < first.GeneratedMS {
		t.Errorf("miss served_ms %v < generated_ms %v", first.ServedMS, first.GeneratedMS)
	}

	resp, blob = getSortgen(t, ts.URL, "?n=200")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hit: %d: %s", resp.StatusCode, blob)
	}
	var second sortgenResponse
	if err := json.Unmarshal(blob, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second request not cached")
	}
	// generated_ms is the artifact's cost — replayed verbatim on a hit —
	// while served_ms is THIS request's latency, measured from its own
	// start. The old response conflated them.
	if second.GeneratedMS != first.GeneratedMS {
		t.Errorf("hit generated_ms %v != artifact cost %v", second.GeneratedMS, first.GeneratedMS)
	}
	if second.ServedMS >= second.GeneratedMS {
		t.Errorf("hit served_ms %v not smaller than generated_ms %v: looks like the replayed value", second.ServedMS, second.GeneratedMS)
	}
}

func TestSortgenBoundarySpecs(t *testing.T) {
	_, ts := newTestServer(t)

	// n=0 and n=1 are degenerate but legal: the sorter is a no-op and
	// the endpoint must serve (and cache) it rather than erroring.
	for _, n := range []int{0, 1} {
		q := "?n=" + strconv.Itoa(n)
		resp, blob := getSortgen(t, ts.URL, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/sortgen%s: %d: %s", q, resp.StatusCode, blob)
		}
		var sr sortgenResponse
		if err := json.Unmarshal(blob, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.N != n || sr.Func != "Sort"+strconv.Itoa(n) {
			t.Errorf("n=%d metadata: %+v", n, sr)
		}
		if sr.KernelInstructions != 0 || sr.Comparators != 0 {
			t.Errorf("n=%d degenerate sorter has work: %+v", n, sr)
		}
		if !strings.Contains(sr.Source, "func Sort"+strconv.Itoa(n)+"(a []int)") {
			t.Errorf("n=%d source missing func:\n%s", n, sr.Source)
		}
		if _, err := format.Source([]byte(sr.Source)); err != nil {
			t.Errorf("n=%d source does not parse: %v", n, err)
		}
		// And it caches like any other artifact.
		resp, blob = getSortgen(t, ts.URL, q)
		var again sortgenResponse
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || !again.Cached {
			t.Errorf("n=%d repeat not cached", n)
		}
	}
}

func TestSortgenMaxSortNConfigurable(t *testing.T) {
	s, err := New(Config{MaxSortN: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.cfg.MaxSortN != 16 {
		t.Fatalf("MaxSortN = %d, want 16", s.cfg.MaxSortN)
	}
	// And the zero value defaults to 256.
	s2, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.cfg.MaxSortN != 256 {
		t.Fatalf("default MaxSortN = %d, want 256", s2.cfg.MaxSortN)
	}
}

func TestSortgenCacheCountsInMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 2; i++ {
		resp, blob := getSortgen(t, ts.URL, "?n=6")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, blob)
		}
	}
	m := getMetrics(t, ts.URL)
	cache, ok := m["cache"]
	if !ok {
		t.Fatalf("metrics missing cache section: %v", m)
	}
	hits := int(cache["hits"].(float64))
	misses := int(cache["misses"].(float64))
	if hits < 1 || misses < 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want ≥1 each", hits, misses)
	}
}
