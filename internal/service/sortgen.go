package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/kcache"
	"sortsynth/internal/sortgen"
)

// sortgenResponse is the GET /v1/sortgen reply: a complete branchless
// sorter for a fixed n, generated from synthesized kernels and merge
// networks, as compilable Go source plus the plan metadata.
type sortgenResponse struct {
	N    int    `json:"n"`
	Elem string `json:"elem"`
	Func string `json:"func"`
	// Objective names the kernel set inlined into the sorter: "fastest"
	// (default — the model-best picks) or "shortest" (the first picks).
	Objective string `json:"objective"`
	// Blocks is the kernel-block cover, e.g. "5+5+3" for n=13.
	Blocks string `json:"blocks"`
	// KernelInstructions counts the synthesized-kernel instructions
	// inlined into the sorter; Comparators counts the merge-layer
	// compare-and-swaps.
	KernelInstructions int     `json:"kernel_instructions"`
	Comparators        int     `json:"comparators"`
	Source string `json:"source"`
	Cached bool   `json:"cached"`
	Key    string `json:"key"`
	// GeneratedMS is the artifact's cost: what the original composition
	// and emission took. On a cache hit it does NOT describe this
	// request — that is ServedMS, measured from this request's start.
	GeneratedMS float64 `json:"generated_ms"`
	ServedMS    float64 `json:"served_ms"`
}

// sortgenKey builds the cache key for a generated sorter. The artifact
// is a pure function of (n, element type, objective) — the composer,
// kernel registry, and emitter are deterministic — so those fields are
// the whole content address ("sortgen" sits in the Backend slot, the
// element type in the ISA slot, the objective in the option surface).
func sortgenKey(n int, elem string, obj enum.Objective) kcache.Key {
	return kcache.Key{ISA: elem, N: n, Backend: "sortgen", Opt: enum.Options{Objective: obj}}
}

// handleSortgen serves GET /v1/sortgen?n=13[&elem=int][&objective=...]:
// the generated sorter source, cache-keyed through kcache like every
// other artifact. The objective defaults to "fastest" — unlike
// /v1/synthesize, whose default preserves the historical first-pick
// reply, a generated sorter has always inlined the model-best kernels,
// and "fastest" is that set's name.
func (s *Server) handleSortgen(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	q := r.URL.Query()
	n, err := strconv.Atoi(q.Get("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad or missing n %q", q.Get("n"))
		return
	}
	if n < 0 || n > s.cfg.MaxSortN {
		writeError(w, http.StatusBadRequest, "n=%d out of range (want 0..%d)", n, s.cfg.MaxSortN)
		return
	}
	obj := enum.ObjectiveFastest
	if objStr := q.Get("objective"); objStr != "" {
		if obj, err = enum.ParseObjective(objStr); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if obj == enum.ObjectiveBalanced {
		writeError(w, http.StatusBadRequest,
			"objective %q has no frozen kernel set (sortgen serves shortest or fastest)", obj)
		return
	}
	elem := q.Get("elem")
	if elem == "" {
		elem = "int"
	}
	// Validate the element type before any composition work (and before
	// keying: "Int" and "int" would otherwise mint distinct cache keys
	// through the ISA slot). The spelling is the exact Go type name —
	// case variants are rejected here, not normalized.
	if !sortgen.ValidElem(elem) {
		writeError(w, http.StatusBadRequest,
			"unsupported element type %q (ordered integer types and string only, exact Go spelling)", elem)
		return
	}

	key := sortgenKey(n, elem, obj)
	hash := key.Hash()
	if e, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		resp, err := sortgenResponseFor(n, elem, obj, e, hash, true, start)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.cacheMisses.Add(1)

	plan, err := sortgen.ComposeObjective(n, obj)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	src, err := plan.GoFile(sortgen.EmitOptions{Elem: elem})
	if err != nil {
		// The element type was validated up front, so an emitter failure
		// here is a server bug, not a client error.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	entry := &kcache.Entry{
		Backend:       "sortgen",
		Objective:     obj.String(),
		Program:       src,
		Length:        plan.KernelInstructions() + plan.Comparators(),
		SolutionCount: 1,
		ElapsedNS:     int64(time.Since(start)),
	}
	if err := s.cache.Put(key, entry); err != nil {
		s.metrics.recordPutError(err) // memory tier still serves it; see runSearch
	}
	resp, err := sortgenResponseFor(n, elem, obj, entry, hash, false, start)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// sortgenResponseFor rebuilds the plan metadata around a cached (or
// fresh) entry. The block cover is deterministic and cheap, so a cache
// hit never re-runs the merge construction or the emitter.
func sortgenResponseFor(n int, elem string, obj enum.Objective, e *kcache.Entry, hash string, cached bool, start time.Time) (sortgenResponse, error) {
	blocks, err := sortgen.BlocksFor(n)
	if err != nil {
		return sortgenResponse{}, err
	}
	meta := &sortgen.Plan{N: n, Blocks: blocks, Objective: obj}
	ki := meta.KernelInstructions()
	if e.Length < ki {
		return sortgenResponse{}, fmt.Errorf("sortgen cache entry for n=%d is inconsistent (length %d < %d kernel instructions)", n, e.Length, ki)
	}
	return sortgenResponse{
		N:                  n,
		Elem:               elem,
		Func:               fmt.Sprintf("Sort%d", n),
		Objective:          obj.String(),
		Blocks:             meta.BlocksDesc(),
		KernelInstructions: ki,
		Comparators:        e.Length - ki,
		Source:             e.Program,
		Cached:             cached,
		Key:                hash,
		GeneratedMS:        float64(e.ElapsedNS) / float64(time.Millisecond),
		ServedMS:           float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}
