package isa

import (
	"math"
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	want := map[Op]string{Mov: "mov", Cmp: "cmp", Cmovl: "cmovl", Cmovg: "cmovg", Min: "min", Max: "max"}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), name)
		}
	}
	if got := Op(250).String(); !strings.Contains(got, "250") {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestOpProperties(t *testing.T) {
	if !Cmp.WritesFlags() || Mov.WritesFlags() {
		t.Error("WritesFlags wrong")
	}
	if !Cmovl.ReadsFlags() || !Cmovg.ReadsFlags() || Cmp.ReadsFlags() || Min.ReadsFlags() {
		t.Error("ReadsFlags wrong")
	}
	if Cmp.WritesDst() || !Mov.WritesDst() || !Min.WritesDst() || !Max.WritesDst() {
		t.Error("WritesDst wrong")
	}
}

func TestCmovSetSize(t *testing.T) {
	// For R = n+m registers: mov/cmovl/cmovg each R(R-1), cmp R(R-1)/2.
	for _, tc := range []struct{ n, m, want int }{
		{2, 1, 3*3*2 + 3}, // R=3: 18 + 3 = 21
		{3, 1, 3*4*3 + 6}, // R=4: 36 + 6 = 42
		{4, 1, 3*5*4 + 10},
		{5, 1, 3*6*5 + 15},
	} {
		s := NewCmov(tc.n, tc.m)
		if got := s.NumInstrs(); got != tc.want {
			t.Errorf("cmov n=%d m=%d: NumInstrs = %d, want %d", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestMinMaxSetSize(t *testing.T) {
	s := NewMinMax(3, 1)
	if got, want := s.NumInstrs(), 3*4*3; got != want {
		t.Errorf("minmax n=3 m=1: NumInstrs = %d, want %d", got, want)
	}
}

func TestCmpSymmetryRestriction(t *testing.T) {
	s := NewCmov(3, 1)
	for _, in := range s.Instrs() {
		if in.Dst == in.Src {
			t.Errorf("degenerate instruction %v enumerated", in)
		}
		if in.Op == Cmp && in.Dst > in.Src {
			t.Errorf("cmp with dst > src enumerated: %v", in)
		}
	}
}

func TestInstrID(t *testing.T) {
	s := NewCmov(3, 1)
	for i, in := range s.Instrs() {
		if got := s.InstrID(in); got != i {
			t.Errorf("InstrID(%v) = %d, want %d", in, got, i)
		}
	}
	if got := s.InstrID(Instr{Op: Cmp, Dst: 2, Src: 1}); got != -1 {
		t.Errorf("InstrID of illegal cmp = %d, want -1", got)
	}
	if got := s.InstrID(Instr{Op: Min, Dst: 0, Src: 1}); got != -1 {
		t.Errorf("InstrID of foreign-op instruction = %d, want -1", got)
	}
}

func TestRawProgramSpaceLog10(t *testing.T) {
	// The paper's §5.1 table: n=3 → ≈10^19.9, n=4 → 10^40.0,
	// n=5 → ≈10^71.2, n=6 → ≈10^108.4 (all with m=1).
	for _, tc := range []struct {
		n, m, length int
		want         float64
	}{
		{3, 1, 11, 19.9},
		{4, 1, 20, 40.0},
		{5, 1, 33, 71.2},
		{6, 2, 45, 108.4}, // the paper's n=6 row uses two scratch registers
	} {
		s := NewCmov(tc.n, tc.m)
		got := s.RawProgramSpaceLog10(tc.length)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("n=%d ℓ=%d: log10 space = %.2f, want %.1f", tc.n, tc.length, got, tc.want)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	src := "mov s1 r1\ncmp r2 r1\ncmovl r1 r2\ncmovl r2 s1"
	p, err := ParseProgram(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("parsed %d instructions, want 4", len(p))
	}
	if got := p.Format(2); got != src {
		t.Errorf("Format = %q, want %q", got, src)
	}
	q, err := ParseProgram(p.FormatInline(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Errorf("inline round trip mismatch: %v vs %v", p, q)
	}
}

func TestParseCommaAndComments(t *testing.T) {
	p, err := ParseProgram("  cmp r1, r2  # compare\n\n cmovg r2, r1\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := Program{{Op: Cmp, Dst: 0, Src: 1}, {Op: Cmovg, Dst: 1, Src: 0}}
	if !p.Equal(want) {
		t.Errorf("parsed %v, want %v", p, want)
	}
}

func TestParseVectorMnemonics(t *testing.T) {
	p, err := ParseProgram("movdqa s1 r1; pminud r1 r2; pmaxud r2 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := Program{{Op: Mov, Dst: 2, Src: 0}, {Op: Min, Dst: 0, Src: 1}, {Op: Max, Dst: 1, Src: 2}}
	if !p.Equal(want) {
		t.Errorf("parsed %v, want %v", p, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus r1 r2",
		"mov r1",
		"mov r9 r1", // out of range for n=2
		"mov x1 r1",
		"mov r r1",
		"mov r0 r1",
	} {
		if _, err := ParseProgram(bad, 2); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", bad)
		}
	}
}

func TestProgramHelpers(t *testing.T) {
	p := Program{{Op: Mov, Dst: 2, Src: 0}, {Op: Cmp, Dst: 0, Src: 1}, {Op: Cmovl, Dst: 1, Src: 2}}
	q := p.Clone()
	q[0].Dst = 1
	if p[0].Dst != 2 {
		t.Error("Clone aliases underlying array")
	}
	c := p.OpCounts()
	if c[Mov] != 1 || c[Cmp] != 1 || c[Cmovl] != 1 || c[Cmovg] != 0 {
		t.Errorf("OpCounts = %v", c)
	}
	if p.Equal(q) {
		t.Error("Equal ignored difference")
	}
	if !p.Equal(p.Clone()) {
		t.Error("Equal rejects identical clone")
	}
}

func TestRegName(t *testing.T) {
	if RegName(0, 3) != "r1" || RegName(2, 3) != "r3" || RegName(3, 3) != "s1" || RegName(4, 3) != "s2" {
		t.Error("RegName wrong")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(13 regs) did not panic")
		}
	}()
	New(KindCmov, 13, 0)
}
