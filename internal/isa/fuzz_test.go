package isa

import (
	"testing"
)

// FuzzParseProgram checks the parser never panics and that everything it
// accepts round-trips through Format.
func FuzzParseProgram(f *testing.F) {
	f.Add("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	f.Add("movdqa s1 r1\npminud r1 r2\npmaxud r2 s1", 2)
	f.Add("cmp r1, r2 # comment", 3)
	f.Add("", 3)
	f.Add(";;;\n\n;", 4)
	f.Add("mov r1 r999999999999999999", 3)
	f.Add("mov\x00r1 r2", 2)
	f.Fuzz(func(t *testing.T, text string, n int) {
		if n < 1 || n > 7 {
			n = 3
		}
		p, err := ParseProgram(text, n)
		if err != nil {
			return
		}
		q, err := ParseProgram(p.Format(n), n)
		if err != nil {
			t.Fatalf("formatted program does not re-parse: %v\n%s", err, p.Format(n))
		}
		if !p.Equal(q) {
			t.Fatalf("round trip mismatch: %v vs %v", p, q)
		}
	})
}
