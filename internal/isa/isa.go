// Package isa models the two assembly instruction sets used for sorting
// kernel synthesis (paper §2.2):
//
//   - the cmov ISA with commands mov, cmp, cmovl, cmovg operating on
//     general-purpose registers and lt/gt flags, and
//   - the min/max ISA with commands mov, min, max operating on vector
//     registers (movdqa/pminud/pmaxud on x86) without flags.
//
// A machine has n sorted registers r1..rn holding the values to sort and
// m scratch registers s1..sm. All instructions take two register operands
// and are written "op dst src" (for cmp, the operands are the two compared
// registers and the flags are the destination).
package isa

import (
	"fmt"
	"strings"
)

// Op identifies an instruction opcode.
type Op uint8

// Opcodes of both instruction sets.
const (
	Mov   Op = iota // mov dst src:   dst ← src
	Cmp             // cmp a b:       lt ← a<b, gt ← a>b
	Cmovl           // cmovl dst src: if lt then dst ← src
	Cmovg           // cmovg dst src: if gt then dst ← src
	Min             // min dst src:   dst ← min(dst, src)
	Max             // max dst src:   dst ← max(dst, src)
	NumOps
)

var opNames = [NumOps]string{"mov", "cmp", "cmovl", "cmovg", "min", "max"}

// String returns the assembly mnemonic of the opcode.
func (o Op) String() string {
	if o >= NumOps {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// ReadsFlags reports whether the opcode reads the lt/gt flags.
func (o Op) ReadsFlags() bool { return o == Cmovl || o == Cmovg }

// WritesFlags reports whether the opcode writes the lt/gt flags.
func (o Op) WritesFlags() bool { return o == Cmp }

// WritesDst reports whether the opcode (potentially) writes its first
// register operand.
func (o Op) WritesDst() bool { return o != Cmp }

// Instr is a single two-operand instruction. Dst and Src are register
// indices: 0..n-1 are the sorted registers r1..rn, n..n+m-1 are the
// scratch registers s1..sm.
type Instr struct {
	Op       Op
	Dst, Src uint8
}

// Program is a straight-line sequence of instructions.
type Program []Instr

// Clone returns a deep copy of p.
func (p Program) Clone() Program {
	q := make(Program, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are syntactically identical.
func (p Program) Equal(q Program) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// OpCounts returns how often each opcode occurs in p.
func (p Program) OpCounts() [NumOps]int {
	var c [NumOps]int
	for _, in := range p {
		c[in.Op]++
	}
	return c
}

// RegName returns the assembly name of register index r on a machine with
// n sorted registers: r1..rn for 0..n-1 and s1..sm beyond.
func RegName(r uint8, n int) string {
	if int(r) < n {
		return fmt.Sprintf("r%d", r+1)
	}
	return fmt.Sprintf("s%d", int(r)-n+1)
}

// Format renders the instruction with register names for a machine with n
// sorted registers, e.g. "cmovl r1 s1".
func (in Instr) Format(n int) string {
	return fmt.Sprintf("%s %s %s", in.Op, RegName(in.Dst, n), RegName(in.Src, n))
}

// Format renders the program one instruction per line.
func (p Program) Format(n int) string {
	var b strings.Builder
	for i, in := range p {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(in.Format(n))
	}
	return b.String()
}

// FormatInline renders the program on one line, instructions separated by
// "; ".
func (p Program) FormatInline(n int) string {
	parts := make([]string, len(p))
	for i, in := range p {
		parts[i] = in.Format(n)
	}
	return strings.Join(parts, "; ")
}
