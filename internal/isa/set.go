package isa

import (
	"fmt"
	"math"
)

// Kind distinguishes the two instruction sets.
type Kind uint8

// Supported instruction-set kinds.
const (
	KindCmov   Kind = iota // mov, cmp, cmovl, cmovg (flags)
	KindMinMax             // mov, min, max (no flags)
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCmov:
		return "cmov"
	case KindMinMax:
		return "minmax"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Set describes a concrete synthesis machine: an instruction-set kind
// instantiated for n sorted registers and m scratch registers, together
// with the enumerated list of legal instructions.
//
// The enumeration applies the paper's symmetry restrictions (§3.2, §4):
//   - no instruction operates a register on itself (mov/cmov/min/max with
//     dst == src and cmp with equal operands are excluded), and
//   - cmp a b requires a < b by register index, exploiting the symmetry
//     between the lt and gt flags.
type Set struct {
	Kind Kind
	N    int // number of sorted registers (array length)
	M    int // number of scratch registers

	instrs []Instr
	index  map[Instr]int
}

// New returns the instruction set of the given kind for n sorted and m
// scratch registers. Sets with more than 7 total registers can be
// enumerated and analyzed, but not executed by the packed state machine
// (see state.NewMachine).
func New(kind Kind, n, m int) *Set {
	if n < 1 || m < 0 || n+m > 12 {
		panic(fmt.Sprintf("isa: unsupported configuration n=%d m=%d", n, m))
	}
	s := &Set{Kind: kind, N: n, M: m}
	r := n + m
	add := func(op Op, d, src int) {
		s.instrs = append(s.instrs, Instr{Op: op, Dst: uint8(d), Src: uint8(src)})
	}
	switch kind {
	case KindCmov:
		for _, op := range []Op{Mov, Cmp, Cmovl, Cmovg} {
			for d := 0; d < r; d++ {
				for src := 0; src < r; src++ {
					if d == src {
						continue
					}
					if op == Cmp && d > src {
						continue // lt/gt flag symmetry: only a < b
					}
					add(op, d, src)
				}
			}
		}
	case KindMinMax:
		for _, op := range []Op{Mov, Min, Max} {
			for d := 0; d < r; d++ {
				for src := 0; src < r; src++ {
					if d == src {
						continue
					}
					add(op, d, src)
				}
			}
		}
	default:
		panic(fmt.Sprintf("isa: unknown kind %d", kind))
	}
	s.index = make(map[Instr]int, len(s.instrs))
	for i, in := range s.instrs {
		s.index[in] = i
	}
	return s
}

// NewCmov returns the cmov instruction set for n values and m scratch
// registers.
func NewCmov(n, m int) *Set { return New(KindCmov, n, m) }

// NewMinMax returns the min/max instruction set for n values and m scratch
// registers.
func NewMinMax(n, m int) *Set { return New(KindMinMax, n, m) }

// Regs returns the total number of registers n+m.
func (s *Set) Regs() int { return s.N + s.M }

// Instrs returns the enumerated legal instructions. The slice must not be
// modified.
func (s *Set) Instrs() []Instr { return s.instrs }

// NumInstrs returns the number of legal instructions per program position.
func (s *Set) NumInstrs() int { return len(s.instrs) }

// InstrID returns the dense index of in within Instrs, or -1 if in is not
// a legal instruction of this set.
func (s *Set) InstrID(in Instr) int {
	if id, ok := s.index[in]; ok {
		return id
	}
	return -1
}

// HasFlags reports whether the instruction set uses lt/gt flags.
func (s *Set) HasFlags() bool { return s.Kind == KindCmov }

// NumCommands returns the number of command mnemonics (4 for cmov,
// 3 for min/max), as used in the paper's raw program-space formula.
func (s *Set) NumCommands() int {
	if s.Kind == KindCmov {
		return 4
	}
	return 3
}

// RawProgramSpaceLog10 returns log10 of the raw program space
// (cmds · (n+m)²)^ℓ of the paper's §5.1 table, which counts all operand
// combinations including the symmetric and degenerate ones.
func (s *Set) RawProgramSpaceLog10(length int) float64 {
	r := float64(s.Regs())
	perStep := float64(s.NumCommands()) * r * r
	return float64(length) * math.Log10(perStep)
}

// String returns a short description such as "cmov(n=3,m=1)".
func (s *Set) String() string {
	return fmt.Sprintf("%s(n=%d,m=%d)", s.Kind, s.N, s.M)
}
