package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram parses a textual program for a machine with n sorted
// registers. Instructions are separated by newlines or semicolons and
// written "op dst src" with register names r1..rn and s1, s2, ….
// Blank lines and trailing "#"-comments are ignored.
func ParseProgram(text string, n int) (Program, error) {
	var p Program
	lines := strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' })
	for _, line := range lines {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := ParseInstr(line, n)
		if err != nil {
			return nil, err
		}
		p = append(p, in)
	}
	return p, nil
}

// ParseInstr parses a single instruction such as "cmovl r1 s1".
// Operands may be separated by spaces and/or a comma.
func ParseInstr(line string, n int) (Instr, error) {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	if len(fields) != 3 {
		return Instr{}, fmt.Errorf("isa: malformed instruction %q (want \"op dst src\")", line)
	}
	var op Op
	switch strings.ToLower(fields[0]) {
	case "mov", "movdqa":
		op = Mov
	case "cmp":
		op = Cmp
	case "cmovl":
		op = Cmovl
	case "cmovg":
		op = Cmovg
	case "min", "pminsd", "pminud":
		op = Min
	case "max", "pmaxsd", "pmaxud":
		op = Max
	default:
		return Instr{}, fmt.Errorf("isa: unknown opcode %q", fields[0])
	}
	dst, err := parseReg(fields[1], n)
	if err != nil {
		return Instr{}, err
	}
	src, err := parseReg(fields[2], n)
	if err != nil {
		return Instr{}, err
	}
	return Instr{Op: op, Dst: dst, Src: src}, nil
}

func parseReg(name string, n int) (uint8, error) {
	if len(name) < 2 {
		return 0, fmt.Errorf("isa: malformed register %q", name)
	}
	num, err := strconv.Atoi(name[1:])
	if err != nil || num < 1 {
		return 0, fmt.Errorf("isa: malformed register %q", name)
	}
	switch name[0] {
	case 'r', 'R':
		if num > n {
			return 0, fmt.Errorf("isa: register %q out of range (n=%d)", name, n)
		}
		return uint8(num - 1), nil
	case 's', 'S':
		return uint8(n + num - 1), nil
	}
	return 0, fmt.Errorf("isa: malformed register %q", name)
}
