package state

// Arena is an append-only slab of packed assignments. The search engines
// store every open-list state in one arena and address it by a compact
// (offset, length) pair instead of holding a heap-allocated clone per
// entry: pushes become a bulk copy into one growing backing array, pops a
// constant-time reslice, and the garbage collector sees a single pointer
// per arena rather than hundreds of thousands of small State slices.
//
// The zero value is an empty arena ready for use.
type Arena struct {
	slab []Asg
}

// Len returns the number of assignments currently stored.
func (a *Arena) Len() int32 { return int32(len(a.slab)) }

// Save appends a copy of s and returns its (offset, length) address.
func (a *Arena) Save(s State) (off, n int32) {
	off = int32(len(a.slab))
	a.slab = append(a.slab, s...)
	return off, int32(len(s))
}

// At returns the state stored at (off, n). The slice is capped at its own
// length, so appending to it cannot clobber neighbouring entries; it
// aliases the arena and stays valid across later Saves (a growth
// reallocation copies the slab, and slices taken before it keep the old
// backing array alive until they are dropped).
func (a *Arena) At(off, n int32) State {
	return State(a.slab[off : off+n : off+n])
}

// Reset empties the arena, keeping the allocated slab for reuse. States
// previously returned by At remain readable only until the slots are
// overwritten by new Saves, so callers must not hold them across a Reset
// boundary (the parallel engine double-buffers two arenas for exactly
// this reason).
func (a *Arena) Reset() { a.slab = a.slab[:0] }
