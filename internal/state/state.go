// Package state implements the vectorized execution engine of the
// enumerative synthesizer.
//
// A register assignment (the values of all n+m registers plus the lt/gt
// flags, paper §2.2) is packed into a single uint32: two flag bits, then
// one nibble per register. The sorted registers r1..rn occupy the highest
// nibbles so that the "permutation projection" of an assignment — the
// tuple (r1, …, rn) that the paper's permutation-count heuristic counts —
// is simply the assignment shifted right by a constant.
//
// A search state is the canonical form of the multiset of assignments
// obtained by running a partial program on every permutation of 1..n:
// sorted ascending with duplicates merged (paper §3.6). Two partial
// programs with equal canonical states behave identically under any
// completion, so the search deduplicates on them.
package state

import (
	"fmt"
	"slices"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

// Asg is a packed register assignment: bit 0 = lt flag, bit 1 = gt flag,
// then 4 bits per register (scratch registers first, sorted registers in
// the highest nibbles).
type Asg uint32

const (
	flagLT   Asg = 1
	flagGT   Asg = 2
	flagBits     = 2
)

// Suite selects the correctness test suite the machine tracks.
type Suite uint8

// Test suites.
const (
	// SuitePermutations is the paper's §2.3 suite: all n! permutations of
	// distinct values. Complete for inputs without ties.
	SuitePermutations Suite = iota
	// SuiteWeakOrders tracks one representative of every weak ordering
	// (inputs with ties included). Kernels correct on this suite are
	// correct for arbitrary integers, closing the §2.3 gap where a kernel
	// sorts all permutations yet mis-sorts duplicates (cmp leaves both
	// flags clear on equal values — a case permutations never exercise).
	SuiteWeakOrders
)

// String returns the suite name.
func (s Suite) String() string {
	if s == SuiteWeakOrders {
		return "weakorders"
	}
	return "permutations"
}

// Machine instantiates the packed representation for one instruction set.
//
// With SuiteWeakOrders, each assignment additionally carries a goal tag
// in the bits above the registers: inputs with different value multisets
// must reach different sorted outputs, and the tag selects the goal. The
// tag is inert under execution (instructions only touch register nibbles
// and flags), so all search machinery works unchanged.
type Machine struct {
	Set   *isa.Set
	Suite Suite

	shift     [8]uint // bit offset of each register's nibble, by register index
	permShift uint    // shift extracting the (r1..rn) projection
	tagShift  uint    // shift extracting the goal tag
	numTags   int
	goals     []Asg  // per tag: goal projection (tag bits included)
	needs     []uint // per tag: bitmask of values the goal requires
	initial   []Asg  // canonical initial state

	// SWAR lane constants (swar.go): the single goal and the
	// projection-field mask replicated across both 32-bit lanes.
	swarUniform   bool
	swarGoalW     uint64
	swarProjMaskW uint64

	// projBits is the width of the projection-and-tag field (PackedBits
	// minus the flag/scratch low bits): PermCountExceedsSet picks its
	// direct-indexed fast path when this fits projDirectBits.
	projBits int
}

// NewMachine builds the execution machine for the paper's permutation
// suite. The packed representation supports at most 7 registers (two
// flag bits plus one nibble per register must fit a uint32).
func NewMachine(set *isa.Set) *Machine { return NewMachineSuite(set, SuitePermutations) }

// NewMachineSuite builds the execution machine for the given test suite.
func NewMachineSuite(set *isa.Set, suite Suite) *Machine {
	if set.Regs() > 7 {
		panic(fmt.Sprintf("state: %v has %d registers, packed limit is 7", set, set.Regs()))
	}
	m := &Machine{Set: set, Suite: suite}
	n, sc := set.N, set.M
	// Scratch registers occupy the low nibbles, sorted registers above
	// them, the goal tag on top; within the sorted registers r1 is lowest.
	for i := 0; i < sc; i++ {
		m.shift[n+i] = flagBits + uint(4*i)
	}
	for i := 0; i < n; i++ {
		m.shift[i] = flagBits + uint(4*(sc+i))
	}
	m.permShift = flagBits + uint(4*sc)
	m.tagShift = flagBits + uint(4*(sc+n))

	switch suite {
	case SuitePermutations:
		m.numTags = 1
		var sorted Asg
		for i := 0; i < n; i++ {
			sorted |= Asg(i+1) << (4 * i)
		}
		m.goals = []Asg{sorted}
		m.needs = []uint{uint(1)<<(n+1) - 2}
		for _, p := range perm.All(n) {
			m.initial = append(m.initial, m.PackRegs(p))
		}
	case SuiteWeakOrders:
		tagOf := map[Asg]int{}
		for _, w := range perm.WeakOrders(n) {
			sortedW := append([]int(nil), w...)
			slices.Sort(sortedW)
			var goal Asg
			var need uint
			for i, v := range sortedW {
				goal |= Asg(v) << (4 * i)
				need |= 1 << v
			}
			tag, ok := tagOf[goal]
			if !ok {
				tag = len(m.goals)
				tagOf[goal] = tag
				m.goals = append(m.goals, goal|Asg(tag)<<(4*n))
				m.needs = append(m.needs, need)
			}
			a := m.PackRegs(w) | Asg(tag)<<m.tagShift
			m.initial = append(m.initial, a)
		}
		m.numTags = len(m.goals)
		if m.tagShift+uint(bitsFor(m.numTags)) > 32 {
			panic(fmt.Sprintf("state: weak-order tags for %v do not fit the packed word", set))
		}
	}
	Canonicalize((*State)(&m.initial))
	m.initSWAR()
	return m
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// NumTags returns the number of goal tags (1 for the permutation suite).
func (m *Machine) NumTags() int { return m.numTags }

// PackedBits returns the number of low bits of an Asg this machine can
// populate: flags, register nibbles, and the goal tag. Callers sizing
// direct-indexed tables over assignments use this instead of the full 32
// bits.
func (m *Machine) PackedBits() int {
	return int(m.tagShift) + bitsFor(m.numTags)
}

// Tag extracts the goal tag of an assignment.
func (m *Machine) Tag(a Asg) int { return int(a >> m.tagShift) }

// WithTag stamps a goal tag onto an assignment (for table enumeration).
func (m *Machine) WithTag(a Asg, tag int) Asg {
	return a&(1<<m.tagShift-1) | Asg(tag)<<m.tagShift
}

// PackRegs packs an assignment with r1..rn = vals, scratch registers 0 and
// flags clear.
func (m *Machine) PackRegs(vals []int) Asg {
	if len(vals) != m.Set.N {
		panic(fmt.Sprintf("state: PackRegs got %d values, want %d", len(vals), m.Set.N))
	}
	var a Asg
	for i, v := range vals {
		if v < 0 || v > 15 {
			panic(fmt.Sprintf("state: value %d out of nibble range", v))
		}
		a |= Asg(v) << m.shift[i]
	}
	return a
}

// Pack packs a full assignment: regs holds all n+m register values in
// register-index order.
func (m *Machine) Pack(regs []int, lt, gt bool) Asg {
	if len(regs) != m.Set.Regs() {
		panic(fmt.Sprintf("state: Pack got %d values, want %d", len(regs), m.Set.Regs()))
	}
	var a Asg
	for i, v := range regs {
		a |= Asg(v) << m.shift[i]
	}
	if lt {
		a |= flagLT
	}
	if gt {
		a |= flagGT
	}
	return a
}

// Reg extracts the value of register index r from a.
func (m *Machine) Reg(a Asg, r int) int { return int(a>>m.shift[r]) & 0xF }

// Flags extracts the lt/gt flags from a.
func (m *Machine) Flags(a Asg) (lt, gt bool) { return a&flagLT != 0, a&flagGT != 0 }

// Unpack returns all register values of a in register-index order.
func (m *Machine) Unpack(a Asg) []int {
	regs := make([]int, m.Set.Regs())
	for i := range regs {
		regs[i] = m.Reg(a, i)
	}
	return regs
}

// Step executes one instruction on a packed assignment.
func (m *Machine) Step(a Asg, in isa.Instr) Asg {
	switch in.Op {
	case isa.Mov:
		v := (a >> m.shift[in.Src]) & 0xF
		sh := m.shift[in.Dst]
		return a&^(0xF<<sh) | v<<sh
	case isa.Cmp:
		va := (a >> m.shift[in.Dst]) & 0xF
		vb := (a >> m.shift[in.Src]) & 0xF
		a &^= flagLT | flagGT
		if va < vb {
			a |= flagLT
		} else if va > vb {
			a |= flagGT
		}
		return a
	case isa.Cmovl:
		if a&flagLT == 0 {
			return a
		}
		v := (a >> m.shift[in.Src]) & 0xF
		sh := m.shift[in.Dst]
		return a&^(0xF<<sh) | v<<sh
	case isa.Cmovg:
		if a&flagGT == 0 {
			return a
		}
		v := (a >> m.shift[in.Src]) & 0xF
		sh := m.shift[in.Dst]
		return a&^(0xF<<sh) | v<<sh
	case isa.Min:
		va := (a >> m.shift[in.Dst]) & 0xF
		vb := (a >> m.shift[in.Src]) & 0xF
		if vb < va {
			sh := m.shift[in.Dst]
			return a&^(0xF<<sh) | vb<<sh
		}
		return a
	case isa.Max:
		va := (a >> m.shift[in.Dst]) & 0xF
		vb := (a >> m.shift[in.Src]) & 0xF
		if vb > va {
			sh := m.shift[in.Dst]
			return a&^(0xF<<sh) | vb<<sh
		}
		return a
	}
	panic(fmt.Sprintf("state: unknown op %v", in.Op))
}

// RunAsg executes a whole program on a packed assignment.
func (m *Machine) RunAsg(a Asg, p isa.Program) Asg {
	for _, in := range p {
		a = m.Step(a, in)
	}
	return a
}

// Sorted reports whether the sorted registers of a hold the assignment's
// goal (ascending 1..n for the permutation suite; the sorted input
// multiset for weak orders).
func (m *Machine) Sorted(a Asg) bool { return a>>m.permShift == m.goals[a>>m.tagShift] }

// Proj returns the permutation projection of a: the packed (r1..rn) tuple
// plus the goal tag, without scratch registers and flags.
func (m *Machine) Proj(a Asg) Asg { return a >> m.permShift }

// Viable reports whether every value the goal requires still occurs in
// some register of a. If not, the assignment can never be completed to a
// sorted one (paper §3.3: the program "erased" a number). Values can be
// duplicated freely by moves, so presence (not multiplicity) is the
// criterion even for duplicate goals.
func (m *Machine) Viable(a Asg) bool {
	var seen uint
	for i := 0; i < m.Set.Regs(); i++ {
		seen |= 1 << ((a >> m.shift[i]) & 0xF)
	}
	want := m.needs[a>>m.tagShift]
	return seen&want == want
}

// State is a canonical set of packed assignments: sorted ascending, no
// duplicates.
type State []Asg

// Initial returns the canonical initial state: one assignment per
// permutation of 1..n, scratch registers zero, flags clear. The returned
// slice is shared and must not be modified.
func (m *Machine) Initial() State { return m.initial }

// Apply executes in on every assignment of s and returns the canonical
// successor state. The result is appended to dst[:0] (pass nil to
// allocate); dst must not alias s.
func (m *Machine) Apply(dst State, s State, in isa.Instr) State {
	dst = m.ApplyRaw(dst, s, in)
	Canonicalize(&dst)
	return dst
}

// ApplyRaw is Apply without the canonicalization pass: the result keeps
// s's element order and may contain duplicate assignments. Per-assignment
// predicates (AllSorted, MaxDist, AllViable) are order- and
// duplicate-insensitive, so the search runs them on the raw successor and
// canonicalizes only the candidates that survive pruning — the sort is a
// quarter of the search profile otherwise. PermCount and Hash/HashKey
// still require a canonical state. The op dispatch is hoisted out of the
// per-assignment loop: this is the innermost call of the enumerative
// search and runs millions of times per synthesis.
func (m *Machine) ApplyRaw(dst State, s State, in isa.Instr) State {
	if cap(dst) < len(s) {
		dst = make(State, len(s))
	} else {
		dst = dst[:len(s)]
	}
	shD, shS := m.shift[in.Dst], m.shift[in.Src]
	switch in.Op {
	case isa.Mov:
		for i, a := range s {
			v := (a >> shS) & 0xF
			dst[i] = a&^(0xF<<shD) | v<<shD
		}
	case isa.Cmp:
		for i, a := range s {
			va := (a >> shD) & 0xF
			vb := (a >> shS) & 0xF
			a &^= flagLT | flagGT
			if va < vb {
				a |= flagLT
			} else if va > vb {
				a |= flagGT
			}
			dst[i] = a
		}
	case isa.Cmovl:
		for i, a := range s {
			if a&flagLT != 0 {
				v := (a >> shS) & 0xF
				a = a&^(0xF<<shD) | v<<shD
			}
			dst[i] = a
		}
	case isa.Cmovg:
		for i, a := range s {
			if a&flagGT != 0 {
				v := (a >> shS) & 0xF
				a = a&^(0xF<<shD) | v<<shD
			}
			dst[i] = a
		}
	case isa.Min:
		for i, a := range s {
			if vb := (a >> shS) & 0xF; vb < (a>>shD)&0xF {
				a = a&^(0xF<<shD) | vb<<shD
			}
			dst[i] = a
		}
	case isa.Max:
		for i, a := range s {
			if vb := (a >> shS) & 0xF; vb > (a>>shD)&0xF {
				a = a&^(0xF<<shD) | vb<<shD
			}
			dst[i] = a
		}
	default:
		for i, a := range s {
			dst[i] = m.Step(a, in)
		}
	}
	return dst
}

// Canonicalize sorts *s ascending and removes duplicates in place.
func Canonicalize(s *State) {
	v := *s
	if len(v) <= 1 {
		return
	}
	if len(v) <= 24 {
		insertionSort(v)
	} else {
		slices.Sort(v)
	}
	// Dedup in place.
	w := 1
	for i := 1; i < len(v); i++ {
		if v[i] != v[i-1] {
			v[w] = v[i]
			w++
		}
	}
	*s = v[:w]
}

func insertionSort(v []Asg) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// AllSorted reports whether every assignment of s is sorted, i.e. the
// partial program is a correct sorting kernel (paper §3.4).
func (m *Machine) AllSorted(s State) bool {
	for _, a := range s {
		if !m.Sorted(a) {
			return false
		}
	}
	return true
}

// PermCount returns the number of distinct permutation projections in s —
// the paper's primary search heuristic and cut score (§3.1, §3.5).
// s must be canonical.
func (m *Machine) PermCount(s State) int {
	if len(s) == 0 {
		return 0
	}
	count := 1
	prev := s[0] >> m.permShift
	for _, a := range s[1:] {
		if p := a >> m.permShift; p != prev {
			count++
			prev = p
		}
	}
	return count
}

// DistLUT is the per-assignment distance table together with its
// byte-wise index decomposition, built by the tables package. The table
// index of a packed assignment is linear over its disjoint bit fields,
// so it splits into three byte lookups:
//
//	index(a) = B0[a&0xFF] + B1[a>>8&0xFF] + B2[a>>16]
//
// B0 and B1 are 256 entries each and B2 covers the packed bits above 16
// (64 entries for the n=4 cmov machine), so the whole decomposition
// (~2.5 KB) plus the distance table (12.5 KB at n=4) stays L1-resident.
// The previous 16/16 split's low table was 256 KB — every lookup in the
// search's innermost loop paid an L2 round trip.
// The index is also linear over whole packed fields, which yields the
// incremental form the SWAR fused kernel exploits: an instruction
// changes only its destination register's nibble (or, for cmp, only the
// flag bits), so
//
//	index(child) = index(parent) + (new−old)·RegW[dst]
//
// in wraparound uint32 arithmetic — one multiply-add per lane instead of
// re-deriving the full decomposition per successor assignment.
type DistLUT struct {
	Dist []uint8
	B0   []uint32 // index contribution of bits 0..7
	B1   []uint32 // index contribution of bits 8..15
	B2   []uint32 // index contribution of bits 16..PackedBits-1

	RegW  [8]uint32 // index weight of register r's nibble value
	FlagW uint32    // index weight of the two flag bits
}

// Index returns the distance-table index of packed assignment a.
func (l *DistLUT) Index(a Asg) uint32 {
	return l.B0[a&0xFF] + l.B1[a>>8&0xFF] + l.B2[a>>16]
}

// Lookup returns the sorting distance of packed assignment a.
func (l *DistLUT) Lookup(a Asg) uint8 {
	return l.Dist[l.Index(a)]
}

// ApplyDist fuses ApplyRaw with the distance-budget prune: it executes
// in on every assignment of s and, as each successor assignment is
// produced, looks its sorting distance up in lut. The moment an
// assignment's distance exceeds budget the whole candidate is dead, so
// ApplyDist returns ok=false without touching the remaining assignments
// — for the majority of generated candidates this skips roughly half
// the apply work and the entire re-scan a separate DistExceeds pass
// would do. budget must be nonnegative and below the table's dead
// markers (the search's depth budget always is); dead assignments then
// fail the same comparison.
//
// On ok=true the result is exactly ApplyRaw's (raw order, duplicates
// kept) and MaxDist(result) ≤ budget. A sorted assignment has distance
// zero, so solution states always pass.
func (m *Machine) ApplyDist(dst State, s State, in isa.Instr, lut *DistLUT, budget int) (State, bool) {
	if cap(dst) < len(s) {
		dst = make(State, len(s))
	} else {
		dst = dst[:len(s)]
	}
	dist, b2 := lut.Dist, lut.B2
	b0 := (*[256]uint32)(lut.B0)
	b1 := (*[256]uint32)(lut.B1)
	b := uint8(budget)
	shD, shS := m.shift[in.Dst], m.shift[in.Src]
	switch in.Op {
	case isa.Mov:
		for i, a := range s {
			v := (a >> shS) & 0xF
			a = a&^(0xF<<shD) | v<<shD
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	case isa.Cmp:
		for i, a := range s {
			va := (a >> shD) & 0xF
			vb := (a >> shS) & 0xF
			a &^= flagLT | flagGT
			if va < vb {
				a |= flagLT
			} else if va > vb {
				a |= flagGT
			}
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	case isa.Cmovl:
		for i, a := range s {
			if a&flagLT != 0 {
				v := (a >> shS) & 0xF
				a = a&^(0xF<<shD) | v<<shD
			}
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	case isa.Cmovg:
		for i, a := range s {
			if a&flagGT != 0 {
				v := (a >> shS) & 0xF
				a = a&^(0xF<<shD) | v<<shD
			}
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	case isa.Min:
		for i, a := range s {
			if vb := (a >> shS) & 0xF; vb < (a>>shD)&0xF {
				a = a&^(0xF<<shD) | vb<<shD
			}
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	case isa.Max:
		for i, a := range s {
			if vb := (a >> shS) & 0xF; vb > (a>>shD)&0xF {
				a = a&^(0xF<<shD) | vb<<shD
			}
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	default:
		for i, a := range s {
			a = m.Step(a, in)
			if dist[b0[a&0xFF]+b1[a>>8&0xFF]+b2[a>>16]] > b {
				return dst, false
			}
			dst[i] = a
		}
	}
	return dst, true
}

// PermCountExceeds reports whether s has more than limit distinct
// permutation projections. Unlike PermCount it accepts a raw
// (non-canonical) successor state, so the search can apply the cut test
// before paying for canonicalization; it errs only on the side of false
// (callers re-check with the exact PermCount after canonicalizing), and
// exits as soon as the count passes limit.
func (m *Machine) PermCountExceeds(s State, limit int) bool {
	if limit >= len(s) || limit >= 64 {
		return false
	}
	var seen [64]Asg // stack-allocated: the method must be goroutine-safe
	cnt := 0
	for _, a := range s {
		p := a >> m.permShift
		dup := false
		for _, q := range seen[:cnt] {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			if cnt == limit {
				return true
			}
			seen[cnt] = p
			cnt++
		}
	}
	return false
}

// AllViable reports whether every assignment of s is viable.
func (m *Machine) AllViable(s State) bool {
	for _, a := range s {
		if !m.Viable(a) {
			return false
		}
	}
	return true
}

// Constants for the two independent state hashes.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	altOffset64 = 0x9e3779b97f4a7c15 // splitmix64 golden-gamma offset
	finalMix64  = 0xd6e8feb86659fd93 // xorshift-multiply avalanche constant
)

// Hash returns a 64-bit hash of the canonical state: word-at-a-time
// FNV-1a over the packed assignments with a final avalanche. (The
// per-byte FNV variant costs four multiplies per assignment and was a
// measurable slice of the search profile.)
func Hash(s State) uint64 {
	h := uint64(fnvOffset64)
	for _, a := range s {
		h = (h ^ uint64(a)) * fnvPrime64
	}
	h ^= h >> 32
	h *= finalMix64
	h ^= h >> 32
	return h
}

// Key128 is a 128-bit dedup key formed from two independent hashes, used
// by the exhaustive lower-bound proofs where 64-bit collisions would be a
// soundness concern.
type Key128 struct{ Hi, Lo uint64 }

// Shard maps the key onto one of 1<<bits shards using the high bits of
// Hi. The high bits of a well-mixed hash are uniform, so shards balance;
// and because sharding is a pure function of the key, every candidate
// with the same key lands in the same shard — the property the parallel
// merge's per-shard deduplication relies on.
func (k Key128) Shard(bits uint) int { return int(k.Hi >> (64 - bits)) }

// HashKey returns the 128-bit dedup key of the canonical state: Lo is
// Hash(s), Hi an independent splitmix-style mix, both computed in a
// single fused pass.
func HashKey(s State) Key128 {
	lo := uint64(fnvOffset64)
	hi := uint64(altOffset64)
	for _, a := range s {
		lo = (lo ^ uint64(a)) * fnvPrime64
		hi ^= uint64(a)
		hi *= 0xbf58476d1ce4e5b9
		hi ^= hi >> 29
	}
	lo ^= lo >> 32
	lo *= finalMix64
	lo ^= lo >> 32
	hi ^= hi >> 32
	return Key128{Hi: hi, Lo: lo}
}

// Clone returns a copy of s.
func (s State) Clone() State {
	t := make(State, len(s))
	copy(t, s)
	return t
}

// RunInts executes program p on arbitrary integer inputs vals (length n),
// returning the final values of r1..rn. Scratch registers start at 0 and
// flags clear. This is the reference interpreter used for verification on
// values outside 1..n and for kernel benchmarking.
func RunInts(set *isa.Set, p isa.Program, vals []int) []int {
	if len(vals) != set.N {
		panic(fmt.Sprintf("state: RunInts got %d values, want %d", len(vals), set.N))
	}
	regs := make([]int, set.Regs())
	copy(regs, vals)
	var lt, gt bool
	for _, in := range p {
		switch in.Op {
		case isa.Mov:
			regs[in.Dst] = regs[in.Src]
		case isa.Cmp:
			lt = regs[in.Dst] < regs[in.Src]
			gt = regs[in.Dst] > regs[in.Src]
		case isa.Cmovl:
			if lt {
				regs[in.Dst] = regs[in.Src]
			}
		case isa.Cmovg:
			if gt {
				regs[in.Dst] = regs[in.Src]
			}
		case isa.Min:
			if regs[in.Src] < regs[in.Dst] {
				regs[in.Dst] = regs[in.Src]
			}
		case isa.Max:
			if regs[in.Src] > regs[in.Dst] {
				regs[in.Dst] = regs[in.Src]
			}
		}
	}
	return regs[:set.N]
}
