// SWAR bit-sliced state execution (DESIGN.md §15).
//
// A packed assignment occupies at most 30 bits of an Asg (two flag bits,
// up to seven register nibbles, the goal tag), so two assignments fit one
// 64-bit word in two 32-bit lanes. The functions below evaluate one
// candidate instruction against a whole state two assignments at a time
// with branchless nibble-parallel arithmetic: register values are pulled
// to the lane base with a shift-and-mask (tag and flag bits never enter
// the lane arithmetic — the 0xF extraction mask strips them), nibble
// comparisons use the classic SWAR borrow trick (set bit 4 above the
// minuend, subtract, read the borrow out of bit 4), and conditional moves
// become XOR-delta writes under a condition mask expanded from one lane
// bit to a full nibble. The results are bit-for-bit identical to the
// per-Asg Machine.Step path for every input, which the differential fuzz
// target FuzzSWARvsScalarStep and the swar-check engine gate both pin.
package state

import (
	"sortsynth/internal/isa"
)

// Lane-replicated constants for the 2×32-bit SWAR word layout.
const (
	laneRep1 uint64 = 0x0000_0001_0000_0001 // bit 0 of each lane
	laneRepF uint64 = laneRep1 * 0xF        // low nibble of each lane
	laneRepH uint64 = laneRep1 * 0x10       // borrow guard above the nibble
	laneRep3 uint64 = laneRep1 * 3          // both flag bits of each lane
)

// laneLess returns bit 0 of each 32-bit lane set iff x < y in that lane,
// where x and y hold one 4-bit value per lane at the lane base. The
// borrow trick: x|0x10 is at least 16, y at most 15, so the per-lane
// difference stays positive (no borrow ever crosses a lane boundary) and
// bit 4 of the difference reads 1 exactly when x ≥ y.
func laneLess(x, y uint64) uint64 {
	return (((x|laneRepH)-y)>>4)&laneRep1 ^ laneRep1
}

// laneWord packs two consecutive assignments into one SWAR word.
func laneWord(a0, a1 Asg) uint64 { return uint64(a0) | uint64(a1)<<32 }

// ApplySWAR is ApplyRaw evaluated two assignments per word: identical
// output (raw order, duplicates kept) for every input, with the
// per-assignment compare/select branches replaced by branchless lane
// arithmetic. An odd trailing assignment is stepped scalar.
func (m *Machine) ApplySWAR(dst State, s State, in isa.Instr) State {
	if cap(dst) < len(s) {
		dst = make(State, len(s))
	} else {
		dst = dst[:len(s)]
	}
	shD, shS := m.shift[in.Dst], m.shift[in.Src]
	k := len(s) &^ 1
	switch in.Op {
	case isa.Mov:
		for i := 0; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			w ^= ((w>>shS ^ w>>shD) & laneRepF) << shD
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Cmp:
		for i := 0; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			w = w&^laneRep3 | laneLess(x, y) | laneLess(y, x)<<1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Cmovl:
		for i := 0; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			cond := w & laneRep1
			w ^= ((w>>shS ^ w>>shD) & laneRepF & (cond * 0xF)) << shD
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Cmovg:
		for i := 0; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			cond := (w >> 1) & laneRep1
			w ^= ((w>>shS ^ w>>shD) & laneRepF & (cond * 0xF)) << shD
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Min:
		for i := 0; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			w ^= ((x ^ y) & (laneLess(y, x) * 0xF)) << shD
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Max:
		for i := 0; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			w ^= ((x ^ y) & (laneLess(x, y) * 0xF)) << shD
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	default:
		for i, a := range s {
			dst[i] = m.Step(a, in)
		}
		return dst
	}
	if k < len(s) {
		dst[k] = m.Step(s[k], in)
	}
	return dst
}

// ApplyDistSWAR fuses ApplySWAR with the §3.5 distance-budget prune and
// the solution test: it evaluates in on every assignment of s two lanes
// per word, looks each successor's sorting distance up in lut, and
// aborts with ok=false the moment either lane of a word exceeds budget.
// Because the distance table assigns 0 exactly to the sorted
// assignments, the OR of all successor distances doubles as the batched
// goal check: on ok=true, sorted reports AllSorted of the result with no
// second pass.
//
// pidx carries the parents' precomputed table indices (pidx[i] =
// lut.Index(s[i])); the caller computes it once per expanded state and
// amortizes it over every candidate instruction. Each successor's index
// is then the incremental form of the linear index map — old and new
// destination nibbles (or flag fields, for cmp) priced by the field's
// weight in wraparound uint32 arithmetic — so the hot loop performs one
// multiply-add and a single table load per lane instead of the full
// byte decomposition. The result and the ok verdict are exactly
// ApplyDist's; the scalar engine path remains the differential oracle
// for both.
func (m *Machine) ApplyDistSWAR(dst State, s State, pidx []uint32, in isa.Instr, lut *DistLUT, budget int) (_ State, sorted, ok bool) {
	if cap(dst) < len(s) {
		dst = make(State, len(s))
	} else {
		dst = dst[:len(s)]
	}
	dist := lut.Dist
	b := uint8(budget)
	var acc uint8 // OR of successor distances; 0 ⟺ all sorted
	shD, shS := m.shift[in.Dst], m.shift[in.Src]
	wD, wF := lut.RegW[in.Dst], lut.FlagW
	i := 0
	switch in.Op {
	case isa.Mov:
		for ; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			w ^= (x ^ y) << shD
			d0 := dist[pidx[i]+(uint32(y)-uint32(x))*wD]
			d1 := dist[pidx[i+1]+(uint32(y>>32)-uint32(x>>32))*wD]
			if d0 > b || d1 > b {
				return dst, false, false
			}
			acc |= d0 | d1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Cmp:
		for ; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			nw := w&^laneRep3 | laneLess(x, y) | laneLess(y, x)<<1
			d0 := dist[pidx[i]+(uint32(nw&3)-uint32(w&3))*wF]
			d1 := dist[pidx[i+1]+(uint32(nw>>32&3)-uint32(w>>32&3))*wF]
			w = nw
			if d0 > b || d1 > b {
				return dst, false, false
			}
			acc |= d0 | d1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Cmovl:
		for ; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			c := w & laneRep1
			w ^= ((w>>shS ^ w>>shD) & laneRepF & (c * 0xF)) << shD
			nx := (w >> shD) & laneRepF
			d0 := dist[pidx[i]+(uint32(nx)-uint32(x))*wD]
			d1 := dist[pidx[i+1]+(uint32(nx>>32)-uint32(x>>32))*wD]
			if d0 > b || d1 > b {
				return dst, false, false
			}
			acc |= d0 | d1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Cmovg:
		for ; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			c := (w >> 1) & laneRep1
			w ^= ((w>>shS ^ w>>shD) & laneRepF & (c * 0xF)) << shD
			nx := (w >> shD) & laneRepF
			d0 := dist[pidx[i]+(uint32(nx)-uint32(x))*wD]
			d1 := dist[pidx[i+1]+(uint32(nx>>32)-uint32(x>>32))*wD]
			if d0 > b || d1 > b {
				return dst, false, false
			}
			acc |= d0 | d1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Min:
		for ; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			w ^= ((x ^ y) & (laneLess(y, x) * 0xF)) << shD
			nx := (w >> shD) & laneRepF
			d0 := dist[pidx[i]+(uint32(nx)-uint32(x))*wD]
			d1 := dist[pidx[i+1]+(uint32(nx>>32)-uint32(x>>32))*wD]
			if d0 > b || d1 > b {
				return dst, false, false
			}
			acc |= d0 | d1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	case isa.Max:
		for ; i+1 < len(s); i += 2 {
			w := laneWord(s[i], s[i+1])
			x := (w >> shD) & laneRepF
			y := (w >> shS) & laneRepF
			w ^= ((x ^ y) & (laneLess(x, y) * 0xF)) << shD
			nx := (w >> shD) & laneRepF
			d0 := dist[pidx[i]+(uint32(nx)-uint32(x))*wD]
			d1 := dist[pidx[i+1]+(uint32(nx>>32)-uint32(x>>32))*wD]
			if d0 > b || d1 > b {
				return dst, false, false
			}
			acc |= d0 | d1
			dst[i], dst[i+1] = Asg(w), Asg(w>>32)
		}
	default:
		for ; i < len(s); i++ {
			a := m.Step(s[i], in)
			d := lut.Lookup(a)
			if d > b {
				return dst, false, false
			}
			acc |= d
			dst[i] = a
		}
		return dst, acc == 0, true
	}
	if i < len(s) {
		a := m.Step(s[i], in)
		d := lut.Lookup(a)
		if d > b {
			return dst, false, false
		}
		acc |= d
		dst[i] = a
	}
	return dst, acc == 0, true
}

// SortedLanes returns bit 0 of each lane set iff that lane's assignment
// is sorted, for single-goal machines (the permutation suite): a lane is
// sorted exactly when its projection-and-tag field equals the goal.
// Multi-tag machines (weak orders) need a per-lane goal lookup and use
// the scalar Sorted path instead; swarUniform reports which applies.
func (m *Machine) SortedLanes(w uint64) uint64 {
	diff := (w ^ m.swarGoalW) & m.swarProjMaskW
	// Collapse each lane's 32-bit difference to its lane base bit.
	diff |= diff >> 16
	diff |= diff >> 8
	diff |= diff >> 4
	diff |= diff >> 2
	diff |= diff >> 1
	return diff&laneRep1 ^ laneRep1
}

// AllSortedSWAR is AllSorted evaluated two assignments per word on
// single-goal machines, falling back to the scalar loop for multi-tag
// suites. The answer is identical to AllSorted for every input.
func (m *Machine) AllSortedSWAR(s State) bool {
	if !m.swarUniform {
		return m.AllSorted(s)
	}
	var acc uint64
	k := len(s) &^ 1
	for i := 0; i+1 < len(s); i += 2 {
		acc |= (laneWord(s[i], s[i+1]) ^ m.swarGoalW) & m.swarProjMaskW
	}
	if k < len(s) {
		acc |= (uint64(s[k]) ^ m.swarGoalW) & (m.swarProjMaskW & 0xFFFFFFFF)
	}
	return acc == 0
}

// AllViableSWAR is AllViable with the loop body evaluated per lane out of
// one 64-bit load: viability needs a per-value presence bitmask (a
// variable shift per register value), which SWAR lane arithmetic cannot
// express, so the check itself stays scalar per lane. Answer identical
// to AllViable.
func (m *Machine) AllViableSWAR(s State) bool {
	regs := m.Set.Regs()
	for i := 0; i+1 < len(s); i += 2 {
		w := laneWord(s[i], s[i+1])
		var seen0, seen1 uint
		for r := 0; r < regs; r++ {
			v := w >> m.shift[r]
			seen0 |= 1 << (v & 0xF)
			seen1 |= 1 << (v >> 32 & 0xF)
		}
		want0 := m.needs[Asg(w)>>m.tagShift]
		want1 := m.needs[Asg(w>>32)>>m.tagShift]
		if seen0&want0 != want0 || seen1&want1 != want1 {
			return false
		}
	}
	if k := len(s) &^ 1; k < len(s) {
		return m.Viable(s[k])
	}
	return true
}

// initSWAR precomputes the lane-replicated goal and projection masks
// (and the projection-field width the direct-indexed cut check keys on).
// Called from NewMachineSuite once the goal table is final.
func (m *Machine) initSWAR() {
	m.projBits = m.PackedBits() - int(m.permShift)
	m.swarUniform = m.numTags == 1
	if m.swarUniform {
		g := uint64(m.goals[0]) << m.permShift
		m.swarGoalW = g | g<<32
	}
	pm := uint64(0xFFFFFFFF) << m.permShift & 0xFFFFFFFF
	m.swarProjMaskW = pm | pm<<32
}
