package state

import "sortsynth/internal/isa"

const (
	projSetBits  = 8
	projSetSlots = 1 << projSetBits
)

// ProjPreserving reports whether in can never change the
// projection-and-tag field of any assignment: cmp writes only the flag
// bits, and any op targeting a scratch register writes entirely below
// the projection field. A successor produced by such an instruction has
// exactly its parent's multiset of projections, so its distinct
// projection count — PermCount on the canonical state, the §3.5 cut's
// quantity — is the parent's, and the engines skip the per-assignment
// recount for these candidates.
func (m *Machine) ProjPreserving(in isa.Instr) bool {
	return in.Op == isa.Cmp || m.shift[in.Dst]+4 <= m.permShift
}

// projDirectBits is the widest projection-and-tag field served by the
// direct-indexed stamp table (64 KB of uint8 stamps). The permutation
// machines up to n=4 and the weak-order machine at n=3 fit; wider
// machines (n=5) fall back to the hashed probe table.
const projDirectBits = 16

// ProjSet is reusable scratch for PermCountExceedsSet: an epoch-stamped
// set of permutation projections. Stamping makes clearing free (bump the
// epoch instead of zeroing the table). Machines whose projection field
// fits projDirectBits use a direct-indexed stamp byte per possible
// projection — one load, no hashing, no probe chain; wider machines use
// the open-addressing table, whose 256 slots keep the load factor under
// 25% for the at-most-64 projections the cut test tracks. The zero value
// is ready for use; a ProjSet must not be shared between goroutines.
type ProjSet struct {
	stamp []uint32
	proj  []Asg
	epoch uint32

	direct      []uint16 // 1<<projDirectBits stamps, indexed by projection
	directEpoch uint16
}

// PermCountExceedsSet is PermCountExceeds with caller-provided scratch:
// it reports whether s has more than limit distinct permutation
// projections, accepting a raw (non-canonical) state and exiting as soon
// as the count passes limit. The linear-scan variant pays O(count) per
// assignment re-comparing every projection seen so far; the stamped set
// pays a near-constant probe (a single direct-indexed load on machines
// narrow enough for the direct table), which matters because this test
// guards canonicalization in the innermost loop of the search. Results
// are identical to PermCountExceeds on every input.
func (m *Machine) PermCountExceedsSet(s State, limit int, ps *ProjSet) bool {
	if limit >= len(s) || limit >= 64 {
		return false
	}
	if m.projBits <= projDirectBits {
		if ps.direct == nil {
			ps.direct = make([]uint16, 1<<projDirectBits)
		}
		ps.directEpoch++
		if ps.directEpoch == 0 { // wrapped: stale stamps could alias, clear once
			clear(ps.direct)
			ps.directEpoch = 1
		}
		epoch := ps.directEpoch
		tab := ps.direct
		cnt := 0
		for _, a := range s {
			st := &tab[a>>m.permShift]
			if *st != epoch {
				if cnt == limit {
					return true
				}
				*st = epoch
				cnt++
			}
		}
		return false
	}
	if ps.stamp == nil {
		ps.stamp = make([]uint32, projSetSlots)
		ps.proj = make([]Asg, projSetSlots)
	}
	ps.epoch++
	if ps.epoch == 0 { // wrapped: stale stamps could alias, clear once
		clear(ps.stamp)
		ps.epoch = 1
	}
	epoch := ps.epoch
	cnt := 0
	for _, a := range s {
		p := a >> m.permShift
		i := (uint32(p) * 2654435761) >> (32 - projSetBits)
		for {
			if ps.stamp[i] != epoch {
				if cnt == limit {
					return true
				}
				ps.stamp[i] = epoch
				ps.proj[i] = p
				cnt++
				break
			}
			if ps.proj[i] == p {
				break
			}
			i = (i + 1) & (projSetSlots - 1)
		}
	}
	return false
}
