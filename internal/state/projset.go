package state

const (
	projSetBits  = 8
	projSetSlots = 1 << projSetBits
)

// ProjSet is reusable scratch for PermCountExceedsSet: an epoch-stamped
// open-addressing set of permutation projections. Stamping makes clearing
// free (bump the epoch instead of zeroing the table), and 256 slots keep
// the load factor under 25% for the at-most-64 projections the cut test
// tracks, so probes are near-constant. The zero value is ready for use;
// a ProjSet must not be shared between goroutines.
type ProjSet struct {
	stamp []uint32
	proj  []Asg
	epoch uint32
}

// PermCountExceedsSet is PermCountExceeds with caller-provided scratch:
// it reports whether s has more than limit distinct permutation
// projections, accepting a raw (non-canonical) state and exiting as soon
// as the count passes limit. The linear-scan variant pays O(count) per
// assignment re-comparing every projection seen so far; the stamped set
// pays a near-constant probe, which matters because this test guards
// canonicalization in the innermost loop of the search. Results are
// identical to PermCountExceeds on every input.
func (m *Machine) PermCountExceedsSet(s State, limit int, ps *ProjSet) bool {
	if limit >= len(s) || limit >= 64 {
		return false
	}
	if ps.stamp == nil {
		ps.stamp = make([]uint32, projSetSlots)
		ps.proj = make([]Asg, projSetSlots)
	}
	ps.epoch++
	if ps.epoch == 0 { // wrapped: stale stamps could alias, clear once
		clear(ps.stamp)
		ps.epoch = 1
	}
	epoch := ps.epoch
	cnt := 0
	for _, a := range s {
		p := a >> m.permShift
		i := (uint32(p) * 2654435761) >> (32 - projSetBits)
		for {
			if ps.stamp[i] != epoch {
				if cnt == limit {
					return true
				}
				ps.stamp[i] = epoch
				ps.proj[i] = p
				cnt++
				break
			}
			if ps.proj[i] == p {
				break
			}
			i = (i + 1) & (projSetSlots - 1)
		}
	}
	return false
}
