package state

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
)

// swarTestMachines covers both ISAs, both suites, and register counts up
// to the packed limit, so every shift layout the SWAR lanes can see is
// exercised.
func swarTestMachines() []*Machine {
	return []*Machine{
		NewMachine(isa.NewCmov(2, 1)),
		NewMachine(isa.NewCmov(3, 1)),
		NewMachine(isa.NewCmov(4, 1)),
		NewMachine(isa.NewCmov(5, 2)),
		NewMachine(isa.NewMinMax(3, 2)),
		NewMachine(isa.NewMinMax(4, 1)),
		NewMachineSuite(isa.NewCmov(3, 1), SuiteWeakOrders),
		NewMachineSuite(isa.NewMinMax(3, 1), SuiteWeakOrders),
	}
}

// randState draws a state of random packed assignments confined to the
// machine's packed bits, with tags clamped to the goal table.
func randState(m *Machine, rng *rand.Rand, n int) State {
	s := make(State, n)
	mask := Asg(1)<<uint(m.PackedBits()) - 1
	for i := range s {
		a := Asg(rng.Uint32()) & mask
		a = m.WithTag(a, int(a>>m.tagShift)%m.numTags)
		s[i] = a
	}
	return s
}

// TestApplySWARMatchesStep pins the SWAR contract: for every instruction
// of every machine and arbitrary (even non-canonical, odd-length) states,
// ApplySWAR equals the per-Asg Step loop bit for bit.
func TestApplySWARMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range swarTestMachines() {
		for _, n := range []int{0, 1, 2, 3, 7, 24, 31} {
			s := randState(m, rng, n)
			for _, in := range m.Set.Instrs() {
				want := make(State, len(s))
				for i, a := range s {
					want[i] = m.Step(a, in)
				}
				got := m.ApplySWAR(nil, s, in)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v %s len=%d asg[%d]=%08x: swar %08x, step %08x",
							m.Set, in.Format(m.Set.N), n, i, s[i], got[i], want[i])
					}
				}
			}
		}
	}
}

// TestApplySWARMatchesApplyRaw checks the engine-facing pair on real
// search states reached by random programs from the initial state.
func TestApplySWARMatchesApplyRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range swarTestMachines() {
		instrs := m.Set.Instrs()
		s := m.Initial().Clone()
		for step := 0; step < 40; step++ {
			in := instrs[rng.Intn(len(instrs))]
			want := m.ApplyRaw(nil, s, in)
			got := m.ApplySWAR(nil, s, in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v %s: swar[%d]=%08x raw=%08x", m.Set, in.Format(m.Set.N), i, got[i], want[i])
				}
			}
			if m.AllSortedSWAR(want) != m.AllSorted(want) {
				t.Fatalf("%v: AllSortedSWAR diverges on %v", m.Set, want)
			}
			if m.AllViableSWAR(want) != m.AllViable(want) {
				t.Fatalf("%v: AllViableSWAR diverges on %v", m.Set, want)
			}
			s = m.Apply(s[:0:cap(s)], append(State(nil), s...), in)
			if len(s) == 0 {
				break
			}
		}
	}
}
