package state_test

// Differential fuzzing of the SWAR execution layer against the scalar
// oracle. The in-package tests (swar_test.go) pin the contract on random
// states; this target lets the fuzzer steer the packed bit patterns,
// machine choice, instruction choice, and prune budget, and — living in
// the external test package — checks the fused ApplyDistSWAR kernel
// against ApplyDist with the *real* distance tables from
// internal/tables, incremental parent indices included.

import (
	"encoding/binary"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
	"sortsynth/internal/tables"
)

// fuzzMachines mirrors swarTestMachines: both ISAs, both suites,
// register counts up to the packed limit, and (via cmov n=5) a
// projection field too wide for the direct-indexed cut table, so both
// PermCountExceedsSet paths run.
var fuzzMachines = []*state.Machine{
	state.NewMachine(isa.NewCmov(2, 1)),
	state.NewMachine(isa.NewCmov(3, 1)),
	state.NewMachine(isa.NewCmov(4, 1)),
	state.NewMachine(isa.NewCmov(5, 2)),
	state.NewMachine(isa.NewMinMax(3, 2)),
	state.NewMachine(isa.NewMinMax(4, 1)),
	state.NewMachineSuite(isa.NewCmov(3, 1), state.SuiteWeakOrders),
	state.NewMachineSuite(isa.NewMinMax(3, 1), state.SuiteWeakOrders),
}

// clampAsg forces an arbitrary fuzzed word into the machine's packed
// domain: register values at most n, tag below the goal-table size. The
// distance tables are only defined on that domain (exactly the states
// the engines can reach), so out-of-range nibbles would index garbage
// rather than exercise the contract.
func clampAsg(m *state.Machine, a state.Asg) state.Asg {
	n := m.Set.N
	vals := m.Unpack(a)
	for i, v := range vals {
		vals[i] = v % (n + 1)
	}
	lt, gt := m.Flags(a)
	out := m.Pack(vals, lt, gt)
	return m.WithTag(out, m.Tag(a)%m.NumTags())
}

// FuzzSWARvsScalarStep is the differential gate the SWAR layer's
// bit-for-bit claim rests on: for fuzzer-chosen machine, instruction,
// budget, and state, every SWAR entry point must agree exactly with its
// scalar oracle — ApplySWAR with the per-Asg Step loop, the batched
// goal/viability checks with their scalar forms, ApplyDistSWAR's result
// and verdicts with ApplyDist + AllSorted, and the stamped cut check
// with the linear-scan PermCountExceeds.
func FuzzSWARvsScalarStep(f *testing.F) {
	luts := make([]*state.DistLUT, len(fuzzMachines))
	for i, m := range fuzzMachines {
		luts[i] = tables.For(m).DistLUT()
	}

	f.Add([]byte{})
	f.Add([]byte{0, 0, 4, 1})
	f.Add([]byte{2, 7, 9, 3, 0x21, 0x43, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("swar-vs-scalar differential seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		mi := int(data[0]) % len(fuzzMachines)
		m, lut := fuzzMachines[mi], luts[mi]
		instrs := m.Set.Instrs()
		in := instrs[int(data[1])%len(instrs)]
		budget := int(data[2]) % 24
		limit := int(data[3]) % 9
		data = data[4:]

		k := len(data) / 4
		if k > 64 {
			k = 64
		}
		s := make(state.State, k)
		for i := 0; i < k; i++ {
			s[i] = clampAsg(m, state.Asg(binary.LittleEndian.Uint32(data[i*4:])))
		}

		// ApplySWAR against the per-assignment Step loop, bit for bit.
		want := make(state.State, len(s))
		for i, a := range s {
			want[i] = m.Step(a, in)
		}
		got := m.ApplySWAR(nil, s, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v %s asg[%d]=%08x: ApplySWAR %08x, Step %08x",
					m.Set, in.Format(m.Set.N), i, s[i], got[i], want[i])
			}
		}

		// Batched predicates against their scalar forms, on both the
		// input and the successor state.
		for _, x := range []state.State{s, want} {
			if m.AllSortedSWAR(x) != m.AllSorted(x) {
				t.Fatalf("%v: AllSortedSWAR diverges on %v", m.Set, x)
			}
			if m.AllViableSWAR(x) != m.AllViable(x) {
				t.Fatalf("%v: AllViableSWAR diverges on %v", m.Set, x)
			}
		}
		if m.NumTags() == 1 {
			for i := 0; i+1 < len(s); i += 2 {
				lanes := m.SortedLanes(uint64(s[i]) | uint64(s[i+1])<<32)
				if lanes&1 != 0 != m.Sorted(s[i]) || lanes>>32&1 != 0 != m.Sorted(s[i+1]) {
					t.Fatalf("%v: SortedLanes %x for %08x,%08x", m.Set, lanes, s[i], s[i+1])
				}
			}
		}

		// Fused apply+prune: ApplyDistSWAR with incremental parent
		// indices must reproduce ApplyDist's state and verdict, and its
		// batched sorted bit must equal AllSorted of the successor.
		pidx := make([]uint32, len(s))
		for i, a := range s {
			pidx[i] = lut.Index(a)
		}
		gotD, sortedD, okD := m.ApplyDistSWAR(nil, s, pidx, in, lut, budget)
		wantD, okS := m.ApplyDist(nil, s, in, lut, budget)
		if okD != okS {
			t.Fatalf("%v %s budget=%d: ApplyDistSWAR ok=%v, ApplyDist ok=%v",
				m.Set, in.Format(m.Set.N), budget, okD, okS)
		}
		if okD {
			for i := range wantD {
				if gotD[i] != wantD[i] || gotD[i] != want[i] {
					t.Fatalf("%v %s: fused asg[%d] swar=%08x scalar=%08x step=%08x",
						m.Set, in.Format(m.Set.N), i, gotD[i], wantD[i], want[i])
				}
			}
			if sortedD != m.AllSorted(gotD) {
				t.Fatalf("%v %s: ApplyDistSWAR sorted=%v, AllSorted=%v",
					m.Set, in.Format(m.Set.N), sortedD, m.AllSorted(gotD))
			}
		}

		// The §3.5 cut's stamped projection set against the linear scan.
		var ps state.ProjSet
		if gotSet, wantScan := m.PermCountExceedsSet(s, limit, &ps), m.PermCountExceeds(s, limit); gotSet != wantScan {
			t.Fatalf("%v limit=%d: PermCountExceedsSet=%v, PermCountExceeds=%v on %v",
				m.Set, limit, gotSet, wantScan, s)
		}
	})
}
