package state

import (
	"encoding/binary"
	"math/rand"
	"slices"
	"testing"
)

// fuzzState decodes an arbitrary byte string into a State: four bytes
// per assignment, little-endian, capped so hostile inputs stay cheap.
func fuzzState(data []byte) State {
	n := len(data) / 4
	if n > 512 {
		n = 512
	}
	s := make(State, n)
	for i := 0; i < n; i++ {
		s[i] = Asg(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return s
}

// FuzzCanonicalize checks Canonicalize against the obvious map-dedup +
// sort model on arbitrary assignment multisets, plus idempotence and the
// strictly-ascending postcondition the dedup tables rely on.
func FuzzCanonicalize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 9, 9, 9, 9})
	f.Add([]byte("canonicalize-me canonicalize-me!"))
	f.Fuzz(func(t *testing.T, data []byte) {
		raw := fuzzState(data)
		seen := make(map[Asg]struct{}, len(raw))
		for _, a := range raw {
			seen[a] = struct{}{}
		}
		model := make(State, 0, len(seen))
		for a := range seen {
			model = append(model, a)
		}
		slices.Sort(model)

		got := raw.Clone()
		Canonicalize(&got)
		if !slices.Equal(got, model) {
			t.Fatalf("Canonicalize(%v) = %v, model says %v", raw, got, model)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("canonical state not strictly ascending at %d: %v", i, got)
			}
		}
		again := got.Clone()
		Canonicalize(&again)
		if !slices.Equal(again, got) {
			t.Fatalf("Canonicalize not idempotent: %v then %v", got, again)
		}
	})
}

// FuzzHashKey checks the dedup-hash contract: Hash is HashKey.Lo, both
// are invariant under element order once canonicalized (the search
// hashes canonical states only), and distinct canonical states do not
// collide — a 128-bit collision the fuzzer can actually find would be a
// genuine soundness bug in the exhaustive-proof dedup.
func FuzzHashKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte("hash-stability-seed-corpus-entry"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzState(data)
		Canonicalize(&s)
		k := HashKey(s)
		if Hash(s) != k.Lo {
			t.Fatalf("Hash = %#x, HashKey.Lo = %#x", Hash(s), k.Lo)
		}

		shuf := s.Clone()
		rng := rand.New(rand.NewSource(int64(len(data))<<32 ^ int64(k.Lo&0x7fffffff)))
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		Canonicalize(&shuf)
		if !slices.Equal(shuf, s) {
			t.Fatalf("re-canonicalized shuffle differs: %v vs %v", shuf, s)
		}
		if HashKey(shuf) != k {
			t.Fatalf("hash not stable under element order: %v vs %v", HashKey(shuf), k)
		}

		if len(s) > 0 {
			mut := s.Clone()
			mut[0] ^= 1
			Canonicalize(&mut)
			if !slices.Equal(mut, s) && HashKey(mut) == k {
				t.Fatalf("128-bit collision between %v and %v", mut, s)
			}
		}
	})
}
