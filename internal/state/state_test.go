package state

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	m := NewMachine(isa.NewCmov(3, 1))
	regs := []int{3, 1, 2, 0}
	a := m.Pack(regs, true, false)
	if got := m.Unpack(a); !slices.Equal(got, regs) {
		t.Errorf("Unpack = %v, want %v", got, regs)
	}
	lt, gt := m.Flags(a)
	if !lt || gt {
		t.Errorf("Flags = %v,%v, want true,false", lt, gt)
	}
	for i, want := range regs {
		if got := m.Reg(a, i); got != want {
			t.Errorf("Reg(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPaperExampleN2(t *testing.T) {
	// The execution table of paper §2.2: sorting [2,1] with
	// mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1.
	set := isa.NewCmov(2, 1)
	m := NewMachine(set)
	p, err := isa.ParseProgram("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	a := m.PackRegs([]int{2, 1})

	a = m.Step(a, p[0])
	if got := m.Unpack(a); !slices.Equal(got, []int{2, 1, 1}) {
		t.Fatalf("after mov s1 r2: %v", got)
	}
	a = m.Step(a, p[1])
	if lt, gt := m.Flags(a); lt || !gt {
		t.Fatalf("after cmp r1 r2: lt=%v gt=%v", lt, gt)
	}
	a = m.Step(a, p[2])
	if got := m.Unpack(a); !slices.Equal(got, []int{2, 2, 1}) {
		t.Fatalf("after cmovg r2 r1: %v", got)
	}
	a = m.Step(a, p[3])
	if got := m.Unpack(a); !slices.Equal(got, []int{1, 2, 1}) {
		t.Fatalf("after cmovg r1 s1: %v", got)
	}
	if !m.Sorted(a) {
		t.Error("final assignment not recognized as sorted")
	}
}

func TestStepMatchesRunInts(t *testing.T) {
	// Property: the packed step function agrees with the reference integer
	// interpreter on random programs over values 0..n.
	for _, set := range []*isa.Set{isa.NewCmov(3, 1), isa.NewCmov(4, 1), isa.NewMinMax(3, 1)} {
		m := NewMachine(set)
		rng := rand.New(rand.NewSource(1))
		instrs := set.Instrs()
		for trial := 0; trial < 200; trial++ {
			p := make(isa.Program, rng.Intn(12))
			for i := range p {
				p[i] = instrs[rng.Intn(len(instrs))]
			}
			vals := rng.Perm(set.N)
			for i := range vals {
				vals[i]++
			}
			a := m.PackRegs(vals)
			a = m.RunAsg(a, p)
			want := RunInts(set, p, vals)
			for i := 0; i < set.N; i++ {
				if got := m.Reg(a, i); got != want[i] {
					t.Fatalf("%v: program %s on %v: packed r%d = %d, interpreter %d",
						set, p.FormatInline(set.N), vals, i+1, got, want[i])
				}
			}
		}
	}
}

func TestSortedAndProj(t *testing.T) {
	m := NewMachine(isa.NewCmov(3, 1))
	if !m.Sorted(m.Pack([]int{1, 2, 3, 7}, true, false)) {
		t.Error("sorted assignment with dirty scratch/flags not recognized")
	}
	if m.Sorted(m.PackRegs([]int{2, 1, 3})) {
		t.Error("unsorted assignment recognized as sorted")
	}
	a := m.Pack([]int{3, 1, 2, 5}, false, true)
	b := m.Pack([]int{3, 1, 2, 0}, true, false)
	if m.Proj(a) != m.Proj(b) {
		t.Error("Proj should ignore scratch and flags")
	}
}

func TestViable(t *testing.T) {
	m := NewMachine(isa.NewCmov(3, 1))
	if !m.Viable(m.PackRegs([]int{1, 2, 3})) {
		t.Error("initial assignment not viable")
	}
	if !m.Viable(m.Pack([]int{2, 2, 3, 1}, false, false)) {
		t.Error("value saved in scratch should be viable")
	}
	// Paper §3.3 example: mov r1 r2 on 1 2 3 0 erases the 1.
	if m.Viable(m.Pack([]int{2, 2, 3, 0}, false, false)) {
		t.Error("assignment with erased value 1 reported viable")
	}
}

func TestInitialState(t *testing.T) {
	m := NewMachine(isa.NewCmov(3, 1))
	init := m.Initial()
	if len(init) != perm.Factorial(3) {
		t.Fatalf("initial state has %d assignments, want 6", len(init))
	}
	if !slices.IsSorted(init) {
		t.Error("initial state not canonical")
	}
	if got := m.PermCount(init); got != 6 {
		t.Errorf("PermCount(initial) = %d, want 6", got)
	}
	if m.AllSorted(init) {
		t.Error("initial state reported sorted")
	}
	if !m.AllViable(init) {
		t.Error("initial state reported unviable")
	}
}

func TestApplyCanonicalizes(t *testing.T) {
	set := isa.NewCmov(2, 1)
	m := NewMachine(set)
	// cmp r1 r2 on the two permutations of 1..2 yields two assignments
	// differing only in flags.
	s := m.Apply(nil, m.Initial(), isa.Instr{Op: isa.Cmp, Dst: 0, Src: 1})
	if len(s) != 2 {
		t.Fatalf("got %d assignments, want 2", len(s))
	}
	if !slices.IsSorted(s) {
		t.Error("Apply result not sorted")
	}
	// A compare-and-swap merges both permutations into the sorted one:
	// mov s1 r2; cmp r1 r2 (wait, swap uses r1>r2) — use the paper §2.2
	// program which sorts n=2 completely.
	p, err := isa.ParseProgram("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	s = m.Initial()
	buf := State(nil)
	for _, in := range p {
		buf = m.Apply(buf, s, in)
		s = buf.Clone()
	}
	if !m.AllSorted(s) {
		t.Errorf("paper n=2 kernel does not sort: %v", s)
	}
	if m.PermCount(s) != 1 {
		t.Errorf("PermCount after sorting = %d, want 1", m.PermCount(s))
	}
}

func TestCanonicalizeProperty(t *testing.T) {
	// Canonicalize = sort + dedup for arbitrary inputs.
	f := func(raw []uint32) bool {
		s := make(State, len(raw))
		for i, v := range raw {
			s[i] = Asg(v)
		}
		Canonicalize(&s)
		if !slices.IsSorted(s) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return false
			}
		}
		// Every input element present in output.
		for _, v := range raw {
			if !slices.Contains(s, Asg(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHashDiscriminates(t *testing.T) {
	m := NewMachine(isa.NewCmov(3, 1))
	s1 := m.Initial()
	s2 := m.Apply(nil, s1, isa.Instr{Op: isa.Cmp, Dst: 0, Src: 1})
	if Hash(s1) == Hash(s2) {
		t.Error("different states share 64-bit hash (suspicious)")
	}
	k1, k2 := HashKey(s1), HashKey(s2)
	if k1 == k2 {
		t.Error("different states share 128-bit key")
	}
	if Hash(s1) != Hash(s1.Clone()) || HashKey(s1) != HashKey(s1.Clone()) {
		t.Error("hash not deterministic across clones")
	}
}

func TestRunIntsArbitraryValues(t *testing.T) {
	// The paper's §2.2 kernel for n=2 must sort arbitrary integers, not
	// just 1..n, because kernels are constant-free.
	set := isa.NewCmov(2, 1)
	p, err := isa.ParseProgram("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int16) bool {
		out := RunInts(set, p, []int{int(a), int(b)})
		return out[0] <= out[1] && ((out[0] == int(a) && out[1] == int(b)) || (out[0] == int(b) && out[1] == int(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxStep(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	m := NewMachine(set)
	a := m.PackRegs([]int{2, 1})
	a = m.Step(a, isa.Instr{Op: isa.Mov, Dst: 2, Src: 0}) // s1 = r1 = 2
	a = m.Step(a, isa.Instr{Op: isa.Min, Dst: 0, Src: 1}) // r1 = min(2,1) = 1
	a = m.Step(a, isa.Instr{Op: isa.Max, Dst: 1, Src: 2}) // r2 = max(1,2) = 2
	if got := m.Unpack(a); !slices.Equal(got, []int{1, 2, 2}) {
		t.Errorf("minmax compare-exchange = %v, want [1 2 2]", got)
	}
	if !m.Sorted(a) {
		t.Error("minmax result not sorted")
	}
}

func BenchmarkApplyN4(b *testing.B) {
	m := NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	in := isa.Instr{Op: isa.Cmp, Dst: 0, Src: 1}
	var buf State
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Apply(buf, s, in)
	}
}

func BenchmarkHashN5(b *testing.B) {
	m := NewMachine(isa.NewCmov(5, 1))
	s := m.Initial()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hash(s)
	}
}
