package state_test

import (
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
	"sortsynth/internal/tables"
)

// External test package: the ApplyDist benchmark needs the distance LUT
// from internal/tables, which imports state.

var (
	sinkKey   state.Key128
	sinkBool  bool
	sinkState state.State
)

func BenchmarkHashKey(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkKey = state.HashKey(s)
	}
}

func BenchmarkApplyDist(b *testing.B) {
	set := isa.NewCmov(4, 1)
	m := state.NewMachine(set)
	tab := tables.For(m)
	lut := tab.DistLUT()
	instrs := set.Instrs()
	s := m.Initial()
	var dst state.State
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = m.ApplyDist(dst, s, instrs[i%len(instrs)], lut, 20)
	}
	sinkState = dst
}

// BenchmarkApplyDistSWAR is BenchmarkApplyDist on the two-lane kernel,
// with the parent indices precomputed the way the engines amortize them
// over every candidate instruction of an expansion.
func BenchmarkApplyDistSWAR(b *testing.B) {
	set := isa.NewCmov(4, 1)
	m := state.NewMachine(set)
	lut := tables.For(m).DistLUT()
	instrs := set.Instrs()
	s := m.Initial()
	pidx := make([]uint32, len(s))
	for i, a := range s {
		pidx[i] = lut.Index(a)
	}
	var dst state.State
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, _ = m.ApplyDistSWAR(dst, s, pidx, instrs[i%len(instrs)], lut, 20)
	}
	sinkState = dst
}

// opInstr returns the first instruction of the set with the given op.
func opInstr(set *isa.Set, op isa.Op) isa.Instr {
	for _, in := range set.Instrs() {
		if in.Op == op {
			return in
		}
	}
	panic("no instruction with requested op")
}

// BenchmarkApplyPerOp compares the scalar ApplyRaw loop against
// ApplySWAR for every instruction class, on the full n=4 initial state
// (24 assignments — the state size the hot search loops actually see).
func BenchmarkApplyPerOp(b *testing.B) {
	cm := state.NewMachine(isa.NewCmov(4, 1))
	mm := state.NewMachine(isa.NewMinMax(4, 1))
	cases := []struct {
		name string
		m    *state.Machine
		op   isa.Op
	}{
		{"mov", cm, isa.Mov},
		{"cmp", cm, isa.Cmp},
		{"cmovl", cm, isa.Cmovl},
		{"cmovg", cm, isa.Cmovg},
		{"min", mm, isa.Min},
		{"max", mm, isa.Max},
	}
	for _, c := range cases {
		in := opInstr(c.m.Set, c.op)
		s := c.m.Initial()
		b.Run(c.name+"/scalar", func(b *testing.B) {
			dst := make(state.State, len(s))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = c.m.ApplyRaw(dst, s, in)
			}
			sinkState = dst
		})
		b.Run(c.name+"/swar", func(b *testing.B) {
			dst := make(state.State, len(s))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = c.m.ApplySWAR(dst, s, in)
			}
			sinkState = dst
		})
	}
}

// sortedState builds a k-assignment state whose every entry satisfies
// the machine's goal, by scanning the packed domain for a sorted
// assignment. Worst case for the goal checks: no early exit fires.
func sortedState(m *state.Machine, k int) state.State {
	lim := state.Asg(1) << uint(m.PackedBits())
	for a := state.Asg(0); a < lim; a++ {
		if m.Sorted(a) {
			s := make(state.State, k)
			for i := range s {
				s[i] = a
			}
			return s
		}
	}
	panic("no sorted assignment in packed domain")
}

// BenchmarkAllSorted{,SWAR} and BenchmarkAllViable{,SWAR} compare the
// batched goal/viability checks against their scalar forms on full-scan
// inputs: an all-sorted state for the goal check (an unsorted entry
// would let the scalar loop exit early) and the all-viable initial
// state for the viability check.
func BenchmarkAllSorted(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := sortedState(m, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.AllSorted(s)
	}
}

func BenchmarkAllSortedSWAR(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := sortedState(m, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.AllSortedSWAR(s)
	}
}

func BenchmarkAllViable(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.AllViable(s)
	}
}

func BenchmarkAllViableSWAR(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.AllViableSWAR(s)
	}
}

// BenchmarkPermCountExceeds{Linear,Set} document the cut pre-check the
// search engines moved from the O(len·count) linear scan to the
// epoch-stamped projection set.
func BenchmarkPermCountExceedsLinear(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.PermCountExceeds(s, 12)
	}
}

func BenchmarkPermCountExceedsSet(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	var ps state.ProjSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.PermCountExceedsSet(s, 12, &ps)
	}
}

// BenchmarkPermCountExceedsSetHashed measures the open-addressing
// fallback on a machine whose projection field is too wide for the
// direct-indexed stamp table (cmov n=5: BenchmarkPermCountExceedsSet
// above exercises the direct path on n=4).
func BenchmarkPermCountExceedsSetHashed(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(5, 2))
	s := m.Initial()
	var ps state.ProjSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.PermCountExceedsSet(s, 12, &ps)
	}
}

// TestHotPathsAllocFree pins the zero-allocation contract of the
// steady-state inner-loop kernels: with scratch warm (dst at capacity,
// stamp tables built), none of them may touch the heap. A regression
// here turns into allocator time inside the per-candidate search loop,
// which the -benchmem numbers on the benchmarks above would show only
// after the fact.
func TestHotPathsAllocFree(t *testing.T) {
	set := isa.NewCmov(4, 1)
	m := state.NewMachine(set)
	lut := tables.For(m).DistLUT()
	in := opInstr(set, isa.Cmovl)
	s := m.Initial()
	dst := make(state.State, len(s))
	pidx := make([]uint32, len(s))
	for i, a := range s {
		pidx[i] = lut.Index(a)
	}
	var ps state.ProjSet
	m.PermCountExceedsSet(s, 12, &ps) // warm the stamp table
	checks := []struct {
		name string
		fn   func()
	}{
		{"ApplyRaw", func() { dst = m.ApplyRaw(dst, s, in) }},
		{"ApplySWAR", func() { dst = m.ApplySWAR(dst, s, in) }},
		{"ApplyDist", func() { dst, _ = m.ApplyDist(dst, s, in, lut, 20) }},
		{"ApplyDistSWAR", func() { dst, _, _ = m.ApplyDistSWAR(dst, s, pidx, in, lut, 20) }},
		{"AllSortedSWAR", func() { sinkBool = m.AllSortedSWAR(s) }},
		{"AllViableSWAR", func() { sinkBool = m.AllViableSWAR(s) }},
		{"PermCountExceedsSet", func() { sinkBool = m.PermCountExceedsSet(s, 12, &ps) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per run in steady state", c.name, n)
		}
	}
}
