package state_test

import (
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
	"sortsynth/internal/tables"
)

// External test package: the ApplyDist benchmark needs the distance LUT
// from internal/tables, which imports state.

var (
	sinkKey   state.Key128
	sinkBool  bool
	sinkState state.State
)

func BenchmarkHashKey(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkKey = state.HashKey(s)
	}
}

func BenchmarkApplyDist(b *testing.B) {
	set := isa.NewCmov(4, 1)
	m := state.NewMachine(set)
	tab := tables.For(m)
	dist, lutLo, lutHi := tab.DistLUT()
	instrs := set.Instrs()
	s := m.Initial()
	var dst state.State
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = m.ApplyDist(dst, s, instrs[i%len(instrs)], dist, lutLo, lutHi, 20)
	}
	sinkState = dst
}

// BenchmarkPermCountExceeds{Linear,Set} document the cut pre-check the
// search engines moved from the O(len·count) linear scan to the
// epoch-stamped projection set.
func BenchmarkPermCountExceedsLinear(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.PermCountExceeds(s, 12)
	}
}

func BenchmarkPermCountExceedsSet(b *testing.B) {
	m := state.NewMachine(isa.NewCmov(4, 1))
	s := m.Initial()
	var ps state.ProjSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = m.PermCountExceedsSet(s, 12, &ps)
	}
}
