package state

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
)

func TestArenaSaveAt(t *testing.T) {
	var a Arena
	rng := rand.New(rand.NewSource(4))
	var want []State
	var addrs [][2]int32
	for i := 0; i < 200; i++ {
		s := make(State, 1+rng.Intn(30))
		for j := range s {
			s[j] = Asg(rng.Uint32())
		}
		off, n := a.Save(s)
		if n != int32(len(s)) {
			t.Fatalf("Save returned n=%d for a %d-assignment state", n, len(s))
		}
		want = append(want, s)
		addrs = append(addrs, [2]int32{off, n})
	}
	// Every saved state must read back intact even though the slab has
	// been reallocated many times by later Saves.
	for i, ad := range addrs {
		got := a.At(ad[0], ad[1])
		if len(got) != len(want[i]) {
			t.Fatalf("state %d: length %d, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("state %d differs at %d: %x != %x", i, j, got[j], want[i][j])
			}
		}
	}
	if a.Len() == 0 {
		t.Fatal("Len() = 0 after 200 saves")
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len() = %d after Reset", a.Len())
	}
	// The slab is recycled: saving again reuses capacity and addresses
	// start at zero.
	if off, _ := a.Save(want[0]); off != 0 {
		t.Fatalf("first Save after Reset at offset %d", off)
	}
}

// TestArenaAtIsCapped pins the full-slice-expression contract: appending
// to a returned state must not clobber the next entry in the slab.
func TestArenaAtIsCapped(t *testing.T) {
	var a Arena
	a.Save(State{1, 2, 3})
	a.Save(State{9})
	got := a.At(0, 3)
	_ = append(got, 7) // must copy, not write slab[3]
	if next := a.At(3, 1); next[0] != 9 {
		t.Fatalf("append through At clobbered the neighbouring entry: %d", next[0])
	}
}

// TestPermCountExceedsSetMatchesLinear checks the stamped-set variant
// against the linear-scan original on random raw states across both
// suites, including the early-out thresholds (limit ≥ len(s), limit ≥ 64)
// and epoch reuse of one ProjSet across many calls.
func TestPermCountExceedsSetMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, suite := range []Suite{SuitePermutations, SuiteWeakOrders} {
		m := NewMachineSuite(isa.NewCmov(3, 1), suite)
		var ps ProjSet
		base := m.Initial()
		for trial := 0; trial < 2000; trial++ {
			// Random raw (non-canonical) states: duplicates and arbitrary
			// order, drawn from reachable assignments with mutated scratch.
			s := make(State, 1+rng.Intn(2*len(base)))
			for i := range s {
				a := base[rng.Intn(len(base))]
				if rng.Intn(2) == 0 {
					a ^= Asg(rng.Intn(16)) << 2 // perturb the low scratch nibble
				}
				s[i] = a
			}
			limit := rng.Intn(70)
			want := m.PermCountExceeds(s, limit)
			if got := m.PermCountExceedsSet(s, limit, &ps); got != want {
				t.Fatalf("suite %v trial %d: Set=%v linear=%v (len=%d limit=%d)",
					suite, trial, got, want, len(s), limit)
			}
		}
	}
}

// TestProjSetEpochWraparound forces the uint32 epoch to wrap and checks
// stale stamps cannot alias as current.
func TestProjSetEpochWraparound(t *testing.T) {
	m := NewMachine(isa.NewCmov(2, 1))
	s := m.Initial().Clone()
	ps := ProjSet{epoch: ^uint32(0) - 1}
	for i := 0; i < 4; i++ { // crosses the wrap between calls
		want := m.PermCountExceeds(s, 1)
		if got := m.PermCountExceedsSet(s, 1, &ps); got != want {
			t.Fatalf("call %d across epoch wrap: got %v, want %v", i, got, want)
		}
	}
}
