// Package backend defines the common interface over the repository's
// seven synthesis engines (enum, smt, cp, ilp, stoke, mcts, plan): a
// shared Spec/Result/Stats vocabulary, a registry keyed by backend name,
// central correctness verification, and a Portfolio that races several
// backends under one context and returns the first verified kernel.
//
// The engines themselves keep their native options and result types;
// adapters in this package translate to and from the shared vocabulary.
// Correctness checking happens in exactly one place — Run — so no
// call site needs its own "verify the winner" logic.
package backend

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

// Spec is the backend-independent synthesis request.
type Spec struct {
	// MaxLen is the program-length budget. The fixed-length backends
	// (smt, cp, ilp, stoke) synthesize at exactly this length and
	// require it to be > 0; the search backends (enum, mcts, plan)
	// treat it as an upper bound, with 0 meaning "engine default".
	MaxLen int

	// Seed seeds the randomized backends (stoke, mcts). Deterministic
	// backends ignore it.
	Seed int64

	// DuplicateSafe demands a kernel that sorts arbitrary inputs
	// including ties, not just distinct values (the weak-order suite;
	// see EXPERIMENTS.md). Backends that can, synthesize directly
	// against that suite; either way Run verifies the winner against
	// it, so a merely permutation-correct program is rejected.
	DuplicateSafe bool

	// Objective selects which member of the optimal-length solution
	// set the backend returns (enum.ObjectiveShortest, the zero value,
	// is every backend's historical behavior). Only the enum backend
	// enumerates solution sets; the single-solution backends accept
	// shortest only and reject anything else with an
	// *UnsupportedObjectiveError — they have no set to rank.
	Objective enum.Objective

	// Profile names the uarch profile an objective ranking runs under
	// ("" = default). Ignored when Objective is shortest.
	Profile string
}

// Status classifies a synthesis outcome.
type Status uint8

// Outcomes.
const (
	// StatusFound: a program satisfying the spec was synthesized (and,
	// when returned by Run or Portfolio, centrally verified).
	StatusFound Status = iota
	// StatusNoProgram: proven — no program exists within the budget
	// length. Sound refutation, not a resource stop.
	StatusNoProgram
	// StatusExhausted: the backend's own budget (nodes, conflicts,
	// proposals, iterations) ran out without a program or a proof.
	StatusExhausted
	// StatusCancelled: the context was cancelled before an outcome.
	StatusCancelled
	// StatusTimedOut: a deadline (context or engine timeout) expired
	// before an outcome.
	StatusTimedOut
	// StatusError: the backend failed (bad spec, incorrect program,
	// internal error). Used in Portfolio race tables; direct calls
	// surface the error itself.
	StatusError
	// StatusSkipped: a staggered Portfolio race ended (a verified winner
	// arrived, or the context died) before this member's launch slot, so
	// it never ran. Only ever appears in race tables — a skipped member
	// claims nothing and never becomes an aggregate verdict.
	StatusSkipped
)

func (s Status) String() string {
	switch s {
	case StatusFound:
		return "found"
	case StatusNoProgram:
		return "no-program"
	case StatusExhausted:
		return "exhausted"
	case StatusCancelled:
		return "cancelled"
	case StatusTimedOut:
		return "timed-out"
	case StatusError:
		return "error"
	case StatusSkipped:
		return "skipped"
	}
	return "status?"
}

// Stats is the backend-independent effort report. Engines count
// different things; each adapter documents the mapping.
type Stats struct {
	Elapsed time.Duration
	// Nodes is the primary search-effort counter: expanded states
	// (enum, plan), DFS nodes (cp, ilp), conflicts (smt), tree nodes
	// (mcts), proposals (stoke).
	Nodes int64
	// Generated counts produced successors where the engine tracks
	// them (enum, plan); 0 otherwise.
	Generated int64
	// Iterations counts outer-loop rounds where the engine has one:
	// CEGIS refinements (smt), MCTS iterations. 0 otherwise.
	Iterations int64
}

// RaceEntry is one backend's outcome inside a Portfolio race.
type RaceEntry struct {
	Backend string
	Status  Status
	// Err holds the error text for StatusError entries.
	Err   string
	Stats Stats
}

// Result is the backend-independent synthesis outcome.
type Result struct {
	// Backend is the name of the backend that produced this result
	// ("portfolio" for a race; see Winner for the racer that won).
	Backend string
	Status  Status
	// Program is the synthesized kernel (nil unless Status is
	// StatusFound).
	Program isa.Program
	// Length is len(Program) for StatusFound, else the length budget
	// the verdict applies to.
	Length int
	// Optimal reports that minimality is certified: the backend proved
	// no shorter program exists (only the enum backend in an
	// optimality-preserving configuration asserts this).
	Optimal bool
	// Solutions is the exact optimal-program count when the backend
	// enumerated the solution set (enum under AllSolutions or a
	// non-shortest objective); 0 when it synthesized a single program.
	Solutions int64
	// Cost is the winner's primary uarch metric for non-shortest
	// objectives (see enum.Result.Cost); 0 under shortest.
	Cost  float64
	Stats Stats

	// Winner and Race are set by Portfolio: the name of the backend
	// whose result this is, and the per-backend outcome table.
	Winner string
	Race   []RaceEntry

	// Sched reports staggered-dispatch accounting when the Portfolio ran
	// under a Scheduler; nil for plain races and every other backend.
	Sched *SchedStats
}

// SchedStats is a staggered Portfolio race's dispatch accounting: how
// the tuned schedule paid off on this request. The serving layer
// aggregates these into the /metrics scheduler counters.
type SchedStats struct {
	// FirstPickWin reports that the predicted-best member (the
	// schedule's first entry) produced the verified winner.
	FirstPickWin bool
	// FallbackStarts counts members beyond the first pick that actually
	// launched (because their stagger slot, deadline pressure, or an
	// earlier member's failure triggered them).
	FallbackStarts int
	// FallbackWin reports that a launched fallback — not the first
	// pick — produced the verified winner.
	FallbackWin bool
	// SavedLaunches counts members the race finished without ever
	// launching: the CPU a plain race-everything dispatch would have
	// burned and thrown away.
	SavedLaunches int
}

// Schedule is one spec's staggered dispatch plan: Portfolio member
// indices in predicted-best-first order, and the delay between
// successive launches. Members absent from Order never launch (their
// race entries read skipped) — a Scheduler that wants every member as a
// last-resort fallback must list them all.
type Schedule struct {
	Order   []int
	Stagger time.Duration
}

// Scheduler plans staggered dispatch for a Portfolio. Plan returns
// (schedule, true) to stagger the race for this spec, or ok=false to
// fall back to the plain race-everything dispatch. Implementations must
// be safe for concurrent use; the tuned-table scheduler
// (internal/tuned) is the canonical one.
type Scheduler interface {
	Plan(set *isa.Set, spec Spec) (Schedule, bool)
}

// Backend is one synthesis engine behind the common vocabulary.
//
// Synthesize must honour ctx: when ctx is cancelled it returns promptly
// with StatusCancelled (or StatusTimedOut on deadline expiry). It
// returns an error only for malformed specs or internal failures —
// "no program" and "budget ran out" are Statuses, not errors.
type Backend interface {
	Name() string
	Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error)
}

// UnknownBackendError reports a name not present in a Registry.
type UnknownBackendError struct {
	Name  string
	Known []string
}

func (e *UnknownBackendError) Error() string {
	return fmt.Sprintf("backend: unknown backend %q (known: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

// UnsupportedObjectiveError reports a non-shortest Spec.Objective sent
// to a backend that synthesizes a single program and therefore has no
// solution set to rank. A client error, like UnknownBackendError —
// never a backend bug.
type UnsupportedObjectiveError struct {
	Backend   string
	Objective enum.Objective
}

func (e *UnsupportedObjectiveError) Error() string {
	return fmt.Sprintf("backend %s: objective %q is not supported (single-solution backend accepts only \"shortest\")",
		e.Backend, e.Objective)
}

// requireShortest is the shared guard for the single-solution backends.
func requireShortest(name string, spec Spec) error {
	if spec.Objective != enum.ObjectiveShortest {
		return &UnsupportedObjectiveError{Backend: name, Objective: spec.Objective}
	}
	return nil
}

// IncorrectError reports that a backend claimed StatusFound but central
// verification produced a counterexample — a backend bug, never a user
// error.
type IncorrectError struct {
	Backend string
	// Input is the counterexample: an input the program fails to sort.
	Input []int
}

func (e *IncorrectError) Error() string {
	return fmt.Sprintf("backend %s: synthesized program fails on input %v", e.Backend, e.Input)
}

// Run invokes b and centrally verifies any claimed program: the single
// place correctness is checked, for direct calls, registry calls, and
// every Portfolio racer alike. A StatusFound result is checked against
// the full permutation suite (and the weak-order suite when
// spec.DuplicateSafe); a counterexample turns it into an
// *IncorrectError.
func Run(ctx context.Context, b Backend, set *isa.Set, spec Spec) (*Result, error) {
	res, err := b.Synthesize(ctx, set, spec)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("backend %s: nil result without error", b.Name())
	}
	if res.Status == StatusFound {
		if ce := verify.Counterexample(set, res.Program); ce != nil {
			return nil, &IncorrectError{Backend: b.Name(), Input: ce}
		}
		if spec.DuplicateSafe {
			if ce := verify.DuplicateCounterexample(set, res.Program); ce != nil {
				return nil, &IncorrectError{Backend: b.Name(), Input: ce}
			}
		}
	}
	return res, nil
}

// stopStatus maps a cancelled context to the right terminal status:
// deadline expiry reads as a timeout, everything else as cancellation.
func stopStatus(ctx context.Context) Status {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return StatusTimedOut
	}
	return StatusCancelled
}
