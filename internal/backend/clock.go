package backend

import "time"

// Clock abstracts wall time for the staggered Portfolio scheduler so
// the dispatch tests can drive launch slots deterministically instead
// of sleeping. Production code always uses the real clock; tests swap
// in a fake via Portfolio.withClock.
type Clock interface {
	Now() time.Time
	// NewTimer returns a timer that fires once after d. A non-positive d
	// must fire (real time.NewTimer already does).
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of *time.Timer the scheduler needs.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }
