package backend

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"sortsynth/internal/isa"
)

// fakeClock is a manually advanced Clock: timers fire only when the
// test calls Advance past their deadline, so staggered dispatch replays
// the exact same launch schedule on every run, under -race, regardless
// of machine load.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

func newFakeClock() *fakeClock {
	// An arbitrary fixed epoch: fake time is relative, never wall time.
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{mu: &c.mu, ch: make(chan time.Time, 1), when: c.now.Add(d)}
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
	} else {
		c.timers = append(c.timers, t)
	}
	return t
}

// Advance moves fake time forward and fires every timer now due.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.timers {
		if !t.fired && !t.when.After(c.now) {
			t.fired = true
			t.ch <- c.now
		}
	}
}

type fakeTimer struct {
	mu    *sync.Mutex
	ch    chan time.Time
	when  time.Time
	fired bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }
func (t *fakeTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	stopped := !t.fired
	t.fired = true
	return stopped
}

// fixedScheduler returns the same schedule for every spec.
type fixedScheduler struct {
	sched Schedule
	ok    bool
}

func (s fixedScheduler) Plan(*isa.Set, Spec) (Schedule, bool) { return s.sched, s.ok }

// launchEvent records one scripted backend starting work, stamped with
// the fake clock's time at entry.
type launchEvent struct {
	name string
	at   time.Duration // since the race's fake start
}

// scriptedRig wires scripted member backends to one launch-event stream
// and per-member win triggers.
type scriptedRig struct {
	clock    *fakeClock
	start    time.Time
	launches chan launchEvent
	wins     map[string]chan isa.Program
}

func newScriptedRig(clock *fakeClock, members int) *scriptedRig {
	return &scriptedRig{
		clock:    clock,
		start:    clock.Now(),
		launches: make(chan launchEvent, members),
		wins:     make(map[string]chan isa.Program),
	}
}

// waiter scripts a member that records its launch, then blocks until it
// is told to win (returning a StatusFound claim) or the race cancels it.
func (r *scriptedRig) waiter(name string) *fakeBackend {
	win := make(chan isa.Program, 1)
	r.wins[name] = win
	return &fakeBackend{name: name, fn: func(ctx context.Context, _ *isa.Set, _ Spec) (*Result, error) {
		r.launches <- launchEvent{name: name, at: r.clock.Now().Sub(r.start)}
		select {
		case p := <-win:
			return &Result{Backend: name, Status: StatusFound, Program: p, Length: len(p)}, nil
		case <-ctx.Done():
			return &Result{Backend: name, Status: stopStatus(ctx)}, nil
		}
	}}
}

// failer scripts a member that records its launch and fails immediately
// with the given status.
func (r *scriptedRig) failer(name string, status Status) *fakeBackend {
	return &fakeBackend{name: name, fn: func(ctx context.Context, _ *isa.Set, _ Spec) (*Result, error) {
		r.launches <- launchEvent{name: name, at: r.clock.Now().Sub(r.start)}
		return &Result{Backend: name, Status: status}, nil
	}}
}

// expectLaunch asserts the next launch event.
func (r *scriptedRig) expectLaunch(t *testing.T, name string, at time.Duration) {
	t.Helper()
	select {
	case ev := <-r.launches:
		if ev.name != name || ev.at != at {
			t.Fatalf("launch = %s@%v, want %s@%v", ev.name, ev.at, name, at)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no launch within 5s, want %s@%v", name, at)
	}
}

// TestStaggeredDispatchOrder drives the schedule [c, a, b] with stagger
// S on the fake clock: the first pick launches alone at t=0, each
// fallback launches exactly at its slot, and the last one's verified
// win cancels the still-running earlier members.
func TestStaggeredDispatchOrder(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	clock := newFakeClock()
	rig := newScriptedRig(clock, 3)
	a, b, c := rig.waiter("a"), rig.waiter("b"), rig.waiter("c")

	const S = 10 * time.Millisecond
	pf := NewPortfolio(a, b, c).
		WithScheduler(fixedScheduler{sched: Schedule{Order: []int{2, 0, 1}, Stagger: S}, ok: true}).
		withClock(clock)

	type syn struct {
		res *Result
		err error
	}
	done := make(chan syn, 1)
	go func() {
		res, err := Run(context.Background(), pf, set, Spec{MaxLen: 4})
		done <- syn{res, err}
	}()

	rig.expectLaunch(t, "c", 0)
	clock.Advance(S)
	rig.expectLaunch(t, "a", S)
	clock.Advance(S)
	rig.expectLaunch(t, "b", 2*S)
	rig.wins["b"] <- good

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.Status != StatusFound || res.Winner != "b" {
		t.Fatalf("status %v winner %q, want found by b", res.Status, res.Winner)
	}
	for _, idx := range []int{0, 2} { // a and c were cancelled mid-run
		if res.Race[idx].Status != StatusCancelled {
			t.Fatalf("race[%d] = %+v, want cancelled", idx, res.Race[idx])
		}
	}
	if res.Sched == nil {
		t.Fatal("staggered result carries no SchedStats")
	}
	want := SchedStats{FallbackStarts: 2, FallbackWin: true}
	if *res.Sched != want {
		t.Fatalf("sched = %+v, want %+v", *res.Sched, want)
	}
}

// TestStaggeredFirstPickWinParksFallbacks proves the payoff case: the
// predicted-best member wins before any stagger slot elapses, so no
// fallback ever launches — their entries read skipped and the saved
// launches are counted. The fake clock never advances, so a fallback
// launching at all would be a scheduling bug, not a timing accident.
func TestStaggeredFirstPickWinParksFallbacks(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	clock := newFakeClock()
	rig := newScriptedRig(clock, 4)
	a, b, c := rig.waiter("a"), rig.waiter("b"), rig.waiter("c")
	d := rig.waiter("d") // never in the schedule at all
	rig.wins["a"] <- good

	pf := NewPortfolio(a, b, c, d).
		WithScheduler(fixedScheduler{sched: Schedule{Order: []int{0, 1, 2}, Stagger: time.Second}, ok: true}).
		withClock(clock)

	res, err := Run(context.Background(), pf, set, Spec{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFound || res.Winner != "a" {
		t.Fatalf("status %v winner %q, want found by a", res.Status, res.Winner)
	}
	rig.expectLaunch(t, "a", 0)
	select {
	case ev := <-rig.launches:
		t.Fatalf("fallback %s launched despite the first pick winning", ev.name)
	default:
	}
	for _, idx := range []int{1, 2, 3} {
		if res.Race[idx].Status != StatusSkipped {
			t.Fatalf("race[%d] = %+v, want skipped", idx, res.Race[idx])
		}
	}
	want := SchedStats{FirstPickWin: true, SavedLaunches: 3}
	if *res.Sched != want {
		t.Fatalf("sched = %+v, want %+v", *res.Sched, want)
	}
}

// fakeDeadlineCtx reports a deadline in fake time without ever firing:
// the scheduler reads Deadline() to compute launch pressure, and the
// test controls everything else.
type fakeDeadlineCtx struct {
	context.Context
	dl time.Time
}

func (c fakeDeadlineCtx) Deadline() (time.Time, bool) { return c.dl, true }

// TestStaggeredDeadlinePressure gives the race a budget T with a
// stagger so long the fallbacks would otherwise launch after the
// deadline. Pressure clamps every slot to T/2: both fallbacks launch
// together the moment half the budget is gone.
func TestStaggeredDeadlinePressure(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	clock := newFakeClock()
	rig := newScriptedRig(clock, 3)
	a, b, c := rig.waiter("a"), rig.waiter("b"), rig.waiter("c")

	const T = 8 * time.Second
	ctx := fakeDeadlineCtx{Context: context.Background(), dl: clock.Now().Add(T)}
	pf := NewPortfolio(a, b, c).
		WithScheduler(fixedScheduler{sched: Schedule{Order: []int{0, 1, 2}, Stagger: 10 * T}, ok: true}).
		withClock(clock)

	done := make(chan *Result, 1)
	go func() {
		res, err := Run(ctx, pf, set, Spec{MaxLen: 4})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()

	rig.expectLaunch(t, "a", 0)
	clock.Advance(T / 2)
	// Both fallbacks' slots clamp to T/2; their launch burst order within
	// the instant is scheduler-internal, so collect as a set.
	got := map[string]time.Duration{}
	for i := 0; i < 2; i++ {
		select {
		case ev := <-rig.launches:
			got[ev.name] = ev.at
		case <-time.After(5 * time.Second):
			t.Fatalf("fallback %d never launched under deadline pressure", i+1)
		}
	}
	for _, name := range []string{"b", "c"} {
		if at, ok := got[name]; !ok || at != T/2 {
			t.Fatalf("launches = %v, want b and c at %v", got, T/2)
		}
	}
	rig.wins["c"] <- good
	res := <-done
	if res == nil || res.Status != StatusFound || res.Winner != "c" {
		t.Fatalf("result %+v, want found by c", res)
	}
	if res.Sched.FallbackStarts != 2 || !res.Sched.FallbackWin {
		t.Fatalf("sched = %+v, want 2 fallback starts and a fallback win", *res.Sched)
	}
}

// TestStaggeredDeadFieldLaunchesImmediately: when every launched member
// has already failed, the next fallback launches at once — there is
// nothing left to stagger behind, so waiting out the slot would be pure
// dead air. The clock never advances; the fallback must still launch.
func TestStaggeredDeadFieldLaunchesImmediately(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	clock := newFakeClock()
	rig := newScriptedRig(clock, 2)
	a := rig.failer("a", StatusExhausted)
	b := rig.waiter("b")

	pf := NewPortfolio(a, b).
		WithScheduler(fixedScheduler{sched: Schedule{Order: []int{0, 1}, Stagger: time.Hour}, ok: true}).
		withClock(clock)

	done := make(chan *Result, 1)
	go func() {
		res, err := Run(context.Background(), pf, set, Spec{MaxLen: 4})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()

	rig.expectLaunch(t, "a", 0)
	rig.expectLaunch(t, "b", 0) // dead field: no clock advance needed
	rig.wins["b"] <- good
	res := <-done
	if res == nil || res.Status != StatusFound || res.Winner != "b" {
		t.Fatalf("result %+v, want found by b", res)
	}
	if res.Race[0].Status != StatusExhausted {
		t.Fatalf("race[0] = %+v, want exhausted", res.Race[0])
	}
	if res.Sched.FallbackStarts != 1 || !res.Sched.FallbackWin || res.Sched.SavedLaunches != 0 {
		t.Fatalf("sched = %+v", *res.Sched)
	}
}

// TestStaggeredCancelSkipsPendingAndDoesNotLeak cancels the caller's
// context while fallbacks are still parked: the launched member reads
// cancelled, the parked ones read skipped, and — the
// TestPortfolioAllTimeoutNoGoroutineLeak mirror — every racer goroutine
// is reaped before Synthesize returns.
func TestStaggeredCancelSkipsPendingAndDoesNotLeak(t *testing.T) {
	set := isa.NewCmov(2, 1)
	clock := newFakeClock()
	rig := newScriptedRig(clock, 3)
	a, b, c := rig.waiter("a"), rig.waiter("b"), rig.waiter("c")

	pf := NewPortfolio(a, b, c).
		WithScheduler(fixedScheduler{sched: Schedule{Order: []int{0, 1, 2}, Stagger: time.Hour}, ok: true}).
		withClock(clock)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Result, 1)
	go func() {
		res, err := Run(ctx, pf, set, Spec{MaxLen: 4})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	rig.expectLaunch(t, "a", 0)
	cancel()
	res := <-done
	if res == nil {
		t.Fatal("no result")
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if res.Race[0].Status != StatusCancelled {
		t.Fatalf("race[0] = %+v, want cancelled", res.Race[0])
	}
	for _, idx := range []int{1, 2} {
		if res.Race[idx].Status != StatusSkipped {
			t.Fatalf("race[%d] = %+v, want skipped", idx, res.Race[idx])
		}
	}
	if res.Sched.SavedLaunches != 2 {
		t.Fatalf("sched = %+v, want 2 saved launches", *res.Sched)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before race, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStaggeredInvalidPlanDegradesToRace: schedules naming duplicate or
// out-of-range members must not panic or double-launch — the portfolio
// falls back to racing everything, immediately.
func TestStaggeredInvalidPlanDegradesToRace(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	for _, tc := range []struct {
		name  string
		order []int
	}{
		{"duplicate", []int{0, 0}},
		{"out-of-range", []int{0, 5}},
		{"negative", []int{-1, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			rig := newScriptedRig(clock, 2)
			a, b := rig.waiter("a"), rig.waiter("b")
			rig.wins["a"] <- good
			pf := NewPortfolio(a, b).
				WithScheduler(fixedScheduler{sched: Schedule{Order: tc.order, Stagger: time.Hour}, ok: true}).
				withClock(clock)
			res, err := Run(context.Background(), pf, set, Spec{MaxLen: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != StatusFound || res.Winner != "a" {
				t.Fatalf("result %+v, want found by a", res)
			}
			// Plain race: both members launched despite the frozen clock.
			seen := map[string]bool{}
			for i := 0; i < 2; i++ {
				select {
				case ev := <-rig.launches:
					seen[ev.name] = true
				case <-time.After(5 * time.Second):
					t.Fatal("degraded race did not launch every member")
				}
			}
			if !seen["a"] || !seen["b"] {
				t.Fatalf("launches = %v, want both members", seen)
			}
			if res.Sched != nil {
				t.Fatalf("degraded race reports SchedStats %+v, want none", *res.Sched)
			}
		})
	}
}

// TestPortfolioSeedPinning is the seed-normalization regression test:
// each member's seed is a pure function of (spec.Seed, member name), so
// a staggered run and a racing run of the same spec hand every member
// the identical seed — and therefore return identical winners — no
// matter the dispatch order or timing.
func TestPortfolioSeedPinning(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	const base = 42

	runMode := func(t *testing.T, staggered bool) (map[string]int64, string) {
		var mu sync.Mutex
		seeds := map[string]int64{}
		record := func(name string, spec Spec) {
			mu.Lock()
			defer mu.Unlock()
			seeds[name] = spec.Seed
		}
		// b fails instantly (recording its seed); a then wins. Under
		// staggered dispatch b is ranked first, so the dead-field rule
		// launches a with no clock advance; the plain race launches both
		// at once. Either way both members observe their seeds.
		a := &fakeBackend{name: "det", fn: func(ctx context.Context, _ *isa.Set, spec Spec) (*Result, error) {
			record("det", spec)
			return &Result{Backend: "det", Status: StatusFound, Program: good, Length: len(good)}, nil
		}}
		b := &fakeBackend{name: "rand", fn: func(ctx context.Context, _ *isa.Set, spec Spec) (*Result, error) {
			record("rand", spec)
			return &Result{Backend: "rand", Status: StatusExhausted}, nil
		}}
		pf := NewPortfolio(a, b)
		if staggered {
			pf = pf.WithScheduler(fixedScheduler{
				sched: Schedule{Order: []int{1, 0}, Stagger: time.Hour}, ok: true,
			}).withClock(newFakeClock())
		}
		res, err := Run(context.Background(), pf, set, Spec{MaxLen: 4, Seed: base})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusFound {
			t.Fatalf("status %v, want found", res.Status)
		}
		return seeds, res.Winner
	}

	raceSeeds, raceWinner := runMode(t, false)
	stagSeeds, stagWinner := runMode(t, true)

	if raceWinner != stagWinner {
		t.Fatalf("winner diverged: race %q vs staggered %q", raceWinner, stagWinner)
	}
	for _, name := range []string{"det", "rand"} {
		want := memberSeed(base, name)
		if raceSeeds[name] != want || stagSeeds[name] != want {
			t.Fatalf("seed for %s: race %d staggered %d, want pinned %d",
				name, raceSeeds[name], stagSeeds[name], want)
		}
	}
	if raceSeeds["det"] == raceSeeds["rand"] {
		t.Fatal("members share one seed stream; per-member derivation lost")
	}
}
