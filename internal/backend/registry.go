package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sortsynth/internal/cp"
	"sortsynth/internal/enum"
	"sortsynth/internal/ilp"
	"sortsynth/internal/isa"
	"sortsynth/internal/mcts"
	"sortsynth/internal/plan"
	"sortsynth/internal/smt"
	"sortsynth/internal/stoke"
)

// Registry maps backend names to Backend instances. The zero value is
// not usable; call NewRegistry. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	backends map[string]Backend
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{backends: make(map[string]Backend)}
}

// Register adds b under b.Name(). Registering a name twice is a
// programming error and panics.
func (r *Registry) Register(b Backend) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := b.Name()
	if _, dup := r.backends[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	r.backends[name] = b
}

// Get resolves a backend by name, returning *UnknownBackendError when
// absent.
func (r *Registry) Get(name string) (Backend, error) {
	r.mu.RLock()
	b, ok := r.backends[name]
	r.mu.RUnlock()
	if !ok {
		return nil, &UnknownBackendError{Name: name, Known: r.Names()}
	}
	return b, nil
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.backends[name]
	return ok
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.backends))
	for n := range r.backends {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Replace swaps the backend registered under b.Name() for b. Replacing
// a name that was never registered is a programming error and panics —
// Replace reconfigures an existing slot (the serving layer swapping the
// plain portfolio for a tuned one), it never sneaks in a new backend.
func (r *Registry) Replace(b Backend) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := b.Name()
	if _, ok := r.backends[name]; !ok {
		panic(fmt.Sprintf("backend: Replace of unregistered %q", name))
	}
	r.backends[name] = b
}

// Synthesize resolves name and runs it through Run, so every result a
// registry hands out has passed central verification.
func (r *Registry) Synthesize(ctx context.Context, name string, set *isa.Set, spec Spec) (*Result, error) {
	b, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return Run(ctx, b, set, spec)
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the shared registry with all seven synthesizers in
// their paper-best configurations, plus a "portfolio" backend racing
// the three engines that cover the practical spectrum (enum for
// optimality, smt for fixed-length completeness, stoke for stochastic
// luck). The instances are stateless per call, so sharing is safe.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewDefault()
	})
	return defaultReg
}

// NewDefault builds a fresh registry with the same lineup as Default.
// Callers that reconfigure a slot (Replace) must use this, never
// Default: the shared registry is process-global and mutating it would
// change every other caller's dispatch behind their back.
func NewDefault() *Registry {
	r := NewRegistry()
	r.Register(NewEnum(enum.ConfigBest()))
	r.Register(NewSMT(smt.Options{
		Goal:        smt.GoalAscCounts0,
		Encoding:    smt.EncodingDense,
		Incremental: true,
	}, true))
	r.Register(NewCP(cp.Options{
		Goal:             cp.GoalAscCounts0,
		NoConsecutiveCmp: true,
		CmpSymmetry:      true,
		NoSelfOps:        true,
	}))
	r.Register(NewILP(ilp.Options{MaxNodes: 5_000_000}))
	r.Register(NewStoke(stoke.Options{}))
	r.Register(NewMCTS(mcts.Options{}))
	// Plan-Parallel GBFS + h_add (the LAMA-analogue row): the
	// serialized Plan-Seq heuristic stalls beyond n=2 here.
	r.Register(NewPlan(plan.Options{
		Algorithm: plan.GBFS,
		Heuristic: plan.HAdd,
		MaxNodes:  2_000_000,
	}))
	enumB, _ := r.Get("enum")
	smtB, _ := r.Get("smt")
	stokeB, _ := r.Get("stoke")
	r.Register(NewPortfolio(enumB, smtB, stokeB))
	return r
}
