package backend

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/stoke"
	"sortsynth/internal/verify"
)

// fakeBackend scripts a Backend for harness tests.
type fakeBackend struct {
	name string
	fn   func(ctx context.Context, set *isa.Set, spec Spec) (*Result, error)
}

func (b *fakeBackend) Name() string { return b.name }
func (b *fakeBackend) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	return b.fn(ctx, set, spec)
}

// correctKernel synthesizes the optimal n=2 kernel (milliseconds) so
// fakes have a genuinely correct program to claim.
func correctKernel(t *testing.T, set *isa.Set) isa.Program {
	t.Helper()
	opt := enum.ConfigBest()
	opt.MaxLen = 4
	r := enum.Run(set, opt)
	if r.Err != nil || r.Program == nil {
		t.Fatalf("setup synthesis failed: %v (len %d)", r.Err, r.Length)
	}
	return r.Program
}

func TestRunFlagsIncorrectProgram(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	// The optimal kernel minus its last instruction cannot sort (length
	// 4 is minimal), making it a deliberately-wrong StatusFound claim.
	wrong := good[:len(good)-1]
	if verify.Counterexample(set, wrong) == nil {
		t.Fatal("truncated kernel unexpectedly sorts; broken test setup")
	}
	liar := &fakeBackend{name: "liar", fn: func(context.Context, *isa.Set, Spec) (*Result, error) {
		return &Result{Backend: "liar", Status: StatusFound, Program: wrong, Length: len(wrong)}, nil
	}}
	res, err := Run(context.Background(), liar, set, Spec{MaxLen: 4})
	if err == nil {
		t.Fatalf("Run accepted an incorrect program: %+v", res)
	}
	var inc *IncorrectError
	if !errors.As(err, &inc) {
		t.Fatalf("want *IncorrectError, got %T: %v", err, err)
	}
	if inc.Backend != "liar" || inc.Input == nil {
		t.Fatalf("bad IncorrectError: %+v", inc)
	}
}

func TestRegistryUnknownNameTypedError(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&fakeBackend{name: "only"})
	_, err := reg.Get("nosuch")
	var unknown *UnknownBackendError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownBackendError, got %T: %v", err, err)
	}
	if unknown.Name != "nosuch" || len(unknown.Known) != 1 || unknown.Known[0] != "only" {
		t.Fatalf("bad UnknownBackendError: %+v", unknown)
	}
	// Synthesize must surface the same typed error.
	if _, err := reg.Synthesize(context.Background(), "nosuch", isa.NewCmov(2, 1), Spec{}); !errors.As(err, &unknown) {
		t.Fatalf("Synthesize: want *UnknownBackendError, got %T: %v", err, err)
	}
}

func TestDefaultRegistryHasAllSevenBackends(t *testing.T) {
	want := []string{"cp", "enum", "ilp", "mcts", "plan", "portfolio", "smt", "stoke"}
	got := Default().Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestPortfolioCancelsLosers(t *testing.T) {
	set := isa.NewCmov(2, 1)
	good := correctKernel(t, set)
	winner := &fakeBackend{name: "win", fn: func(ctx context.Context, _ *isa.Set, _ Spec) (*Result, error) {
		return &Result{Backend: "win", Status: StatusFound, Program: good, Length: len(good)}, nil
	}}
	observed := make(chan time.Duration, 1)
	loser := &fakeBackend{name: "lose", fn: func(ctx context.Context, _ *isa.Set, _ Spec) (*Result, error) {
		start := time.Now()
		select {
		case <-ctx.Done():
			observed <- time.Since(start)
			return &Result{Backend: "lose", Status: stopStatus(ctx)}, nil
		case <-time.After(5 * time.Second):
			return &Result{Backend: "lose", Status: StatusExhausted}, nil
		}
	}}
	res, err := Run(context.Background(), NewPortfolio(winner, loser), set, Spec{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFound || res.Winner != "win" {
		t.Fatalf("want win by %q, got status %v winner %q", "win", res.Status, res.Winner)
	}
	select {
	case wait := <-observed:
		if wait > time.Second {
			t.Fatalf("loser saw cancellation only after %v", wait)
		}
	default:
		t.Fatal("loser never observed cancellation")
	}
	if len(res.Race) != 2 || res.Race[1].Status != StatusCancelled {
		t.Fatalf("race table %+v, want loser cancelled", res.Race)
	}
}

func TestPortfolioAllTimeoutNoGoroutineLeak(t *testing.T) {
	set := isa.NewCmov(2, 1)
	block := func(name string) *fakeBackend {
		return &fakeBackend{name: name, fn: func(ctx context.Context, _ *isa.Set, _ Spec) (*Result, error) {
			<-ctx.Done()
			return &Result{Backend: name, Status: stopStatus(ctx)}, nil
		}}
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, NewPortfolio(block("a"), block("b"), block("c")), set, Spec{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTimedOut {
		t.Fatalf("status %v, want %v", res.Status, StatusTimedOut)
	}
	for _, e := range res.Race {
		if e.Status != StatusTimedOut {
			t.Fatalf("race entry %+v, want timed-out", e)
		}
	}
	// Synthesize waits for every racer before returning, so the
	// goroutine count settles back immediately; poll briefly to absorb
	// unrelated runtime churn.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before race, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPortfolioAggregateRefutationWins(t *testing.T) {
	set := isa.NewCmov(2, 1)
	refuter := &fakeBackend{name: "refute", fn: func(context.Context, *isa.Set, Spec) (*Result, error) {
		return &Result{Backend: "refute", Status: StatusNoProgram}, nil
	}}
	spent := &fakeBackend{name: "spent", fn: func(context.Context, *isa.Set, Spec) (*Result, error) {
		return &Result{Backend: "spent", Status: StatusExhausted}, nil
	}}
	res, err := Run(context.Background(), NewPortfolio(refuter, spent), set, Spec{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNoProgram {
		t.Fatalf("aggregate status %v, want %v (a sound refutation beats a spent budget)",
			res.Status, StatusNoProgram)
	}
}

// TestPortfolioSmoke races two real engines (enum vs stoke) at n=3 —
// the `make check` smoke test, run under -race there.
func TestPortfolioSmoke(t *testing.T) {
	set := isa.NewCmov(3, 1)
	pf := NewPortfolio(NewEnum(enum.ConfigBest()), NewStoke(stoke.Options{}))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := Run(ctx, pf, set, Spec{MaxLen: 11, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFound {
		t.Fatalf("race found nothing: %v (race %+v)", res.Status, res.Race)
	}
	if res.Winner == "" || len(res.Program) == 0 || res.Length != len(res.Program) {
		t.Fatalf("malformed winning result: %+v", res)
	}
	if ce := verify.Counterexample(set, res.Program); ce != nil {
		t.Fatalf("winner fails on %v", ce)
	}
}

// TestEnumDupSlackBudgetOptimal is the regression pin for the
// weak-order probe-down: ConfigBest's inadmissible permutation-count
// heuristic used to return a length-12 kernel for cmov n=3
// duplicate-safe specs whenever the budget had slack (MaxLen 12 or 13),
// one instruction over the certified optimum of 11. The adapter now
// probes below every first find on duplicate-safe specs until a
// tighter budget refutes.
func TestEnumDupSlackBudgetOptimal(t *testing.T) {
	b, err := Default().Get("enum")
	if err != nil {
		t.Fatal(err)
	}
	set := isa.NewCmov(3, 1)
	for _, budget := range []int{11, 12, 13} {
		res, err := Run(context.Background(), b, set, Spec{MaxLen: budget, DuplicateSafe: true})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res.Status != StatusFound || res.Length != 11 {
			t.Fatalf("budget %d: %s length %d, want found length 11", budget, res.Status, res.Length)
		}
	}
}
