package backend

import (
	"context"
	"testing"
	"time"

	"sortsynth/internal/isa"
)

// statusBackend is a fakeBackend returning a fixed no-winner status.
func statusBackend(name string, st Status) *fakeBackend {
	return &fakeBackend{name: name, fn: func(context.Context, *isa.Set, Spec) (*Result, error) {
		return &Result{Backend: name, Status: st}, nil
	}}
}

// TestPortfolioNoWinnerAggregation pins the documented status-preference
// order for races without a verified winner: no-program > exhausted >
// timed-out > cancelled, independent of racer order and of how the
// caller's context ended.
func TestPortfolioNoWinnerAggregation(t *testing.T) {
	set := isa.NewCmov(2, 1)
	cases := []struct {
		name     string
		statuses []Status
		ctx      func() (context.Context, context.CancelFunc)
		want     Status
	}{
		{
			name:     "all timeout",
			statuses: []Status{StatusTimedOut, StatusTimedOut, StatusTimedOut},
			want:     StatusTimedOut,
		},
		{
			name:     "all refute",
			statuses: []Status{StatusNoProgram, StatusNoProgram},
			want:     StatusNoProgram,
		},
		{
			name:     "refutation beats exhausted and timeout",
			statuses: []Status{StatusTimedOut, StatusExhausted, StatusNoProgram},
			want:     StatusNoProgram,
		},
		{
			name:     "exhausted beats timeout",
			statuses: []Status{StatusTimedOut, StatusExhausted},
			want:     StatusExhausted,
		},
		{
			name:     "timeout beats cancellation",
			statuses: []Status{StatusCancelled, StatusTimedOut},
			want:     StatusTimedOut,
		},
		{
			name:     "all cancelled without context stop",
			statuses: []Status{StatusCancelled, StatusCancelled},
			want:     StatusCancelled,
		},
		{
			// A racer's definitive verdict survives the caller's deadline
			// expiring while results were being collected.
			name:     "exhausted beats expired caller deadline",
			statuses: []Status{StatusExhausted, StatusTimedOut},
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			},
			want: StatusExhausted,
		},
		{
			name:     "expired caller deadline reads as timeout",
			statuses: []Status{StatusCancelled, StatusCancelled},
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			},
			want: StatusTimedOut,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bs := make([]Backend, len(tc.statuses))
			for i, st := range tc.statuses {
				bs[i] = statusBackend(string(rune('a'+i)), st)
			}
			ctx := context.Background()
			if tc.ctx != nil {
				c, cancel := tc.ctx()
				defer cancel()
				ctx = c
			}
			res, err := Run(ctx, NewPortfolio(bs...), set, Spec{MaxLen: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != tc.want {
				t.Fatalf("aggregate status = %v, want %v (race %+v)", res.Status, tc.want, res.Race)
			}
			if res.Program != nil || res.Winner != "" {
				t.Fatalf("no-winner race produced a program/winner: %+v", res)
			}
			if len(res.Race) != len(tc.statuses) {
				t.Fatalf("race table has %d entries, want %d", len(res.Race), len(tc.statuses))
			}
		})
	}
}
