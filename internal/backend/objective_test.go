package backend

import (
	"context"
	"errors"
	"testing"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// TestObjectiveThroughRun drives a fastest-objective spec through the
// registry choke point: the winner must come back verified (backend.Run
// re-checks it), optimal-length, and with the enumeration stats the
// serving layers bake.
func TestObjectiveThroughRun(t *testing.T) {
	set := isa.NewCmov(3, 1)
	res, err := Default().Synthesize(context.Background(), "enum", set, Spec{
		MaxLen:    11,
		Objective: enum.ObjectiveFastest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFound || res.Length != 11 {
		t.Fatalf("status %v length %d, want found/11", res.Status, res.Length)
	}
	if res.Solutions < 2 || res.Cost <= 0 {
		t.Errorf("Solutions %d Cost %v: objective run should report enumeration stats", res.Solutions, res.Cost)
	}

	short, err := Default().Synthesize(context.Background(), "enum", set, Spec{MaxLen: 11})
	if err != nil {
		t.Fatal(err)
	}
	if short.Program.Format(set.N) == res.Program.Format(set.N) {
		t.Error("shortest and fastest should diverge at n=3 (Neri)")
	}
}

// TestSingleSolutionBackendsRejectObjectives pins the typed validation
// error on every backend without a solution set to rank.
func TestSingleSolutionBackendsRejectObjectives(t *testing.T) {
	set := isa.NewCmov(2, 1)
	for _, name := range []string{"smt", "cp", "ilp", "stoke", "mcts", "plan", "portfolio"} {
		_, err := Default().Synthesize(context.Background(), name, set, Spec{
			MaxLen:    4,
			Objective: enum.ObjectiveFastest,
		})
		var objErr *UnsupportedObjectiveError
		if !errors.As(err, &objErr) {
			t.Errorf("%s: err = %v, want *UnsupportedObjectiveError", name, err)
			continue
		}
		if objErr.Backend != name || objErr.Objective != enum.ObjectiveFastest {
			t.Errorf("%s: error fields %+v", name, objErr)
		}
	}
}
