package backend

import (
	"context"
	"sync"
	"time"

	"sortsynth/internal/isa"
)

// Portfolio races several backends concurrently under one context and
// returns the first centrally verified kernel, cancelling the losers.
//
// Cancellation protocol: every racer runs under a child context that is
// cancelled the moment a verified winner arrives (or the caller's
// context ends). Synthesize then waits for every racer goroutine to
// observe the cancellation and return before it itself returns, so a
// finished portfolio never leaks goroutines or background CPU work.
type Portfolio struct {
	backends []Backend
}

// NewPortfolio builds a portfolio over the given backends (at least
// one; racing fewer than two is permitted but pointless).
func NewPortfolio(bs ...Backend) *Portfolio {
	if len(bs) == 0 {
		panic("backend: NewPortfolio needs at least one backend")
	}
	return &Portfolio{backends: bs}
}

// Name implements Backend.
func (p *Portfolio) Name() string { return "portfolio" }

// Backends returns the racers' names in race order.
func (p *Portfolio) Backends() []string {
	names := make([]string, len(p.backends))
	for i, b := range p.backends {
		names[i] = b.Name()
	}
	return names
}

// Synthesize implements Backend: it races all member backends, each
// through Run (so every candidate winner is verified before it can stop
// the race), and reports the per-backend outcomes in Result.Race.
//
// With no winner, the aggregate status is the strongest verdict any
// racer reached: a sound refutation (StatusNoProgram) beats a spent
// budget (StatusExhausted), which beats a timeout, which beats
// cancellation (see aggregateStatus). If every racer failed with an
// error, the first error is returned.
func (p *Portfolio) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	// The race is heterogeneous: most members are single-solution
	// engines, so a non-shortest objective would degenerate into "race
	// enum against a field of guaranteed errors". Reject it up front.
	if err := requireShortest(p.Name(), spec); err != nil {
		return nil, err
	}
	start := time.Now()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		res *Result
		err error
	}
	results := make(chan outcome, len(p.backends))
	var wg sync.WaitGroup
	for i, b := range p.backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			res, err := Run(raceCtx, b, set, spec)
			results <- outcome{idx: i, res: res, err: err}
		}(i, b)
	}

	race := make([]RaceEntry, len(p.backends))
	var winner *Result
	var firstErr error
	errCount := 0
	for pending := len(p.backends); pending > 0; pending-- {
		o := <-results
		name := p.backends[o.idx].Name()
		switch {
		case o.err != nil:
			race[o.idx] = RaceEntry{Backend: name, Status: StatusError, Err: o.err.Error()}
			errCount++
			if firstErr == nil {
				firstErr = o.err
			}
		default:
			race[o.idx] = RaceEntry{Backend: name, Status: o.res.Status, Stats: o.res.Stats}
			if o.res.Status == StatusFound && winner == nil {
				winner = o.res
				cancel() // stop the losers; keep draining their outcomes
			}
		}
	}
	wg.Wait()

	// The portfolio's own Stats aggregate the racers' work: total nodes
	// across every engine that ran, under the race's wall clock.
	stats := Stats{Elapsed: time.Since(start)}
	for _, e := range race {
		stats.Nodes += e.Stats.Nodes
		stats.Generated += e.Stats.Generated
	}
	res := &Result{
		Backend: p.Name(),
		Length:  spec.MaxLen,
		Race:    race,
		Stats:   stats,
	}
	if winner != nil {
		res.Status = StatusFound
		res.Program = winner.Program
		res.Length = winner.Length
		res.Optimal = winner.Optimal
		res.Winner = winner.Backend
		return res, nil
	}
	if errCount == len(p.backends) {
		return nil, firstErr
	}
	res.Status = aggregateStatus(ctx, race)
	return res, nil
}

// aggregateStatus picks the no-winner verdict in the documented
// preference order: a sound refutation (StatusNoProgram) beats a spent
// budget (StatusExhausted), which beats a timeout — whether a racer's
// own deadline or the caller's — which beats cancellation. In
// particular, a racer's definitive verdict is never downgraded just
// because the race's context ended afterwards, and a race in which
// every backend timed out reports StatusTimedOut even when the caller's
// context carried no deadline of its own.
func aggregateStatus(ctx context.Context, race []RaceEntry) Status {
	hasExhausted, hasTimedOut := false, false
	for _, e := range race {
		switch e.Status {
		case StatusNoProgram:
			return StatusNoProgram
		case StatusExhausted:
			hasExhausted = true
		case StatusTimedOut:
			hasTimedOut = true
		}
	}
	if hasExhausted {
		return StatusExhausted
	}
	if hasTimedOut {
		return StatusTimedOut
	}
	if ctx.Err() != nil {
		return stopStatus(ctx)
	}
	return StatusCancelled
}
