package backend

import (
	"context"
	"hash/fnv"
	"sync"
	"time"

	"sortsynth/internal/isa"
)

// Portfolio races several backends concurrently under one context and
// returns the first centrally verified kernel, cancelling the losers.
//
// Two dispatch modes share those semantics:
//
//   - Plain race (the default): every member launches immediately. N
//     engines burn CPU and N−1 results are thrown away — robust, but
//     wasteful under load.
//   - Staggered (WithScheduler): a Scheduler ranks the members per spec
//     and the predicted-best one launches alone; each fallback launches
//     only when its stagger slot elapses, when deadline pressure makes
//     waiting unaffordable, or when every running member has already
//     failed. A verified winner cancels the running losers and the
//     not-yet-launched fallbacks never start at all (their race entries
//     read skipped, counted as SchedStats.SavedLaunches).
//
// Cancellation protocol: every racer runs under a child context that is
// cancelled the moment a verified winner arrives (or the caller's
// context ends). Synthesize then waits for every racer goroutine to
// observe the cancellation and return before it itself returns, so a
// finished portfolio never leaks goroutines or background CPU work.
type Portfolio struct {
	backends  []Backend
	scheduler Scheduler // nil = plain race-everything dispatch
	clock     Clock     // nil = real time; swapped by scheduler tests
}

// NewPortfolio builds a portfolio over the given backends (at least
// one; racing fewer than two is permitted but pointless).
func NewPortfolio(bs ...Backend) *Portfolio {
	if len(bs) == 0 {
		panic("backend: NewPortfolio needs at least one backend")
	}
	return &Portfolio{backends: bs}
}

// WithScheduler returns a copy of p that dispatches through s. A nil s
// returns a copy that races everything — the degrade path for a
// missing or corrupt tuned table.
func (p *Portfolio) WithScheduler(s Scheduler) *Portfolio {
	cp := *p
	cp.scheduler = s
	return &cp
}

// withClock returns a copy of p on the given clock (tests only).
func (p *Portfolio) withClock(c Clock) *Portfolio {
	cp := *p
	cp.clock = c
	return &cp
}

func (p *Portfolio) clockOrReal() Clock {
	if p.clock != nil {
		return p.clock
	}
	return realClock{}
}

// Name implements Backend.
func (p *Portfolio) Name() string { return "portfolio" }

// Backends returns the racers' names in race order.
func (p *Portfolio) Backends() []string {
	names := make([]string, len(p.backends))
	for i, b := range p.backends {
		names[i] = b.Name()
	}
	return names
}

// memberSeed derives the seed member name receives from the spec's base
// seed: a pure function of (base, name), independent of dispatch mode,
// launch order, and race timing. Before this pinning, every member got
// the base seed verbatim, so two randomized members shared one seed
// stream and a schedule that reordered members changed nothing — but
// the moment per-race derivation appears anywhere it must be keyed by
// member identity, not race position, or `seed=K` staggered and racing
// runs diverge. The regression test holds this invariant.
func memberSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ int64(h.Sum64()&0x7fffffffffffffff)
}

// memberSpec is the spec member i races with: identical to the caller's
// spec except for the pinned per-member seed. Deterministic members
// ignore Seed entirely, so the derivation only ever matters where it
// should — the randomized members.
func (p *Portfolio) memberSpec(spec Spec, i int) Spec {
	spec.Seed = memberSeed(spec.Seed, p.backends[i].Name())
	return spec
}

// outcome is one racer's report back to the dispatch loop.
type outcome struct {
	idx int
	res *Result
	err error
}

// Synthesize implements Backend: it dispatches the member backends —
// staggered when a Scheduler planned this spec, racing everything
// otherwise — each through Run (so every candidate winner is verified
// before it can stop the race), and reports the per-backend outcomes in
// Result.Race.
//
// With no winner, the aggregate status is the strongest verdict any
// racer reached: a sound refutation (StatusNoProgram) beats a spent
// budget (StatusExhausted), which beats a timeout, which beats
// cancellation (see aggregateStatus). If every launched racer failed
// with an error, the first error is returned.
func (p *Portfolio) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	// The race is heterogeneous: most members are single-solution
	// engines, so a non-shortest objective would degenerate into "race
	// enum against a field of guaranteed errors". Reject it up front.
	if err := requireShortest(p.Name(), spec); err != nil {
		return nil, err
	}
	if p.scheduler != nil {
		if sched, ok := p.scheduler.Plan(set, spec); ok && len(sched.Order) > 0 && p.validOrder(sched.Order) {
			return p.synthesizeStaggered(ctx, set, spec, sched)
		}
	}
	return p.synthesizeRace(ctx, set, spec)
}

// validOrder rejects schedules that name out-of-range or duplicate
// member indices — a malformed plan degrades to the plain race rather
// than panicking or double-launching a member.
func (p *Portfolio) validOrder(order []int) bool {
	seen := make([]bool, len(p.backends))
	for _, idx := range order {
		if idx < 0 || idx >= len(p.backends) || seen[idx] {
			return false
		}
		seen[idx] = true
	}
	return true
}

// synthesizeRace is the historical dispatch: every member launches at
// once and the first verified winner cancels the rest.
func (p *Portfolio) synthesizeRace(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	start := time.Now()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan outcome, len(p.backends))
	var wg sync.WaitGroup
	for i, b := range p.backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			res, err := Run(raceCtx, b, set, p.memberSpec(spec, i))
			results <- outcome{idx: i, res: res, err: err}
		}(i, b)
	}

	race := make([]RaceEntry, len(p.backends))
	var winner *Result
	var firstErr error
	errCount := 0
	for pending := len(p.backends); pending > 0; pending-- {
		o := <-results
		name := p.backends[o.idx].Name()
		switch {
		case o.err != nil:
			race[o.idx] = RaceEntry{Backend: name, Status: StatusError, Err: o.err.Error()}
			errCount++
			if firstErr == nil {
				firstErr = o.err
			}
		default:
			race[o.idx] = RaceEntry{Backend: name, Status: o.res.Status, Stats: o.res.Stats}
			if o.res.Status == StatusFound && winner == nil {
				winner = o.res
				cancel() // stop the losers; keep draining their outcomes
			}
		}
	}
	wg.Wait()

	if errCount == len(p.backends) {
		return nil, firstErr
	}
	return p.finish(ctx, spec, race, winner, time.Since(start), nil), nil
}

// synthesizeStaggered is the tuned dispatch: sched.Order[0] launches
// immediately, and each later member waits for its stagger slot. Three
// things accelerate a pending fallback:
//
//   - deadline pressure: with a caller deadline of budget T, no launch
//     slot is later than T/2 — waiting past that would leave a
//     fallback less time than the first pick already had;
//   - a dead field: when every launched member has finished without a
//     verified win, the next fallback launches immediately (there is
//     nothing left to wait for);
//   - nothing decelerates one: slots are fixed at plan time, so the
//     dispatch order is a pure function of (schedule, deadline) and the
//     fake-clock tests can replay it exactly.
//
// A verified winner cancels the launched losers and permanently parks
// the pending fallbacks: they never start, their race entries read
// StatusSkipped, and the count lands in SchedStats.SavedLaunches.
func (p *Portfolio) synthesizeStaggered(ctx context.Context, set *isa.Set, spec Spec, sched Schedule) (*Result, error) {
	clock := p.clockOrReal()
	start := clock.Now()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Launch slots, clamped by deadline pressure.
	slots := make([]time.Duration, len(sched.Order))
	var pressure time.Duration // 0 = no deadline
	if dl, ok := ctx.Deadline(); ok {
		pressure = dl.Sub(start) / 2
	}
	for i := range sched.Order {
		d := time.Duration(i) * sched.Stagger
		if pressure > 0 && d > pressure {
			d = pressure
		}
		slots[i] = d
	}

	results := make(chan outcome, len(sched.Order))
	var wg sync.WaitGroup
	sstats := &SchedStats{}
	running := 0
	launch := func(pos int) {
		idx := sched.Order[pos]
		if pos > 0 {
			sstats.FallbackStarts++
		}
		running++
		wg.Add(1)
		go func(idx int, b Backend) {
			defer wg.Done()
			res, err := Run(raceCtx, b, set, p.memberSpec(spec, idx))
			results <- outcome{idx: idx, res: res, err: err}
		}(idx, p.backends[idx])
	}

	race := make([]RaceEntry, len(p.backends))
	var winner *Result
	winnerIdx := -1
	var firstErr error
	errCount := 0
	next := 0 // next position in sched.Order to launch
	for {
		// Launch everything due. With nothing running, the next pending
		// fallback is due immediately: every launched member already
		// failed, so there is nothing left to stagger behind.
		for winner == nil && next < len(sched.Order) && raceCtx.Err() == nil {
			if running > 0 && clock.Now().Before(start.Add(slots[next])) {
				break
			}
			launch(next)
			next++
		}
		if running == 0 {
			break
		}
		var timerC <-chan time.Time
		var timer Timer
		if winner == nil && next < len(sched.Order) && raceCtx.Err() == nil {
			timer = clock.NewTimer(start.Add(slots[next]).Sub(clock.Now()))
			timerC = timer.C()
		}
		select {
		case o := <-results:
			running--
			name := p.backends[o.idx].Name()
			switch {
			case o.err != nil:
				race[o.idx] = RaceEntry{Backend: name, Status: StatusError, Err: o.err.Error()}
				errCount++
				if firstErr == nil {
					firstErr = o.err
				}
			default:
				race[o.idx] = RaceEntry{Backend: name, Status: o.res.Status, Stats: o.res.Stats}
				if o.res.Status == StatusFound && winner == nil {
					winner = o.res
					winnerIdx = o.idx
					cancel() // stop the losers; pending fallbacks never launch
				}
			}
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
	wg.Wait()

	// Members that never launched: the schedule's parked fallbacks plus
	// anything the schedule never listed.
	launched := 0
	for i := range race {
		if race[i].Backend == "" {
			race[i] = RaceEntry{Backend: p.backends[i].Name(), Status: StatusSkipped}
		} else {
			launched++
		}
	}
	sstats.SavedLaunches = len(p.backends) - launched
	if winner != nil {
		if winnerIdx == sched.Order[0] {
			sstats.FirstPickWin = true
		} else {
			sstats.FallbackWin = true
		}
	}

	if launched > 0 && errCount == launched {
		return nil, firstErr
	}
	return p.finish(ctx, spec, race, winner, clock.Now().Sub(start), sstats), nil
}

// finish assembles the portfolio Result shared by both dispatch modes.
func (p *Portfolio) finish(ctx context.Context, spec Spec, race []RaceEntry, winner *Result, elapsed time.Duration, sstats *SchedStats) *Result {
	// The portfolio's own Stats aggregate the racers' work: total nodes
	// across every engine that ran, under the race's wall clock.
	stats := Stats{Elapsed: elapsed}
	for _, e := range race {
		stats.Nodes += e.Stats.Nodes
		stats.Generated += e.Stats.Generated
	}
	res := &Result{
		Backend: p.Name(),
		Length:  spec.MaxLen,
		Race:    race,
		Stats:   stats,
		Sched:   sstats,
	}
	if winner != nil {
		res.Status = StatusFound
		res.Program = winner.Program
		res.Length = winner.Length
		res.Optimal = winner.Optimal
		res.Winner = winner.Backend
		return res
	}
	res.Status = aggregateStatus(ctx, race)
	return res
}

// aggregateStatus picks the no-winner verdict in the documented
// preference order: a sound refutation (StatusNoProgram) beats a spent
// budget (StatusExhausted), which beats a timeout — whether a racer's
// own deadline or the caller's — which beats cancellation. In
// particular, a racer's definitive verdict is never downgraded just
// because the race's context ended afterwards, and a race in which
// every backend timed out reports StatusTimedOut even when the caller's
// context carried no deadline of its own. Skipped members claim
// nothing: a staggered race's verdict rests on the members that ran.
func aggregateStatus(ctx context.Context, race []RaceEntry) Status {
	hasExhausted, hasTimedOut := false, false
	for _, e := range race {
		switch e.Status {
		case StatusNoProgram:
			return StatusNoProgram
		case StatusExhausted:
			hasExhausted = true
		case StatusTimedOut:
			hasTimedOut = true
		}
	}
	if hasExhausted {
		return StatusExhausted
	}
	if hasTimedOut {
		return StatusTimedOut
	}
	if ctx.Err() != nil {
		return stopStatus(ctx)
	}
	return StatusCancelled
}
