package backend

import (
	"context"
	"fmt"

	"sortsynth/internal/cp"
	"sortsynth/internal/enum"
	"sortsynth/internal/ilp"
	"sortsynth/internal/isa"
	"sortsynth/internal/mcts"
	"sortsynth/internal/plan"
	"sortsynth/internal/smt"
	"sortsynth/internal/stoke"
)

// fixedLen validates the length budget for the fixed-length backends.
func fixedLen(name string, spec Spec) (int, error) {
	if spec.MaxLen <= 0 {
		return 0, fmt.Errorf("backend %s: spec.MaxLen must be > 0 (fixed-length backend)", name)
	}
	return spec.MaxLen, nil
}

// optimalityPreserving reports whether an enum configuration guarantees
// the first solution found is minimal: an admissible, unweighted
// heuristic and no non-optimality-preserving pruning (§3.2 action
// guide, §3.5 cut).
func optimalityPreserving(o enum.Options) bool {
	admissible := o.Heuristic == enum.HeurNone || o.Heuristic == enum.HeurDistMax
	return admissible && o.Weight <= 1 && o.Cut == enum.CutNone && !o.UseActionGuide
}

// Enum adapts the §3 enumerative Dijkstra/A* engine.
type Enum struct{ Opt enum.Options }

// NewEnum wraps the enum engine with the given base options; Spec
// fields override MaxLen and DuplicateSafe per call.
func NewEnum(opt enum.Options) *Enum { return &Enum{Opt: opt} }

// Name implements Backend.
func (b *Enum) Name() string { return "enum" }

// Synthesize implements Backend. Stats: Nodes = expanded states,
// Generated = produced successors. Optimal is asserted only for
// optimality-preserving configurations (admissible unweighted
// heuristic, no §3.5 cut, no action guide), where the found length is
// certified minimal by the search order itself.
func (b *Enum) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	opt := b.Opt
	if spec.MaxLen > 0 {
		opt.MaxLen = spec.MaxLen
	}
	opt.DuplicateSafe = spec.DuplicateSafe
	opt.Objective = spec.Objective
	opt.Profile = spec.Profile
	r := enum.RunContext(ctx, set, opt)
	if r.Err != nil {
		return nil, r.Err
	}
	// The weak-order suite defeats first-found minimality: the
	// permutation-count heuristic is inadmissible there, and with a
	// slack budget (MaxLen > L*) the first goal popped can be one
	// instruction long (ConfigBest on cmov n=3 weakorders finds 12 at
	// MaxLen 12, 11 at MaxLen 11). The permutation suite does not
	// exhibit this at any published size — the conformance harness
	// holds that line — so only duplicate-safe runs pay the probe-down:
	// re-search below each find until a tighter budget comes up empty,
	// accumulating effort counters across probes.
	if r.Program != nil && spec.DuplicateSafe && !optimalityPreserving(opt) {
		for r.Length > 1 && ctx.Err() == nil {
			probe := opt
			probe.MaxLen = r.Length - 1
			pr := enum.RunContext(ctx, set, probe)
			pr.Expanded += r.Expanded
			pr.Generated += r.Generated
			pr.Elapsed += r.Elapsed
			if pr.Err != nil || pr.Program == nil {
				r.Expanded, r.Generated, r.Elapsed = pr.Expanded, pr.Generated, pr.Elapsed
				break
			}
			r = pr
		}
	}
	res := &Result{
		Backend: b.Name(),
		Length:  opt.MaxLen,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: r.Expanded, Generated: r.Generated},
	}
	switch {
	case r.Program != nil:
		res.Status = StatusFound
		res.Program = r.Program
		res.Length = r.Length
		res.Optimal = optimalityPreserving(opt)
		res.Solutions = r.SolutionCount
		res.Cost = r.Cost
	case r.Cancelled:
		res.Status = stopStatus(ctx)
	case r.TimedOut:
		res.Status = StatusTimedOut
	case r.Exhausted && r.Proof:
		res.Status = StatusNoProgram
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}

// SMT adapts the §4 SAT/SMT synthesizer (PERM or CEGIS protocol).
type SMT struct {
	Opt   smt.Options
	CEGIS bool
}

// NewSMT wraps the smt engine; cegis selects counterexample-guided
// refinement over the one-shot all-permutations query. Spec.MaxLen is
// the exact program length.
func NewSMT(opt smt.Options, cegis bool) *SMT { return &SMT{Opt: opt, CEGIS: cegis} }

// Name implements Backend.
func (b *SMT) Name() string { return "smt" }

// Synthesize implements Backend. Stats: Nodes = CDCL conflicts,
// Iterations = CEGIS refinement rounds.
func (b *SMT) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	if err := requireShortest(b.Name(), spec); err != nil {
		return nil, err
	}
	length, err := fixedLen(b.Name(), spec)
	if err != nil {
		return nil, err
	}
	opt := b.Opt
	opt.Length = length
	if spec.DuplicateSafe && b.CEGIS {
		opt.CEGISArbitrary = true
	}
	var r *smt.Result
	if b.CEGIS {
		r = smt.SynthCEGISContext(ctx, set, opt)
	} else {
		r = smt.SynthPermContext(ctx, set, opt)
	}
	res := &Result{
		Backend: b.Name(),
		Length:  length,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: r.Conflicts, Iterations: int64(r.Iterations)},
	}
	switch r.Status {
	case smt.Found:
		res.Status = StatusFound
		res.Program = r.Program
	case smt.NoProg:
		res.Status = StatusNoProgram
	case smt.Cancelled:
		res.Status = stopStatus(ctx)
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}

// CP adapts the finite-domain constraint solver (§4 CP model).
type CP struct{ Opt cp.Options }

// NewCP wraps the cp engine. Spec.MaxLen is the exact program length.
func NewCP(opt cp.Options) *CP { return &CP{Opt: opt} }

// Name implements Backend.
func (b *CP) Name() string { return "cp" }

// Synthesize implements Backend. Stats: Nodes = DFS nodes.
func (b *CP) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	if err := requireShortest(b.Name(), spec); err != nil {
		return nil, err
	}
	length, err := fixedLen(b.Name(), spec)
	if err != nil {
		return nil, err
	}
	opt := b.Opt
	opt.Length = length
	r := cp.SynthesizeContext(ctx, set, opt)
	res := &Result{
		Backend: b.Name(),
		Length:  length,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: r.Nodes},
	}
	switch {
	case r.Program != nil:
		res.Status = StatusFound
		res.Program = r.Program
	case r.Cancelled:
		res.Status = stopStatus(ctx)
	case r.Exhausted:
		res.Status = StatusNoProgram
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}

// ILP adapts the big-M branch-and-bound solver (§4.2 CP-ILP model).
type ILP struct{ Opt ilp.Options }

// NewILP wraps the ilp engine. Spec.MaxLen is the exact program length.
func NewILP(opt ilp.Options) *ILP { return &ILP{Opt: opt} }

// Name implements Backend.
func (b *ILP) Name() string { return "ilp" }

// Synthesize implements Backend. Stats: Nodes = branch-and-bound nodes.
func (b *ILP) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	if err := requireShortest(b.Name(), spec); err != nil {
		return nil, err
	}
	length, err := fixedLen(b.Name(), spec)
	if err != nil {
		return nil, err
	}
	opt := b.Opt
	opt.Length = length
	r := ilp.SynthesizeContext(ctx, set, opt)
	res := &Result{
		Backend: b.Name(),
		Length:  length,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: r.Nodes},
	}
	switch {
	case r.Program != nil:
		res.Status = StatusFound
		res.Program = r.Program
	case r.Cancelled:
		res.Status = stopStatus(ctx)
	case r.Exhausted:
		res.Status = StatusNoProgram
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}

// Stoke adapts the MCMC stochastic superoptimizer (§5.2 baseline).
type Stoke struct{ Opt stoke.Options }

// NewStoke wraps the stoke engine. Spec.MaxLen is the exact (fixed)
// chain program length and Spec.Seed seeds the chain.
func NewStoke(opt stoke.Options) *Stoke { return &Stoke{Opt: opt} }

// Name implements Backend.
func (b *Stoke) Name() string { return "stoke" }

// Synthesize implements Backend. Stats: Nodes = MCMC proposals. The
// chain cannot refute, so a spent budget is always StatusExhausted.
func (b *Stoke) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	if err := requireShortest(b.Name(), spec); err != nil {
		return nil, err
	}
	length, err := fixedLen(b.Name(), spec)
	if err != nil {
		return nil, err
	}
	opt := b.Opt
	opt.Length = length
	opt.Seed = spec.Seed
	r := stoke.RunContext(ctx, set, opt)
	res := &Result{
		Backend: b.Name(),
		Length:  length,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: r.Proposals},
	}
	switch {
	case r.Program != nil:
		res.Status = StatusFound
		res.Program = r.Program
	case r.Cancelled:
		res.Status = stopStatus(ctx)
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}

// MCTS adapts the UCT tree-search baseline (§5.2, AlphaDev skeleton).
type MCTS struct{ Opt mcts.Options }

// NewMCTS wraps the mcts engine. Spec.MaxLen is the episode length
// limit and Spec.Seed seeds rollouts.
func NewMCTS(opt mcts.Options) *MCTS { return &MCTS{Opt: opt} }

// Name implements Backend.
func (b *MCTS) Name() string { return "mcts" }

// Synthesize implements Backend. Stats: Nodes = tree nodes,
// Iterations = MCTS iterations. Like stoke, it cannot refute.
func (b *MCTS) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	if err := requireShortest(b.Name(), spec); err != nil {
		return nil, err
	}
	opt := b.Opt
	if spec.MaxLen > 0 {
		opt.MaxLen = spec.MaxLen
	}
	if opt.MaxLen <= 0 {
		return nil, fmt.Errorf("backend %s: spec.MaxLen must be > 0 (episode length limit)", b.Name())
	}
	opt.Seed = spec.Seed
	r := mcts.RunContext(ctx, set, opt)
	res := &Result{
		Backend: b.Name(),
		Length:  opt.MaxLen,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: int64(r.Nodes), Iterations: r.Iterations},
	}
	switch {
	case r.Program != nil:
		res.Status = StatusFound
		res.Program = r.Program
		res.Length = len(r.Program)
	case r.Cancelled:
		res.Status = stopStatus(ctx)
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}

// Plan adapts the STRIPS planner formulation (§5.2 Plan-Parallel /
// Plan-Seq).
type Plan struct{ Opt plan.Options }

// NewPlan wraps the planner. Spec.MaxLen bounds the accepted plan
// length (0 = unbounded).
func NewPlan(opt plan.Options) *Plan { return &Plan{Opt: opt} }

// Name implements Backend.
func (b *Plan) Name() string { return "plan" }

// Synthesize implements Backend. Stats: Nodes = expanded states,
// Generated = generated states. GBFS plans are not length-minimal, so a
// plan longer than Spec.MaxLen maps to StatusExhausted rather than a
// refutation.
func (b *Plan) Synthesize(ctx context.Context, set *isa.Set, spec Spec) (*Result, error) {
	if err := requireShortest(b.Name(), spec); err != nil {
		return nil, err
	}
	prob := plan.Encode(set, nil)
	r := plan.SolveContext(ctx, prob, b.Opt)
	res := &Result{
		Backend: b.Name(),
		Length:  spec.MaxLen,
		Stats:   Stats{Elapsed: r.Elapsed, Nodes: r.Expanded, Generated: r.Generated},
	}
	switch {
	case r.Plan != nil && (spec.MaxLen == 0 || len(r.Plan) <= spec.MaxLen):
		res.Status = StatusFound
		res.Program = plan.PlanToProgram(set, r.Plan)
		res.Length = len(r.Plan)
	case r.Plan != nil: // found, but over the length budget
		res.Status = StatusExhausted
	case r.Cancelled:
		res.Status = stopStatus(ctx)
	case r.Exhausted:
		res.Status = StatusNoProgram
	default:
		res.Status = StatusExhausted
	}
	return res, nil
}
