package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(Pos(a)) {
		t.Fatal("unit clause rejected")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want sat", st)
	}
	if !s.Value(a) {
		t.Error("model violates unit clause")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Pos(a))
	if s.AddClause(Neg(a)) {
		t.Fatal("contradicting unit accepted")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve = %v, want unsat", st)
	}
}

func TestImplicationChain(t *testing.T) {
	// a, a→b, b→c, c→d ⊢ d.
	s := New()
	v := make([]int, 4)
	for i := range v {
		v[i] = s.NewVar()
	}
	s.AddClause(Pos(v[0]))
	for i := 0; i < 3; i++ {
		s.AddClause(Neg(v[i]), Pos(v[i+1]))
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v", st)
	}
	for i := range v {
		if !s.Value(v[i]) {
			t.Errorf("v[%d] = false, want true", i)
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(Pos(a), Neg(a)) {
		t.Error("tautology rejected")
	}
	if !s.AddClause(Pos(a), Pos(a), Pos(b)) {
		t.Error("duplicate-literal clause rejected")
	}
	if s.Solve() != Sat {
		t.Error("satisfiable formula reported unsat")
	}
}

// pigeonhole encodes PHP(p, h): p pigeons into h holes.
func pigeonhole(p, h int) *Solver {
	s := New()
	vars := make([][]int, p)
	for i := range vars {
		vars[i] = make([]int, h)
		for j := range vars[i] {
			vars[i][j] = s.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = Pos(vars[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				s.AddClause(Neg(vars[i1][j]), Neg(vars[i2][j]))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for h := 2; h <= 6; h++ {
		s := pigeonhole(h+1, h)
		if st := s.Solve(); st != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want unsat", h+1, h, st)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := pigeonhole(5, 5)
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(5,5) = %v, want sat", st)
	}
}

// bruteForce checks satisfiability of clauses over nv variables
// exhaustively.
func bruteForce(nv int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nv; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>l.Var()&1 == 1
				if l.Sign() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 300; trial++ {
		nv := 4 + rng.Intn(9) // 4..12 variables
		nc := 2 + rng.Intn(5*nv)
		clauses := make([][]Lit, nc)
		for i := range clauses {
			c := make([]Lit, 3)
			for j := range c {
				v := rng.Intn(nv)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		var got bool
		if !ok {
			got = false
		} else {
			switch s.Solve() {
			case Sat:
				got = true
				// Validate the model.
				for _, c := range clauses {
					sat := false
					for _, l := range c {
						val := s.Value(l.Var())
						if l.Sign() {
							val = !val
						}
						if val {
							sat = true
							break
						}
					}
					if !sat {
						t.Fatalf("trial %d: model violates clause %v", trial, c)
					}
				}
			case Unsat:
				got = false
			default:
				t.Fatalf("trial %d: unexpected unknown", trial)
			}
		}
		want := bruteForce(nv, clauses)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v (nv=%d, %d clauses)", trial, got, want, nv, nc)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(9, 8)
	s.MaxConflicts = 10
	if st := s.Solve(); st != Unknown {
		// A tiny budget on a hard instance should usually be Unknown, but
		// a fast refutation is also acceptable — just not Sat.
		if st == Sat {
			t.Errorf("PHP(9,8) reported sat")
		}
	}
}

func TestIncrementalReuseAfterSat(t *testing.T) {
	// Re-solving after the first Sat with no changes must stay Sat.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	if s.Solve() != Sat {
		t.Fatal("first solve")
	}
	if s.Solve() != Sat {
		t.Fatal("re-solve")
	}
}

func TestLitHelpers(t *testing.T) {
	l := Pos(7)
	if l.Var() != 7 || l.Sign() || l.Not() != Neg(7) || !l.Not().Sign() {
		t.Error("literal helpers broken")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
