// Package sat is a from-scratch CDCL SAT solver: two-literal watching,
// first-UIP conflict analysis with clause learning, VSIDS-style activity
// decay, phase saving, and Luby restarts.
//
// It is the decision procedure underlying the repository's SMT-style
// synthesis baselines (internal/smt), standing in for Z3/cvc5 in the
// paper's §4.1/§5.2 comparison: the sorting-kernel queries are
// finite-domain, so a propositional encoding is a complete decision
// procedure for them.
package sat

import (
	"time"
)

// Lit is a literal: variable index v ≥ 0 encoded as 2v (positive) or
// 2v+1 (negated).
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negated literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

// Status is a solver verdict.
type Status int8

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

type watcher struct {
	c       int32 // clause index
	blocker Lit
}

// Stats reports solver effort counters.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64
	Restarts     int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses  []clause
	watches  [][]watcher // indexed by literal
	assign   []lbool     // indexed by variable
	level    []int32
	reason   []int32 // clause index or -1
	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	order    binHeap // max-heap on activity
	phase    []bool  // saved phases

	clauseInc float64

	ok    bool // false after top-level conflict
	stats Stats

	// Budget limits (0 = unlimited).
	MaxConflicts int64
	Timeout      time.Duration

	// Stop, when non-nil, is polled alongside the deadline check (every
	// 256 conflicts); returning true aborts Solve with Unknown. This is
	// how callers plumb context cancellation into the CDCL loop without
	// the solver importing context itself.
	Stop func() bool

	seen     []bool
	deadline time.Time
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{ok: true, varInc: 1, clauseInc: 1}
}

// Stats returns the effort counters of the last Solve.
func (s *Solver) Stats() Stats { return s.stats }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v, &s.activity)
	return v
}

// ResetSearch undoes all decisions so that further clauses can be added
// incrementally (e.g. new counterexamples in a CEGIS loop). Learned
// clauses are kept.
func (s *Solver) ResetSearch() { s.backtrack(0) }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Sign() {
		return v.neg()
	}
	return v
}

// AddClause adds a clause. It returns false if the formula became
// trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause after search started")
	}
	// Simplify: drop duplicate/false literals, detect tautology.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.enqueue(out[0], -1)
		if s.propagate() >= 0 {
			s.ok = false
			return false
		}
		return true
	}
	s.attach(out, false)
	return true
}

func (s *Solver) attach(lits []Lit, learned bool) int32 {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: lits, learned: learned})
	s.watches[lits[0].Not()] = append(s.watches[lits[0].Not()], watcher{c: ci, blocker: lits[1]})
	s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{c: ci, blocker: lits[0]})
	return ci
}

func (s *Solver) enqueue(l Lit, reason int32) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation; it returns the index of a conflicting
// clause, or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[l]
		kept := ws[:0]
		conflict := int32(-1)
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.c]
			// Ensure the false literal (l.Not()) is at position 1.
			if c.lits[0] == l.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				kept = append(kept, watcher{c: w.c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c: w.c, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: w.c, blocker: first})
			if s.valueLit(first) == lFalse {
				conflict = w.c
				// Copy the remaining watchers and stop.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.enqueue(first, w.c)
		}
		s.watches[l] = kept
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, int32(len(s.trail))) }

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = -1
		if !s.order.contains(v) {
			s.order.push(v, &s.activity)
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, &s.activity)
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (first literal = asserting literal) and the backtrack level.
func (s *Solver) analyze(conflict int32) ([]Lit, int) {
	learned := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	ci := conflict
	for {
		c := &s.clauses[ci]
		if c.learned {
			s.bumpClause(ci)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find the next marked literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		v := p.Var()
		s.seen[v] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		ci = s.reason[v]
		// Move p to the front of its reason clause convention: reason
		// clauses store the implied literal first.
	}
	learned[0] = p.Not()

	// Backtrack level: second-highest level in the learned clause.
	bt := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		bt = int(s.level[learned[1].Var()])
	}
	for _, l := range learned {
		s.seen[l.Var()] = false
	}
	return learned, bt
}

func (s *Solver) bumpClause(ci int32) {
	c := &s.clauses[ci]
	c.act += s.clauseInc
	if c.act > 1e20 {
		for i := range s.clauses {
			s.clauses[i].act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment. It returns Unknown only
// when a budget (MaxConflicts/Timeout) expired.
func (s *Solver) Solve() Status {
	if !s.ok {
		return Unsat
	}
	s.stats = Stats{}
	if s.Timeout > 0 {
		s.deadline = time.Now().Add(s.Timeout)
	} else {
		s.deadline = time.Time{}
	}
	var restart int64 = 1
	for {
		limit := luby(restart) * 128
		st := s.searchOnce(limit)
		if st != Unknown {
			return st
		}
		if s.budgetExceeded() {
			return Unknown
		}
		s.stats.Restarts++
		restart++
		s.backtrack(0)
	}
}

func (s *Solver) budgetExceeded() bool {
	if s.MaxConflicts > 0 && s.stats.Conflicts >= s.MaxConflicts {
		return true
	}
	if !s.deadline.IsZero() && s.stats.Conflicts%256 == 0 && time.Now().After(s.deadline) {
		return true
	}
	if s.Stop != nil && s.stats.Conflicts%256 == 0 && s.Stop() {
		return true
	}
	return false
}

// searchOnce runs CDCL until a verdict, a restart limit, or budget.
func (s *Solver) searchOnce(conflictLimit int64) Status {
	var conflicts int64
	for {
		ci := s.propagate()
		if ci >= 0 {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learned, bt := s.analyze(ci)
			s.backtrack(bt)
			if len(learned) == 1 {
				s.enqueue(learned[0], -1)
			} else {
				nc := s.attach(learned, true)
				s.stats.Learned++
				s.enqueue(learned[0], nc)
			}
			s.varInc /= 0.95
			s.clauseInc /= 0.999
			if conflicts >= conflictLimit || s.budgetExceeded() {
				return Unknown
			}
			continue
		}
		// Decide.
		v := s.pickBranchVar()
		if v < 0 {
			return Sat
		}
		s.stats.Decisions++
		s.newDecisionLevel()
		if s.phase[v] {
			s.enqueue(Pos(v), -1)
		} else {
			s.enqueue(Neg(v), -1)
		}
	}
}

func (s *Solver) pickBranchVar() int {
	for s.order.size() > 0 {
		v := s.order.pop(&s.activity)
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// Value returns the model value of variable v after a Sat verdict.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }
