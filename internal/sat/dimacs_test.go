package sat

import (
	"strings"
	"testing"
)

func TestParseDIMACSSat(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader(`
c simple instance
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Fatal("instance should be sat")
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Fatal("instance should be unsat")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"p cnf x 1\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 1 1\n2 0\n",
		"p cnf 2 1\n1 foo 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseDIMACS(%q) succeeded, want error", bad)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	orig := pigeonhole(4, 3)
	var b strings.Builder
	if err := orig.WriteDIMACS(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Solve(), orig.Solve(); got != want {
		t.Fatalf("round trip verdict %v, original %v", got, want)
	}
	if back.Solve() != Unsat {
		t.Error("PHP(4,3) must be unsat")
	}
}

func TestWriteDIMACSSkipsLearnedClauses(t *testing.T) {
	s := pigeonhole(5, 4)
	s.Solve() // learns clauses
	var b strings.Builder
	if err := s.WriteDIMACS(&b); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(b.String(), "\n", 2)[0]
	// PHP(5,4): 5 at-least-one + 4·C(5,2) at-most-one = 5 + 40 = 45.
	if header != "p cnf 20 45" {
		t.Errorf("header = %q, want p cnf 20 45", header)
	}
}
