package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS serializes the solver's original (non-learned) clauses in
// DIMACS CNF format, so instances can be cross-checked against external
// solvers.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	n := 0
	for _, c := range s.clauses {
		if !c.learned {
			n++
		}
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", s.NumVars(), n); err != nil {
		return err
	}
	for _, c := range s.clauses {
		if c.learned {
			continue
		}
		var b strings.Builder
		for _, l := range c.lits {
			if l.Sign() {
				fmt.Fprintf(&b, "-%d ", l.Var()+1)
			} else {
				fmt.Fprintf(&b, "%d ", l.Var()+1)
			}
		}
		b.WriteString("0\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// ParseDIMACS reads a DIMACS CNF instance into a fresh solver. Comments
// and the problem line are handled; literals are 1-based signed integers
// per the standard.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	declared := -1
	var clause []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			nv, err := strconv.Atoi(f[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			declared = nv
			for s.NumVars() < nv {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			if declared >= 0 && idx > declared {
				return nil, fmt.Errorf("sat: literal %d exceeds declared %d variables", v, declared)
			}
			for s.NumVars() < idx {
				s.NewVar()
			}
			if v > 0 {
				clause = append(clause, Pos(idx-1))
			} else {
				clause = append(clause, Neg(idx-1))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		s.AddClause(clause...) // tolerate a missing trailing 0
	}
	return s, nil
}
