package sat

// binHeap is an indexed max-heap over variable activities, used for
// VSIDS branching.
type binHeap struct {
	heap []int
	pos  []int // heap position per variable, -1 if absent
}

func (h *binHeap) size() int { return len(h.heap) }

func (h *binHeap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *binHeap) push(v int, act *[]float64) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v], act)
}

func (h *binHeap) pop(act *[]float64) int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0, act)
	}
	return v
}

func (h *binHeap) update(v int, act *[]float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

func (h *binHeap) up(i int, act *[]float64) {
	a := *act
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if a[h.heap[p]] >= a[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *binHeap) down(i int, act *[]float64) {
	a := *act
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a[h.heap[c+1]] > a[h.heap[c]] {
			c++
		}
		if a[v] >= a[h.heap[c]] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
