package peephole

import (
	"math/rand"
	"testing"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/state"
	"sortsynth/internal/verify"
)

func TestDeadStoreRemoved(t *testing.T) {
	set := isa.NewCmov(2, 1)
	// The first mov to s1 is overwritten before any read.
	p, _ := isa.ParseProgram("mov s1 r1; mov s1 r2; cmp r1 r2; cmovg r2 s1", 2)
	out := EliminateDeadCode(set, p)
	if len(out) != 3 {
		t.Fatalf("dead store not removed: %d instructions left", len(out))
	}
}

func TestDeadCmpRemoved(t *testing.T) {
	set := isa.NewCmov(2, 1)
	// First cmp's flags are overwritten unread.
	p, _ := isa.ParseProgram("cmp r1 s1; cmp r1 r2; cmovg r1 r2", 2)
	out := EliminateDeadCode(set, p)
	if len(out) != 2 {
		t.Fatalf("dead cmp not removed: %v", out.Format(2))
	}
}

func TestTrailingScratchWriteRemoved(t *testing.T) {
	set := isa.NewCmov(2, 1)
	p, _ := isa.ParseProgram("cmp r1 r2; cmovg r1 r2; mov s1 r1", 2)
	out := EliminateDeadCode(set, p)
	if len(out) != 2 {
		t.Fatalf("write to dead scratch not removed: %v", out.Format(2))
	}
}

func TestCopyPropagationCoalesces(t *testing.T) {
	set := isa.NewCmov(3, 1)
	// s1 is a pure staging copy of r1; the cmp can read r1 directly and
	// the mov dies.
	p, _ := isa.ParseProgram("mov s1 r1; cmp s1 r2; cmovg r1 r2", 3)
	out := Optimize(set, p)
	if len(out) != 2 {
		t.Fatalf("copy not coalesced: %v", out.Format(3))
	}
}

// equivalentOnAll checks output equality on every weak order (so the
// optimizer must preserve behaviour on duplicates too).
func equivalentOnAll(t *testing.T, set *isa.Set, p, q isa.Program) {
	t.Helper()
	for _, in := range perm.WeakOrders(set.N) {
		a := state.RunInts(set, p, in)
		b := state.RunInts(set, q, in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("optimization changed behaviour on %v: %v vs %v\nbefore:\n%s\nafter:\n%s",
					in, a, b, p.Format(set.N), q.Format(set.N))
			}
		}
	}
}

func TestOptimizePreservesSemanticsRandom(t *testing.T) {
	// Property: Optimize never changes observable behaviour, on random
	// programs over both instruction sets.
	for _, set := range []*isa.Set{isa.NewCmov(3, 1), isa.NewMinMax(3, 1)} {
		rng := rand.New(rand.NewSource(17))
		instrs := set.Instrs()
		for trial := 0; trial < 300; trial++ {
			p := make(isa.Program, rng.Intn(14))
			for i := range p {
				p[i] = instrs[rng.Intn(len(instrs))]
			}
			out := Optimize(set, p)
			if len(out) > len(p) {
				t.Fatal("optimizer grew the program")
			}
			equivalentOnAll(t, set, p, out)
		}
	}
}

func TestPaperClaimNetworkKernelIrreducible(t *testing.T) {
	// §2.1: the 12-instruction sorting-network kernel cannot be shortened
	// by classical scalar optimizations — the synthesizer's 11-instruction
	// kernel needs semantic min/max/ite reasoning.
	set := isa.NewCmov(3, 1)
	net := sortnet.Optimal(3).CompileCmov()
	if len(net) != 12 {
		t.Fatalf("network kernel has %d instructions, want 12", len(net))
	}
	out := Optimize(set, net)
	equivalentOnAll(t, set, net, out)
	if len(out) != 12 {
		t.Fatalf("classical passes shortened the network kernel to %d — contradicts the paper's claim", len(out))
	}
	// The synthesizer does find an 11-instruction kernel.
	o := enum.ConfigBest()
	o.MaxLen = 11
	if res := enum.Run(set, o); res.Length != 11 {
		t.Fatalf("synthesizer failed to beat the network kernel")
	}
}

func TestMinMaxNetworkIrreducible(t *testing.T) {
	set := isa.NewMinMax(3, 1)
	net := sortnet.Optimal(3).CompileMinMax() // 9 instructions
	out := Optimize(set, net)
	equivalentOnAll(t, set, net, out)
	if len(out) != 9 {
		t.Fatalf("classical passes shortened the min/max network kernel to %d", len(out))
	}
}

func TestOptimizeSynthesizedKernelIsFixpoint(t *testing.T) {
	// Optimal kernels contain no classically removable instruction.
	set := isa.NewCmov(3, 1)
	o := enum.ConfigBest()
	o.MaxLen = 11
	res := enum.Run(set, o)
	out := Optimize(set, res.Program)
	if len(out) != 11 {
		t.Fatalf("optimal kernel shrank to %d — it was not optimal or the optimizer is unsound", len(out))
	}
	if !verify.Sorts(set, out) {
		t.Fatal("optimized kernel broken")
	}
}
