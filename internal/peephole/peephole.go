// Package peephole implements the classical scalar optimizations a
// compiler would run on a sorting kernel: dead-code elimination (dead
// stores and dead flag writes) and copy propagation with coalescing.
//
// Its purpose in this repository is to validate the paper's §2.1 claim:
// the synthesized kernels are one instruction shorter than the
// sorting-network implementation, and that instruction "cannot be
// removed by classical compiler optimizations like copy coalescing — it
// requires semantical reasoning on min/max/ite expressions". The tests
// confirm that these passes leave the 12-instruction network kernel at
// 12 instructions while the synthesizer reaches 11.
package peephole

import (
	"sortsynth/internal/isa"
)

// Optimize runs the passes to a fixpoint: copy propagation, then dead
// code elimination, repeated while the program shrinks. The result
// computes the same r1..rn outputs for every input.
func Optimize(set *isa.Set, p isa.Program) isa.Program {
	out := p.Clone()
	for {
		before := len(out)
		out = CopyPropagate(set, out)
		out = EliminateDeadCode(set, out)
		if len(out) == before {
			return out
		}
	}
}

// EliminateDeadCode removes instructions whose results are never
// observed: writes to registers that are overwritten before being read
// (with r1..rn live at the end) and compares whose flags are overwritten
// before any conditional move reads them.
func EliminateDeadCode(set *isa.Set, p isa.Program) isa.Program {
	for {
		removed := false
		// Backward liveness over registers + flags.
		liveReg := uint(1)<<set.N - 1 // r1..rn live-out
		liveFlags := false
		keep := make([]bool, len(p))
		for i := len(p) - 1; i >= 0; i-- {
			in := p[i]
			switch in.Op {
			case isa.Mov:
				if liveReg&(1<<in.Dst) == 0 {
					keep[i] = false
					continue
				}
				keep[i] = true
				liveReg &^= 1 << in.Dst
				liveReg |= 1 << in.Src
			case isa.Cmp:
				if !liveFlags {
					keep[i] = false
					continue
				}
				keep[i] = true
				liveFlags = false
				liveReg |= 1<<in.Dst | 1<<in.Src
			case isa.Cmovl, isa.Cmovg:
				if liveReg&(1<<in.Dst) == 0 {
					keep[i] = false
					continue
				}
				keep[i] = true
				// A conditional move may keep the old value: dst stays
				// live; src and flags become live.
				liveReg |= 1<<in.Src | 1<<in.Dst
				liveFlags = true
			case isa.Min, isa.Max:
				if liveReg&(1<<in.Dst) == 0 {
					keep[i] = false
					continue
				}
				keep[i] = true
				liveReg |= 1<<in.Src | 1<<in.Dst
			}
		}
		var out isa.Program
		for i, k := range keep {
			if k {
				out = append(out, p[i])
			} else {
				removed = true
			}
		}
		p = out
		if !removed {
			return p
		}
	}
}

// CopyPropagate forwards copies: after "mov d s", later reads of d are
// rewritten to read s while both hold the same value, which lets dead
// code elimination coalesce the copy away when d was only a staging
// register. Rewrites that would produce an instruction outside the legal
// set (a self-operation, or a cmp with its operands out of index order,
// whose swap would flip the flag semantics) are skipped.
func CopyPropagate(set *isa.Set, p isa.Program) isa.Program {
	out := p.Clone()
	// copyOf[r] = q means register r currently holds the same value as q.
	var copyOf [8]uint8
	reset := func() {
		for i := range copyOf {
			copyOf[i] = uint8(i)
		}
	}
	reset()
	invalidate := func(w uint8) {
		copyOf[w] = w
		for i := range copyOf {
			if copyOf[i] == w {
				copyOf[i] = uint8(i)
			}
		}
	}
	tryRewrite := func(in isa.Instr) isa.Instr {
		cand := in
		cand.Src = copyOf[in.Src]
		if cand != in && set.InstrID(cand) >= 0 {
			in = cand
		}
		if in.Op == isa.Cmp {
			cand = in
			cand.Dst = copyOf[in.Dst]
			if cand != in && set.InstrID(cand) >= 0 {
				in = cand
			}
		}
		return in
	}
	for i, in := range out {
		in = tryRewrite(in)
		out[i] = in
		switch in.Op {
		case isa.Mov:
			invalidate(in.Dst)
			if in.Dst != in.Src {
				copyOf[in.Dst] = copyOf[in.Src]
			}
		case isa.Cmovl, isa.Cmovg, isa.Min, isa.Max:
			invalidate(in.Dst)
		case isa.Cmp:
			// reads only
		}
	}
	return out
}
