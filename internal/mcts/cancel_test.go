package mcts

import (
	"context"
	"testing"
	"time"

	"sortsynth/internal/isa"
)

// TestRunContextCancelReturnsPromptly proves the UCT iteration loop
// honours context cancellation: it polls ctx every 256 iterations, so a
// cancel mid-run must surface within ~10ms, not after the iteration
// budget drains.
func TestRunContextCancelReturnsPromptly(t *testing.T) {
	set := isa.NewCmov(3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Result, 1)
	go func() {
		// A budget that would run for minutes if cancellation leaked.
		done <- RunContext(ctx, set, Options{MaxLen: 14, Seed: 1, Iterations: 1 << 40})
	}()
	time.Sleep(20 * time.Millisecond) // let the search get going
	start := time.Now()
	cancel()
	select {
	case r := <-done:
		if wait := time.Since(start); wait > time.Second {
			t.Fatalf("RunContext returned %v after cancel, want ~10ms (1s bound absorbs CI load)", wait)
		}
		if !r.Cancelled {
			t.Fatalf("result not marked cancelled: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	set := isa.NewCmov(3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	r := RunContext(ctx, set, Options{MaxLen: 14, Seed: 1, Iterations: 1 << 40})
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("RunContext on a dead context took %v, want ~instant", wait)
	}
	if !r.Cancelled || r.Program != nil {
		t.Fatalf("want cancelled empty result, got %+v", r)
	}
}
