// Package mcts is a Monte-Carlo tree search baseline for sorting-kernel
// synthesis, standing in for AlphaDev's search skeleton (paper §5.2):
// UCT over program prefixes with random rollouts and a
// sortedness-progress reward.
//
// AlphaDev couples this search with learned policy/value networks on TPU
// clusters; its code is unavailable (the paper itself could not rerun
// it). This implementation keeps the assembly game — states are
// canonical execution states over all permutations, actions are legal
// instructions, the episode ends at a sorted state or the length limit —
// and replaces the neural guidance with rollout statistics, which is the
// documented substitution (DESIGN.md §4.4).
package mcts

import (
	"context"
	"math"
	"math/rand"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// Options configures an MCTS run.
type Options struct {
	// MaxLen is the episode length limit (the kernel length budget).
	MaxLen int
	// Iterations bounds the number of MCTS iterations (default 200k).
	Iterations int64
	// C is the UCB exploration constant (default 1.4).
	C float64
	// RolloutsPerExpand is the number of random rollouts per new node
	// (default 1).
	RolloutsPerExpand int
	Seed              int64
	Timeout           time.Duration
}

// Result reports an MCTS run.
type Result struct {
	Program    isa.Program // first correct kernel found, or nil
	Iterations int64
	Nodes      int
	BestReward float64
	// Cancelled reports that the search stopped because the context
	// passed to RunContext was cancelled.
	Cancelled bool
	Elapsed   time.Duration
}

type node struct {
	st       state.State
	parent   int32
	instr    uint16
	children []int32 // -1 until expanded, indexed by instruction id
	visits   int64
	total    float64
	sorted   bool
}

// Run executes MCTS until a correct kernel is found or the budget ends.
func Run(set *isa.Set, opt Options) *Result {
	return RunContext(context.Background(), set, opt)
}

// RunContext is Run with cancellation: the iteration loop polls ctx
// alongside the wall-clock deadline (every 256 iterations), so a
// cancelled context stops CPU work within a few milliseconds and is
// reported via Result.Cancelled.
func RunContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	m := state.NewMachine(set)
	instrs := set.Instrs()

	iters := opt.Iterations
	if iters == 0 {
		iters = 200_000
	}
	c := opt.C
	if c == 0 {
		c = 1.4
	}
	rolls := opt.RolloutsPerExpand
	if rolls == 0 {
		rolls = 1
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = start.Add(opt.Timeout)
	}

	// progress maps a state to [0, 1): the fraction of register positions
	// already holding their final value, across all tracked assignments.
	// States that erased a value score 0 — a pure permutation-count
	// reward is gameable by unconditional moves that collapse all
	// permutations into one (wrong) assignment.
	progress := func(s state.State) float64 {
		if !m.AllViable(s) {
			return 0
		}
		correct := 0
		for _, a := range s {
			for i := 0; i < set.N; i++ {
				if m.Reg(a, i) == i+1 {
					correct++
				}
			}
		}
		return 0.99 * float64(correct) / float64(len(s)*set.N)
	}

	nodes := []node{{st: m.Initial().Clone(), parent: -1}}
	res := &Result{}
	var buf state.State

	depthOf := func(id int32) int {
		d := 0
		for v := id; nodes[v].parent >= 0; v = nodes[v].parent {
			d++
		}
		return d
	}
	programOf := func(id int32) isa.Program {
		var rev []isa.Instr
		for v := id; nodes[v].parent >= 0; v = nodes[v].parent {
			rev = append(rev, instrs[nodes[v].instr])
		}
		p := make(isa.Program, len(rev))
		for i, in := range rev {
			p[len(rev)-1-i] = in
		}
		return p
	}

	for ; res.Iterations < iters; res.Iterations++ {
		if res.Iterations%256 == 0 {
			if ctx.Err() != nil {
				res.Cancelled = true
				break
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
		}
		// Selection.
		cur := int32(0)
		depth := 0
		for {
			nd := &nodes[cur]
			if nd.sorted || depth >= opt.MaxLen {
				break
			}
			if nd.children == nil {
				// Expand: create one random unexplored child.
				nd.children = make([]int32, len(instrs))
				for i := range nd.children {
					nd.children[i] = -1
				}
			}
			// Pick by UCB among instantiated children; instantiate an
			// unexplored one with priority.
			unexplored := -1
			cnt := 0
			for i, ch := range nd.children {
				if ch == -1 {
					cnt++
					if rng.Intn(cnt) == 0 {
						unexplored = i
					}
				}
			}
			if unexplored >= 0 {
				buf = m.Apply(buf, nd.st, instrs[unexplored])
				id := int32(len(nodes))
				nodes = append(nodes, node{
					st: buf.Clone(), parent: cur, instr: uint16(unexplored),
					sorted: m.AllSorted(buf),
				})
				nodes[cur].children[unexplored] = id
				cur = id
				depth++
				break
			}
			// All children instantiated: UCB descent.
			best, bestScore := int32(-1), math.Inf(-1)
			logN := math.Log(float64(nd.visits + 1))
			for _, ch := range nd.children {
				chn := &nodes[ch]
				score := chn.total/float64(chn.visits+1) +
					c*math.Sqrt(logN/float64(chn.visits+1))
				if score > bestScore {
					best, bestScore = ch, score
				}
			}
			cur = best
			depth++
		}

		// Terminal check.
		leaf := &nodes[cur]
		var reward float64
		if leaf.sorted {
			d := depthOf(cur)
			reward = 2 - float64(d)/float64(opt.MaxLen) // shorter = better
			if res.Program == nil {
				res.Program = programOf(cur)
			}
		} else if depth >= opt.MaxLen {
			reward = progress(leaf.st)
		} else {
			// Rollout(s).
			for k := 0; k < rolls; k++ {
				st := leaf.st
				bestP := progress(st)
				tmp := st.Clone()
				for d := depth; d < opt.MaxLen; d++ {
					buf = m.Apply(buf, tmp, instrs[rng.Intn(len(instrs))])
					tmp, buf = buf, tmp
					if m.AllSorted(tmp) {
						bestP = 2 - float64(d+1)/float64(opt.MaxLen)
						break
					}
					if p := progress(tmp); p > bestP {
						bestP = p
					}
				}
				reward += bestP
			}
			reward /= float64(rolls)
		}
		if reward > res.BestReward {
			res.BestReward = reward
		}

		// Backpropagation.
		for v := cur; v >= 0; v = nodes[v].parent {
			nodes[v].visits++
			nodes[v].total += reward
		}

		if res.Program != nil {
			break
		}
	}
	res.Nodes = len(nodes)
	res.Elapsed = time.Since(start)
	return res
}
