package mcts

import (
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

func TestMCTSN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := Run(set, Options{MaxLen: 6, Seed: 1, Iterations: 200_000})
	if res.Program == nil {
		t.Fatalf("MCTS failed on n=2 (best reward %.3f after %d iterations)", res.BestReward, res.Iterations)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("MCTS returned an incorrect kernel")
	}
	t.Logf("n=2: length %d after %d iterations", len(res.Program), res.Iterations)
}

func TestMCTSMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	res := Run(set, Options{MaxLen: 5, Seed: 2, Iterations: 200_000})
	if res.Program == nil {
		t.Fatal("MCTS failed on min/max n=2")
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("incorrect min/max kernel")
	}
}

func TestMCTSN3Budgeted(t *testing.T) {
	// Without learned guidance MCTS needs many iterations on n=3; with a
	// generous budget it usually finds some (not necessarily optimal)
	// kernel. Tolerate failure but never accept an incorrect program.
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	res := Run(set, Options{MaxLen: 14, Seed: 3, Iterations: 400_000, Timeout: 90 * time.Second})
	if res.Program == nil {
		t.Logf("n=3 MCTS found nothing (best reward %.3f, %d nodes)", res.BestReward, res.Nodes)
		return
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("incorrect n=3 kernel")
	}
	t.Logf("n=3: length %d after %d iterations in %v", len(res.Program), res.Iterations, res.Elapsed)
}

func TestDeterministicSeed(t *testing.T) {
	set := isa.NewCmov(2, 1)
	a := Run(set, Options{MaxLen: 6, Seed: 9, Iterations: 5_000})
	b := Run(set, Options{MaxLen: 6, Seed: 9, Iterations: 5_000})
	if a.Iterations != b.Iterations || a.BestReward != b.BestReward || a.Nodes != b.Nodes {
		t.Error("same seed produced different searches")
	}
}

func TestRewardPrefersShorter(t *testing.T) {
	// A solution at depth d gets reward 2 − d/MaxLen: strictly decreasing
	// in d.
	set := isa.NewCmov(2, 1)
	res := Run(set, Options{MaxLen: 8, Seed: 4, Iterations: 300_000})
	if res.Program == nil {
		t.Skip("no solution under this seed")
	}
	if res.BestReward <= 1 {
		t.Errorf("solution reward %.3f not above progress range", res.BestReward)
	}
}
