package plan

import (
	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

// Encode grounds the sorting-kernel synthesis problem as a planning
// problem (the paper's Plan-Parallel formulation): one val(example,
// register, value) atom per combination plus lt/gt flag atoms per
// example; every legal instruction becomes one action whose conditional
// effects update all examples simultaneously; the goal demands sorted
// registers in every example. GoalGroups (one group per example) enable
// the serialized Plan-Seq heuristic.
func Encode(set *isa.Set, examples [][]int) *Problem {
	if examples == nil {
		examples = perm.All(set.N)
	}
	n, r := set.N, set.Regs()
	d := n + 1
	numEx := len(examples)

	// Atom numbering.
	val := func(p, reg, v int) Atom { return Atom(p*(r*d) + reg*d + v) }
	base := numEx * r * d
	ltA := func(p int) Atom { return Atom(base + 2*p) }
	gtA := func(p int) Atom { return Atom(base + 2*p + 1) }
	numAtoms := base + 2*numEx

	prob := &Problem{NumAtoms: numAtoms}

	// Initial state.
	for p, ex := range examples {
		for reg := 0; reg < r; reg++ {
			v := 0
			if reg < n {
				v = ex[reg]
			}
			prob.Init = append(prob.Init, val(p, reg, v))
		}
	}

	// Goal: every example sorted (registers hold 1..n).
	for p := range examples {
		var group []Atom
		for i := 0; i < n; i++ {
			group = append(group, val(p, i, i+1))
		}
		prob.Goal = append(prob.Goal, group...)
		prob.GoalGroups = append(prob.GoalGroups, group)
	}

	// Actions.
	for _, in := range set.Instrs() {
		act := Action{Name: in.Format(n)}
		dst, src := int(in.Dst), int(in.Src)
		for p := range examples {
			switch in.Op {
			case isa.Mov:
				for w := 0; w < d; w++ {
					act.Effects = append(act.Effects, CondEffect{
						Cond: []Atom{val(p, dst, w)},
						Del:  []Atom{val(p, dst, w)},
					})
				}
				for v := 0; v < d; v++ {
					act.Effects = append(act.Effects, CondEffect{
						Cond: []Atom{val(p, src, v)},
						Add:  []Atom{val(p, dst, v)},
					})
				}
			case isa.Cmp:
				act.Effects = append(act.Effects,
					CondEffect{Cond: []Atom{ltA(p)}, Del: []Atom{ltA(p)}},
					CondEffect{Cond: []Atom{gtA(p)}, Del: []Atom{gtA(p)}},
				)
				for x := 0; x < d; x++ {
					for y := 0; y < d; y++ {
						if x == y {
							continue
						}
						eff := CondEffect{Cond: []Atom{val(p, dst, x), val(p, src, y)}}
						if x < y {
							eff.Add = []Atom{ltA(p)}
						} else {
							eff.Add = []Atom{gtA(p)}
						}
						act.Effects = append(act.Effects, eff)
					}
				}
			case isa.Cmovl, isa.Cmovg:
				flag := ltA(p)
				if in.Op == isa.Cmovg {
					flag = gtA(p)
				}
				for w := 0; w < d; w++ {
					act.Effects = append(act.Effects, CondEffect{
						Cond: []Atom{flag, val(p, dst, w)},
						Del:  []Atom{val(p, dst, w)},
					})
				}
				for v := 0; v < d; v++ {
					act.Effects = append(act.Effects, CondEffect{
						Cond: []Atom{flag, val(p, src, v)},
						Add:  []Atom{val(p, dst, v)},
					})
				}
			case isa.Min, isa.Max:
				for x := 0; x < d; x++ {
					for y := 0; y < d; y++ {
						res := x
						if (in.Op == isa.Min && y < x) || (in.Op == isa.Max && y > x) {
							res = y
						}
						if res == x {
							continue
						}
						act.Effects = append(act.Effects, CondEffect{
							Cond: []Atom{val(p, dst, x), val(p, src, y)},
							Del:  []Atom{val(p, dst, x)},
							Add:  []Atom{val(p, dst, res)},
						})
					}
				}
			}
		}
		prob.Actions = append(prob.Actions, act)
	}
	return prob
}

// PlanToProgram maps a plan (action indices) back to the instruction
// sequence.
func PlanToProgram(set *isa.Set, planIdx []int) isa.Program {
	p := make(isa.Program, len(planIdx))
	for i, a := range planIdx {
		p[i] = set.Instrs()[a]
	}
	return p
}
