package plan

import (
	"strings"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

func balanced(s string) bool {
	depth := 0
	for _, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}

func TestWritePDDLToy(t *testing.T) {
	var dom, prob strings.Builder
	WritePDDL(&dom, &prob, toyProblem(), "toy", nil)
	d, p := dom.String(), prob.String()
	for _, want := range []string{
		"(define (domain toy)",
		":requirements :strips :conditional-effects",
		"(:action step-0",
		"(a0)",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("domain missing %q", want)
		}
	}
	for _, want := range []string{"(define (problem toy-instance)", "(:domain toy)", "(:init", "(:goal (and (a4)))"} {
		if !strings.Contains(p, want) {
			t.Errorf("problem missing %q", want)
		}
	}
	if !balanced(d) || !balanced(p) {
		t.Error("unbalanced parentheses")
	}
}

func TestWritePDDLSortingEncoding(t *testing.T) {
	set := isa.NewCmov(2, 1)
	prob := Encode(set, nil)
	namer := AtomNamer(perm.Factorial(2), set.Regs(), set.N+1)
	var dom, pb strings.Builder
	WritePDDL(&dom, &pb, prob, "sortsynth-n2", namer)
	d, p := dom.String(), pb.String()
	if !balanced(d) || !balanced(p) {
		t.Fatal("unbalanced parentheses")
	}
	for _, want := range []string{
		"(:action mov-r1-s1-",       // an instruction action
		"(when (and (val-p0-r0-v2)", // conditional effect on example 0
		"lt-p0",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("domain missing %q", want)
		}
	}
	if !strings.Contains(p, "(val-p0-r0-v1)") && !strings.Contains(p, "(val-p0-r0-v2)") {
		t.Error("problem init missing value atoms")
	}
	if !strings.Contains(p, "(:goal (and (val-p0-r0-v1)") {
		t.Errorf("problem goal wrong:\n%s", p)
	}
}

func TestAtomNamerBijective(t *testing.T) {
	set := isa.NewCmov(2, 1)
	prob := Encode(set, nil)
	namer := AtomNamer(perm.Factorial(2), set.Regs(), set.N+1)
	seen := map[string]bool{}
	for a := 0; a < prob.NumAtoms; a++ {
		name := namer(Atom(a))
		if seen[name] {
			t.Fatalf("duplicate predicate name %q", name)
		}
		seen[name] = true
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("mov r1 s1"); got != "mov-r1-s1" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("???"); got != "" {
		t.Errorf("sanitize(???) = %q", got)
	}
}
