package plan

import (
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

// toyProblem: atoms 0..4; actions step i→i+1; goal atom 4.
func toyProblem() *Problem {
	p := &Problem{NumAtoms: 5, Init: []Atom{0}, Goal: []Atom{4}}
	for i := 0; i < 4; i++ {
		p.Actions = append(p.Actions, Action{
			Name:    "step",
			Pre:     []Atom{Atom(i)},
			Effects: []CondEffect{{Add: []Atom{Atom(i + 1)}, Del: []Atom{Atom(i)}}},
		})
	}
	return p
}

func TestToyChain(t *testing.T) {
	for _, alg := range []Algorithm{GBFS, AStar} {
		for _, h := range []HeuristicKind{GoalCount, HAdd} {
			res := Solve(toyProblem(), Options{Algorithm: alg, Heuristic: h})
			if len(res.Plan) != 4 {
				t.Errorf("alg=%d h=%d: plan length %d, want 4", alg, h, len(res.Plan))
			}
		}
	}
}

func TestUnsolvableExhausts(t *testing.T) {
	p := toyProblem()
	p.Goal = []Atom{4}
	p.Actions = p.Actions[:2] // cannot reach atom 4
	res := Solve(p, Options{})
	if res.Plan != nil {
		t.Fatal("found plan for unsolvable problem")
	}
	if !res.Exhausted {
		t.Error("unsolvable problem must exhaust")
	}
}

func TestConditionalEffects(t *testing.T) {
	// Action toggles atom 1 only if atom 0 holds.
	p := &Problem{
		NumAtoms: 2,
		Init:     []Atom{0},
		Goal:     []Atom{1},
		Actions: []Action{{
			Name:    "cond",
			Effects: []CondEffect{{Cond: []Atom{0}, Add: []Atom{1}}},
		}},
	}
	res := Solve(p, Options{})
	if len(res.Plan) != 1 {
		t.Fatalf("plan = %v", res.Plan)
	}
}

func TestHAddInformative(t *testing.T) {
	p := toyProblem()
	init := newState(p.NumAtoms)
	for _, a := range p.Init {
		init.set(a)
	}
	if h := hAdd(p, init, false); h != 4 {
		t.Errorf("hAdd(init) = %d, want 4", h)
	}
	if h := goalCount(p, init, false); h != 1 {
		t.Errorf("goalCount(init) = %d, want 1", h)
	}
}

func TestPlanParallelN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	prob := Encode(set, nil)
	res := Solve(prob, Options{Algorithm: AStar, Heuristic: GoalCount})
	if res.Plan == nil {
		t.Fatalf("no plan (expanded %d)", res.Expanded)
	}
	prog := PlanToProgram(set, res.Plan)
	if !verify.Sorts(set, prog) {
		t.Fatalf("plan does not sort: %s", prog.FormatInline(2))
	}
	if len(prog) != 4 {
		t.Errorf("A* plan length %d, want optimal 4", len(prog))
	}
}

func TestPlanSeqN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	prob := Encode(set, nil)
	res := Solve(prob, Options{Algorithm: GBFS, Heuristic: GoalCount, Serialize: true})
	if res.Plan == nil {
		t.Fatalf("no plan (expanded %d)", res.Expanded)
	}
	if !verify.Sorts(set, PlanToProgram(set, res.Plan)) {
		t.Fatal("serialized plan does not sort")
	}
}

func TestPlanMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	prob := Encode(set, nil)
	res := Solve(prob, Options{Algorithm: AStar, Heuristic: GoalCount})
	if res.Plan == nil {
		t.Fatal("no min/max plan")
	}
	if !verify.Sorts(set, PlanToProgram(set, res.Plan)) {
		t.Fatal("min/max plan does not sort")
	}
}

func TestPlanN3LAMAStyle(t *testing.T) {
	// n=3 planning with satisficing search (GBFS + h_add), the analogue
	// of the paper's LAMA row (3.54 s, suboptimal plan). Expected: a
	// correct but non-minimal kernel, found quickly.
	set := isa.NewCmov(3, 1)
	prob := Encode(set, nil)
	res := Solve(prob, Options{
		Algorithm: GBFS, Heuristic: HAdd,
		MaxNodes: 400_000, Timeout: time.Minute,
	})
	if res.Plan == nil {
		t.Fatalf("GBFS+hAdd found no n=3 plan (expanded %d)", res.Expanded)
	}
	prog := PlanToProgram(set, res.Plan)
	if !verify.Sorts(set, prog) {
		t.Fatal("n=3 plan does not sort")
	}
	if len(prog) < 11 {
		t.Errorf("plan of length %d beats the proven optimum 11", len(prog))
	}
	t.Logf("n=3 LAMA-style plan: %d instructions, %d expanded, %v", len(prog), res.Expanded, res.Elapsed)
}

func TestPlanN3GoalCountGBFSFails(t *testing.T) {
	// The paper's fast-downward rows (plain heuristics) fail on n=3; our
	// goal-count GBFS reproduces that within a generous budget.
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	prob := Encode(set, nil)
	res := Solve(prob, Options{Algorithm: GBFS, Heuristic: GoalCount, MaxNodes: 150_000})
	if res.Plan != nil {
		prog := PlanToProgram(set, res.Plan)
		if !verify.Sorts(set, prog) {
			t.Fatal("returned incorrect plan")
		}
		t.Logf("goal-count GBFS unexpectedly solved n=3 (len %d)", len(prog))
	}
}
