// Package plan is a grounded STRIPS-style planner with conditional
// effects, plus the sorting-kernel planning formulation of paper §5.2.
//
// The engine covers the feature set the paper's PDDL models need:
// propositional states (bitsets), actions with preconditions and
// conditional effects, greedy best-first or A* search, and the
// goal-count and additive relaxed (h_add) heuristics in the spirit of
// the FF/LAMA family. fast-downward, LAMA, Scorpion and CPDDL are
// external planners; this package is the documented substitution
// (DESIGN.md §4.5).
//
// Two formulations mirror the paper's: Plan-Parallel evaluates the goal
// over all permutations at once; Plan-Seq linearizes it, directing the
// heuristic at one unsorted permutation at a time ("handles each
// possible permutation one after another").
package plan

import (
	"container/heap"
	"context"
	"math/bits"
	"time"
)

// Atom is a ground proposition index.
type Atom int32

// CondEffect is a conditional effect: when all Cond atoms hold in the
// state the action is applied to, Del atoms are removed and Add atoms
// added (deletes before adds).
type CondEffect struct {
	Cond []Atom
	Add  []Atom
	Del  []Atom
}

// Action is a ground action.
type Action struct {
	Name    string
	Pre     []Atom
	Effects []CondEffect
}

// Problem is a grounded planning problem.
type Problem struct {
	NumAtoms int
	Init     []Atom
	Goal     []Atom
	Actions  []Action

	// GoalGroups optionally partitions the goal for the Plan-Seq
	// heuristic: the heuristic counts only the first unsatisfied group
	// (scaled), serializing the subgoals.
	GoalGroups [][]Atom
}

// bitset state helpers.
type bstate []uint64

func newState(n int) bstate { return make(bstate, (n+63)/64) }

func (s bstate) has(a Atom) bool { return s[a>>6]&(1<<(a&63)) != 0 }
func (s bstate) set(a Atom)      { s[a>>6] |= 1 << (a & 63) }
func (s bstate) clear(a Atom)    { s[a>>6] &^= 1 << (a & 63) }

func (s bstate) clone() bstate {
	t := make(bstate, len(s))
	copy(t, s)
	return t
}

func (s bstate) hash() uint64 {
	h := uint64(14695981039346656037)
	for _, w := range s {
		h ^= w
		h *= 1099511628211
	}
	return h
}

func (s bstate) holdsAll(atoms []Atom) bool {
	for _, a := range atoms {
		if !s.has(a) {
			return false
		}
	}
	return true
}

// apply returns the successor of s under a (s unchanged).
func apply(s bstate, a *Action) bstate {
	var adds, dels []Atom
	for i := range a.Effects {
		e := &a.Effects[i]
		if s.holdsAll(e.Cond) {
			adds = append(adds, e.Add...)
			dels = append(dels, e.Del...)
		}
	}
	t := s.clone()
	for _, d := range dels {
		t.clear(d)
	}
	for _, ad := range adds {
		t.set(ad)
	}
	return t
}

// Algorithm selects the search strategy.
type Algorithm uint8

// Search strategies.
const (
	GBFS  Algorithm = iota // greedy best-first on h
	AStar                  // f = g + h
)

// HeuristicKind selects the heuristic.
type HeuristicKind uint8

// Heuristics.
const (
	GoalCount HeuristicKind = iota // unsatisfied goal atoms
	HAdd                           // additive relaxed-reachability cost
)

// Options configures a planner run.
type Options struct {
	Algorithm Algorithm
	Heuristic HeuristicKind
	Serialize bool // Plan-Seq: focus the heuristic on the first open goal group
	MaxNodes  int64
	Timeout   time.Duration
}

// Result reports a planner run.
type Result struct {
	Plan      []int // action indices, nil if none found
	Expanded  int64
	Generated int64
	Elapsed   time.Duration
	Exhausted bool
	// Cancelled reports that the search stopped because the context
	// passed to SolveContext was cancelled.
	Cancelled bool
}

type planNode struct {
	state  bstate
	parent int32
	action int32
	g      int32
}

type pqItem struct {
	f, g int32
	id   int32
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	return q[i].g > q[j].g
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// Solve searches for a plan.
func Solve(p *Problem, opt Options) *Result {
	return SolveContext(context.Background(), p, opt)
}

// SolveContext is Solve with cancellation: the expansion loop polls ctx
// alongside the wall-clock deadline (every 64 expansions), so a
// cancelled context stops planner work promptly and is reported via
// Result.Cancelled.
func SolveContext(ctx context.Context, p *Problem, opt Options) *Result {
	start := time.Now()
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = start.Add(opt.Timeout)
	}
	res := &Result{}

	init := newState(p.NumAtoms)
	for _, a := range p.Init {
		init.set(a)
	}

	h := func(s bstate) int32 {
		switch opt.Heuristic {
		case HAdd:
			return hAdd(p, s, opt.Serialize)
		default:
			return goalCount(p, s, opt.Serialize)
		}
	}

	nodes := []planNode{{state: init, parent: -1, action: -1}}
	seen := map[uint64]int32{init.hash(): 0}
	open := pq{{f: h(init), g: 0, id: 0}}
	heap.Init(&open)

	for open.Len() > 0 {
		if opt.MaxNodes > 0 && res.Expanded >= opt.MaxNodes {
			res.Elapsed = time.Since(start)
			return res
		}
		if res.Expanded%64 == 0 {
			if ctx.Err() != nil {
				res.Cancelled = true
				res.Elapsed = time.Since(start)
				return res
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.Elapsed = time.Since(start)
				return res
			}
		}
		it := heap.Pop(&open).(pqItem)
		nd := &nodes[it.id]
		if it.g != nd.g {
			continue
		}
		if nd.state.holdsAll(p.Goal) {
			// Reconstruct.
			var rev []int
			for v := it.id; nodes[v].parent >= 0; v = nodes[v].parent {
				rev = append(rev, int(nodes[v].action))
			}
			res.Plan = make([]int, len(rev))
			for i, a := range rev {
				res.Plan[len(rev)-1-i] = a
			}
			res.Elapsed = time.Since(start)
			return res
		}
		res.Expanded++
		for ai := range p.Actions {
			act := &p.Actions[ai]
			if !nd.state.holdsAll(act.Pre) {
				continue
			}
			succ := apply(nd.state, act)
			res.Generated++
			key := succ.hash()
			ng := it.g + 1
			if idx, ok := seen[key]; ok {
				if ng >= nodes[idx].g {
					continue
				}
				nodes[idx].g = ng
				nodes[idx].parent = it.id
				nodes[idx].action = int32(ai)
				f := ng
				if opt.Algorithm == GBFS {
					f = h(succ)
				} else {
					f = ng + h(succ)
				}
				heap.Push(&open, pqItem{f: f, g: ng, id: idx})
				continue
			}
			id := int32(len(nodes))
			nodes = append(nodes, planNode{state: succ, parent: it.id, action: int32(ai), g: ng})
			seen[key] = id
			var f int32
			if opt.Algorithm == GBFS {
				f = h(succ)
			} else {
				f = ng + h(succ)
			}
			heap.Push(&open, pqItem{f: f, g: ng, id: id})
		}
	}
	res.Exhausted = true
	res.Elapsed = time.Since(start)
	return res
}

// goalCount counts unsatisfied goal atoms; with Serialize it counts only
// the first goal group that is not yet fully satisfied (plus the number
// of remaining groups, to keep the ordering informative).
func goalCount(p *Problem, s bstate, serialize bool) int32 {
	if serialize && len(p.GoalGroups) > 0 {
		for gi, group := range p.GoalGroups {
			miss := int32(0)
			for _, a := range group {
				if !s.has(a) {
					miss++
				}
			}
			if miss > 0 {
				// Each remaining group costs at least its size: weigh
				// open groups so that finishing the current group always
				// dominates shuffling later ones.
				return miss + int32(len(p.GoalGroups)-gi-1)*int32(len(group)+1)
			}
		}
		return 0
	}
	var miss int32
	for _, a := range p.Goal {
		if !s.has(a) {
			miss++
		}
	}
	return miss
}

// hAdd computes the additive relaxed heuristic: delete effects are
// ignored and conditional effects act as independent relaxed actions
// with precondition Pre ∪ Cond. Costs propagate to fixpoint.
func hAdd(p *Problem, s bstate, serialize bool) int32 {
	const inf = int32(1 << 29)
	cost := make([]int32, p.NumAtoms)
	for i := range cost {
		if s.has(Atom(i)) {
			cost[i] = 0
		} else {
			cost[i] = inf
		}
	}
	sum := func(atoms []Atom) int32 {
		var t int32
		for _, a := range atoms {
			c := cost[a]
			if c >= inf {
				return inf
			}
			t += c
		}
		return t
	}
	for changed := true; changed; {
		changed = false
		for ai := range p.Actions {
			act := &p.Actions[ai]
			base := sum(act.Pre)
			if base >= inf {
				continue
			}
			for ei := range act.Effects {
				e := &act.Effects[ei]
				c := sum(e.Cond)
				if c >= inf {
					continue
				}
				nc := base + c + 1
				for _, a := range e.Add {
					if nc < cost[a] {
						cost[a] = nc
						changed = true
					}
				}
			}
		}
	}
	goal := p.Goal
	if serialize && len(p.GoalGroups) > 0 {
		for _, group := range p.GoalGroups {
			if sat := func() bool {
				for _, a := range group {
					if !s.has(a) {
						return false
					}
				}
				return true
			}(); !sat {
				goal = group
				break
			}
		}
	}
	t := sum(goal)
	if t >= inf {
		return inf
	}
	return t
}

// popcount of a state, used in tests.
func (s bstate) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}
