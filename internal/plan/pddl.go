package plan

import (
	"fmt"
	"io"
	"strings"
)

// WritePDDL renders the grounded problem as standard PDDL with
// conditional effects (requirements :strips :conditional-effects) — the
// format in which the paper hands the synthesis problem to
// fast-downward, LAMA, Scorpion and CPDDL. names maps atoms to predicate
// names (nil uses "a<N>"); actions are named after Problem.Actions with
// an index suffix to keep them unique.
func WritePDDL(domainW, problemW io.Writer, p *Problem, domain string, names func(Atom) string) {
	if names == nil {
		names = func(a Atom) string { return fmt.Sprintf("a%d", a) }
	}
	pred := func(a Atom) string { return "(" + names(a) + ")" }
	conj := func(atoms []Atom) string {
		if len(atoms) == 0 {
			return "(and )"
		}
		parts := make([]string, len(atoms))
		for i, a := range atoms {
			parts[i] = pred(a)
		}
		return "(and " + strings.Join(parts, " ") + ")"
	}

	// Domain.
	fmt.Fprintf(domainW, "(define (domain %s)\n", domain)
	fmt.Fprintf(domainW, "  (:requirements :strips :conditional-effects)\n")
	fmt.Fprintf(domainW, "  (:predicates\n")
	for a := 0; a < p.NumAtoms; a++ {
		fmt.Fprintf(domainW, "    (%s)\n", names(Atom(a)))
	}
	fmt.Fprintf(domainW, "  )\n")
	for ai := range p.Actions {
		act := &p.Actions[ai]
		name := sanitize(act.Name)
		if name == "" {
			name = "act"
		}
		fmt.Fprintf(domainW, "  (:action %s-%d\n", name, ai)
		if len(act.Pre) > 0 {
			fmt.Fprintf(domainW, "    :precondition %s\n", conj(act.Pre))
		}
		fmt.Fprintf(domainW, "    :effect (and\n")
		for ei := range act.Effects {
			e := &act.Effects[ei]
			var eff []string
			for _, d := range e.Del {
				eff = append(eff, "(not "+pred(d)+")")
			}
			for _, ad := range e.Add {
				eff = append(eff, pred(ad))
			}
			body := strings.Join(eff, " ")
			if len(eff) != 1 {
				body = "(and " + body + ")"
			}
			if len(e.Cond) > 0 {
				fmt.Fprintf(domainW, "      (when %s %s)\n", conj(e.Cond), body)
			} else {
				fmt.Fprintf(domainW, "      %s\n", body)
			}
		}
		fmt.Fprintf(domainW, "    )\n  )\n")
	}
	fmt.Fprintf(domainW, ")\n")

	// Problem.
	fmt.Fprintf(problemW, "(define (problem %s-instance)\n", domain)
	fmt.Fprintf(problemW, "  (:domain %s)\n", domain)
	fmt.Fprintf(problemW, "  (:init\n")
	for _, a := range p.Init {
		fmt.Fprintf(problemW, "    %s\n", pred(a))
	}
	fmt.Fprintf(problemW, "  )\n")
	fmt.Fprintf(problemW, "  (:goal %s)\n", conj(p.Goal))
	fmt.Fprintf(problemW, ")\n")
}

// sanitize maps an action name to PDDL identifier characters.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// AtomNamer returns a readable predicate namer for the sorting encoding
// produced by Encode: val-p<example>-r<register>-v<value> and
// lt-p<example>/gt-p<example>.
func AtomNamer(numExamples, regs, domainSize int) func(Atom) string {
	base := numExamples * regs * domainSize
	return func(a Atom) string {
		if int(a) < base {
			i := int(a)
			p := i / (regs * domainSize)
			i %= regs * domainSize
			r := i / domainSize
			v := i % domainSize
			return fmt.Sprintf("val-p%d-r%d-v%d", p, r, v)
		}
		i := int(a) - base
		if i%2 == 0 {
			return fmt.Sprintf("lt-p%d", i/2)
		}
		return fmt.Sprintf("gt-p%d", i/2)
	}
}
