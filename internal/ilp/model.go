package ilp

import (
	"context"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

// Options configures the CP-ILP synthesis model (paper §4.2).
type Options struct {
	Length   int
	MaxNodes int64
	Timeout  time.Duration

	// Examples overrides the test suite (default: all permutations).
	Examples [][]int
}

// Result reports an ILP synthesis outcome.
type Result struct {
	Program   isa.Program
	Exhausted bool
	// Cancelled reports that the search stopped because the context
	// passed to SynthesizeContext was cancelled.
	Cancelled bool
	Nodes     int64
	Vars      int
	Cons      int
	Elapsed   time.Duration
}

// Synthesize builds the big-M model and runs branch-and-bound. The
// formulation follows §4.2: binary selection variables per (timestep,
// instruction) with an exactly-one row, integer value variables per
// (example, timestep, register), binary flag variables, activated-command
// binaries for the conditional moves (the quadratic-constraint
// linearization), and big-M coupling of values across timesteps. The
// goal is the "= 123" formulation.
func Synthesize(set *isa.Set, opt Options) *Result {
	return SynthesizeContext(context.Background(), set, opt)
}

// SynthesizeContext is Synthesize with cancellation: branch & bound polls
// ctx alongside its node/time budgets, so a cancelled context stops
// solver work promptly and is reported via Result.Cancelled.
func SynthesizeContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	start := time.Now()
	s := NewSolver()
	n, r := set.N, set.Regs()
	m := n + 1 // big-M over the value range 0..n
	instrs := set.Instrs()
	hasFlags := set.HasFlags()

	// Selection binaries with exactly-one per step.
	sel := make([][]Var, opt.Length)
	var branch []Var
	for t := 0; t < opt.Length; t++ {
		sel[t] = make([]Var, len(instrs))
		terms := make([]Term, len(instrs))
		for i := range instrs {
			sel[t][i] = s.Binary()
			terms[i] = Term{Coef: 1, Var: sel[t][i]}
		}
		s.AddEQ(1, terms...)
		branch = append(branch, sel[t]...)
	}

	examples := opt.Examples
	if examples == nil {
		examples = perm.All(n)
	}
	for _, ex := range examples {
		val := make([][]Var, opt.Length+1)
		var lt, gt []Var
		if hasFlags {
			lt = make([]Var, opt.Length+1)
			gt = make([]Var, opt.Length+1)
		}
		for t := 0; t <= opt.Length; t++ {
			val[t] = make([]Var, r)
			for reg := 0; reg < r; reg++ {
				if t == 0 {
					v := 0
					if reg < n {
						v = ex[reg]
					}
					val[t][reg] = s.NewVar(v, v)
				} else {
					val[t][reg] = s.NewVar(0, n)
				}
			}
			if hasFlags {
				if t == 0 {
					lt[t], gt[t] = s.NewVar(0, 0), s.NewVar(0, 0)
				} else {
					lt[t], gt[t] = s.Binary(), s.Binary()
					s.AddLE(1, Term{1, lt[t]}, Term{1, gt[t]})
				}
			}
		}

		// eqBigM posts |x − y| ≤ M·(k − Σgates): when all gate binaries
		// are 1 and k = #gates, x = y is enforced.
		eqBigM := func(x, y Var, gates ...Var) {
			k := len(gates)
			t1 := []Term{{1, x}, {-1, y}}
			t2 := []Term{{-1, x}, {1, y}}
			for _, g := range gates {
				t1 = append(t1, Term{m, g})
				t2 = append(t2, Term{m, g})
			}
			s.AddLE(m*k, t1...)
			s.AddLE(m*k, t2...)
		}

		for t := 0; t < opt.Length; t++ {
			for i, instr := range instrs {
				g := sel[t][i]
				d, src := int(instr.Dst), int(instr.Src)
				switch instr.Op {
				case isa.Mov:
					eqBigM(val[t+1][d], val[t][src], g)
					for reg := 0; reg < r; reg++ {
						if reg != d {
							eqBigM(val[t+1][reg], val[t][reg], g)
						}
					}
					if hasFlags {
						eqBigM(lt[t+1], lt[t], g)
						eqBigM(gt[t+1], gt[t], g)
					}
				case isa.Cmp:
					for reg := 0; reg < r; reg++ {
						eqBigM(val[t+1][reg], val[t][reg], g)
					}
					a, b := val[t][d], val[t][src]
					// g=1 ∧ lt'=1 → a ≤ b−1 ; g=1 ∧ lt'=0 → a ≥ b.
					s.AddLE(2*m-1, Term{1, a}, Term{-1, b}, Term{m, lt[t+1]}, Term{m, g})
					s.AddLE(m, Term{-1, a}, Term{1, b}, Term{-m, lt[t+1]}, Term{m, g})
					// Same for gt with roles swapped.
					s.AddLE(2*m-1, Term{1, b}, Term{-1, a}, Term{m, gt[t+1]}, Term{m, g})
					s.AddLE(m, Term{-1, b}, Term{1, a}, Term{-m, gt[t+1]}, Term{m, g})
				case isa.Cmovl, isa.Cmovg:
					flag := lt[t]
					if instr.Op == isa.Cmovg {
						flag = gt[t]
					}
					// Activated-command binary z = g · flag (the paper's
					// quadratic-constraint linearization).
					z := s.Binary()
					s.AddLE(0, Term{1, z}, Term{-1, g})
					s.AddLE(0, Term{1, z}, Term{-1, flag})
					s.AddGE(-1, Term{1, z}, Term{-1, g}, Term{-1, flag})
					// z=1 → copy; g=1 ∧ z=0 → keep.
					eqBigM(val[t+1][d], val[t][src], z)
					t1 := []Term{{1, val[t+1][d]}, {-1, val[t][d]}, {m, g}, {-m, z}}
					t2 := []Term{{-1, val[t+1][d]}, {1, val[t][d]}, {m, g}, {-m, z}}
					s.AddLE(m, t1...)
					s.AddLE(m, t2...)
					for reg := 0; reg < r; reg++ {
						if reg != d {
							eqBigM(val[t+1][reg], val[t][reg], g)
						}
					}
					eqBigM(lt[t+1], lt[t], g)
					eqBigM(gt[t+1], gt[t], g)
				case isa.Min, isa.Max:
					a, b := val[t][d], val[t][src]
					out := val[t+1][d]
					if instr.Op == isa.Min {
						// g=1 → out ≤ a, out ≤ b, out ≥ min via selector.
						s.AddLE(m, Term{1, out}, Term{-1, a}, Term{m, g})
						s.AddLE(m, Term{1, out}, Term{-1, b}, Term{m, g})
						w := s.Binary() // w=1 ⇒ out = a
						s.AddGE(-2*m, Term{1, out}, Term{-1, a}, Term{-m, g}, Term{-m, w})
						s.AddGE(-m, Term{1, out}, Term{-1, b}, Term{-m, g}, Term{m, w})
					} else {
						s.AddGE(-m, Term{1, out}, Term{-1, a}, Term{-m, g})
						s.AddGE(-m, Term{1, out}, Term{-1, b}, Term{-m, g})
						w := s.Binary()
						s.AddLE(2*m, Term{1, out}, Term{-1, a}, Term{m, g}, Term{m, w})
						s.AddLE(m, Term{1, out}, Term{-1, b}, Term{m, g}, Term{-m, w})
					}
					for reg := 0; reg < r; reg++ {
						if reg != d {
							eqBigM(val[t+1][reg], val[t][reg], g)
						}
					}
				}
			}
		}

		// Goal "= 123".
		for i := 0; i < n; i++ {
			s.AddEQ(i+1, Term{1, val[opt.Length][i]})
		}
	}

	s.MaxNodes = opt.MaxNodes
	s.Timeout = opt.Timeout
	s.Stop = func() bool { return ctx.Err() != nil }
	res := &Result{Vars: len(s.lo), Cons: len(s.cons)}
	if s.Solve(branch) {
		p := make(isa.Program, opt.Length)
		for t := 0; t < opt.Length; t++ {
			for i := range instrs {
				if s.Value(sel[t][i]) == 1 {
					p[t] = instrs[i]
					break
				}
			}
		}
		res.Program = p
	}
	res.Exhausted = s.Exhausted()
	res.Cancelled = !res.Exhausted && res.Program == nil && ctx.Err() != nil
	res.Nodes = s.Nodes
	res.Elapsed = time.Since(start)
	return res
}
