package ilp

import (
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

func TestBoundsPropagation(t *testing.T) {
	s := NewSolver()
	x := s.NewVar(0, 10)
	y := s.NewVar(0, 10)
	s.AddLE(5, Term{1, x}, Term{1, y}) // x + y ≤ 5
	s.AddGE(4, Term{1, x})             // x ≥ 4
	if !s.propagate() {
		t.Fatal("feasible system reported infeasible")
	}
	if s.hi[y] != 1 {
		t.Errorf("hi(y) = %d, want 1", s.hi[y])
	}
	if s.lo[x] != 4 {
		t.Errorf("lo(x) = %d, want 4", s.lo[x])
	}
}

func TestInfeasibleSystem(t *testing.T) {
	s := NewSolver()
	x := s.NewVar(0, 3)
	s.AddGE(5, Term{1, x})
	if s.propagate() {
		t.Fatal("x ≥ 5 with x ≤ 3 not detected")
	}
}

func TestEqualityChain(t *testing.T) {
	s := NewSolver()
	x := s.NewVar(0, 9)
	y := s.NewVar(0, 9)
	z := s.NewVar(0, 9)
	s.AddEQ(0, Term{1, x}, Term{-1, y})
	s.AddEQ(0, Term{1, y}, Term{-1, z})
	s.AddEQ(7, Term{1, x})
	if !s.Solve([]Var{x, y, z}) {
		t.Fatal("no solution")
	}
	if s.Value(y) != 7 || s.Value(z) != 7 {
		t.Errorf("y=%d z=%d, want 7 7", s.Value(y), s.Value(z))
	}
}

func TestBinaryFeasibility(t *testing.T) {
	// Exactly-one over three binaries plus an exclusion.
	s := NewSolver()
	a, b, c := s.Binary(), s.Binary(), s.Binary()
	s.AddEQ(1, Term{1, a}, Term{1, b}, Term{1, c})
	s.AddEQ(0, Term{1, a})
	s.AddEQ(0, Term{1, c})
	if !s.Solve([]Var{a, b, c}) {
		t.Fatal("no solution")
	}
	if s.Value(b) != 1 {
		t.Error("b must be 1")
	}
}

func TestNegativeCoefficients(t *testing.T) {
	s := NewSolver()
	x := s.NewVar(-5, 5)
	y := s.NewVar(-5, 5)
	s.AddLE(-3, Term{-2, x}, Term{1, y}) // y − 2x ≤ −3
	s.AddEQ(0, Term{1, x})
	if !s.propagate() {
		t.Fatal("infeasible?")
	}
	if s.hi[y] != -3 {
		t.Errorf("hi(y) = %d, want -3", s.hi[y])
	}
}

func TestFloorCeilDiv(t *testing.T) {
	if floorDiv(7, 2) != 3 || floorDiv(-7, 2) != -4 || floorDiv(7, -2) != -4 {
		t.Error("floorDiv wrong")
	}
	if ceilDiv(7, 2) != 4 || ceilDiv(-7, 2) != -3 || ceilDiv(-7, -2) != 4 {
		t.Error("ceilDiv wrong")
	}
}

func TestSynthesizeN2(t *testing.T) {
	// The big-M model should crack the tiny n=2 instance.
	set := isa.NewCmov(2, 1)
	res := Synthesize(set, Options{Length: 4, MaxNodes: 5_000_000, Timeout: 60 * time.Second})
	if res.Program == nil {
		t.Fatalf("n=2 ILP found nothing after %d nodes (%d vars, %d cons)", res.Nodes, res.Vars, res.Cons)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatalf("ILP program does not sort: %s", res.Program.FormatInline(2))
	}
	t.Logf("n=2 ILP: %d nodes, %d vars, %d cons, %v", res.Nodes, res.Vars, res.Cons, res.Elapsed)
}

func TestSynthesizeMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	res := Synthesize(set, Options{Length: 3, MaxNodes: 5_000_000, Timeout: 60 * time.Second})
	if res.Program == nil {
		t.Fatalf("minmax n=2 ILP found nothing after %d nodes", res.Nodes)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("ILP min/max program does not sort")
	}
}

func TestSynthesizeBudgetStop(t *testing.T) {
	// n=3 is expected to be out of reach (the paper's ILP rows all
	// failed); the run must stop at the budget, not claim refutation.
	set := isa.NewCmov(3, 1)
	res := Synthesize(set, Options{Length: 11, MaxNodes: 2000})
	if res.Program != nil {
		if !verify.Sorts(set, res.Program) {
			t.Fatal("found incorrect program")
		}
		return // a miracle, but a correct one
	}
	if res.Exhausted {
		t.Error("budget-limited run claims exhaustive refutation")
	}
}
