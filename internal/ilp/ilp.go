// Package ilp is a small integer-linear-programming solver and the
// big-M formulation of sorting-kernel synthesis from paper §4.2
// (CP-ILP).
//
// The solver does branch-and-bound depth-first search over bounded
// integer variables with interval (bounds) propagation on linear
// constraints — the core mechanism of MIP feasibility search, without an
// LP relaxation (no simplex; the paper's model is a pure feasibility
// problem with no objective, so bound propagation is the operative
// part). The paper reports that none of the ILP formulations solved even
// n = 3; this implementation reproduces the formulation and the failure
// mode honestly under an explicit node/time budget.
package ilp

import (
	"fmt"
	"time"
)

// Var is a variable handle.
type Var int

// Term is coef·var.
type Term struct {
	Coef int
	Var  Var
}

// Op is a constraint relation.
type Op uint8

// Relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

// Constraint is sum(terms) op rhs.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   int
}

// Solver is a bounded-integer feasibility solver.
type Solver struct {
	lo, hi []int
	cons   []Constraint
	watch  [][]int32

	// Budgets (0 = unlimited).
	MaxNodes int64
	Timeout  time.Duration

	// Stop, when non-nil, is polled alongside the deadline check (every
	// 64 nodes); returning true aborts the search with Exhausted() false.
	// This is how callers plumb context cancellation into branch & bound
	// without the solver importing context itself.
	Stop func() bool

	Nodes     int64
	deadline  time.Time
	exhausted bool

	trail    []trailEntry
	trailLim []int
}

type trailEntry struct {
	v      Var
	lo, hi int
}

// NewSolver returns an empty ILP solver.
func NewSolver() *Solver { return &Solver{} }

// NewVar allocates a variable with bounds [lo, hi].
func (s *Solver) NewVar(lo, hi int) Var {
	if lo > hi {
		panic(fmt.Sprintf("ilp: empty bounds [%d,%d]", lo, hi))
	}
	v := Var(len(s.lo))
	s.lo = append(s.lo, lo)
	s.hi = append(s.hi, hi)
	s.watch = append(s.watch, nil)
	return v
}

// Binary allocates a 0/1 variable.
func (s *Solver) Binary() Var { return s.NewVar(0, 1) }

// Add posts a linear constraint.
func (s *Solver) Add(c Constraint) {
	idx := int32(len(s.cons))
	s.cons = append(s.cons, c)
	for _, t := range c.Terms {
		s.watch[t.Var] = append(s.watch[t.Var], idx)
	}
}

// AddLE posts sum(terms) ≤ rhs.
func (s *Solver) AddLE(rhs int, terms ...Term) { s.Add(Constraint{Terms: terms, Op: LE, RHS: rhs}) }

// AddGE posts sum(terms) ≥ rhs.
func (s *Solver) AddGE(rhs int, terms ...Term) { s.Add(Constraint{Terms: terms, Op: GE, RHS: rhs}) }

// AddEQ posts sum(terms) = rhs.
func (s *Solver) AddEQ(rhs int, terms ...Term) { s.Add(Constraint{Terms: terms, Op: EQ, RHS: rhs}) }

// Value returns the assigned value after a successful Solve.
func (s *Solver) Value(v Var) int { return s.lo[v] }

func (s *Solver) setLo(v Var, lo int) bool {
	if lo <= s.lo[v] {
		return true
	}
	s.trail = append(s.trail, trailEntry{v, s.lo[v], s.hi[v]})
	s.lo[v] = lo
	return lo <= s.hi[v]
}

func (s *Solver) setHi(v Var, hi int) bool {
	if hi >= s.hi[v] {
		return true
	}
	s.trail = append(s.trail, trailEntry{v, s.lo[v], s.hi[v]})
	s.hi[v] = hi
	return hi >= s.lo[v]
}

// propagate performs bounds propagation to fixpoint over all constraints.
// Returns false on infeasibility.
func (s *Solver) propagate() bool {
	for changed := true; changed; {
		changed = false
		for ci := range s.cons {
			c := &s.cons[ci]
			ok, ch := s.filterCon(c)
			if !ok {
				return false
			}
			changed = changed || ch
		}
	}
	return true
}

// filterCon tightens bounds from one constraint.
func (s *Solver) filterCon(c *Constraint) (ok, changed bool) {
	// Activity bounds.
	minAct, maxAct := 0, 0
	for _, t := range c.Terms {
		if t.Coef >= 0 {
			minAct += t.Coef * s.lo[t.Var]
			maxAct += t.Coef * s.hi[t.Var]
		} else {
			minAct += t.Coef * s.hi[t.Var]
			maxAct += t.Coef * s.lo[t.Var]
		}
	}
	if (c.Op == LE || c.Op == EQ) && minAct > c.RHS {
		return false, false
	}
	if (c.Op == GE || c.Op == EQ) && maxAct < c.RHS {
		return false, false
	}
	// Tighten each variable.
	for _, t := range c.Terms {
		if t.Coef == 0 {
			continue
		}
		// Contribution bounds of this term.
		var tLo, tHi int
		if t.Coef >= 0 {
			tLo, tHi = t.Coef*s.lo[t.Var], t.Coef*s.hi[t.Var]
		} else {
			tLo, tHi = t.Coef*s.hi[t.Var], t.Coef*s.lo[t.Var]
		}
		restMin, restMax := minAct-tLo, maxAct-tHi
		if c.Op == LE || c.Op == EQ {
			// t.Coef·x ≤ RHS − restMin.
			bound := c.RHS - restMin
			if t.Coef > 0 {
				nh := floorDiv(bound, t.Coef)
				if nh < s.hi[t.Var] {
					if !s.setHi(t.Var, nh) {
						return false, true
					}
					changed = true
				}
			} else {
				nl := ceilDiv(bound, t.Coef)
				if nl > s.lo[t.Var] {
					if !s.setLo(t.Var, nl) {
						return false, true
					}
					changed = true
				}
			}
		}
		if c.Op == GE || c.Op == EQ {
			// t.Coef·x ≥ RHS − restMax.
			bound := c.RHS - restMax
			if t.Coef > 0 {
				nl := ceilDiv(bound, t.Coef)
				if nl > s.lo[t.Var] {
					if !s.setLo(t.Var, nl) {
						return false, true
					}
					changed = true
				}
			} else {
				nh := floorDiv(bound, t.Coef)
				if nh < s.hi[t.Var] {
					if !s.setHi(t.Var, nh) {
						return false, true
					}
					changed = true
				}
			}
		}
		// Refresh activity with possibly tightened bounds.
		if changed {
			minAct, maxAct = 0, 0
			for _, u := range c.Terms {
				if u.Coef >= 0 {
					minAct += u.Coef * s.lo[u.Var]
					maxAct += u.Coef * s.hi[u.Var]
				} else {
					minAct += u.Coef * s.hi[u.Var]
					maxAct += u.Coef * s.lo[u.Var]
				}
			}
		}
	}
	return true, changed
}

func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Solve searches for a feasible integer assignment, branching on the
// given variables in order. Returns true on feasibility; Exhausted
// distinguishes refutation from budget stop.
func (s *Solver) Solve(branch []Var) bool {
	if s.Timeout > 0 {
		s.deadline = time.Now().Add(s.Timeout)
	}
	s.exhausted = true
	if !s.propagate() {
		return false
	}
	return s.dfs(branch)
}

// Exhausted reports whether the last Solve explored the full tree.
func (s *Solver) Exhausted() bool { return s.exhausted }

func (s *Solver) dfs(branch []Var) bool {
	// Pick the first unfixed branch variable; once all branch variables
	// are fixed, finish any auxiliaries propagation left open.
	var v Var = -1
	for _, b := range branch {
		if s.lo[b] != s.hi[b] {
			v = b
			break
		}
	}
	if v < 0 {
		for i := range s.lo {
			if s.lo[i] != s.hi[i] {
				v = Var(i)
				break
			}
		}
	}
	if v < 0 {
		return true
	}
	if s.MaxNodes > 0 && s.Nodes >= s.MaxNodes {
		s.exhausted = false
		return false
	}
	if !s.deadline.IsZero() && s.Nodes%64 == 0 && time.Now().After(s.deadline) {
		s.exhausted = false
		return false
	}
	if s.Stop != nil && s.Nodes%64 == 0 && s.Stop() {
		s.exhausted = false
		return false
	}
	for val := s.lo[v]; val <= s.hi[v]; val++ {
		s.Nodes++
		mark := len(s.trail)
		s.trailLim = append(s.trailLim, mark)
		ok := s.setLo(v, val) && s.setHi(v, val) && s.propagate() && s.dfs(branch)
		if ok {
			return true
		}
		// Undo.
		lim := s.trailLim[len(s.trailLim)-1]
		s.trailLim = s.trailLim[:len(s.trailLim)-1]
		for i := len(s.trail) - 1; i >= lim; i-- {
			e := s.trail[i]
			s.lo[e.v], s.hi[e.v] = e.lo, e.hi
		}
		s.trail = s.trail[:lim]
		if !s.exhausted {
			return false
		}
	}
	return false
}
