package viz

import (
	"strings"
	"testing"
)

func sample() []Series {
	return []Series{
		{Name: "open states", Color: "steelblue", X: []float64{0, 1, 2, 3}, Y: []float64{1, 10, 100, 50}},
		{Name: "solutions & more", Color: "darkorange", X: []float64{0, 1, 2, 3}, Y: []float64{0, 0, 5, 20}},
	}
}

func TestLineChartWellFormed(t *testing.T) {
	var b strings.Builder
	LineChart(&b, "Figure 1", "time", "count", sample())
	svg := b.String()
	for _, want := range []string{"<svg", "</svg>", "<path", "steelblue", "darkorange", "Figure 1", "solutions &amp; more"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
}

func TestScatterWellFormed(t *testing.T) {
	var b strings.Builder
	Scatter(&b, "Figure 2 <tsne>", "x", "y", sample())
	svg := b.String()
	if !strings.Contains(svg, "<circle") {
		t.Error("no points rendered")
	}
	if strings.Contains(svg, "<tsne>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;tsne&gt;") {
		t.Error("escaped title missing")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	CSV(&b, sample())
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines, want 9", len(lines))
	}
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestEmptySeries(t *testing.T) {
	var b strings.Builder
	LineChart(&b, "empty", "x", "y", nil)
	if !strings.Contains(b.String(), "</svg>") {
		t.Error("empty chart not closed")
	}
}

func TestDegenerateRange(t *testing.T) {
	var b strings.Builder
	Scatter(&b, "deg", "x", "y", []Series{{Name: "p", Color: "red", X: []float64{5, 5}, Y: []float64{3, 3}}})
	if strings.Contains(b.String(), "NaN") {
		t.Error("degenerate range produced NaN")
	}
}
