// Package viz renders the paper's figures as SVG files and emits the
// underlying data as CSV: the search-progress curves of Figure 1 and the
// t-SNE scatter of Figure 2.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line or point set.
type Series struct {
	Name  string
	Color string // CSS color
	X, Y  []float64
}

const (
	width   = 760.0
	height  = 460.0
	margin  = 56.0
	plotW   = width - 2*margin
	plotH   = height - 2*margin
	bgStyle = "font-family:sans-serif;font-size:12px"
)

func bounds(series []Series) (x0, x1, y0, y1 float64) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x0 = math.Min(x0, s.X[i])
			x1 = math.Max(x1, s.X[i])
			y0 = math.Min(y0, s.Y[i])
			y1 = math.Max(y1, s.Y[i])
		}
	}
	if math.IsInf(x0, 1) {
		x0, x1, y0, y1 = 0, 1, 0, 1
	}
	if x0 == x1 {
		x1 = x0 + 1
	}
	if y0 == y1 {
		y1 = y0 + 1
	}
	return
}

func project(x, y, x0, x1, y0, y1 float64) (px, py float64) {
	px = margin + (x-x0)/(x1-x0)*plotW
	py = height - margin - (y-y0)/(y1-y0)*plotH
	return
}

// header writes the SVG prolog with axes and title.
func header(w io.Writer, title, xlabel, ylabel string, x0, x1, y0, y1 float64) {
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" style="%s">`+"\n", width, height, bgStyle)
	fmt.Fprintf(w, `<rect width="%g" height="%g" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%g" y="24" text-anchor="middle" font-size="15">%s</text>`+"\n", width/2, escape(title))
	// Axes.
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", margin, margin, margin, height-margin)
	fmt.Fprintf(w, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", width/2, height-12, escape(xlabel))
	fmt.Fprintf(w, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n", height/2, height/2, escape(ylabel))
	// Ticks.
	for i := 0; i <= 4; i++ {
		fx := x0 + (x1-x0)*float64(i)/4
		fy := y0 + (y1-y0)*float64(i)/4
		px, _ := project(fx, y0, x0, x1, y0, y1)
		_, py := project(x0, fy, x0, x1, y0, y1)
		fmt.Fprintf(w, `<text x="%g" y="%g" text-anchor="middle" font-size="10">%s</text>`+"\n", px, height-margin+16, fmtTick(fx))
		fmt.Fprintf(w, `<text x="%g" y="%g" text-anchor="end" font-size="10">%s</text>`+"\n", margin-6, py+4, fmtTick(fy))
	}
}

func fmtTick(v float64) string {
	switch {
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// LineChart renders line series (Figure 1 style).
func LineChart(w io.Writer, title, xlabel, ylabel string, series []Series) {
	x0, x1, y0, y1 := bounds(series)
	header(w, title, xlabel, ylabel, x0, x1, y0, y1)
	for si, s := range series {
		var b strings.Builder
		for i := range s.X {
			px, py := project(s.X[i], s.Y[i], x0, x1, y0, y1)
			if i == 0 {
				fmt.Fprintf(&b, "M%.1f %.1f", px, py)
			} else {
				fmt.Fprintf(&b, " L%.1f %.1f", px, py)
			}
		}
		fmt.Fprintf(w, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", b.String(), s.Color)
		fmt.Fprintf(w, `<text x="%g" y="%g" fill="%s">%s</text>`+"\n", width-margin-140, margin+16*float64(si+1), s.Color, escape(s.Name))
	}
	fmt.Fprintln(w, "</svg>")
}

// Scatter renders point series (Figure 2 style).
func Scatter(w io.Writer, title, xlabel, ylabel string, series []Series) {
	x0, x1, y0, y1 := bounds(series)
	header(w, title, xlabel, ylabel, x0, x1, y0, y1)
	for si, s := range series {
		for i := range s.X {
			px, py := project(s.X[i], s.Y[i], x0, x1, y0, y1)
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s" fill-opacity="0.7"/>`+"\n", px, py, s.Color)
		}
		fmt.Fprintf(w, `<text x="%g" y="%g" fill="%s">%s (%d)</text>`+"\n", width-margin-170, margin+16*float64(si+1), s.Color, escape(s.Name), len(s.X))
	}
	fmt.Fprintln(w, "</svg>")
}

// CSV writes series as long-form CSV (series,x,y).
func CSV(w io.Writer, series []Series) {
	fmt.Fprintln(w, "series,x,y")
	for _, s := range series {
		for i := range s.X {
			fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
}
