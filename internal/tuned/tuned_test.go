package tuned

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// sampleTable is a small but fully realistic two-class table.
func sampleTable() *Table {
	return &Table{
		Entries: map[string]Plan{
			Class{ISA: "cmov", N: 3}.Key(): {
				Ranked: []Candidate{
					{Backend: "enum", WallMS: 1.2, Rounds: 3, OK: true},
					{Backend: "plan", WallMS: 4.5, Rounds: 3, OK: true},
					{Backend: "smt", Rounds: 3, OK: false, Note: "timed-out"},
				},
				StaggerMS: 2.4,
			},
			Class{ISA: "minmax", N: 2, DuplicateSafe: true}.Key(): {
				Ranked:    []Candidate{{Backend: "enum", WallMS: 0.3, Rounds: 3, OK: true}},
				StaggerMS: 0.6,
			},
		},
	}
}

func TestTableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := Write(path, sampleTable()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("version = %d, want %d", got.Version, FormatVersion)
	}
	plan, ok := got.Pick(Class{ISA: "cmov", N: 3})
	if !ok {
		t.Fatal("Pick(cmov n=3) missed")
	}
	if len(plan.Ranked) != 3 || plan.Ranked[0].Backend != "enum" {
		t.Fatalf("plan = %+v, want enum first of 3", plan.Ranked)
	}
	if plan.Stagger() != 2400*time.Microsecond {
		t.Fatalf("stagger = %v, want 2.4ms", plan.Stagger())
	}
	// The "" objective and "shortest" objective are the same class.
	if _, ok := got.Pick(Class{ISA: "cmov", N: 3, Objective: "shortest"}); !ok {
		t.Fatal(`Pick with explicit "shortest" missed the "" entry`)
	}
	if _, ok := got.Pick(Class{ISA: "cmov", N: 9}); ok {
		t.Fatal("Pick(cmov n=9) hit an entry that was never tuned")
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	tab := sampleTable()
	if err := tab.Seal(time.Now()); err != nil {
		t.Fatal(err)
	}
	tab.Version = FormatVersion + 1
	// Reseal the checksum so version skew — not corruption — is what the
	// loader sees first... except Seal pins Version, so patch by hand.
	raw := mustJSON(t, tab)
	raw = []byte(strings.Replace(string(raw), `"version": 1`, `"version": 2`, 1))
	_, err := Parse(raw)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != FormatVersion+1 {
		t.Fatalf("VersionError.Got = %d, want %d", ve.Got, FormatVersion+1)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := Write(path, sampleTable()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bit-flip", func(t *testing.T) {
		flipped := strings.Replace(string(raw), `"wall_ms": 1.2`, `"wall_ms": 1.3`, 1)
		if flipped == string(raw) {
			t.Fatal("test setup: substitution missed")
		}
		_, err := Parse([]byte(flipped))
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *ChecksumError", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Parse(raw[:len(raw)/2]); err == nil {
			t.Fatal("truncated table parsed")
		}
	})
	t.Run("missing-checksum", func(t *testing.T) {
		tab := sampleTable()
		tab.Version = FormatVersion
		_, err := Parse(mustJSON(t, tab))
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *ChecksumError", err)
		}
	})
}

func TestLoadRejectsInvalidTables(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Table)
	}{
		{"no-entries", func(t *Table) { t.Entries = nil }},
		{"empty-ranking", func(t *Table) {
			t.Entries["bad"] = Plan{StaggerMS: 1}
		}},
		{"negative-stagger", func(t *Table) {
			t.Entries["bad"] = Plan{Ranked: []Candidate{{Backend: "enum"}}, StaggerMS: -1}
		}},
		{"nameless-candidate", func(t *Table) {
			t.Entries["bad"] = Plan{Ranked: []Candidate{{WallMS: 1}}}
		}},
		{"negative-wall", func(t *Table) {
			t.Entries["bad"] = Plan{Ranked: []Candidate{{Backend: "enum", WallMS: -1}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := sampleTable()
			tc.mutate(tab)
			if err := tab.Seal(time.Now()); err != nil {
				t.Fatal(err)
			}
			_, err := Parse(mustJSON(t, tab))
			var ie *InvalidError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %v, want *InvalidError", err)
			}
		})
	}
}

func TestClassKey(t *testing.T) {
	cases := []struct {
		class Class
		want  string
	}{
		{Class{ISA: "cmov", N: 3}, "cmov/n=3/dup=false/obj=shortest"},
		{Class{ISA: "minmax", N: 4, DuplicateSafe: true, Objective: "fastest"},
			"minmax/n=4/dup=true/obj=fastest"},
		{Class{ISA: "cmov", N: 2, Objective: "shortest"}, "cmov/n=2/dup=false/obj=shortest"},
	}
	for _, tc := range cases {
		if got := tc.class.Key(); got != tc.want {
			t.Errorf("Key(%+v) = %q, want %q", tc.class, got, tc.want)
		}
	}
}

func TestClassFor(t *testing.T) {
	set := isa.NewCmov(3, 2)
	got := ClassFor(set, backend.Spec{DuplicateSafe: true, Objective: enum.ObjectiveShortest})
	want := Class{ISA: "cmov", N: 3, DuplicateSafe: true, Objective: "shortest"}
	if got != want {
		t.Fatalf("ClassFor = %+v, want %+v", got, want)
	}
}

func TestSchedulerPlan(t *testing.T) {
	members := []string{"enum", "smt", "cp", "plan"}
	set := isa.NewCmov(3, 2)

	t.Run("ranked-then-unmentioned", func(t *testing.T) {
		s := NewScheduler(sampleTable(), members)
		sched, ok := s.Plan(set, backend.Spec{})
		if !ok {
			t.Fatal("Plan missed a tuned class")
		}
		// Table ranks enum, plan, smt; cp is unmentioned and must trail.
		want := []int{0, 3, 1, 2}
		if len(sched.Order) != len(want) {
			t.Fatalf("order = %v, want %v", sched.Order, want)
		}
		for i := range want {
			if sched.Order[i] != want[i] {
				t.Fatalf("order = %v, want %v", sched.Order, want)
			}
		}
		if sched.Stagger != 2400*time.Microsecond {
			t.Fatalf("stagger = %v, want 2.4ms", sched.Stagger)
		}
		if s.Misses() != 0 {
			t.Fatalf("misses = %d, want 0", s.Misses())
		}
	})
	t.Run("untuned-class-misses", func(t *testing.T) {
		s := NewScheduler(sampleTable(), members)
		set5 := isa.NewCmov(5, 3)
		if _, ok := s.Plan(set5, backend.Spec{}); ok {
			t.Fatal("Plan hit an untuned class")
		}
		if s.Misses() != 1 {
			t.Fatalf("misses = %d, want 1", s.Misses())
		}
	})
	t.Run("foreign-names-ignored", func(t *testing.T) {
		tab := sampleTable()
		plan := tab.Entries[Class{ISA: "cmov", N: 3}.Key()]
		plan.Ranked = append([]Candidate{{Backend: "ghost", OK: true}}, plan.Ranked...)
		tab.Entries[Class{ISA: "cmov", N: 3}.Key()] = plan
		s := NewScheduler(tab, members)
		sched, ok := s.Plan(set, backend.Spec{})
		if !ok {
			t.Fatal("Plan missed")
		}
		if sched.Order[0] != 0 {
			t.Fatalf("order = %v, want enum (0) first after ghost is dropped", sched.Order)
		}
	})
	t.Run("all-foreign-degrades", func(t *testing.T) {
		tab := sampleTable()
		tab.Entries[Class{ISA: "cmov", N: 3}.Key()] = Plan{
			Ranked: []Candidate{{Backend: "ghost"}}, StaggerMS: 1,
		}
		s := NewScheduler(tab, members)
		if _, ok := s.Plan(set, backend.Spec{}); ok {
			t.Fatal("Plan scheduled from an all-foreign ranking")
		}
		if s.Misses() != 1 {
			t.Fatalf("misses = %d, want 1", s.Misses())
		}
	})
	t.Run("nil-table-never-plans", func(t *testing.T) {
		s := NewScheduler(nil, members)
		if _, ok := s.Plan(set, backend.Spec{}); ok {
			t.Fatal("nil-table scheduler planned")
		}
	})
}

func mustJSON(t *testing.T, tab *Table) []byte {
	t.Helper()
	raw, err := json.MarshalIndent(tab, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
