package tuned

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzTunedTableLoad holds the loader's failure posture: arbitrary
// bytes — corrupt, truncated, version-skewed, adversarial — must never
// panic, and any table the loader does accept must be internally
// consistent (checksum genuinely matches, semantic validation passes,
// picks are deterministic). A load failure is the degrade-to-race
// signal; a wrong accept would silently misschedule every request in a
// class, which is why the accept path is re-verified here.
func FuzzTunedTableLoad(f *testing.F) {
	// Seed with a sealed valid table and the interesting breakages.
	valid := sampleTable()
	if err := valid.Seal(time.Time{}); err != nil {
		f.Fatal(err)
	}
	raw, err := json.MarshalIndent(valid, "", "\t")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])                       // truncated
	f.Add([]byte(`{}`))                           // empty object
	f.Add([]byte(`{"version":99,"checksum":"x"}`)) // version skew
	f.Add([]byte(`{"version":1,"checksum":"deadbeef","entries":{"k":{"ranked":[{"backend":"enum"}],"stagger_ms":1}}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"checksum":"","entries":null}`))
	f.Add([]byte(`{"version":1,"entries":{"k":{"ranked":[],"stagger_ms":-5}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Parse(data)
		if err != nil {
			if tab != nil {
				t.Fatal("Parse returned both a table and an error")
			}
			return // rejected input: the caller degrades to race-everything
		}
		// Accepted: the table must actually be trustworthy.
		if tab.Version != FormatVersion {
			t.Fatalf("accepted version %d", tab.Version)
		}
		sum, err := tab.checksum()
		if err != nil {
			t.Fatalf("rehash accepted table: %v", err)
		}
		if sum != tab.Checksum {
			t.Fatalf("accepted table with checksum mismatch: recorded %s, computed %s", tab.Checksum, sum)
		}
		if err := tab.validate(); err != nil {
			t.Fatalf("accepted invalid table: %v", err)
		}
		// Picks are deterministic and never fabricate entries.
		for key, plan := range tab.Entries {
			if len(plan.Ranked) == 0 {
				t.Fatalf("accepted empty ranking under %q", key)
			}
			if plan.Stagger() < 0 {
				t.Fatalf("accepted negative stagger under %q", key)
			}
		}
	})
}
