// Package tuned is the offline half of learned portfolio scheduling:
// a versioned, checksummed dispatch table (results/tuned.json) mapping
// spec classes — ISA × n × duplicate-safety × objective — onto ranked
// backend plans with a measured stagger delay.
//
// The table is produced by the autotune harness (`cmd/experiments
// -table=autotune`), which sweeps backend × workers × budget × heuristic
// knobs per class through internal/bench and persists the best-of-K
// timings. At serve time the table is consulted, never recomputed:
// Load validates the format version and the content checksum, Pick
// answers one class, and Scheduler adapts the table to the staggered
// backend.Portfolio. This is the Codish-et-al. shape — precompute the
// per-size decision offline, look it up at use time — applied to engine
// dispatch instead of sorting networks.
//
// Failure posture: a missing, truncated, corrupt, or version-skewed
// table must never take serving down or produce a wrong pick. Load
// returns typed errors for each failure class; callers degrade to the
// race-everything portfolio (see service.Config.TunedPath) and say so
// once. FuzzTunedTableLoad holds the never-panic, never-silently-wrong
// contract.
package tuned

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// FormatVersion is the tuned.json format this package reads and writes.
// Loads of any other version fail with *VersionError: a scheduling
// table is consulted on every request, so a half-understood one is
// worse than none.
const FormatVersion = 1

// Class is one spec equivalence class for dispatch purposes: every
// request with the same ISA, problem size, duplicate-safety, and
// ranking objective is scheduled identically.
type Class struct {
	ISA           string `json:"isa"` // "cmov" or "minmax"
	N             int    `json:"n"`
	DuplicateSafe bool   `json:"duplicate_safe,omitempty"`
	Objective     string `json:"objective,omitempty"` // "" and "shortest" are the same class
}

// Key renders the canonical class key used in Table.Entries.
func (c Class) Key() string {
	obj := c.Objective
	if obj == "" {
		obj = "shortest"
	}
	return fmt.Sprintf("%s/n=%d/dup=%v/obj=%s", c.ISA, c.N, c.DuplicateSafe, obj)
}

// Candidate is one measured configuration inside a class sweep.
type Candidate struct {
	// Backend is the registry name ("enum", "smt", ...). Only names that
	// are Portfolio members participate in dispatch; the sweep may also
	// record knob variants (workers, configs) for the table's audit trail
	// under Sweep.
	Backend string `json:"backend"`
	// WallMS is the best-of-Rounds measured wall time; 0 when !OK.
	WallMS float64 `json:"wall_ms"`
	// Rounds is the best-of-K the measurement ran.
	Rounds int `json:"rounds,omitempty"`
	// OK reports the candidate produced a verified kernel within the
	// sweep budget. Failed candidates rank after every successful one.
	OK bool `json:"ok"`
	// Note carries the sweep knobs behind an audit row ("workers=4",
	// "config=distmax slack=+1") or the failure reason for !OK.
	Note string `json:"note,omitempty"`
}

// Plan is one class's dispatch decision.
type Plan struct {
	// Ranked lists the portfolio members predicted-best-first. Failed
	// candidates come last, so a degenerate class still launches its
	// least-bad member first rather than dropping anyone.
	Ranked []Candidate `json:"ranked"`
	// StaggerMS is the tuned delay between successive launches: long
	// enough that the predicted-best member usually wins alone, short
	// enough that a mispredicted class still falls back quickly.
	StaggerMS float64 `json:"stagger_ms"`
	// Sweep preserves the full knob sweep the ranking was distilled
	// from — workers/config/budget variants that are not themselves
	// portfolio members. Audit trail only; dispatch reads Ranked.
	Sweep []Candidate `json:"sweep,omitempty"`
}

// Table is the persisted dispatch table.
type Table struct {
	Version int    `json:"version"`
	Created string `json:"created,omitempty"` // RFC3339, informational
	// Checksum is the hex SHA-256 of the canonical JSON encoding of the
	// table with this field empty. Load recomputes and compares it, so a
	// truncated or bit-flipped table is rejected before a single pick.
	Checksum string          `json:"checksum"`
	Entries  map[string]Plan `json:"entries"`
}

// VersionError reports a table written under a different format version.
type VersionError struct{ Got int }

func (e *VersionError) Error() string {
	return fmt.Sprintf("tuned: table format version %d, this build reads %d (re-run `experiments -table=autotune`)",
		e.Got, FormatVersion)
}

// ChecksumError reports a table whose content hash does not match its
// recorded checksum: truncation, corruption, or hand-editing.
type ChecksumError struct{ Want, Got string }

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("tuned: table checksum mismatch (recorded %s, computed %s) — corrupt or truncated table",
		e.Want, e.Got)
}

// InvalidError reports a well-formed, checksum-valid table that still
// cannot be trusted to schedule (empty plans, negative delays, ...).
type InvalidError struct{ Reason string }

func (e *InvalidError) Error() string { return "tuned: invalid table: " + e.Reason }

// checksum computes the canonical content hash of t with the Checksum
// field blanked. encoding/json renders map keys sorted, so the encoding
// — and therefore the hash — is deterministic.
func (t *Table) checksum() (string, error) {
	cp := *t
	cp.Checksum = ""
	raw, err := json.Marshal(&cp)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Seal stamps the format version, creation time, and content checksum.
// Write calls it; exposed for tests that build tables by hand.
func (t *Table) Seal(now time.Time) error {
	t.Version = FormatVersion
	if t.Created == "" && !now.IsZero() {
		t.Created = now.UTC().Format(time.RFC3339)
	}
	sum, err := t.checksum()
	if err != nil {
		return err
	}
	t.Checksum = sum
	return nil
}

// validate applies the semantic rules a syntactically valid table must
// still pass before a scheduler may consult it.
func (t *Table) validate() error {
	if len(t.Entries) == 0 {
		return &InvalidError{Reason: "no entries"}
	}
	for key, plan := range t.Entries {
		if len(plan.Ranked) == 0 {
			return &InvalidError{Reason: fmt.Sprintf("entry %q has an empty ranking", key)}
		}
		if plan.StaggerMS < 0 {
			return &InvalidError{Reason: fmt.Sprintf("entry %q has negative stagger %v", key, plan.StaggerMS)}
		}
		for i, cand := range plan.Ranked {
			if cand.Backend == "" {
				return &InvalidError{Reason: fmt.Sprintf("entry %q rank %d names no backend", key, i)}
			}
			if cand.WallMS < 0 {
				return &InvalidError{Reason: fmt.Sprintf("entry %q rank %d has negative wall time", key, i)}
			}
		}
	}
	return nil
}

// Pick returns the class's plan. ok=false means the class was never
// tuned — the caller races everything, exactly as if no table were
// mounted.
func (t *Table) Pick(c Class) (Plan, bool) {
	p, ok := t.Entries[c.Key()]
	return p, ok
}

// Stagger returns the plan's launch delay as a duration.
func (p Plan) Stagger() time.Duration {
	return time.Duration(p.StaggerMS * float64(time.Millisecond))
}

// Parse decodes and fully validates a tuned table from raw bytes:
// syntax, format version, content checksum, then semantic validation —
// in that order, so the error names the outermost problem. It never
// panics, whatever the input.
func Parse(raw []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("tuned: parse table: %w", err)
	}
	if t.Version != FormatVersion {
		return nil, &VersionError{Got: t.Version}
	}
	want := t.Checksum
	if want == "" {
		return nil, &ChecksumError{Want: "(missing)", Got: "unverifiable"}
	}
	got, err := t.checksum()
	if err != nil {
		return nil, fmt.Errorf("tuned: rehash table: %w", err)
	}
	if got != want {
		return nil, &ChecksumError{Want: want, Got: got}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Load reads and validates the table at path.
func Load(path string) (*Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tuned: %w", err)
	}
	return Parse(raw)
}

// Write seals t and writes it atomically (temp + rename), so a crashed
// writer never leaves a half-table where a scheduler could mount it.
func Write(path string, t *Table) error {
	if err := t.Seal(time.Now()); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(t, "", "\t")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tuned-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
