package tuned

import (
	"sync/atomic"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
)

// ClassFor maps a concrete synthesis request onto its dispatch class.
// The class key is built from the same strings the engines themselves
// report (isa.Kind.String, enum.Objective.String), so an autotuned
// table and a live request can never disagree on naming.
func ClassFor(set *isa.Set, spec backend.Spec) Class {
	return Class{
		ISA:           set.Kind.String(),
		N:             set.N,
		DuplicateSafe: spec.DuplicateSafe,
		Objective:     spec.Objective.String(),
	}
}

// Scheduler adapts a tuned Table to backend.Scheduler for a specific
// Portfolio member list. Construct one per portfolio with NewScheduler;
// it is immutable after construction and safe for concurrent use (the
// miss counter is atomic).
type Scheduler struct {
	table *Table
	// rank maps member name → portfolio index, fixed at construction.
	rank    map[string]int
	members []string
	misses  atomic.Int64
}

// NewScheduler binds table to a portfolio whose members (in race order)
// are named members — pass Portfolio.Backends(). A nil table yields a
// scheduler that never plans, i.e. the race-everything degrade path.
func NewScheduler(table *Table, members []string) *Scheduler {
	rank := make(map[string]int, len(members))
	for i, name := range members {
		rank[name] = i
	}
	return &Scheduler{table: table, rank: rank, members: members}
}

// Misses reports how many Plan calls found no tuned entry (and so fell
// back to the plain race). Serving surfaces this in /metrics.
func (s *Scheduler) Misses() int64 { return s.misses.Load() }

// Plan implements backend.Scheduler: look the spec's class up in the
// table and translate the ranked backend names into member indices.
// Members the plan never mentions are appended after the ranked ones as
// last-resort fallbacks — a tuned table reorders and delays engines,
// it never silently drops one. Unknown backend names in the plan are
// ignored (a table tuned against a different portfolio build still
// schedules the members that exist).
func (s *Scheduler) Plan(set *isa.Set, spec backend.Spec) (backend.Schedule, bool) {
	if s == nil || s.table == nil {
		return backend.Schedule{}, false
	}
	plan, ok := s.table.Pick(ClassFor(set, spec))
	if !ok {
		s.misses.Add(1)
		return backend.Schedule{}, false
	}
	order := make([]int, 0, len(s.members))
	used := make([]bool, len(s.members))
	for _, cand := range plan.Ranked {
		idx, known := s.rank[cand.Backend]
		if !known || used[idx] {
			continue
		}
		used[idx] = true
		order = append(order, idx)
	}
	if len(order) == 0 {
		// Every ranked name is foreign to this portfolio: scheduling by
		// this plan would be guesswork, so race everything instead.
		s.misses.Add(1)
		return backend.Schedule{}, false
	}
	for idx := range s.members {
		if !used[idx] {
			order = append(order, idx)
		}
	}
	return backend.Schedule{Order: order, Stagger: plan.Stagger()}, true
}
