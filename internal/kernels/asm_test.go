package kernels

import (
	"strings"
	"testing"

	"sortsynth/internal/isa"
)

func TestAsmX86CmovMatchesPaperListing(t *testing.T) {
	// The paper's §2.1 compare-and-swap snippet:
	//   mov rdi, rax; cmp rbx, rax; cmovl rax, rbx; cmovl rbx, rdi
	set := isa.NewCmov(3, 1)
	p, err := isa.ParseProgram("mov s1 r1; cmp r2 r1; cmovl r1 r2; cmovl r2 s1", 3)
	if err != nil {
		t.Fatal(err)
	}
	asm := AsmX86(set, p)
	for _, want := range []string{
		"mov    rdi, rax",
		"cmp    rbx, rax",
		"cmovl  rax, rbx",
		"cmovl  rbx, rdi",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("missing %q in:\n%s", want, asm)
		}
	}
}

func TestAsmX86MinMaxMatchesPaperListing(t *testing.T) {
	// The paper's §2.1 vector snippet:
	//   movdqa xmm7, xmm0; pminsd xmm0, xmm1; pmaxsd xmm1, xmm7
	set := isa.NewMinMax(3, 1)
	p, err := isa.ParseProgram("mov s1 r1; min r1 r2; max r2 s1", 3)
	if err != nil {
		t.Fatal(err)
	}
	asm := AsmX86(set, p)
	for _, want := range []string{
		"movdqa xmm7, xmm0",
		"pminsd xmm0, xmm1",
		"pmaxsd xmm1, xmm7",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("missing %q in:\n%s", want, asm)
		}
	}
}

func TestAsmX86AllContenders(t *testing.T) {
	// Every frozen kernel renders to non-empty assembly with one line per
	// instruction.
	for n := 3; n <= 5; n++ {
		for _, k := range Contenders(n) {
			if k.Prog == nil {
				continue
			}
			asm := AsmX86(k.Set, k.Prog)
			lines := strings.Count(asm, "\n")
			if lines != len(k.Prog) {
				t.Errorf("%s/%d: %d assembly lines for %d instructions", k.Name, n, lines, len(k.Prog))
			}
		}
	}
}
