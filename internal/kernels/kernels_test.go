package kernels

import (
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/sortnet"
)

// checkSorts verifies a Go kernel on exhaustive small inputs (including
// duplicates) and random values.
func checkSorts(t *testing.T, name string, n int, fn func([]int)) {
	t.Helper()
	// Exhaustive over {0..n}^n: covers all orderings and duplicate
	// patterns.
	total := 1
	for i := 0; i < n; i++ {
		total *= n + 1
	}
	for code := 0; code < total; code++ {
		in := make([]int, n)
		c := code
		for i := range in {
			in[i] = c % (n + 1)
			c /= n + 1
		}
		got := slices.Clone(in)
		fn(got)
		want := slices.Clone(in)
		sort.Ints(want)
		if !slices.Equal(got, want) {
			t.Fatalf("%s failed on %v: got %v, want %v", name, in, got, want)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(20001) - 10000
		}
		got := slices.Clone(in)
		fn(got)
		want := slices.Clone(in)
		sort.Ints(want)
		if !slices.Equal(got, want) {
			t.Fatalf("%s failed on %v: got %v", name, in, got)
		}
	}
}

func TestSort3Kernels(t *testing.T) {
	for _, k := range []struct {
		name string
		fn   func([]int)
	}{
		{"default", Sort3Default},
		{"swap", Sort3Swap},
		{"branchless", Sort3Branchless},
		{"network", Sort3Network},
		{"enum", Sort3Enum},
		{"alphadev", Sort3AlphaDev},
		{"cassioneri", Sort3Cassioneri},
		{"mimicry", Sort3Mimicry},
		{"std", SortStd},
	} {
		checkSorts(t, k.name, 3, k.fn)
	}
}

func TestSort4Kernels(t *testing.T) {
	for _, k := range []struct {
		name string
		fn   func([]int)
	}{
		{"default", Sort4Default},
		{"swap", Sort4Swap},
		{"network", Sort4Network},
		{"branchless", Sort4Branchless},
		{"mimicry", Sort4Mimicry},
	} {
		checkSorts(t, k.name, 4, k.fn)
	}
}

func TestSort5Kernels(t *testing.T) {
	for _, k := range []struct {
		name string
		fn   func([]int)
	}{
		{"default", Sort5Default},
		{"network", Sort5Network},
		{"swap", Sort5Swap},
	} {
		checkSorts(t, k.name, 5, k.fn)
	}
}

func TestInterpretedMatchesNative(t *testing.T) {
	set := isa.NewCmov(3, 1)
	prog := sortnet.Optimal(3).CompileCmov()
	interp := Interpreted(set, prog)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		in := []int{rng.Intn(9) - 4, rng.Intn(9) - 4, rng.Intn(9) - 4}
		a, b := slices.Clone(in), slices.Clone(in)
		interp(a)
		Sort3Network(b)
		if !slices.Equal(a, b) {
			t.Fatalf("interpreted network differs from native on %v: %v vs %v", in, a, b)
		}
	}
}

func TestGoSourceShape(t *testing.T) {
	set := isa.NewCmov(3, 1)
	p, err := isa.ParseProgram("mov s1 r1; cmp r1 r2; cmovl r1 r2; cmovg r2 s1", 3)
	if err != nil {
		t.Fatal(err)
	}
	src := GoSource(set, p, "sortGen")
	for _, want := range []string{
		"func sortGen(a []int)",
		"s1 = r1",
		"lt, gt = r1 < r2, r1 > r2",
		"if lt {",
		"if gt {",
		"a[0], a[1], a[2] = r1, r2, r3",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("GoSource missing %q in:\n%s", want, src)
		}
	}
}

func TestGoSourceMinMax(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	p, _ := isa.ParseProgram("mov s1 r1; min r1 r2; max r2 s1", 2)
	src := GoSource(set, p, "gen")
	if !strings.Contains(src, "if r2 < r1 {") || !strings.Contains(src, "if s1 > r2 {") {
		t.Errorf("min/max lowering wrong:\n%s", src)
	}
}
