// Package kernels collects the sorting kernels compared in the paper's
// evaluation (§5.3, §5.4): synthesized kernels, sorting-network kernels,
// and the hand-written contenders (default, swap, branchless,
// mimicry-style shuffle sort, cassioneri-style min/max sort, std).
//
// Each contender exists in up to two forms:
//
//   - an abstract ISA program (for instruction counting, the static cost
//     model, and interpreted execution), and
//   - a native Go function (for wall-clock benchmarks; written in the
//     conditional-assignment style the Go compiler lowers to CMOVcc on
//     amd64).
//
// The original evaluation benchmarks x86 assembly via inline asm and the
// Google benchmark library; this package is the documented substitution
// (see DESIGN.md §4.6).
package kernels

import (
	"fmt"
	"sort"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// Kernel is one comparison contender.
type Kernel struct {
	Name string
	N    int // array length it sorts
	// Go is the native implementation; it sorts a[:N] in place.
	Go func(a []int)
	// Prog and Set are the abstract form, when the contender has one
	// (pure-Go contenders like std have none).
	Prog isa.Program
	Set  *isa.Set
}

// Interpreted returns a Go function that runs the kernel's ISA program
// through the reference interpreter (used when no native form exists).
func Interpreted(set *isa.Set, p isa.Program) func(a []int) {
	return func(a []int) {
		out := state.RunInts(set, p, a[:set.N])
		copy(a, out)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- n = 3 contenders -------------------------------------------------

// Sort3Default is the paper's "default" algorithm: three conditionals and
// a temporary variable swapping in the memory buffer (branchy).
func Sort3Default(a []int) {
	if a[0] > a[1] {
		t := a[0]
		a[0] = a[1]
		a[1] = t
	}
	if a[1] > a[2] {
		t := a[1]
		a[1] = a[2]
		a[2] = t
	}
	if a[0] > a[1] {
		t := a[0]
		a[0] = a[1]
		a[1] = t
	}
}

// Sort3Swap is the paper's "swap" algorithm: the same comparisons but on
// local variables with swap idioms, which compilers optimize well.
func Sort3Swap(a []int) {
	x, y, z := a[0], a[1], a[2]
	if x > y {
		x, y = y, x
	}
	if y > z {
		y, z = z, y
	}
	if x > y {
		x, y = y, x
	}
	a[0], a[1], a[2] = x, y, z
}

// Sort3Branchless is the paper's "branchless" algorithm: index arithmetic
// with comparisons writes the smallest, middle and largest value directly.
func Sort3Branchless(a []int) {
	x, y, z := a[0], a[1], a[2]
	rx := b2i(x > y) + b2i(x > z)
	ry := b2i(y >= x) + b2i(y > z)
	rz := b2i(z >= x) + b2i(z >= y)
	a[rx], a[ry], a[rz] = x, y, z
}

// Sort3Network is the straightforward implementation of the optimal
// 3-element sorting network with conditional-move style compare-swaps.
func Sort3Network(a []int) {
	x, y, z := a[0], a[1], a[2]
	// CAS(y, z)
	t := y
	if z < y {
		y = z
	}
	if z < t {
		z = t
	}
	// CAS(x, z)
	t = x
	if z < x {
		x = z
	}
	if z < t {
		z = t
	}
	// CAS(x, y)
	t = x
	if y < x {
		x = y
	}
	if y < t {
		y = t
	}
	a[0], a[1], a[2] = x, y, z
}

// Sort3Enum is the native translation of the synthesized 11-instruction
// kernel from paper §2.1 (middle column): one instruction shorter than
// the network kernel. Each conditional assignment lowers to CMOVcc.
func Sort3Enum(a []int) {
	r1, r2, r3 := a[0], a[1], a[2]
	s1 := r1 // mov s1 r1
	// cmp r3 s1; cmovl s1 r3; cmovl r3 r1
	lt := r3 < s1
	if lt {
		s1 = r3
	}
	if lt {
		r3 = r1
	}
	// cmp r2 r3; mov r1 r2; cmovg r2 r3; cmovg r3 r1
	gt := r2 > r3
	r1 = r2
	if gt {
		r2 = r3
	}
	if gt {
		r3 = r1
	}
	// cmp r1 s1; cmovl r2 s1; cmovg r1 s1
	if r1 < s1 {
		r2 = s1
	}
	if r1 > s1 {
		r1 = s1
	}
	a[0], a[1], a[2] = r1, r2, r3
}

// Sort3AlphaDev mirrors the register core of AlphaDev's published sort3
// (Mankowitz et al. 2023): the sorting network with the final
// compare-and-swap fused through the min(A,B,C) observation, saving one
// move. AlphaDev's exact listing includes the memory loads/stores that
// our model deliberately omits (§5.3); this is the documented
// substitution.
func Sort3AlphaDev(a []int) {
	x, y, z := a[0], a[1], a[2]
	// CAS(y, z)
	t := y
	if z < y {
		y = z
	}
	if z < t {
		z = t
	}
	// min/max fold of (x, y) with the saved copy: the AlphaDev trick.
	s := x
	if y < x {
		x = y // x = min(x, y) = min of all three (y = min(y0,z0))
	}
	if s > y {
		y = s
	}
	// CAS(y, z) again places the middle element.
	if z < y {
		t = y
		y = z
		z = t
	}
	a[0], a[1], a[2] = x, y, z
}

// Sort3Cassioneri is a translation of Cassio Neri's branchless sort3
// (arXiv 2307.14503): min/max expression evaluation without flags
// pressure.
func Sort3Cassioneri(a []int) {
	x, y, z := a[0], a[1], a[2]
	mnYZ, mxYZ := y, z
	if z < y {
		mnYZ = z
	}
	if z < y {
		mxYZ = y
	}
	mn := x
	if mnYZ < x {
		mn = mnYZ
	}
	hi := x
	if mnYZ >= x {
		hi = mnYZ
	}
	mid := hi
	if mxYZ < hi {
		mid = mxYZ
	}
	mx := mxYZ
	if hi > mxYZ {
		mx = hi
	}
	a[0], a[1], a[2] = mn, mid, mx
}

// mimicryTable3 maps the three pairwise comparison bits of (a0,a1,a2) to
// the source index of each output position — the scalar emulation of
// mimicry's SIMD shuffle-vector sort.
var mimicryTable3 [8][3]uint8

func init() {
	for i := range mimicryTable3 {
		mimicryTable3[i] = [3]uint8{0, 1, 2}
	}
	// Derive the table from all triples over {0,1,2}; signatures that
	// never occur keep the identity shuffle.
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			for z := 0; z < 3; z++ {
				idx := b2i(x > y) | b2i(y > z)<<1 | b2i(x > z)<<2
				vals := []int{x, y, z}
				ord := []uint8{0, 1, 2}
				sort.SliceStable(ord, func(i, j int) bool { return vals[ord[i]] < vals[ord[j]] })
				mimicryTable3[idx] = [3]uint8{ord[0], ord[1], ord[2]}
			}
		}
	}
}

// Sort3Mimicry emulates the mimicry shuffle-vector approach: compute a
// comparison signature, look up a permutation, apply it in one pass.
func Sort3Mimicry(a []int) {
	x, y, z := a[0], a[1], a[2]
	idx := b2i(x > y) | b2i(y > z)<<1 | b2i(x > z)<<2
	p := mimicryTable3[idx]
	v := [3]int{x, y, z}
	a[0], a[1], a[2] = v[p[0]], v[p[1]], v[p[2]]
}

// SortStd sorts with the standard library, the paper's "std" row.
func SortStd(a []int) { sort.Ints(a) }

// --- n = 4 contenders -------------------------------------------------

// Sort4Default is insertion sort with branches.
func Sort4Default(a []int) {
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Sort4Swap sorts four locals with the optimal 5-comparator network using
// swap idioms.
func Sort4Swap(a []int) {
	w, x, y, z := a[0], a[1], a[2], a[3]
	if w > x {
		w, x = x, w
	}
	if y > z {
		y, z = z, y
	}
	if w > y {
		w, y = y, w
	}
	if x > z {
		x, z = z, x
	}
	if x > y {
		x, y = y, x
	}
	a[0], a[1], a[2], a[3] = w, x, y, z
}

// Sort4Network is the conditional-move style optimal 4-network.
func Sort4Network(a []int) {
	w, x, y, z := a[0], a[1], a[2], a[3]
	t := w
	if x < w {
		w = x
	}
	if x < t {
		x = t
	}
	t = y
	if z < y {
		y = z
	}
	if z < t {
		z = t
	}
	t = w
	if y < w {
		w = y
	}
	if y < t {
		y = t
	}
	t = x
	if z < x {
		x = z
	}
	if z < t {
		z = t
	}
	t = x
	if y < x {
		x = y
	}
	if y < t {
		y = t
	}
	a[0], a[1], a[2], a[3] = w, x, y, z
}

// Sort4Branchless ranks every element with comparisons and writes each to
// its position.
func Sort4Branchless(a []int) {
	w, x, y, z := a[0], a[1], a[2], a[3]
	rw := b2i(w > x) + b2i(w > y) + b2i(w > z)
	rx := b2i(x >= w) + b2i(x > y) + b2i(x > z)
	ry := b2i(y >= w) + b2i(y >= x) + b2i(y > z)
	rz := b2i(z >= w) + b2i(z >= x) + b2i(z >= y)
	a[rw], a[rx], a[ry], a[rz] = w, x, y, z
}

// mimicryTable4 is the 6-bit signature → shuffle table for n = 4.
var mimicryTable4 [64][4]uint8

func init() {
	for i := range mimicryTable4 {
		mimicryTable4[i] = [4]uint8{0, 1, 2, 3}
	}
	var rec func(vals []int)
	rec = func(vals []int) {
		if len(vals) == 4 {
			idx := sig4(vals[0], vals[1], vals[2], vals[3])
			ord := []uint8{0, 1, 2, 3}
			sort.SliceStable(ord, func(i, j int) bool { return vals[ord[i]] < vals[ord[j]] })
			mimicryTable4[idx] = [4]uint8{ord[0], ord[1], ord[2], ord[3]}
			return
		}
		for v := 0; v < 4; v++ {
			rec(append(vals, v))
		}
	}
	rec(nil)
}

func sig4(w, x, y, z int) int {
	return b2i(w > x) | b2i(w > y)<<1 | b2i(w > z)<<2 |
		b2i(x > y)<<3 | b2i(x > z)<<4 | b2i(y > z)<<5
}

// Sort4Mimicry is the shuffle-table sort for n = 4.
func Sort4Mimicry(a []int) {
	w, x, y, z := a[0], a[1], a[2], a[3]
	p := mimicryTable4[sig4(w, x, y, z)]
	v := [4]int{w, x, y, z}
	a[0], a[1], a[2], a[3] = v[p[0]], v[p[1]], v[p[2]], v[p[3]]
}

// --- n = 5 contenders -------------------------------------------------

// Sort5Default is insertion sort with branches.
func Sort5Default(a []int) {
	for i := 1; i < 5; i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Sort5Network is the conditional-move style optimal 9-comparator
// 5-network.
func Sort5Network(a []int) {
	v := [5]int{a[0], a[1], a[2], a[3], a[4]}
	cas := func(i, j int) {
		t := v[i]
		if v[j] < v[i] {
			v[i] = v[j]
		}
		if v[j] < t {
			v[j] = t
		}
	}
	cas(0, 1)
	cas(3, 4)
	cas(2, 4)
	cas(2, 3)
	cas(1, 4)
	cas(0, 3)
	cas(0, 2)
	cas(1, 3)
	cas(1, 2)
	a[0], a[1], a[2], a[3], a[4] = v[0], v[1], v[2], v[3], v[4]
}

// Sort5Swap sorts five locals with the optimal network and swap idioms.
func Sort5Swap(a []int) {
	v := [5]int{a[0], a[1], a[2], a[3], a[4]}
	sw := func(i, j int) {
		if v[i] > v[j] {
			v[i], v[j] = v[j], v[i]
		}
	}
	sw(0, 1)
	sw(3, 4)
	sw(2, 4)
	sw(2, 3)
	sw(1, 4)
	sw(0, 3)
	sw(0, 2)
	sw(1, 3)
	sw(1, 2)
	a[0], a[1], a[2], a[3], a[4] = v[0], v[1], v[2], v[3], v[4]
}

// GoSource renders an ISA program as a compilable Go function in the
// conditional-assignment style used by the hand translations above.
// It is used by cmd/genkernels to freeze synthesized kernels into
// native benchmark contenders.
func GoSource(set *isa.Set, p isa.Program, funcName string) string {
	n, m := set.N, set.M
	src := "// " + funcName + " is machine-generated from a synthesized kernel; do not edit.\n"
	src += "func " + funcName + "(a []int) {\n"
	reg := func(r uint8) string {
		if int(r) < n {
			return fmt.Sprintf("r%d", r+1)
		}
		return fmt.Sprintf("s%d", int(r)-n+1)
	}
	decl := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			decl += ", "
		}
		decl += fmt.Sprintf("r%d", i+1)
	}
	vals := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			vals += ", "
		}
		vals += fmt.Sprintf("a[%d]", i)
	}
	src += "\t" + decl + " := " + vals + "\n"
	for i := 0; i < m; i++ {
		src += fmt.Sprintf("\ts%d := 0\n\t_ = s%d\n", i+1, i+1)
	}
	src += "\tlt, gt := false, false\n\t_, _ = lt, gt\n"
	for _, in := range p {
		d, s := reg(in.Dst), reg(in.Src)
		switch in.Op {
		case isa.Mov:
			src += fmt.Sprintf("\t%s = %s\n", d, s)
		case isa.Cmp:
			src += fmt.Sprintf("\tlt, gt = %s < %s, %s > %s\n", d, s, d, s)
		case isa.Cmovl:
			src += fmt.Sprintf("\tif lt {\n\t\t%s = %s\n\t}\n", d, s)
		case isa.Cmovg:
			src += fmt.Sprintf("\tif gt {\n\t\t%s = %s\n\t}\n", d, s)
		case isa.Min:
			src += fmt.Sprintf("\tif %s < %s {\n\t\t%s = %s\n\t}\n", s, d, d, s)
		case isa.Max:
			src += fmt.Sprintf("\tif %s > %s {\n\t\t%s = %s\n\t}\n", s, d, d, s)
		}
	}
	outs := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			outs += ", "
		}
		outs += fmt.Sprintf("r%d", i+1)
	}
	src += "\t" + vals + " = " + outs + "\n}\n"
	return src
}
