package kernels

import (
	"slices"
	"sort"
	"testing"

	"sortsynth/internal/perm"
	"sortsynth/internal/state"
	"sortsynth/internal/verify"
)

func TestContendersSort(t *testing.T) {
	for n := 3; n <= 5; n++ {
		for _, k := range Contenders(n) {
			checkSorts(t, k.Name, n, k.Go)
		}
	}
}

func TestContendersGoMatchesProg(t *testing.T) {
	// Where a contender has both a native function and an abstract
	// program, they must agree on every permutation.
	for n := 3; n <= 5; n++ {
		for _, k := range Contenders(n) {
			if k.Prog == nil {
				continue
			}
			for _, in := range perm.All(n) {
				got := slices.Clone(in)
				k.Go(got)
				want := state.RunInts(k.Set, k.Prog, in)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d %s: Go %v vs program %v on %v", n, k.Name, got, want, in)
				}
			}
		}
	}
}

func TestSynthesizedProgramsAreCorrect(t *testing.T) {
	for n := 3; n <= 5; n++ {
		for _, k := range Contenders(n) {
			if k.Prog == nil {
				continue
			}
			if !verify.Sorts(k.Set, k.Prog) {
				t.Errorf("n=%d %s: embedded program does not sort", n, k.Name)
			}
			// A frozen kernel is emitted as Go with zero-valued scratch
			// variables, so it must pass the arbitrary-integer suite: a
			// program can sort every positive-valued input yet leak the
			// initial scratch 0 on negative ones (the enum_worst kernels
			// read scratch under the same flag that wrote it — statically
			// suspicious, which is why the semantic check is the gate).
			if !verify.SortsDuplicates(k.Set, k.Prog) {
				t.Errorf("n=%d %s: embedded program fails the arbitrary-integer suite", n, k.Name)
			}
		}
	}
}

func TestSynthesizedLengths(t *testing.T) {
	// Optimal lengths from the paper: cmov 11/20/33, min/max 8/15/26.
	want := map[string]int{
		"enum/3": 11, "enum_worst/3": 11, "enum_paper/3": 11, "sort3_minmax/3": 8,
		"enum/4": 20, "enum_worst/4": 20, "sort4_minmax/4": 15,
		"enum/5": 33, "sort5_minmax/5": 26,
	}
	for n := 3; n <= 5; n++ {
		for _, k := range Contenders(n) {
			if k.Prog == nil {
				continue
			}
			key := k.Name + "/" + string(rune('0'+n))
			if w, ok := want[key]; ok && len(k.Prog) != w {
				t.Errorf("%s: %d instructions, want %d", key, len(k.Prog), w)
			}
		}
	}
}

func TestEnumMixMatchesPaperTable(t *testing.T) {
	// §5.3 standalone n=3 table: enum has cmp=3, mov=8 (6 of which are
	// the memory moves we do not model), cmov=6 ⇒ register core
	// cmp=3 mov=2 cmov=6.
	for _, k := range Contenders(3) {
		if k.Name != "enum" {
			continue
		}
		m := verify.Mix(k.Prog)
		if m.Cmp != 3 || m.Mov != 2 || m.CMov != 6 {
			t.Errorf("enum n=3 mix = %v, want cmp=3 mov=2 cmov=6", m)
		}
	}
}

func TestContendersDistinctNames(t *testing.T) {
	for n := 3; n <= 5; n++ {
		seen := map[string]bool{}
		for _, k := range Contenders(n) {
			if seen[k.Name] {
				t.Errorf("n=%d: duplicate contender %q", n, k.Name)
			}
			seen[k.Name] = true
			if k.N != n {
				t.Errorf("n=%d: contender %q has N=%d", n, k.Name, k.N)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	for n := 3; n <= 5; n++ {
		for _, want := range Contenders(n) {
			got, ok := Lookup(want.Name, n)
			if !ok {
				t.Errorf("Lookup(%q, %d) not found", want.Name, n)
				continue
			}
			if got.Name != want.Name || got.N != n {
				t.Errorf("Lookup(%q, %d) = %q/N=%d", want.Name, n, got.Name, got.N)
			}
		}
	}
	if _, ok := Lookup("enum", 7); ok {
		t.Error("Lookup found a contender for n=7")
	}
	if _, ok := Lookup("no_such_kernel", 3); ok {
		t.Error("Lookup found a bogus name")
	}
}

func TestStdMatchesSort(t *testing.T) {
	a := []int{5, -2, 9, 0}
	b := slices.Clone(a)
	SortStd(a)
	sort.Ints(b)
	if !slices.Equal(a, b) {
		t.Error("SortStd differs from sort.Ints")
	}
}
