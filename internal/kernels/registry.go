package kernels

import (
	"fmt"

	"sortsynth/internal/isa"
)

func mustParse(text string, set *isa.Set) isa.Program {
	p, err := isa.ParseProgram(text, set.N)
	if err != nil {
		panic(fmt.Sprintf("kernels: bad embedded program: %v", err))
	}
	return p
}

// Contenders returns the §5.3 comparison field for array length n
// (3, 4 or 5): the synthesized kernels, the network kernel, and the
// hand-written algorithms. Kernels with an abstract program carry it for
// instruction counting and cost-model analysis.
func Contenders(n int) []Kernel {
	cset := isa.NewCmov(n, 1)
	switch n {
	case 3:
		mset := isa.NewMinMax(3, 1)
		return []Kernel{
			{Name: "enum", N: 3, Go: sort3EnumBest, Prog: mustParse(sort3EnumBestProg, cset), Set: cset},
			{Name: "enum_worst", N: 3, Go: sort3EnumWorst, Prog: mustParse(sort3EnumWorstProg, cset), Set: cset},
			{Name: "enum_paper", N: 3, Go: Sort3Enum, Prog: mustParse(paperEnumN3Prog, cset), Set: cset},
			{Name: "sort3_minmax", N: 3, Go: sort3MinMax, Prog: mustParse(sort3MinMaxProg, mset), Set: mset},
			{Name: "network", N: 3, Go: Sort3Network},
			{Name: "alphadev", N: 3, Go: Sort3AlphaDev},
			{Name: "cassioneri", N: 3, Go: Sort3Cassioneri},
			{Name: "mimicry", N: 3, Go: Sort3Mimicry},
			{Name: "branchless", N: 3, Go: Sort3Branchless},
			{Name: "default", N: 3, Go: Sort3Default},
			{Name: "swap", N: 3, Go: Sort3Swap},
			{Name: "std", N: 3, Go: SortStd},
		}
	case 4:
		mset := isa.NewMinMax(4, 1)
		return []Kernel{
			{Name: "enum", N: 4, Go: sort4EnumBest, Prog: mustParse(sort4EnumBestProg, cset), Set: cset},
			{Name: "enum_worst", N: 4, Go: sort4EnumWorst, Prog: mustParse(sort4EnumWorstProg, cset), Set: cset},
			{Name: "sort4_minmax", N: 4, Go: sort4MinMax, Prog: mustParse(sort4MinMaxProg, mset), Set: mset},
			{Name: "network", N: 4, Go: Sort4Network},
			{Name: "mimicry", N: 4, Go: Sort4Mimicry},
			{Name: "branchless", N: 4, Go: Sort4Branchless},
			{Name: "default", N: 4, Go: Sort4Default},
			{Name: "swap", N: 4, Go: Sort4Swap},
			{Name: "std", N: 4, Go: SortStd},
		}
	case 5:
		mset := isa.NewMinMax(5, 1)
		return []Kernel{
			{Name: "enum", N: 5, Go: sort5Enum, Prog: mustParse(sort5EnumProg, cset), Set: cset},
			{Name: "sort5_minmax", N: 5, Go: sort5MinMax, Prog: mustParse(sort5MinMaxProg, mset), Set: mset},
			{Name: "network", N: 5, Go: Sort5Network},
			{Name: "default", N: 5, Go: Sort5Default},
			{Name: "swap", N: 5, Go: Sort5Swap},
			{Name: "std", N: 5, Go: SortStd},
		}
	}
	panic(fmt.Sprintf("kernels: no contenders for n=%d", n))
}

// Lookup returns the contender registered under name for array length n,
// without the caller having to scan Contenders(n). It reports false for
// unknown names and for lengths outside the registry's 3..5 range.
func Lookup(name string, n int) (Kernel, bool) {
	if n < 3 || n > 5 {
		return Kernel{}, false
	}
	for _, k := range Contenders(n) {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// FirstPick returns the frozen shortest-objective kernel for array
// length n (3..5): the first solution the sequential ConfigBest search
// reports, before any uarch re-ranking (cmd/genkernels -first). It is
// deliberately not part of Contenders — the §5.3 field compares the
// model-ranked picks — but backs the shortest-objective sortgen path.
func FirstPick(n int) (Kernel, bool) {
	cset := isa.NewCmov(n, 1)
	switch n {
	case 3:
		return Kernel{Name: "enum_first", N: 3, Go: sort3First, Prog: mustParse(sort3FirstProg, cset), Set: cset}, true
	case 4:
		return Kernel{Name: "enum_first", N: 4, Go: sort4First, Prog: mustParse(sort4FirstProg, cset), Set: cset}, true
	case 5:
		return Kernel{Name: "enum_first", N: 5, Go: sort5First, Prog: mustParse(sort5FirstProg, cset), Set: cset}, true
	}
	return Kernel{}, false
}

// paperEnumN3Prog is the synthesized kernel printed in paper §2.1
// (middle column), mapped rax→r1, rbx→r2, rcx→r3, rdi→s1.
const paperEnumN3Prog = `
mov s1 r1
cmp r3 s1
cmovl s1 r3
cmovl r3 r1
cmp r2 r3
mov r1 r2
cmovg r2 r3
cmovg r3 r1
cmp r1 s1
cmovl r2 s1
cmovg r1 s1
`
