package kernels

import (
	"fmt"
	"strings"

	"sortsynth/internal/isa"
)

// gprNames maps register indices to the x86-64 general-purpose registers
// used in the paper's listings (§2.1: rax, rbx, rcx …, scratch rdi …).
var gprNames = []string{"rax", "rbx", "rcx", "rdx", "r8", "r9", "r10"}
var gprScratch = []string{"rdi", "rsi", "r11"}

// xmmScratch starts the vector scratch registers at xmm7, as in the
// paper's min/max listings.
const xmmScratchBase = 7

// AsmX86 renders a kernel as Intel-syntax x86-64 assembly, the form the
// paper's listings use. Cmov kernels map r1..rn to rax, rbx, … and
// scratch to rdi, rsi, …; min/max kernels map to xmm0..xmm(n−1) with
// scratch from xmm7 and use movdqa/pminsd/pmaxsd (signed 32-bit lanes).
// Loads and stores are deliberately omitted, as in the paper's model
// (§5.3: "we do not synthesize the load and store instructions").
func AsmX86(set *isa.Set, p isa.Program) string {
	var b strings.Builder
	gpr := func(r uint8) string {
		if int(r) < set.N {
			return gprNames[r]
		}
		return gprScratch[int(r)-set.N]
	}
	xmm := func(r uint8) string {
		if int(r) < set.N {
			return fmt.Sprintf("xmm%d", r)
		}
		return fmt.Sprintf("xmm%d", xmmScratchBase+int(r)-set.N)
	}
	for _, in := range p {
		switch in.Op {
		case isa.Mov:
			if set.Kind == isa.KindMinMax {
				fmt.Fprintf(&b, "movdqa %s, %s\n", xmm(in.Dst), xmm(in.Src))
			} else {
				fmt.Fprintf(&b, "mov    %s, %s\n", gpr(in.Dst), gpr(in.Src))
			}
		case isa.Cmp:
			fmt.Fprintf(&b, "cmp    %s, %s\n", gpr(in.Dst), gpr(in.Src))
		case isa.Cmovl:
			fmt.Fprintf(&b, "cmovl  %s, %s\n", gpr(in.Dst), gpr(in.Src))
		case isa.Cmovg:
			fmt.Fprintf(&b, "cmovg  %s, %s\n", gpr(in.Dst), gpr(in.Src))
		case isa.Min:
			fmt.Fprintf(&b, "pminsd %s, %s\n", xmm(in.Dst), xmm(in.Src))
		case isa.Max:
			fmt.Fprintf(&b, "pmaxsd %s, %s\n", xmm(in.Dst), xmm(in.Src))
		}
	}
	return b.String()
}
