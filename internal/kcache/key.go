// Package kcache is the two-tier kernel cache behind sortsynthd: an
// in-memory LRU in front of a content-addressed on-disk store. A
// synthesized kernel is a pure function of (instruction set, n, m,
// search options), so entries are keyed by a canonical hash of exactly
// the option fields that can influence the synthesized artifact, and a
// cached kernel can be served forever.
package kcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// Key identifies one synthesis artifact: the instruction-set
// instantiation plus the search options.
type Key struct {
	ISA string // "cmov" or "minmax"
	N   int    // sorted registers (array length)
	M   int    // scratch registers
	// Backend is the registry name of the synthesizer ("" is
	// normalized to "enum", the historical default). Different
	// backends can produce different (all correct) kernels for the
	// same instance, so the name is part of the content address.
	Backend string
	// Seed disambiguates runs of the randomized backends (stoke,
	// mcts); deterministic backends leave it 0.
	Seed int64
	Opt  enum.Options
}

// KeyFor builds the cache key for an enum synthesis run on set with
// opt (Backend "enum", Seed 0).
func KeyFor(set *isa.Set, opt enum.Options) Key {
	name := "cmov"
	if set.Kind == isa.KindMinMax {
		name = "minmax"
	}
	return Key{ISA: name, N: set.N, M: set.M, Opt: opt}
}

// KeyForBackend builds the cache key for a synthesis run through the
// named registry backend. The enum option fields beyond MaxLen and
// DuplicateSafe do not apply to other backends and stay zero.
func KeyForBackend(set *isa.Set, backendName string, maxLen int, seed int64, duplicateSafe bool) Key {
	name := "cmov"
	if set.Kind == isa.KindMinMax {
		name = "minmax"
	}
	return Key{
		ISA: name, N: set.N, M: set.M,
		Backend: backendName, Seed: seed,
		Opt: enum.Options{MaxLen: maxLen, DuplicateSafe: duplicateSafe},
	}
}

// Canonical returns the canonical text form of the key — the string that
// is hashed for content addressing and stored inside each entry for
// verification on load.
//
// Only artifact-determining fields participate. Execution-only knobs are
// deliberately excluded so that operationally different but semantically
// identical requests share an entry:
//
//   - Timeout, StateBudget, Trace: affect whether the search finishes,
//     not what the finished search produces (sortsynthd never caches an
//     unfinished result);
//   - Workers: the parallel engine's sequential merge preserves the
//     sequential engine's dedup and path-DAG semantics, so the artifact
//     is the same.
//
// Normalizations keep distinct spellings of the same search identical:
// a zero Weight means 1, CutK is meaningless when the cut is off, and
// an empty Backend means "enum".
func (k Key) Canonical() string {
	o := k.Opt
	w := o.Weight
	if w == 0 {
		w = 1
	}
	cutK := o.CutK
	if o.Cut == enum.CutNone {
		cutK = 0
	}
	be := k.Backend
	if be == "" {
		be = "enum"
	}
	return fmt.Sprintf(
		"v2|backend=%s|seed=%d|isa=%s|n=%d|m=%d|heur=%d|w=%s|cut=%d|k=%s|dist=%t|guide=%t|erase=%t|maxlen=%d|all=%t|maxsols=%d|dupsafe=%t",
		be, k.Seed,
		k.ISA, k.N, k.M,
		o.Heuristic,
		strconv.FormatFloat(w, 'g', -1, 64),
		o.Cut,
		strconv.FormatFloat(cutK, 'g', -1, 64),
		o.UseDistPrune, o.UseActionGuide, o.ViabilityErase,
		o.MaxLen,
		o.AllSolutions, o.MaxSolutions,
		o.DuplicateSafe,
	)
}

// Hash returns the hex SHA-256 of the canonical key: the entry's content
// address, used as both the LRU map key and the on-disk file name.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}
