// Package kcache is the two-tier kernel cache behind sortsynthd: an
// in-memory LRU in front of a content-addressed on-disk store. A
// synthesized kernel is a pure function of (instruction set, n, m,
// search options), so entries are keyed by a canonical hash of exactly
// the option fields that can influence the synthesized artifact, and a
// cached kernel can be served forever.
package kcache

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// Key identifies one synthesis artifact: the instruction-set
// instantiation plus the search options.
type Key struct {
	ISA string // "cmov" or "minmax"
	N   int    // sorted registers (array length)
	M   int    // scratch registers
	// Backend is the registry name of the synthesizer ("" is
	// normalized to "enum", the historical default). Different
	// backends can produce different (all correct) kernels for the
	// same instance, so the name is part of the content address.
	Backend string
	// Seed disambiguates runs of the randomized backends (stoke,
	// mcts); deterministic backends leave it 0.
	Seed int64
	Opt  enum.Options
}

// KeyFor builds the cache key for an enum synthesis run on set with
// opt (Backend "enum", Seed 0).
func KeyFor(set *isa.Set, opt enum.Options) Key {
	name := "cmov"
	if set.Kind == isa.KindMinMax {
		name = "minmax"
	}
	return Key{ISA: name, N: set.N, M: set.M, Opt: opt}
}

// KeyForBackend builds the cache key for a synthesis run through the
// named registry backend. The enum option fields beyond MaxLen and
// DuplicateSafe do not apply to other backends and stay zero.
func KeyForBackend(set *isa.Set, backendName string, maxLen int, seed int64, duplicateSafe bool) Key {
	name := "cmov"
	if set.Kind == isa.KindMinMax {
		name = "minmax"
	}
	return Key{
		ISA: name, N: set.N, M: set.M,
		Backend: backendName, Seed: seed,
		Opt: enum.Options{MaxLen: maxLen, DuplicateSafe: duplicateSafe},
	}
}

// KeyVersion is the canonicalization scheme version: the "v3" prefix of
// Canonical. Artifacts that persist keys outside this process (the disk
// tier's version marker, the baked universe header) record it so a
// store written under an older scheme is rejected loudly — with a
// "re-bake" error — instead of silently missing on every lookup.
//
// v3 (this version) appends the synthesis objective and, for
// non-shortest objectives, the uarch profile name; v2 predates
// objectives entirely.
const KeyVersion = 3

// Canonical returns the canonical text form of the key — the string that
// is hashed for content addressing and stored inside each entry for
// verification on load.
//
// Only artifact-determining fields participate. Execution-only knobs are
// deliberately excluded so that operationally different but semantically
// identical requests share an entry:
//
//   - Timeout, StateBudget, Trace: affect whether the search finishes,
//     not what the finished search produces (sortsynthd never caches an
//     unfinished result);
//   - Workers: the parallel engine's sequential merge preserves the
//     sequential engine's dedup and path-DAG semantics, so the artifact
//     is the same;
//   - DisableSWAR: the SWAR and scalar execution layers are defined (and
//     gate-checked by swar-check) to produce byte-identical solution
//     sets and counters, so the toggle cannot influence the artifact.
//
// Normalizations keep distinct spellings of the same search identical:
// a zero Weight means 1, CutK is meaningless when the cut is off, an
// empty Backend means "enum", and the uarch profile is keyed only for
// non-shortest objectives (where it can influence the winner), with
// the default profile's name spelled out (Options.CanonicalProfile).
func (k Key) Canonical() string {
	return string(k.AppendCanonical(make([]byte, 0, canonicalBufSize)))
}

// canonicalBufSize comfortably holds any canonical key with the
// registry's backend names; longer names just spill into the heap.
const canonicalBufSize = 224

// AppendCanonical appends the canonical text form (see Canonical) to b
// and returns the extended slice. With enough capacity in b it performs
// no allocation, which keeps hot-path key hashing (Sum) off the heap.
func (k Key) AppendCanonical(b []byte) []byte {
	o := k.Opt
	w := o.Weight
	if w == 0 {
		w = 1
	}
	cutK := o.CutK
	if o.Cut == enum.CutNone {
		cutK = 0
	}
	be := k.Backend
	if be == "" {
		be = "enum"
	}
	b = append(b, "v3|backend="...)
	b = append(b, be...)
	b = append(b, "|seed="...)
	b = strconv.AppendInt(b, k.Seed, 10)
	b = append(b, "|isa="...)
	b = append(b, k.ISA...)
	b = append(b, "|n="...)
	b = strconv.AppendInt(b, int64(k.N), 10)
	b = append(b, "|m="...)
	b = strconv.AppendInt(b, int64(k.M), 10)
	b = append(b, "|heur="...)
	b = strconv.AppendUint(b, uint64(o.Heuristic), 10)
	b = append(b, "|w="...)
	b = strconv.AppendFloat(b, w, 'g', -1, 64)
	b = append(b, "|cut="...)
	b = strconv.AppendUint(b, uint64(o.Cut), 10)
	b = append(b, "|k="...)
	b = strconv.AppendFloat(b, cutK, 'g', -1, 64)
	b = append(b, "|dist="...)
	b = strconv.AppendBool(b, o.UseDistPrune)
	b = append(b, "|guide="...)
	b = strconv.AppendBool(b, o.UseActionGuide)
	b = append(b, "|erase="...)
	b = strconv.AppendBool(b, o.ViabilityErase)
	b = append(b, "|maxlen="...)
	b = strconv.AppendInt(b, int64(o.MaxLen), 10)
	b = append(b, "|all="...)
	b = strconv.AppendBool(b, o.AllSolutions)
	b = append(b, "|maxsols="...)
	b = strconv.AppendInt(b, int64(o.MaxSolutions), 10)
	b = append(b, "|dupsafe="...)
	b = strconv.AppendBool(b, o.DuplicateSafe)
	b = append(b, "|obj="...)
	b = append(b, o.Objective.String()...)
	b = append(b, "|prof="...)
	b = append(b, o.CanonicalProfile()...)
	return b
}

// Sum returns the raw SHA-256 of the canonical key without allocating:
// the fixed-width content address used by the baked universe index.
func (k Key) Sum() [sha256.Size]byte {
	var buf [canonicalBufSize]byte
	return sha256.Sum256(k.AppendCanonical(buf[:0]))
}

// Hash returns the hex SHA-256 of the canonical key: the entry's content
// address, used as both the LRU map key and the on-disk file name.
func (k Key) Hash() string {
	sum := k.Sum()
	return hex.EncodeToString(sum[:])
}
