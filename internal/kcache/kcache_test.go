package kcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

func testKey(n int) Key {
	opt := enum.ConfigBest()
	opt.MaxLen = 11
	return KeyFor(isa.NewCmov(n, 1), opt)
}

func testEntry() *Entry {
	return &Entry{
		Program:   "mov s1 r1\ncmp r1 r2\n",
		Length:    11,
		Expanded:  4065,
		ElapsedNS: int64(10 * time.Millisecond),
	}
}

func TestMemoryRoundtrip(t *testing.T) {
	c, err := New("", 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if e.Length != 11 || e.Key != key.Canonical() {
		t.Errorf("entry = %+v", e)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 mem hit and 1 miss", st)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := c1.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory has a cold memory tier but
	// must hit on disk.
	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get(key)
	if !ok {
		t.Fatal("disk tier miss")
	}
	if e.Program != testEntry().Program {
		t.Errorf("program = %q", e.Program)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", st)
	}
	// The disk hit is promoted: the next Get is a memory hit.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("miss after promotion")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Errorf("stats = %+v, want 1 mem hit after promotion", st)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 4, 5} {
		if err := c.Put(testKey(n), testEntry()); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
	// The evicted entry (n=3, least recently used) still lives on disk.
	if _, ok := c.Get(testKey(3)); !ok {
		t.Fatal("evicted entry lost from the disk tier")
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want the evicted entry back from disk", st)
	}
}

func entryFile(t *testing.T, dir string, key Key) string {
	t.Helper()
	path := filepath.Join(dir, key.Hash()+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry file: %v", err)
	}
	return path
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := c1.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir, key)

	// Flip a byte inside the stored program text. The JSON still parses,
	// so only the checksum catches it.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(blob), "mov", "vom", 1)
	if mutated == string(blob) {
		t.Fatal("test setup: program text not found in the entry file")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := c2.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want corrupt=1 misses=1", st)
	}
	// The corrupt file is removed so the next Put can heal it.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry file not removed: %v", err)
	}
}

func TestTruncatedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := c.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir, key)
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("truncated entry served as a hit")
	}
}

func TestMisfiledEntryIsAMiss(t *testing.T) {
	// An entry whose payload verifies but belongs to a different key
	// (e.g. a file renamed by hand) must not be served.
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	k3, k4 := testKey(3), testKey(4)
	if err := c.Put(k3, testEntry()); err != nil {
		t.Fatal(err)
	}
	src := entryFile(t, dir, k3)
	dst := filepath.Join(dir, k4.Hash()+".json")
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k4); ok {
		t.Fatal("misfiled entry served under the wrong key")
	}
}

func TestCanonicalNormalization(t *testing.T) {
	set := isa.NewCmov(3, 1)
	base := enum.ConfigBest()
	base.MaxLen = 11

	// Weight 0 and 1 are the same search.
	a, b := base, base
	a.Weight = 0
	b.Weight = 1
	if KeyFor(set, a).Canonical() != KeyFor(set, b).Canonical() {
		t.Error("Weight 0 and 1 canonicalize differently")
	}

	// CutK is irrelevant with the cut disabled.
	a, b = base, base
	a.Cut, a.CutK = enum.CutNone, 0
	b.Cut, b.CutK = enum.CutNone, 7
	if KeyFor(set, a).Canonical() != KeyFor(set, b).Canonical() {
		t.Error("CutK leaks into the key with CutNone")
	}

	// Execution-only knobs do not change the artifact address.
	a, b = base, base
	b.Timeout = time.Minute
	b.Workers = 8
	b.StateBudget = 1 << 40
	b.Trace = &enum.Trace{}
	if KeyFor(set, a).Canonical() != KeyFor(set, b).Canonical() {
		t.Error("execution-only options leak into the key")
	}

	// Artifact-determining fields must change it.
	b = base
	b.DuplicateSafe = true
	if KeyFor(set, base).Canonical() == KeyFor(set, b).Canonical() {
		t.Error("DuplicateSafe does not change the key")
	}
	b = base
	b.MaxLen = 12
	if KeyFor(set, base).Canonical() == KeyFor(set, b).Canonical() {
		t.Error("MaxLen does not change the key")
	}
	if KeyFor(isa.NewCmov(3, 1), base).Hash() == KeyFor(isa.NewMinMax(3, 1), base).Hash() {
		t.Error("isa kind does not change the hash")
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			key := testKey(3 + i%3)
			for j := 0; j < 50; j++ {
				c.Put(key, testEntry())
				c.Get(key)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestVersionMarker(t *testing.T) {
	// A fresh directory is stamped with the current scheme and mounts
	// again without complaint.
	dir := t.TempDir()
	if _, err := New(dir, 4); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, versionMarker))
	if err != nil || strings.TrimSpace(string(blob)) != "3" {
		t.Fatalf("marker = %q, %v; want \"3\"", blob, err)
	}
	if _, err := New(dir, 4); err != nil {
		t.Fatalf("remount of a stamped store: %v", err)
	}

	// A store stamped under an older scheme is rejected loudly.
	old := t.TempDir()
	os.WriteFile(filepath.Join(old, versionMarker), []byte("2\n"), 0o644)
	_, err = New(old, 4)
	var stale *StaleStoreError
	if !asStale(err, &stale) || stale.Found != 2 || stale.Want != KeyVersion {
		t.Fatalf("v2 store: err = %v, want *StaleStoreError{Found: 2}", err)
	}
	if !strings.Contains(err.Error(), "re-bake") {
		t.Errorf("stale error %q should tell the operator to re-bake", err)
	}

	// An unmarked directory that already holds entries predates the
	// marker and is rejected too; Found is 0 ("unmarked").
	pre := t.TempDir()
	os.WriteFile(filepath.Join(pre, "deadbeef.json"), []byte("{}"), 0o644)
	_, err = New(pre, 4)
	if !asStale(err, &stale) || stale.Found != 0 {
		t.Fatalf("pre-marker store: err = %v, want *StaleStoreError{Found: 0}", err)
	}
}

func asStale(err error, target **StaleStoreError) bool {
	s, ok := err.(*StaleStoreError)
	if ok {
		*target = s
	}
	return ok
}
