package kcache

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"sortsynth/internal/enum"
)

// referenceCanonical is the fmt-based formatting the append path
// replaced; the two must stay byte-identical forever, or every persisted
// artifact (disk-tier entries, baked universes) silently misses.
func referenceCanonical(k Key) string {
	o := k.Opt
	w := o.Weight
	if w == 0 {
		w = 1
	}
	cutK := o.CutK
	if o.Cut == enum.CutNone {
		cutK = 0
	}
	be := k.Backend
	if be == "" {
		be = "enum"
	}
	return fmt.Sprintf(
		"v3|backend=%s|seed=%d|isa=%s|n=%d|m=%d|heur=%d|w=%s|cut=%d|k=%s|dist=%t|guide=%t|erase=%t|maxlen=%d|all=%t|maxsols=%d|dupsafe=%t|obj=%s|prof=%s",
		be, k.Seed,
		k.ISA, k.N, k.M,
		o.Heuristic,
		strconv.FormatFloat(w, 'g', -1, 64),
		o.Cut,
		strconv.FormatFloat(cutK, 'g', -1, 64),
		o.UseDistPrune, o.UseActionGuide, o.ViabilityErase,
		o.MaxLen,
		o.AllSolutions, o.MaxSolutions,
		o.DuplicateSafe,
		o.Objective, o.CanonicalProfile(),
	)
}

func testKeys() []Key {
	return []Key{
		{},
		{ISA: "cmov", N: 3, M: 1, Opt: enum.ConfigBest()},
		{ISA: "minmax", N: 5, M: 2, Backend: "smt", Seed: -42,
			Opt: enum.Options{MaxLen: 26}},
		{ISA: "cmov", N: 4, M: 1, Backend: "stoke", Seed: 1 << 60,
			Opt: enum.Options{MaxLen: 20, DuplicateSafe: true}},
		{ISA: "cmov", N: 2, M: 1, Opt: enum.Options{
			Heuristic: enum.HeurPermCount, Weight: 1.5,
			Cut: enum.CutAdditive, CutK: 0.125,
			AllSolutions: true, MaxSolutions: 1000,
		}},
		{ISA: "minmax", N: 3, M: 1, Opt: enum.Options{
			Heuristic: enum.HeurDistMax, Weight: 0.3333333333333333,
			Cut: enum.CutFactor, CutK: 2,
			UseDistPrune: true, ViabilityErase: true, MaxLen: 8,
		}},
		{ISA: "cmov", N: 3, M: 1, Opt: enum.Options{
			MaxLen: 11, Objective: enum.ObjectiveFastest,
		}},
		{ISA: "cmov", N: 3, M: 1, Opt: enum.Options{
			MaxLen: 11, Objective: enum.ObjectiveBalanced, Profile: "little",
		}},
	}
}

func TestCanonicalMatchesReferenceFormatting(t *testing.T) {
	for _, k := range testKeys() {
		want := referenceCanonical(k)
		if got := k.Canonical(); got != want {
			t.Errorf("Canonical drifted from the reference formatting:\n got %q\nwant %q", got, want)
		}
	}
}

func TestSumMatchesHash(t *testing.T) {
	for _, k := range testKeys() {
		sum := k.Sum()
		want := sha256.Sum256([]byte(k.Canonical()))
		if sum != want {
			t.Errorf("Sum() != sha256(Canonical()) for %+v", k)
		}
		if k.Hash() != fmt.Sprintf("%x", sum) {
			t.Errorf("Hash() is not the hex of Sum() for %+v", k)
		}
	}
}

func TestKeyVersionMatchesCanonicalPrefix(t *testing.T) {
	prefix := fmt.Sprintf("v%d|", KeyVersion)
	if c := (Key{}).Canonical(); !strings.HasPrefix(c, prefix) {
		t.Errorf("canonical %q does not start with %q; bump KeyVersion with the scheme", c, prefix)
	}
}

func TestSumDoesNotAllocate(t *testing.T) {
	k := Key{ISA: "cmov", N: 4, M: 1, Opt: enum.ConfigBest()}
	k.Opt.MaxLen = 20
	var sink [sha256.Size]byte
	if allocs := testing.AllocsPerRun(100, func() { sink = k.Sum() }); allocs != 0 {
		t.Errorf("Sum allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}
