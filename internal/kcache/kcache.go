package kcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Entry is one cached synthesis artifact.
type Entry struct {
	// Key is the canonical key string (see Key.Canonical). It is stored
	// with the payload so a loaded entry can be verified against the
	// requested key: a hash collision or a misfiled entry is a miss, not
	// a wrong answer.
	Key string `json:"key"`

	// Backend is the registry name of the synthesizer that produced the
	// kernel ("" on entries predating the backend field means "enum").
	Backend string `json:"backend,omitempty"`

	// NoKernel marks a negative artifact: a completed search proved (or,
	// for non-optimality-preserving configurations, determined) that no
	// kernel exists within the key's length bound. Only the baked
	// universe records negatives — the live cache tiers never store
	// them — so a mounted universe can answer hopeless budgets without
	// re-running the refutation search. Length holds the refuted bound.
	NoKernel bool `json:"no_kernel,omitempty"`

	// Objective names the ranking objective the kernel was picked under
	// ("" on shortest entries, which predate — and are unchanged by —
	// the objective field).
	Objective string `json:"objective,omitempty"`
	// Cost is the winner's primary uarch metric under a non-shortest
	// objective (enum.Result.Cost); 0 on shortest entries.
	Cost float64 `json:"cost,omitempty"`

	// Program is the synthesized kernel in the textual ISA syntax.
	Program string `json:"program"`
	// Programs holds the enumerated kernels in AllSolutions mode.
	Programs []string `json:"programs,omitempty"`
	Length   int      `json:"length"`
	// SolutionCount is the exact optimal-program count (AllSolutions).
	SolutionCount int64 `json:"solution_count"`

	// Original search statistics, kept so cache hits can report what the
	// miss cost.
	Expanded  int64 `json:"expanded"`
	Generated int64 `json:"generated"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// diskEntry is the on-disk envelope: the entry plus an integrity checksum
// over its canonical JSON encoding.
type diskEntry struct {
	Entry Entry  `json:"entry"`
	Sum   string `json:"sum"`
}

func entrySum(e *Entry) (string, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// Stats counts cache outcomes since construction.
type Stats struct {
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	Misses   int64 `json:"misses"`
	// Corrupt counts on-disk entries rejected by the checksum or key
	// verification; each is also counted as a miss.
	Corrupt   int64 `json:"corrupt"`
	Evictions int64 `json:"evictions"`
}

// Cache is the two-tier kernel cache. The memory tier is a bounded LRU;
// the disk tier (optional, dir != "") is unbounded and content-addressed
// by Key.Hash. All methods are safe for concurrent use.
type Cache struct {
	dir string
	cap int

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *lruItem
	items map[string]*list.Element
	stats Stats
}

type lruItem struct {
	hash  string
	entry *Entry
}

// versionMarker is the disk store's key-scheme stamp, written next to
// the entries. A store whose marker disagrees with KeyVersion — or a
// non-empty store predating the marker — fails loudly at mount time:
// every lookup in it would miss silently (the canonical text changed),
// which is indistinguishable from a cold cache until the bill arrives.
const versionMarker = "KEYVERSION"

// New returns a cache holding at most capacity entries in memory
// (capacity <= 0 means 256). dir is the on-disk store directory, created
// if missing; an empty dir disables the disk tier. A directory holding
// entries written under an older key scheme is rejected with a
// StaleStoreError telling the operator to clear it or re-bake.
func New(dir string, capacity int) (*Cache, error) {
	if capacity <= 0 {
		capacity = 256
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("kcache: %w", err)
		}
		if err := checkVersion(dir); err != nil {
			return nil, err
		}
	}
	return &Cache{
		dir:   dir,
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}, nil
}

// StaleStoreError reports a disk store written under a different key
// scheme than this build canonicalizes.
type StaleStoreError struct {
	Dir string
	// Found is the store's recorded key version; 0 means the store
	// predates version markers (necessarily ≤ v2).
	Found int
	Want  int
}

func (e *StaleStoreError) Error() string {
	found := "an unmarked (pre-v3) scheme"
	if e.Found != 0 {
		found = fmt.Sprintf("key scheme v%d", e.Found)
	}
	return fmt.Sprintf("kcache: disk store %s was written under %s, this build canonicalizes v%d — clear the directory or re-bake it",
		e.Dir, found, e.Want)
}

// checkVersion enforces the key-scheme stamp on dir: a fresh (or
// entry-free) directory is stamped with the current KeyVersion; a
// stamped directory must match it; an unstamped directory that already
// holds entries is a pre-marker store and is rejected.
func checkVersion(dir string) error {
	marker := filepath.Join(dir, versionMarker)
	blob, err := os.ReadFile(marker)
	switch {
	case err == nil:
		found, perr := strconv.Atoi(strings.TrimSpace(string(blob)))
		if perr != nil || found != KeyVersion {
			return &StaleStoreError{Dir: dir, Found: found, Want: KeyVersion}
		}
		return nil
	case os.IsNotExist(err):
		entries, gerr := filepath.Glob(filepath.Join(dir, "*.json"))
		if gerr == nil && len(entries) > 0 {
			return &StaleStoreError{Dir: dir, Want: KeyVersion}
		}
		if werr := os.WriteFile(marker, []byte(strconv.Itoa(KeyVersion)+"\n"), 0o644); werr != nil {
			return fmt.Errorf("kcache: %w", werr)
		}
		return nil
	default:
		return fmt.Errorf("kcache: %w", err)
	}
}

// Get returns the cached entry for key, consulting memory first and then
// disk. A disk hit is promoted into the memory tier. Corrupt or misfiled
// disk entries are removed and reported as misses.
func (c *Cache) Get(key Key) (*Entry, bool) {
	canonical := key.Canonical()
	hash := key.Hash()

	c.mu.Lock()
	if el, ok := c.items[hash]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruItem).entry
		c.stats.MemHits++
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()

	e, err := c.loadDisk(hash, canonical)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.stats.Corrupt++
		c.stats.Misses++
		os.Remove(c.path(hash)) // quarantine by deletion; it will be re-synthesized
		return nil, false
	}
	if e == nil {
		c.stats.Misses++
		return nil, false
	}
	c.stats.DiskHits++
	c.insertLocked(hash, e)
	return e, true
}

// Put stores the entry under key in both tiers. The entry's Key field is
// overwritten with the canonical key string.
func (c *Cache) Put(key Key, e *Entry) error {
	e.Key = key.Canonical()
	hash := key.Hash()

	c.mu.Lock()
	c.insertLocked(hash, e)
	c.mu.Unlock()

	if c.dir == "" {
		return nil
	}
	sum, err := entrySum(e)
	if err != nil {
		return fmt.Errorf("kcache: %w", err)
	}
	blob, err := json.MarshalIndent(diskEntry{Entry: *e, Sum: sum}, "", "\t")
	if err != nil {
		return fmt.Errorf("kcache: %w", err)
	}
	// Write-then-rename so readers never observe a torn entry.
	tmp, err := os.CreateTemp(c.dir, "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("kcache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("kcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		return fmt.Errorf("kcache: %w", err)
	}
	return nil
}

// Len returns the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// insertLocked adds or refreshes a memory-tier entry, evicting from the
// LRU tail past capacity. c.mu must be held.
func (c *Cache) insertLocked(hash string, e *Entry) {
	if el, ok := c.items[hash]; ok {
		el.Value.(*lruItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[hash] = c.ll.PushFront(&lruItem{hash: hash, entry: e})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruItem).hash)
		c.stats.Evictions++
	}
}

// loadDisk reads and verifies the on-disk entry for hash. It returns
// (nil, nil) when the disk tier is off or the file does not exist, and a
// non-nil error for unreadable, corrupt, or misfiled entries.
func (c *Cache) loadDisk(hash, canonical string) (*Entry, error) {
	if c.dir == "" {
		return nil, nil
	}
	blob, err := os.ReadFile(c.path(hash))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var de diskEntry
	if err := json.Unmarshal(blob, &de); err != nil {
		return nil, fmt.Errorf("kcache: corrupt entry %s: %w", hash, err)
	}
	sum, err := entrySum(&de.Entry)
	if err != nil {
		return nil, err
	}
	if sum != de.Sum {
		return nil, fmt.Errorf("kcache: checksum mismatch for %s", hash)
	}
	if de.Entry.Key != canonical {
		return nil, fmt.Errorf("kcache: entry %s holds key %q, want %q", hash, de.Entry.Key, canonical)
	}
	return &de.Entry, nil
}
