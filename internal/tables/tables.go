// Package tables precomputes, for every possible single register
// assignment, the length of the shortest program sorting that assignment
// alone (paper §3.1).
//
// The single-assignment space is tiny (at most 3·(n+1)^(n+m) entries), so
// the distances are tabulated once per machine by fixpoint relaxation over
// the instruction step function. The table yields three search
// ingredients:
//
//   - an admissible A* heuristic: max over the assignments of a state of
//     the assignment's distance is a lower bound on the remaining program
//     length (paper §3.1, third heuristic);
//   - the per-assignment viability budget check: if any assignment cannot
//     be sorted within the remaining instruction budget, the partial
//     program cannot be completed (paper §3.3);
//   - the first-optimal-instruction masks that drive the
//     non-optimality-preserving action guide (paper §3.2).
package tables

import (
	"sync"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// Infinite marks assignments that can never be sorted (a value of 1..n was
// erased).
const Infinite = 255

// MaskWords is the number of uint64 words in a first-instruction mask,
// enough for every machine the packed representation supports.
const MaskWords = 3

// Mask is a bitset over the instruction IDs of a machine's instruction
// set.
type Mask [MaskWords]uint64

// Has reports whether instruction id is in the mask.
func (m *Mask) Has(id int) bool { return m[id>>6]&(1<<(id&63)) != 0 }

func (m *Mask) set(id int) { m[id>>6] |= 1 << (id & 63) }

// Or folds other into m.
func (m *Mask) Or(other Mask) {
	for i := range m {
		m[i] |= other[i]
	}
}

// Table holds the precomputed per-assignment data for one machine.
type Table struct {
	m     *state.Machine
	npow  [9]uint32 // (n+1)^i
	base  uint32    // (n+1)^regs
	dist  []uint8
	first []Mask

	// index(a) is linear over the bits of a (each packed field contributes
	// weight(bit)·bitvalue), so it splits into precomputed per-byte
	// lookups — the per-register decomposition loop is far too hot for
	// the search's per-candidate MaxDist and GuideMask calls. The
	// decomposition lives in a state.DistLUT (two 256-entry byte tables
	// plus the high remainder, ~2.5 KB total) so the search's fused
	// apply+prune kernels index it straight out of L1; lut.Dist aliases
	// t.dist once the fixpoint has run.
	lut state.DistLUT
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Table{}
)

// For returns the (cached) table for the machine's instruction set and
// test suite.
func For(m *state.Machine) *Table {
	key := m.Set.String() + "/" + m.Suite.String()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if t, ok := cache[key]; ok {
		return t
	}
	t := build(m)
	cache[key] = t
	return t
}

// index maps a packed assignment to its compact table index via the
// bit-decomposition lookup tables.
func (t *Table) index(a state.Asg) uint32 {
	return t.lut.B0[a&0xFF] + t.lut.B1[a>>8&0xFF] + t.lut.B2[a>>16]
}

// slowIndex is the reference index computation: decompose the packed
// assignment field by field. Used to seed the lookup tables (and by the
// tests as the oracle for index).
func (t *Table) slowIndex(a state.Asg) uint32 {
	regs := t.m.Set.Regs()
	idx := (uint32(t.m.Tag(a))*4 + uint32(a&3)) * t.base
	for i := 0; i < regs; i++ {
		idx += uint32(t.m.Reg(a, i)) * t.npow[i]
	}
	return idx
}

// buildLUT tabulates the per-byte index decomposition. slowIndex is
// linear over disjoint bit fields with slowIndex(0) = 0, so the weight
// of bit b is slowIndex(1<<b) and each byte table is a subset-sum table
// over its bits. Bytes beyond PackedBits contribute only the zero entry
// of their (size-1 or garbage-free) tables, so indexing with any valid
// packed assignment stays in range.
func (t *Table) buildLUT() {
	bits := t.m.PackedBits()
	// B0 and B1 are always full 256-entry tables (the consumers convert
	// them to *[256]uint32 for bounds-check-free indexing); entries for
	// bytes beyond PackedBits stay zero and are never reached by a valid
	// packed assignment.
	bytTab := func(shift int) []uint32 {
		width := min(max(bits-shift, 0), 8)
		tab := make([]uint32, 256)
		for x := 1; x < 1<<width; x++ {
			tab[x] = tab[x&(x-1)] + t.slowIndex(state.Asg(x&-x)<<shift)
		}
		return tab
	}
	t.lut.B0 = bytTab(0)
	t.lut.B1 = bytTab(8)
	// The high remainder keeps its full width (at most PackedBits-16
	// bits, 14 for the largest supported machine).
	hiWidth := max(bits-16, 0)
	t.lut.B2 = make([]uint32, 1<<hiWidth)
	for x := 1; x < len(t.lut.B2); x++ {
		t.lut.B2[x] = t.lut.B2[x&(x-1)] + t.slowIndex(state.Asg(x&-x)<<16)
	}
}

func build(m *state.Machine) *Table {
	set := m.Set
	n, regs := set.N, set.Regs()
	t := &Table{m: m}
	t.npow[0] = 1
	for i := 1; i <= regs; i++ {
		t.npow[i] = t.npow[i-1] * uint32(n+1)
	}
	t.base = t.npow[regs]
	t.buildLUT()
	for i := 0; i < regs; i++ {
		t.lut.RegW[i] = t.npow[i]
	}
	t.lut.FlagW = t.base
	// Flag codes 0..2 used (3 allocated for indexing simplicity), one
	// block per goal tag.
	size := int(t.base) * 4 * m.NumTags()
	t.dist = make([]uint8, size)
	t.lut.Dist = t.dist
	t.first = make([]Mask, size)

	// Enumerate every assignment by odometer over the register values,
	// then seed the fixpoint.
	asgs := make([]state.Asg, 0, int(t.base)*3*m.NumTags())
	vals := make([]int, regs)
	for {
		a := m.Pack(vals, false, false)
		for tag := 0; tag < m.NumTags(); tag++ {
			at := m.WithTag(a, tag)
			for _, fl := range flagCodes(set) {
				asgs = append(asgs, at|state.Asg(fl))
			}
		}
		i := 0
		for i < regs {
			vals[i]++
			if vals[i] <= n {
				break
			}
			vals[i] = 0
			i++
		}
		if i == regs {
			break
		}
	}

	for i := range t.dist {
		t.dist[i] = Infinite
	}
	for _, a := range asgs {
		switch {
		case m.Sorted(a):
			t.dist[t.index(a)] = 0
		case m.Viable(a):
			t.dist[t.index(a)] = Infinite - 1 // unknown yet, finite
		}
	}

	instrs := set.Instrs()
	for changed := true; changed; {
		changed = false
		for _, a := range asgs {
			idx := t.index(a)
			d := t.dist[idx]
			if d == 0 || d == Infinite {
				continue
			}
			best := d
			for _, in := range instrs {
				nd := t.dist[t.index(m.Step(a, in))]
				if nd < Infinite-1 && nd+1 < best {
					best = nd + 1
				}
			}
			if best < d {
				t.dist[idx] = best
				changed = true
			}
		}
	}

	// First-optimal-instruction masks. The paper's action guide restricts
	// the search to instructions that start an optimal completion of some
	// individual assignment (§3.2). For a single assignment, cmp never
	// shortens the completion (data movement alone is optimal), so a guide
	// built literally from the distances would exclude cmp and make the
	// multi-permutation search unsolvable; cmp instructions are therefore
	// always included in the guide mask of flag-carrying machines.
	var cmpMask Mask
	for id, in := range instrs {
		if in.Op == isa.Cmp {
			cmpMask.set(id)
		}
	}
	for _, a := range asgs {
		idx := t.index(a)
		d := t.dist[idx]
		if d == 0 || d >= Infinite-1 {
			continue
		}
		mask := cmpMask
		for id, in := range instrs {
			if nd := t.dist[t.index(m.Step(a, in))]; nd == d-1 {
				mask.set(id)
			}
		}
		t.first[idx] = mask
	}
	return t
}

func flagCodes(set *isa.Set) []uint8 {
	if set.HasFlags() {
		return []uint8{0, 1, 2}
	}
	return []uint8{0}
}

// Dist returns the length of the shortest program sorting assignment a
// alone, or Infinite if a can never be sorted.
func (t *Table) Dist(a state.Asg) int {
	d := t.dist[t.index(a)]
	if d >= Infinite-1 {
		return Infinite
	}
	return int(d)
}

// MaxDist returns the maximum assignment distance in s — an admissible
// lower bound on the number of instructions any completion still needs.
// It returns Infinite if some assignment is dead.
func (t *Table) MaxDist(s state.State) int {
	max := 0
	for _, a := range s {
		d := t.dist[t.index(a)]
		if d >= Infinite-1 {
			return Infinite
		}
		if int(d) > max {
			max = int(d)
		}
	}
	return max
}

// DistLUT exposes the distance table and its byte-wise index
// decomposition for state.ApplyDist and state.ApplyDistSWAR, the
// search's fused apply+prune kernels. The returned value aliases the
// table's storage and must be treated as read-only.
func (t *Table) DistLUT() *state.DistLUT {
	return &t.lut
}

// DistExceeds reports whether any assignment of s is dead or needs more
// than budget further instructions — i.e. whether MaxDist(s) > budget,
// with an early exit on the first offending assignment. budget must be
// below Infinite-1 (the search's depth bound always is), which lets the
// dead markers fall out of the same comparison.
func (t *Table) DistExceeds(s state.State, budget int) bool {
	for _, a := range s {
		if int(t.dist[t.index(a)]) > budget {
			return true
		}
	}
	return false
}

// GuideMask returns the union over the assignments of s of the
// first-optimal-instruction masks (plus all cmp instructions, see build).
func (t *Table) GuideMask(s state.State) Mask {
	var m Mask
	for _, a := range s {
		m.Or(t.first[t.index(a)])
	}
	return m
}
