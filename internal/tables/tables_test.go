package tables

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

func TestDistSortedIsZero(t *testing.T) {
	m := state.NewMachine(isa.NewCmov(3, 1))
	tab := For(m)
	a := m.Pack([]int{1, 2, 3, 2}, true, false)
	if got := tab.Dist(a); got != 0 {
		t.Errorf("Dist(sorted) = %d, want 0", got)
	}
}

func TestDistDeadIsInfinite(t *testing.T) {
	m := state.NewMachine(isa.NewCmov(3, 1))
	tab := For(m)
	// Value 1 erased.
	a := m.Pack([]int{2, 2, 3, 0}, false, false)
	if got := tab.Dist(a); got != Infinite {
		t.Errorf("Dist(dead) = %d, want Infinite", got)
	}
}

func TestViableAssignmentsHaveFiniteDist(t *testing.T) {
	// With one scratch register, every viable assignment can be sorted by
	// data movement alone, so every viable assignment must have a finite
	// distance.
	m := state.NewMachine(isa.NewCmov(3, 1))
	tab := For(m)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		regs := make([]int, 4)
		for i := range regs {
			regs[i] = rng.Intn(4)
		}
		a := m.Pack(regs, false, false)
		d := tab.Dist(a)
		if m.Viable(a) {
			if d == Infinite {
				t.Fatalf("viable assignment %v has infinite distance", regs)
			}
		} else if d != Infinite {
			t.Fatalf("dead assignment %v has finite distance %d", regs, d)
		}
	}
}

func TestDistIsRealizable(t *testing.T) {
	// Property: from any viable assignment, greedily following
	// distance-decreasing instructions reaches a sorted assignment in
	// exactly Dist steps.
	for _, set := range []*isa.Set{isa.NewCmov(3, 1), isa.NewMinMax(3, 1)} {
		m := state.NewMachine(set)
		tab := For(m)
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 200; trial++ {
			regs := make([]int, set.Regs())
			for i := range regs {
				regs[i] = rng.Intn(set.N + 1)
			}
			a := m.Pack(regs, false, false)
			if !m.Viable(a) {
				continue
			}
			d := tab.Dist(a)
			for step := 0; step < d; step++ {
				cur := tab.Dist(a)
				found := false
				for _, in := range set.Instrs() {
					if b := m.Step(a, in); tab.Dist(b) == cur-1 {
						a, found = b, true
						break
					}
				}
				if !found {
					t.Fatalf("%v: no distance-decreasing instruction from %v (dist %d)", set, m.Unpack(a), cur)
				}
			}
			if !m.Sorted(a) {
				t.Fatalf("%v: greedy descent did not sort %v", set, regs)
			}
		}
	}
}

func TestDistLowerBoundProperty(t *testing.T) {
	// Property: applying any instruction changes the distance by at most 1
	// upward from optimal, i.e. dist(s) <= 1 + dist(step(s,i)).
	m := state.NewMachine(isa.NewCmov(3, 1))
	tab := For(m)
	rng := rand.New(rand.NewSource(3))
	instrs := m.Set.Instrs()
	for trial := 0; trial < 1000; trial++ {
		regs := make([]int, 4)
		for i := range regs {
			regs[i] = rng.Intn(4)
		}
		a := m.Pack(regs, false, false)
		if !m.Viable(a) {
			continue
		}
		in := instrs[rng.Intn(len(instrs))]
		b := m.Step(a, in)
		db := tab.Dist(b)
		if db == Infinite {
			continue
		}
		if tab.Dist(a) > 1+db {
			t.Fatalf("triangle inequality violated: dist(%v)=%d, dist(step)=%d", regs, tab.Dist(a), db)
		}
	}
}

func TestMaxDist(t *testing.T) {
	m := state.NewMachine(isa.NewCmov(3, 1))
	tab := For(m)
	init := m.Initial()
	got := tab.MaxDist(init)
	if got <= 0 || got == Infinite {
		t.Fatalf("MaxDist(initial) = %d, want finite positive", got)
	}
	// The admissible bound can never exceed the known optimal length 11.
	if got > 11 {
		t.Errorf("MaxDist(initial) = %d exceeds optimal program length 11", got)
	}
}

func TestGuideMaskIncludesCmpAndOptimalMoves(t *testing.T) {
	set := isa.NewCmov(3, 1)
	m := state.NewMachine(set)
	tab := For(m)
	mask := tab.GuideMask(m.Initial())
	hasCmp, hasMove := false, false
	for id, in := range set.Instrs() {
		if !mask.Has(id) {
			continue
		}
		if in.Op == isa.Cmp {
			hasCmp = true
		} else {
			hasMove = true
		}
	}
	if !hasCmp {
		t.Error("guide mask excludes cmp instructions")
	}
	if !hasMove {
		t.Error("guide mask contains no data-movement instruction")
	}
}

func TestCacheReturnsSameTable(t *testing.T) {
	m := state.NewMachine(isa.NewCmov(3, 1))
	if For(m) != For(m) {
		t.Error("For did not cache the table")
	}
}

func TestMaskOps(t *testing.T) {
	var m Mask
	m.set(3)
	m.set(70)
	if !m.Has(3) || !m.Has(70) || m.Has(4) {
		t.Error("Mask set/has wrong")
	}
	var o Mask
	o.set(100)
	m.Or(o)
	if !m.Has(100) || !m.Has(3) {
		t.Error("Mask Or wrong")
	}
}
