package universe

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/kcache"
)

func testEntry(be string, length int) *kcache.Entry {
	return &kcache.Entry{
		Backend:       be,
		Program:       "cmp r0 r1\nmov r2 r0",
		Length:        length,
		SolutionCount: 1,
		Expanded:      123,
		Generated:     456,
		ElapsedNS:     789,
	}
}

func enumKey(isaName string, n, budget int) kcache.Key {
	return Spec{ISA: isaName, N: n, M: 1, Backend: "enum", Budget: budget}.Key()
}

// writeTestArtifact bakes a tiny hand-made artifact and returns its path
// and the keys written.
func writeTestArtifact(t *testing.T) (string, []kcache.Key) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "u.ssuniv")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := []kcache.Key{
		enumKey("cmov", 2, 4),
		enumKey("minmax", 3, 8),
		kcache.KeyForBackend(Spec{ISA: "cmov", N: 3, M: 1}.Set(), "smt", 11, 0, false),
	}
	for i, k := range keys {
		if err := w.Add(k, testEntry("enum", 4+i)); err != nil {
			t.Fatal(err)
		}
	}
	// One negative record.
	neg := enumKey("cmov", 2, 2)
	if err := w.Add(neg, &kcache.Entry{Backend: "enum", NoKernel: true, Length: 2}); err != nil {
		t.Fatal(err)
	}
	keys = append(keys, neg)
	if _, _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, keys
}

func TestRoundTrip(t *testing.T) {
	path, keys := writeTestArtifact(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
	for i, k := range keys {
		e, ok := s.Lookup(k)
		if !ok {
			t.Fatalf("key %d missed", i)
		}
		if e.Key != k.Canonical() {
			t.Errorf("key %d: entry holds %q, want %q", i, e.Key, k.Canonical())
		}
	}
	// Negative record round-trips with the NoKernel marker.
	if e, ok := s.Lookup(enumKey("cmov", 2, 2)); !ok || !e.NoKernel || e.Length != 2 {
		t.Errorf("negative record = %+v, ok=%v; want NoKernel Length=2 hit", e, ok)
	}
	// An unbaked key is a clean miss.
	if _, ok := s.Lookup(enumKey("cmov", 5, 33)); ok {
		t.Error("unbaked key hit")
	}
	st := s.Stats()
	if st.Hits != int64(len(keys))+1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.VerifyFull(); err != nil {
		t.Errorf("VerifyFull: %v", err)
	}
	if s.ContentID() == "" {
		t.Error("empty content ID")
	}
}

func TestWriterReportsContentID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.ssuniv")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(enumKey("cmov", 2, 4), testEntry("enum", 4)); err != nil {
		t.Fatal(err)
	}
	id, n, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(id) != 64 {
		t.Fatalf("Close = (%q, %d)", id, n)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ContentID() != id {
		t.Errorf("store content ID %s != writer's %s", s.ContentID(), id)
	}
}

func TestWriterRejectsDuplicateKeys(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "u.ssuniv"))
	if err != nil {
		t.Fatal(err)
	}
	k := enumKey("cmov", 2, 4)
	if err := w.Add(k, testEntry("enum", 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(k, testEntry("enum", 4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Close(); err == nil {
		t.Fatal("Close accepted a duplicate key")
	}
}

func TestLookupDoesNotAllocateWhenMemoized(t *testing.T) {
	path, keys := writeTestArtifact(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := keys[0]
	if _, ok := s.Lookup(k); !ok { // warm: decode + memoize
		t.Fatal("warmup lookup missed")
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Lookup(k) }); allocs != 0 {
		t.Errorf("memoized Lookup allocates %.1f objects per call, want 0", allocs)
	}
	// Misses are allocation-free too.
	miss := enumKey("cmov", 5, 33)
	if allocs := testing.AllocsPerRun(100, func() { s.Lookup(miss) }); allocs != 0 {
		t.Errorf("miss Lookup allocates %.1f objects per call, want 0", allocs)
	}
}

func TestOpenRejectsDamage(t *testing.T) {
	path, _ := writeTestArtifact(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad format version", func(b []byte) []byte { b[8+0] ^= 0xff; return b }},
		{"bad key version", func(b []byte) []byte { b[12] ^= 0xff; return b }},
		{"truncated header", func(b []byte) []byte { return b[:headerSize-1] }},
		{"truncated index", func(b []byte) []byte { return b[:len(b)-1] }},
		{"index bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"count overflow", func(b []byte) []byte {
			for i := 16; i < 24; i++ {
				b[i] = 0xff
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "bad.ssuniv")
			mutated := tc.mutate(append([]byte(nil), blob...))
			if err := os.WriteFile(p, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			if s, err := Open(p); err == nil {
				s.Close()
				t.Fatal("Open accepted a damaged artifact")
			}
		})
	}
}

func TestCorruptRecordIsAMissNotAnError(t *testing.T) {
	path, keys := writeTestArtifact(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record payload (right after the
	// header); the index checksum does not cover payloads, so Open
	// succeeds and the damage surfaces lazily.
	blob[headerSize+4] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var hits, corrupt int
	for _, k := range keys {
		if _, ok := s.Lookup(k); ok {
			hits++
		}
	}
	corrupt = int(s.Stats().Corrupt)
	if corrupt != 1 || hits != len(keys)-1 {
		t.Errorf("hits=%d corrupt=%d, want %d hits and 1 corrupt", hits, corrupt, len(keys)-1)
	}
	// The corrupt slot is memoized: a repeat lookup misses without
	// recounting corruption.
	for _, k := range keys {
		s.Lookup(k)
	}
	if got := s.Stats().Corrupt; got != 1 {
		t.Errorf("corrupt recounted: %d", got)
	}
	if err := s.VerifyFull(); err == nil {
		t.Error("VerifyFull missed the damaged record")
	}
}

func TestEnumerateSpecsMirrorsServiceKeys(t *testing.T) {
	specs := EnumerateSpecs(Options{
		ISAs: []string{"cmov"}, MinN: 2, MaxN: 3, Slack: 1,
		Backends: []string{"enum", "smt"}, DuplicateSafe: true,
	})
	// smt: 2 n values × 3 budgets, shortest only. enum: the same 6
	// instances × 2 objectives (shortest, fastest) × 2 dupsafe variants.
	if len(specs) != 30 {
		t.Fatalf("enumerated %d specs, want 30", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		c := sp.Key().Canonical()
		if seen[c] {
			t.Fatalf("duplicate key %s", c)
		}
		seen[c] = true
	}
	// The enum key matches what the service builds for config "best".
	opt := enum.ConfigBest()
	opt.MaxLen = 4
	opt.DuplicateSafe = false
	want := kcache.KeyFor(Spec{ISA: "cmov", N: 2, M: 1}.Set(), opt).Canonical()
	if got := enumKey("cmov", 2, 4).Canonical(); got != want {
		t.Errorf("spec key %q != service key %q", got, want)
	}
}

// TestBakeMini runs a real miniature bake (enum only, n=2, slack 1) and
// checks positives and negatives land where the serving path will look.
func TestBakeMini(t *testing.T) {
	if testing.Short() {
		t.Skip("real synthesis")
	}
	path := filepath.Join(t.TempDir(), "mini.ssuniv")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	id, stats, err := Bake(ctx, path, nil, Options{
		ISAs: []string{"cmov"}, MinN: 2, MaxN: 2, Slack: 1,
		Backends: []string{"enum"}, Workers: 2,
		SpecTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("bake failed specs: %+v", stats)
	}
	if len(id) != 64 {
		t.Fatalf("content ID %q", id)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Optimal budget (L*=4): a kernel of length 4 must be baked.
	e, ok := s.Lookup(enumKey("cmov", 2, 4))
	if !ok || e.NoKernel || e.Length != 4 {
		t.Fatalf("cmov n=2 maxlen=4 = %+v, ok=%v; want length-4 kernel", e, ok)
	}
	// Sub-optimal budget (3 < L*): baked as a negative.
	e, ok = s.Lookup(enumKey("cmov", 2, 3))
	if !ok || !e.NoKernel {
		t.Fatalf("cmov n=2 maxlen=3 = %+v, ok=%v; want baked negative", e, ok)
	}
	if s.ContentID() != id {
		t.Errorf("content ID drifted: %s != %s", s.ContentID(), id)
	}

	// Equal bakes are byte-identical: a second run of the same space —
	// at a different worker count — must produce the same content ID.
	// (Wall clock is deliberately excluded from baked entries; node
	// counts are deterministic per PR 2's stitched parallel merge.)
	path2 := filepath.Join(t.TempDir(), "mini2.ssuniv")
	id2, _, err := Bake(ctx, path2, nil, Options{
		ISAs: []string{"cmov"}, MinN: 2, MaxN: 2, Slack: 1,
		Backends: []string{"enum"}, Workers: 1,
		SpecTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Errorf("equal bakes not byte-identical: %s != %s", id2, id)
	}
}
