package universe

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"

	"sortsynth/internal/kcache"
)

// corruptSentinel marks a record that failed its lazy checksum or key
// verification so subsequent lookups skip it without re-hashing.
var corruptSentinel = new(kcache.Entry)

// Stats counts store outcomes since Open.
type Stats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	Records int64 `json:"records"`
}

// Store is a read-only view of a baked universe artifact. All methods
// are safe for concurrent use; the backing file is memory-mapped where
// the platform supports it and must not be modified while open.
type Store struct {
	path  string
	data  []byte
	unmap func() error

	hdr   header
	index []byte // the index section, length hdr.count*indexEntrySize

	// entries memoizes decoded records (or corruptSentinel) per index
	// position, so each payload is checksummed and unmarshalled at most
	// once per process.
	entries []atomic.Pointer[kcache.Entry]

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
}

// Open maps the artifact at path and validates its header, index
// checksum, index ordering, and record bounds. Record payload checksums
// are deferred to first lookup.
func Open(path string) (*Store, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("universe: %w", err)
	}
	s := &Store{path: path, data: data, unmap: unmap}
	if err := s.validate(); err != nil {
		s.Close()
		return nil, err
	}
	s.entries = make([]atomic.Pointer[kcache.Entry], s.hdr.count)
	return s, nil
}

func (s *Store) validate() error {
	h, err := decodeHeader(s.data)
	if err != nil {
		return err
	}
	size := uint64(len(s.data))
	if h.indexLen != h.count*indexEntrySize {
		return fmt.Errorf("universe: index length %d does not cover %d records", h.indexLen, h.count)
	}
	if h.indexOff < headerSize || h.indexOff > size || h.indexLen > size-h.indexOff {
		return fmt.Errorf("universe: index section [%d,+%d) out of bounds (file %d bytes)", h.indexOff, h.indexLen, size)
	}
	index := s.data[h.indexOff : h.indexOff+h.indexLen]
	if sha256.Sum256(index) != h.indexSum {
		return fmt.Errorf("universe: index checksum mismatch — artifact damaged")
	}
	var prev []byte
	for i := uint64(0); i < h.count; i++ {
		row := index[i*indexEntrySize : (i+1)*indexEntrySize]
		keySum := row[:sha256.Size]
		if prev != nil && bytes.Compare(prev, keySum) >= 0 {
			return fmt.Errorf("universe: index not strictly sorted at record %d", i)
		}
		prev = keySum
		e := decodeIndexEntry(row)
		if e.off < headerSize || e.off > h.indexOff || e.length > h.indexOff-e.off {
			return fmt.Errorf("universe: record %d at [%d,+%d) outside the record section", i, e.off, e.length)
		}
	}
	s.hdr = h
	s.index = index
	return nil
}

// Lookup returns the baked entry for key, or (nil, false). The returned
// entry is shared and must not be mutated. A hit that fails its lazy
// payload checksum or holds a different canonical key is counted as
// corrupt and reported as a miss — the caller falls through to the live
// tiers, never serves a damaged artifact.
//
// The hot path (memoized hit) performs no allocation: the key is hashed
// on the stack and the index is binary-searched in place.
func (s *Store) Lookup(key kcache.Key) (*kcache.Entry, bool) {
	sum := key.Sum()
	i, ok := s.find(sum[:])
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	if e := s.entries[i].Load(); e != nil {
		if e == corruptSentinel {
			s.misses.Add(1)
			return nil, false
		}
		s.hits.Add(1)
		return e, true
	}
	e, err := s.decode(i, key)
	if err != nil {
		s.entries[i].Store(corruptSentinel)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.entries[i].Store(e)
	s.hits.Add(1)
	return e, true
}

// find binary-searches the index for keySum, returning its position.
func (s *Store) find(keySum []byte) (int, bool) {
	lo, hi := 0, int(s.hdr.count)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		row := s.index[mid*indexEntrySize:]
		switch bytes.Compare(row[:sha256.Size], keySum) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

// decode verifies and unmarshals the record at index position i.
func (s *Store) decode(i int, key kcache.Key) (*kcache.Entry, error) {
	ie := decodeIndexEntry(s.index[uint64(i)*indexEntrySize:])
	payload := s.data[ie.off : ie.off+ie.length]
	if sha256.Sum256(payload) != ie.recSum {
		return nil, fmt.Errorf("universe: record %d checksum mismatch", i)
	}
	e := new(kcache.Entry)
	if err := json.Unmarshal(payload, e); err != nil {
		return nil, fmt.Errorf("universe: record %d: %w", i, err)
	}
	if e.Key != key.Canonical() {
		return nil, fmt.Errorf("universe: record %d holds key %q, want %q", i, e.Key, key.Canonical())
	}
	return e, nil
}

// Len returns the number of baked records.
func (s *Store) Len() int { return int(s.hdr.count) }

// Path returns the artifact path the store was opened from.
func (s *Store) Path() string { return s.path }

// Stats returns a snapshot of the lookup counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Records: int64(s.hdr.count),
	}
}

// ContentID returns the artifact's content address: the hex SHA-256 of
// the whole file, as printed by the bake.
func (s *Store) ContentID() string {
	sum := sha256.Sum256(s.data)
	return hex.EncodeToString(sum[:])
}

// VerifyFull eagerly checks every record payload checksum (Open defers
// them). It does not decode payloads or touch the memoization slots.
func (s *Store) VerifyFull() error {
	for i := uint64(0); i < s.hdr.count; i++ {
		ie := decodeIndexEntry(s.index[i*indexEntrySize:])
		if sha256.Sum256(s.data[ie.off:ie.off+ie.length]) != ie.recSum {
			return fmt.Errorf("universe: record %d checksum mismatch", i)
		}
	}
	return nil
}

// Keys calls fn with each baked entry's index position and canonical key
// sum, in index order. Used by bake verification tooling.
func (s *Store) Keys(fn func(i int, keySum [sha256.Size]byte)) {
	for i := uint64(0); i < s.hdr.count; i++ {
		ie := decodeIndexEntry(s.index[i*indexEntrySize:])
		fn(int(i), ie.keySum)
	}
}

// Close unmaps the artifact. The store and any entries already handed
// out that alias the mapping must not be used afterwards (decoded
// entries do not alias; they are safe).
func (s *Store) Close() error {
	if s.unmap == nil {
		return nil
	}
	err := s.unmap()
	s.unmap = nil
	s.data = nil
	s.index = nil
	return err
}

// readFallback loads the whole file into memory when mmap is
// unavailable or fails; the "unmap" is then a no-op.
func readFallback(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
