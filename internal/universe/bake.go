package universe

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/kcache"
)

// Spec is one bakeable synthesis instance. Its Key must be constructed
// exactly the way sortsynthd constructs serving keys, or the baked
// record never hits.
type Spec struct {
	ISA           string // "cmov" or "minmax"
	N             int
	M             int
	Backend       string // registry name
	Budget        int    // MaxLen bound
	DuplicateSafe bool   // enum only: the service rejects it elsewhere
	// Objective selects the ranking objective (enum only — the
	// single-solution backends reject anything but shortest, and
	// EnumerateSpecs never emits it for them).
	Objective enum.Objective
}

// Set instantiates the instruction set for the spec.
func (sp Spec) Set() *isa.Set {
	if sp.ISA == "minmax" {
		return isa.NewMinMax(sp.N, sp.M)
	}
	return isa.NewCmov(sp.N, sp.M)
}

// Key returns the serving cache key for the spec, mirroring
// handleSynthesize: the enum backend keys on the full ConfigBest option
// surface, every other backend on the reduced (name, budget) form.
func (sp Spec) Key() kcache.Key {
	if sp.Backend == "enum" {
		opt := enum.ConfigBest()
		opt.MaxLen = sp.Budget
		opt.DuplicateSafe = sp.DuplicateSafe
		opt.Objective = sp.Objective
		return kcache.KeyFor(sp.Set(), opt)
	}
	return kcache.KeyForBackend(sp.Set(), sp.Backend, sp.Budget, 0, false)
}

func (sp Spec) String() string {
	s := fmt.Sprintf("%s/%s n=%d m=%d maxlen=%d", sp.Backend, sp.ISA, sp.N, sp.M, sp.Budget)
	if sp.DuplicateSafe {
		s += " dupsafe"
	}
	if sp.Objective != enum.ObjectiveShortest {
		s += " obj=" + sp.Objective.String()
	}
	return s
}

// DeterministicBackends lists the registry backends whose artifact is a
// pure function of the spec — the only ones worth baking. The
// randomized backends (stoke, mcts, portfolio) key on a seed and would
// only ever hit for the exact seed baked.
func DeterministicBackends() []string {
	return []string{"enum", "smt", "cp", "ilp", "plan"}
}

// Options configures a bake. The zero value is completed by defaults():
// both ISAs, n=2..5, m=1, budgets L*±2, the deterministic backends,
// duplicate-safe variants on, one worker, 60s per spec.
type Options struct {
	ISAs     []string
	MinN     int
	MaxN     int
	Slack    int // budgets span [L*-Slack, L*+Slack]
	Backends []string
	// DuplicateSafe also bakes the duplicate-safe variant of every enum
	// spec (the service accepts the knob only for enum).
	DuplicateSafe bool
	// Objectives lists the ranking objectives baked for every enum spec
	// (nil = shortest and fastest). Non-enum backends are always baked
	// shortest-only — they reject anything else.
	Objectives []enum.Objective
	// Workers is the number of specs synthesized concurrently.
	Workers int
	// SpecTimeout bounds each synthesis; a spec that exceeds it is
	// skipped (and counted), not failed — the live tier still covers it.
	SpecTimeout time.Duration
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

func (o Options) defaults() Options {
	if len(o.ISAs) == 0 {
		o.ISAs = []string{"cmov", "minmax"}
	}
	if o.MinN == 0 {
		o.MinN = 2
	}
	if o.MaxN == 0 {
		o.MaxN = 5
	}
	if o.Slack == 0 {
		o.Slack = 2
	}
	if len(o.Backends) == 0 {
		o.Backends = DeterministicBackends()
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.SpecTimeout == 0 {
		o.SpecTimeout = 60 * time.Second
	}
	if len(o.Objectives) == 0 {
		o.Objectives = []enum.Objective{enum.ObjectiveShortest, enum.ObjectiveFastest}
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// optimalLength mirrors service.knownOptimalLength (and the root
// package's KnownOptimalLength, unimportable from internal/ without a
// cycle): certified optimal kernel lengths for m=1.
func optimalLength(isaName string, n, m int) (int, bool) {
	if m != 1 {
		return 0, false
	}
	var table map[int]int
	if isaName == "minmax" {
		table = map[int]int{2: 3, 3: 8, 4: 15, 5: 26}
	} else {
		table = map[int]int{2: 4, 3: 11, 4: 20, 5: 33}
	}
	l, ok := table[n]
	return l, ok
}

// EnumerateSpecs produces the deterministic, duplicate-free spec list a
// bake covers under opt. Exported so verification tooling (bake-check)
// walks exactly the baked space.
func EnumerateSpecs(opt Options) []Spec {
	opt = opt.defaults()
	var specs []Spec
	for _, isaName := range opt.ISAs {
		for n := opt.MinN; n <= opt.MaxN; n++ {
			lstar, ok := optimalLength(isaName, n, 1)
			if !ok {
				continue
			}
			for _, be := range opt.Backends {
				for budget := lstar - opt.Slack; budget <= lstar+opt.Slack; budget++ {
					if budget < 1 {
						continue
					}
					// Non-enum backends reject every objective but
					// shortest; baking one would just record the error.
					objectives := []enum.Objective{enum.ObjectiveShortest}
					if be == "enum" {
						objectives = opt.Objectives
					}
					for _, obj := range objectives {
						specs = append(specs, Spec{ISA: isaName, N: n, M: 1, Backend: be, Budget: budget, Objective: obj})
						if opt.DuplicateSafe && be == "enum" {
							specs = append(specs, Spec{ISA: isaName, N: n, M: 1, Backend: be, Budget: budget, DuplicateSafe: true, Objective: obj})
						}
					}
				}
			}
		}
	}
	return specs
}

// BakeStats summarizes a bake.
type BakeStats struct {
	Specs    int // enumerated
	Baked    int // positive records written
	Negative int // refutation records written
	Skipped  int // timed out or inconclusive — left to the live tier
	Failed   int // synthesis errors
}

// result is one worker's outcome for a spec.
type result struct {
	spec  Spec
	entry *kcache.Entry // nil when skipped or failed
	err   error
}

// Bake synthesizes every spec in opt's space through the registry's
// central verification (backend.Run) and writes the artifact to path
// atomically (temp file + rename). Failed specs do not abort the bake;
// they are counted in Stats.Failed and the caller decides. The returned
// contentID is the artifact's hex SHA-256.
func Bake(ctx context.Context, path string, registry *backend.Registry, opt Options) (contentID string, stats BakeStats, err error) {
	opt = opt.defaults()
	if registry == nil {
		registry = backend.Default()
	}
	specs := EnumerateSpecs(opt)
	stats.Specs = len(specs)

	jobs := make(chan Spec)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range jobs {
				e, err := bakeOne(ctx, registry, sp, opt)
				results <- result{spec: sp, entry: e, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, sp := range specs {
			select {
			case jobs <- sp:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	collected := make([]result, 0, len(specs))
	for r := range results {
		switch {
		case r.err != nil:
			stats.Failed++
			opt.Log("FAIL %s: %v", r.spec, r.err)
		case r.entry == nil:
			stats.Skipped++
			opt.Log("skip %s", r.spec)
		case r.entry.NoKernel:
			stats.Negative++
			opt.Log("none %s", r.spec)
		default:
			stats.Baked++
			opt.Log("bake %s: length %d", r.spec, r.entry.Length)
		}
		if r.entry != nil {
			collected = append(collected, r)
		}
	}
	if ctx.Err() != nil {
		return "", stats, ctx.Err()
	}
	// Deterministic write order (the index re-sorts by key sum anyway,
	// but a stable record section keeps equal bakes byte-identical).
	sort.Slice(collected, func(i, j int) bool {
		return collected[i].spec.Key().Canonical() < collected[j].spec.Key().Canonical()
	})

	tmp := path + ".tmp"
	w, err := Create(tmp)
	if err != nil {
		return "", stats, err
	}
	defer os.Remove(tmp)
	for _, r := range collected {
		if err := w.Add(r.spec.Key(), r.entry); err != nil {
			w.Close()
			return "", stats, err
		}
	}
	contentID, _, err = w.Close()
	if err != nil {
		return "", stats, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", stats, fmt.Errorf("universe: %w", err)
	}
	opt.Log("wrote %s: %d records (%d kernels, %d refutations), content %s",
		filepath.Base(path), stats.Baked+stats.Negative, stats.Baked, stats.Negative, contentID[:12])
	return contentID, stats, nil
}

// bakeOne synthesizes one spec. It returns (nil, nil) for outcomes the
// universe cannot speak for: timeouts and non-enum budget exhaustion.
func bakeOne(ctx context.Context, registry *backend.Registry, sp Spec, opt Options) (*kcache.Entry, error) {
	ctx, cancel := context.WithTimeout(ctx, opt.SpecTimeout)
	defer cancel()

	set := sp.Set()
	res, err := registry.Synthesize(ctx, sp.Backend, set, backend.Spec{
		MaxLen:        sp.Budget,
		DuplicateSafe: sp.DuplicateSafe,
		Objective:     sp.Objective,
	})
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case backend.StatusFound:
		// ElapsedNS is deliberately not recorded: wall clock is the one
		// run-dependent field, and dropping it keeps equal bakes
		// byte-identical (same content ID), so replicas can compare
		// artifacts by hash. A universe hit therefore reports search_ms 0
		// — no search ran for this request.
		sc := res.Solutions
		if sc == 0 {
			sc = 1 // single-solution run: the one program it returned
		}
		var objName string
		if sp.Objective != enum.ObjectiveShortest {
			objName = sp.Objective.String()
		}
		return &kcache.Entry{
			Backend:       sp.Backend,
			Objective:     objName,
			Cost:          res.Cost,
			Program:       res.Program.Format(set.N),
			Length:        res.Length,
			SolutionCount: sc,
			Expanded:      res.Stats.Nodes,
			Generated:     res.Stats.Generated,
		}, nil
	case backend.StatusNoProgram:
		// A completed refutation: no kernel within the budget.
		return &kcache.Entry{Backend: sp.Backend, NoKernel: true, Length: sp.Budget}, nil
	case backend.StatusExhausted:
		// The live enum path treats any completed empty-handed search as
		// "no kernel within the bound" (runSearch: Length < 0 →
		// noKernelError), even when cuts void the exhaustion proof — so a
		// baked negative reproduces the exact live answer. Other backends
		// map exhaustion to a non-cacheable 422 and make no claim.
		if sp.Backend == "enum" {
			return &kcache.Entry{Backend: sp.Backend, NoKernel: true, Length: sp.Budget}, nil
		}
		return nil, nil
	default: // StatusTimedOut, StatusCancelled
		// A per-spec timeout is a skip; a bake-wide cancel is an error.
		if ctx.Err() == context.Canceled {
			return nil, ctx.Err()
		}
		return nil, nil
	}
}
