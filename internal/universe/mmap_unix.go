//go:build unix

package universe

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. Empty files and mmap failures
// (exotic filesystems, resource limits) fall back to reading the file
// into memory — the store works either way, the mapping is an
// optimization for sharing page cache across replicas.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 || int64(int(size)) != size {
		return readFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFallback(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
