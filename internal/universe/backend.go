package universe

import (
	"context"
	"fmt"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
)

// storeBackend adapts a Store to the backend.Backend interface so the
// conformance harness can judge baked records against ground truth with
// the same rules as a live engine. It answers only for specs the
// artifact covers (enum-keyed, the spec's exact budget and
// duplicate-safe flag); everything else is StatusExhausted — a
// no-claim outcome the judge ignores.
type storeBackend struct {
	store *Store
}

// AsBackend wraps the store as a read-only synthesis backend named
// "universe". Found results replay the baked program, so routing them
// through backend.Run re-verifies every served kernel centrally;
// NoKernel records surface as StatusNoProgram and are held to the
// refutation-soundness rule.
func AsBackend(s *Store) backend.Backend { return &storeBackend{store: s} }

func (b *storeBackend) Name() string { return "universe" }

func (b *storeBackend) Synthesize(ctx context.Context, set *isa.Set, spec backend.Spec) (*backend.Result, error) {
	sp := Spec{
		ISA:           set.Kind.String(),
		N:             set.N,
		M:             set.M,
		Backend:       "enum",
		Budget:        spec.MaxLen,
		DuplicateSafe: spec.DuplicateSafe,
	}
	e, ok := b.store.Lookup(sp.Key())
	if !ok {
		// Not baked (or a corrupt record): the universe makes no claim.
		return &backend.Result{Backend: "universe", Status: backend.StatusExhausted, Length: -1}, nil
	}
	if e.NoKernel {
		return &backend.Result{Backend: "universe", Status: backend.StatusNoProgram, Length: e.Length}, nil
	}
	p, err := isa.ParseProgram(e.Program, set.N)
	if err != nil {
		return nil, fmt.Errorf("universe: baked record for %s does not parse: %w", sp, err)
	}
	return &backend.Result{
		Backend: "universe",
		Status:  backend.StatusFound,
		Program: p,
		Length:  e.Length,
	}, nil
}
