//go:build !unix

package universe

// mapFile reads the file into memory on platforms without a usable
// mmap; see mmap_unix.go for the mapped path.
func mapFile(path string) ([]byte, func() error, error) {
	return readFallback(path)
}
