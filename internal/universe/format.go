// Package universe is the precomputed serving tier below sortsynthd's
// two-tier kernel cache: an immutable, versioned, checksummed,
// content-addressed artifact holding every synthesis result in a
// reachable spec space, baked offline by cmd/sortsynth-bake and served
// read-only (memory-mapped where the platform allows) so a replica
// starts with zero warmup and the hot path never searches at all.
//
// Artifact layout (all integers little-endian):
//
//	header   96 bytes   magic "ssuniv01", format version, kcache key
//	                    version, record count, index offset/length,
//	                    SHA-256 of the index section
//	records  variable   concatenated record payloads, each the compact
//	                    JSON encoding of a kcache.Entry (canonical key
//	                    inside, so a loaded record re-verifies against
//	                    the requested key exactly like the disk tier)
//	index    n×80 bytes sorted fixed-width entries: SHA-256 of the
//	                    canonical key, record offset, record length,
//	                    SHA-256 of the record payload
//
// The index is validated eagerly at Open (cheap: tens of kilobytes);
// record payload checksums are validated lazily on first lookup, so
// opening a large artifact costs one mmap plus one pass over the index.
// The artifact's content address is the SHA-256 of the whole file.
package universe

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"sortsynth/internal/kcache"
)

const (
	// magic opens every universe artifact; the trailing digits are the
	// format version's first line of defense against foreign files.
	magic = "ssuniv01"

	// formatVersion is the layout version of this file format.
	formatVersion = 1

	headerSize     = 96
	indexEntrySize = sha256.Size + 8 + 8 + sha256.Size // keySum, off, len, recSum
)

// header is the decoded fixed-size artifact header.
type header struct {
	format     uint32
	keyVersion uint32
	count      uint64
	indexOff   uint64
	indexLen   uint64
	indexSum   [sha256.Size]byte
}

func (h *header) encode() [headerSize]byte {
	var b [headerSize]byte
	copy(b[0:8], magic)
	binary.LittleEndian.PutUint32(b[8:12], h.format)
	binary.LittleEndian.PutUint32(b[12:16], h.keyVersion)
	binary.LittleEndian.PutUint64(b[16:24], h.count)
	binary.LittleEndian.PutUint64(b[24:32], h.indexOff)
	binary.LittleEndian.PutUint64(b[32:40], h.indexLen)
	copy(b[40:72], h.indexSum[:])
	return b
}

func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("universe: file too short for a header (%d bytes)", len(b))
	}
	if string(b[0:8]) != magic {
		return h, fmt.Errorf("universe: bad magic %q (not a universe artifact)", b[0:8])
	}
	h.format = binary.LittleEndian.Uint32(b[8:12])
	if h.format != formatVersion {
		return h, fmt.Errorf("universe: format version %d, this build reads %d", h.format, formatVersion)
	}
	h.keyVersion = binary.LittleEndian.Uint32(b[12:16])
	if h.keyVersion != kcache.KeyVersion {
		return h, fmt.Errorf("universe: artifact baked under key scheme v%d, this build canonicalizes v%d — re-bake",
			h.keyVersion, kcache.KeyVersion)
	}
	h.count = binary.LittleEndian.Uint64(b[16:24])
	h.indexOff = binary.LittleEndian.Uint64(b[24:32])
	h.indexLen = binary.LittleEndian.Uint64(b[32:40])
	copy(h.indexSum[:], b[40:72])
	return h, nil
}

// indexEntry is one decoded index row.
type indexEntry struct {
	keySum [sha256.Size]byte
	off    uint64
	length uint64
	recSum [sha256.Size]byte
}

func (e *indexEntry) encode() [indexEntrySize]byte {
	var b [indexEntrySize]byte
	copy(b[0:32], e.keySum[:])
	binary.LittleEndian.PutUint64(b[32:40], e.off)
	binary.LittleEndian.PutUint64(b[40:48], e.length)
	copy(b[48:80], e.recSum[:])
	return b
}

func decodeIndexEntry(b []byte) indexEntry {
	var e indexEntry
	copy(e.keySum[:], b[0:32])
	e.off = binary.LittleEndian.Uint64(b[32:40])
	e.length = binary.LittleEndian.Uint64(b[40:48])
	copy(e.recSum[:], b[48:80])
	return e
}

// Writer streams records into a new universe artifact. Records may be
// added in any order; Close sorts the index, rejects duplicate keys,
// writes index and header, and returns the artifact's content address.
type Writer struct {
	f     *os.File
	off   uint64
	index []indexEntry
	err   error
}

// Create opens path for writing and reserves the header. An existing
// file is truncated.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("universe: %w", err)
	}
	// Header placeholder; rewritten with real values in Close.
	var zero [headerSize]byte
	if _, err := f.Write(zero[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("universe: %w", err)
	}
	return &Writer{f: f, off: headerSize}, nil
}

// Add appends one record under key. The entry's Key field is overwritten
// with the canonical key string, mirroring kcache.Cache.Put.
func (w *Writer) Add(key kcache.Key, e *kcache.Entry) error {
	if w.err != nil {
		return w.err
	}
	e.Key = key.Canonical()
	payload, err := json.Marshal(e)
	if err != nil {
		return w.fail(fmt.Errorf("universe: %w", err))
	}
	if _, err := w.f.Write(payload); err != nil {
		return w.fail(fmt.Errorf("universe: %w", err))
	}
	w.index = append(w.index, indexEntry{
		keySum: key.Sum(),
		off:    w.off,
		length: uint64(len(payload)),
		recSum: sha256.Sum256(payload),
	})
	w.off += uint64(len(payload))
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = err
	return err
}

// Close sorts and writes the index, fills in the header, syncs, and
// returns the content address (hex SHA-256 of the finished file) and the
// record count. The writer is unusable afterwards.
func (w *Writer) Close() (contentID string, count int, err error) {
	defer w.f.Close()
	if w.err != nil {
		return "", 0, w.err
	}
	sort.Slice(w.index, func(i, j int) bool {
		return bytes.Compare(w.index[i].keySum[:], w.index[j].keySum[:]) < 0
	})
	for i := 1; i < len(w.index); i++ {
		if w.index[i].keySum == w.index[i-1].keySum {
			return "", 0, fmt.Errorf("universe: duplicate key in bake (sum %x)", w.index[i].keySum[:8])
		}
	}
	indexSum := sha256.New()
	for i := range w.index {
		row := w.index[i].encode()
		if _, err := w.f.Write(row[:]); err != nil {
			return "", 0, fmt.Errorf("universe: %w", err)
		}
		indexSum.Write(row[:])
	}
	h := header{
		format:     formatVersion,
		keyVersion: kcache.KeyVersion,
		count:      uint64(len(w.index)),
		indexOff:   w.off,
		indexLen:   uint64(len(w.index)) * indexEntrySize,
	}
	indexSum.Sum(h.indexSum[:0])
	hb := h.encode()
	if _, err := w.f.WriteAt(hb[:], 0); err != nil {
		return "", 0, fmt.Errorf("universe: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return "", 0, fmt.Errorf("universe: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return "", 0, fmt.Errorf("universe: %w", err)
	}
	content := sha256.New()
	if _, err := io.Copy(content, w.f); err != nil {
		return "", 0, fmt.Errorf("universe: %w", err)
	}
	return hex.EncodeToString(content.Sum(nil)), len(w.index), nil
}
