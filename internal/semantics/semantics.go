// Package semantics gives sorting kernels a denotational reading: it
// symbolically executes a kernel and yields, for every output register,
// a min/max/ite expression over the input values — the representation in
// which the paper explains why synthesized kernels beat sorting networks
// (§2.1: the final block of the 11-instruction kernel computes
//
//	rbx = ite(b > min(a,c), min(b, max(a,c)), min(a,c))
//	rax = min(b, min(a,c))
//
// and removing the spare move "requires semantical reasoning on
// min/max/ite expressions", e.g. the identity
// min(a, min(b,c)) = min(min(max(c,b), a), min(b,c))).
//
// Expressions are hash-consed for compact printing; equivalence is
// decided by evaluation over all weak orderings of the inputs, which is
// sound and complete for this constant-free expression language.
package semantics

import (
	"fmt"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

// Op is an expression node kind.
type Op uint8

// Expression node kinds.
const (
	OpVar Op = iota // input value (Index selects which)
	OpMin           // min(A, B)
	OpMax           // max(A, B)
	// OpIte is ite(A < B, C, D): the value C if A < B, otherwise D.
	// Conditional moves introduce these; when both branches coincide the
	// builder folds the node away.
	OpIte
)

// Expr is an immutable expression node.
type Expr struct {
	Op         Op
	Index      int // OpVar: input index (0-based), or -1 for the constant 0
	id         int // interning sequence number (canonical ordering)
	A, B, C, D *Expr
}

// Builder hash-conses expression nodes and provides the constructors.
type Builder struct {
	n    int
	vars []*Expr
	memo map[string]*Expr
}

// NewBuilder returns a builder over n input variables.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, memo: map[string]*Expr{}}
	for i := 0; i < n; i++ {
		b.vars = append(b.vars, b.intern(&Expr{Op: OpVar, Index: i}))
	}
	return b
}

// Var returns the i-th input variable.
func (b *Builder) Var(i int) *Expr { return b.vars[i] }

func (e *Expr) key() string {
	switch e.Op {
	case OpVar:
		return fmt.Sprintf("v%d", e.Index)
	case OpMin:
		return fmt.Sprintf("m(%p,%p)", e.A, e.B)
	case OpMax:
		return fmt.Sprintf("M(%p,%p)", e.A, e.B)
	default:
		return fmt.Sprintf("i(%p,%p,%p,%p)", e.A, e.B, e.C, e.D)
	}
}

func (b *Builder) intern(e *Expr) *Expr {
	if old, ok := b.memo[e.key()]; ok {
		return old
	}
	e.id = len(b.memo)
	b.memo[e.key()] = e
	return e
}

// Min returns min(x, y), with idempotence and argument-order folding.
func (b *Builder) Min(x, y *Expr) *Expr {
	if x == y {
		return x
	}
	if x.id > y.id {
		x, y = y, x // commutativity: canonical argument order
	}
	return b.intern(&Expr{Op: OpMin, A: x, B: y})
}

// Max returns max(x, y) with the same foldings as Min.
func (b *Builder) Max(x, y *Expr) *Expr {
	if x == y {
		return x
	}
	if x.id > y.id {
		x, y = y, x
	}
	return b.intern(&Expr{Op: OpMax, A: x, B: y})
}

// Ite returns ite(a < bb, c, d), folding the trivial cases.
func (b *Builder) Ite(a, bb, c, d *Expr) *Expr {
	if c == d {
		return c
	}
	// ite(a<b, b, a) = max(a,b); ite(a<b, a, b) = min(a,b).
	if c == bb && d == a {
		return b.Max(a, bb)
	}
	if c == a && d == bb {
		return b.Min(a, bb)
	}
	return b.intern(&Expr{Op: OpIte, A: a, B: bb, C: c, D: d})
}

// Eval evaluates the expression on concrete input values.
func (e *Expr) Eval(vals []int) int {
	switch e.Op {
	case OpVar:
		if e.Index < 0 {
			return 0 // uninitialized scratch register
		}
		return vals[e.Index]
	case OpMin:
		return min(e.A.Eval(vals), e.B.Eval(vals))
	case OpMax:
		return max(e.A.Eval(vals), e.B.Eval(vals))
	default:
		if e.A.Eval(vals) < e.B.Eval(vals) {
			return e.C.Eval(vals)
		}
		return e.D.Eval(vals)
	}
}

// String renders the expression with inputs named a, b, c, ….
func (e *Expr) String() string {
	switch e.Op {
	case OpVar:
		if e.Index < 0 {
			return "0"
		}
		return string(rune('a' + e.Index))
	case OpMin:
		return fmt.Sprintf("min(%s, %s)", e.A, e.B)
	case OpMax:
		return fmt.Sprintf("max(%s, %s)", e.A, e.B)
	default:
		return fmt.Sprintf("ite(%s < %s, %s, %s)", e.A, e.B, e.C, e.D)
	}
}

// Size returns the number of nodes (shared nodes counted once).
func (e *Expr) Size() int {
	seen := map[*Expr]bool{}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		walk(x.A)
		walk(x.B)
		walk(x.C)
		walk(x.D)
	}
	walk(e)
	return len(seen)
}

// Symbolic executes p symbolically and returns one expression per output
// register r1..rn. Flags are tracked as the pair of expressions last
// compared; a conditional move materializes an ite node.
func Symbolic(set *isa.Set, p isa.Program) []*Expr {
	b := NewBuilder(set.N)
	regs := make([]*Expr, set.Regs())
	for i := 0; i < set.N; i++ {
		regs[i] = b.Var(i)
	}
	zero := b.intern(&Expr{Op: OpVar, Index: -1}) // uninitialized scratch
	for i := set.N; i < set.Regs(); i++ {
		regs[i] = zero
	}
	var cmpA, cmpB *Expr
	for _, in := range p {
		switch in.Op {
		case isa.Mov:
			regs[in.Dst] = regs[in.Src]
		case isa.Cmp:
			cmpA, cmpB = regs[in.Dst], regs[in.Src]
		case isa.Cmovl:
			// dst ← src if cmpA < cmpB. Before any cmp both flags are
			// clear, so the conditional move is a no-op.
			if cmpA != nil {
				regs[in.Dst] = b.Ite(cmpA, cmpB, regs[in.Src], regs[in.Dst])
			}
		case isa.Cmovg:
			// dst ← src if cmpA > cmpB, i.e. cmpB < cmpA.
			if cmpA != nil {
				regs[in.Dst] = b.Ite(cmpB, cmpA, regs[in.Src], regs[in.Dst])
			}
		case isa.Min:
			regs[in.Dst] = b.Min(regs[in.Dst], regs[in.Src])
		case isa.Max:
			regs[in.Dst] = b.Max(regs[in.Dst], regs[in.Src])
		}
	}
	return regs[:set.N]
}

// Equiv reports whether two expressions over n inputs agree on every
// input. Evaluation over all weak orderings (including ties) is sound
// and complete for expressions free of the scratch constant 0: node
// semantics depend only on the order relations among the inputs. (For
// expressions still referencing an uninitialized scratch register, 0
// acts as a strictly-smallest value during the check.)
//
// Note the subtlety the paper's correctness argument (§2.3) runs into
// for programs: with strict-comparison ite nodes, distinct-value
// permutations alone are NOT sufficient — ties select the other branch.
func Equiv(n int, x, y *Expr) bool {
	for _, w := range perm.WeakOrders(n) {
		if x.Eval(w) != y.Eval(w) {
			return false
		}
	}
	return true
}
