package semantics

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/state"
)

// paperKernelN3 is the synthesized kernel of paper §2.1 (middle column).
const paperKernelN3 = `
mov s1 r1
cmp r3 s1
cmovl s1 r3
cmovl r3 r1
cmp r2 r3
mov r1 r2
cmovg r2 r3
cmovg r3 r1
cmp r1 s1
cmovl r2 s1
cmovg r1 s1
`

func TestSymbolicMatchesInterpreter(t *testing.T) {
	// Property: for random programs, the symbolic expressions evaluate to
	// exactly what the concrete interpreter computes — on inputs with
	// duplicates too.
	for _, set := range []*isa.Set{isa.NewCmov(3, 1), isa.NewMinMax(3, 1)} {
		rng := rand.New(rand.NewSource(23))
		instrs := set.Instrs()
		for trial := 0; trial < 200; trial++ {
			p := make(isa.Program, rng.Intn(12))
			for i := range p {
				p[i] = instrs[rng.Intn(len(instrs))]
			}
			exprs := Symbolic(set, p)
			for _, in := range perm.WeakOrders(set.N) {
				want := state.RunInts(set, p, in)
				for i, e := range exprs {
					if got := e.Eval(in); got != want[i] {
						t.Fatalf("%v: r%d = %s evaluates to %d on %v, interpreter says %d\nprogram:\n%s",
							set, i+1, e, got, in, want[i], p.Format(set.N))
					}
				}
			}
		}
	}
}

func TestPaperIdentity(t *testing.T) {
	// §2.1: min(a, min(b,c)) = min(min(max(c,b), a), min(b,c)).
	b := NewBuilder(3)
	a, bb, c := b.Var(0), b.Var(1), b.Var(2)
	lhs := b.Min(a, b.Min(bb, c))
	rhs := b.Min(b.Min(b.Max(c, bb), a), b.Min(bb, c))
	if !Equiv(3, lhs, rhs) {
		t.Fatalf("paper identity does not hold: %s vs %s", lhs, rhs)
	}
	// And a non-identity must be rejected.
	if Equiv(3, lhs, b.Max(a, bb)) {
		t.Fatal("Equiv accepted a wrong identity")
	}
}

func TestPaperKernelDenotation(t *testing.T) {
	// The paper states the synthesized kernel's outputs:
	//   rax = min(b, min(a,c))
	//   rbx = ite(b > min(a,c), min(b, max(a,c)), min(a,c))
	//   (and rcx must therefore be max(a, max(b,c))).
	set := isa.NewCmov(3, 1)
	p, err := isa.ParseProgram(paperKernelN3, 3)
	if err != nil {
		t.Fatal(err)
	}
	exprs := Symbolic(set, p)
	b := NewBuilder(3)
	a, bb, c := b.Var(0), b.Var(1), b.Var(2)

	wantR1 := b.Min(bb, b.Min(a, c))
	if !Equiv(3, exprs[0], wantR1) {
		t.Errorf("r1 = %s, want ≡ %s", exprs[0], wantR1)
	}
	// ite(b > min(a,c), min(b, max(a,c)), min(a,c)): b > x is x < b.
	mac := b.Min(a, c)
	wantR2 := b.Ite(mac, bb, b.Min(bb, b.Max(a, c)), mac)
	if !Equiv(3, exprs[1], wantR2) {
		t.Errorf("r2 = %s, want ≡ %s", exprs[1], wantR2)
	}
	wantR3 := b.Max(a, b.Max(bb, c))
	if !Equiv(3, exprs[2], wantR3) {
		t.Errorf("r3 = %s, want ≡ %s", exprs[2], wantR3)
	}
}

func TestNetworkKernelDenotation(t *testing.T) {
	// A sorting network's outputs are pure min/max expressions; the
	// symbolic executor must reduce the cmov-based compare-exchanges to
	// them (via the ite folding rules).
	set := isa.NewMinMax(3, 1)
	p := sortnet.Optimal(3).CompileMinMax()
	exprs := Symbolic(set, p)
	b := NewBuilder(3)
	a, bb, c := b.Var(0), b.Var(1), b.Var(2)
	if !Equiv(3, exprs[0], b.Min(a, b.Min(bb, c))) {
		t.Errorf("network r1 = %s", exprs[0])
	}
	if !Equiv(3, exprs[2], b.Max(a, b.Max(bb, c))) {
		t.Errorf("network r3 = %s", exprs[2])
	}
}

func TestIteFoldings(t *testing.T) {
	b := NewBuilder(2)
	x, y := b.Var(0), b.Var(1)
	if got := b.Ite(x, y, y, x); got.Op != OpMax {
		t.Errorf("ite(x<y, y, x) = %s, want max", got)
	}
	if got := b.Ite(x, y, x, y); got.Op != OpMin {
		t.Errorf("ite(x<y, x, y) = %s, want min", got)
	}
	if got := b.Ite(x, y, x, x); got != x {
		t.Error("ite with equal branches not folded")
	}
	if b.Min(x, y) != b.Min(y, x) {
		t.Error("min not commutativity-canonicalized")
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder(3)
	x, y := b.Var(0), b.Var(1)
	if b.Min(x, y) != b.Min(x, y) {
		t.Error("identical nodes not shared")
	}
	e := b.Max(b.Min(x, y), b.Min(x, y))
	if e != b.Min(x, y) {
		// max(z, z) should fold to z.
		t.Errorf("max(z,z) = %s, want z", e)
	}
}

func TestSizeCountsSharedOnce(t *testing.T) {
	b := NewBuilder(2)
	x, y := b.Var(0), b.Var(1)
	m := b.Min(x, y)
	e := b.Max(m, b.Max(m, x))
	// nodes: x, y, min, inner max, outer max = 5.
	if got := e.Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestCmovBeforeCmpIsNoop(t *testing.T) {
	set := isa.NewCmov(2, 1)
	p, _ := isa.ParseProgram("cmovl r1 r2; cmovg r2 r1", 2)
	exprs := Symbolic(set, p)
	b := NewBuilder(2)
	if exprs[0] == nil || !Equiv(2, exprs[0], b.Var(0)) || !Equiv(2, exprs[1], b.Var(1)) {
		t.Error("cmov with clear flags must be the identity")
	}
}
