package bench

import (
	"context"
	"fmt"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
)

// CandidateTiming is one autotune sweep outcome: how one backend fared
// on one spec class, best-of-rounds. Unlike MeasureBackend, a losing
// outcome (timeout, exhaustion, refusal, verification failure) is data
// the sweep wants to record — the tuned ranking pushes such candidates
// to the back — so failures come back as OK=false with a Note instead
// of an error.
type CandidateTiming struct {
	Backend string
	WallMS  float64
	Length  int
	Kernel  string
	Rounds  int
	OK      bool
	Note    string
}

// TimeCandidate measures one backend on one spec, best-of-rounds. A
// failing candidate is not retried: its single round already cost up to
// the full timeout, and the tuned table only needs to know it lost.
func TimeCandidate(ctx context.Context, b backend.Backend, set *isa.Set, spec backend.Spec, timeout time.Duration, rounds int) CandidateTiming {
	if rounds < 1 {
		rounds = 1
	}
	ct := CandidateTiming{Backend: b.Name()}
	for r := 0; r < rounds; r++ {
		rctx, cancel := context.WithTimeout(ctx, timeout)
		start := time.Now()
		res, err := backend.Run(rctx, b, set, spec)
		wall := time.Since(start)
		cancel()
		if err != nil {
			return CandidateTiming{Backend: b.Name(), WallMS: ms(wall), Rounds: r + 1, Note: err.Error()}
		}
		if res.Status != backend.StatusFound {
			return CandidateTiming{Backend: b.Name(), WallMS: ms(wall), Rounds: r + 1, Note: res.Status.String()}
		}
		if !ct.OK || ms(res.Stats.Elapsed) < ct.WallMS {
			ct.WallMS = ms(res.Stats.Elapsed)
			ct.Length = res.Length
			ct.Kernel = res.Program.FormatInline(set.N)
			ct.OK = true
		}
		ct.Rounds = r + 1
	}
	return ct
}

// CapacityItem is one request of a capacity workload.
type CapacityItem struct {
	Set  *isa.Set
	Spec backend.Spec
}

// CapacityAnswer records what one request returned, for cross-mode
// divergence checks.
type CapacityAnswer struct {
	Winner string
	Length int
	Kernel string
}

// CapacityMeasurement reports a dispatch mode's serving capacity over a
// workload: requests answered, wall clock, and engine time — the sum of
// per-member race elapsed for portfolio results (what a fleet actually
// pays in cores), plain Stats.Elapsed otherwise. SpecsPerSecCore is the
// tunecompare gate's headline number: requests per second of engine
// time. Launches and Skipped count portfolio race entries that ran vs
// were parked by staggered dispatch.
type CapacityMeasurement struct {
	Specs           int
	WallMS          float64
	EngineMS        float64
	SpecsPerSecCore float64
	Launches        int
	Skipped         int
	Answers         []CapacityAnswer
}

// MeasureCapacity drives the workload through b sequentially (the
// metric is per-core efficiency, so overlapping requests would only
// confound it) and errors on any request that does not end in a
// verified kernel — a capacity number over wrong or missing answers
// would be meaningless.
func MeasureCapacity(ctx context.Context, b backend.Backend, items []CapacityItem, timeout time.Duration) (CapacityMeasurement, error) {
	var cm CapacityMeasurement
	start := time.Now()
	for i, it := range items {
		rctx, cancel := context.WithTimeout(ctx, timeout)
		res, err := backend.Run(rctx, b, it.Set, it.Spec)
		cancel()
		if err != nil {
			return cm, fmt.Errorf("capacity item %d (%v): %w", i, it.Set, err)
		}
		if res.Status != backend.StatusFound {
			return cm, fmt.Errorf("capacity item %d (%v): %s without a kernel", i, it.Set, res.Status)
		}
		cm.Specs++
		if len(res.Race) > 0 {
			for _, e := range res.Race {
				cm.EngineMS += ms(e.Stats.Elapsed)
				if e.Status == backend.StatusSkipped {
					cm.Skipped++
				} else {
					cm.Launches++
				}
			}
		} else {
			cm.EngineMS += ms(res.Stats.Elapsed)
			cm.Launches++
		}
		cm.Answers = append(cm.Answers, CapacityAnswer{
			Winner: res.Winner,
			Length: res.Length,
			Kernel: res.Program.FormatInline(it.Set.N),
		})
	}
	cm.WallMS = ms(time.Since(start))
	if cm.EngineMS > 0 {
		cm.SpecsPerSecCore = float64(cm.Specs) / (cm.EngineMS / 1000)
	}
	return cm, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
