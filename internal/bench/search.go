package bench

import (
	"fmt"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// SearchMeasurement is one synthesis-throughput data point: a full
// search of the given set at a fixed worker count, reported in the
// units the engine comparison cares about (wall time and expanded
// states per second). The kernel text is included so callers can check
// that every worker count produced byte-identical output.
type SearchMeasurement struct {
	ISA            string  `json:"isa"`
	N              int     `json:"n"`
	Workers        int     `json:"workers"`
	MaxLen         int     `json:"max_len"`
	Length         int     `json:"length"`
	Kernel         string  `json:"kernel"`
	Expanded       int64   `json:"expanded"`
	Generated      int64   `json:"generated"`
	WallMS         float64 `json:"wall_ms"`
	ExpandedPerSec float64 `json:"expanded_per_sec"`
}

// MeasureSearch runs the search rounds times and reports the fastest
// run (search work is deterministic for a fixed configuration, so
// best-of-N isolates scheduler and allocator noise). Workers ≤ 1
// selects the sequential engine; the parallel engine is defined to
// produce byte-identical results at every worker count.
func MeasureSearch(set *isa.Set, opt enum.Options, rounds int) (SearchMeasurement, error) {
	if rounds < 1 {
		rounds = 1
	}
	var best *enum.Result
	for r := 0; r < rounds; r++ {
		res := enum.Run(set, opt)
		if res.Err != nil {
			return SearchMeasurement{}, res.Err
		}
		if res.Length < 0 {
			return SearchMeasurement{}, fmt.Errorf("%v: no kernel within %d", set, opt.MaxLen)
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	m := SearchMeasurement{
		ISA:       set.Kind.String(),
		N:         set.N,
		Workers:   opt.Workers,
		MaxLen:    opt.MaxLen,
		Length:    best.Length,
		Kernel:    best.Program.FormatInline(set.N),
		Expanded:  best.Expanded,
		Generated: best.Generated,
		WallMS:    float64(best.Elapsed) / float64(time.Millisecond),
	}
	if sec := best.Elapsed.Seconds(); sec > 0 {
		m.ExpandedPerSec = float64(best.Expanded) / sec
	}
	return m, nil
}
