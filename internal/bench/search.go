package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// SearchMeasurement is one synthesis-throughput data point: a full
// search of the given set at a fixed worker count, reported in the
// units the engine comparison cares about (wall time and expanded
// states per second). The kernel text is included so callers can check
// that every worker count produced byte-identical output.
type SearchMeasurement struct {
	ISA string `json:"isa"`
	N   int    `json:"n"`
	// Backend is the registry name that produced the row ("enum" for
	// the direct engine measurements).
	Backend string `json:"backend"`
	// Winner is the racing backend that produced the kernel when
	// Backend is a portfolio; empty otherwise.
	Winner  string `json:"winner,omitempty"`
	Workers int    `json:"workers"`
	// GOMAXPROCS is the runtime's parallelism ceiling when this row was
	// measured (recorded per row, not once per report, so a row taken
	// under an env-pinned or host-limited runtime is visible as such).
	GOMAXPROCS     int     `json:"gomaxprocs"`
	MaxLen         int     `json:"max_len"`
	Length         int     `json:"length"`
	Kernel         string  `json:"kernel"`
	Expanded       int64   `json:"expanded"`
	Generated      int64   `json:"generated"`
	WallMS         float64 `json:"wall_ms"`
	ExpandedPerSec float64 `json:"expanded_per_sec"`

	// SWAROffWallMS is the same row re-measured with the SWAR
	// bit-sliced execution layer disabled (Options.DisableSWAR) and
	// SWARSpeedup the scalar/SWAR wall-clock ratio — the enumbench A/B
	// that keeps the layer's payoff versioned next to the code. Zero on
	// rows that did not run the A/B (portfolio rows).
	SWAROffWallMS float64 `json:"swar_off_wall_ms,omitempty"`
	SWARSpeedup   float64 `json:"swar_speedup,omitempty"`
}

// MeasureSearch runs the search rounds times and reports the fastest
// run (search work is deterministic for a fixed configuration, so
// best-of-N isolates scheduler and allocator noise). Workers ≤ 1
// selects the sequential engine; the parallel engine is defined to
// produce byte-identical results at every worker count.
func MeasureSearch(set *isa.Set, opt enum.Options, rounds int) (SearchMeasurement, error) {
	if rounds < 1 {
		rounds = 1
	}
	var best *enum.Result
	for r := 0; r < rounds; r++ {
		res := enum.Run(set, opt)
		if res.Err != nil {
			return SearchMeasurement{}, res.Err
		}
		if res.Length < 0 {
			return SearchMeasurement{}, fmt.Errorf("%v: no kernel within %d", set, opt.MaxLen)
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	m := SearchMeasurement{
		ISA:        set.Kind.String(),
		N:          set.N,
		Backend:    "enum",
		Workers:    opt.Workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MaxLen:     opt.MaxLen,
		Length:     best.Length,
		Kernel:     best.Program.FormatInline(set.N),
		Expanded:   best.Expanded,
		Generated:  best.Generated,
		WallMS:     float64(best.Elapsed) / float64(time.Millisecond),
	}
	if sec := best.Elapsed.Seconds(); sec > 0 {
		m.ExpandedPerSec = float64(best.Expanded) / sec
	}
	return m, nil
}

// MeasureBackend runs one registry backend through backend.Run rounds
// times and reports the fastest winning run, so BENCH rows produced by
// non-enum backends (including portfolio races) carry the same shape as
// the direct engine measurements. Expanded aggregates the backend's
// Stats.Nodes (expanded states, conflicts, or proposals, per backend).
func MeasureBackend(b backend.Backend, set *isa.Set, spec backend.Spec, timeout time.Duration, rounds int) (SearchMeasurement, error) {
	if rounds < 1 {
		rounds = 1
	}
	var best *backend.Result
	for r := 0; r < rounds; r++ {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		res, err := backend.Run(ctx, b, set, spec)
		cancel()
		if err != nil {
			return SearchMeasurement{}, err
		}
		if res.Status != backend.StatusFound {
			return SearchMeasurement{}, fmt.Errorf("%v: backend %s: %s (no kernel within %d)",
				set, b.Name(), res.Status, spec.MaxLen)
		}
		if best == nil || res.Stats.Elapsed < best.Stats.Elapsed {
			best = res
		}
	}
	m := SearchMeasurement{
		ISA:        set.Kind.String(),
		N:          set.N,
		Backend:    b.Name(),
		Winner:     best.Winner,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MaxLen:     spec.MaxLen,
		Length:     best.Length,
		Kernel:     best.Program.FormatInline(set.N),
		Expanded:   best.Stats.Nodes,
		WallMS:     float64(best.Stats.Elapsed) / float64(time.Millisecond),
	}
	if sec := best.Stats.Elapsed.Seconds(); sec > 0 {
		m.ExpandedPerSec = float64(best.Stats.Nodes) / sec
	}
	return m, nil
}
