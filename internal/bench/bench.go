// Package bench is the kernel benchmark harness of the evaluation
// (§5.3): standalone kernel timing on random arrays, and kernels embedded
// as the base case of quicksort and mergesort on random lists, with
// ranking across contenders.
//
// The paper benchmarks x86 assembly via Google benchmark; here kernels
// are native Go functions timed with testing.B (see bench_test.go at the
// repository root) or the Measure helper, plus deterministic static-model
// rankings as a cross-check. Absolute times are not comparable to the
// paper's; the reproduced observable is the ranking.
package bench

import (
	"math/rand"
	"sort"
	"time"
)

// RandomArrays returns count arrays of length n with values in
// [-bound, bound], generated deterministically from seed (the paper uses
// values between -10000 and 10000).
func RandomArrays(n, count, bound int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, count)
	for i := range out {
		a := make([]int, n)
		for j := range a {
			a[j] = rng.Intn(2*bound+1) - bound
		}
		out[i] = a
	}
	return out
}

// RandomList returns one list of random length in [1, maxLen] with values
// in [-10000, 10000] (the paper embeds kernels into sorts of lists of up
// to 20000 elements).
func RandomList(maxLen int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int, 1+rng.Intn(maxLen))
	for i := range a {
		a[i] = rng.Intn(20001) - 10000
	}
	return a
}

// insertion sorts tiny segments whose length does not match the kernel's
// arity.
func insertion(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Quicksort sorts a in place, recursing until at most base elements
// remain and applying kernel to segments of exactly base elements
// (shorter tails fall back to insertion sort).
func Quicksort(a []int, base int, kernel func([]int)) {
	for len(a) > base {
		p := partition(a)
		if p < len(a)-p-1 {
			Quicksort(a[:p], base, kernel)
			a = a[p+1:]
		} else {
			Quicksort(a[p+1:], base, kernel)
			a = a[:p]
		}
	}
	if len(a) == base {
		kernel(a)
	} else {
		insertion(a)
	}
}

// partition performs a median-of-three Hoare-style partition and returns
// the pivot's final index.
func partition(a []int) int {
	mid := len(a) / 2
	hi := len(a) - 1
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi-1] = a[hi-1], a[mid]
	pivot := a[hi-1]
	i := 0
	for j := 1; j < hi-1; j++ {
		if a[j] < pivot {
			i++
			if i != j {
				a[i], a[j] = a[j], a[i]
			}
		}
	}
	a[i+1], a[hi-1] = a[hi-1], a[i+1]
	return i + 1
}

// Mergesort sorts a in place (using a scratch buffer), recursing until at
// most base elements remain and applying kernel to exact-size segments.
func Mergesort(a []int, base int, kernel func([]int)) {
	buf := make([]int, len(a))
	mergesort(a, buf, base, kernel)
}

func mergesort(a, buf []int, base int, kernel func([]int)) {
	if len(a) <= base {
		if len(a) == base {
			kernel(a)
		} else {
			insertion(a)
		}
		return
	}
	mid := len(a) / 2
	mergesort(a[:mid], buf[:mid], base, kernel)
	mergesort(a[mid:], buf[mid:], base, kernel)
	copy(buf, a)
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if buf[j] < buf[i] {
			a[k] = buf[j]
			j++
		} else {
			a[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = buf[i]
		i++
		k++
	}
	for j < len(a) {
		a[k] = buf[j]
		j++
		k++
	}
}

// Timing is one contender's measured time.
type Timing struct {
	Name string
	Time time.Duration
}

// Rank sorts timings ascending and returns, for each input index, its
// 1-based rank.
func Rank(ts []Timing) map[string]int {
	sorted := append([]Timing(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	ranks := make(map[string]int, len(sorted))
	for i, t := range sorted {
		ranks[t.Name] = i + 1
	}
	return ranks
}

// Measure times fn over rounds passes of the given inputs, restoring the
// inputs from a pristine copy each pass, and returns the total time.
// This mirrors the paper's "multiple iterations over the full test suite"
// standalone methodology.
func Measure(fn func([]int), inputs [][]int, rounds int) time.Duration {
	// Flatten into one backing buffer for cheap restoration.
	n := 0
	if len(inputs) > 0 {
		n = len(inputs[0])
	}
	pristine := make([]int, 0, n*len(inputs))
	for _, in := range inputs {
		pristine = append(pristine, in...)
	}
	work := make([]int, len(pristine))
	var total time.Duration
	for r := 0; r < rounds; r++ {
		copy(work, pristine)
		start := time.Now()
		for i := 0; i+n <= len(work); i += n {
			fn(work[i : i+n])
		}
		total += time.Since(start)
	}
	return total
}

// MeasureSort times a whole-list sorter the same way.
func MeasureSort(fn func([]int), list []int, rounds int) time.Duration {
	work := make([]int, len(list))
	var total time.Duration
	for r := 0; r < rounds; r++ {
		copy(work, list)
		start := time.Now()
		fn(work)
		total += time.Since(start)
	}
	return total
}
