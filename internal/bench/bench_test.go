package bench

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"sortsynth/internal/kernels"
)

func TestQuicksortSorts(t *testing.T) {
	f := func(raw []int16) bool {
		a := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v)
		}
		want := slices.Clone(a)
		sort.Ints(want)
		Quicksort(a, 3, kernels.Sort3Enum)
		return slices.Equal(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergesortSorts(t *testing.T) {
	f := func(raw []int16) bool {
		a := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v)
		}
		want := slices.Clone(a)
		sort.Ints(want)
		Mergesort(a, 3, kernels.Sort3Network)
		return slices.Equal(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmbeddingBase4(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a := make([]int, rng.Intn(5000))
		for i := range a {
			a[i] = rng.Intn(1000)
		}
		want := slices.Clone(a)
		sort.Ints(want)
		q := slices.Clone(a)
		Quicksort(q, 4, kernels.Sort4Swap)
		if !slices.Equal(q, want) {
			t.Fatalf("quicksort base 4 failed (len %d)", len(a))
		}
		m := slices.Clone(a)
		Mergesort(m, 4, kernels.Sort4Mimicry)
		if !slices.Equal(m, want) {
			t.Fatalf("mergesort base 4 failed (len %d)", len(a))
		}
	}
}

func TestQuicksortAdversarial(t *testing.T) {
	// Sorted, reverse-sorted and constant inputs must not blow the stack
	// (median-of-three + recurse-into-smaller-side).
	for _, mk := range []func(int) []int{
		func(n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = i
			}
			return a
		},
		func(n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = n - i
			}
			return a
		},
		func(n int) []int { return make([]int, n) },
	} {
		a := mk(50000)
		want := slices.Clone(a)
		sort.Ints(want)
		Quicksort(a, 3, kernels.Sort3Enum)
		if !slices.Equal(a, want) {
			t.Fatal("adversarial quicksort input not sorted")
		}
	}
}

func TestRandomArraysDeterministic(t *testing.T) {
	a := RandomArrays(3, 10, 10000, 7)
	b := RandomArrays(3, 10, 10000, 7)
	if len(a) != 10 || len(a[0]) != 3 {
		t.Fatalf("shape wrong: %d x %d", len(a), len(a[0]))
	}
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			t.Fatal("RandomArrays not deterministic")
		}
	}
	for _, arr := range a {
		for _, v := range arr {
			if v < -10000 || v > 10000 {
				t.Fatalf("value %d out of bound", v)
			}
		}
	}
}

func TestRank(t *testing.T) {
	ranks := Rank([]Timing{
		{Name: "slow", Time: 30 * time.Millisecond},
		{Name: "fast", Time: 10 * time.Millisecond},
		{Name: "mid", Time: 20 * time.Millisecond},
	})
	if ranks["fast"] != 1 || ranks["mid"] != 2 || ranks["slow"] != 3 {
		t.Errorf("Rank = %v", ranks)
	}
}

func TestMeasureRestoresInputs(t *testing.T) {
	inputs := RandomArrays(3, 50, 100, 1)
	// A destructive kernel must still see fresh inputs each round;
	// Measure uses a pristine copy, so the original arrays are untouched.
	orig := make([][]int, len(inputs))
	for i := range inputs {
		orig[i] = slices.Clone(inputs[i])
	}
	d := Measure(func(a []int) { a[0], a[1], a[2] = 0, 0, 0 }, inputs, 3)
	if d < 0 {
		t.Error("negative duration")
	}
	for i := range inputs {
		if !slices.Equal(inputs[i], orig[i]) {
			t.Fatal("Measure mutated caller inputs")
		}
	}
}

func TestMeasureSort(t *testing.T) {
	list := RandomList(1000, 3)
	if d := MeasureSort(func(a []int) { sort.Ints(a) }, list, 2); d <= 0 {
		t.Error("MeasureSort returned non-positive duration")
	}
	if len(list) == 0 || len(list) > 1000 {
		t.Errorf("RandomList length %d out of range", len(list))
	}
}
