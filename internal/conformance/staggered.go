package conformance

import (
	"context"
	"fmt"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
	"sortsynth/internal/tuned"
)

// staggeredName labels the tuned-dispatch portfolio in reports; it is a
// synthetic judge target, never a registry backend.
const staggeredName = "portfolio-staggered"

// renamedBackend gives a wrapped backend a distinct report identity so
// the plain portfolio and the staggered one can share a status matrix.
type renamedBackend struct {
	name string
	b    backend.Backend
}

func (r *renamedBackend) Name() string { return r.name }
func (r *renamedBackend) Synthesize(ctx context.Context, set *isa.Set, spec backend.Spec) (*backend.Result, error) {
	return r.b.Synthesize(ctx, set, spec)
}

// staggeredExtra builds the staggered-portfolio judge target from the
// registry's portfolio: the same members, the same central
// verification, dispatched through a synthetic tuned table that ranks
// enum first for every generated spec class. Differential-judging it
// against the same enum ground truth as everything else is the
// integration proof that tuned dispatch changes scheduling, never
// answers. Returns nil when the registry has no (*backend.Portfolio)
// portfolio to wrap.
func staggeredExtra(reg *backend.Registry, maxN int, timeout time.Duration) backend.Backend {
	pb, err := reg.Get("portfolio")
	if err != nil {
		return nil
	}
	pf, ok := pb.(*backend.Portfolio)
	if !ok {
		return nil
	}
	sched := tuned.NewScheduler(syntheticTable(maxN, timeout), pf.Backends())
	return &renamedBackend{name: staggeredName, b: pf.WithScheduler(sched)}
}

// syntheticTable covers every spec class the generator can roll (both
// ISAs, n up to maxN, both duplicate-safety settings; only shortest —
// the portfolio rejects ranking objectives before dispatch) with the
// same plan: enum first, a stagger of a quarter of the per-backend
// timeout, everyone else as appended fallbacks.
func syntheticTable(maxN int, timeout time.Duration) *tuned.Table {
	staggerMS := float64(timeout/4) / float64(time.Millisecond)
	entries := map[string]tuned.Plan{}
	for _, isaName := range []string{"cmov", "minmax"} {
		for n := 2; n <= maxN; n++ {
			for _, dup := range []bool{false, true} {
				c := tuned.Class{ISA: isaName, N: n, DuplicateSafe: dup}
				entries[c.Key()] = tuned.Plan{
					Ranked:    []tuned.Candidate{{Backend: "enum", WallMS: 1, OK: true}},
					StaggerMS: staggerMS,
				}
			}
		}
	}
	return &tuned.Table{Entries: entries}
}

// crossCheckStaggered compares the staggered portfolio's answer with
// the plain portfolio's on one judged spec. Race timing may hand the
// two modes different winners — that is scheduling, not correctness —
// but whenever the same member won both races, its pinned per-member
// seed makes the synthesis deterministic and the programs must be
// byte-identical.
func crossCheckStaggered(sp spec, plain, staggered *backend.Result) []Divergence {
	if plain == nil || staggered == nil ||
		plain.Status != backend.StatusFound || staggered.Status != backend.StatusFound ||
		plain.Winner != staggered.Winner {
		return nil
	}
	n := sp.set().N
	if plain.Program.Format(n) != staggered.Program.Format(n) {
		return []Divergence{{
			Check:   "differential",
			Kind:    "staggered-answer-divergence",
			Backend: staggeredName,
			Spec:    specLabel(sp),
			Detail: fmt.Sprintf("same winner %q, different programs:\nplain:\n%s\nstaggered:\n%s",
				plain.Winner, plain.Program.Format(n), staggered.Program.Format(n)),
		}}
	}
	return nil
}
