// Package conformance is the correctness analogue of the bench-compare
// throughput gate: a differential- and metamorphic-testing harness over
// every registered synthesis backend.
//
// The differential half generates randomized backend.Specs (both ISAs,
// n = 2..MaxN, varied scratch counts, budgets around the true optimum,
// seeds, and timeouts) and judges each backend's outcome against ground
// truth computed by the admissible enumerative search (HeurDistMax +
// optimality-preserving pruning only, so the first solution found is
// provably minimal and an exhausted search is a refutation proof):
//
//   - a found program must verify, have a consistent length within the
//     budget, and never beat the true optimum;
//   - the enum backend, and any backend asserting Optimal, must match
//     the true optimum exactly;
//   - a no-program refutation is unsound — and flagged — whenever the
//     true optimum fits inside the refuted budget (with m ≥ 1 scratch
//     registers an optimal kernel pads to every longer length, so
//     "no program of exactly length L" and "no program of length ≤ L"
//     refute the same budgets);
//   - exhausted, timed-out, and cancelled outcomes claim nothing and are
//     never divergences: under a 300ms-per-backend budget the slower
//     encodings time out routinely, and that must stay harmless;
//   - ranking objectives (fastest, balanced) are a distinct spec class:
//     the enum backend must still land exactly on the certified optimal
//     length (re-ranking changes which member of the set is returned,
//     never its length), while single-solution backends must refuse with
//     the typed UnsupportedObjectiveError — a no-claim outcome.
//
// The metamorphic half checks invariants that hold by construction —
// canonicalization idempotence and hash stability, initial-state
// symmetry under test-suite input order, the 0-1 principle against full
// permutation verification, optimal-length invariance across enum
// search variants, and the engine's bucket queue and flat dedup table
// against executable reference models.
//
// Wired in as `cmd/experiments -table=conformance` (deterministic under
// -seed, nonzero exit on any divergence) and `make conformance`.
package conformance

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sortsynth/internal/backend"
)

// Options configures a conformance run. The zero value means: seed 1,
// 200 specs, n ≤ 3, 300ms per backend per spec, the default backend
// registry, and min(8, GOMAXPROCS) specs judged concurrently.
type Options struct {
	// Seed drives the spec generator and every metamorphic trial; the
	// generated spec stream is a pure function of it.
	Seed int64

	// Specs is the number of differential specs to generate.
	Specs int

	// MaxN caps the generated problem size. 2 keeps a run in the
	// sub-second range (tests), 3 is the smoke default, 4 additionally
	// generates min/max specs at n=4 (slower ground truth).
	MaxN int

	// BackendTimeout bounds each backend on each spec. Timeouts are
	// no-claim outcomes, never divergences.
	BackendTimeout time.Duration

	// Parallel is the number of specs judged concurrently (each spec
	// additionally fans out across its backends).
	Parallel int

	// Registry supplies the backends under test; nil means
	// backend.Default(), i.e. all seven synthesizers plus the portfolio.
	Registry *backend.Registry

	// Extra backends are judged alongside the registry's. Used by the
	// negative tests (and -inject) to plant deliberately lying backends
	// the harness must catch.
	Extra []backend.Backend

	// SkipMetamorphic restricts the run to the differential half.
	SkipMetamorphic bool

	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o Options) resolved() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Specs <= 0 {
		o.Specs = 200
	}
	if o.MaxN < 2 {
		o.MaxN = 3
	}
	if o.BackendTimeout <= 0 {
		o.BackendTimeout = 300 * time.Millisecond
	}
	if o.Parallel <= 0 {
		// Judged specs spend most of their wall clock waiting out the
		// per-backend timeout, so oversubscribing specs relative to
		// cores is fine — statuses shift toward timed-out under load,
		// which is a no-claim outcome either way.
		o.Parallel = min(8, runtime.GOMAXPROCS(0))
	}
	if o.Registry == nil {
		o.Registry = backend.Default()
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// dupCapable are the backends that can honour Spec.DuplicateSafe: enum
// searches the weak-order suite directly, smt switches CEGIS to
// arbitrary-input counterexamples, and the portfolio inherits soundness
// from central verification (a merely permutation-correct winner is
// rejected before it can win). The universe store replays enum-baked
// records keyed on the duplicate-safe flag, so its answers carry the
// same guarantee. The other engines synthesize against the permutation
// suite only, so running them on duplicate-safe specs would manufacture
// IncorrectError "divergences" that are really just an unsupported
// capability.
var dupCapable = map[string]bool{
	"enum": true, "smt": true, "portfolio": true, staggeredName: true, "universe": true,
}

// Run executes the conformance harness. The returned Report carries
// every divergence found; err is reserved for harness failures (a
// ground-truth search failing, an unusable registry), never for
// divergences.
func Run(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.resolved()
	start := time.Now()

	// The staggered portfolio rides along as a synthetic judge target
	// whenever the registry has a portfolio to wrap: tuned dispatch is
	// differential-tested against the same enum ground truth, plus the
	// byte-identity cross-check against the plain portfolio.
	if sb := staggeredExtra(opt.Registry, opt.MaxN, opt.BackendTimeout); sb != nil {
		opt.Extra = append(opt.Extra, sb)
	}

	rep := &Report{
		Seed:     opt.Seed,
		MaxN:     opt.MaxN,
		Timeout:  opt.BackendTimeout,
		Statuses: map[string]map[string]int{},
	}
	for _, name := range opt.Registry.Names() {
		rep.Backends = append(rep.Backends, name)
	}
	for _, b := range opt.Extra {
		rep.Backends = append(rep.Backends, b.Name())
	}

	truths := newTruthCache(opt.Log)
	specs, err := generateSpecs(ctx, opt, truths)
	if err != nil {
		return nil, err
	}
	rep.Specs = len(specs)
	rep.SpecDigest = digestSpecs(specs)
	rep.GroundTruth = truths.rows()

	// Differential half: a bounded pool of spec judges, each fanning out
	// across the backends.
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		sem  = make(chan struct{}, opt.Parallel)
		done int
	)
	for i := range specs {
		sp := specs[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			divs, statuses := judgeSpec(ctx, opt, sp)
			mu.Lock()
			rep.Divergences = append(rep.Divergences, divs...)
			for be, st := range statuses {
				m := rep.Statuses[be]
				if m == nil {
					m = map[string]int{}
					rep.Statuses[be] = m
				}
				m[st]++
			}
			done++
			if done%50 == 0 {
				opt.Log("conformance: %d/%d specs judged", done, len(specs))
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	if !opt.SkipMetamorphic {
		rep.Invariants = runMetamorphic(ctx, opt, truths)
		for _, inv := range rep.Invariants {
			rep.Divergences = append(rep.Divergences, inv.Divergences...)
		}
	}

	rep.Elapsed = time.Since(start)
	return rep, nil
}

// specLabel renders the spec identity used in divergence reports.
func specLabel(sp spec) string {
	return fmt.Sprintf("%s budget=%d seed=%d dup=%v obj=%s timeout=%s",
		sp.set().String(), sp.budget, sp.seed, sp.dup, sp.obj, sp.timeout)
}
