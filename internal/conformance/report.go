package conformance

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Divergence is one conformance violation: a backend disagreeing with
// ground truth or a metamorphic invariant failing.
type Divergence struct {
	Check   string // "differential" or the invariant name
	Kind    string // machine-readable classification, e.g. "unsound-refutation"
	Backend string // offending backend ("" for metamorphic checks)
	Spec    string // the spec or trial the divergence occurred on
	Detail  string
}

func (d Divergence) String() string {
	who := d.Check
	if d.Backend != "" {
		who += "/" + d.Backend
	}
	return fmt.Sprintf("[%s] %s: %s: %s", d.Kind, who, d.Spec, d.Detail)
}

// TruthRow is one ground-truth entry: a problem and its certified
// minimal kernel length.
type TruthRow struct {
	Problem string
	OptLen  int
}

// Invariant is the outcome of one metamorphic check family.
type Invariant struct {
	Name        string
	Checks      int
	Divergences []Divergence
}

// Report is the full outcome of a conformance run.
type Report struct {
	Seed     int64
	Specs    int
	MaxN     int
	Timeout  time.Duration
	Backends []string

	// SpecDigest fingerprints the generated spec stream; identical seeds
	// must print identical digests (the determinism witness).
	SpecDigest string

	GroundTruth []TruthRow
	// Statuses counts outcomes per backend name and status string.
	Statuses    map[string]map[string]int
	Invariants  []Invariant
	Divergences []Divergence
	Elapsed     time.Duration
}

// Ok reports a divergence-free run.
func (r *Report) Ok() bool { return len(r.Divergences) == 0 }

// WriteText renders the report in the results/conformance.txt format:
// the deterministic sections (seed, digest, ground truth) first, then
// the load-dependent status matrix, the invariant summary, and every
// divergence.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "\n== Conformance: %d specs, seed %d, n ≤ %d, %s per backend ==\n",
		r.Specs, r.Seed, r.MaxN, r.Timeout)
	fmt.Fprintf(w, "spec stream digest: %s (pure function of the seed)\n", r.SpecDigest)
	fmt.Fprintf(w, "backends under test: %v\n", r.Backends)

	fmt.Fprintf(w, "\nground truth (admissible enum search):\n")
	for _, t := range r.GroundTruth {
		fmt.Fprintf(w, "  %-34s L* = %d\n", t.Problem, t.OptLen)
	}

	fmt.Fprintf(w, "\nstatus matrix (counts vary with machine load; divergences must not):\n")
	names := make([]string, 0, len(r.Statuses))
	for name := range r.Statuses {
		names = append(names, name)
	}
	sort.Strings(names)
	statuses := []string{"found", "no-program", "exhausted", "timed-out", "cancelled", "error"}
	fmt.Fprintf(w, "  %-11s", "backend")
	for _, st := range statuses {
		fmt.Fprintf(w, " %10s", st)
	}
	fmt.Fprintln(w)
	for _, name := range names {
		fmt.Fprintf(w, "  %-11s", name)
		for _, st := range statuses {
			fmt.Fprintf(w, " %10d", r.Statuses[name][st])
		}
		fmt.Fprintln(w)
	}

	if len(r.Invariants) > 0 {
		fmt.Fprintf(w, "\nmetamorphic invariants:\n")
		for _, inv := range r.Invariants {
			verdict := "ok"
			if len(inv.Divergences) > 0 {
				verdict = fmt.Sprintf("%d DIVERGENCES", len(inv.Divergences))
			}
			fmt.Fprintf(w, "  %-24s %4d checks  %s\n", inv.Name, inv.Checks, verdict)
		}
	}

	if r.Ok() {
		fmt.Fprintf(w, "\nno divergences (%.1fs)\n", r.Elapsed.Seconds())
		return
	}
	fmt.Fprintf(w, "\n%d DIVERGENCES (%.1fs):\n", len(r.Divergences), r.Elapsed.Seconds())
	for _, d := range r.Divergences {
		fmt.Fprintf(w, "  %s\n", d)
	}
}
