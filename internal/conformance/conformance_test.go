package conformance

import (
	"context"
	"strings"
	"testing"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// smallOptions keeps package tests in the seconds range: n = 2 only,
// differential half only (the metamorphic half is exercised by its own
// tests below and by the full -table=conformance gate).
func smallOptions() Options {
	return Options{
		Seed:            7,
		Specs:           24,
		MaxN:            2,
		BackendTimeout:  500 * time.Millisecond,
		SkipMetamorphic: true,
	}
}

func TestRunCleanOnRealBackends(t *testing.T) {
	rep, err := Run(context.Background(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %s", d)
		}
	}
	if rep.Specs != 24 {
		t.Fatalf("judged %d specs, want 24", rep.Specs)
	}
	found := 0
	for _, m := range rep.Statuses {
		found += m["found"]
	}
	if found == 0 {
		t.Fatal("no backend found anything — the generator produced only hopeless specs")
	}
}

func TestSpecStreamDeterministicInSeed(t *testing.T) {
	opt := smallOptions()
	truthsA, truthsB := newTruthCache(func(string, ...any) {}), newTruthCache(func(string, ...any) {})
	a, err := generateSpecs(context.Background(), opt, truthsA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateSpecs(context.Background(), opt, truthsB)
	if err != nil {
		t.Fatal(err)
	}
	if digestSpecs(a) != digestSpecs(b) {
		t.Fatalf("same seed produced different spec streams: %s vs %s", digestSpecs(a), digestSpecs(b))
	}
	opt.Seed = 8
	c, err := generateSpecs(context.Background(), opt, truthsA)
	if err != nil {
		t.Fatal(err)
	}
	if digestSpecs(c) == digestSpecs(a) {
		t.Fatal("different seeds produced identical spec streams")
	}
}

// TestInjectedLiarsAreCaught is the harness's negative test: planting
// unsound backends must produce divergences attributed to them — a run
// that stays green here proves nothing anywhere else.
func TestInjectedLiarsAreCaught(t *testing.T) {
	opt := smallOptions()
	opt.Extra = LiarBackends()
	rep, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("run with lying backends reported zero divergences")
	}
	caught := map[string]bool{}
	for _, d := range rep.Divergences {
		caught[d.Backend] = true
		if d.Backend == "" || !strings.HasPrefix(d.Backend, "liar-") {
			t.Errorf("divergence blamed on %q, expected only the liars: %s", d.Backend, d)
		}
	}
	if !caught["liar-forger"] || !caught["liar-refuter"] {
		t.Fatalf("not every liar was caught: %v", caught)
	}
}

func TestMetamorphicInvariantsClean(t *testing.T) {
	opt := smallOptions().resolved()
	truths := newTruthCache(opt.Log)
	for _, inv := range runMetamorphic(context.Background(), opt, truths) {
		if inv.Checks == 0 {
			t.Errorf("invariant %s ran zero checks", inv.Name)
		}
		for _, d := range inv.Divergences {
			t.Errorf("invariant %s: %s", inv.Name, d)
		}
	}
}

// TestJudgeBackendRules pins the divergence rules on scripted outcomes,
// independent of any real engine.
func TestJudgeBackendRules(t *testing.T) {
	set := isa.NewCmov(2, 1) // L* = 4
	sp := spec{kind: isa.KindCmov, n: 2, m: 1, opt: 4, budget: 4, timeout: time.Second}
	scripted := func(res *backend.Result) backend.Backend {
		return &scriptedBackend{res: res}
	}
	cases := []struct {
		name     string
		sp       spec
		res      *backend.Result
		wantKind string // "" = no divergence
	}{
		{
			name:     "sound refutation below optimum",
			sp:       spec{kind: isa.KindCmov, n: 2, m: 1, opt: 4, budget: 3, timeout: time.Second},
			res:      &backend.Result{Status: backend.StatusNoProgram, Length: 3},
			wantKind: "",
		},
		{
			name:     "unsound refutation at optimum",
			sp:       sp,
			res:      &backend.Result{Status: backend.StatusNoProgram, Length: 4},
			wantKind: "unsound-refutation",
		},
		{
			name:     "timeout claims nothing",
			sp:       sp,
			res:      &backend.Result{Status: backend.StatusTimedOut, Length: 4},
			wantKind: "",
		},
		{
			name:     "exhausted claims nothing",
			sp:       sp,
			res:      &backend.Result{Status: backend.StatusExhausted, Length: 4},
			wantKind: "",
		},
		{
			name:     "found with inconsistent length",
			sp:       sp,
			res:      &backend.Result{Status: backend.StatusFound, Program: correctN2(t, set), Length: 3},
			wantKind: "malformed-result",
		},
		{
			name:     "correct find at optimum",
			sp:       sp,
			res:      &backend.Result{Status: backend.StatusFound, Program: correctN2(t, set), Length: 4},
			wantKind: "",
		},
		{
			name: "false optimality claim",
			sp:   spec{kind: isa.KindCmov, n: 2, m: 1, opt: 4, budget: 6, timeout: time.Second},
			res: &backend.Result{Status: backend.StatusFound, Program: paddedN2(t, set), Length: 6,
				Optimal: true},
			wantKind: "false-optimality-claim",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			divs, _, _ := judgeBackend(context.Background(), tc.sp, "scripted", scripted(tc.res))
			if tc.wantKind == "" {
				if len(divs) != 0 {
					t.Fatalf("unexpected divergences: %v", divs)
				}
				return
			}
			if len(divs) != 1 || divs[0].Kind != tc.wantKind {
				t.Fatalf("divergences = %v, want one of kind %q", divs, tc.wantKind)
			}
		})
	}
}

type scriptedBackend struct{ res *backend.Result }

func (s *scriptedBackend) Name() string { return "scripted" }
func (s *scriptedBackend) Synthesize(context.Context, *isa.Set, backend.Spec) (*backend.Result, error) {
	r := *s.res
	r.Backend = "scripted"
	return &r, nil
}

func correctN2(t *testing.T, set *isa.Set) isa.Program {
	t.Helper()
	p, err := isa.ParseProgram("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// paddedN2 is the optimal n=2 kernel padded with scratch writes to
// length 6 — correct, within budget, but not minimal.
func paddedN2(t *testing.T, set *isa.Set) isa.Program {
	t.Helper()
	p, err := isa.ParseProgram("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1; mov s1 r1; mov s1 r1", 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestObjectiveSpecClass pins the judge's objective rules directly: the
// enum backend honors a fastest spec at the certified optimal length,
// and a single-solution backend's typed refusal is a no-claim outcome,
// never a divergence.
func TestObjectiveSpecClass(t *testing.T) {
	ctx := context.Background()
	sp := spec{kind: isa.KindCmov, n: 3, m: 1, obj: enum.ObjectiveFastest,
		budget: 11, opt: 11, timeout: 5 * time.Second}

	eb, err := backend.Default().Get("enum")
	if err != nil {
		t.Fatal(err)
	}
	divs, st, _ := judgeBackend(ctx, sp, "enum", eb)
	if len(divs) != 0 || st != "found" {
		t.Fatalf("enum on a fastest spec: status %q, divergences %v", st, divs)
	}

	sb, err := backend.Default().Get("stoke")
	if err != nil {
		t.Fatal(err)
	}
	divs, st, _ = judgeBackend(ctx, sp, "stoke", sb)
	if len(divs) != 0 || st != "unsupported-objective" {
		t.Fatalf("stoke on a fastest spec: status %q, divergences %v, want a clean unsupported-objective", st, divs)
	}

	// The same refusal on a shortest spec would be a genuine backend bug.
	sp.obj = enum.ObjectiveShortest
	if divs, _, _ = judgeBackend(ctx, sp, "stoke", sb); len(divs) != 0 {
		t.Fatalf("stoke on a shortest spec diverged: %v", divs)
	}
}
