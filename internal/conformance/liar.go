package conformance

import (
	"context"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
)

// liar is a deliberately unsound backend used to negative-test the
// harness: a conformance run that cannot catch these is broken.
type liar struct {
	name  string
	forge bool // claim Found with a garbage program; otherwise claim NoProgram
}

func (l *liar) Name() string { return l.name }

func (l *liar) Synthesize(_ context.Context, set *isa.Set, spec backend.Spec) (*backend.Result, error) {
	if l.forge {
		// A "kernel" that repeats the first instruction of the set for
		// the whole budget: never a sorting program, so central
		// verification inside backend.Run must reject it.
		p := make(isa.Program, spec.MaxLen)
		for i := range p {
			p[i] = set.Instrs()[0]
		}
		return &backend.Result{
			Backend: l.name,
			Status:  backend.StatusFound,
			Program: p,
			Length:  len(p),
		}, nil
	}
	// An unconditional refutation: unsound on every budget that fits an
	// optimal kernel.
	return &backend.Result{
		Backend: l.name,
		Status:  backend.StatusNoProgram,
		Length:  spec.MaxLen,
	}, nil
}

// LiarBackends returns the injection set for negative testing: a forger
// claiming unverifiable kernels and a refuter contradicting ground
// truth. Pass them via Options.Extra (or `-table=conformance -inject`)
// and the run must report divergences and exit nonzero.
func LiarBackends() []backend.Backend {
	return []backend.Backend{
		&liar{name: "liar-forger", forge: true},
		&liar{name: "liar-refuter"},
	}
}
