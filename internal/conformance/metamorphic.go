package conformance

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/state"
	"sortsynth/internal/verify"
)

// runMetamorphic executes every metamorphic invariant check. Each check
// derives its own rng from the master seed, so the set of trials is as
// deterministic as the differential spec stream.
func runMetamorphic(ctx context.Context, opt Options, truths *truthCache) []Invariant {
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eedc0de))
	invs := []Invariant{
		checkCanonicalization(rng.Int63()),
		checkInitialSymmetry(rng.Int63()),
		checkZeroOne(rng.Int63()),
		checkSuiteImplication(rng.Int63()),
		checkQueueTable(rng.Int63()),
	}
	invs = append(invs, checkEnumVariants(ctx, opt, truths))
	return invs
}

func fail(inv *Invariant, kind, subject, format string, args ...any) {
	inv.Divergences = append(inv.Divergences, Divergence{
		Check:  inv.Name,
		Kind:   kind,
		Spec:   subject,
		Detail: fmt.Sprintf(format, args...),
	})
}

// randProgram draws a uniformly random instruction sequence over set.
func randProgram(rng *rand.Rand, set *isa.Set, maxLen int) isa.Program {
	instrs := set.Instrs()
	p := make(isa.Program, rng.Intn(maxLen+1))
	for i := range p {
		p[i] = instrs[rng.Intn(len(instrs))]
	}
	return p
}

// checkCanonicalization: Canonicalize is idempotent, produces strictly
// ascending states, absorbs injected duplicates, and Hash/HashKey are
// invariant under element order with Hash(s) == HashKey(s).Lo. Holds by
// construction: canonical form is the sorted duplicate-free set of
// packed assignments, and both hashes fold over exactly that sequence.
func checkCanonicalization(seed int64) Invariant {
	inv := Invariant{Name: "canonicalize-hash"}
	rng := rand.New(rand.NewSource(seed))
	sets := []*isa.Set{isa.NewCmov(2, 1), isa.NewCmov(3, 1), isa.NewCmov(2, 2), isa.NewMinMax(3, 2)}
	for _, set := range sets {
		m := state.NewMachine(set)
		instrs := set.Instrs()
		for trial := 0; trial < 48; trial++ {
			inv.Checks++
			s := m.Initial().Clone()
			for k := 1 + rng.Intn(8); k > 0; k-- {
				s = m.Apply(nil, s, instrs[rng.Intn(len(instrs))])
			}
			subject := fmt.Sprintf("%s trial %d (|s|=%d)", set, trial, len(s))

			for i := 1; i < len(s); i++ {
				if s[i-1] >= s[i] {
					fail(&inv, "not-ascending", subject, "canonical state not strictly ascending at %d", i)
					break
				}
			}
			c := s.Clone()
			state.Canonicalize(&c)
			if !slices.Equal(c, s) {
				fail(&inv, "idempotence", subject, "re-canonicalization changed the state")
			}
			// Inject duplicates and shuffle: canonical form must be
			// unchanged, and so must both hashes.
			raw := s.Clone()
			for d := 0; d < 3 && len(s) > 0; d++ {
				raw = append(raw, s[rng.Intn(len(s))])
			}
			rng.Shuffle(len(raw), func(i, j int) { raw[i], raw[j] = raw[j], raw[i] })
			state.Canonicalize(&raw)
			if !slices.Equal(raw, s) {
				fail(&inv, "duplicate-absorption", subject, "canonical form changed under duplication+shuffle")
			}
			k := state.HashKey(s)
			if state.Hash(s) != k.Lo {
				fail(&inv, "hash-split", subject, "Hash = %#x but HashKey.Lo = %#x", state.Hash(s), k.Lo)
			}
			if state.HashKey(raw) != k {
				fail(&inv, "hash-stability", subject, "HashKey changed under duplication+shuffle")
			}
		}
	}
	return inv
}

// checkInitialSymmetry: the canonical initial state — and therefore the
// entire search and the synthesized length, which are functions of it —
// is invariant under permuting the order in which the test-suite inputs
// are enumerated. Holds by construction: the initial state is a
// canonicalized set, so enumeration order cannot leak in.
func checkInitialSymmetry(seed int64) Invariant {
	inv := Invariant{Name: "initial-symmetry"}
	rng := rand.New(rand.NewSource(seed))
	sets := []*isa.Set{isa.NewCmov(2, 1), isa.NewCmov(3, 1), isa.NewCmov(2, 2), isa.NewMinMax(4, 1)}
	for _, set := range sets {
		m := state.NewMachine(set)
		perms := perm.All(set.N)
		for trial := 0; trial < 8; trial++ {
			inv.Checks++
			order := rng.Perm(len(perms))
			rebuilt := make(state.State, 0, len(perms))
			for _, i := range order {
				rebuilt = append(rebuilt, m.PackRegs(perms[i]))
			}
			state.Canonicalize(&rebuilt)
			if !slices.Equal(rebuilt, m.Initial()) {
				fail(&inv, "input-order", fmt.Sprintf("%s trial %d", set, trial),
					"initial state depends on test-suite enumeration order")
			}
		}
	}
	return inv
}

// checkZeroOne: on min/max programs (monotone circuits) the 0-1
// principle — all 2^n zero/one inputs sort — must agree exactly with
// full n!-permutation verification. Holds because min/max kernels are
// monotone, for which the 0-1 sorting lemma is sound and complete.
func checkZeroOne(seed int64) Invariant {
	inv := Invariant{Name: "zero-one"}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 250; trial++ {
		inv.Checks++
		n := 2 + rng.Intn(3)
		set := isa.NewMinMax(n, 1)
		p := randProgram(rng, set, 12)
		zo := verify.Sorts01MinMax(set, p)
		full := verify.Sorts(set, p)
		if zo != full {
			fail(&inv, "disagreement", fmt.Sprintf("%s trial %d", set, trial),
				"0-1 principle says %v, permutation suite says %v for %q", zo, full, p.FormatInline(n))
		}
	}
	return inv
}

// checkSuiteImplication: the weak-order suite strictly subsumes the
// permutation suite, so a duplicate-safe program can never fail a
// permutation or a random integer input. Holds because the permutations
// are exactly the tie-free weak orders, and weak-order correctness is
// complete for arbitrary integers.
func checkSuiteImplication(seed int64) Invariant {
	inv := Invariant{Name: "suite-implication"}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 150; trial++ {
		inv.Checks++
		n := 2 + rng.Intn(2)
		var set *isa.Set
		if rng.Intn(2) == 0 {
			set = isa.NewCmov(n, 1)
		} else {
			set = isa.NewMinMax(n, 1)
		}
		p := randProgram(rng, set, 12)
		if !verify.SortsDuplicates(set, p) {
			continue
		}
		subject := fmt.Sprintf("%s trial %d", set, trial)
		if !verify.Sorts(set, p) {
			fail(&inv, "subsumption", subject,
				"duplicate-safe program fails a permutation: %q", p.FormatInline(n))
		}
		if in := verify.SortsRandom(set, p, 32, 3, rng.Int63()); in != nil {
			fail(&inv, "subsumption", subject,
				"duplicate-safe program fails random input %v: %q", in, p.FormatInline(n))
		}
	}
	return inv
}

// checkQueueTable replays the engine's bucket queue and flat dedup
// table against their retired reference implementations (the heap-order
// contract and a plain Go map).
func checkQueueTable(seed int64) Invariant {
	inv := Invariant{Name: "queue-table-reference", Checks: 2}
	if err := enum.CheckBucketQueueConformance(seed, 30, 400); err != nil {
		fail(&inv, "bucket-queue", "bucketQueue vs reference model", "%v", err)
	}
	if err := enum.CheckFlatTableConformance(seed+1, 20000); err != nil {
		fail(&inv, "flat-table", "flatTable vs map", "%v", err)
	}
	return inv
}

// checkEnumVariants: every enum search variant — heuristics, cuts,
// worker counts, all-solutions mode — must synthesize the same optimal
// length (and, across worker counts, the same solution count). Holds
// because the heuristics are either admissible or paired with pruning
// the paper shows to be optimality-preserving at these sizes, and the
// parallel engine is defined to return the sequential solution set.
func checkEnumVariants(ctx context.Context, opt Options, truths *truthCache) Invariant {
	inv := Invariant{Name: "enum-variants"}
	combos := []*isa.Set{isa.NewCmov(2, 1), isa.NewMinMax(2, 1)}
	if opt.MaxN >= 3 {
		combos = append(combos, isa.NewMinMax(3, 1), isa.NewCmov(3, 1))
	}
	for _, set := range combos {
		want, err := truths.optimalLen(ctx, truthKey{kind: set.Kind, n: set.N, m: set.M})
		if err != nil {
			fail(&inv, "ground-truth", set.String(), "%v", err)
			continue
		}
		admissible := enum.Options{Heuristic: enum.HeurDistMax, UseDistPrune: true, ViabilityErase: true}
		variants := map[string]enum.Options{
			"distmax":           admissible,
			"distmax-workers2":  {Heuristic: enum.HeurDistMax, UseDistPrune: true, ViabilityErase: true, Workers: 2},
			"best":              enum.ConfigBest(),
			"best-cut-additive": {Heuristic: enum.HeurPermCount, UseDistPrune: true, UseActionGuide: true, ViabilityErase: true, Cut: enum.CutAdditive, CutK: 2},
		}
		if set.N == 2 {
			variants["dijkstra"] = enum.ConfigDijkstra()
			variants["permcount"] = enum.Options{Heuristic: enum.HeurPermCount, UseDistPrune: true, ViabilityErase: true}
			variants["asgcount"] = enum.Options{Heuristic: enum.HeurAsgCount, UseDistPrune: true, ViabilityErase: true}
		}
		for name, vopt := range variants {
			inv.Checks++
			res := enum.RunContext(ctx, set, vopt)
			subject := fmt.Sprintf("%s variant %s", set, name)
			switch {
			case res.Err != nil:
				fail(&inv, "variant-error", subject, "%v", res.Err)
			case res.Cancelled || res.TimedOut:
				fail(&inv, "variant-stopped", subject, "search stopped early")
			case res.Program == nil:
				fail(&inv, "variant-empty", subject, "no kernel found")
			case res.Length != want:
				fail(&inv, "length-variance", subject, "found length %d, optimum is %d", res.Length, want)
			case verify.Counterexample(set, res.Program) != nil:
				fail(&inv, "variant-incorrect", subject, "kernel fails verification")
			}
		}
		// All-solutions mode must report the same optimal length and the
		// same exact solution count at every worker count. cmov n=3 is
		// excluded on time grounds (5602 solutions).
		if set.Kind == isa.KindCmov && set.N >= 3 {
			continue
		}
		inv.Checks++
		base := enum.ConfigAllSolutions()
		seq := enum.RunContext(ctx, set, base)
		par := base
		par.Workers = 2
		parRes := enum.RunContext(ctx, set, par)
		subject := fmt.Sprintf("%s all-solutions", set)
		switch {
		case seq.Err != nil || parRes.Err != nil:
			fail(&inv, "variant-error", subject, "seq err=%v par err=%v", seq.Err, parRes.Err)
		case seq.Length != want || parRes.Length != want:
			fail(&inv, "length-variance", subject,
				"lengths seq=%d par=%d, optimum is %d", seq.Length, parRes.Length, want)
		case seq.SolutionCount != parRes.SolutionCount:
			fail(&inv, "solution-count", subject,
				"solution count seq=%d par=%d", seq.SolutionCount, parRes.SolutionCount)
		}
	}
	return inv
}
