package conformance

import (
	"context"
	"testing"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/isa"
)

// TestStaggeredPortfolioJudged runs a small conformance roll and checks
// the staggered portfolio was actually judged: present in the status
// matrix, clean of divergences, and answering specs.
func TestStaggeredPortfolioJudged(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Seed:            7,
		Specs:           24,
		MaxN:            2,
		BackendTimeout:  2 * time.Second,
		SkipMetamorphic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("divergences: %+v", rep.Divergences)
	}
	sts, ok := rep.Statuses[staggeredName]
	if !ok {
		t.Fatalf("status matrix %v has no %s row", rep.Statuses, staggeredName)
	}
	total := 0
	for _, c := range sts {
		total += c
	}
	if total == 0 || sts["found"] == 0 {
		t.Fatalf("%s judged %d specs with %d finds, want > 0 of each (%v)",
			staggeredName, total, sts["found"], sts)
	}
	found := false
	for _, name := range rep.Backends {
		if name == staggeredName {
			found = true
		}
	}
	if !found {
		t.Fatalf("report backends %v missing %s", rep.Backends, staggeredName)
	}
}

// TestCrossCheckStaggered pins the byte-identity rule directly: same
// winner + different program is a divergence; different winners or
// non-found outcomes claim nothing.
func TestCrossCheckStaggered(t *testing.T) {
	sp := spec{kind: isa.KindCmov, n: 2, m: 1, opt: 4, budget: 4, timeout: time.Second}
	set := sp.set()
	prog := correctN2(t, set)
	altered := prog.Clone()
	altered[0], altered[1] = altered[1], altered[0] // same length, different bytes

	found := func(winner string, p isa.Program) *backend.Result {
		return &backend.Result{Status: backend.StatusFound, Program: p, Length: len(p), Winner: winner}
	}

	if divs := crossCheckStaggered(sp, found("enum", prog), found("enum", prog)); len(divs) != 0 {
		t.Fatalf("identical answers diverged: %v", divs)
	}
	divs := crossCheckStaggered(sp, found("enum", prog), found("enum", altered))
	if len(divs) != 1 || divs[0].Kind != "staggered-answer-divergence" {
		t.Fatalf("divs = %v, want one staggered-answer-divergence", divs)
	}
	if divs := crossCheckStaggered(sp, found("enum", prog), found("stoke", altered)); len(divs) != 0 {
		t.Fatalf("different winners must claim nothing, got %v", divs)
	}
	if divs := crossCheckStaggered(sp, nil, found("enum", prog)); len(divs) != 0 {
		t.Fatalf("missing plain result must claim nothing, got %v", divs)
	}
	notFound := &backend.Result{Status: backend.StatusExhausted}
	if divs := crossCheckStaggered(sp, notFound, found("enum", prog)); len(divs) != 0 {
		t.Fatalf("non-found plain result must claim nothing, got %v", divs)
	}
}
