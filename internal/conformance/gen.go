package conformance

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"sortsynth"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

// spec is one generated differential test case.
type spec struct {
	idx     int
	kind    isa.Kind
	n, m    int
	dup     bool
	obj     enum.Objective // ranking objective: a distinct spec class, like dup
	budget  int            // Spec.MaxLen: optimum + δ, δ ∈ [-2, 2], clamped ≥ 1
	opt     int            // ground-truth optimal length for (kind, n, m, suite)
	seed    int64          // Spec.Seed for the randomized backends
	timeout time.Duration  // per-backend deadline for this spec
}

func (s spec) set() *isa.Set { return isa.New(s.kind, s.n, s.m) }

// truthKey identifies one ground-truth problem.
type truthKey struct {
	kind isa.Kind
	n, m int
	dup  bool
}

func (k truthKey) String() string {
	suite := "permutations"
	if k.dup {
		suite = "weakorders"
	}
	return fmt.Sprintf("%s n=%d m=%d %s", k.kind, k.n, k.m, suite)
}

// truthCache memoizes optimal lengths computed by the admissible
// enumerative search. Not safe for concurrent use; every entry is
// computed up front during spec generation.
type truthCache struct {
	m   map[truthKey]int
	log func(format string, args ...any)
}

func newTruthCache(log func(string, ...any)) *truthCache {
	return &truthCache{m: map[truthKey]int{}, log: log}
}

// groundTruthOptions is the certified configuration: HeurDistMax is
// admissible and UseDistPrune/ViabilityErase are optimality-preserving
// (DESIGN.md §3), so the first solution found is provably minimal. The
// parallel engine returns an identical solution set at every worker
// count, so workers only shorten the wall clock.
func groundTruthOptions(dup bool) enum.Options {
	return enum.Options{
		Heuristic:      enum.HeurDistMax,
		UseDistPrune:   true,
		ViabilityErase: true,
		DuplicateSafe:  dup,
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// optimalLen returns the certified minimal kernel length for k,
// computing and caching it on first use.
func (c *truthCache) optimalLen(ctx context.Context, k truthKey) (int, error) {
	if l, ok := c.m[k]; ok {
		return l, nil
	}
	set := isa.New(k.kind, k.n, k.m)
	t0 := time.Now()
	res := enum.RunContext(ctx, set, groundTruthOptions(k.dup))
	switch {
	case res.Err != nil:
		return 0, fmt.Errorf("ground truth for %s: %w", k, res.Err)
	case res.Cancelled || res.TimedOut:
		return 0, fmt.Errorf("ground truth for %s: search stopped early (%v)", k, ctx.Err())
	case res.Program == nil:
		return 0, fmt.Errorf("ground truth for %s: no kernel found (exhausted=%v)", k, res.Exhausted)
	}
	// Defense in depth: the ground truth itself must verify, and must
	// match the published optimal lengths where those exist (m = 1).
	if ce := verify.Counterexample(set, res.Program); ce != nil {
		return 0, fmt.Errorf("ground truth for %s: program fails on %v", k, ce)
	}
	if k.dup {
		if ce := verify.DuplicateCounterexample(set, res.Program); ce != nil {
			return 0, fmt.Errorf("ground truth for %s: program fails on duplicate input %v", k, ce)
		}
	}
	if known, ok := sortsynth.KnownOptimalLength(set); ok && !k.dup && res.Length != known {
		return 0, fmt.Errorf("ground truth for %s: admissible search found %d, published optimum is %d",
			k, res.Length, known)
	}
	c.log("conformance: ground truth %s = %d (%.0fms, %d states)",
		k, res.Length, float64(time.Since(t0).Microseconds())/1000, res.Expanded)
	c.m[k] = res.Length
	return res.Length, nil
}

// rows returns the cached truths sorted for the report.
func (c *truthCache) rows() []TruthRow {
	rows := make([]TruthRow, 0, len(c.m))
	for k, l := range c.m {
		rows = append(rows, TruthRow{Problem: k.String(), OptLen: l})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Problem < rows[j].Problem })
	return rows
}

// generateSpecs produces the deterministic spec stream for opt.Seed.
// Every spec draws the same number of random values regardless of how
// the draws are interpreted, so the stream — and therefore the whole
// differential run — is a pure function of the seed.
//
// Size limits follow the ground-truth cost: cmov at n=3 only gets one
// scratch register (the admissible search at m=2 runs for minutes), and
// n=4 — generated only when MaxN ≥ 4 — is restricted to min/max with
// m=1 on the permutation suite.
func generateSpecs(ctx context.Context, opt Options, truths *truthCache) ([]spec, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	deltas := []int{-2, -1, 0, 1, 2}
	specs := make([]spec, 0, opt.Specs)
	for i := 0; i < opt.Specs; i++ {
		kindRoll := rng.Intn(100)
		nRoll := rng.Intn(100)
		mRoll := rng.Intn(100)
		dupRoll := rng.Intn(100)
		delta := deltas[rng.Intn(len(deltas))]
		seed := rng.Int63()
		tinyRoll := rng.Intn(100)
		objRoll := rng.Intn(100)

		sp := spec{idx: i, kind: isa.KindCmov, n: 2, m: 1, seed: seed, timeout: opt.BackendTimeout}
		if kindRoll >= 55 {
			sp.kind = isa.KindMinMax
		}
		switch {
		case opt.MaxN >= 4 && nRoll >= 90:
			sp.kind, sp.n = isa.KindMinMax, 4
		case opt.MaxN >= 3 && nRoll >= 60:
			sp.n = 3
		}
		if mRoll < 20 && sp.n < 4 && (sp.kind == isa.KindMinMax || sp.n == 2) {
			sp.m = 2
		}
		if dupRoll < 15 && sp.m == 1 && sp.n <= 3 {
			sp.dup = true
		}
		if tinyRoll < 10 {
			// A deliberately hopeless deadline: exercises the timeout and
			// cancellation paths, which must never read as divergences.
			sp.timeout = time.Millisecond
		}
		// Objectives are a distinct spec class, like the duplicate-safe
		// flag: the judge expects the enum backend to still land exactly
		// on the certified optimal length (re-ranking never changes the
		// length, only which member of the set is returned), and every
		// single-solution backend to refuse with the typed
		// UnsupportedObjectiveError — a no-claim outcome, never a
		// divergence. n ≤ 3 keeps the forced all-solutions enumeration in
		// the same cost band as the rest of the stream.
		if sp.n <= 3 {
			switch {
			case objRoll < 10:
				sp.obj = enum.ObjectiveFastest
			case objRoll < 15:
				sp.obj = enum.ObjectiveBalanced
			}
		}

		l, err := truths.optimalLen(ctx, truthKey{kind: sp.kind, n: sp.n, m: sp.m, dup: sp.dup})
		if err != nil {
			return nil, err
		}
		sp.opt = l
		sp.budget = l + delta
		if sp.budget < 1 {
			sp.budget = 1
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// digestSpecs hashes the generated spec stream; two runs with the same
// seed must print the same digest — the determinism witness in
// results/conformance.txt.
func digestSpecs(specs []spec) string {
	h := fnv.New64a()
	for _, sp := range specs {
		fmt.Fprintf(h, "%d|%s|%v|%s|%d|%d|%d|%s\n",
			sp.idx, sp.set(), sp.dup, sp.obj, sp.budget, sp.opt, sp.seed, sp.timeout)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
