package conformance

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/verify"
)

// judgeSpec runs every applicable backend on sp concurrently and judges
// each outcome against the ground truth. It returns the divergences and
// the per-backend status (by name) for the report's status matrix.
func judgeSpec(ctx context.Context, opt Options, sp spec) ([]Divergence, map[string]string) {
	type target struct {
		name string
		b    backend.Backend
	}
	var targets []target
	for _, name := range opt.Registry.Names() {
		if sp.dup && !dupCapable[name] {
			continue
		}
		b, err := opt.Registry.Get(name)
		if err != nil {
			continue
		}
		targets = append(targets, target{name, b})
	}
	for _, b := range opt.Extra {
		targets = append(targets, target{b.Name(), b})
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		divs     []Divergence
		statuses = make(map[string]string, len(targets))
		results  = make(map[string]*backend.Result, len(targets))
	)
	for _, tg := range targets {
		wg.Add(1)
		go func(tg target) {
			defer wg.Done()
			ds, st, res := judgeBackend(ctx, sp, tg.name, tg.b)
			mu.Lock()
			divs = append(divs, ds...)
			statuses[tg.name] = st
			results[tg.name] = res
			mu.Unlock()
		}(tg)
	}
	wg.Wait()
	// Tuned dispatch must reorder engines, never answers: when the same
	// member won both portfolio modes, the programs must match.
	divs = append(divs, crossCheckStaggered(sp, results["portfolio"], results[staggeredName])...)
	return divs, statuses
}

// judgeBackend runs one backend on one spec under the spec's deadline
// and applies the divergence rules documented on the package. The third
// return is the backend's raw result (nil on error) for cross-mode
// checks like crossCheckStaggered.
func judgeBackend(ctx context.Context, sp spec, name string, b backend.Backend) ([]Divergence, string, *backend.Result) {
	set := sp.set()
	bspec := backend.Spec{MaxLen: sp.budget, Seed: sp.seed, DuplicateSafe: sp.dup, Objective: sp.obj}
	tctx, cancel := context.WithTimeout(ctx, sp.timeout)
	defer cancel()
	res, err := backend.Run(tctx, b, set, bspec)

	div := func(kind, format string, args ...any) Divergence {
		return Divergence{
			Check:   "differential",
			Kind:    kind,
			Backend: name,
			Spec:    specLabel(sp),
			Detail:  fmt.Sprintf(format, args...),
		}
	}

	if err != nil {
		var incorrect *backend.IncorrectError
		if errors.As(err, &incorrect) {
			return []Divergence{div("incorrect-program",
				"claimed a kernel that fails central verification: %v", err)}, "error", nil
		}
		// Objectives are a distinct spec class: single-solution backends
		// have no solution set to rank, and their typed refusal is the
		// contract, not a failure — a no-claim outcome, like a timeout.
		// The same error on a shortest spec would be a real backend bug.
		var unsup *backend.UnsupportedObjectiveError
		if errors.As(err, &unsup) && sp.obj != enum.ObjectiveShortest {
			return nil, "unsupported-objective", nil
		}
		return []Divergence{div("backend-error", "%v", err)}, "error", nil
	}

	st := res.Status.String()
	switch res.Status {
	case backend.StatusFound:
		var ds []Divergence
		if len(res.Program) == 0 || res.Length != len(res.Program) {
			ds = append(ds, div("malformed-result",
				"found with %d instructions but Length=%d", len(res.Program), res.Length))
			return ds, st, res
		}
		// Independent re-verification: central verification already ran
		// inside backend.Run, so a failure here means the verifiers
		// disagree with themselves — worth its own divergence kind.
		if ce := verify.Counterexample(set, res.Program); ce != nil {
			ds = append(ds, div("incorrect-program", "re-verification fails on %v", ce))
		}
		if sp.dup {
			if ce := verify.DuplicateCounterexample(set, res.Program); ce != nil {
				ds = append(ds, div("incorrect-program", "re-verification fails on duplicate input %v", ce))
			}
		}
		if res.Length > sp.budget {
			ds = append(ds, div("budget-overrun", "length %d exceeds budget %d", res.Length, sp.budget))
		}
		if res.Length < sp.opt {
			ds = append(ds, div("beats-optimal",
				"length %d below the certified optimum %d — ground truth or verifier bug", res.Length, sp.opt))
		}
		if name == "enum" && res.Length != sp.opt {
			ds = append(ds, div("suboptimal",
				"enum found length %d, certified optimum is %d", res.Length, sp.opt))
		}
		if res.Optimal && res.Length != sp.opt {
			ds = append(ds, div("false-optimality-claim",
				"claims optimality at length %d, certified optimum is %d", res.Length, sp.opt))
		}
		return ds, st, res

	case backend.StatusNoProgram:
		// Sound only if the optimum really is out of budget. The padding
		// argument (m ≥ 1: append writes to a scratch register) makes
		// fixed-length and upper-bound refutations comparable: a kernel
		// of the optimal length extends to every longer length.
		if sp.opt <= sp.budget {
			return []Divergence{div("unsound-refutation",
				"refuted budget %d but a length-%d kernel exists", sp.budget, sp.opt)}, st, res
		}
		return nil, st, res

	case backend.StatusExhausted, backend.StatusTimedOut, backend.StatusCancelled:
		return nil, st, res // no claim

	default:
		return []Divergence{div("unexpected-status", "status %v from a direct Run", res.Status)}, st, res
	}
}
