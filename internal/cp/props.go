package cp

// Table is an extensional constraint: the tuple (vars...) must match one
// of the allowed rows. Filtering is generalized arc consistency by
// support scanning, adequate for the small tables of the kernel model.
type Table struct {
	Xs   []Var
	Rows [][]int
}

// Vars implements Propagator.
func (t *Table) Vars() []Var { return t.Xs }

// Propagate implements Propagator.
func (t *Table) Propagate(s *Solver) bool {
	// supported[i] = union of row values for position i over feasible rows.
	supported := make([]Domain, len(t.Xs))
	for _, row := range t.Rows {
		ok := true
		for i, v := range row {
			if !s.Dom(t.Xs[i]).Has(v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i, v := range row {
			supported[i] |= 1 << v
		}
	}
	for i, x := range t.Xs {
		if !s.SetDomain(x, supported[i]) {
			return false
		}
	}
	return true
}

// LessEq enforces X ≤ Y on values (bounds filtering).
type LessEq struct{ X, Y Var }

// Vars implements Propagator.
func (c *LessEq) Vars() []Var { return []Var{c.X, c.Y} }

// Propagate implements Propagator.
func (c *LessEq) Propagate(s *Solver) bool {
	dx, dy := s.Dom(c.X), s.Dom(c.Y)
	minX := dx.Min()
	maxY := 63 - leadingZeros(dy)
	// X ≤ max(Y), Y ≥ min(X).
	if !s.SetDomain(c.X, Full(maxY+1)) {
		return false
	}
	return s.SetDomain(c.Y, ^Domain(0)<<minX)
}

func leadingZeros(d Domain) int {
	for i := 63; i >= 0; i-- {
		if d.Has(i) {
			return 63 - i
		}
	}
	return 64
}

// ExactlyOne enforces that exactly one of the Xs takes value V.
type ExactlyOne struct {
	Xs []Var
	V  int
}

// Vars implements Propagator.
func (c *ExactlyOne) Vars() []Var { return c.Xs }

// Propagate implements Propagator.
func (c *ExactlyOne) Propagate(s *Solver) bool {
	fixed := -1
	possible := 0
	last := -1
	for i, x := range c.Xs {
		d := s.Dom(x)
		if d.Has(c.V) {
			possible++
			last = i
			if d.Size() == 1 {
				if fixed >= 0 {
					return false // two variables already equal V
				}
				fixed = i
			}
		}
	}
	if possible == 0 {
		return false
	}
	if fixed >= 0 {
		// Remove V everywhere else.
		for i, x := range c.Xs {
			if i != fixed {
				if !s.Remove(x, c.V) {
					return false
				}
			}
		}
		return true
	}
	if possible == 1 {
		return s.Assign(c.Xs[last], c.V)
	}
	return true
}

// NeverValue forbids value V on all Xs.
type NeverValue struct {
	Xs []Var
	V  int
}

// Vars implements Propagator.
func (c *NeverValue) Vars() []Var { return c.Xs }

// Propagate implements Propagator.
func (c *NeverValue) Propagate(s *Solver) bool {
	for _, x := range c.Xs {
		if !s.Remove(x, c.V) {
			return false
		}
	}
	return true
}

// NotEqualVars enforces X ≠ Y (as variables, i.e. different values).
type NotEqualVars struct{ X, Y Var }

// Vars implements Propagator.
func (c *NotEqualVars) Vars() []Var { return []Var{c.X, c.Y} }

// Propagate implements Propagator.
func (c *NotEqualVars) Propagate(s *Solver) bool {
	if s.Fixed(c.X) {
		if !s.Remove(c.Y, s.Value(c.X)) {
			return false
		}
	}
	if s.Fixed(c.Y) {
		if !s.Remove(c.X, s.Value(c.Y)) {
			return false
		}
	}
	return true
}
