// Package cp is a from-scratch finite-domain constraint-programming
// engine and the MiniZinc-style sorting-kernel model of paper §4.2.
//
// The engine provides bitset domains (≤ 64 values), a propagation queue
// to fixpoint, chronological DFS with domain trailing, and a small
// library of propagators: extensional tables, guarded (reified) copies,
// binary orderings, occurrence constraints, and a dedicated
// register-transition propagator playing the role of the element/channel
// decomposition a MiniZinc model compiles to. Unlike Chuffed — the only
// solver that cracked n = 3 in the paper — it does not learn clauses,
// which the evaluation calls out as the decisive solver feature; this is
// documented as expected behaviour (see EXPERIMENTS.md T5).
package cp

import (
	"math/bits"
	"time"
)

// Var is a finite-domain variable handle.
type Var int

// Domain is a bitset over values 0..63.
type Domain uint64

// Has reports whether value v is in the domain.
func (d Domain) Has(v int) bool { return d&(1<<v) != 0 }

// Size returns the number of values.
func (d Domain) Size() int { return bits.OnesCount64(uint64(d)) }

// Min returns the smallest value (d must be nonempty).
func (d Domain) Min() int { return bits.TrailingZeros64(uint64(d)) }

// Full returns the domain {0..n-1}.
func Full(n int) Domain {
	if n >= 64 {
		panic("cp: domain too large")
	}
	return Domain(1<<n - 1)
}

// Propagator is a constraint with a filtering algorithm. Propagate
// removes inconsistent values via Solver.Remove/Assign and returns false
// on wipe-out.
type Propagator interface {
	// Vars lists the variables to watch: the propagator re-runs when any
	// of their domains shrink.
	Vars() []Var
	// Propagate filters domains; returns false on conflict.
	Propagate(s *Solver) bool
}

// Solver is the FD engine.
type Solver struct {
	domains []Domain
	props   []Propagator
	watch   [][]int32

	queue   []int32
	inQueue []bool

	trail    []trailEntry
	trailLim []int

	// Budget limits (0 = unlimited).
	MaxNodes int64
	Timeout  time.Duration

	// Stop, when non-nil, is polled alongside the deadline check (every
	// 64 nodes); returning true aborts the search with Exhausted() false.
	// This is how callers plumb context cancellation into the DFS loop
	// without the solver importing context itself.
	Stop func() bool

	Nodes     int64
	Failures  int64
	deadline  time.Time
	exhausted bool
}

type trailEntry struct {
	v   Var
	old Domain
}

// NewSolver returns an empty solver.
func NewSolver() *Solver { return &Solver{} }

// NewVar allocates a variable with domain {0..n-1}.
func (s *Solver) NewVar(n int) Var {
	v := Var(len(s.domains))
	s.domains = append(s.domains, Full(n))
	s.watch = append(s.watch, nil)
	return v
}

// Dom returns the current domain of v.
func (s *Solver) Dom(v Var) Domain { return s.domains[v] }

// Value returns the assigned value of v (domain must be a singleton).
func (s *Solver) Value(v Var) int { return s.domains[v].Min() }

// Fixed reports whether v is assigned.
func (s *Solver) Fixed(v Var) bool { return s.domains[v].Size() == 1 }

// Post registers a propagator and schedules its first run.
func (s *Solver) Post(p Propagator) {
	idx := int32(len(s.props))
	s.props = append(s.props, p)
	s.inQueue = append(s.inQueue, false)
	for _, v := range p.Vars() {
		s.watch[v] = append(s.watch[v], idx)
	}
	s.enqueue(idx)
}

func (s *Solver) enqueue(p int32) {
	if !s.inQueue[p] {
		s.inQueue[p] = true
		s.queue = append(s.queue, p)
	}
}

func (s *Solver) save(v Var) {
	s.trail = append(s.trail, trailEntry{v: v, old: s.domains[v]})
}

// SetDomain restricts v to d ∩ dom(v); returns false on wipe-out.
func (s *Solver) SetDomain(v Var, d Domain) bool {
	nd := s.domains[v] & d
	if nd == s.domains[v] {
		return nd != 0
	}
	if nd == 0 {
		return false
	}
	s.save(v)
	s.domains[v] = nd
	for _, p := range s.watch[v] {
		s.enqueue(p)
	}
	return true
}

// Remove deletes value k from v's domain; returns false on wipe-out.
func (s *Solver) Remove(v Var, k int) bool {
	return s.SetDomain(v, ^(Domain(1) << k))
}

// Assign fixes v to k; returns false if k is not in the domain.
func (s *Solver) Assign(v Var, k int) bool {
	return s.SetDomain(v, Domain(1)<<k)
}

// fixpoint runs the propagation queue to completion.
func (s *Solver) fixpoint() bool {
	for len(s.queue) > 0 {
		p := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inQueue[p] = false
		if !s.props[p].Propagate(s) {
			s.queue = s.queue[:0]
			for i := range s.inQueue {
				s.inQueue[i] = false
			}
			return false
		}
	}
	return true
}

func (s *Solver) pushLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) popLevel() {
	lim := s.trailLim[len(s.trailLim)-1]
	s.trailLim = s.trailLim[:len(s.trailLim)-1]
	for i := len(s.trail) - 1; i >= lim; i-- {
		e := s.trail[i]
		s.domains[e.v] = e.old
	}
	s.trail = s.trail[:lim]
}

// Solve searches for one solution, branching on branchVars in order
// (smallest value first). It returns true if a solution was found;
// Exhausted distinguishes refutation from budget stop.
func (s *Solver) Solve(branchVars []Var) bool {
	if s.Timeout > 0 {
		s.deadline = time.Now().Add(s.Timeout)
	}
	s.exhausted = true
	if !s.fixpoint() {
		return false
	}
	return s.dfs(branchVars)
}

// Exhausted reports whether the last Solve explored the full tree (false
// when a budget stopped it early).
func (s *Solver) Exhausted() bool { return s.exhausted }

func (s *Solver) budgetStop() bool {
	if s.MaxNodes > 0 && s.Nodes >= s.MaxNodes {
		return true
	}
	if !s.deadline.IsZero() && s.Nodes%64 == 0 && time.Now().After(s.deadline) {
		return true
	}
	if s.Stop != nil && s.Nodes%64 == 0 && s.Stop() {
		return true
	}
	return false
}

func (s *Solver) dfs(branchVars []Var) bool {
	// Find first unfixed branch variable.
	var v Var = -1
	for _, bv := range branchVars {
		if !s.Fixed(bv) {
			v = bv
			break
		}
	}
	if v < 0 {
		return true // all decision variables fixed and consistent
	}
	if s.budgetStop() {
		s.exhausted = false
		return false
	}
	dom := s.domains[v]
	for k := 0; k < 64; k++ {
		if !dom.Has(k) {
			continue
		}
		s.Nodes++
		s.pushLevel()
		if s.Assign(v, k) && s.fixpoint() && s.dfs(branchVars) {
			return true
		}
		s.Failures++
		s.popLevel()
		if !s.exhausted {
			return false
		}
	}
	return false
}

// SolveAll enumerates solutions, invoking yield with the solver in a
// solved state; yield returns false to stop. Returns the solution count.
func (s *Solver) SolveAll(branchVars []Var, yield func() bool) int64 {
	if s.Timeout > 0 {
		s.deadline = time.Now().Add(s.Timeout)
	}
	s.exhausted = true
	if !s.fixpoint() {
		return 0
	}
	var count int64
	s.dfsAll(branchVars, &count, yield)
	return count
}

func (s *Solver) dfsAll(branchVars []Var, count *int64, yield func() bool) bool {
	var v Var = -1
	for _, bv := range branchVars {
		if !s.Fixed(bv) {
			v = bv
			break
		}
	}
	if v < 0 {
		*count++
		if yield != nil && !yield() {
			s.exhausted = false
			return false
		}
		return true
	}
	if s.budgetStop() {
		s.exhausted = false
		return false
	}
	dom := s.domains[v]
	for k := 0; k < 64; k++ {
		if !dom.Has(k) {
			continue
		}
		s.Nodes++
		s.pushLevel()
		if s.Assign(v, k) && s.fixpoint() {
			if !s.dfsAll(branchVars, count, yield) {
				s.popLevel()
				return false
			}
		} else {
			s.Failures++
		}
		s.popLevel()
	}
	return true
}
