package cp

import (
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/verify"
)

func TestDomainOps(t *testing.T) {
	d := Full(5)
	if d.Size() != 5 || !d.Has(0) || !d.Has(4) || d.Has(5) {
		t.Error("Full wrong")
	}
	if d.Min() != 0 {
		t.Error("Min wrong")
	}
}

func TestSolverBasics(t *testing.T) {
	s := NewSolver()
	x := s.NewVar(5)
	y := s.NewVar(5)
	s.Post(&LessEq{X: x, Y: y})
	s.Assign(y, 2)
	if !s.fixpoint() {
		t.Fatal("unexpected conflict")
	}
	if s.Dom(x) != Full(3) {
		t.Errorf("dom(x) = %b after y=2, want {0,1,2}", s.Dom(x))
	}
}

func TestTableGAC(t *testing.T) {
	s := NewSolver()
	x := s.NewVar(3)
	y := s.NewVar(3)
	s.Post(&Table{Xs: []Var{x, y}, Rows: [][]int{{0, 1}, {1, 2}}})
	if !s.fixpoint() {
		t.Fatal("conflict")
	}
	if s.Dom(x).Has(2) {
		t.Error("unsupported value 2 not removed from x")
	}
	if s.Dom(y).Has(0) {
		t.Error("unsupported value 0 not removed from y")
	}
	s.Assign(x, 1)
	s.fixpoint()
	if !s.Fixed(y) || s.Value(y) != 2 {
		t.Error("table did not propagate x=1 → y=2")
	}
}

func TestExactlyOne(t *testing.T) {
	s := NewSolver()
	vars := []Var{s.NewVar(3), s.NewVar(3), s.NewVar(3)}
	s.Post(&ExactlyOne{Xs: vars, V: 1})
	s.Assign(vars[0], 1)
	if !s.fixpoint() {
		t.Fatal("conflict")
	}
	if s.Dom(vars[1]).Has(1) || s.Dom(vars[2]).Has(1) {
		t.Error("value 1 not removed from other variables")
	}
}

func TestNotEqualVars(t *testing.T) {
	s := NewSolver()
	x, y := s.NewVar(2), s.NewVar(2)
	s.Post(&NotEqualVars{X: x, Y: y})
	s.Assign(x, 0)
	s.fixpoint()
	if !s.Fixed(y) || s.Value(y) != 1 {
		t.Error("x≠y did not force y=1")
	}
}

func TestSynthesizeN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := Synthesize(set, Options{Length: 4, Goal: GoalAscCounts0, NoSelfOps: true, CmpSymmetry: true})
	if res.Program == nil {
		t.Fatalf("no program found (%d nodes)", res.Nodes)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatalf("CP program does not sort: %s", res.Program.FormatInline(2))
	}
}

func TestSynthesizeN2NoLength3(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := Synthesize(set, Options{Length: 3, Goal: GoalExact})
	if res.Program != nil {
		t.Fatal("found an impossible 3-instruction kernel")
	}
	if !res.Exhausted {
		t.Error("refutation must be exhaustive")
	}
}

func TestSynthesizeMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	res := Synthesize(set, Options{Length: 3, Goal: GoalExact, NoSelfOps: true})
	if res.Program == nil {
		t.Fatal("no min/max program found")
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("min/max program does not sort")
	}
}

func TestGoalFormulationsN2(t *testing.T) {
	set := isa.NewCmov(2, 1)
	for _, g := range []Goal{GoalExact, GoalAscCounts0, GoalAscCounts, GoalAscExact} {
		res := Synthesize(set, Options{Length: 4, Goal: g})
		if res.Program == nil {
			t.Errorf("goal %d: no program", g)
			continue
		}
		if !verify.Sorts(set, res.Program) {
			t.Errorf("goal %d: incorrect program", g)
		}
	}
}

func TestHeuristicsRespected(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := Synthesize(set, Options{
		Length: 4, Goal: GoalAscCounts0,
		NoConsecutiveCmp: true, CmpSymmetry: true, NoSelfOps: true,
	})
	if res.Program == nil {
		t.Fatal("no program")
	}
	for i, in := range res.Program {
		if in.Dst == in.Src {
			t.Errorf("self-op at %d", i)
		}
		if in.Op == isa.Cmp && in.Dst > in.Src {
			t.Errorf("cmp symmetry violated at %d", i)
		}
		if i > 0 && in.Op == isa.Cmp && res.Program[i-1].Op == isa.Cmp {
			t.Errorf("consecutive cmps at %d", i)
		}
	}
}

func TestEnumerateAllN2(t *testing.T) {
	// All 4-instruction kernels for n=2 under the symmetry heuristics.
	set := isa.NewCmov(2, 1)
	res := EnumerateAll(set, Options{
		Length: 4, Goal: GoalAscCounts0,
		CmpSymmetry: true, NoSelfOps: true,
	}, 1000)
	if res.Solutions == 0 {
		t.Fatal("no solutions enumerated")
	}
	if !res.Exhausted {
		t.Error("enumeration must be exhaustive")
	}
	for _, p := range res.Programs() {
		if !verify.Sorts(set, p) {
			t.Fatalf("enumerated program does not sort: %s", p.FormatInline(2))
		}
	}
	t.Logf("n=2: %d length-4 kernels under symmetry heuristics", res.Solutions)
}

func TestBudgetStops(t *testing.T) {
	set := isa.NewCmov(3, 1)
	res := Synthesize(set, Options{Length: 11, Goal: GoalAscCounts0, MaxNodes: 100})
	if res.Exhausted && res.Program == nil {
		t.Error("budget-limited run claims exhaustion without a solution")
	}
}

func TestTimeoutStops(t *testing.T) {
	set := isa.NewCmov(3, 1)
	start := time.Now()
	res := Synthesize(set, Options{Length: 11, Goal: GoalExact, Timeout: 150 * time.Millisecond})
	if res.Program == nil && time.Since(start) > 5*time.Second {
		t.Error("timeout not respected")
	}
	_ = res
}
