package cp

import (
	"context"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
)

// stepProp is the register-transition propagator: the CP counterpart of
// the element/channel decomposition in the paper's MiniZinc model. It
// links one timestep's instruction variables (cmd, dst, src) with the
// register values and flags before and after the step for one example,
// filtering in both directions by support scanning over the feasible
// (cmd, dst, src) combinations.
type stepProp struct {
	ops           []isa.Op
	regs          int
	cmd, dst, src Var
	valIn, valOut []Var
	hasFlags      bool
	ltIn, gtIn    Var
	ltOut, gtOut  Var
	vars          []Var
}

func (p *stepProp) Vars() []Var { return p.vars }

// outSet returns the feasible values of register r after executing instr,
// given the current input domains.
func (p *stepProp) outSet(s *Solver, op isa.Op, d, src, r int) Domain {
	in := s.Dom(p.valIn[r])
	if op == isa.Cmp || r != d {
		return in
	}
	srcDom := s.Dom(p.valIn[src])
	switch op {
	case isa.Mov:
		return srcDom
	case isa.Cmovl, isa.Cmovg:
		flag := p.ltIn
		if op == isa.Cmovg {
			flag = p.gtIn
		}
		var out Domain
		fd := s.Dom(flag)
		if fd.Has(1) {
			out |= srcDom
		}
		if fd.Has(0) {
			out |= in
		}
		return out
	case isa.Min, isa.Max:
		var out Domain
		for x := 0; x < 64; x++ {
			if !in.Has(x) {
				continue
			}
			for y := 0; y < 64; y++ {
				if !srcDom.Has(y) {
					continue
				}
				res := x
				if (op == isa.Min && y < x) || (op == isa.Max && y > x) {
					res = y
				}
				out |= 1 << res
			}
		}
		return out
	}
	return in
}

// flagOut returns the feasible (lt, gt) output domains for instr.
func (p *stepProp) flagOut(s *Solver, op isa.Op, d, src int) (lt, gt Domain) {
	if op != isa.Cmp {
		return s.Dom(p.ltIn), s.Dom(p.gtIn)
	}
	a, b := s.Dom(p.valIn[d]), s.Dom(p.valIn[src])
	for x := 0; x < 64; x++ {
		if !a.Has(x) {
			continue
		}
		for y := 0; y < 64; y++ {
			if !b.Has(y) {
				continue
			}
			switch {
			case x < y:
				lt |= 1 << 1
				gt |= 1 << 0
			case x > y:
				lt |= 1 << 0
				gt |= 1 << 1
			default:
				lt |= 1 << 0
				gt |= 1 << 0
			}
		}
	}
	return lt, gt
}

func (p *stepProp) Propagate(s *Solver) bool {
	var cmdSup, dstSup, srcSup Domain
	outUnion := make([]Domain, p.regs)
	var ltUnion, gtUnion Domain

	for c := range p.ops {
		if !s.Dom(p.cmd).Has(c) {
			continue
		}
		op := p.ops[c]
		for d := 0; d < p.regs; d++ {
			if !s.Dom(p.dst).Has(d) {
				continue
			}
			for sr := 0; sr < p.regs; sr++ {
				if !s.Dom(p.src).Has(sr) {
					continue
				}
				// Check feasibility of this combo against the outputs.
				feasible := true
				outs := make([]Domain, p.regs)
				for r := 0; r < p.regs; r++ {
					o := p.outSet(s, op, d, sr, r) & s.Dom(p.valOut[r])
					if o == 0 {
						feasible = false
						break
					}
					outs[r] = o
				}
				var ltO, gtO Domain
				if feasible && p.hasFlags {
					lt, gt := p.flagOut(s, op, d, sr)
					ltO = lt & s.Dom(p.ltOut)
					gtO = gt & s.Dom(p.gtOut)
					if ltO == 0 || gtO == 0 {
						feasible = false
					}
				}
				if !feasible {
					continue
				}
				cmdSup |= 1 << c
				dstSup |= 1 << d
				srcSup |= 1 << sr
				for r := 0; r < p.regs; r++ {
					outUnion[r] |= outs[r]
				}
				if p.hasFlags {
					ltUnion |= ltO
					gtUnion |= gtO
				}
			}
		}
	}
	if !s.SetDomain(p.cmd, cmdSup) || !s.SetDomain(p.dst, dstSup) || !s.SetDomain(p.src, srcSup) {
		return false
	}
	for r := 0; r < p.regs; r++ {
		if !s.SetDomain(p.valOut[r], outUnion[r]) {
			return false
		}
	}
	if p.hasFlags {
		if !s.SetDomain(p.ltOut, ltUnion) || !s.SetDomain(p.gtOut, gtUnion) {
			return false
		}
	}
	return true
}

// Goal mirrors the §4 goal formulations for the CP model.
type Goal uint8

// Goal formulations (§4, §5.2 MiniZinc table).
const (
	GoalExact      Goal = iota // output registers are exactly 1..n
	GoalAscCounts0             // ascending + occurrence counts incl. 0
	GoalAscCounts              // ascending + occurrence counts of 1..n
	GoalAscExact               // ascending + counts + exact (over-constrained)
)

// Options configures the CP synthesis model.
type Options struct {
	Length int
	Goal   Goal

	// The §4 heuristics (the MiniZinc heuristic table of §5.2).
	NoConsecutiveCmp bool // (I)
	CmpSymmetry      bool // (II)
	NoSelfOps        bool
	FirstIsCmp       bool

	// Examples overrides the test suite (default: all permutations).
	Examples [][]int

	MaxNodes int64
	Timeout  time.Duration
}

// Result reports a CP synthesis outcome.
type Result struct {
	Program   isa.Program // nil if none found
	Exhausted bool        // search tree fully explored (refutation is sound)
	// Cancelled reports that the search stopped because the context
	// passed to SynthesizeContext was cancelled.
	Cancelled bool
	Nodes     int64
	Failures  int64
	Solutions int64 // only set by EnumerateAll
	Elapsed   time.Duration

	programs []isa.Program
}

// model builds the CP instance and returns the solver, the branch
// variables, and a decode function.
func model(set *isa.Set, opt Options) (*Solver, []Var, func() isa.Program) {
	s := NewSolver()
	r := set.Regs()
	n := set.N
	d := n + 1
	var ops []isa.Op
	switch set.Kind {
	case isa.KindCmov:
		ops = []isa.Op{isa.Mov, isa.Cmp, isa.Cmovl, isa.Cmovg}
	case isa.KindMinMax:
		ops = []isa.Op{isa.Mov, isa.Min, isa.Max}
	}
	cmpIdx := -1
	for i, op := range ops {
		if op == isa.Cmp {
			cmpIdx = i
		}
	}

	cmd := make([]Var, opt.Length)
	dst := make([]Var, opt.Length)
	src := make([]Var, opt.Length)
	branch := make([]Var, 0, 3*opt.Length)
	for t := 0; t < opt.Length; t++ {
		cmd[t] = s.NewVar(len(ops))
		dst[t] = s.NewVar(r)
		src[t] = s.NewVar(r)
		branch = append(branch, cmd[t], dst[t], src[t])
	}

	// Heuristic constraints.
	if opt.NoConsecutiveCmp && cmpIdx >= 0 {
		for t := 0; t+1 < opt.Length; t++ {
			var rows [][]int
			for a := range ops {
				for b := range ops {
					if a == cmpIdx && b == cmpIdx {
						continue
					}
					rows = append(rows, []int{a, b})
				}
			}
			s.Post(&Table{Xs: []Var{cmd[t], cmd[t+1]}, Rows: rows})
		}
	}
	if opt.CmpSymmetry && cmpIdx >= 0 {
		for t := 0; t < opt.Length; t++ {
			var rows [][]int
			for c := range ops {
				for a := 0; a < r; a++ {
					for b := 0; b < r; b++ {
						if c == cmpIdx && a >= b {
							continue
						}
						rows = append(rows, []int{c, a, b})
					}
				}
			}
			s.Post(&Table{Xs: []Var{cmd[t], dst[t], src[t]}, Rows: rows})
		}
	}
	if opt.NoSelfOps {
		for t := 0; t < opt.Length; t++ {
			s.Post(&NotEqualVars{X: dst[t], Y: src[t]})
		}
	}
	if opt.FirstIsCmp && cmpIdx >= 0 {
		s.Post(&Table{Xs: []Var{cmd[0]}, Rows: [][]int{{cmpIdx}}})
	}

	examples := opt.Examples
	if examples == nil {
		examples = perm.All(n)
	}
	for _, ex := range examples {
		// Value and flag trace variables for this example.
		val := make([][]Var, opt.Length+1)
		var lt, gt []Var
		if set.HasFlags() {
			lt = make([]Var, opt.Length+1)
			gt = make([]Var, opt.Length+1)
		}
		for t := 0; t <= opt.Length; t++ {
			val[t] = make([]Var, r)
			for reg := 0; reg < r; reg++ {
				val[t][reg] = s.NewVar(d)
			}
			if set.HasFlags() {
				lt[t] = s.NewVar(2)
				gt[t] = s.NewVar(2)
			}
		}
		// Initial state.
		for i, v := range ex {
			s.Assign(val[0][i], v)
		}
		for sc := n; sc < r; sc++ {
			s.Assign(val[0][sc], 0)
		}
		if set.HasFlags() {
			s.Assign(lt[0], 0)
			s.Assign(gt[0], 0)
		}
		// Transition propagators.
		for t := 0; t < opt.Length; t++ {
			p := &stepProp{
				ops: ops, regs: r,
				cmd: cmd[t], dst: dst[t], src: src[t],
				valIn: val[t], valOut: val[t+1],
				hasFlags: set.HasFlags(),
			}
			if set.HasFlags() {
				p.ltIn, p.gtIn, p.ltOut, p.gtOut = lt[t], gt[t], lt[t+1], gt[t+1]
			}
			p.vars = append([]Var{cmd[t], dst[t], src[t]}, val[t]...)
			p.vars = append(p.vars, val[t+1]...)
			if set.HasFlags() {
				p.vars = append(p.vars, lt[t], gt[t], lt[t+1], gt[t+1])
			}
			s.Post(p)
		}
		// Goal.
		final := val[opt.Length][:n]
		switch opt.Goal {
		case GoalExact:
			for i := 0; i < n; i++ {
				s.Assign(final[i], i+1)
			}
		case GoalAscCounts0, GoalAscCounts, GoalAscExact:
			for i := 0; i+1 < n; i++ {
				s.Post(&LessEq{X: final[i], Y: final[i+1]})
			}
			for v := 1; v <= n; v++ {
				s.Post(&ExactlyOne{Xs: final, V: v})
			}
			if opt.Goal != GoalAscCounts {
				s.Post(&NeverValue{Xs: final, V: 0})
			}
			if opt.Goal == GoalAscExact {
				for i := 0; i < n; i++ {
					s.Assign(final[i], i+1)
				}
			}
		}
	}

	s.MaxNodes = opt.MaxNodes
	s.Timeout = opt.Timeout
	decode := func() isa.Program {
		p := make(isa.Program, opt.Length)
		for t := 0; t < opt.Length; t++ {
			p[t] = isa.Instr{
				Op:  ops[s.Value(cmd[t])],
				Dst: uint8(s.Value(dst[t])),
				Src: uint8(s.Value(src[t])),
			}
		}
		return p
	}
	return s, branch, decode
}

// Synthesize searches for one program of the given length.
func Synthesize(set *isa.Set, opt Options) *Result {
	return SynthesizeContext(context.Background(), set, opt)
}

// SynthesizeContext is Synthesize with cancellation: the DFS polls ctx
// alongside its node/time budgets, so a cancelled context stops solver
// work promptly and is reported via Result.Cancelled.
func SynthesizeContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	start := time.Now()
	s, branch, decode := model(set, opt)
	s.Stop = func() bool { return ctx.Err() != nil }
	res := &Result{}
	if s.Solve(branch) {
		res.Program = decode()
	}
	res.Exhausted = s.Exhausted()
	res.Cancelled = !res.Exhausted && res.Program == nil && ctx.Err() != nil
	res.Nodes, res.Failures = s.Nodes, s.Failures
	res.Elapsed = time.Since(start)
	return res
}

// EnumerateAll counts (and optionally collects up to max) all programs of
// the given length satisfying the model — the paper's "all possible
// solutions" CP experiment (33612 without / 5602 with symmetries for
// n = 3).
func EnumerateAll(set *isa.Set, opt Options, max int) *Result {
	start := time.Now()
	s, branch, decode := model(set, opt)
	res := &Result{}
	res.Solutions = s.SolveAll(branch, func() bool {
		if max == 0 || len(res.programs) < max {
			res.programs = append(res.programs, decode())
		}
		return true
	})
	res.Exhausted = s.Exhausted()
	res.Nodes, res.Failures = s.Nodes, s.Failures
	res.Elapsed = time.Since(start)
	return res
}

// Programs returns the collected programs of an EnumerateAll run.
func (r *Result) Programs() []isa.Program { return r.programs }
