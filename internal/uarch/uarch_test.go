package uarch_test

import (
	"testing"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/uarch"
)

func TestScoreWeights(t *testing.T) {
	p, err := isa.ParseProgram("mov s1 r1; cmp r1 r2; cmovl r1 r2; cmovg r2 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := uarch.Score(p); got != 1+2+4+4 {
		t.Errorf("Score = %d, want 11", got)
	}
}

func TestCriticalPathChainVsParallel(t *testing.T) {
	set := isa.NewCmov(4, 1)
	// Serial chain: each cmp depends on the previous cmov's result.
	chain, _ := isa.ParseProgram("cmp r1 r2; cmovg r1 r2; cmp r1 r3; cmovg r1 r3; cmp r1 r4; cmovg r1 r4", 4)
	// Parallel: two independent chains.
	par, _ := isa.ParseProgram("cmp r1 r2; cmovg r1 r2; cmp r3 r4; cmovg r3 r4", 4)
	if cp := uarch.CriticalPath(set, chain); cp != 6 {
		t.Errorf("chain critical path = %d, want 6", cp)
	}
	if cp := uarch.CriticalPath(set, par); cp != 2 {
		t.Errorf("parallel critical path = %d, want 2", cp)
	}
}

func TestMovEliminated(t *testing.T) {
	set := isa.NewCmov(2, 1)
	p, _ := isa.ParseProgram("mov s1 r1; mov r1 r2; mov r2 s1", 2)
	if cp := uarch.CriticalPath(set, p); cp != 0 {
		t.Errorf("mov-only critical path = %d, want 0 (rename elimination)", cp)
	}
	a := uarch.Analyze(set, p)
	if a.Uops != 0 || a.Instructions != 3 {
		t.Errorf("Analyze = %+v, want 0 uops / 3 instructions", a)
	}
}

func TestThroughputOrdering(t *testing.T) {
	// A longer kernel of the same shape must not be faster; a kernel with
	// fewer uops should be at least as fast as its sorting-network
	// superset.
	set := isa.NewCmov(3, 1)
	net := sortnet.Optimal(3).CompileCmov() // 12 instructions
	opt := enum.ConfigBest()
	opt.MaxLen = 11
	res := enum.Run(set, opt)
	if res.Length != 11 {
		t.Fatal("synthesis failed")
	}
	synth := res.Program
	tn, ts := uarch.Throughput(set, net), uarch.Throughput(set, synth)
	if ts > tn+0.5 {
		t.Errorf("synthesized kernel throughput %.2f worse than network %.2f", ts, tn)
	}
	if tn <= 0 || ts <= 0 {
		t.Errorf("throughputs must be positive: %v %v", tn, ts)
	}
}

func TestMinMaxBeatsCmovModel(t *testing.T) {
	// §5.4: min/max kernels are faster than cmov kernels. The model must
	// reproduce the direction: fewer instructions and no flag bottleneck.
	cset := isa.NewCmov(3, 1)
	mset := isa.NewMinMax(3, 1)
	cm := uarch.Analyze(cset, sortnet.Optimal(3).CompileCmov())
	mm := uarch.Analyze(mset, sortnet.Optimal(3).CompileMinMax())
	if mm.Throughput >= cm.Throughput {
		t.Errorf("minmax throughput %.2f not better than cmov %.2f", mm.Throughput, cm.Throughput)
	}
	if mm.CriticalPath > cm.CriticalPath {
		t.Errorf("minmax critical path %d worse than cmov %d", mm.CriticalPath, cm.CriticalPath)
	}
}

func TestSynthesizedMinMaxHasBetterDependenceStructure(t *testing.T) {
	// §5.4: uiCA showed the synthesized min/max kernel has a better
	// dependence structure (more ILP) than the network implementation.
	set := isa.NewMinMax(3, 1)
	opt := enum.ConfigBest()
	opt.MaxLen = 8
	res := enum.Run(set, opt)
	if res.Length != 8 {
		t.Fatal("synthesis failed")
	}
	syn := uarch.Analyze(set, res.Program)
	net := uarch.Analyze(set, sortnet.Optimal(3).CompileMinMax())
	if syn.ILP < net.ILP {
		t.Errorf("synthesized ILP %.2f below network ILP %.2f", syn.ILP, net.ILP)
	}
	if syn.Throughput > net.Throughput {
		t.Errorf("synthesized throughput %.2f worse than network %.2f", syn.Throughput, net.Throughput)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	set := isa.NewCmov(2, 1)
	a := uarch.Analyze(set, nil)
	if a.Instructions != 0 || a.Throughput != 0 || a.CriticalPath != 0 {
		t.Errorf("uarch.Analyze(nil) = %+v", a)
	}
}

func TestProfileRankingStability(t *testing.T) {
	// The headline ranking — synthesized min/max kernel at least as fast
	// as its network implementation — must hold on both core profiles,
	// and the little core must never be faster than the big one.
	set := isa.NewMinMax(3, 1)
	opt := enum.ConfigBest()
	opt.MaxLen = 8
	res := enum.Run(set, opt)
	if res.Length != 8 {
		t.Fatal("synthesis failed")
	}
	net := sortnet.Optimal(3).CompileMinMax()
	for _, prof := range []uarch.Profile{uarch.BigCore, uarch.LittleCore} {
		syn := uarch.ThroughputProfile(set, res.Program, prof)
		nw := uarch.ThroughputProfile(set, net, prof)
		if syn > nw+1e-9 {
			t.Errorf("%s: synthesized %.2f slower than network %.2f", prof.Name, syn, nw)
		}
	}
	if big, little := uarch.ThroughputProfile(set, net, uarch.BigCore), uarch.ThroughputProfile(set, net, uarch.LittleCore); little < big {
		t.Errorf("little core faster than big core: %.2f vs %.2f", little, big)
	}
}

func TestLittleCorePaysForMoves(t *testing.T) {
	// Without move elimination, a mov-heavy kernel slows down relative to
	// the big core.
	set := isa.NewCmov(2, 1)
	p, _ := isa.ParseProgram("mov s1 r1; mov r1 r2; mov r2 s1", 2)
	if uarch.ThroughputProfile(set, p, uarch.LittleCore) <= uarch.ThroughputProfile(set, p, uarch.BigCore) {
		t.Error("moves should cost cycles on the little core")
	}
}

func TestThroughputDeterministic(t *testing.T) {
	set := isa.NewCmov(3, 1)
	p := sortnet.Optimal(3).CompileCmov()
	if uarch.Throughput(set, p) != uarch.Throughput(set, p) {
		t.Error("Throughput not deterministic")
	}
}
