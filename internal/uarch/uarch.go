// Package uarch is a static microarchitectural cost model for sorting
// kernels — the repository's stand-in for the uiCA/LLVM-MCA throughput
// predictions of the paper's evaluation (§5.3, §5.4).
//
// The model is a simplified out-of-order x86 core in the style of recent
// Intel/AMD designs:
//
//   - register-to-register moves are eliminated during renaming (zero
//     latency, no execution port — the paper's §2.1 observation that the
//     extra move "does not cause computational load in a functional
//     unit");
//   - cmp, cmov, and SIMD min/max are single-uop, one-cycle instructions
//     on a small set of ALU ports;
//   - issue width is four uops per cycle;
//   - only true (read-after-write) dependencies constrain execution,
//     matching full register renaming.
//
// Three metrics are produced: the paper's instruction-weight score
// (mov = 1, cmp = 2, cmov = 4, used in §5.3 to sample good n = 4
// kernels), the latency-weighted critical path, and a steady-state
// throughput estimate from a greedy port-binding simulation of many
// back-to-back independent kernel invocations.
package uarch

import (
	"fmt"

	"sortsynth/internal/isa"
)

// classInfo describes how the model executes one opcode.
type classInfo struct {
	latency    int
	ports      uint8 // bitmask of eligible execution ports
	eliminated bool  // handled at rename, consumes no port
}

// Profile parameterizes the modeled core.
type Profile struct {
	Name       string
	IssueWidth int
	NumPorts   int
	// MoveElimination models zero-latency register renaming of reg-reg
	// moves (the paper's §2.1 observation about the spare move; big
	// out-of-order cores have it, small in-order cores do not).
	MoveElimination bool
}

// BigCore is the default profile: a wide out-of-order core in the style
// of recent Intel/AMD designs (the class of machine the paper measures
// on).
var BigCore = Profile{Name: "big-ooo", IssueWidth: 4, NumPorts: 4, MoveElimination: true}

// LittleCore is a narrow in-order-ish profile (two ALU ports, no move
// elimination) for ranking-robustness checks.
var LittleCore = Profile{Name: "little", IssueWidth: 2, NumPorts: 2, MoveElimination: false}

// Profiles returns the named profiles, default first. The slice is
// freshly allocated; callers may reorder it.
func Profiles() []Profile { return []Profile{BigCore, LittleCore} }

// ProfileNames returns the selectable profile names, default first —
// the values accepted by the -uarch-profile flags and the API layer.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ProfileByName resolves a profile by its Name. The empty string means
// the default (BigCore); unknown names report ok = false. Allocation-
// free — cache-key canonicalization calls it on the serving hot path.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "", BigCore.Name:
		return BigCore, true
	case LittleCore.Name:
		return LittleCore, true
	}
	return Profile{}, false
}

// Modeled ports: 0..3 are ALU-capable; SIMD min/max can only use 0..2.
var classes = [isa.NumOps]classInfo{
	isa.Mov:   {latency: 0, eliminated: true},
	isa.Cmp:   {latency: 1, ports: 0b1111},
	isa.Cmovl: {latency: 1, ports: 0b1111},
	isa.Cmovg: {latency: 1, ports: 0b1111},
	isa.Min:   {latency: 1, ports: 0b0111},
	isa.Max:   {latency: 1, ports: 0b0111},
}

// Score is the paper's §5.3 instruction-weight score: mov = 1, cmp = 2,
// conditional move = 4. SIMD min/max are weighted like cmp (single-uop
// ALU operations), movdqa like mov.
func Score(p isa.Program) int {
	s := 0
	for _, in := range p {
		s += InstrScore(in)
	}
	return s
}

// InstrScore is one instruction's §5.3 weight — the additive per-step
// cost the search engine threads through its open list as a secondary
// priority (the program-level metrics below are not additive).
func InstrScore(in isa.Instr) int {
	switch in.Op {
	case isa.Mov:
		return 1
	case isa.Cmp, isa.Min, isa.Max:
		return 2
	case isa.Cmovl, isa.Cmovg:
		return 4
	}
	return 0
}

// deps returns the register/flag read and write sets of an instruction.
// Registers are numbered 0..regs-1; the flags are pseudo-register "regs".
func deps(in isa.Instr, regs int) (reads []int, writes []int) {
	flags := regs
	switch in.Op {
	case isa.Mov:
		return []int{int(in.Src)}, []int{int(in.Dst)}
	case isa.Cmp:
		return []int{int(in.Dst), int(in.Src)}, []int{flags}
	case isa.Cmovl, isa.Cmovg:
		// A conditional move truly depends on its old destination value
		// (it may keep it), the source, and the flags.
		return []int{int(in.Dst), int(in.Src), flags}, []int{int(in.Dst)}
	case isa.Min, isa.Max:
		return []int{int(in.Dst), int(in.Src)}, []int{int(in.Dst)}
	}
	panic(fmt.Sprintf("uarch: unknown op %v", in.Op))
}

// CriticalPath returns the latency of the longest true-dependency chain
// through the program, assuming all inputs ready at time 0 and
// move elimination.
func CriticalPath(set *isa.Set, p isa.Program) int {
	regs := set.Regs()
	ready := make([]int, regs+1) // completion time of last writer
	cp := 0
	for _, in := range p {
		reads, writes := deps(in, regs)
		start := 0
		for _, r := range reads {
			if ready[r] > start {
				start = ready[r]
			}
		}
		done := start + classes[in.Op].latency
		for _, w := range writes {
			ready[w] = done
		}
		if done > cp {
			cp = done
		}
	}
	return cp
}

// Analysis summarizes the static cost of a kernel.
type Analysis struct {
	Instructions int
	Uops         int // instructions that occupy an execution port
	Score        int
	CriticalPath int
	// ILP is the dependence-structure metric of the §5.4 uiCA analysis:
	// executed uops per critical-path cycle. Higher means the kernel
	// exposes more instruction-level parallelism.
	ILP float64
	// Throughput is the estimated steady-state cycles per kernel
	// invocation when invocations on independent data are issued
	// back-to-back.
	Throughput float64
}

// Analyze runs all metrics on p under the default BigCore profile.
func Analyze(set *isa.Set, p isa.Program) Analysis {
	return AnalyzeProfile(set, p, BigCore)
}

// AnalyzeProfile runs all metrics on p under prof. Score and
// CriticalPath are profile-independent (the critical path assumes move
// elimination either way — it measures the data-dependence structure);
// Throughput and the uop count follow the profile.
func AnalyzeProfile(set *isa.Set, p isa.Program, prof Profile) Analysis {
	a := Analysis{
		Instructions: len(p),
		Score:        Score(p),
		CriticalPath: CriticalPath(set, p),
	}
	for _, in := range p {
		if !classes[in.Op].eliminated || !prof.MoveElimination {
			a.Uops++
		}
	}
	if a.CriticalPath > 0 {
		a.ILP = float64(a.Uops) / float64(a.CriticalPath)
	}
	a.Throughput = ThroughputProfile(set, p, prof)
	return a
}

// Throughput estimates steady-state cycles per kernel invocation on the
// default BigCore profile.
func Throughput(set *isa.Set, p isa.Program) float64 {
	return ThroughputProfile(set, p, BigCore)
}

// ThroughputProfile estimates steady-state cycles per kernel invocation
// with a greedy cycle-accurate simulation: iterations of the kernel on
// independent inputs are issued in order, at most IssueWidth
// instructions per cycle, each uop executing on the lowest-numbered free
// eligible port once its operands are ready.
func ThroughputProfile(set *isa.Set, p isa.Program, prof Profile) float64 {
	if len(p) == 0 {
		return 0
	}
	const iterations = 64
	regs := set.Regs()

	type slot struct{ busyUntil int }
	var ports [8]slot
	numPorts := prof.NumPorts

	ready := make([]int, regs+1)
	cycle := 0     // current issue cycle
	issued := 0    // instructions issued this cycle
	lastDone := 0  // completion time of the final instruction
	firstDone := 0 // completion time of the first iteration

	for it := 0; it < iterations; it++ {
		// Fresh architectural inputs per iteration: reset dependence on
		// r1..rn (new data loaded), keep port/cycle state.
		for i := range ready {
			ready[i] = 0
		}
		for _, in := range p {
			cl := classes[in.Op]
			if cl.eliminated && !prof.MoveElimination {
				cl.eliminated = false
				cl.latency = 1
				cl.ports = uint8(1<<prof.NumPorts - 1)
			}
			reads, writes := deps(in, regs)
			start := cycle
			for _, r := range reads {
				if ready[r] > start {
					start = ready[r]
				}
			}
			var done int
			if cl.eliminated {
				done = start // zero latency, no port
			} else {
				// Find the earliest cycle ≥ start with a free eligible port.
				exec := start
				for {
					found := -1
					for pt := 0; pt < numPorts; pt++ {
						if cl.ports&(1<<pt) != 0 && ports[pt].busyUntil <= exec {
							found = pt
							break
						}
					}
					if found >= 0 {
						ports[found].busyUntil = exec + 1
						done = exec + cl.latency
						break
					}
					exec++
				}
			}
			for _, w := range writes {
				ready[w] = done
			}
			if done > lastDone {
				lastDone = done
			}
			// In-order issue, IssueWidth per cycle.
			issued++
			if issued == prof.IssueWidth {
				issued = 0
				cycle++
			}
		}
		if it == 0 {
			firstDone = lastDone
		}
	}
	if iterations == 1 {
		return float64(firstDone)
	}
	return float64(lastDone-firstDone) / float64(iterations-1)
}
