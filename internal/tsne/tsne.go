// Package tsne is a from-scratch t-distributed stochastic neighbor
// embedding, used to reproduce Figure 2 of the paper (the 2-D layout of
// the n=3 solution space under different cut constants).
//
// The implementation follows van der Maaten & Hinton (2008): pairwise
// affinities with per-point perplexity calibration by binary search,
// symmetrization, early exaggeration, and momentum gradient descent on
// the Student-t low-dimensional similarities.
package tsne

import (
	"math"
	"math/rand"
)

// Options configures an embedding run.
type Options struct {
	Perplexity float64 // default 50 (the paper's Figure 2 uses p=50)
	Iterations int     // default 300 (the paper's a70_p50_i300 run)
	LearnRate  float64 // default 200
	Seed       int64
}

// Embed computes a 2-D embedding of the given points (rows are points).
func Embed(points [][]float64, opt Options) [][2]float64 {
	n := len(points)
	if n == 0 {
		return nil
	}
	perp := opt.Perplexity
	if perp == 0 {
		perp = 50
	}
	if perp > float64(n-1)/3 {
		perp = math.Max(2, float64(n-1)/3)
	}
	iters := opt.Iterations
	if iters == 0 {
		iters = 300
	}
	lr := opt.LearnRate
	if lr == 0 {
		lr = 200
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			var s float64
			for k := range points[i] {
				diff := points[i][k] - points[j][k]
				s += diff * diff
			}
			d2[i][j] = s
			d2[j][i] = s
		}
	}

	// Conditional affinities with perplexity calibration.
	p := make([][]float64, n)
	logPerp := math.Log(perp)
	for i := range p {
		p[i] = make([]float64, n)
		lo, hi := 0.0, math.Inf(1)
		beta := 1.0
		for iter := 0; iter < 50; iter++ {
			var sum, hsum float64
			for j := 0; j < n; j++ {
				if j == i {
					p[i][j] = 0
					continue
				}
				v := math.Exp(-d2[i][j] * beta)
				p[i][j] = v
				sum += v
				hsum += v * d2[i][j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			// Shannon entropy of the conditional distribution.
			h := math.Log(sum) + beta*hsum/sum
			if math.Abs(h-logPerp) < 1e-5 {
				break
			}
			if h > logPerp {
				lo = beta
				if math.IsInf(hi, 1) {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := range p[i] {
			sum += p[i][j]
		}
		if sum == 0 {
			sum = 1e-12
		}
		for j := range p[i] {
			p[i][j] /= sum
		}
	}
	// Symmetrize.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j], p[j][i] = v, v
		}
	}

	// Initialize embedding.
	y := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	vel := make([][2]float64, n)
	grad := make([][2]float64, n)
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}

	const earlyExaggeration = 4.0
	const exaggerationUntil = 100
	for iter := 0; iter < iters; iter++ {
		exag := 1.0
		if iter < exaggerationUntil {
			exag = earlyExaggeration
		}
		// Student-t similarities.
		var qsum float64
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				v := 1 / (1 + dx*dx + dy*dy)
				q[i][j], q[j][i] = v, v
				qsum += 2 * v
			}
		}
		if qsum == 0 {
			qsum = 1e-12
		}
		// Gradient.
		for i := range grad {
			grad[i] = [2]float64{}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := (exag*p[i][j] - q[i][j]/qsum) * q[i][j]
				grad[i][0] += 4 * mult * (y[i][0] - y[j][0])
				grad[i][1] += 4 * mult * (y[i][1] - y[j][1])
			}
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		for i := range y {
			vel[i][0] = momentum*vel[i][0] - lr*grad[i][0]
			vel[i][1] = momentum*vel[i][1] - lr*grad[i][1]
			y[i][0] += vel[i][0]
			y[i][1] += vel[i][1]
		}
		// Re-center.
		var cx, cy float64
		for i := range y {
			cx += y[i][0]
			cy += y[i][1]
		}
		cx /= float64(n)
		cy /= float64(n)
		for i := range y {
			y[i][0] -= cx
			y[i][1] -= cy
		}
	}
	return y
}

// ProgramFeatures encodes fixed-length programs as one-hot feature
// vectors for the embedding: one block per instruction slot with a 1 at
// the instruction's dense ID.
func ProgramFeatures(ids [][]int, numInstr int) [][]float64 {
	out := make([][]float64, len(ids))
	for i, prog := range ids {
		v := make([]float64, len(prog)*numInstr)
		for t, id := range prog {
			v[t*numInstr+id] = 1
		}
		out[i] = v
	}
	return out
}
