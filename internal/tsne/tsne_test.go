package tsne

import (
	"math"
	"testing"
)

// clusters generates two well-separated Gaussian-ish blobs.
func clusters() ([][]float64, []int) {
	var pts [][]float64
	var labels []int
	for i := 0; i < 30; i++ {
		// Deterministic lattice jitter; no RNG needed.
		dx := float64(i%5) * 0.01
		dy := float64(i/5) * 0.01
		pts = append(pts, []float64{0 + dx, 0 + dy, 0})
		labels = append(labels, 0)
		pts = append(pts, []float64{10 + dx, 10 + dy, 10})
		labels = append(labels, 1)
	}
	return pts, labels
}

func TestEmbedSeparatesClusters(t *testing.T) {
	pts, labels := clusters()
	y := Embed(pts, Options{Perplexity: 10, Iterations: 300, Seed: 1})
	if len(y) != len(pts) {
		t.Fatalf("embedding has %d points, want %d", len(y), len(pts))
	}
	// Mean intra-cluster distance must be well below inter-cluster.
	var intra, inter float64
	var nIntra, nInter int
	for i := range y {
		for j := 0; j < i; j++ {
			dx := y[i][0] - y[j][0]
			dy := y[i][1] - y[j][1]
			d := math.Hypot(dx, dy)
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter < 2*intra {
		t.Errorf("clusters not separated: intra %.3f vs inter %.3f", intra, inter)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	pts, _ := clusters()
	a := Embed(pts, Options{Seed: 7, Iterations: 50})
	b := Embed(pts, Options{Seed: 7, Iterations: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
}

func TestEmbedEmptyAndSingle(t *testing.T) {
	if y := Embed(nil, Options{}); y != nil {
		t.Error("Embed(nil) should be nil")
	}
	y := Embed([][]float64{{1, 2}}, Options{Iterations: 10})
	if len(y) != 1 {
		t.Error("single point embedding wrong size")
	}
	if math.IsNaN(y[0][0]) || math.IsNaN(y[0][1]) {
		t.Error("NaN in single-point embedding")
	}
}

func TestNoNaNs(t *testing.T) {
	pts, _ := clusters()
	y := Embed(pts, Options{Perplexity: 5, Iterations: 200, Seed: 3})
	for i, p := range y {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
			t.Fatalf("point %d is not finite: %v", i, p)
		}
	}
}

func TestProgramFeatures(t *testing.T) {
	f := ProgramFeatures([][]int{{0, 2}, {1, 1}}, 3)
	if len(f) != 2 || len(f[0]) != 6 {
		t.Fatalf("feature shape wrong: %d x %d", len(f), len(f[0]))
	}
	if f[0][0] != 1 || f[0][5] != 1 || f[1][1] != 1 || f[1][4] != 1 {
		t.Errorf("one-hot encoding wrong: %v", f)
	}
}
