package sortnet

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/state"
)

func TestNetworksSort01(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for _, tc := range []struct {
			name string
			net  Network
		}{
			{"insertion", Insertion(n)},
			{"batcher", Batcher(n)},
			{"bosenelson", BoseNelson(n)},
			{"optimal", Optimal(n)},
		} {
			if !tc.net.Sorts01() {
				t.Errorf("%s(%d) fails the 0-1 test", tc.name, n)
			}
		}
	}
}

func TestOptimalSizes(t *testing.T) {
	// Known minimal comparator counts.
	want := map[int]int{1: 0, 2: 1, 3: 3, 4: 5, 5: 9, 6: 12, 7: 16, 8: 19}
	for n, size := range want {
		if got := Optimal(n).Size(); got != size {
			t.Errorf("Optimal(%d).Size() = %d, want %d", n, got, size)
		}
	}
}

func TestInsertionSize(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if got, want := Insertion(n).Size(), n*(n-1)/2; got != want {
			t.Errorf("Insertion(%d).Size() = %d, want %d", n, got, want)
		}
	}
}

func TestDepthSanity(t *testing.T) {
	// Depth is at most size and at least 1 for nonempty networks, and the
	// optimal n=4 network has the well-known depth 3.
	if d := Optimal(4).Depth(); d != 3 {
		t.Errorf("Optimal(4).Depth() = %d, want 3", d)
	}
	for n := 2; n <= 8; n++ {
		w := Batcher(n)
		if d := w.Depth(); d < 1 || d > w.Size() {
			t.Errorf("Batcher(%d).Depth() = %d out of range", n, d)
		}
	}
}

func TestApplyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(20) - 10
		}
		out := Batcher(n).Apply(in)
		for i := 1; i < n; i++ {
			if out[i-1] > out[i] {
				t.Fatalf("Batcher(%d) failed on %v: %v", n, in, out)
			}
		}
	}
}

func TestCompiledKernelsSort(t *testing.T) {
	// The compiled kernels must (a) sort every permutation and (b) have
	// the paper's sizes: 4·|CAS| for cmov, 3·|CAS| for min/max
	// (§2.1, §5.4: 9/15/27 min/max instructions for n = 3/4/5).
	for n := 2; n <= 5; n++ {
		net := Optimal(n)
		cm := net.CompileCmov()
		mm := net.CompileMinMax()
		if len(cm) != 4*net.Size() {
			t.Errorf("n=%d: cmov kernel has %d instructions, want %d", n, len(cm), 4*net.Size())
		}
		if len(mm) != 3*net.Size() {
			t.Errorf("n=%d: minmax kernel has %d instructions, want %d", n, len(mm), 3*net.Size())
		}
		cset := isa.NewCmov(n, 1)
		mset := isa.NewMinMax(n, 1)
		for _, in := range perm.All(n) {
			if out := state.RunInts(cset, cm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d cmov kernel fails on %v: %v", n, in, out)
			}
			if out := state.RunInts(mset, mm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d minmax kernel fails on %v: %v", n, in, out)
			}
		}
	}
}

func TestCompiledKernelsBeyondPaperRange(t *testing.T) {
	// The kernel compiler works past the paper's n ≤ 5: validate n = 6..8
	// network kernels with the generic interpreter on sampled
	// permutations and random duplicate-carrying inputs.
	rng := rand.New(rand.NewSource(21))
	for n := 6; n <= 8; n++ {
		net := Optimal(n)
		cm := net.CompileCmov()
		mm := net.CompileMinMax()
		cset := isa.NewCmov(n, 1)
		mset := isa.NewMinMax(n, 1)
		for trial := 0; trial < 300; trial++ {
			in := make([]int, n)
			for i := range in {
				in[i] = rng.Intn(2*n) - n
			}
			if out := state.RunInts(cset, cm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d cmov network fails on %v: %v", n, in, out)
			}
			if out := state.RunInts(mset, mm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d minmax network fails on %v: %v", n, in, out)
			}
		}
	}
}

func TestCompiledInstructionsAreLegal(t *testing.T) {
	// Every compiled instruction must be part of the enumerated
	// instruction set (cmp argument order etc.), so network kernels live
	// in the same search space as synthesized ones.
	for n := 2; n <= 5; n++ {
		cset := isa.NewCmov(n, 1)
		for _, in := range Optimal(n).CompileCmov() {
			if cset.InstrID(in) < 0 {
				t.Errorf("n=%d: compiled cmov instruction %v not in instruction set", n, in)
			}
		}
		mset := isa.NewMinMax(n, 1)
		for _, in := range Optimal(n).CompileMinMax() {
			if mset.InstrID(in) < 0 {
				t.Errorf("n=%d: compiled minmax instruction %v not in instruction set", n, in)
			}
		}
	}
}

func TestBestKnownTabulated(t *testing.T) {
	// The 9..12 tables carry the proven-optimal comparator counts and
	// must sort (0-1 principle, 2^n vectors each).
	want := map[int]int{9: 25, 10: 29, 11: 35, 12: 39}
	for n, size := range want {
		w := Optimal(n)
		if got := w.Size(); got != size {
			t.Errorf("Optimal(%d).Size() = %d, want %d", n, got, size)
		}
		if !w.Sorts01() {
			t.Errorf("Optimal(%d) fails the 0-1 test", n)
		}
	}
}

func TestOptimalFallbackBeyondTables(t *testing.T) {
	// Past the tables Optimal must return the smaller of Batcher and
	// Bose-Nelson, still sorting (0-1 checked up to n=16, sampled
	// beyond), so sortgen can plan any fixed n.
	for n := 13; n <= 16; n++ {
		w := Optimal(n)
		if !w.Sorts01() {
			t.Errorf("Optimal(%d) fails the 0-1 test", n)
		}
		if bn, b := BoseNelson(n).Size(), Batcher(n).Size(); w.Size() != min(bn, b) {
			t.Errorf("Optimal(%d).Size() = %d, want min(bose-nelson %d, batcher %d)", n, w.Size(), bn, b)
		}
	}
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{17, 24, 32, 50} {
		w := Optimal(n)
		for trial := 0; trial < 100; trial++ {
			in := make([]int, n)
			for i := range in {
				in[i] = rng.Intn(2*n) - n
			}
			out := w.Apply(in)
			for i := 1; i < n; i++ {
				if out[i-1] > out[i] {
					t.Fatalf("Optimal(%d) failed on %v: %v", n, in, out)
				}
			}
		}
	}
	if got := Optimal(0).Size(); got != 0 {
		t.Errorf("Optimal(0).Size() = %d, want 0", got)
	}
}

func TestOptimalPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Optimal(-1) did not panic")
		}
	}()
	Optimal(-1)
}

func TestOddEvenMergeRuns(t *testing.T) {
	// Exhaustive 0-1 run-pair certification for every run-length split
	// of up to 16 channels, plus a random-valued spot check.
	for m := 0; m <= 8; m++ {
		for k := 0; k <= 8; k++ {
			chA, chB := make([]int, m), make([]int, k)
			for i := range chA {
				chA[i] = i
			}
			for i := range chB {
				chB[i] = m + i
			}
			ops := OddEvenMergeRuns(chA, chB)
			if !MergesRuns01(ops, m, k) {
				t.Errorf("OddEvenMergeRuns(%d,%d) does not merge", m, k)
			}
			if m > 0 && k > 0 && len(ops) == 0 {
				t.Errorf("OddEvenMergeRuns(%d,%d) emitted no comparators", m, k)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m, k := 1+rng.Intn(10), 1+rng.Intn(10)
		in := make([]int, m+k)
		for i := range in {
			in[i] = rng.Intn(40) - 20
		}
		sortInts(in[:m])
		sortInts(in[m:])
		chA, chB := make([]int, m), make([]int, k)
		for i := range chA {
			chA[i] = i
		}
		for i := range chB {
			chB[i] = m + i
		}
		for _, c := range OddEvenMergeRuns(chA, chB) {
			if in[c.I] > in[c.J] {
				in[c.I], in[c.J] = in[c.J], in[c.I]
			}
		}
		for i := 1; i < len(in); i++ {
			if in[i-1] > in[i] {
				t.Fatalf("merge(%d,%d) left %v unsorted", m, k, in)
			}
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
