package sortnet

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/state"
)

func TestNetworksSort01(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for _, tc := range []struct {
			name string
			net  Network
		}{
			{"insertion", Insertion(n)},
			{"batcher", Batcher(n)},
			{"bosenelson", BoseNelson(n)},
			{"optimal", Optimal(n)},
		} {
			if !tc.net.Sorts01() {
				t.Errorf("%s(%d) fails the 0-1 test", tc.name, n)
			}
		}
	}
}

func TestOptimalSizes(t *testing.T) {
	// Known minimal comparator counts.
	want := map[int]int{1: 0, 2: 1, 3: 3, 4: 5, 5: 9, 6: 12, 7: 16, 8: 19}
	for n, size := range want {
		if got := Optimal(n).Size(); got != size {
			t.Errorf("Optimal(%d).Size() = %d, want %d", n, got, size)
		}
	}
}

func TestInsertionSize(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if got, want := Insertion(n).Size(), n*(n-1)/2; got != want {
			t.Errorf("Insertion(%d).Size() = %d, want %d", n, got, want)
		}
	}
}

func TestDepthSanity(t *testing.T) {
	// Depth is at most size and at least 1 for nonempty networks, and the
	// optimal n=4 network has the well-known depth 3.
	if d := Optimal(4).Depth(); d != 3 {
		t.Errorf("Optimal(4).Depth() = %d, want 3", d)
	}
	for n := 2; n <= 8; n++ {
		w := Batcher(n)
		if d := w.Depth(); d < 1 || d > w.Size() {
			t.Errorf("Batcher(%d).Depth() = %d out of range", n, d)
		}
	}
}

func TestApplyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(20) - 10
		}
		out := Batcher(n).Apply(in)
		for i := 1; i < n; i++ {
			if out[i-1] > out[i] {
				t.Fatalf("Batcher(%d) failed on %v: %v", n, in, out)
			}
		}
	}
}

func TestCompiledKernelsSort(t *testing.T) {
	// The compiled kernels must (a) sort every permutation and (b) have
	// the paper's sizes: 4·|CAS| for cmov, 3·|CAS| for min/max
	// (§2.1, §5.4: 9/15/27 min/max instructions for n = 3/4/5).
	for n := 2; n <= 5; n++ {
		net := Optimal(n)
		cm := net.CompileCmov()
		mm := net.CompileMinMax()
		if len(cm) != 4*net.Size() {
			t.Errorf("n=%d: cmov kernel has %d instructions, want %d", n, len(cm), 4*net.Size())
		}
		if len(mm) != 3*net.Size() {
			t.Errorf("n=%d: minmax kernel has %d instructions, want %d", n, len(mm), 3*net.Size())
		}
		cset := isa.NewCmov(n, 1)
		mset := isa.NewMinMax(n, 1)
		for _, in := range perm.All(n) {
			if out := state.RunInts(cset, cm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d cmov kernel fails on %v: %v", n, in, out)
			}
			if out := state.RunInts(mset, mm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d minmax kernel fails on %v: %v", n, in, out)
			}
		}
	}
}

func TestCompiledKernelsBeyondPaperRange(t *testing.T) {
	// The kernel compiler works past the paper's n ≤ 5: validate n = 6..8
	// network kernels with the generic interpreter on sampled
	// permutations and random duplicate-carrying inputs.
	rng := rand.New(rand.NewSource(21))
	for n := 6; n <= 8; n++ {
		net := Optimal(n)
		cm := net.CompileCmov()
		mm := net.CompileMinMax()
		cset := isa.NewCmov(n, 1)
		mset := isa.NewMinMax(n, 1)
		for trial := 0; trial < 300; trial++ {
			in := make([]int, n)
			for i := range in {
				in[i] = rng.Intn(2*n) - n
			}
			if out := state.RunInts(cset, cm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d cmov network fails on %v: %v", n, in, out)
			}
			if out := state.RunInts(mset, mm, in); !perm.IsSorted(out) {
				t.Fatalf("n=%d minmax network fails on %v: %v", n, in, out)
			}
		}
	}
}

func TestCompiledInstructionsAreLegal(t *testing.T) {
	// Every compiled instruction must be part of the enumerated
	// instruction set (cmp argument order etc.), so network kernels live
	// in the same search space as synthesized ones.
	for n := 2; n <= 5; n++ {
		cset := isa.NewCmov(n, 1)
		for _, in := range Optimal(n).CompileCmov() {
			if cset.InstrID(in) < 0 {
				t.Errorf("n=%d: compiled cmov instruction %v not in instruction set", n, in)
			}
		}
		mset := isa.NewMinMax(n, 1)
		for _, in := range Optimal(n).CompileMinMax() {
			if mset.InstrID(in) < 0 {
				t.Errorf("n=%d: compiled minmax instruction %v not in instruction set", n, in)
			}
		}
	}
}

func TestOptimalPanicsBeyond8(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Optimal(9) did not panic")
		}
	}()
	Optimal(9)
}
