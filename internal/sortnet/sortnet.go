// Package sortnet builds sorting networks and compiles them to the two
// kernel instruction sets.
//
// Sorting networks are the classical way to obtain oblivious sorting
// kernels (paper §2.1): an arrangement of compare-and-swap (CAS)
// operations whose order is independent of the data. The package provides
// the textbook constructions (insertion, Batcher odd-even merge,
// Bose-Nelson) and the known size-optimal networks for n ≤ 8, plus the
// standard CAS code patterns:
//
//	cmov ISA (4 instructions)     min/max ISA (3 instructions)
//	    mov  s1 ri                    mov s1 ri
//	    cmp  ri rj                    min ri rj
//	    cmovg ri rj                   max rj s1
//	    cmovg rj s1
//
// which yield kernels of length 4·|CAS| and 3·|CAS| respectively — the
// baselines the synthesized kernels beat by one instruction (§2.1).
package sortnet

import (
	"fmt"

	"sortsynth/internal/isa"
)

// CAS is a compare-and-swap between channels I < J: after the operation
// the smaller value is at I, the larger at J.
type CAS struct{ I, J int }

// Network is an oblivious sorting network: a sequence of CAS operations
// on n channels.
type Network struct {
	N   int
	Ops []CAS
}

// Size returns the number of compare-and-swap operations.
func (w Network) Size() int { return len(w.Ops) }

// Depth returns the number of parallel layers under greedy layering.
func (w Network) Depth() int {
	ready := make([]int, w.N) // earliest free layer per channel
	depth := 0
	for _, c := range w.Ops {
		l := max(ready[c.I], ready[c.J]) + 1
		ready[c.I], ready[c.J] = l, l
		if l > depth {
			depth = l
		}
	}
	return depth
}

// Apply runs the network on a copy of in and returns the result.
func (w Network) Apply(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	for _, c := range w.Ops {
		if out[c.I] > out[c.J] {
			out[c.I], out[c.J] = out[c.J], out[c.I]
		}
	}
	return out
}

// Sorts01 verifies the network with the 0-1 principle: a network sorts
// all inputs iff it sorts all 2^n vectors of zeros and ones (the sorting
// lemma cited in paper §2.3, applicable here because networks are built
// from single compare-and-swap operations).
func (w Network) Sorts01() bool {
	for bits := 0; bits < 1<<w.N; bits++ {
		in := make([]int, w.N)
		for i := range in {
			in[i] = bits >> i & 1
		}
		out := w.Apply(in)
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
	}
	return true
}

// Insertion returns the insertion-sort network with n(n-1)/2 comparators.
func Insertion(n int) Network {
	w := Network{N: n}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			w.Ops = append(w.Ops, CAS{j - 1, j})
		}
	}
	return w
}

// Batcher returns Batcher's odd-even mergesort network for any n,
// obtained from the power-of-two construction by dropping comparators
// that touch the (virtually +∞) padding channels.
func Batcher(n int) Network {
	w := Network{N: n}
	p := 1
	for p < n {
		p *= 2
	}
	for k := 1; k < p; k *= 2 {
		for j := k; j >= 1; j /= 2 {
			for lo := j % k; lo <= p-1-j; lo += 2 * j {
				lim := min(j-1, p-lo-j-1)
				for i := 0; i <= lim; i++ {
					if (i+lo)/(k*2) == (i+lo+j)/(k*2) {
						a, b := i+lo, i+lo+j
						if b < n {
							w.Ops = append(w.Ops, CAS{a, b})
						}
					}
				}
			}
		}
	}
	return w
}

// BoseNelson returns the Bose-Nelson network for n channels.
func BoseNelson(n int) Network {
	w := Network{N: n}
	var pbracket func(i, x, j, y int)
	p := func(i, j int) { w.Ops = append(w.Ops, CAS{i, j}) }
	pbracket = func(i, x, j, y int) {
		switch {
		case x == 1 && y == 1:
			p(i, j)
		case x == 1 && y == 2:
			p(i, j+1)
			p(i, j)
		case x == 2 && y == 1:
			p(i, j)
			p(i+1, j)
		default:
			a := x / 2
			b := y / 2
			if x%2 == 0 {
				b = (y + 1) / 2
			}
			pbracket(i, a, j, b)
			pbracket(i+a, x-a, j+b, y-b)
			pbracket(i+a, x-a, j, b)
		}
	}
	var pstar func(i, m int)
	pstar = func(i, m int) {
		if m > 1 {
			a := m / 2
			pstar(i, a)
			pstar(i+a, m-a)
			pbracket(i, a, i+a, m-a)
		}
	}
	pstar(0, n)
	return w
}

// optimalOps lists size-optimal networks for n ≤ 8 (sizes 0, 1, 3, 5, 9,
// 12, 16, 19 — optimality proven for all of these).
var optimalOps = map[int][]CAS{
	1: {},
	2: {{0, 1}},
	3: {{1, 2}, {0, 2}, {0, 1}},
	4: {{0, 1}, {2, 3}, {0, 2}, {1, 3}, {1, 2}},
	5: {{0, 1}, {3, 4}, {2, 4}, {2, 3}, {1, 4}, {0, 3}, {0, 2}, {1, 3}, {1, 2}},
	6: {{1, 2}, {4, 5}, {0, 2}, {3, 5}, {0, 1}, {3, 4}, {2, 5}, {0, 3}, {1, 4}, {2, 4}, {1, 3}, {2, 3}},
	7: {{1, 2}, {3, 4}, {5, 6}, {0, 2}, {3, 5}, {4, 6}, {0, 1}, {4, 5}, {2, 6}, {0, 4}, {1, 5}, {0, 3}, {2, 5}, {1, 3}, {2, 4}, {2, 3}},
	8: {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {1, 3}, {4, 6}, {5, 7}, {1, 2}, {5, 6}, {0, 4}, {3, 7}, {1, 5}, {2, 6}, {1, 4}, {3, 6}, {2, 4}, {3, 5}, {3, 4}},
}

// Optimal returns the best recorded sorting network for n: the proven
// size-optimal networks for n ≤ 8, the best-known (also size-optimal)
// tabulated networks for 9 ≤ n ≤ 12, and beyond the tables the smaller
// of the Batcher and Bose-Nelson constructions — so callers (sortgen in
// particular) can plan any fixed n without special-casing.
func Optimal(n int) Network {
	if n < 0 {
		panic(fmt.Sprintf("sortnet: invalid channel count n=%d", n))
	}
	if ops, ok := optimalOps[n]; ok {
		return Network{N: n, Ops: append([]CAS(nil), ops...)}
	}
	if ops, ok := bestKnownOps[n]; ok {
		return Network{N: n, Ops: append([]CAS(nil), ops...)}
	}
	if n == 0 {
		return Network{N: 0}
	}
	b, bn := Batcher(n), BoseNelson(n)
	if bn.Size() < b.Size() {
		return bn
	}
	return b
}

// CompileCmov emits the 4-instruction cmov compare-and-swap pattern for
// every CAS of the network, using scratch register s1 of a machine with
// w.N sorted registers.
func (w Network) CompileCmov() isa.Program {
	s1 := uint8(w.N) // first scratch register
	var p isa.Program
	for _, c := range w.Ops {
		ri, rj := uint8(c.I), uint8(c.J)
		p = append(p,
			isa.Instr{Op: isa.Mov, Dst: s1, Src: ri},
			isa.Instr{Op: isa.Cmp, Dst: ri, Src: rj},
			isa.Instr{Op: isa.Cmovg, Dst: ri, Src: rj},
			isa.Instr{Op: isa.Cmovg, Dst: rj, Src: s1},
		)
	}
	return p
}

// CompileMinMax emits the 3-instruction min/max compare-and-swap pattern
// for every CAS of the network.
func (w Network) CompileMinMax() isa.Program {
	s1 := uint8(w.N)
	var p isa.Program
	for _, c := range w.Ops {
		ri, rj := uint8(c.I), uint8(c.J)
		p = append(p,
			isa.Instr{Op: isa.Mov, Dst: s1, Src: ri},
			isa.Instr{Op: isa.Min, Dst: ri, Src: rj},
			isa.Instr{Op: isa.Max, Dst: rj, Src: s1},
		)
	}
	return p
}
