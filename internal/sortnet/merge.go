package sortnet

// This file generates Batcher odd-even *merge* networks for two adjacent
// sorted runs of arbitrary (not necessarily power-of-two) lengths. They
// are the glue sortgen uses to compose synthesized n ≤ 5 kernels into
// branchless sorters for any fixed n: sort each block with a kernel,
// then merge the sorted runs with an oblivious comparator schedule.
//
// Correctness of a merge network is cheap to certify: by the 0-1
// principle restricted to merge inputs, a network merges all inputs iff
// it merges every pair of sorted 0-1 runs — only (m+1)·(k+1) vectors for
// run lengths m and k, instead of 2^(m+k) for a full sorting check.

// OddEvenMergeRuns returns the comparator schedule that merges two
// sorted runs living on the channel lists a and b (in run order) into
// one sorted sequence over the concatenation a ++ b. The construction is
// Batcher's odd-even merge generalized to arbitrary run lengths: merge
// the even-indexed and odd-indexed subsequences recursively, then fix up
// adjacent pairs of the interleaving.
func OddEvenMergeRuns(a, b []int) []CAS {
	var ops []CAS
	oddEvenMerge(&ops, a, b)
	return ops
}

func oddEvenMerge(ops *[]CAS, a, b []int) {
	switch {
	case len(a) == 0 || len(b) == 0:
	case len(a) == 1 && len(b) == 1:
		*ops = append(*ops, CAS{a[0], b[0]})
	default:
		oddEvenMerge(ops, everyOther(a, 0), everyOther(b, 0))
		oddEvenMerge(ops, everyOther(a, 1), everyOther(b, 1))
		z := make([]int, 0, len(a)+len(b))
		z = append(z, a...)
		z = append(z, b...)
		for i := 1; i+1 < len(z); i += 2 {
			*ops = append(*ops, CAS{z[i], z[i+1]})
		}
	}
}

func everyOther(s []int, start int) []int {
	var out []int
	for i := start; i < len(s); i += 2 {
		out = append(out, s[i])
	}
	return out
}

// MergesRuns01 certifies a merge schedule over nch channels whose first
// m channels hold one ascending run and whose next k channels hold
// another: it exhaustively checks all (m+1)·(k+1) sorted 0-1 run pairs
// (the 0-1 principle restricted to merge inputs). Channels beyond m+k
// are ignored by the check but must not be touched by ops.
func MergesRuns01(ops []CAS, m, k int) bool {
	in := make([]int, m+k)
	for ones1 := 0; ones1 <= m; ones1++ {
		for ones2 := 0; ones2 <= k; ones2++ {
			for i := 0; i < m; i++ {
				in[i] = 0
				if i >= m-ones1 {
					in[i] = 1
				}
			}
			for i := 0; i < k; i++ {
				in[m+i] = 0
				if i >= k-ones2 {
					in[m+i] = 1
				}
			}
			for _, c := range ops {
				if in[c.I] > in[c.J] {
					in[c.I], in[c.J] = in[c.J], in[c.I]
				}
			}
			for i := 1; i < len(in); i++ {
				if in[i-1] > in[i] {
					return false
				}
			}
		}
	}
	return true
}
