package stoke

import (
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/state"
	"sortsynth/internal/verify"
)

func TestCostZeroOnCorrectKernel(t *testing.T) {
	set := isa.NewCmov(3, 1)
	m := state.NewMachine(set)
	net := sortnet.Optimal(3).CompileCmov()
	if c := cost(m, m.Initial(), net); c != 0 {
		t.Errorf("cost of correct kernel = %d, want 0", c)
	}
}

func TestCostPositiveOnBrokenKernel(t *testing.T) {
	set := isa.NewCmov(3, 1)
	m := state.NewMachine(set)
	p, _ := isa.ParseProgram("mov r1 r2", 3)
	if c := cost(m, m.Initial(), p); c <= 0 {
		t.Errorf("cost of broken kernel = %d, want > 0", c)
	}
}

func TestColdStartN2(t *testing.T) {
	// n=2 cold start is easy for MCMC; it should find a kernel quickly.
	set := isa.NewCmov(2, 1)
	res := Run(set, Options{Length: 4, Seed: 1, MaxProposals: 500_000})
	if res.Program == nil {
		t.Fatalf("cold start failed on n=2 (best cost %d)", res.BestCost)
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("stoke returned an incorrect program")
	}
}

func TestWarmStartKeepsCorrectProgram(t *testing.T) {
	// Warm-started from a correct kernel of exactly the target length,
	// the chain must terminate immediately with that kernel.
	set := isa.NewCmov(3, 1)
	net := sortnet.Optimal(3).CompileCmov()
	res := Run(set, Options{Length: len(net), Warm: net, Seed: 2})
	if res.Program == nil {
		t.Fatal("warm start lost a correct seed program")
	}
	if !verify.Sorts(set, res.Program) {
		t.Fatal("warm result incorrect")
	}
	if res.Proposals != 0 {
		t.Errorf("expected immediate acceptance, got %d proposals", res.Proposals)
	}
}

func TestWarmStartCannotReachLength11(t *testing.T) {
	// The paper's headline Stoke result: warm-starting from the
	// 12-instruction network kernel truncated/padded to 11 instructions,
	// stochastic search does not find an optimal kernel within a modest
	// budget. (A lucky seed could in principle succeed; the budget is
	// kept small enough that failure is the overwhelmingly likely
	// outcome, mirroring the paper's observation.)
	set := isa.NewCmov(3, 1)
	net := sortnet.Optimal(3).CompileCmov()
	res := Run(set, Options{Length: 11, Warm: net[:11], Seed: 3, MaxProposals: 50_000})
	if res.Program != nil && !verify.Sorts(set, res.Program) {
		t.Fatal("returned incorrect program")
	}
	t.Logf("warm length-11: found=%v best cost %d after %d proposals", res.Program != nil, res.BestCost, res.Proposals)
}

func TestSubsetOracleStillValidatesOnFullSuite(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := Run(set, Options{Length: 4, Seed: 4, TestSubset: 1, MaxProposals: 500_000})
	if res.Program != nil && !verify.Sorts(set, res.Program) {
		t.Fatal("subset oracle accepted an incorrect program")
	}
}

func TestDeterministicSeed(t *testing.T) {
	set := isa.NewCmov(2, 1)
	a := Run(set, Options{Length: 4, Seed: 7, MaxProposals: 10_000})
	b := Run(set, Options{Length: 4, Seed: 7, MaxProposals: 10_000})
	if a.Proposals != b.Proposals || a.Accepted != b.Accepted || a.BestCost != b.BestCost {
		t.Error("same seed produced different runs")
	}
}
