// Package stoke is a reimplementation of the Stoke-style stochastic
// superoptimizer used as a baseline in paper §5.2: Metropolis–Hastings
// MCMC over fixed-length programs with a test-case cost function.
//
// Modes match the paper's experiment matrix:
//
//   - cold start: begin from a random program (synthesis mode);
//   - warm start: begin from a given program, e.g. a sorting-network
//     kernel (optimization mode);
//   - the test oracle is either the full permutation suite or a random
//     subset.
//
// Moves: replace a random instruction, swap two instructions, change one
// opcode, or change one operand. The cost of a candidate is the summed
// sortedness violation over the test cases; zero cost on the full suite
// means a correct kernel.
package stoke

import (
	"context"
	"math"
	"math/rand"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// Options configures an MCMC run.
type Options struct {
	Length int
	// Warm, if non-nil, seeds the chain (warm start); otherwise the chain
	// starts from a random program (cold start). Warm programs longer
	// than Length are truncated; shorter ones padded with random
	// instructions.
	Warm isa.Program
	// TestSubset, if > 0, draws that many random permutations as the
	// test oracle instead of the full suite (the paper's "random test
	// suite" row). Final acceptance is always checked on the full suite.
	TestSubset int
	// Beta is the inverse temperature (default 1.0).
	Beta float64
	// MaxProposals bounds the chain length (default 1e6).
	MaxProposals int64
	Timeout      time.Duration
	Seed         int64
}

// Result reports an MCMC run.
type Result struct {
	Program   isa.Program // correct kernel, or nil
	Proposals int64
	Accepted  int64
	BestCost  int
	// Cancelled reports that the chain stopped because the context
	// passed to RunContext was cancelled.
	Cancelled bool
	Elapsed   time.Duration
}

// cost measures how unsorted the outputs are across the test inputs:
// for each test, the number of positions where the output differs from
// the sorted sequence, plus a penalty for erased values.
func cost(m *state.Machine, tests []state.Asg, p isa.Program) int {
	c := 0
	for _, a := range tests {
		out := m.RunAsg(a, p)
		if m.Sorted(out) {
			continue
		}
		// Position-wise mismatch against 1..n.
		for i := 0; i < m.Set.N; i++ {
			if m.Reg(out, i) != i+1 {
				c++
			}
		}
		if !m.Viable(out) {
			c += m.Set.N
		}
	}
	return c
}

// Run executes the MCMC search.
func Run(set *isa.Set, opt Options) *Result {
	return RunContext(context.Background(), set, opt)
}

// RunContext is Run with cancellation: the proposal loop polls ctx
// alongside the wall-clock deadline (every 512 proposals), so a
// cancelled context stops CPU work within a few milliseconds and is
// reported via Result.Cancelled.
func RunContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	m := state.NewMachine(set)
	instrs := set.Instrs()

	// Test suite.
	full := m.Initial()
	tests := full
	if opt.TestSubset > 0 && opt.TestSubset < len(full) {
		idx := rng.Perm(len(full))[:opt.TestSubset]
		tests = make([]state.Asg, len(idx))
		for i, j := range idx {
			tests[i] = full[j]
		}
	}

	// Initial program.
	cur := make(isa.Program, opt.Length)
	for i := range cur {
		if opt.Warm != nil && i < len(opt.Warm) {
			cur[i] = opt.Warm[i]
		} else {
			cur[i] = instrs[rng.Intn(len(instrs))]
		}
	}

	beta := opt.Beta
	if beta == 0 {
		beta = 1
	}
	maxProp := opt.MaxProposals
	if maxProp == 0 {
		maxProp = 1_000_000
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = start.Add(opt.Timeout)
	}

	res := &Result{BestCost: math.MaxInt}
	curCost := cost(m, tests, cur)
	cand := make(isa.Program, opt.Length)
	for res.Proposals = 0; res.Proposals < maxProp; res.Proposals++ {
		if curCost == 0 {
			// Validate on the full suite (subset oracles can accept
			// incorrect programs — the paper's observation).
			if cost(m, full, cur) == 0 {
				res.Program = cur.Clone()
				break
			}
			// Subset-correct but wrong: add penalty by switching to the
			// full suite for the rest of the run.
			tests = full
			curCost = cost(m, tests, cur)
		}
		if res.Proposals%512 == 0 {
			if ctx.Err() != nil {
				res.Cancelled = true
				break
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
		}
		copy(cand, cur)
		switch rng.Intn(4) {
		case 0: // replace a random instruction
			cand[rng.Intn(len(cand))] = instrs[rng.Intn(len(instrs))]
		case 1: // swap two instructions
			i, j := rng.Intn(len(cand)), rng.Intn(len(cand))
			cand[i], cand[j] = cand[j], cand[i]
		case 2: // change an opcode, keep operands when legal
			i := rng.Intn(len(cand))
			in := instrs[rng.Intn(len(instrs))]
			cand[i].Op = in.Op
			if set.InstrID(cand[i]) < 0 {
				cand[i] = in
			}
		case 3: // change one operand
			i := rng.Intn(len(cand))
			if rng.Intn(2) == 0 {
				cand[i].Dst = uint8(rng.Intn(set.Regs()))
			} else {
				cand[i].Src = uint8(rng.Intn(set.Regs()))
			}
			if set.InstrID(cand[i]) < 0 {
				continue // illegal (self-op or cmp order): reject
			}
		}
		candCost := cost(m, tests, cand)
		if candCost <= curCost || rng.Float64() < math.Exp(-beta*float64(candCost-curCost)) {
			cur, cand = cand, cur
			curCost = candCost
			res.Accepted++
		}
		if curCost < res.BestCost {
			res.BestCost = curCost
		}
	}
	if res.Program == nil && curCost == 0 && cost(m, full, cur) == 0 {
		res.Program = cur.Clone()
	}
	if res.Program != nil {
		res.BestCost = 0
	}
	res.Elapsed = time.Since(start)
	return res
}
