package enum

import "time"

// TraceSample is one measurement of search progress (Figure 1 of the
// paper plots Open and Solutions over time).
type TraceSample struct {
	Elapsed   time.Duration
	Expanded  int64
	Generated int64
	Open      int
	Solutions int64
}

// Trace collects periodic search progress samples.
type Trace struct {
	// SampleEvery is the number of expansions between samples
	// (default 256).
	SampleEvery int64
	Samples     []TraceSample
}

func (t *Trace) every() int64 {
	if t.SampleEvery <= 0 {
		return 256
	}
	return t.SampleEvery
}

func (t *Trace) sample(start time.Time, r *Result, open int, solutions int64) {
	t.Samples = append(t.Samples, TraceSample{
		Elapsed:   time.Since(start),
		Expanded:  r.Expanded,
		Generated: r.Generated,
		Open:      open,
		Solutions: solutions,
	})
}
