// Package enum implements the paper's enumerative synthesis algorithm for
// sorting kernels (§3): a Dijkstra/A* search over canonical execution
// states with
//
//   - search heuristics (permutation count, register-assignment count,
//     per-assignment instructions needed, §3.1),
//   - an instruction action guide derived from precomputed per-assignment
//     optimal programs (§3.2, non-optimality-preserving),
//   - viability checks (value erasure and per-assignment budget, §3.3),
//   - the non-optimality-preserving permutation-count cut (§3.5), and
//   - deduplication of semantically equivalent partial programs (§3.6),
//     which doubles as the path DAG from which all optimal solutions are
//     enumerated.
package enum

import (
	"time"

	"sortsynth/internal/uarch"
)

// Heuristic selects the A* guidance of §3.1.
type Heuristic uint8

// Available search heuristics.
const (
	HeurNone      Heuristic = iota // f = g: plain Dijkstra order
	HeurPermCount                  // f = g + w·(#distinct permutations − 1)
	HeurAsgCount                   // f = g + w·(#distinct register assignments − 1)
	HeurDistMax                    // f = g + max assignment distance (admissible)
)

// String returns the name used in the ablation tables.
func (h Heuristic) String() string {
	switch h {
	case HeurNone:
		return "none"
	case HeurPermCount:
		return "permutation count"
	case HeurAsgCount:
		return "register assignment count"
	case HeurDistMax:
		return "assignment instructions needed"
	}
	return "unknown"
}

// CutMode selects the §3.5 cut variant.
type CutMode uint8

// Cut variants.
const (
	CutNone     CutMode = iota
	CutFactor           // discard s at length ℓ if perm_count(s) > K · min perm_count at ℓ−1
	CutAdditive         // discard s at length ℓ if perm_count(s) > min perm_count at ℓ−1 + K
)

// Options configures one synthesis run.
type Options struct {
	// Heuristic orders the open list; Weight scales it (0 means 1).
	Heuristic Heuristic
	Weight    float64

	// Cut enables the non-optimality-preserving §3.5 cut with constant
	// CutK (the factor k, or the additive constant for CutAdditive).
	Cut  CutMode
	CutK float64

	// UseDistPrune enables the per-assignment budget check of §3.3 using
	// the precomputed distance tables: a state is discarded when some
	// assignment cannot be sorted within the remaining instruction budget.
	// This is optimality-preserving.
	UseDistPrune bool

	// UseActionGuide restricts expansion to instructions that start an
	// optimal completion of some individual assignment (§3.2).
	// Non-optimality-preserving.
	UseActionGuide bool

	// ViabilityErase enables the cheap §3.3 value-erasure check. It is
	// subsumed by UseDistPrune and on by default in the named configs.
	ViabilityErase bool

	// MaxLen bounds the program length (inclusive). 0 means unbounded
	// (in practice bounded by MaxDepth, the engines' depth ceiling).
	// Values above MaxDepth are rejected with a *DepthLimitError in
	// Result.Err rather than silently truncated. The search also tightens
	// the bound to the best solution found.
	MaxLen int

	// AllSolutions keeps searching after the first solution and records
	// the full optimal-path DAG so that every minimal program (up to
	// MaxSolutions) can be enumerated.
	AllSolutions bool

	// MaxSolutions caps the number of programs materialized by
	// AllSolutions (0 = unlimited). The DAG path count is exact either
	// way.
	MaxSolutions int

	// Workers > 1 runs the level-synchronous parallel Dijkstra variant
	// with a sharded parallel merge (see parallel.go and DESIGN.md §8);
	// ≤ 0 means GOMAXPROCS when that engine is selected. The solution
	// set, SolutionCount, and all Result counters are identical for
	// every worker count.
	Workers int

	// StateBudget caps the number of expanded states (0 = unlimited).
	StateBudget int64

	// Timeout aborts the search after the given wall time (0 = none).
	//
	// Deprecated: prefer RunContext with context.WithTimeout. A non-zero
	// Timeout is kept working by wiring it to context.WithTimeout inside
	// RunContext, so existing callers behave exactly as before.
	Timeout time.Duration

	// Trace, if non-nil, receives periodic search samples (Figure 1).
	Trace *Trace

	// DuplicateSafe searches over the weak-order test suite instead of
	// the paper's permutation suite: synthesized kernels then provably
	// sort arbitrary integers including ties, not just distinct values.
	// This repository's extension — the paper's §2.3 criterion admits
	// kernels that mis-sort duplicates (see EXPERIMENTS.md).
	DuplicateSafe bool

	// DisableSWAR turns off the SWAR bit-sliced execution layer (two
	// packed assignments per 64-bit word, DESIGN.md §15) and runs the
	// scalar per-Asg apply/prune path instead. SWAR is on by default;
	// both paths produce byte-identical solution sets, counters, and
	// traversal orders (the swar-check gate proves it), so the toggle
	// exists for differential testing and as an escape hatch — it never
	// participates in cache keys.
	DisableSWAR bool

	// Objective selects which member of the optimal-length solution set
	// the run returns (see the Objective type). The zero value,
	// ObjectiveShortest, is the paper's first-found behavior. Any other
	// objective makes the engine enumerate the optimal set internally
	// (as if AllSolutions were set) and rank it with the uarch cost
	// model; the bucket queue additionally orders equal-(f, g) pops by
	// accumulated instruction weight so the sequential engine walks
	// toward cheap programs first.
	Objective Objective

	// Profile names the uarch profile the objective ranking runs under
	// ("" = the default big out-of-order core). Unknown names are
	// rejected with an *UnknownProfileError in Result.Err. Ignored —
	// and excluded from cache keys — when Objective is shortest.
	Profile string
}

// weight returns the effective heuristic weight.
func (o *Options) weight() float64 {
	if o.Weight == 0 {
		return 1
	}
	return o.Weight
}

// CanonicalProfile returns the profile name as it participates in cache
// keys: "" when the objective is shortest (the ranking never runs, so
// the profile cannot influence the artifact and must not fragment the
// key space), otherwise the resolved profile name with the default
// spelled out. Unresolvable names are returned verbatim — they are
// rejected before any artifact exists.
func (o Options) CanonicalProfile() string {
	if o.Objective == ObjectiveShortest {
		return ""
	}
	if p, ok := uarch.ProfileByName(o.Profile); ok {
		return p.Name
	}
	return o.Profile
}

// ConfigDijkstra is plain Dijkstra enumeration with deduplication
// (ablation row "dijkstra, single core").
func ConfigDijkstra() Options {
	return Options{Heuristic: HeurNone, ViabilityErase: true}
}

// ConfigBase is the ablation baseline (I): A* with deduplication and no
// heuristic.
func ConfigBase() Options {
	return Options{Heuristic: HeurNone, ViabilityErase: true}
}

// ConfigBest is the paper's best configuration (III): permutation-count
// heuristic, per-assignment viability check, action guide, and the cut
// with k = 1 (§5.2).
func ConfigBest() Options {
	return Options{
		Heuristic:      HeurPermCount,
		UseDistPrune:   true,
		UseActionGuide: true,
		ViabilityErase: true,
		Cut:            CutFactor,
		CutK:           1,
	}
}

// ConfigAllSolutions enumerates every optimal solution: permutation-count
// guidance and optimality-preserving pruning only (a cut of k ≥ 2 may be
// added by the caller; the paper shows k = 2 preserves all solutions for
// n = 3).
func ConfigAllSolutions() Options {
	return Options{
		Heuristic:      HeurPermCount,
		UseDistPrune:   true,
		ViabilityErase: true,
		AllSolutions:   true,
	}
}

// ConfigProof is the exhaustive lower-bound mode: only
// optimality-preserving pruning, no heuristic ordering tricks needed.
// Run with MaxLen = L to certify that no kernel of length ≤ L exists.
func ConfigProof(maxLen int) Options {
	return Options{
		Heuristic:      HeurDistMax,
		UseDistPrune:   true,
		ViabilityErase: true,
		MaxLen:         maxLen,
		AllSolutions:   true,
	}
}
