package enum

import (
	"testing"

	"sortsynth/internal/cp"
	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// bruteForceCount enumerates every program of exactly the given length
// over the legal instruction set and counts the ones that sort all
// permutations — the ground truth for the all-solutions path-DAG
// machinery.
func bruteForceCount(set *isa.Set, length int) int64 {
	m := state.NewMachine(set)
	instrs := set.Instrs()
	var count int64
	var rec func(depth int, s state.State)
	rec = func(depth int, s state.State) {
		if depth == length {
			if m.AllSorted(s) {
				count++
			}
			return
		}
		for _, in := range instrs {
			rec(depth+1, m.Apply(nil, s, in))
		}
	}
	rec(0, m.Initial().Clone())
	return count
}

func TestAllSolutionsMatchesBruteForceN2(t *testing.T) {
	// 21 instructions, length 4: 194,481 programs enumerated explicitly.
	set := isa.NewCmov(2, 1)
	want := bruteForceCount(set, 4)
	if want == 0 {
		t.Fatal("brute force found no solutions")
	}

	opt := ConfigAllSolutions()
	opt.MaxLen = 4
	res := Run(set, opt)
	if res.Length != 4 {
		t.Fatalf("length = %d", res.Length)
	}
	if res.SolutionCount != want {
		t.Errorf("path-DAG count = %d, brute force = %d", res.SolutionCount, want)
	}
	if int64(len(res.Programs)) != want {
		t.Errorf("materialized %d programs, want %d", len(res.Programs), want)
	}
	// Programs must be pairwise distinct.
	seen := map[string]bool{}
	for _, p := range res.Programs {
		k := p.FormatInline(2)
		if seen[k] {
			t.Fatalf("duplicate program enumerated: %s", k)
		}
		seen[k] = true
	}
	t.Logf("n=2: %d optimal programs (brute force confirmed)", want)
}

func TestAllSolutionsMatchesBruteForceMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	want := bruteForceCount(set, 3)
	opt := ConfigAllSolutions()
	opt.MaxLen = 3
	res := Run(set, opt)
	if res.Length != 3 || res.SolutionCount != want {
		t.Errorf("minmax: length=%d count=%d, brute force=%d", res.Length, res.SolutionCount, want)
	}
}

// TestParallelCrosscheckMatrix runs the n=3 all-solutions enumeration
// across the full cut × worker matrix and pins the sharded-merge
// determinism contract (DESIGN.md §8): every parallel run must produce
// byte-identical results — Length, SolutionCount, and the ordered
// program list — regardless of worker count, and the solution *set*
// must equal the sequential engine's. The cut cases matter most: the
// k-cut compares each state against the level's best permutation count,
// so any drift in the merge order or the cut reference would change
// which states survive. Runs under -race via `make check`.
func TestParallelCrosscheckMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	cuts := []struct {
		name string
		cut  CutMode
		k    float64
	}{
		{"nocut", CutNone, 0},
		{"k=2", CutFactor, 2},
		{"k=1.5", CutFactor, 1.5},
		{"k=1", CutFactor, 1},
	}
	programs := func(res *Result) []string {
		out := make([]string, len(res.Programs))
		for i, p := range res.Programs {
			out[i] = p.FormatInline(set.N)
		}
		return out
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			opt := ConfigAllSolutions()
			opt.MaxLen = 11
			opt.Cut, opt.CutK = tc.cut, tc.k

			seq := Run(set, opt)
			if seq.Err != nil || seq.Length != 11 {
				t.Fatalf("sequential: length=%d err=%v", seq.Length, seq.Err)
			}
			seqSet := make(map[string]bool, len(seq.Programs))
			for _, p := range programs(seq) {
				if seqSet[p] {
					t.Fatalf("sequential enumerated duplicate %s", p)
				}
				seqSet[p] = true
			}

			var first []string
			for _, workers := range []int{2, 4, 8} {
				opt.Workers = workers
				par := Run(set, opt)
				if par.Err != nil {
					t.Fatalf("workers=%d: %v", workers, par.Err)
				}
				if par.Length != seq.Length || par.SolutionCount != seq.SolutionCount {
					t.Fatalf("workers=%d: length=%d count=%d, sequential %d/%d",
						workers, par.Length, par.SolutionCount, seq.Length, seq.SolutionCount)
				}
				got := programs(par)
				// Parallel runs are byte-identical across worker counts:
				// same programs in the same order.
				if first == nil {
					first = got
				} else if len(got) != len(first) {
					t.Fatalf("workers=%d enumerated %d programs, workers=2 %d", workers, len(got), len(first))
				} else {
					for i := range got {
						if got[i] != first[i] {
							t.Fatalf("workers=%d program %d = %s, workers=2 has %s", workers, i, got[i], first[i])
						}
					}
				}
				// And set-equal to the sequential engine.
				if len(got) != len(seqSet) {
					t.Fatalf("workers=%d enumerated %d programs, sequential %d", workers, len(got), len(seqSet))
				}
				for _, p := range got {
					if !seqSet[p] {
						t.Fatalf("workers=%d enumerated %s, absent from sequential set", workers, p)
					}
				}
				// Every enumerated kernel must actually sort.
				for i := 0; i < len(par.Programs); i += 61 {
					crosscheckSorts(t, set, par.Programs[i])
				}
			}
			t.Logf("%s: %d solutions identical across workers 2/4/8, set-equal to sequential", tc.name, seq.SolutionCount)
		})
	}
}

// crosscheckSorts verifies p on every permutation of 1..n.
func crosscheckSorts(t *testing.T, set *isa.Set, p isa.Program) {
	t.Helper()
	m := state.NewMachine(set)
	s := m.Initial().Clone()
	for _, in := range p {
		s = m.Apply(nil, s, in)
	}
	if !m.AllSorted(s) {
		t.Fatalf("enumerated program does not sort: %s", p.FormatInline(set.N))
	}
}

func TestCPEnumerationAgreesWithSearchN2(t *testing.T) {
	// A third, independent implementation: the CP model restricted to the
	// same legal instruction space (no self-ops, cmp argument order) must
	// count the same optimal programs.
	set := isa.NewCmov(2, 1)
	opt := ConfigAllSolutions()
	opt.MaxLen = 4
	res := Run(set, opt)

	cpRes := cp.EnumerateAll(set, cp.Options{
		Length: 4, Goal: cp.GoalAscCounts0,
		NoSelfOps: true, CmpSymmetry: true,
	}, 0)
	if !cpRes.Exhausted {
		t.Fatal("CP enumeration not exhaustive")
	}
	if cpRes.Solutions != res.SolutionCount {
		t.Errorf("CP counts %d solutions, search counts %d", cpRes.Solutions, res.SolutionCount)
	}
}
