package enum

import (
	"testing"

	"sortsynth/internal/cp"
	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// bruteForceCount enumerates every program of exactly the given length
// over the legal instruction set and counts the ones that sort all
// permutations — the ground truth for the all-solutions path-DAG
// machinery.
func bruteForceCount(set *isa.Set, length int) int64 {
	m := state.NewMachine(set)
	instrs := set.Instrs()
	var count int64
	var rec func(depth int, s state.State)
	rec = func(depth int, s state.State) {
		if depth == length {
			if m.AllSorted(s) {
				count++
			}
			return
		}
		for _, in := range instrs {
			rec(depth+1, m.Apply(nil, s, in))
		}
	}
	rec(0, m.Initial().Clone())
	return count
}

func TestAllSolutionsMatchesBruteForceN2(t *testing.T) {
	// 21 instructions, length 4: 194,481 programs enumerated explicitly.
	set := isa.NewCmov(2, 1)
	want := bruteForceCount(set, 4)
	if want == 0 {
		t.Fatal("brute force found no solutions")
	}

	opt := ConfigAllSolutions()
	opt.MaxLen = 4
	res := Run(set, opt)
	if res.Length != 4 {
		t.Fatalf("length = %d", res.Length)
	}
	if res.SolutionCount != want {
		t.Errorf("path-DAG count = %d, brute force = %d", res.SolutionCount, want)
	}
	if int64(len(res.Programs)) != want {
		t.Errorf("materialized %d programs, want %d", len(res.Programs), want)
	}
	// Programs must be pairwise distinct.
	seen := map[string]bool{}
	for _, p := range res.Programs {
		k := p.FormatInline(2)
		if seen[k] {
			t.Fatalf("duplicate program enumerated: %s", k)
		}
		seen[k] = true
	}
	t.Logf("n=2: %d optimal programs (brute force confirmed)", want)
}

func TestAllSolutionsMatchesBruteForceMinMaxN2(t *testing.T) {
	set := isa.NewMinMax(2, 1)
	want := bruteForceCount(set, 3)
	opt := ConfigAllSolutions()
	opt.MaxLen = 3
	res := Run(set, opt)
	if res.Length != 3 || res.SolutionCount != want {
		t.Errorf("minmax: length=%d count=%d, brute force=%d", res.Length, res.SolutionCount, want)
	}
}

func TestCPEnumerationAgreesWithSearchN2(t *testing.T) {
	// A third, independent implementation: the CP model restricted to the
	// same legal instruction space (no self-ops, cmp argument order) must
	// count the same optimal programs.
	set := isa.NewCmov(2, 1)
	opt := ConfigAllSolutions()
	opt.MaxLen = 4
	res := Run(set, opt)

	cpRes := cp.EnumerateAll(set, cp.Options{
		Length: 4, Goal: cp.GoalAscCounts0,
		NoSelfOps: true, CmpSymmetry: true,
	}, 0)
	if !cpRes.Exhausted {
		t.Fatal("CP enumeration not exhaustive")
	}
	if cpRes.Solutions != res.SolutionCount {
		t.Errorf("CP counts %d solutions, search counts %d", cpRes.Solutions, res.SolutionCount)
	}
}
