package enum

import (
	"fmt"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/uarch"
	"sortsynth/internal/verify"
)

func TestParseObjective(t *testing.T) {
	cases := []struct {
		in   string
		want Objective
		ok   bool
	}{
		{"", ObjectiveShortest, true},
		{"shortest", ObjectiveShortest, true},
		{"fastest", ObjectiveFastest, true},
		{"balanced", ObjectiveBalanced, true},
		{"FASTEST", 0, false},
		{"speed", 0, false},
	}
	for _, c := range cases {
		got, err := ParseObjective(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseObjective(%q): expected error", c.in)
		}
	}
	for _, o := range []Objective{ObjectiveShortest, ObjectiveFastest, ObjectiveBalanced} {
		back, err := ParseObjective(o.String())
		if err != nil || back != o {
			t.Errorf("round trip %v -> %q -> %v, %v", o, o.String(), back, err)
		}
	}
}

func TestObjectiveValidation(t *testing.T) {
	set := isa.NewCmov(2, 1)
	opt := ConfigBest()
	opt.MaxLen = 4
	opt.Objective = Objective(99)
	res := Run(set, opt)
	var objErr *UnknownObjectiveError
	if res.Err == nil || !asError(res.Err, &objErr) {
		t.Fatalf("invalid objective: Err = %v, want *UnknownObjectiveError", res.Err)
	}

	opt = ConfigBest()
	opt.MaxLen = 4
	opt.Objective = ObjectiveFastest
	opt.Profile = "no-such-core"
	res = Run(set, opt)
	var profErr *UnknownProfileError
	if res.Err == nil || !asError(res.Err, &profErr) {
		t.Fatalf("invalid profile: Err = %v, want *UnknownProfileError", res.Err)
	}

	// An unknown profile is rejected even under the default shortest
	// objective — a misspelled flag must not silently no-op.
	opt = ConfigBest()
	opt.MaxLen = 4
	opt.Profile = "no-such-core"
	res = Run(set, opt)
	if res.Err == nil || !asError(res.Err, &profErr) {
		t.Fatalf("invalid profile (shortest): Err = %v, want *UnknownProfileError", res.Err)
	}
}

func asError[T error](err error, target *T) bool {
	t, ok := err.(T)
	if ok {
		*target = t
	}
	return ok
}

// TestFastestWinnerInOptimalSet is the differential guarantee of the
// objective stage: the fastest winner is a member of the optimal-length
// solution set (computed independently, without cuts, by the
// all-solutions engine), verifies, and its uarch cost is no worse than
// the shortest pick's.
func TestFastestWinnerInOptimalSet(t *testing.T) {
	specs := []struct {
		set    *isa.Set
		maxLen int
	}{
		{isa.NewCmov(3, 1), 11},
		{isa.NewMinMax(3, 1), 8},
	}
	for _, sp := range specs {
		// Independent ground truth: every optimal program, no cuts.
		all := ConfigAllSolutions()
		all.MaxLen = sp.maxLen
		truth := Run(sp.set, all)
		if truth.Length != sp.maxLen {
			t.Fatalf("%v: ground truth length %d", sp.set, truth.Length)
		}
		optimal := make(map[string]bool, len(truth.Programs))
		for _, p := range truth.Programs {
			optimal[p.Format(sp.set.N)] = true
		}

		for _, obj := range []Objective{ObjectiveFastest, ObjectiveBalanced} {
			opt := ConfigBest()
			opt.MaxLen = sp.maxLen
			opt.Objective = obj
			res := Run(sp.set, opt)
			if res.Length != sp.maxLen || res.Program == nil {
				t.Fatalf("%v/%v: length %d, want %d", sp.set, obj, res.Length, sp.maxLen)
			}
			text := res.Program.Format(sp.set.N)
			if !optimal[text] {
				t.Errorf("%v/%v: winner not in the optimal-length solution set:\n%s", sp.set, obj, text)
			}
			if ce := verify.Counterexample(sp.set, res.Program); ce != nil {
				t.Errorf("%v/%v: winner fails on %v", sp.set, obj, ce)
			}
			if res.RerankCandidates == 0 || res.Cost <= 0 {
				t.Errorf("%v/%v: rerank stats missing: candidates %d cost %v",
					sp.set, obj, res.RerankCandidates, res.Cost)
			}

			// Cost must be ≤ the shortest pick's cost under the same metric.
			short := ConfigBest()
			short.MaxLen = sp.maxLen
			sres := Run(sp.set, short)
			ranked, _, err := RankPrograms(sp.set, []isa.Program{sres.Program, res.Program}, obj, "")
			if err != nil {
				t.Fatal(err)
			}
			if ranked[0].Format(sp.set.N) != text && optimal[text] {
				// The shortest pick ranked strictly better than the winner —
				// only possible if the ranking is broken.
				t.Errorf("%v/%v: shortest pick outranks the objective winner", sp.set, obj)
			}
		}
	}
}

// TestObjectiveWorkerMatrix pins the tentpole determinism claim: the
// uarch-ranked winner (and its cost) is byte-identical at workers
// 1/2/4/8, for both objectives, with and without the §3.5 cut. The
// sequential engine walks a cost-ordered open list and the parallel
// engine a level-synchronous frontier — the winner must not care.
func TestObjectiveWorkerMatrix(t *testing.T) {
	sets := []*isa.Set{isa.NewCmov(3, 1), isa.NewMinMax(3, 1)}
	maxLen := map[isa.Kind]int{isa.KindCmov: 11, isa.KindMinMax: 8}
	configs := []struct {
		name string
		opt  Options
	}{
		{"best", ConfigBest()},
		{"allsol", ConfigAllSolutions()},
	}
	for _, set := range sets {
		for _, cfg := range configs {
			for _, obj := range []Objective{ObjectiveFastest, ObjectiveBalanced} {
				var wantProg, wantCost string
				var wantCount int64
				for _, workers := range []int{1, 2, 4, 8} {
					opt := cfg.opt
					opt.MaxLen = maxLen[set.Kind]
					opt.Objective = obj
					opt.Workers = workers
					res := Run(set, opt)
					if res.Program == nil {
						t.Fatalf("%v/%s/%v w=%d: no program", set, cfg.name, obj, workers)
					}
					prog := res.Program.Format(set.N)
					cost := fmt.Sprintf("%.6f", res.Cost)
					if workers == 1 {
						wantProg, wantCost, wantCount = prog, cost, res.SolutionCount
						continue
					}
					if prog != wantProg {
						t.Errorf("%v/%s/%v: winner differs at workers=%d:\n  w1: %s\n  w%d: %s",
							set, cfg.name, obj, workers, wantProg, workers, prog)
					}
					if cost != wantCost {
						t.Errorf("%v/%s/%v: cost differs at workers=%d: %s vs %s",
							set, cfg.name, obj, workers, wantCost, cost)
					}
					if res.SolutionCount != wantCount {
						t.Errorf("%v/%s/%v: solution count differs at workers=%d: %d vs %d",
							set, cfg.name, obj, workers, wantCount, res.SolutionCount)
					}
				}
			}
		}
	}
}

// TestObjectivesDivergeAtSort3 pins the Neri-style divergence the whole
// feature exists for: at n=3 (cmov), shortest and fastest pick
// different programs, and the fastest one is strictly cheaper under the
// default profile's throughput model.
func TestObjectivesDivergeAtSort3(t *testing.T) {
	set := isa.NewCmov(3, 1)
	short := ConfigBest()
	short.MaxLen = 11
	sres := Run(set, short)

	fast := ConfigBest()
	fast.MaxLen = 11
	fast.Objective = ObjectiveFastest
	fres := Run(set, fast)

	if sres.Length != 11 || fres.Length != 11 {
		t.Fatalf("lengths %d/%d, want 11/11", sres.Length, fres.Length)
	}
	st, ft := sres.Program.Format(set.N), fres.Program.Format(set.N)
	if st == ft {
		t.Fatalf("shortest and fastest picked the same program at n=3:\n%s", st)
	}
	sc := uarch.Analyze(set, sres.Program).Throughput
	fc := uarch.Analyze(set, fres.Program).Throughput
	if fc > sc {
		t.Errorf("fastest throughput %.3f worse than shortest %.3f", fc, sc)
	}
	if fres.Cost != fc {
		t.Errorf("Result.Cost %.3f != analyzed throughput %.3f", fres.Cost, fc)
	}
}

// TestObjectiveAllSolutionsSurface checks that the caller's enumeration
// request survives the internal AllSolutions forcing: no Programs
// unless asked, ranked best-first and capped when asked.
func TestObjectiveAllSolutionsSurface(t *testing.T) {
	set := isa.NewCmov(3, 1)

	opt := ConfigAllSolutions()
	opt.AllSolutions = false // same pruning surface as the capped run below
	opt.MaxLen = 11
	opt.Objective = ObjectiveFastest
	res := Run(set, opt)
	if res.Programs != nil {
		t.Errorf("non-all run returned %d programs", len(res.Programs))
	}
	if res.SolutionCount < 2 {
		t.Errorf("objective run should report the exact solution count, got %d", res.SolutionCount)
	}

	all := ConfigAllSolutions()
	all.MaxLen = 11
	all.Objective = ObjectiveFastest
	all.MaxSolutions = 5
	ares := Run(set, all)
	if len(ares.Programs) != 5 {
		t.Fatalf("capped all run returned %d programs, want 5", len(ares.Programs))
	}
	if ares.Programs[0].Format(set.N) != res.Program.Format(set.N) {
		t.Errorf("ranked Programs[0] differs from the winner")
	}
	// Best-first: re-ranking the returned slice must not change it.
	ranked, _, err := RankPrograms(set, ares.Programs, ObjectiveFastest, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ranked {
		if ranked[i].Format(set.N) != ares.Programs[i].Format(set.N) {
			t.Errorf("Programs not in ranked order at %d", i)
			break
		}
	}
	if ares.SolutionCount != res.SolutionCount {
		t.Errorf("solution counts differ: %d vs %d", ares.SolutionCount, res.SolutionCount)
	}
}

// TestCostOrderBucketQueue pins the cost-ordered bucket mode against
// the default LIFO: same multiset of entries, cost-ascending pops
// within one (f, g) bucket, id-descending on ties.
func TestCostOrderBucketQueue(t *testing.T) {
	var q bucketQueue
	q.costOrder = true
	entries := []openEntry{
		{id: 1, cost: 9, g: 3},
		{id: 2, cost: 2, g: 3},
		{id: 3, cost: 5, g: 3},
		{id: 4, cost: 2, g: 3},
		{id: 5, cost: 7, g: 3},
	}
	for _, e := range entries {
		q.Push(10, e)
	}
	wantIDs := []int32{4, 2, 3, 5, 1} // cost asc, id desc on the 2/2 tie
	for i, want := range wantIDs {
		e, f, ok := q.Pop()
		if !ok || e.id != want || f != 10 {
			t.Fatalf("pop %d = id %d f %d ok %v, want id %d f 10", i, e.id, f, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok || q.Len() != 0 {
		t.Fatal("queue should be empty")
	}

	// Lower f still wins regardless of cost, and a drained bucket's
	// occupancy bit is cleared even in cost-ordered mode.
	q.Push(12, openEntry{id: 10, cost: 1, g: 3})
	q.Push(11, openEntry{id: 11, cost: 99, g: 3})
	if e, _, _ := q.Pop(); e.id != 11 {
		t.Fatalf("f-order broken: got id %d", e.id)
	}
	if e, _, _ := q.Pop(); e.id != 10 {
		t.Fatalf("single-entry cost bucket broken: got id %d", e.id)
	}
}
