package enum

import (
	"fmt"
	"sort"
	"strings"

	"sortsynth/internal/isa"
	"sortsynth/internal/uarch"
)

// Objective selects what a synthesis run optimizes among the
// minimum-length programs. Length always comes first — every objective
// returns a program from the optimal-length solution set — the
// objective decides which member of that set wins:
//
//   - ObjectiveShortest (the zero value) is the paper's behavior: the
//     first optimal program found, no uarch ranking.
//   - ObjectiveFastest ranks the optimal set by the uarch cost model —
//     steady-state throughput first, then the §5.3 instruction-weight
//     score, then the latency-weighted critical path (the model-best
//     convention of cmd/genkernels).
//   - ObjectiveBalanced ranks by the equal-weight blend of throughput
//     and critical path — a compromise between repeated-invocation
//     bandwidth and single-call latency — then the score.
//
// Every ranking breaks remaining ties by the canonical program text, so
// the winner is a pure function of the solution set (and therefore of
// the spec), not of engine traversal order or worker count.
type Objective uint8

// Objectives, in canonical order. The zero value preserves historical
// behavior everywhere an Options struct is zero-initialized.
const (
	ObjectiveShortest Objective = iota
	ObjectiveFastest
	ObjectiveBalanced
)

// String returns the canonical name used in flags, the HTTP API, and
// cache keys.
func (o Objective) String() string {
	switch o {
	case ObjectiveShortest:
		return "shortest"
	case ObjectiveFastest:
		return "fastest"
	case ObjectiveBalanced:
		return "balanced"
	}
	return fmt.Sprintf("objective(%d)", uint8(o))
}

// ParseObjective parses a canonical objective name; "" means shortest.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "shortest":
		return ObjectiveShortest, nil
	case "fastest":
		return ObjectiveFastest, nil
	case "balanced":
		return ObjectiveBalanced, nil
	}
	return 0, &UnknownObjectiveError{Name: s}
}

// UnknownObjectiveError reports an objective name (or out-of-range
// value) the engine does not implement.
type UnknownObjectiveError struct{ Name string }

func (e *UnknownObjectiveError) Error() string {
	return fmt.Sprintf("enum: unknown objective %q (want shortest, fastest or balanced)", e.Name)
}

// UnknownProfileError reports an Options.Profile name with no
// registered uarch profile.
type UnknownProfileError struct{ Name string }

func (e *UnknownProfileError) Error() string {
	return fmt.Sprintf("enum: unknown uarch profile %q (want %s)",
		e.Name, strings.Join(uarch.ProfileNames(), ", "))
}

// rerankCap bounds how many optimal programs an objective run
// materializes for ranking when the caller did not ask for the programs
// themselves. Far above every pinned solution-set size (n=3 cmov: 234;
// the largest known set is in the low thousands); if a set ever
// exceeds it, Result.RerankTruncated reports that the winner was picked
// from a deterministic prefix of the set.
const rerankCap = 1 << 16

// rankedProgram is one re-rank candidate with its sort keys
// precomputed.
type rankedProgram struct {
	prog    isa.Program
	primary float64
	score   int
	cp      int
	text    string
}

// rankPrograms orders the optimal-length candidates best-first under
// (obj, prof). The final tie-break on canonical program text makes the
// order — and in particular the winner — a pure function of the
// candidate set.
func rankPrograms(set *isa.Set, progs []isa.Program, obj Objective, prof uarch.Profile) []rankedProgram {
	rs := make([]rankedProgram, len(progs))
	for i, p := range progs {
		a := uarch.AnalyzeProfile(set, p, prof)
		r := rankedProgram{prog: p, score: a.Score, cp: a.CriticalPath, text: p.Format(set.N)}
		if obj == ObjectiveBalanced {
			r.primary = 0.5*a.Throughput + 0.5*float64(a.CriticalPath)
		} else {
			r.primary = a.Throughput
		}
		rs[i] = r
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].primary != rs[j].primary {
			return rs[i].primary < rs[j].primary
		}
		if rs[i].score != rs[j].score {
			return rs[i].score < rs[j].score
		}
		if rs[i].cp != rs[j].cp {
			return rs[i].cp < rs[j].cp
		}
		return rs[i].text < rs[j].text
	})
	return rs
}

// RankPrograms orders candidate programs best-first under obj and the
// named profile ("" = default), with the same deterministic tie-breaks
// the engine applies, and returns the winner's primary cost. It is the
// re-rank stage exposed for callers that already hold a solution set
// (tests, tooling, single-solution backends).
func RankPrograms(set *isa.Set, progs []isa.Program, obj Objective, profile string) ([]isa.Program, float64, error) {
	if obj > ObjectiveBalanced {
		return nil, 0, &UnknownObjectiveError{Name: obj.String()}
	}
	prof, ok := uarch.ProfileByName(profile)
	if !ok {
		return nil, 0, &UnknownProfileError{Name: profile}
	}
	if len(progs) == 0 {
		return nil, 0, nil
	}
	ranked := rankPrograms(set, progs, obj, prof)
	out := make([]isa.Program, len(ranked))
	for i := range ranked {
		out[i] = ranked[i].prog
	}
	return out, ranked[0].primary, nil
}
