package enum

import (
	"container/heap"
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
)

// The open-list and dedup benchmarks replay one pre-generated workload
// per iteration, so the bucket-queue and container/heap rows (and the
// flat-table and Go-map rows) are directly comparable with -benchmem.

type queueOp struct {
	pop bool
	f   int32
	g   uint8
}

func queueWorkload(n int) []queueOp {
	rng := rand.New(rand.NewSource(11))
	ops := make([]queueOp, 0, n)
	depth := 0
	for len(ops) < n {
		if depth > 0 && rng.Intn(3) == 0 {
			ops = append(ops, queueOp{pop: true})
			depth--
			continue
		}
		g := uint8(rng.Intn(30))
		ops = append(ops, queueOp{f: int32(g) + rng.Int31n(10), g: g})
		depth++
	}
	return ops
}

func BenchmarkOpenListBucketQueue(b *testing.B) {
	ops := queueWorkload(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q bucketQueue
		for _, op := range ops {
			if op.pop {
				q.Pop()
			} else {
				q.Push(op.f, openEntry{g: op.g})
			}
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

func BenchmarkOpenListContainerHeap(b *testing.B) {
	ops := queueWorkload(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h refHeap
		for _, op := range ops {
			if op.pop {
				heap.Pop(&h)
			} else {
				heap.Push(&h, refItem{f: op.f, g: op.g})
			}
		}
		for h.Len() > 0 {
			heap.Pop(&h)
		}
	}
}

func dedupKeys(n int) []state.Key128 {
	rng := rand.New(rand.NewSource(12))
	distinct := make([]state.Key128, n/4)
	for i := range distinct {
		distinct[i] = state.Key128{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	keys := make([]state.Key128, n)
	for i := range keys {
		keys[i] = distinct[rng.Intn(len(distinct))] // ~25% inserts, 75% hits
	}
	return keys
}

func BenchmarkDedupFlatTable(b *testing.B) {
	keys := dedupKeys(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := newFlatTable(1 << 8)
		for j, k := range keys {
			t.getOrPut(k, int32(j))
		}
	}
}

func BenchmarkDedupGoMap(b *testing.B) {
	keys := dedupKeys(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[state.Key128]int32, 1<<8)
		for j, k := range keys {
			if _, ok := m[k]; !ok {
				m[k] = int32(j)
			}
		}
	}
}

// BenchmarkSearchBestN3 runs the full sequential best-config search so
// allocs/op of the engine end to end is tracked by CI-visible output,
// on both execution layers: the SWAR default and the scalar oracle.
// This is the pin on the per-expansion hoists (parent indices, parent
// permutation count, the reused successor buffer) — they serve both
// paths, so a regression shows up in whichever row it lands on.
func BenchmarkSearchBestN3(b *testing.B) {
	set := isa.NewCmov(3, 1)
	for _, bc := range []struct {
		name string
		off  bool
	}{{"swar", false}, {"scalar", true}} {
		b.Run(bc.name, func(b *testing.B) {
			opt := ConfigBest()
			opt.DisableSWAR = bc.off
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := Run(set, opt)
				if res.Length != 11 {
					b.Fatalf("unexpected optimal length %d", res.Length)
				}
			}
		})
	}
}
