package enum

import (
	"context"
	"testing"
	"time"

	"sortsynth/internal/isa"
)

// slowOpts is a configuration that cannot finish an n=4 search quickly:
// plain Dijkstra expands millions of states before reaching length 20.
func slowOpts() Options {
	o := ConfigDijkstra()
	o.MaxLen = 20
	return o
}

func TestRunContextCancelStopsSearch(t *testing.T) {
	set := isa.NewCmov(4, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := RunContext(ctx, set, slowOpts())
	elapsed := time.Since(start)
	if !res.Cancelled {
		t.Errorf("Cancelled = false, want true (TimedOut=%v, Length=%d)", res.TimedOut, res.Length)
	}
	if res.TimedOut {
		t.Errorf("TimedOut = true for a plain cancellation")
	}
	if res.Length >= 0 {
		t.Errorf("Length = %d, want -1 on cancellation", res.Length)
	}
	if elapsed > 5*time.Second {
		t.Errorf("search took %v after a 100ms cancel; cancellation is not prompt", elapsed)
	}
}

func TestRunContextDeadlineReportsTimeout(t *testing.T) {
	set := isa.NewCmov(4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := RunContext(ctx, set, slowOpts())
	elapsed := time.Since(start)
	if !res.TimedOut {
		t.Errorf("TimedOut = false, want true")
	}
	if res.Cancelled {
		t.Errorf("Cancelled = true for a deadline expiry")
	}
	if elapsed > 5*time.Second {
		t.Errorf("search took %v after a 50ms deadline", elapsed)
	}
}

func TestTimeoutOptionWiresToContext(t *testing.T) {
	set := isa.NewCmov(4, 1)
	opt := slowOpts()
	opt.Timeout = 50 * time.Millisecond
	res := Run(set, opt)
	if !res.TimedOut {
		t.Errorf("TimedOut = false, want true via Options.Timeout")
	}
	if res.Proof {
		t.Errorf("Proof = true on a timed-out run")
	}
}

func TestRunContextCancelParallel(t *testing.T) {
	set := isa.NewCmov(4, 1)
	opt := slowOpts()
	opt.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := RunContext(ctx, set, opt)
	elapsed := time.Since(start)
	if !res.Cancelled {
		t.Errorf("Cancelled = false, want true (TimedOut=%v, Length=%d)", res.TimedOut, res.Length)
	}
	if elapsed > 10*time.Second {
		t.Errorf("parallel search took %v after a 100ms cancel", elapsed)
	}
}

func TestRunContextCompletedSearchUnaffected(t *testing.T) {
	// A context that is never cancelled must not change results.
	set := isa.NewCmov(3, 1)
	opt := ConfigBest()
	opt.MaxLen = 11
	res := RunContext(context.Background(), set, opt)
	if res.Length != 11 {
		t.Fatalf("Length = %d, want 11", res.Length)
	}
	if res.Cancelled || res.TimedOut {
		t.Errorf("spurious stop flags: Cancelled=%v TimedOut=%v", res.Cancelled, res.TimedOut)
	}
}
