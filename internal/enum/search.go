package enum

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
	"sortsynth/internal/tables"
	"sortsynth/internal/uarch"
)

// Result reports the outcome of a synthesis run.
type Result struct {
	// Program is the first optimal program found (nil if none).
	Program isa.Program
	// Programs holds the enumerated optimal programs in AllSolutions mode
	// (capped by MaxSolutions).
	Programs []isa.Program
	// Length is the length of the found solutions, or -1 if none.
	Length int
	// SolutionCount is the exact number of distinct optimal programs
	// (DAG path count) in AllSolutions mode; 1 if a single program was
	// synthesized; 0 if none. Objective runs enumerate the DAG
	// internally, so they always report the exact count.
	SolutionCount int64

	// Objective echoes the ranking objective the run was executed
	// under. For any objective other than shortest, Program is the
	// uarch-ranked winner of the optimal-length solution set and Cost is
	// its primary metric (estimated cycles per invocation for fastest;
	// the throughput/critical-path blend for balanced).
	Objective Objective
	Cost      float64
	// RerankCandidates is the number of optimal programs the ranking
	// stage scored; RerankTruncated reports that the solution set
	// exceeded the engine's ranking cap and the winner was chosen from
	// a deterministic prefix.
	RerankCandidates int
	RerankTruncated  bool

	// Search statistics.
	Expanded  int64 // states popped and expanded
	Generated int64 // successor states produced
	Deduped   int64 // successors merged into an existing state
	CutCount  int64 // successors discarded by the §3.5 cut
	Pruned    int64 // successors discarded by viability/budget checks

	// Exhausted reports that the open list ran empty (no timeout or
	// budget stop). Proof additionally asserts that only
	// optimality-preserving pruning was active, so "no solution found"
	// certifies that none exists within MaxLen.
	Exhausted bool
	Proof     bool
	TimedOut  bool
	// Cancelled reports that the search stopped because the context
	// passed to RunContext was cancelled (client disconnect, shutdown).
	// Deadline expiry — from Options.Timeout or a context deadline — is
	// reported as TimedOut instead.
	Cancelled bool

	// Err is set when the options were rejected before any search ran
	// (currently only *DepthLimitError); the rest of the result is zero
	// with Length = -1.
	Err error

	Elapsed time.Duration
}

// MaxDepth is the deepest program length either engine can represent:
// node depths are stored in a uint8, the cut reference table holds one
// slot per depth, and the bucket queue carves one g sub-bucket per depth
// out of each f-band. Options.MaxLen beyond it is rejected with a
// *DepthLimitError instead of silently truncating the search.
const MaxDepth = 250

// DepthLimitError reports an Options.MaxLen beyond MaxDepth.
type DepthLimitError struct{ MaxLen int }

func (e *DepthLimitError) Error() string {
	return fmt.Sprintf("enum: MaxLen %d exceeds the engine depth limit %d", e.MaxLen, MaxDepth)
}

type edge struct {
	parent int32
	instr  uint16
}

type node struct {
	edge
	extra  []edge // additional optimal parents (AllSolutions mode)
	g      uint8
	sorted bool
}

type searcher struct {
	m   *state.Machine
	set *isa.Set
	tab *tables.Table
	opt Options

	nodes    []node
	dedup    *flatTable
	open     bucketQueue
	arena    state.Arena
	projSet  state.ProjSet
	bound    int // inclusive length bound
	bestPerm []int32
	sols     []int32
	optLen   int
	res      *Result
	start    time.Time
	ctx      context.Context
	buf      state.State
	done     bool // single-solution mode: stop at the first solution

	// Hot-loop hoists: the distance LUT is fetched once per run (not per
	// candidate), and swar selects the bit-sliced execution layer
	// (DESIGN.md §15) over the scalar per-Asg oracle path.
	lut  *state.DistLUT
	pidx []uint32 // parent distance-table indices for ApplyDistSWAR
	swar bool

	// Cut bookkeeping hoists: projPres[id] marks instructions that
	// cannot change any assignment's projection (state.ProjPreserving),
	// whose children inherit the parent's distinct projection count
	// parentPC verbatim — no per-assignment recount needed.
	projPres []bool
	parentPC int

	// The caller's enumeration request, before newSearcher forced
	// AllSolutions for an objective run: finish restores the requested
	// Programs surface after the ranking stage.
	userAll     bool
	userMaxSols int
}

// Run synthesizes sorting kernels for the given instruction set according
// to opt. Without AllSolutions it stops at the first solution; with
// AllSolutions it exhausts the (pruned) search space at the optimal
// length and enumerates all optimal programs.
func Run(set *isa.Set, opt Options) *Result {
	return RunContext(context.Background(), set, opt)
}

// RunContext is Run with cancellation: the search loop periodically
// checks ctx alongside its other stop conditions, so client disconnects
// and graceful shutdowns stop the search promptly. A context deadline is
// reported as Result.TimedOut, a plain cancellation as Result.Cancelled.
// Options.Timeout, when set, is wired to context.WithTimeout and keeps
// its historical meaning.
func RunContext(ctx context.Context, set *isa.Set, opt Options) *Result {
	if opt.MaxLen > MaxDepth {
		return &Result{Length: -1, Err: &DepthLimitError{MaxLen: opt.MaxLen}}
	}
	if opt.Objective > ObjectiveBalanced {
		return &Result{Length: -1, Err: &UnknownObjectiveError{Name: opt.Objective.String()}}
	}
	if opt.Objective != ObjectiveShortest || opt.Profile != "" {
		if _, ok := uarch.ProfileByName(opt.Profile); !ok {
			return &Result{Length: -1, Err: &UnknownProfileError{Name: opt.Profile}}
		}
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	if opt.Workers > 1 {
		return runParallel(ctx, set, opt)
	}
	s := newSearcher(ctx, set, opt)
	s.seedOpen()
	s.search()
	return s.finish()
}

// newSearcher builds the state shared by both engines: machine, tables,
// bounds, the cut reference, and the root node. The sequential open list
// and dedup table are seeded separately (seedOpen); the parallel engine
// brings its own sharded dedup layer and frontier instead.
func newSearcher(ctx context.Context, set *isa.Set, opt Options) *searcher {
	userAll, userMaxSols := opt.AllSolutions, opt.MaxSolutions
	if opt.Objective != ObjectiveShortest {
		// The objective winner is defined over the optimal-length
		// solution set, so objective runs always record the full path
		// DAG and enumerate it — in both engines — regardless of what
		// program surface the caller asked for. finish() restores the
		// caller's AllSolutions/MaxSolutions view after ranking.
		opt.AllSolutions = true
		opt.MaxSolutions = max(rerankCap, userMaxSols)
	}
	suite := state.SuitePermutations
	if opt.DuplicateSafe {
		suite = state.SuiteWeakOrders
	}
	m := state.NewMachineSuite(set, suite)
	s := &searcher{
		m:   m,
		set: set,
		opt: opt,
		ctx: ctx,
		// "Unbounded" runs are bounded by the representable depth; no
		// sorting kernel comes anywhere near it (n=6 needs 45), so an
		// exhausted depth-250 search is reported as a genuine exhaustion
		// exactly as before. MaxLen > MaxDepth is rejected in RunContext.
		bound:       MaxDepth,
		res:         &Result{Length: -1, Objective: opt.Objective},
		start:       time.Now(),
		userAll:     userAll,
		userMaxSols: userMaxSols,
	}
	if opt.MaxLen > 0 {
		s.bound = opt.MaxLen
	}
	if opt.UseDistPrune || opt.UseActionGuide || opt.Heuristic == HeurDistMax {
		s.tab = tables.For(m)
		s.lut = s.tab.DistLUT()
	}
	s.swar = !opt.DisableSWAR
	instrs := set.Instrs()
	s.projPres = make([]bool, len(instrs))
	for id, in := range instrs {
		s.projPres[id] = m.ProjPreserving(in)
	}
	// The apply buffer can never need more room than the initial state
	// (successors keep their parent's length and canonicalization only
	// shrinks), so one up-front allocation removes the per-candidate
	// capacity check from the fused generation loop.
	s.buf = make(state.State, 0, len(m.Initial()))
	s.bestPerm = make([]int32, s.bound+2)
	for i := range s.bestPerm {
		s.bestPerm[i] = math.MaxInt32
	}
	s.optLen = -1

	s.nodes = append(s.nodes, node{edge: edge{parent: -1}, g: 0})
	s.bestPerm[0] = int32(m.PermCount(m.Initial()))
	return s
}

// seedOpen initializes the sequential engine's dedup table, state arena,
// and open list with the root state.
func (s *searcher) seedOpen() {
	init := s.m.Initial()
	s.dedup = newFlatTable(1 << 12)
	s.dedup.set(state.HashKey(init), 0)
	s.open.costOrder = s.opt.Objective != ObjectiveShortest
	off, n := s.arena.Save(init)
	s.open.Push(s.priority(0, init, 0, false), openEntry{id: 0, off: off, n: n, g: 0})
}

// priority computes the open-list key f for a state at depth g. When the
// cut already computed the state's permutation count, callers pass it via
// (pc, havePC) so the permutation-count heuristic doesn't re-scan the
// state.
func (s *searcher) priority(g int, st state.State, pc int, havePC bool) int32 {
	var h int
	switch s.opt.Heuristic {
	case HeurPermCount:
		if havePC {
			h = pc - 1
		} else {
			h = s.m.PermCount(st) - 1
		}
	case HeurAsgCount:
		h = len(st) - 1
	case HeurDistMax:
		h = s.tab.MaxDist(st)
	}
	if w := s.opt.weight(); w != 1 {
		h = int(math.Round(w * float64(h)))
	}
	return int32(g + h)
}

func (s *searcher) search() {
	instrs := s.set.Instrs()
	var sampleCountdown int64 = 1
	for s.open.Len() > 0 {
		if s.opt.StateBudget > 0 && s.res.Expanded >= s.opt.StateBudget {
			return
		}
		sampleCountdown--
		if sampleCountdown <= 0 {
			if s.stopped() {
				return
			}
			if tr := s.opt.Trace; tr != nil {
				tr.sample(s.start, s.res, s.open.Len(), s.solutionsSoFar())
				sampleCountdown = tr.every()
			} else {
				sampleCountdown = 1024
			}
		}

		it, _, _ := s.open.Pop()
		nd := &s.nodes[it.id]
		if nd.g != it.g || nd.sorted {
			continue // stale entry from a reopened node
		}
		g := int(it.g)
		if g >= s.bound {
			continue // no extension can stay within the bound
		}
		st := s.arena.At(it.off, it.n)
		s.res.Expanded++

		var guide tables.Mask
		useGuide := s.opt.UseActionGuide
		if useGuide {
			guide = s.tab.GuideMask(st)
		}
		// The cut reference bestPerm[g] can only move when depth-g+1
		// children are recorded, so the limit is invariant across one
		// parent's expansion and hoisted out of the candidate funnel. The
		// parent's distance-table indices are likewise computed once here
		// and amortized over every candidate instruction (ApplyDistSWAR's
		// incremental index form).
		limit, intLimit := s.cutLimit(g)
		if s.opt.Cut != CutNone {
			s.parentPC = s.m.PermCount(st)
		}
		if s.swar && s.opt.UseDistPrune && s.bound-(g+1) >= 0 {
			s.fillPidx(st)
		}
		for id, in := range instrs {
			if useGuide && !guide.Has(id) {
				continue
			}
			s.expandChild(it.id, g, it.cost, st, uint16(id), in, limit, intLimit)
			if s.done {
				return
			}
		}
	}
	s.res.Exhausted = true
}

// cutLimit computes the §3.5 cut threshold for the children of a parent
// at depth g: the exact float limit and its floor for the integer
// exceeds-test. intLimit is MaxInt (and limit +Inf) when no cut applies —
// either the cut is off or no depth-g reference exists yet.
func (s *searcher) cutLimit(g int) (limit float64, intLimit int) {
	limit, intLimit = math.Inf(1), math.MaxInt
	if s.opt.Cut == CutNone {
		return limit, intLimit
	}
	if ref := s.bestPerm[g]; ref != math.MaxInt32 {
		if s.opt.Cut == CutFactor {
			limit = s.opt.CutK * float64(ref)
		} else {
			limit = float64(ref) + s.opt.CutK
		}
		intLimit = int(math.Floor(limit))
	}
	return limit, intLimit
}

// allSorted and allViable dispatch the batched goal and viability checks
// to the SWAR or scalar implementation; both pairs are defined to agree
// on every input.
func (s *searcher) allSorted(st state.State) bool {
	if s.swar {
		return s.m.AllSortedSWAR(st)
	}
	return s.m.AllSorted(st)
}

func (s *searcher) allViable(st state.State) bool {
	if s.swar {
		return s.m.AllViableSWAR(st)
	}
	return s.m.AllViable(st)
}

// fillPidx caches the distance-table index of every parent assignment in
// s.pidx, the base values ApplyDistSWAR's incremental index deltas start
// from.
func (s *searcher) fillPidx(st state.State) {
	if cap(s.pidx) < len(st) {
		s.pidx = make([]uint32, len(st))
	}
	s.pidx = s.pidx[:len(st)]
	for i, a := range st {
		s.pidx[i] = s.lut.Index(a)
	}
}

// stopped reports whether the search context is done and records the
// stop reason on the result (deadline → TimedOut, cancel → Cancelled).
func (s *searcher) stopped() bool {
	err := s.ctx.Err()
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.res.TimedOut = true
	} else {
		s.res.Cancelled = true
	}
	return true
}

// expandChild applies in to the parent state and routes the successor
// through the viability, cut, and deduplication pipeline. parentCost is
// the parent's accumulated instruction weight (maintained only in
// cost-ordered runs; 0 otherwise); limit and intLimit are the hoisted
// per-parent cut thresholds from cutLimit.
func (s *searcher) expandChild(parentID int32, g int, parentCost int32, st state.State, instrID uint16, in isa.Instr, limit float64, intLimit int) {
	// The raw successor keeps the parent's order; the prune predicates
	// and the cut's exceeds-test are order-insensitive, so the
	// canonicalizing sort is deferred until a candidate survives all of
	// them. With dist-pruning on, the prune is fused into the apply
	// itself and aborts at the first over-budget assignment; the SWAR
	// layer additionally folds the goal check into the same pass (the OR
	// of successor distances is zero exactly for solution states). The
	// budget check doubles as the depth guard: bound ≤ MaxDepth, so
	// pruning at budget < 0 also keeps g within its uint8 storage.
	cg := g + 1
	budget := s.bound - cg
	// Pre-apply cut for projection-preserving instructions: the child's
	// projection multiset is exactly the parent's, so it cannot be sorted
	// (the parent is not) and its distinct projection count is parentPC —
	// the §3.5 verdict is known before the successor exists, and the
	// whole apply+prune pass is skipped. Generated still counts the
	// candidate; the discard is booked as a cut (the same candidates die
	// either way, so the search tree is untouched).
	projPres := s.projPres[instrID]
	if projPres && intLimit != math.MaxInt && s.parentPC > intLimit {
		s.res.Generated++
		s.res.CutCount++
		return
	}
	var child state.State
	var sorted bool
	if s.opt.UseDistPrune && budget >= 0 {
		var ok bool
		if s.swar {
			child, sorted, ok = s.m.ApplyDistSWAR(s.buf, st, s.pidx, in, s.lut, budget)
		} else {
			child, ok = s.m.ApplyDist(s.buf, st, in, s.lut, budget)
			if ok {
				sorted = s.m.AllSorted(child)
			}
		}
		s.buf = child // keep the grown buffer
		s.res.Generated++
		if !ok {
			s.res.Pruned++
			return
		}
	} else {
		if s.swar {
			child = s.m.ApplySWAR(s.buf, st, in)
		} else {
			child = s.m.ApplyRaw(s.buf, st, in)
		}
		s.buf = child // keep the grown buffer
		s.res.Generated++
		sorted = s.allSorted(child)
		if !sorted {
			// A non-sorted state at the bound is a dead end: any
			// completion needs at least one more instruction. (The fused
			// branch prunes these through the dist check — every
			// non-sorted assignment has dist ≥ 1 > budget 0.)
			if budget <= 0 {
				s.res.Pruned++
				return
			}
			if s.opt.ViabilityErase && !s.allViable(child) {
				s.res.Pruned++
				return
			}
		}
	}
	// Projection-preserving instructions hand the child the parent's
	// distinct projection count outright; the pre-canonicalize
	// exceeds-test already ran before the apply, and the
	// post-canonicalize recount reduces to reusing parentPC.
	var pc int
	havePC := false
	if !sorted && intLimit != math.MaxInt && !projPres &&
		s.m.PermCountExceedsSet(child, intLimit, &s.projSet) {
		s.res.CutCount++
		return
	}
	state.Canonicalize(&child)
	if !sorted && s.opt.Cut != CutNone {
		if projPres {
			pc = s.parentPC
		} else {
			pc = s.m.PermCount(child)
		}
		havePC = true
		if float64(pc) > limit {
			s.res.CutCount++
			return
		}
		if cg < len(s.bestPerm) && int32(pc) < s.bestPerm[cg] {
			s.bestPerm[cg] = int32(pc)
		}
	}

	var childCost int32
	if s.open.costOrder {
		childCost = parentCost + int32(uarch.InstrScore(in))
	}
	key := state.HashKey(child)
	id := int32(len(s.nodes))
	if ex, inserted := s.dedup.getOrPut(key, id); !inserted {
		exn := &s.nodes[ex]
		switch {
		case cg > int(exn.g):
			s.res.Deduped++
		case cg == int(exn.g):
			s.res.Deduped++
			if s.opt.AllSolutions {
				exn.extra = append(exn.extra, edge{parent: parentID, instr: instrID})
			}
		default: // strictly better path to a known state (guided orders only)
			exn.g = uint8(cg)
			exn.edge = edge{parent: parentID, instr: instrID}
			exn.extra = nil
			if exn.sorted {
				s.recordSolution(ex, cg)
			} else {
				s.pushOpen(ex, cg, childCost, child, pc, havePC)
			}
		}
		return
	}

	s.nodes = append(s.nodes, node{
		edge:   edge{parent: parentID, instr: instrID},
		g:      uint8(cg),
		sorted: sorted,
	})
	if sorted {
		s.recordSolution(id, cg)
		return
	}
	s.pushOpen(id, cg, childCost, child, pc, havePC)
}

// pushOpen copies the state into the arena and queues the node.
func (s *searcher) pushOpen(id int32, g int, cost int32, st state.State, pc int, havePC bool) {
	off, n := s.arena.Save(st)
	s.open.Push(s.priority(g, st, pc, havePC), openEntry{id: id, off: off, n: n, cost: cost, g: uint8(g)})
}

// recordSolution registers a sorted state found at depth g and tightens
// the length bound.
func (s *searcher) recordSolution(id int32, g int) {
	switch {
	case s.optLen == -1 || g < s.optLen:
		s.optLen = g
		s.sols = s.sols[:0]
		s.sols = append(s.sols, id)
		if g < s.bound {
			s.bound = g
		}
	case g == s.optLen:
		s.sols = append(s.sols, id)
	}
	if !s.opt.AllSolutions {
		s.done = true
	}
}

func (s *searcher) solutionsSoFar() int64 { return int64(len(s.sols)) }

// program reconstructs the primary program of a node.
func (s *searcher) program(id int32) isa.Program {
	var rev []isa.Instr
	for v := id; s.nodes[v].parent >= 0; v = s.nodes[v].parent {
		rev = append(rev, s.set.Instrs()[s.nodes[v].instr])
	}
	p := make(isa.Program, len(rev))
	for i, in := range rev {
		p[len(rev)-1-i] = in
	}
	return p
}

// rerank is the objective stage: it scores every enumerated
// optimal-length program with the uarch cost model and installs the
// ranking winner as Result.Program. Because the final tie-break is the
// canonical program text, the winner depends only on the enumerated
// set — the engines (sequential cost-ordered, parallel level-
// synchronous) agree whenever their solution sets agree, which the
// crosscheck matrix pins for every cut. The caller's enumeration
// request is restored afterwards: Programs stays nil unless the caller
// asked for AllSolutions, and is truncated to the caller's
// MaxSolutions, in ranked (best-first) order.
func (s *searcher) rerank(r *Result) {
	prof, _ := uarch.ProfileByName(s.opt.Profile) // validated in RunContext
	ranked := rankPrograms(s.set, r.Programs, s.opt.Objective, prof)
	r.RerankCandidates = len(ranked)
	r.RerankTruncated = r.SolutionCount > int64(len(ranked))
	r.Program = ranked[0].prog
	r.Cost = ranked[0].primary
	if !s.userAll {
		r.Programs = nil
		return
	}
	limit := s.userMaxSols
	if limit == 0 || limit > len(ranked) {
		limit = len(ranked)
	}
	out := make([]isa.Program, limit)
	for i := range out {
		out[i] = ranked[i].prog
	}
	r.Programs = out
}

// finish assembles the Result after the main loop.
func (s *searcher) finish() *Result {
	r := s.res
	r.Elapsed = time.Since(s.start)
	if s.optLen >= 0 {
		r.Length = s.optLen
		r.Program = s.program(s.sols[0])
		if s.opt.AllSolutions {
			r.SolutionCount = s.countPaths()
			r.Programs = s.enumeratePrograms()
		} else {
			r.SolutionCount = 1
		}
		if s.opt.Objective != ObjectiveShortest {
			s.rerank(r)
		}
	}
	r.Proof = r.Exhausted && !r.TimedOut && !r.Cancelled &&
		s.opt.Cut == CutNone && !s.opt.UseActionGuide &&
		(s.opt.StateBudget == 0 || r.Expanded < s.opt.StateBudget)
	if tr := s.opt.Trace; tr != nil {
		tr.sample(s.start, r, s.open.Len(), r.SolutionCount)
	}
	return r
}
