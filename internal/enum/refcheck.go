package enum

import (
	"fmt"
	"math/rand"

	"sortsynth/internal/state"
)

// Conformance hooks: randomized equivalence checks of the engine's two
// bespoke data structures against executable reference models. The same
// models exist as package tests (bucketqueue_test.go, flattable_test.go);
// these variants live in the library so internal/conformance and
// cmd/experiments -table=conformance can replay them with a caller-chosen
// seed and budget, and report divergences instead of failing a test.

// refEntry is one open-list element in the bucket-queue reference model;
// seq doubles as the entry id for cross-implementation identification.
type refEntry struct {
	f   int32
	g   uint8
	seq int32
}

// popRef removes and returns the model's next entry: minimal f, then
// maximal g, then latest pushed (LIFO) — the bucket queue's contract.
func popRef(m *[]refEntry) refEntry {
	best := 0
	for i, it := range (*m)[1:] {
		b := (*m)[best]
		switch {
		case it.f != b.f:
			if it.f < b.f {
				best = i + 1
			}
		case it.g != b.g:
			if it.g > b.g {
				best = i + 1
			}
		case it.seq > b.seq:
			best = i + 1
		}
	}
	it := (*m)[best]
	*m = append((*m)[:best], (*m)[best+1:]...)
	return it
}

// CheckBucketQueueConformance replays randomized interleaved push/pop
// workloads — including non-monotone pushes that force cursor rewinds —
// through the bucket queue and the O(n)-per-pop reference model, and
// returns a description of the first divergence, or nil.
func CheckBucketQueueConformance(seed int64, trials, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		var q bucketQueue
		var model []refEntry
		var seq int32
		maxF := int32(1 + rng.Intn(60))
		for step := 0; step < steps; step++ {
			if q.Len() != len(model) {
				return fmt.Errorf("bucketqueue trial %d step %d: Len() = %d, model has %d",
					trial, step, q.Len(), len(model))
			}
			if q.Len() > 0 && rng.Intn(3) == 0 {
				e, f, ok := q.Pop()
				if !ok {
					return fmt.Errorf("bucketqueue trial %d step %d: Pop failed with %d queued",
						trial, step, q.Len())
				}
				want := popRef(&model)
				if e.id != want.seq || f != want.f || e.g != want.g {
					return fmt.Errorf("bucketqueue trial %d step %d: popped (f=%d g=%d seq=%d), model says (f=%d g=%d seq=%d)",
						trial, step, f, e.g, e.id, want.f, want.g, want.seq)
				}
				continue
			}
			g := uint8(rng.Intn(MaxDepth + 1))
			f := int32(g) + rng.Int31n(maxF) // f ≥ g as in the engine
			q.Push(f, openEntry{id: seq, g: g})
			model = append(model, refEntry{f: f, g: g, seq: seq})
			seq++
		}
		for len(model) > 0 {
			e, f, ok := q.Pop()
			want := popRef(&model)
			if !ok || e.id != want.seq || f != want.f || e.g != want.g {
				return fmt.Errorf("bucketqueue trial %d drain: popped (f=%d g=%d seq=%d ok=%v), model says (f=%d g=%d seq=%d)",
					trial, f, e.g, e.id, ok, want.f, want.g, want.seq)
			}
		}
		if _, _, ok := q.Pop(); ok {
			return fmt.Errorf("bucketqueue trial %d: Pop on empty queue reported ok", trial)
		}
	}
	return nil
}

// CheckFlatTableConformance replays a randomized get/getOrPut/set
// workload — over a deliberately small, collision-rich key universe,
// starting from a capacity-1 table so several growth rehashes occur —
// through the flat table and a reference Go map, and returns a
// description of the first divergence, or nil.
func CheckFlatTableConformance(seed int64, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	tbl := newFlatTable(1)
	ref := map[state.Key128]int32{}
	keys := make([]state.Key128, 300)
	for i := range keys {
		keys[i] = state.Key128{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	for step := 0; step < steps; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			got, ok := tbl.get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				return fmt.Errorf("flattable step %d: get = (%d, %v), map says (%d, %v)", step, got, ok, want, wok)
			}
		case 1:
			v := int32(rng.Intn(1 << 20))
			got, inserted := tbl.getOrPut(k, v)
			want, existed := ref[k]
			if inserted == existed {
				return fmt.Errorf("flattable step %d: getOrPut inserted=%v, map existed=%v", step, inserted, existed)
			}
			if existed && got != want {
				return fmt.Errorf("flattable step %d: getOrPut = %d, want existing %d", step, got, want)
			}
			if !existed {
				if got != v {
					return fmt.Errorf("flattable step %d: getOrPut = %d, want inserted %d", step, got, v)
				}
				ref[k] = v
			}
		case 2:
			v := int32(rng.Intn(1<<20)) - 1<<19 // negative: provisional-ID range
			tbl.set(k, v)
			ref[k] = v
		}
		if tbl.count() != len(ref) {
			return fmt.Errorf("flattable step %d: count = %d, map has %d", step, tbl.count(), len(ref))
		}
	}
	for _, k := range keys {
		got, ok := tbl.get(k)
		want, wok := ref[k]
		if ok != wok || (ok && got != want) {
			return fmt.Errorf("flattable final: get(%v) = (%d, %v), map says (%d, %v)", k, got, ok, want, wok)
		}
	}
	return nil
}
