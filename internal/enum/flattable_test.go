package enum

import (
	"math/rand"
	"testing"

	"sortsynth/internal/state"
)

// TestFlatTableMatchesMap drives random get / getOrPut / set traffic
// through the flat table and a reference Go map and asserts identical
// observable behavior, including overwrites (the parallel stitch swaps a
// provisional negative ID for the real one) and growth across several
// doublings from a deliberately tiny initial capacity.
func TestFlatTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := newFlatTable(1)
	ref := map[state.Key128]int32{}
	// A small key universe forces frequent hits; random 128-bit keys
	// would almost never collide.
	keys := make([]state.Key128, 300)
	for i := range keys {
		keys[i] = state.Key128{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	for step := 0; step < 20000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			got, ok := tbl.get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("step %d: get = (%d, %v), want (%d, %v)", step, got, ok, want, wok)
			}
		case 1:
			v := int32(rng.Intn(1 << 20))
			got, inserted := tbl.getOrPut(k, v)
			want, existed := ref[k]
			if inserted == existed {
				t.Fatalf("step %d: getOrPut inserted=%v, map existed=%v", step, inserted, existed)
			}
			if existed && got != want {
				t.Fatalf("step %d: getOrPut returned %d, want existing %d", step, got, want)
			}
			if !existed {
				if got != v {
					t.Fatalf("step %d: getOrPut returned %d, want inserted %d", step, got, v)
				}
				ref[k] = v
			}
		case 2:
			// Negative values exercise the provisional-ID range of the
			// parallel merge.
			v := int32(rng.Intn(1<<20)) - 1<<19
			tbl.set(k, v)
			ref[k] = v
		}
		if tbl.count() != len(ref) {
			t.Fatalf("step %d: count = %d, map has %d", step, tbl.count(), len(ref))
		}
	}
	for _, k := range keys {
		got, ok := tbl.get(k)
		want, wok := ref[k]
		if ok != wok || (ok && got != want) {
			t.Fatalf("final: get(%v) = (%d, %v), want (%d, %v)", k, got, ok, want, wok)
		}
	}
}

// TestFlatTableProbeCollisions pins the linear-probing path: keys crafted
// to share the same home slot must all be stored and retrieved, and a
// growth rehash must keep them reachable.
func TestFlatTableProbeCollisions(t *testing.T) {
	tbl := newFlatTable(16)
	home := uint64(5)
	var keys []state.Key128
	for i := 0; i < 40; i++ {
		// Same low bits of Lo at every capacity the table will pass
		// through (which is what selects the home slot), distinct Hi.
		keys = append(keys, state.Key128{Hi: uint64(i), Lo: home + uint64(i)<<40})
	}
	for i, k := range keys {
		if _, inserted := tbl.getOrPut(k, int32(i)); !inserted {
			t.Fatalf("key %d reported as existing", i)
		}
	}
	for i, k := range keys {
		if got, ok := tbl.get(k); !ok || got != int32(i) {
			t.Fatalf("get(key %d) = (%d, %v), want (%d, true)", i, got, ok, i)
		}
	}
	if tbl.count() != len(keys) {
		t.Fatalf("count = %d, want %d", tbl.count(), len(keys))
	}
}
