package enum

import "math/bits"

// openEntry is one open-list element: the node id plus the arena address
// of its canonical state. The f-value is implicit in the bucket index and
// g rides along for the staleness check on pop. cost is the accumulated
// §5.3 instruction weight of the path, used only in cost-ordered mode.
type openEntry struct {
	id   int32
	off  int32 // state = arena.At(off, n)
	n    int32
	cost int32
	g    uint8
}

// depthSlots is the number of g sub-buckets per f-value: depths run
// 0..MaxDepth inclusive.
const depthSlots = MaxDepth + 1

// bucketQueue is the open list of the sequential engine: an array of
// buckets indexed by the composite key
//
//	f·(MaxDepth+1) + (MaxDepth − g)
//
// so that draining buckets in index order pops f ascending with the
// deeper-first tie-break of the old heap ordering (f asc, then g desc).
// Within each equal-(f, g) bucket the order is LIFO by default — O(1)
// array push/pop with no comparisons and no interface boxing, unlike
// container/heap.
//
// With costOrder set (objective runs), each bucket is instead a binary
// min-heap on the entries' accumulated uarch instruction weight (ties:
// most recently created node first, id descending), so the engine
// explores cheap programs before expensive ones within the same (f, g)
// class — the "minimum cost among minimum length" secondary priority.
// Push/pop then cost O(log bucket) instead of O(1).
//
// An occupancy bitset tracks non-empty buckets; pop scans it from cur,
// the smallest possibly-occupied key. The queue is "monotone" in the
// Dijkstra sense but tolerates non-monotone pushes (A* with a
// non-consistent heuristic, reopened nodes): a push below cur simply
// rewinds the cursor.
type bucketQueue struct {
	buckets   [][]openEntry
	occ       []uint64
	cur       int
	size      int
	costOrder bool
}

// Len returns the number of queued entries.
func (q *bucketQueue) Len() int { return q.size }

// costLess orders a bucket's heap: accumulated instruction weight
// ascending, then id descending (the newest node first, approximating
// the default LIFO order among equal-cost entries).
func costLess(a, b openEntry) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.id > b.id
}

// Push adds e with priority f. Negative f (impossible for the engine's
// nonnegative g and heuristics) is clamped into the first f-band rather
// than indexing out of range.
func (q *bucketQueue) Push(f int32, e openEntry) {
	k := MaxDepth - int(e.g)
	if f > 0 {
		k += int(f) * depthSlots
	}
	if k >= len(q.buckets) {
		q.growTo(k)
	}
	b := q.buckets[k]
	if len(b) == 0 {
		q.occ[k>>6] |= 1 << uint(k&63)
	}
	b = append(b, e)
	if q.costOrder {
		for i := len(b) - 1; i > 0; {
			p := (i - 1) / 2
			if !costLess(b[i], b[p]) {
				break
			}
			b[i], b[p] = b[p], b[i]
			i = p
		}
	}
	q.buckets[k] = b
	if k < q.cur {
		q.cur = k
	}
	q.size++
}

// Pop removes and returns the minimum entry (f ascending, deeper-first
// on equal f, then LIFO — or minimum accumulated cost in cost-ordered
// mode — within equal (f, g)) and its f-value.
func (q *bucketQueue) Pop() (openEntry, int32, bool) {
	if q.size == 0 {
		return openEntry{}, 0, false
	}
	// Find the first occupied bucket at or after cur. The cursor
	// invariant (no occupied bucket below cur) makes the masked first
	// word plus a word-at-a-time scan exact.
	k := q.cur
	w := k >> 6
	if word := q.occ[w] >> uint(k&63); word != 0 {
		k += bits.TrailingZeros64(word)
	} else {
		for w++; q.occ[w] == 0; w++ {
		}
		k = w<<6 + bits.TrailingZeros64(q.occ[w])
	}
	b := q.buckets[k]
	var e openEntry
	if q.costOrder && len(b) > 1 {
		e = b[0]
		last := len(b) - 1
		b[0] = b[last]
		b = b[:last]
		for i := 0; ; {
			l := 2*i + 1
			if l >= len(b) {
				break
			}
			m := l
			if r := l + 1; r < len(b) && costLess(b[r], b[l]) {
				m = r
			}
			if !costLess(b[m], b[i]) {
				break
			}
			b[i], b[m] = b[m], b[i]
			i = m
		}
		q.buckets[k] = b
	} else {
		e = b[len(b)-1]
		b = b[:len(b)-1]
		q.buckets[k] = b
	}
	if len(b) == 0 {
		q.occ[k>>6] &^= 1 << uint(k&63)
	}
	q.cur = k
	q.size--
	return e, int32(k / depthSlots), true
}

// growTo extends the bucket array to cover key k. Buckets are grown
// geometrically so repeated small f increases don't re-allocate per push.
func (q *bucketQueue) growTo(k int) {
	n := len(q.buckets)
	if n == 0 {
		n = 2 * depthSlots
	}
	for n <= k {
		n *= 2
	}
	buckets := make([][]openEntry, n)
	copy(buckets, q.buckets)
	q.buckets = buckets
	occ := make([]uint64, (n+63)/64+1) // +1: pop's word scan may read one past the last key's word
	copy(occ, q.occ)
	q.occ = occ
}
