package enum

import "math/bits"

// openEntry is one open-list element: the node id plus the arena address
// of its canonical state. The f-value is implicit in the bucket index and
// g rides along for the staleness check on pop.
type openEntry struct {
	id  int32
	off int32 // state = arena.At(off, n)
	n   int32
	g   uint8
}

// depthSlots is the number of g sub-buckets per f-value: depths run
// 0..MaxDepth inclusive.
const depthSlots = MaxDepth + 1

// bucketQueue is the open list of the sequential engine: an array of
// LIFO buckets indexed by the composite key
//
//	f·(MaxDepth+1) + (MaxDepth − g)
//
// so that draining buckets in index order pops f ascending with the
// deeper-first tie-break of the old heap ordering (f asc, then g desc),
// and LIFO within each equal-(f, g) class. Both f terms are small bounded
// integers — g ≤ MaxDepth and the heuristic term is bounded by the state
// suite (DESIGN.md §10) — so push and pop are O(1) array operations with
// no comparisons and no interface boxing, unlike container/heap.
//
// An occupancy bitset tracks non-empty buckets; pop scans it from cur,
// the smallest possibly-occupied key. The queue is "monotone" in the
// Dijkstra sense but tolerates non-monotone pushes (A* with a
// non-consistent heuristic, reopened nodes): a push below cur simply
// rewinds the cursor.
type bucketQueue struct {
	buckets [][]openEntry
	occ     []uint64
	cur     int
	size    int
}

// Len returns the number of queued entries.
func (q *bucketQueue) Len() int { return q.size }

// Push adds e with priority f. Negative f (impossible for the engine's
// nonnegative g and heuristics) is clamped into the first f-band rather
// than indexing out of range.
func (q *bucketQueue) Push(f int32, e openEntry) {
	k := MaxDepth - int(e.g)
	if f > 0 {
		k += int(f) * depthSlots
	}
	if k >= len(q.buckets) {
		q.growTo(k)
	}
	b := q.buckets[k]
	if len(b) == 0 {
		q.occ[k>>6] |= 1 << uint(k&63)
	}
	q.buckets[k] = append(b, e)
	if k < q.cur {
		q.cur = k
	}
	q.size++
}

// Pop removes and returns the minimum entry (f ascending, deeper-first on
// equal f, LIFO within equal (f, g)) and its f-value.
func (q *bucketQueue) Pop() (openEntry, int32, bool) {
	if q.size == 0 {
		return openEntry{}, 0, false
	}
	// Find the first occupied bucket at or after cur. The cursor
	// invariant (no occupied bucket below cur) makes the masked first
	// word plus a word-at-a-time scan exact.
	k := q.cur
	w := k >> 6
	if word := q.occ[w] >> uint(k&63); word != 0 {
		k += bits.TrailingZeros64(word)
	} else {
		for w++; q.occ[w] == 0; w++ {
		}
		k = w<<6 + bits.TrailingZeros64(q.occ[w])
	}
	b := q.buckets[k]
	e := b[len(b)-1]
	q.buckets[k] = b[:len(b)-1]
	if len(b) == 1 {
		q.occ[k>>6] &^= 1 << uint(k&63)
	}
	q.cur = k
	q.size--
	return e, int32(k / depthSlots), true
}

// growTo extends the bucket array to cover key k. Buckets are grown
// geometrically so repeated small f increases don't re-allocate per push.
func (q *bucketQueue) growTo(k int) {
	n := len(q.buckets)
	if n == 0 {
		n = 2 * depthSlots
	}
	for n <= k {
		n *= 2
	}
	buckets := make([][]openEntry, n)
	copy(buckets, q.buckets)
	q.buckets = buckets
	occ := make([]uint64, (n+63)/64+1) // +1: pop's word scan may read one past the last key's word
	copy(occ, q.occ)
	q.occ = occ
}
