package enum

import (
	"errors"
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/state"
)

// sortsAll checks that p sorts every permutation of 1..n.
func sortsAll(t *testing.T, set *isa.Set, p isa.Program) {
	t.Helper()
	for _, in := range perm.All(set.N) {
		out := state.RunInts(set, p, in)
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("program %s does not sort %v: got %v", p.FormatInline(set.N), in, out)
			}
		}
	}
}

// TestMaxLenBeyondDepthLimit pins the depth-overflow fix: node depths
// are stored in a uint8 and bestPerm is sized by MaxDepth, so a MaxLen
// above MaxDepth used to silently truncate (parallel engine) or index
// out of range (sequential engine). Both engines must now reject it with
// a typed error instead.
func TestMaxLenBeyondDepthLimit(t *testing.T) {
	set := isa.NewCmov(2, 1)
	for _, workers := range []int{1, 4} { // sequential and parallel engines
		opt := ConfigBest()
		opt.MaxLen = MaxDepth + 1
		opt.Workers = workers
		res := Run(set, opt)
		var dl *DepthLimitError
		if !errors.As(res.Err, &dl) {
			t.Fatalf("workers=%d: Err = %v, want *DepthLimitError", workers, res.Err)
		}
		if dl.MaxLen != MaxDepth+1 {
			t.Errorf("workers=%d: DepthLimitError.MaxLen = %d, want %d", workers, dl.MaxLen, MaxDepth+1)
		}
		if res.Length != -1 {
			t.Errorf("workers=%d: Length = %d, want -1", workers, res.Length)
		}
	}

	// MaxLen == MaxDepth is the largest accepted bound and must search
	// normally on both engines.
	for _, workers := range []int{1, 4} {
		opt := ConfigBest()
		opt.MaxLen = MaxDepth
		opt.Workers = workers
		res := Run(set, opt)
		if res.Err != nil || res.Length != 4 {
			t.Errorf("workers=%d: MaxLen=MaxDepth gave length=%d err=%v, want 4, nil", workers, res.Length, res.Err)
		}
	}
}

func TestSynthesizeN2Dijkstra(t *testing.T) {
	set := isa.NewCmov(2, 1)
	res := Run(set, ConfigDijkstra())
	if res.Length != 4 {
		t.Fatalf("n=2 optimal length = %d, want 4 (paper §2.2)", res.Length)
	}
	sortsAll(t, set, res.Program)
}

func TestSynthesizeN3Best(t *testing.T) {
	set := isa.NewCmov(3, 1)
	opt := ConfigBest()
	opt.MaxLen = 11
	res := Run(set, opt)
	if res.Length != 11 {
		t.Fatalf("n=3 best-config length = %d, want 11", res.Length)
	}
	sortsAll(t, set, res.Program)
	t.Logf("n=3 best: %v expanded, %v generated, %v in %v", res.Expanded, res.Generated, res.CutCount, res.Elapsed)
}

func TestSynthesizeN3DijkstraOptimal(t *testing.T) {
	set := isa.NewCmov(3, 1)
	res := Run(set, ConfigDijkstra())
	if res.Length != 11 {
		t.Fatalf("n=3 Dijkstra length = %d, want 11", res.Length)
	}
	sortsAll(t, set, res.Program)
}

func TestAllSolutionsN3Counts(t *testing.T) {
	// Paper §5.1/§5.2: 5602 optimal solutions for n=3; the cut with k=2
	// preserves all of them, lower k cuts progressively more (the paper's
	// run kept 838 at k=1.5 and 222 at k=1; the exact survivor set at
	// lethal settings depends on traversal order, so we pin our
	// deterministic counts, which show the same monotone shrinkage).
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	for _, tc := range []struct {
		name string
		cut  CutMode
		k    float64
		want int64
	}{
		{"nocut", CutNone, 0, 5602},
		{"k=2", CutFactor, 2, 5602},
		{"k=1.5", CutFactor, 1.5, 3682},
		{"k=1", CutFactor, 1, 234},
	} {
		opt := ConfigAllSolutions()
		opt.MaxLen = 11
		opt.Cut = tc.cut
		opt.CutK = tc.k
		res := Run(set, opt)
		if res.Length != 11 {
			t.Fatalf("%s: length = %d, want 11", tc.name, res.Length)
		}
		if res.SolutionCount != tc.want {
			t.Errorf("%s: %d solutions, want %d", tc.name, res.SolutionCount, tc.want)
		}
		if int64(len(res.Programs)) != res.SolutionCount {
			t.Errorf("%s: enumerated %d programs, path count %d", tc.name, len(res.Programs), res.SolutionCount)
		}
		// Spot-check a sample of the enumerated programs.
		for i := 0; i < len(res.Programs); i += 97 {
			sortsAll(t, set, res.Programs[i])
		}
		t.Logf("%s: %d solutions, %d expanded, %v", tc.name, res.SolutionCount, res.Expanded, res.Elapsed)
	}
}

func TestDuplicateSafeSynthesisN3(t *testing.T) {
	// Extension: searching over the weak-order suite yields kernels that
	// also sort inputs with ties — at the same optimal length 11.
	set := isa.NewCmov(3, 1)
	opt := ConfigBest()
	opt.MaxLen = 11
	opt.DuplicateSafe = true
	res := Run(set, opt)
	if res.Length != 11 {
		t.Fatalf("duplicate-safe n=3 length = %d, want 11", res.Length)
	}
	sortsAll(t, set, res.Program)
	for _, in := range perm.WeakOrders(3) {
		out := state.RunInts(set, res.Program, in)
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				t.Fatalf("duplicate-safe kernel fails on %v: %v", in, out)
			}
		}
	}
}

func TestDuplicateSafeAllSolutionsN3(t *testing.T) {
	// Exactly 2028 of the 5602 optimal kernels handle duplicates; the
	// direct weak-order enumeration must agree with the post-hoc filter.
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	opt := ConfigAllSolutions()
	opt.MaxLen = 11
	opt.DuplicateSafe = true
	opt.MaxSolutions = 1
	res := Run(set, opt)
	if res.SolutionCount != 2028 {
		t.Errorf("duplicate-safe solutions = %d, want 2028", res.SolutionCount)
	}
}

func TestMinMaxN3(t *testing.T) {
	set := isa.NewMinMax(3, 1)
	res := Run(set, ConfigDijkstra())
	if res.Length != 8 {
		t.Fatalf("minmax n=3 length = %d, want 8 (paper §5.4)", res.Length)
	}
	sortsAll(t, set, res.Program)
}

func TestMinMaxAllSolutionsN3(t *testing.T) {
	// 604 optimal min/max kernels of length 8 for n=3 (this repository's
	// count; the paper enumerates them without reporting the number).
	// All of them handle duplicates — min/max has no equal-flags gap.
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewMinMax(3, 1)
	opt := ConfigAllSolutions()
	opt.MaxLen = 8
	res := Run(set, opt)
	if res.SolutionCount != 604 {
		t.Errorf("minmax n=3 solutions = %d, want 604", res.SolutionCount)
	}
	dup := ConfigAllSolutions()
	dup.MaxLen = 8
	dup.DuplicateSafe = true
	dres := Run(set, dup)
	if dres.SolutionCount != 604 {
		t.Errorf("duplicate-safe minmax n=3 solutions = %d, want 604 (all are tie-safe)", dres.SolutionCount)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	set := isa.NewCmov(3, 1)
	opt := ConfigAllSolutions()
	opt.MaxLen = 11
	opt.Cut, opt.CutK = CutFactor, 1
	seq := Run(set, opt)
	opt.Workers = 4
	par := Run(set, opt)
	if seq.Length != par.Length {
		t.Fatalf("lengths differ: seq %d, par %d", seq.Length, par.Length)
	}
	if seq.SolutionCount != par.SolutionCount {
		t.Errorf("solution counts differ: seq %d, par %d", seq.SolutionCount, par.SolutionCount)
	}
	sortsAll(t, set, par.Program)
}

func TestProofNoLength10KernelN3(t *testing.T) {
	// Paper §5.3 validates AlphaDev's claim that 11 is minimal for n=3 by
	// exhausting the length-10 space.
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	res := Run(set, ConfigProof(10))
	if res.Length != -1 {
		t.Fatalf("found a length-%d kernel below the known optimum", res.Length)
	}
	if !res.Exhausted || !res.Proof {
		t.Errorf("search did not certify exhaustion: exhausted=%v proof=%v", res.Exhausted, res.Proof)
	}
	t.Logf("length-10 proof: %d expanded in %v", res.Expanded, res.Elapsed)
}

func TestTraceSampling(t *testing.T) {
	set := isa.NewCmov(3, 1)
	opt := ConfigBest()
	opt.MaxLen = 11
	opt.Trace = &Trace{SampleEvery: 16}
	res := Run(set, opt)
	if res.Length != 11 {
		t.Fatalf("length = %d", res.Length)
	}
	if len(opt.Trace.Samples) == 0 {
		t.Error("no trace samples recorded")
	}
}

func TestTimeoutStops(t *testing.T) {
	set := isa.NewCmov(4, 1)
	opt := ConfigDijkstra()
	opt.Timeout = 50 * time.Millisecond
	start := time.Now()
	res := Run(set, opt)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout ignored: ran %v", elapsed)
	}
	if res.Length == -1 && (res.Exhausted || res.Proof) {
		t.Error("timed-out run claims exhaustion")
	}
	if !res.TimedOut && res.Length == -1 {
		t.Error("neither solution nor timeout reported")
	}
}

func TestParallelProofMatchesSequential(t *testing.T) {
	// The parallel engine must certify the same nonexistence result.
	set := isa.NewCmov(2, 1)
	seq := Run(set, ConfigProof(3))
	par := ConfigProof(3)
	par.Workers = 4
	parRes := Run(set, par)
	if seq.Length != -1 || parRes.Length != -1 {
		t.Fatal("found impossible kernel")
	}
	if !seq.Proof || !parRes.Proof {
		t.Errorf("proof flags: seq=%v par=%v", seq.Proof, parRes.Proof)
	}
}

func TestStateBudgetStops(t *testing.T) {
	set := isa.NewCmov(4, 1)
	opt := ConfigDijkstra()
	opt.StateBudget = 50
	res := Run(set, opt)
	if res.Expanded > 60 {
		t.Errorf("budget ignored: expanded %d", res.Expanded)
	}
	if res.Exhausted || res.Proof {
		t.Error("budget-stopped run must not report exhaustion")
	}
}
