package enum

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refItem is an open-list element under the ordering contract the bucket
// queue must preserve. seq is the push ordinal, used both by the LIFO
// reference model and to identify entries across implementations.
type refItem struct {
	f   int32
	g   uint8
	seq int32
}

// refHeap is the retired container/heap open list, kept here as the
// executable specification of the ordering the bucket queue replaces:
// f ascending, deeper-first (g descending) on ties. Order within equal
// (f, g) was unspecified by Less; the bucket queue pins it to LIFO.
type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	return h[i].g > h[j].g // deeper first on ties
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refModel is an executable model of the full bucket-queue contract:
// pop returns the entry minimizing (f asc, g desc), latest-pushed first
// within equal (f, g). O(n) per pop — fine for a test oracle.
type refModel []refItem

func (m *refModel) pop() refItem {
	best := 0
	for i, it := range (*m)[1:] {
		b := (*m)[best]
		switch {
		case it.f != b.f:
			if it.f < b.f {
				best = i + 1
			}
		case it.g != b.g:
			if it.g > b.g {
				best = i + 1
			}
		case it.seq > b.seq:
			best = i + 1
		}
	}
	it := (*m)[best]
	*m = append((*m)[:best], (*m)[best+1:]...)
	return it
}

// TestBucketQueueMatchesReferenceModel drives random interleaved
// push/pop workloads — including non-monotone pushes below the last
// popped priority, which force cursor rewinds — and asserts the bucket
// queue pops in exactly the order the model defines: f ascending,
// deeper-first on ties, LIFO within equal (f, g).
func TestBucketQueueMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var q bucketQueue
		var model refModel
		var seq int32
		maxF := int32(1 + rng.Intn(60))
		for step := 0; step < 400; step++ {
			if q.Len() != len(model) {
				t.Fatalf("trial %d: Len() = %d, model has %d", trial, q.Len(), len(model))
			}
			if q.Len() > 0 && rng.Intn(3) == 0 {
				e, f, ok := q.Pop()
				if !ok {
					t.Fatalf("trial %d: Pop failed with %d queued", trial, q.Len())
				}
				want := model.pop()
				if e.id != want.seq || f != want.f || e.g != want.g {
					t.Fatalf("trial %d step %d: popped (f=%d g=%d seq=%d), model says (f=%d g=%d seq=%d)",
						trial, step, f, e.g, e.id, want.f, want.g, want.seq)
				}
				continue
			}
			g := uint8(rng.Intn(MaxDepth + 1))
			f := int32(g) + rng.Int31n(maxF) // f ≥ g as in the engine
			q.Push(f, openEntry{id: seq, g: g})
			model = append(model, refItem{f: f, g: g, seq: seq})
			seq++
		}
		for len(model) > 0 {
			e, f, ok := q.Pop()
			want := model.pop()
			if !ok || e.id != want.seq || f != want.f {
				t.Fatalf("trial %d drain: popped (f=%d seq=%d ok=%v), want (f=%d seq=%d)",
					trial, f, e.id, ok, want.f, want.seq)
			}
		}
		if _, _, ok := q.Pop(); ok {
			t.Fatalf("trial %d: Pop on empty queue reported ok", trial)
		}
	}
}

// TestBucketQueueAgreesWithRetiredHeap replays the same workload through
// the bucket queue and the retired container/heap open list and asserts
// the (f, g) pop streams are identical — the bucket queue is a refinement
// of the old Less order, never a departure from it.
func TestBucketQueueAgreesWithRetiredHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		var q bucketQueue
		var h refHeap
		var seq int32
		for step := 0; step < 500; step++ {
			if h.Len() > 0 && rng.Intn(3) == 0 {
				e, f, _ := q.Pop()
				want := heap.Pop(&h).(refItem)
				if f != want.f || e.g != want.g {
					t.Fatalf("trial %d step %d: bucket popped (f=%d g=%d), heap popped (f=%d g=%d)",
						trial, step, f, e.g, want.f, want.g)
				}
				continue
			}
			g := uint8(rng.Intn(MaxDepth + 1))
			f := int32(g) + rng.Int31n(40)
			q.Push(f, openEntry{id: seq, g: g})
			heap.Push(&h, refItem{f: f, g: g, seq: seq})
			seq++
		}
	}
}

// TestBucketQueueGrowth pushes a priority far beyond the initial bucket
// allocation and then rewinds below it.
func TestBucketQueueGrowth(t *testing.T) {
	var q bucketQueue
	q.Push(5000, openEntry{id: 1, g: 10})
	q.Push(3, openEntry{id: 2, g: 3})
	q.Push(5000, openEntry{id: 3, g: 200})
	if e, f, _ := q.Pop(); f != 3 || e.id != 2 {
		t.Fatalf("popped (f=%d id=%d), want the low-priority rewind first", f, e.id)
	}
	if e, f, _ := q.Pop(); f != 5000 || e.id != 3 {
		t.Fatalf("popped (f=%d id=%d g=%d), want deeper entry of f=5000", f, e.id, e.g)
	}
	if e, _, _ := q.Pop(); e.id != 1 {
		t.Fatalf("popped id=%d, want 1", e.id)
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after draining", q.Len())
	}
}
