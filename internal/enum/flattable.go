package enum

import "sortsynth/internal/state"

// flatEmpty marks an unoccupied slot. Stored values are node IDs (≥ 0) or
// the parallel merge's provisional IDs (−1 … −2³¹+1), so the extreme
// negative value can never collide with a real entry.
const flatEmpty = int32(-1 << 31)

type flatSlot struct {
	key state.Key128
	val int32
}

// flatTable is the dedup index of both search engines: an open-addressing
// hash table from state.Key128 to node ID with linear probing and
// power-of-two capacity. The key is already a high-quality 128-bit hash,
// so the low bits of Key128.Lo index directly — no re-hashing, no
// per-probe interface or allocation cost, and one cache line per probe in
// the common hit-on-first-slot case, unlike the runtime map which must
// treat the 16-byte key as opaque bytes. Growth doubles the slot array
// and rehashes in place (DESIGN.md §10); the load factor is kept ≤ 3/4.
//
// The sequential engine holds one table; the parallel engine holds one
// per dedup shard (shard choice uses the high bits of Key128.Hi, the
// probe uses the low bits of Key128.Lo, so shard tables stay uniformly
// filled).
type flatTable struct {
	slots []flatSlot
	mask  uint64
	used  int
	limit int // growth threshold: 3/4 of capacity
}

// newFlatTable returns a table pre-sized for about hint entries.
func newFlatTable(hint int) *flatTable {
	capacity := 16
	for capacity*3 < hint*4 {
		capacity *= 2
	}
	t := &flatTable{}
	t.alloc(capacity)
	return t
}

func (t *flatTable) alloc(capacity int) {
	t.slots = make([]flatSlot, capacity)
	for i := range t.slots {
		t.slots[i].val = flatEmpty
	}
	t.mask = uint64(capacity - 1)
	t.limit = capacity / 4 * 3
}

// count returns the number of stored entries.
func (t *flatTable) count() int { return t.used }

// get returns the value stored under k.
func (t *flatTable) get(k state.Key128) (int32, bool) {
	for i := k.Lo & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.val == flatEmpty {
			return 0, false
		}
		if s.key == k {
			return s.val, true
		}
	}
}

// getOrPut returns the existing value under k, or stores v and reports
// inserted=true.
func (t *flatTable) getOrPut(k state.Key128, v int32) (int32, bool) {
	if t.used >= t.limit {
		t.grow()
	}
	for i := k.Lo & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.val == flatEmpty {
			s.key = k
			s.val = v
			t.used++
			return v, true
		}
		if s.key == k {
			return s.val, false
		}
	}
}

// set stores v under k, inserting or overwriting.
func (t *flatTable) set(k state.Key128, v int32) {
	if t.used >= t.limit {
		t.grow()
	}
	for i := k.Lo & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.val == flatEmpty {
			s.key = k
			s.val = v
			t.used++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
	}
}

// grow doubles the capacity and rehashes every entry. With linear probing
// and a power-of-two capacity each key lands in its home run again, so a
// single pass over the old slots suffices.
func (t *flatTable) grow() {
	old := t.slots
	t.alloc(2 * len(old))
	t.used = 0
	for i := range old {
		if old[i].val != flatEmpty {
			t.setFresh(old[i].key, old[i].val)
		}
	}
}

// setFresh inserts a key known to be absent (rehash path: no equality
// checks needed, every slot visited is either empty or a different key).
func (t *flatTable) setFresh(k state.Key128, v int32) {
	i := k.Lo & t.mask
	for t.slots[i].val != flatEmpty {
		i = (i + 1) & t.mask
	}
	t.slots[i] = flatSlot{key: k, val: v}
	t.used++
}
