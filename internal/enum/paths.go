package enum

import (
	"math"

	"sortsynth/internal/isa"
)

// countPaths returns the exact number of distinct optimal programs: the
// number of root-to-solution paths in the deduplicated search DAG. Each
// path corresponds to one syntactically distinct minimal program, because
// two programs arriving at the same canonical state at the same depth are
// semantically identical under every completion (paper §3.6, "we skip …
// semantically identical programs").
func (s *searcher) countPaths() int64 {
	// The memo is a dense slice rather than a map: node IDs are the
	// indices of s.nodes, every ancestor of a solution is visited, and on
	// all-solutions runs the DAG holds hundreds of thousands of nodes, so
	// dense indexing beats per-node hashing. -1 marks unvisited (path
	// counts are nonnegative; the root contributes 1).
	memo := make([]int64, len(s.nodes))
	for i := range memo {
		memo[i] = -1
	}
	var count func(v int32) int64
	count = func(v int32) int64 {
		nd := &s.nodes[v]
		if nd.parent < 0 {
			return 1
		}
		if c := memo[v]; c >= 0 {
			return c
		}
		c := count(nd.parent)
		for _, e := range nd.extra {
			c = satAdd(c, count(e.parent))
		}
		memo[v] = c
		return c
	}
	var total int64
	for _, id := range s.sols {
		total = satAdd(total, count(id))
	}
	return total
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// enumeratePrograms materializes the optimal programs by walking every
// root-to-solution path, up to MaxSolutions (0 = all). Programs are
// emitted in a deterministic order (solution nodes in discovery order,
// edges primary-first).
func (s *searcher) enumeratePrograms() []isa.Program {
	limit := s.opt.MaxSolutions
	instrs := s.set.Instrs()
	var out []isa.Program
	// rev holds the instructions from the current node back to the
	// solution (i.e. the program suffix, reversed).
	var rev []uint16
	var walk func(v int32) bool
	walk = func(v int32) bool {
		nd := &s.nodes[v]
		if nd.parent < 0 {
			p := make(isa.Program, len(rev))
			for i, id := range rev {
				p[len(rev)-1-i] = instrs[id]
			}
			out = append(out, p)
			return limit == 0 || len(out) < limit
		}
		rev = append(rev, nd.instr)
		ok := walk(nd.parent)
		for _, e := range nd.extra {
			if !ok {
				break
			}
			rev[len(rev)-1] = e.instr
			ok = walk(e.parent)
		}
		rev = rev[:len(rev)-1]
		return ok
	}
	for _, id := range s.sols {
		if !walk(id) {
			break
		}
	}
	return out
}
