package enum

import (
	"testing"

	"sortsynth/internal/state"
)

// FuzzFlatTable drives a byte-string-scripted op sequence through the
// open-addressing table and a reference Go map. The key universe is
// small and built to share home slots, so the fuzzer exercises probe
// chains, overwrites (including the negative provisional-ID range of
// the parallel merge), and growth from a capacity-1 table.
func FuzzFlatTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 1, 1, 3, 2, 1, 4, 0, 1, 5})
	f.Add([]byte("put-get-set-grow put-get-set-grow"))
	f.Fuzz(func(t *testing.T, script []byte) {
		tbl := newFlatTable(1)
		ref := map[state.Key128]int32{}
		var keys [24]state.Key128
		for i := range keys {
			// Identical low bits across groups of 6 keys force probe
			// collisions at every capacity the table passes through.
			keys[i] = state.Key128{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i%6) | uint64(i)<<40}
		}
		steps := len(script) / 3
		if steps > 4096 {
			steps = 4096
		}
		for s := 0; s < steps; s++ {
			op := script[s*3] % 3
			k := keys[int(script[s*3+1])%len(keys)]
			v := int32(script[s*3+2]) - 128 // negative values hit the provisional-ID range
			switch op {
			case 0:
				got, ok := tbl.get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("step %d: get = (%d, %v), map says (%d, %v)", s, got, ok, want, wok)
				}
			case 1:
				got, inserted := tbl.getOrPut(k, v)
				want, existed := ref[k]
				if inserted == existed {
					t.Fatalf("step %d: getOrPut inserted=%v, map existed=%v", s, inserted, existed)
				}
				if existed && got != want {
					t.Fatalf("step %d: getOrPut = %d, want existing %d", s, got, want)
				}
				if !existed {
					if got != v {
						t.Fatalf("step %d: getOrPut = %d, want inserted %d", s, got, v)
					}
					ref[k] = v
				}
			case 2:
				tbl.set(k, v)
				ref[k] = v
			}
			if tbl.count() != len(ref) {
				t.Fatalf("step %d: count = %d, map has %d", s, tbl.count(), len(ref))
			}
		}
		for _, k := range keys {
			got, ok := tbl.get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("final get(%v) = (%d, %v), map says (%d, %v)", k, got, ok, want, wok)
			}
		}
	})
}
