package enum

import (
	"context"
	"math"
	"runtime"
	"sync"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
	"sortsynth/internal/tables"
)

// The parallel engine is the level-synchronous parallel Dijkstra variant
// (ablation row "dijkstra, parallel"): all states of program length g are
// expanded concurrently and their successors are merged into the dedup
// layer, then the next level proceeds. Level order gives Dijkstra
// semantics, so the first level containing a solution is optimal and — in
// AllSolutions mode — complete once merged.
//
// Unlike the original implementation, which merged every level under a
// single goroutine, the merge itself is parallel (DESIGN.md §8): the
// dedup layer is sharded by the high bits of the state's 128-bit hash key
// into mergeShards independent flat tables, workers partition their
// candidates by owning shard during expansion, and one merge task per
// shard deduplicates its partition without locks. Every candidate carries
// its global sequence number — its position in the frontier-order
// candidate stream the old sequential merge consumed — so a final stitch
// pass can append the surviving nodes to the path DAG in exactly that
// order. Node IDs, extra-edge order, solution order, and therefore
// SolutionCount and the enumerated program set are bit-for-bit
// independent of both the worker count and the shard count.

// mergeShards is the number of dedup shards. It is a fixed constant
// rather than the worker count so shard ownership and table layouts never
// vary with Options.Workers; determinism does not require that (dedup
// outcomes are per-key and IDs are assigned in sequence order), but it
// keeps per-worker-count runs directly comparable.
const (
	mergeShardBits = 5
	mergeShards    = 1 << mergeShardBits
)

// parCand is one successor produced by an expansion worker, addressed
// into the worker's append-only state arena.
type parCand struct {
	key     state.Key128
	parent  int32
	local   int32 // per-worker candidate ordinal; global seq = base[w] + local
	off     int32 // state = arena.At(off, n)
	n       int32
	pc      int32
	instrID uint16
	sorted  bool
}

// pendingNode is a shard-local node created during the merge of one
// level, awaiting its global ID from the stitch pass. Within a shard the
// list is ordered by seq (workers are drained in index order and local
// ordinals increase), which the stitch's k-way merge relies on.
type pendingNode struct {
	seq  int64
	node node // primary edge, depth, sorted flag; extra filled by dedup hits
	key  state.Key128
	st   state.State // arena-backed; nil for sorted states
	pc   int32
}

// mergeShard is one slice of the dedup layer: a persistent key→ID flat
// table plus the per-level pending list. Provisional IDs of nodes created
// this level are stored as -(pendIndex+1) until the stitch assigns real
// ones.
type mergeShard struct {
	dedup   *flatTable
	pend    []pendingNode
	deduped int64
}

// frontierEntry is one expandable node of the current level.
type frontierEntry struct {
	id int32
	st state.State
}

func runParallel(ctx context.Context, set *isa.Set, opt Options) *Result {
	s := newSearcher(ctx, set, opt)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	instrs := set.Instrs()

	shards := make([]mergeShard, mergeShards)
	for i := range shards {
		shards[i].dedup = newFlatTable(1 << 8)
	}
	init := s.m.Initial()
	key0 := state.HashKey(init)
	shards[key0.Shard(mergeShardBits)].dedup.set(key0, 0)

	// Per-worker reusable buffers. Arenas double-buffer across levels:
	// the slabs written at level g back the frontier states read at
	// level g+1 and are recycled at level g+2.
	buckets := make([][mergeShards][]parCand, workers)
	arenas := make([]state.Arena, workers)
	arenasOld := make([]state.Arena, workers)
	projSets := make([]state.ProjSet, workers)
	counts := make([]int64, workers)
	base := make([]int64, workers+1)
	heads := make([]int, mergeShards)

	frontier := []frontierEntry{{id: 0, st: init}}
	var next []frontierEntry

	for g := 0; len(frontier) > 0 && g < s.bound; g++ {
		if s.stopped() {
			return s.finish()
		}
		if s.opt.StateBudget > 0 && s.res.Expanded >= s.opt.StateBudget {
			return s.finish()
		}
		for w := range counts {
			counts[w] = 0
			for si := range buckets[w] {
				buckets[w][si] = buckets[w][si][:0]
			}
		}

		// Phase 1: expand the level in parallel. Workers apply the
		// viability and cut filters, hash each survivor, copy its state
		// into the worker's arena, and file it under the owning shard.
		// The cut reference is the completed previous level, which makes
		// the parallel cut deterministic. Everything level-invariant —
		// bound budget, cut limit, option flags — is hoisted out of the
		// per-candidate funnel.
		m, tab := s.m, s.tab
		useGuide, useDist, viaErase := s.opt.UseActionGuide, s.opt.UseDistPrune, s.opt.ViabilityErase
		swar := s.swar
		var lut *state.DistLUT
		if useDist {
			lut = tab.DistLUT()
		}
		cutOn := s.opt.Cut != CutNone
		budget := s.bound - (g + 1)
		fused := useDist && budget >= 0
		limit := math.Inf(1)
		intLimit := math.MaxInt
		if cutOn {
			if ref := s.bestPerm[g]; ref != math.MaxInt32 {
				if s.opt.Cut == CutFactor {
					limit = s.opt.CutK * float64(ref)
				} else {
					limit = float64(ref) + s.opt.CutK
				}
				intLimit = int(math.Floor(limit))
			}
		}
		chunk := (len(frontier) + workers - 1) / workers
		var wg sync.WaitGroup
		var mu sync.Mutex
		var generated, pruned, cut int64
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := min(lo+chunk, len(frontier))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bkt := &buckets[w]
				arena := &arenas[w]
				arena.Reset()
				projSet := &projSets[w]
				var buf state.State
				var pidx []uint32
				var local int32
				var lgen, lpr, lcut int64
				for fi, fe := range frontier[lo:hi] {
					if fi&63 == 63 && s.ctx.Err() != nil {
						break // cancelled mid-level; the caller re-checks after the join
					}
					var guide tables.Mask
					if useGuide {
						guide = tab.GuideMask(fe.st)
					}
					// The parent's distinct projection count: children of
					// projection-preserving instructions inherit it verbatim
					// (state.ProjPreserving), skipping their per-assignment
					// cut recounts.
					fePC := 0
					if cutOn {
						fePC = m.PermCount(fe.st)
					}
					// Parent distance-table indices, computed once per
					// frontier entry and amortized over every candidate
					// instruction (ApplyDistSWAR's incremental index form).
					if swar && fused {
						if cap(pidx) < len(fe.st) {
							pidx = make([]uint32, len(fe.st))
						}
						pidx = pidx[:len(fe.st)]
						for i, a := range fe.st {
							pidx[i] = lut.Index(a)
						}
					}
					for id, in := range instrs {
						if useGuide && !guide.Has(id) {
							continue
						}
						// Pre-apply cut for projection-preserving
						// instructions: the child inherits the parent's
						// projection multiset, so it cannot be sorted and
						// the §3.5 verdict is fePC's — known before the
						// successor exists (see the sequential engine).
						projPres := s.projPres[id]
						if projPres && intLimit != math.MaxInt && fePC > intLimit {
							lgen++
							lcut++
							continue
						}
						// The raw successor keeps the parent's order; the
						// prune predicates and the cut's exceeds-test are
						// order-insensitive, so the canonicalizing sort is
						// deferred until a candidate survives all of them.
						// With dist-pruning on, the prune is fused into the
						// apply itself and aborts at the first over-budget
						// assignment.
						var sorted bool
						if fused {
							var ok bool
							if swar {
								buf, sorted, ok = m.ApplyDistSWAR(buf, fe.st, pidx, in, lut, budget)
							} else {
								buf, ok = m.ApplyDist(buf, fe.st, in, lut, budget)
								if ok {
									sorted = m.AllSorted(buf)
								}
							}
							lgen++
							if !ok {
								lpr++
								continue
							}
						} else {
							if swar {
								buf = m.ApplySWAR(buf, fe.st, in)
								lgen++
								sorted = m.AllSortedSWAR(buf)
							} else {
								buf = m.ApplyRaw(buf, fe.st, in)
								lgen++
								sorted = m.AllSorted(buf)
							}
							if !sorted {
								// Dead end at the bound; the fused branch
								// prunes these through the dist check.
								if budget <= 0 {
									lpr++
									continue
								}
								if viaErase {
									viable := false
									if swar {
										viable = m.AllViableSWAR(buf)
									} else {
										viable = m.AllViable(buf)
									}
									if !viable {
										lpr++
										continue
									}
								}
							}
						}
						var pc int32
						if !sorted && intLimit != math.MaxInt && !projPres &&
							m.PermCountExceedsSet(buf, intLimit, projSet) {
							lcut++
							continue
						}
						state.Canonicalize(&buf)
						if !sorted && cutOn {
							if projPres {
								pc = int32(fePC)
							} else {
								pc = int32(m.PermCount(buf))
							}
							if float64(pc) > limit {
								lcut++
								continue
							}
						}
						key := state.HashKey(buf)
						off, n := arena.Save(buf)
						si := key.Shard(mergeShardBits)
						bkt[si] = append(bkt[si], parCand{
							key:     key,
							parent:  fe.id,
							local:   local,
							off:     off,
							n:       n,
							pc:      pc,
							instrID: uint16(id),
							sorted:  sorted,
						})
						local++
					}
				}
				counts[w] = int64(local)
				mu.Lock()
				generated += lgen
				pruned += lpr
				cut += lcut
				mu.Unlock()
			}(w, lo, hi)
		}
		wg.Wait()
		if s.stopped() {
			// Discard the partially expanded level: merging it would break
			// the level-completeness invariant the Dijkstra semantics rely
			// on, and the result is already marked cancelled/timed out.
			return s.finish()
		}
		s.res.Expanded += int64(len(frontier))
		s.res.Generated += generated
		s.res.Pruned += pruned
		s.res.CutCount += cut

		for w := 0; w < workers; w++ {
			base[w+1] = base[w] + counts[w]
		}
		cg := g + 1

		// Phase 2: merge each shard independently. Draining the workers'
		// buckets in worker order visits a shard's candidates in global
		// sequence order, so dedup decisions and extra-edge order are
		// exactly those of a sequential merge of the full stream —
		// deduplication only ever interacts among equal keys, and equal
		// keys share a shard.
		mergeWorkers := min(workers, mergeShards)
		var mwg sync.WaitGroup
		for mw := 0; mw < mergeWorkers; mw++ {
			mwg.Add(1)
			go func(mw int) {
				defer mwg.Done()
				for si := mw; si < mergeShards; si += mergeWorkers {
					sh := &shards[si]
					sh.pend = sh.pend[:0]
					for w := 0; w < workers; w++ {
						for ci := range buckets[w][si] {
							c := &buckets[w][si][ci]
							provisional := -int32(len(sh.pend)) - 1
							if id, inserted := sh.dedup.getOrPut(c.key, provisional); !inserted {
								sh.deduped++
								// id < 0 marks a node created this level;
								// nonnegative IDs are from earlier levels
								// (shallower depth — no optimal edge).
								if id < 0 && s.opt.AllSolutions {
									p := &sh.pend[-id-1]
									p.node.extra = append(p.node.extra, edge{parent: c.parent, instr: c.instrID})
								}
								continue
							}
							var st state.State
							if !c.sorted {
								st = arenas[w].At(c.off, c.n)
							}
							sh.pend = append(sh.pend, pendingNode{
								seq:  base[w] + int64(c.local),
								node: node{edge: edge{parent: c.parent, instr: c.instrID}, g: uint8(cg), sorted: c.sorted},
								key:  c.key,
								st:   st,
								pc:   c.pc,
							})
						}
					}
				}
			}(mw)
		}
		mwg.Wait()

		// Phase 3: stitch the shards' surviving nodes into the global DAG
		// in sequence order (k-way merge over the seq-sorted pending
		// lists). This reproduces the exact node IDs, solution order, and
		// cut-reference updates of a fully sequential merge.
		next = next[:0]
		for si := range heads {
			heads[si] = 0
		}
		for {
			bestShard := -1
			bestSeq := int64(math.MaxInt64)
			for si := range shards {
				if heads[si] < len(shards[si].pend) {
					if q := shards[si].pend[heads[si]].seq; q < bestSeq {
						bestSeq, bestShard = q, si
					}
				}
			}
			if bestShard < 0 {
				break
			}
			sh := &shards[bestShard]
			p := &sh.pend[heads[bestShard]]
			heads[bestShard]++
			id := int32(len(s.nodes))
			s.nodes = append(s.nodes, p.node)
			sh.dedup.set(p.key, id)
			if p.node.sorted {
				s.recordSolution(id, cg)
				continue
			}
			if s.opt.Cut != CutNone && cg < len(s.bestPerm) && p.pc < s.bestPerm[cg] {
				s.bestPerm[cg] = p.pc
			}
			next = append(next, frontierEntry{id: id, st: p.st})
		}
		for si := range shards {
			s.res.Deduped += shards[si].deduped
			shards[si].deduped = 0
		}

		if tr := s.opt.Trace; tr != nil {
			tr.sample(s.start, s.res, len(next), s.solutionsSoFar())
		}
		if s.optLen >= 0 {
			// Level order: the first level with a solution is optimal and,
			// after this merge, complete.
			break
		}
		frontier, next = next, frontier
		arenas, arenasOld = arenasOld, arenas
	}
	if s.optLen < 0 {
		s.res.Exhausted = true
	}
	return s.finish()
}
