package enum

import (
	"context"
	"math"
	"runtime"
	"sync"

	"sortsynth/internal/isa"
	"sortsynth/internal/state"
	"sortsynth/internal/tables"
)

// runParallel is the level-synchronous parallel Dijkstra variant
// (ablation row "dijkstra, parallel"): all states of program length g are
// expanded concurrently, the successors are merged sequentially into the
// dedup map, and the next level proceeds. Level order gives Dijkstra
// semantics, so the first level containing a solution is optimal and — in
// AllSolutions mode — complete once merged.
func runParallel(ctx context.Context, set *isa.Set, opt Options) *Result {
	s := newSearcher(ctx, set, opt)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	instrs := set.Instrs()

	type frontierEntry struct {
		id int32
		st state.State
	}
	type childCand struct {
		parent  int32
		instrID uint16
		st      state.State
		sorted  bool
		pc      int
	}

	frontier := []frontierEntry{{id: 0, st: s.m.Initial().Clone()}}
	for g := 0; len(frontier) > 0; g++ {
		if g >= s.bound || g > 250 {
			break
		}
		if s.stopped() {
			return s.finish()
		}
		if s.opt.StateBudget > 0 && s.res.Expanded >= s.opt.StateBudget {
			return s.finish()
		}

		// Expand the level in parallel. Workers apply the viability and
		// cut filters; the cut reference is the completed previous level,
		// which makes the parallel cut deterministic.
		results := make([][]childCand, workers)
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		var generated, pruned, cut int64
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := min(lo+chunk, len(frontier))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var buf state.State
				var out []childCand
				var lgen, lpr, lcut int64
				for fi, fe := range frontier[lo:hi] {
					if fi&63 == 63 && s.ctx.Err() != nil {
						break // cancelled mid-level; the caller re-checks after the join
					}
					var guide tables.Mask
					if s.opt.UseActionGuide {
						guide = s.tab.GuideMask(fe.st)
					}
					for id, in := range instrs {
						if s.opt.UseActionGuide && !guide.Has(id) {
							continue
						}
						buf = s.m.Apply(buf, fe.st, in)
						lgen++
						cand := childCand{parent: fe.id, instrID: uint16(id)}
						cand.sorted = s.m.AllSorted(buf)
						if !cand.sorted {
							if g+1 >= s.bound {
								lpr++
								continue
							}
							if s.opt.UseDistPrune {
								lb := s.tab.MaxDist(buf)
								if lb == tables.Infinite || (s.bound != unbounded && g+1+lb > s.bound) {
									lpr++
									continue
								}
							} else if s.opt.ViabilityErase && !s.m.AllViable(buf) {
								lpr++
								continue
							}
							if s.opt.Cut != CutNone {
								cand.pc = s.m.PermCount(buf)
								if ref := s.bestPerm[g]; ref != math.MaxInt32 {
									var limit float64
									if s.opt.Cut == CutFactor {
										limit = s.opt.CutK * float64(ref)
									} else {
										limit = float64(ref) + s.opt.CutK
									}
									if float64(cand.pc) > limit {
										lcut++
										continue
									}
								}
							}
						}
						cand.st = buf.Clone()
						out = append(out, cand)
					}
				}
				results[w] = out
				mu.Lock()
				generated += lgen
				pruned += lpr
				cut += lcut
				mu.Unlock()
			}(w, lo, hi)
		}
		wg.Wait()
		if s.stopped() {
			// Discard the partially expanded level: merging it would break
			// the level-completeness invariant the Dijkstra semantics rely
			// on, and the result is already marked cancelled/timed out.
			return s.finish()
		}
		s.res.Expanded += int64(len(frontier))
		s.res.Generated += generated
		s.res.Pruned += pruned
		s.res.CutCount += cut

		// Sequential merge preserves the exact dedup/path-DAG semantics of
		// the sequential engine.
		next := frontier[:0]
		cg := g + 1
		for _, out := range results {
			for _, cand := range out {
				key := state.HashKey(cand.st)
				if id, ok := s.dedup[key]; ok {
					s.res.Deduped++
					if s.opt.AllSolutions && int(s.nodes[id].g) == cg {
						s.nodes[id].extra = append(s.nodes[id].extra, edge{parent: cand.parent, instr: cand.instrID})
					}
					continue
				}
				id := int32(len(s.nodes))
				s.nodes = append(s.nodes, node{
					edge:   edge{parent: cand.parent, instr: cand.instrID},
					g:      uint8(cg),
					sorted: cand.sorted,
				})
				s.dedup[key] = id
				if cand.sorted {
					s.recordSolution(id, cg)
					continue
				}
				if s.opt.Cut != CutNone && cg < len(s.bestPerm) && int32(cand.pc) < s.bestPerm[cg] {
					s.bestPerm[cg] = int32(cand.pc)
				}
				next = append(next, frontierEntry{id: id, st: cand.st})
			}
		}
		if tr := s.opt.Trace; tr != nil {
			tr.sample(s.start, s.res, len(next), s.solutionsSoFar())
		}
		if s.optLen >= 0 {
			// Level order: the first level with a solution is optimal and,
			// after this merge, complete.
			break
		}
		frontier = next
	}
	if s.optLen < 0 {
		s.res.Exhausted = true
	}
	return s.finish()
}
