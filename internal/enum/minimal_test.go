package enum

import (
	"testing"
	"time"

	"sortsynth/internal/isa"
	"sortsynth/internal/sortnet"
)

func TestRunMinimalN2Certified(t *testing.T) {
	set := isa.NewCmov(2, 1)
	upper := len(sortnet.Optimal(2).CompileCmov()) // 4
	res := RunMinimal(set, upper, 0)
	if res.Length != 4 {
		t.Fatalf("minimal length = %d, want 4", res.Length)
	}
	if !res.Proof {
		t.Error("minimality not certified for n=2")
	}
	sortsAll(t, set, res.Program)
}

func TestRunMinimalN3Certified(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	upper := len(sortnet.Optimal(3).CompileCmov()) // 12
	res := RunMinimal(set, upper, 2*time.Minute)
	if res.Length != 11 {
		t.Fatalf("minimal length = %d, want 11", res.Length)
	}
	if !res.Proof {
		t.Error("minimality not certified (length-10 exhaustion should fit the budget)")
	}
	sortsAll(t, set, res.Program)
}

func TestRunMinimalMinMaxN3(t *testing.T) {
	set := isa.NewMinMax(3, 1)
	upper := len(sortnet.Optimal(3).CompileMinMax()) // 9
	res := RunMinimal(set, upper, time.Minute)
	if res.Length != 8 {
		t.Fatalf("minimal min/max length = %d, want 8", res.Length)
	}
	if !res.Proof {
		t.Error("min/max minimality not certified")
	}
}

func TestRunMinimalUpperTooSmall(t *testing.T) {
	// No kernel of length ≤ 3 exists for n=2; RunMinimal must certify
	// the negative outcome.
	set := isa.NewCmov(2, 1)
	res := RunMinimal(set, 3, 0)
	if res.Length != -1 {
		t.Fatalf("found impossible kernel of length %d", res.Length)
	}
	if !res.Proof {
		t.Error("negative outcome not certified")
	}
}
