package enum

import (
	"time"

	"sortsynth/internal/isa"
)

// RunMinimal synthesizes a minimal-length kernel without a known optimal
// bound: it searches below the given upper bound (e.g. the length of a
// sorting-network kernel) with the fast non-optimality-preserving
// configuration, then alternates between finding shorter kernels and
// certifying nonexistence by exhaustive (optimality-preserving) search.
//
// The returned result carries the shortest kernel found; Proof is true
// iff the final nonexistence search exhausted, certifying minimality.
// stepBudget bounds each certification attempt (0 = unlimited — beware:
// the n=4 length-19 certification is the paper's two-week computation).
func RunMinimal(set *isa.Set, upper int, stepBudget time.Duration) *Result {
	find := ConfigBest()
	find.MaxLen = upper
	find.Timeout = stepBudget
	best := Run(set, find)
	if best.Length < 0 {
		// The aggressive cut may prune every solution; fall back to the
		// exhaustive mode at the same bound.
		best = Run(set, proofOpts(upper, stepBudget))
		if best.Length < 0 {
			// No kernel of length ≤ upper (certified iff Proof).
			return best
		}
	}
	for best.Length > 1 {
		// Fast probe for something shorter.
		f := ConfigBest()
		f.MaxLen = best.Length - 1
		f.Timeout = stepBudget
		if r := Run(set, f); r.Length >= 0 {
			r.Proof = false
			best = r
			continue
		}
		// Certify that nothing shorter exists.
		pr := Run(set, proofOpts(best.Length-1, stepBudget))
		if pr.Length >= 0 {
			pr.Proof = false
			best = pr
			continue
		}
		best.Proof = pr.Proof && !pr.TimedOut
		break
	}
	return best
}

func proofOpts(maxLen int, budget time.Duration) Options {
	o := ConfigProof(maxLen)
	o.Timeout = budget
	// Single-solution mode still exhausts when nothing is found (and so
	// certifies nonexistence), but stops at the first kernel when one
	// exists — RunMinimal only needs a witness, not the full enumeration.
	o.AllSolutions = false
	return o
}
