package verify

import (
	"fmt"

	"sortsynth/internal/isa"
)

// Sorts01MinMax verifies a min/max kernel with the 0-1 principle,
// evaluating all 2^n zero/one inputs simultaneously in one machine word.
//
// Paper §2.3 notes the 0-1 sorting lemma applies to compare-and-swap
// networks but not to the cmov instruction set, forcing the n!
// permutation suite there. Min/max kernels, however, are monotone
// circuits (min and max are monotone, mov is the identity), and the 0-1
// principle holds for any monotone sorter: if every 0/1 input comes out
// sorted, every input does. On {0,1}, min is AND and max is OR, so each
// register can carry a 2^n-bit vector — one bit per test input — and the
// whole suite executes in len(p) word operations.
//
// It panics if p contains flag-based instructions (cmp/cmov), for which
// the principle is unsound.
func Sorts01MinMax(set *isa.Set, p isa.Program) bool {
	n := set.N
	if n > 6 {
		panic("verify: 0-1 check supports n ≤ 6 (2^n bits per word)")
	}
	tests := 1 << n
	// regs[r] bit t = value of register r under 0/1 input t, where input
	// t assigns bit i of t to r_{i+1}.
	regs := make([]uint64, set.Regs())
	for i := 0; i < n; i++ {
		var pat uint64
		for t := 0; t < tests; t++ {
			if t>>i&1 == 1 {
				pat |= 1 << t
			}
		}
		regs[i] = pat
	}
	for _, in := range p {
		switch in.Op {
		case isa.Mov:
			regs[in.Dst] = regs[in.Src]
		case isa.Min:
			regs[in.Dst] &= regs[in.Src]
		case isa.Max:
			regs[in.Dst] |= regs[in.Src]
		default:
			panic(fmt.Sprintf("verify: 0-1 principle unsound for %v (flag semantics)", in.Op))
		}
	}
	// Sorted output for input t: register r_j holds 1 iff at least n−j
	// of the input bits are 1 (the j-th smallest of the 0/1 multiset).
	for j := 0; j < n; j++ {
		var want uint64
		for t := 0; t < tests; t++ {
			ones := popcount(uint(t))
			if ones >= n-j {
				want |= 1 << t
			}
		}
		if regs[j] != want {
			return false
		}
	}
	return true
}

func popcount(x uint) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
