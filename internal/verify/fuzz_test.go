package verify

import (
	"encoding/binary"
	"slices"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/state"
)

// naiveSorts is the independent fuzz oracle: the literal n!-loop over
// permutations through the reference integer interpreter, with its own
// sortedness + multiset check. It shares nothing with Sorts, which runs
// the packed 32-bit machine, nor with outputValid.
func naiveSorts(set *isa.Set, p isa.Program) bool {
	for _, in := range perm.All(set.N) {
		out := state.RunInts(set, p, in)
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
		a, b := slices.Clone(in), slices.Clone(out)
		slices.Sort(a)
		slices.Sort(b)
		if !slices.Equal(a, b) {
			return false
		}
	}
	return true
}

// FuzzVerifySorts cross-checks every verifier in this package against
// the naive oracle on arbitrary programs: Sorts and Counterexample must
// agree with the n!-loop, the weak-order suite must imply the
// permutation suite and random-input correctness, the 0-1 principle
// must agree with full verification on min/max programs, and
// SortsRandom must tolerate hostile bounds (this target found the
// negative-bound panic fixed in SortsRandom).
func FuzzVerifySorts(f *testing.F) {
	f.Add([]byte{}, 2, false, 100)
	f.Add([]byte{0, 0, 0, 1, 0, 2}, 3, false, 5)
	f.Add([]byte{0, 9, 0, 3, 0, 1, 0, 4, 0, 1, 0, 5}, 3, true, -7)
	f.Add([]byte("fuzz the verifier oracle"), 4, true, 0)
	f.Fuzz(func(t *testing.T, code []byte, n int, minmax bool, bound int) {
		n = 2 + (n%3+3)%3 // n ∈ {2,3,4}: 24 permutations at most
		var set *isa.Set
		if minmax {
			set = isa.NewMinMax(n, 1)
		} else {
			set = isa.NewCmov(n, 1)
		}
		instrs := set.Instrs()
		var p isa.Program
		for i := 0; i+1 < len(code) && len(p) < 24; i += 2 {
			p = append(p, instrs[int(binary.BigEndian.Uint16(code[i:]))%len(instrs)])
		}

		want := naiveSorts(set, p)
		if got := Sorts(set, p); got != want {
			t.Fatalf("Sorts = %v, naive oracle says %v for %q", got, want, p.FormatInline(n))
		}
		ce := Counterexample(set, p)
		if (ce == nil) != want {
			t.Fatalf("Counterexample = %v, oracle says sorts=%v", ce, want)
		}
		if ce != nil {
			out := state.RunInts(set, p, ce)
			ok := slices.IsSorted(out)
			a, b := slices.Clone(ce), slices.Clone(out)
			slices.Sort(a)
			slices.Sort(b)
			if ok && slices.Equal(a, b) {
				t.Fatalf("counterexample %v is not a genuine failure (out %v)", ce, out)
			}
		}

		if SortsDuplicates(set, p) {
			if !want {
				t.Fatalf("weak-order-correct program fails a permutation: %q", p.FormatInline(n))
			}
			if in := SortsRandom(set, p, 32, 3, 11); in != nil {
				t.Fatalf("duplicate-safe program fails random input %v", in)
			}
		}
		if minmax {
			if got := Sorts01MinMax(set, p); got != want {
				t.Fatalf("0-1 principle = %v, full verification = %v for %q", got, want, p.FormatInline(n))
			}
		}

		// Hostile bounds must neither panic nor fabricate failures.
		if in := SortsRandom(set, p, 4, bound, 1); in != nil {
			out := state.RunInts(set, p, in)
			ok := slices.IsSorted(out)
			a, b := slices.Clone(in), slices.Clone(out)
			slices.Sort(a)
			slices.Sort(b)
			if ok && slices.Equal(a, b) {
				t.Fatalf("SortsRandom(bound=%d) reported sorted output %v for input %v", bound, out, in)
			}
		}
	})
}
