package verify

import (
	"math"
	"testing"

	"sortsynth/internal/isa"
)

// Regression tests for the SortsRandom bound handling fixed alongside
// the conformance fuzz oracle (FuzzVerifySorts): a negative bound used
// to panic inside rand.Intn, and a bound near MaxInt overflowed the
// interval width 2·bound+1 into a non-positive rand.Intn argument.

func TestSortsRandomNegativeBoundIsMagnitude(t *testing.T) {
	set := isa.NewCmov(3, 1)
	p, err := isa.ParseProgram(paperKernelN3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same magnitude: the draw stream must be identical, so
	// the verdicts agree input for input.
	if in := SortsRandom(set, p, 64, -100, 7); in != nil {
		t.Fatalf("correct kernel failed under negative bound on %v", in)
	}
	broken, _ := isa.ParseProgram("mov r1 r2", 3)
	a := SortsRandom(set, broken, 64, -100, 7)
	b := SortsRandom(set, broken, 64, 100, 7)
	if a == nil || b == nil {
		t.Fatalf("broken kernel passed the random check: neg=%v pos=%v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bound -100 and 100 found different counterexamples: %v vs %v", a, b)
		}
	}
}

func TestSortsRandomHugeBoundDoesNotOverflow(t *testing.T) {
	set := isa.NewCmov(2, 1)
	p, _ := isa.ParseProgram("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	if ce := Counterexample(set, p); ce != nil {
		t.Fatalf("test kernel is broken: %v", ce)
	}
	for _, bound := range []int{math.MaxInt, math.MaxInt - 1, math.MinInt, (math.MaxInt-1)/2 + 1} {
		if in := SortsRandom(set, p, 32, bound, 3); in != nil {
			t.Fatalf("bound %d: correct kernel failed on %v", bound, in)
		}
	}
}

func TestSortsRandomZeroCountAndZeroBound(t *testing.T) {
	set := isa.NewCmov(2, 1)
	broken, _ := isa.ParseProgram("cmp r1 r2", 2)
	if in := SortsRandom(set, broken, 0, 100, 1); in != nil {
		t.Fatalf("count=0 checked an input: %v", in)
	}
	// bound=0 draws all-zero inputs, which any program sorts trivially.
	if in := SortsRandom(set, broken, 16, 0, 1); in != nil {
		t.Fatalf("bound=0 found a counterexample on all-equal input: %v", in)
	}
}
