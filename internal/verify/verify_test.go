package verify

import (
	"testing"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/sortnet"
)

// paperKernelN3 is the 11-instruction kernel of paper §2.1 (middle
// column), mapped rax→r1, rbx→r2, rcx→r3, rdi→s1. Note x86 "cmp rcx, rdi"
// compares first operand against second, i.e. cmp r3 s1 in our syntax.
const paperKernelN3 = `
mov s1 r1
cmp r3 s1
cmovl s1 r3
cmovl r3 r1
cmp r2 r3
mov r1 r2
cmovg r2 r3
cmovg r3 r1
cmp r1 s1
cmovl r2 s1
cmovg r1 s1
`

func TestPaperExampleKernelSorts(t *testing.T) {
	set := isa.NewCmov(3, 1)
	p, err := isa.ParseProgram(paperKernelN3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 11 {
		t.Fatalf("paper kernel has %d instructions, want 11", len(p))
	}
	if !Sorts(set, p) {
		t.Fatalf("paper §2.1 kernel does not sort: counterexample %v", Counterexample(set, p))
	}
	if in := SortsRandom(set, p, 2000, 10000, 1); in != nil {
		t.Fatalf("paper kernel fails on random input %v", in)
	}
	mix := Mix(p)
	if mix.Cmp != 3 || mix.Mov != 2 || mix.CMov != 6 {
		t.Errorf("paper kernel mix = %v, want cmp=3 mov=2 cmov=6", mix)
	}
}

func TestPaperMinMaxKernelSorts(t *testing.T) {
	// Paper §2.1 rightmost column (xmm0→r1, xmm1→r2, xmm2→r3, xmm7→s1):
	// an 8-instruction min/max kernel, one movdqa shorter than the
	// 9-instruction network implementation.
	set := isa.NewMinMax(3, 1)
	p, err := isa.ParseProgram(`
		movdqa s1 r2
		pminud s1 r3
		pmaxud r3 r2
		movdqa r2 r3
		pminud r2 r1
		pmaxud r3 r1
		pmaxud r2 s1
		pminud r1 s1`, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 {
		t.Fatalf("minmax kernel has %d instructions, want 8", len(p))
	}
	if !Sorts(set, p) {
		t.Fatalf("paper min/max kernel does not sort: counterexample %v", Counterexample(set, p))
	}
}

func TestCounterexampleOnBrokenKernel(t *testing.T) {
	set := isa.NewCmov(3, 1)
	p, _ := isa.ParseProgram("mov r1 r2", 3)
	if ce := Counterexample(set, p); ce == nil {
		t.Error("broken kernel has no counterexample")
	}
	if Sorts(set, p) {
		t.Error("broken kernel reported correct")
	}
}

func TestSortsRandomCatchesNonPermutation(t *testing.T) {
	set := isa.NewCmov(2, 1)
	// r1 = r2: output ascending but loses an element.
	p, _ := isa.ParseProgram("cmp r1 r2; cmovg r1 r2", 2)
	if in := SortsRandom(set, p, 500, 100, 42); in == nil {
		t.Error("element-erasing kernel passed the random multiset check")
	}
}

func TestEquivalent(t *testing.T) {
	set := isa.NewCmov(3, 1)
	net := sortnet.Optimal(3).CompileCmov()
	paper, _ := isa.ParseProgram(paperKernelN3, 3)
	if !Equivalent(set, net, paper) {
		t.Error("two correct sorting kernels must be output-equivalent")
	}
	broken, _ := isa.ParseProgram("mov r1 r2", 3)
	if Equivalent(set, net, broken) {
		t.Error("network equivalent to broken kernel")
	}
}

func TestDistinctCommandKeysN3(t *testing.T) {
	// Paper §5.1: the 5602 optimal n=3 solutions use only 23 distinct
	// command combinations.
	if testing.Short() {
		t.Skip("short mode")
	}
	set := isa.NewCmov(3, 1)
	opt := enum.ConfigAllSolutions()
	opt.MaxLen = 11
	res := enum.Run(set, opt)
	if res.SolutionCount != 5602 {
		t.Fatalf("enumerated %d solutions, want 5602", res.SolutionCount)
	}
	got := DistinctCommandKeys(res.Programs)
	if got != 23 {
		t.Errorf("distinct command combinations = %d, paper reports 23", got)
	}
	// The finer instruction-multiset metric shows most solutions are pure
	// reorderings: far fewer multisets than programs.
	seen := make(map[string]struct{})
	for _, p := range res.Programs {
		seen[InstructionMultisetKey(set, p)] = struct{}{}
	}
	if len(seen) >= len(res.Programs)/2 {
		t.Errorf("instruction multisets = %d of %d programs; expected heavy reordering redundancy", len(seen), len(res.Programs))
	}
}

func TestMixOther(t *testing.T) {
	p := isa.Program{{Op: isa.Min, Dst: 0, Src: 1}, {Op: isa.Max, Dst: 1, Src: 0}}
	if m := Mix(p); m.Other != 2 || m.Cmp != 0 {
		t.Errorf("Mix = %v", m)
	}
}
