package verify

import (
	"math/rand"
	"testing"

	"sortsynth/internal/isa"
	"sortsynth/internal/sortnet"
)

func TestSorts01AcceptsNetworks(t *testing.T) {
	for n := 2; n <= 6; n++ {
		set := isa.NewMinMax(n, 1)
		p := sortnet.Optimal(n).CompileMinMax()
		if !Sorts01MinMax(set, p) {
			t.Errorf("n=%d network kernel rejected by 0-1 check", n)
		}
	}
}

func TestSorts01RejectsBroken(t *testing.T) {
	set := isa.NewMinMax(3, 1)
	p, _ := isa.ParseProgram("min r1 r2; max r2 r1", 3)
	if Sorts01MinMax(set, p) {
		t.Error("broken kernel accepted")
	}
}

func TestSorts01MatchesGeneralVerifier(t *testing.T) {
	// Property: on random min/max programs, the bit-parallel 0-1 check
	// agrees with exhaustive duplicate verification — the 0-1 principle
	// for monotone sorters, validated empirically.
	for _, n := range []int{2, 3, 4} {
		set := isa.NewMinMax(n, 1)
		instrs := set.Instrs()
		rng := rand.New(rand.NewSource(int64(n)))
		agreeSort := 0
		for trial := 0; trial < 400; trial++ {
			p := make(isa.Program, rng.Intn(3*n*n))
			for i := range p {
				p[i] = instrs[rng.Intn(len(instrs))]
			}
			got := Sorts01MinMax(set, p)
			want := SortsDuplicates(set, p)
			if got != want {
				t.Fatalf("n=%d: 0-1 says %v, exhaustive says %v for\n%s", n, got, want, p.Format(n))
			}
			if got {
				agreeSort++
			}
		}
		_ = agreeSort
	}
}

func TestSorts01PanicsOnCmov(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for flag-based instructions")
		}
	}()
	set := isa.NewCmov(3, 1)
	p, _ := isa.ParseProgram("cmp r1 r2; cmovg r1 r2", 3)
	Sorts01MinMax(set, p)
}

func TestSorts01FrozenKernels(t *testing.T) {
	// The synthesized min/max kernels must pass the 0-1 check too.
	for _, tc := range []struct {
		n    int
		text string
	}{
		{3, "mov s1 r3; max r3 r1; min r1 s1; mov s1 r2; min r2 r3; max r3 s1; max r2 r1; min r1 s1"},
	} {
		set := isa.NewMinMax(tc.n, 1)
		p, err := isa.ParseProgram(tc.text, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if !Sorts01MinMax(set, p) {
			t.Errorf("n=%d synthesized min/max kernel rejected", tc.n)
		}
	}
}
