// Package verify checks sorting-kernel correctness and classifies
// solution sets.
//
// Correctness follows paper §2.3: a constant-free kernel is correct for
// all inputs iff it sorts every permutation of 1..n, so the permutation
// test suite is both sound and complete. For defense in depth the package
// also offers randomized checking on arbitrary integers (including
// duplicates), which exercises the same property the formal criterion
// implies.
//
// One subtlety the paper's criterion glosses over: scratch registers are
// zero-initialized, so a program that reads a scratch register before
// writing it is not constant-free — the initial 0 leaks in as a constant.
// Such a program can sort every positive-valued test input (where 0 loses
// every max and wins every min) yet fail on inputs at or below zero;
// "max s1 r1; min r1 r2; max r2 s1" is a three-instruction example found
// by FuzzVerifySorts. Sorts and Counterexample intentionally keep the
// paper's permutation criterion; SortsDuplicates and
// DuplicateCounterexample close the hole by also sliding the test values
// past 0 whenever ReadsInitialScratch reports the leak is observable.
package verify

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/state"
)

// Sorts reports whether p sorts every permutation of 1..n on the given
// machine — the paper's correctness criterion (equation 1 specialised to
// the permutation test suite).
func Sorts(set *isa.Set, p isa.Program) bool {
	m := state.NewMachine(set)
	for _, a := range m.Initial() {
		if !m.Sorted(m.RunAsg(a, p)) {
			return false
		}
	}
	return true
}

// SortsDuplicates reports whether p sorts every integer input, including
// repeated and negative values. Testing all canonical weak orders
// (perm.WeakOrders) covers every ordering class of the inputs; when p can
// observe the zero-initialized scratch registers (ReadsInitialScratch)
// the suite additionally varies where the constant 0 falls relative to
// the inputs, which keeps the check sound and complete for arbitrary
// integers. This is strictly stronger than the paper's §2.3 criterion:
// permutations of distinct values never make cmp leave both flags clear,
// so a kernel can pass all n! permutations yet mis-sort ties (see
// EXPERIMENTS.md).
func SortsDuplicates(set *isa.Set, p isa.Program) bool {
	return DuplicateCounterexample(set, p) == nil
}

// DuplicateCounterexample returns an integer input that p fails to sort
// correctly (ascending and multiset-preserving), or nil.
func DuplicateCounterexample(set *isa.Set, p isa.Program) []int {
	orders := perm.WeakOrders(set.N)
	if !ReadsInitialScratch(set, p) {
		// No initial scratch value can flow into the computation, so p is
		// comparison-only over its inputs and one representative per weak
		// order decides every integer input.
		for _, in := range orders {
			if !outputValid(in, state.RunInts(set, p, in)) {
				return in
			}
		}
		return nil
	}
	// p can observe the zero-initialized scratch registers, so its
	// behaviour depends on the ordering class of the inputs *plus* the
	// constant 0. Realize each weak order with even values 2·v and slide
	// them down by s: s=0 puts every input above 0, s=2j makes the j-th
	// distinct value equal 0, s=2j+1 puts 0 strictly between the j-th and
	// j+1-th, and s=2k+1 puts every input below 0 — one representative
	// per ordering class of inputs ∪ {0}.
	for _, in := range orders {
		k := 0
		for _, v := range in {
			k = max(k, v)
		}
		shifted := make([]int, len(in))
		for s := 0; s <= 2*k+1; s++ {
			for i, v := range in {
				shifted[i] = 2*v - s
			}
			if !outputValid(shifted, state.RunInts(set, p, shifted)) {
				return slices.Clone(shifted)
			}
		}
	}
	return nil
}

// ReadsInitialScratch reports whether running p can observe the initial
// (zero) value of a scratch register: some instruction reads an s-register
// that no earlier instruction has definitely written. Programs for which
// this is false are genuinely constant-free, so §2.3's ordering-class
// argument applies to them unchanged; programs for which it is true carry
// the constant 0 and need the extended suites. The check is a
// conservative static dataflow pass: a conditional move does not count as
// initializing its destination (the old value survives when the move is
// not taken), so it can report true for a program whose uninitialized
// read turns out to be harmless — fine for its role of gating the
// cheaper suite.
func ReadsInitialScratch(set *isa.Set, p isa.Program) bool {
	if set.M == 0 {
		return false
	}
	init := make([]bool, set.Regs())
	for i := 0; i < set.N; i++ {
		init[i] = true
	}
	for _, in := range p {
		switch in.Op {
		case isa.Mov:
			if !init[in.Src] {
				return true
			}
			init[in.Dst] = true
		case isa.Cmp:
			if !init[in.Dst] || !init[in.Src] {
				return true
			}
		case isa.Cmovl, isa.Cmovg:
			// Reads src if taken and keeps dst's old value if not, so
			// both operands must already be initialized, and dst does not
			// become initialized.
			if !init[in.Dst] || !init[in.Src] {
				return true
			}
		case isa.Min, isa.Max:
			if !init[in.Dst] || !init[in.Src] {
				return true
			}
			init[in.Dst] = true
		}
	}
	return false
}

// Counterexample returns a permutation of 1..n that p fails to sort, or
// nil if p is correct. Failing means the output is not the ascending
// rearrangement of the input: merely checking ascending order would
// accept value-destroying programs ("mov r1 r2" leaves every register
// equal, which is trivially ordered), so the multiset check is part of
// the criterion, exactly as in SortsRandom.
func Counterexample(set *isa.Set, p isa.Program) []int {
	for _, in := range perm.All(set.N) {
		if !outputValid(in, state.RunInts(set, p, in)) {
			return in
		}
	}
	return nil
}

// SortsRandom checks p on count random inputs drawn from [-bound, bound]
// (duplicates included), verifying the full §2.3 criterion: the output is
// ascending and a multiset permutation of the input. It returns the first
// failing input, or nil.
//
// The bound is a magnitude: a negative bound means its absolute value
// (it used to panic inside rand.Intn), and bounds so large that the
// interval width 2·bound+1 would overflow an int are clamped to the
// largest width that fits. A count ≤ 0 checks nothing and returns nil.
func SortsRandom(set *isa.Set, p isa.Program, count int, bound int, seed int64) []int {
	if bound < 0 {
		if bound == math.MinInt {
			bound = math.MaxInt
		} else {
			bound = -bound
		}
	}
	if bound > (math.MaxInt-1)/2 {
		bound = (math.MaxInt - 1) / 2
	}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < count; t++ {
		in := make([]int, set.N)
		for i := range in {
			in[i] = rng.Intn(2*bound+1) - bound
		}
		out := state.RunInts(set, p, in)
		if !outputValid(in, out) {
			return in
		}
	}
	return nil
}

func outputValid(in, out []int) bool {
	if !perm.IsSorted(out) {
		return false
	}
	a := slices.Clone(in)
	b := slices.Clone(out)
	sort.Ints(a)
	sort.Ints(b)
	return slices.Equal(a, b)
}

// Equivalent reports whether p and q compute the same r1..rn outputs on
// every permutation of 1..n. By the constant-freeness argument of §2.3
// this implies behavioural equivalence on all inputs.
func Equivalent(set *isa.Set, p, q isa.Program) bool {
	m := state.NewMachine(set)
	for _, a := range m.Initial() {
		pa, qa := m.RunAsg(a, p), m.RunAsg(a, q)
		if m.Proj(pa) != m.Proj(qa) {
			return false
		}
	}
	return true
}

// CommandKey returns the canonical key of a program's command
// combination: how often each command mnemonic occurs. The paper observes
// that the 5602 optimal n=3 solutions use only 23 distinct command
// combinations (§5.1) — most solutions are reorderings and register
// renamings of one another, which leave the command counts unchanged.
func CommandKey(p isa.Program) [isa.NumOps]int {
	return p.OpCounts()
}

// DistinctCommandKeys returns the number of distinct command combinations
// among the given programs.
func DistinctCommandKeys(programs []isa.Program) int {
	seen := make(map[[isa.NumOps]int]struct{}, 64)
	for _, p := range programs {
		seen[CommandKey(p)] = struct{}{}
	}
	return len(seen)
}

// InstructionMultisetKey returns a finer canonical key: the multiset of
// concrete instructions, ignoring only instruction order. Useful for
// analyzing how much of the solution space is pure reordering.
func InstructionMultisetKey(set *isa.Set, p isa.Program) string {
	lines := make([]string, len(p))
	for i, in := range p {
		lines[i] = in.Format(set.N)
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// InstrMix summarises a program's instruction mix the way the paper's
// §5.3 tables report it: compare, plain move, and conditional-move
// counts, plus everything else.
type InstrMix struct {
	Cmp, Mov, CMov, Other int
}

// Mix returns the instruction mix of p.
func Mix(p isa.Program) InstrMix {
	var m InstrMix
	for _, in := range p {
		switch in.Op {
		case isa.Cmp:
			m.Cmp++
		case isa.Mov:
			m.Mov++
		case isa.Cmovl, isa.Cmovg:
			m.CMov++
		default:
			m.Other++
		}
	}
	return m
}

// String renders the mix as "cmp=3 mov=8 cmov=6 other=0".
func (m InstrMix) String() string {
	return fmt.Sprintf("cmp=%d mov=%d cmov=%d other=%d", m.Cmp, m.Mov, m.CMov, m.Other)
}
