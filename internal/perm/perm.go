// Package perm provides utilities for enumerating and ranking the
// permutations of 1..n that form the correctness test suite for sorting
// kernel synthesis.
//
// Because sorting kernels are constant-free and oblivious, a kernel is
// correct for all inputs iff it sorts every permutation of n distinct
// values (paper §2.3). The canonical test suite is therefore the n!
// permutations of 1..n.
package perm

import "fmt"

// MaxN is the largest array length supported by the packed state
// representation (4 bits per register value, values 1..n plus 0 for
// uninitialized scratch).
const MaxN = 7

// Factorial returns n!. It panics if n is negative or the result would
// overflow int64.
func Factorial(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("perm: Factorial of negative %d", n))
	}
	if n > 20 {
		panic(fmt.Sprintf("perm: Factorial(%d) overflows int64", n))
	}
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// All returns all n! permutations of 1..n in lexicographic order.
// Each permutation is a fresh slice of length n.
func All(n int) [][]int {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("perm: All(%d) out of range [0,%d]", n, MaxN))
	}
	if n == 0 {
		return [][]int{{}}
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i + 1
	}
	out := make([][]int, 0, Factorial(n))
	for {
		p := make([]int, n)
		copy(p, cur)
		out = append(out, p)
		if !nextLex(cur) {
			break
		}
	}
	return out
}

// nextLex advances p to the next permutation in lexicographic order,
// returning false if p was the last one.
func nextLex(p []int) bool {
	i := len(p) - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(p) - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, len(p)-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}

// Rank returns the lexicographic rank (0-based) of permutation p of 1..n.
func Rank(p []int) int {
	n := len(p)
	rank := 0
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank += smaller * Factorial(n-1-i)
	}
	return rank
}

// Unrank returns the permutation of 1..n with the given lexicographic
// rank (0-based).
func Unrank(n, rank int) []int {
	if rank < 0 || rank >= Factorial(n) {
		panic(fmt.Sprintf("perm: Unrank rank %d out of range for n=%d", rank, n))
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i + 1
	}
	p := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		f := Factorial(i)
		idx := rank / f
		rank %= f
		p = append(p, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return p
}

// WeakOrders returns one canonical representative of every weak ordering
// of n elements: all tuples over {1..m} (m ≤ n) that use each value
// 1..m at least once. Because constant-free comparison programs behave
// identically on order-isomorphic inputs *including ties*, testing all
// weak orders is sound and complete for arbitrary integer inputs —
// unlike the n! distinct-value permutations, which never exercise the
// "equal" outcome of cmp (both flags clear). The counts are the ordered
// Bell numbers: 1, 3, 13, 75, 541 for n = 1..5.
func WeakOrders(n int) [][]int {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("perm: WeakOrders(%d) out of range [0,%d]", n, MaxN))
	}
	var out [][]int
	cur := make([]int, n)
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if i == n {
			// Canonical iff values used are exactly 1..maxUsed; ensure
			// surjectivity.
			seen := make([]bool, maxUsed+1)
			for _, v := range cur {
				if v <= maxUsed {
					seen[v] = true
				}
			}
			for v := 1; v <= maxUsed; v++ {
				if !seen[v] {
					return
				}
			}
			p := make([]int, n)
			copy(p, cur)
			out = append(out, p)
			return
		}
		for v := 1; v <= n; v++ {
			cur[i] = v
			nm := maxUsed
			if v > nm {
				nm = v
			}
			rec(i+1, nm)
		}
	}
	rec(0, 0)
	return out
}

// IsSorted reports whether p is in ascending order.
func IsSorted(p []int) bool {
	for i := 1; i < len(p); i++ {
		if p[i-1] > p[i] {
			return false
		}
	}
	return true
}

// IsPermutation reports whether p is a permutation of 1..n where n = len(p).
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p)+1)
	for _, v := range p {
		if v < 1 || v > len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
