package perm

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestFactorial(t *testing.T) {
	want := []int{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestFactorialPanics(t *testing.T) {
	for _, bad := range []int{-1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorial(%d) did not panic", bad)
				}
			}()
			Factorial(bad)
		}()
	}
}

func TestAllCountAndOrder(t *testing.T) {
	for n := 0; n <= 6; n++ {
		ps := All(n)
		if len(ps) != Factorial(n) {
			t.Fatalf("All(%d) has %d permutations, want %d", n, len(ps), Factorial(n))
		}
		for i, p := range ps {
			if !IsPermutation(p) {
				t.Fatalf("All(%d)[%d] = %v is not a permutation", n, i, p)
			}
			if i > 0 && slices.Compare(ps[i-1], p) >= 0 {
				t.Fatalf("All(%d) not strictly lexicographic at %d", n, i)
			}
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for rank, p := range All(n) {
			if got := Rank(p); got != rank {
				t.Errorf("Rank(%v) = %d, want %d", p, got, rank)
			}
			if got := Unrank(n, rank); !slices.Equal(got, p) {
				t.Errorf("Unrank(%d, %d) = %v, want %v", n, rank, got, p)
			}
		}
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unrank(3, 6) did not panic")
		}
	}()
	Unrank(3, 6)
}

func TestIsSortedIsPermutation(t *testing.T) {
	if !IsSorted([]int{1, 2, 2, 3}) || IsSorted([]int{2, 1}) {
		t.Error("IsSorted wrong")
	}
	if !IsPermutation([]int{3, 1, 2}) || IsPermutation([]int{1, 1, 3}) || IsPermutation([]int{0, 1, 2}) {
		t.Error("IsPermutation wrong")
	}
}

func TestWeakOrdersCounts(t *testing.T) {
	// Ordered Bell numbers.
	want := map[int]int{1: 1, 2: 3, 3: 13, 4: 75, 5: 541}
	for n, w := range want {
		ws := WeakOrders(n)
		if len(ws) != w {
			t.Errorf("WeakOrders(%d) has %d entries, want %d", n, len(ws), w)
		}
		seen := map[string]bool{}
		for _, tup := range ws {
			key := ""
			maxV := 0
			for _, v := range tup {
				key += string(rune('0' + v))
				if v > maxV {
					maxV = v
				}
			}
			if seen[key] {
				t.Errorf("WeakOrders(%d): duplicate %v", n, tup)
			}
			seen[key] = true
			// Surjective onto 1..maxV.
			present := make([]bool, maxV+1)
			for _, v := range tup {
				present[v] = true
			}
			for v := 1; v <= maxV; v++ {
				if !present[v] {
					t.Errorf("WeakOrders(%d): %v skips value %d", n, tup, v)
				}
			}
		}
	}
}

func TestWeakOrdersIncludePermutationsAndConstant(t *testing.T) {
	ws := WeakOrders(3)
	has := func(tup []int) bool {
		for _, w := range ws {
			if slices.Equal(w, tup) {
				return true
			}
		}
		return false
	}
	for _, p := range All(3) {
		if !has(p) {
			t.Errorf("WeakOrders(3) missing permutation %v", p)
		}
	}
	if !has([]int{1, 1, 1}) || !has([]int{2, 1, 1}) {
		t.Error("WeakOrders(3) missing duplicate patterns")
	}
}

func TestNextLexProperty(t *testing.T) {
	// All(n) round-trips through Rank, so ranks are a bijection.
	f := func(seed uint8) bool {
		n := int(seed%5) + 1
		r := int(seed) % Factorial(n)
		return Rank(Unrank(n, r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
