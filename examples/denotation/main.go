// Denotation: read a synthesized kernel as min/max/ite expressions — the
// semantic view in which the paper explains why optimal kernels beat
// sorting networks (§2.1) — and show that classical compiler passes
// cannot bridge the gap.
//
//	go run ./examples/denotation
package main

import (
	"fmt"
	"log"

	"sortsynth"
	"sortsynth/internal/sortnet"
)

func main() {
	set := sortsynth.NewCmovSet(3, 1)

	// The paper's §2.1 synthesized kernel (rax→r1, rbx→r2, rcx→r3,
	// rdi→s1).
	kernel, err := sortsynth.Parse(`
		mov s1 r1
		cmp r3 s1
		cmovl s1 r3
		cmovl r3 r1
		cmp r2 r3
		mov r1 r2
		cmovg r2 r3
		cmovg r3 r1
		cmp r1 s1
		cmovl r2 s1
		cmovg r1 s1`, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the paper's 11-instruction kernel as x86-64 assembly:")
	fmt.Println()
	fmt.Print(sortsynth.AsmX86(set, kernel))

	fmt.Println("\nits denotation (what each output register computes):")
	for i, e := range sortsynth.Denote(set, kernel) {
		fmt.Printf("  r%d = %s\n", i+1, e)
	}

	// The §2.1 point: proving the synthesized kernel interchangeable with
	// the network needs min/max identities such as
	// min(a, min(b,c)) = min(min(max(c,b), a), min(b,c)) — mechanized by
	// ExprEquiv.
	fmt.Println("\nmechanized §2.1 identity check:")
	a := sortsynth.Denote(set, kernel)[0]
	network := sortnet.Optimal(3).CompileCmov()
	b := sortsynth.Denote(set, network)[0]
	fmt.Printf("  synthesized r1  = %s\n", a)
	fmt.Printf("  network r1      = %s\n", b)
	fmt.Printf("  equivalent      = %v\n", sortsynth.ExprEquiv(3, a, b))

	// Classical passes cannot shorten the 12-instruction network kernel;
	// the synthesizer's 11 instructions need the semantic identity above.
	opt := sortsynth.Optimize(set, network)
	fmt.Printf("\nnetwork kernel: %d instructions; after copy-prop + DCE: %d (irreducible)\n",
		len(network), len(opt))
	fmt.Printf("synthesized kernel: %d instructions\n", len(kernel))
}
