// Baselines: run every synthesis technique of the paper's comparison on
// the same tiny instance (n=2, length 4) and print a scoreboard — a
// miniature of the §5.2 evaluation that finishes in seconds.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"time"

	"sortsynth/internal/cp"
	"sortsynth/internal/enum"
	"sortsynth/internal/ilp"
	"sortsynth/internal/isa"
	"sortsynth/internal/mcts"
	"sortsynth/internal/plan"
	"sortsynth/internal/smt"
	"sortsynth/internal/stoke"
	"sortsynth/internal/verify"
)

func main() {
	set := isa.NewCmov(2, 1)
	const length = 4

	type outcome struct {
		name    string
		found   bool
		correct bool
		elapsed time.Duration
	}
	var results []outcome
	record := func(name string, p isa.Program, d time.Duration) {
		results = append(results, outcome{
			name:    name,
			found:   p != nil,
			correct: p != nil && verify.Sorts(set, p),
			elapsed: d,
		})
	}

	{ // Enumerative (this paper's approach).
		o := enum.ConfigBest()
		o.MaxLen = length
		r := enum.Run(set, o)
		record("enumerative A* (paper)", r.Program, r.Elapsed)
	}
	{ // SMT-PERM on the SAT core.
		r := smt.SynthPerm(set, smt.Options{Length: length, Goal: smt.GoalAscCounts0, Encoding: smt.EncodingDense})
		record("SMT-PERM (SAT core)", r.Program, r.Elapsed)
	}
	{ // SMT-CEGIS.
		r := smt.SynthCEGIS(set, smt.Options{Length: length, Goal: smt.GoalAscCounts0, Encoding: smt.EncodingDense})
		record(fmt.Sprintf("SMT-CEGIS (%d iterations)", r.Iterations), r.Program, r.Elapsed)
	}
	{ // Constraint programming.
		r := cp.Synthesize(set, cp.Options{Length: length, Goal: cp.GoalAscCounts0, NoConsecutiveCmp: true, CmpSymmetry: true})
		record("constraint programming (FD)", r.Program, r.Elapsed)
	}
	{ // ILP big-M.
		r := ilp.Synthesize(set, ilp.Options{Length: length, MaxNodes: 5_000_000, Timeout: time.Minute})
		record("ILP (big-M branch&bound)", r.Program, r.Elapsed)
	}
	{ // Stochastic search.
		r := stoke.Run(set, stoke.Options{Length: length, Seed: 1, MaxProposals: 2_000_000})
		record("stochastic MCMC (Stoke-style)", r.Program, r.Elapsed)
	}
	{ // Planning.
		prob := plan.Encode(set, nil)
		r := plan.Solve(prob, plan.Options{Algorithm: plan.AStar, Heuristic: plan.GoalCount})
		var p isa.Program
		if r.Plan != nil {
			p = plan.PlanToProgram(set, r.Plan)
		}
		record("planning (A* + goal count)", p, r.Elapsed)
	}
	{ // MCTS.
		r := mcts.Run(set, mcts.Options{MaxLen: 6, Seed: 1})
		record("MCTS (AlphaDev-style UCT)", r.Program, r.Elapsed)
	}

	fmt.Printf("synthesis of a %d-instruction sorting kernel for n=%d, all techniques:\n\n", length, set.N)
	fmt.Printf("  %-32s %-8s %-10s %s\n", "technique", "found", "correct", "time")
	for _, r := range results {
		fmt.Printf("  %-32s %-8v %-10v %v\n", r.name, r.found, r.correct, r.elapsed.Round(time.Microsecond))
	}
	fmt.Println("\nAt n=3 the field thins out (see `go run ./cmd/experiments -all`):")
	fmt.Println("only the enumerative approach reaches n=4 and n=5 — the paper's headline result.")
}
