// Quickstart: synthesize a provably minimal 3-element sorting kernel,
// verify it, and inspect its static cost profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sortsynth"
)

func main() {
	// A machine with three sorted registers (r1..r3) and one scratch
	// register (s1) — the configuration of the paper and of AlphaDev.
	set := sortsynth.NewCmovSet(3, 1)

	// The known optimal length for this machine is 11 instructions
	// (one shorter than a sorting-network implementation).
	bound, _ := sortsynth.KnownOptimalLength(set)

	res := sortsynth.SynthesizeBest(set, bound)
	if res.Length < 0 {
		log.Fatal("synthesis failed")
	}
	fmt.Printf("synthesized a %d-instruction kernel in %v (%d states expanded):\n\n",
		res.Length, res.Elapsed.Round(1000), res.Expanded)
	fmt.Println(res.Program.Format(set.N))

	// Verify on all 3! permutations (the paper's §2.3 criterion) …
	if !sortsynth.Verify(set, res.Program) {
		log.Fatal("kernel failed verification")
	}
	fmt.Println("\n✓ sorts all 6 permutations of distinct values")

	// … and check duplicate handling, which permutations cannot cover.
	if sortsynth.VerifyDuplicates(set, res.Program) {
		fmt.Println("✓ also sorts every input with repeated values")
	} else {
		ce := sortsynth.Counterexample(set, res.Program)
		fmt.Printf("✗ mis-sorts ties (e.g. %v) — synthesize with SynthesizeDuplicateSafe\n", ce)
		safe := sortsynth.SynthesizeDuplicateSafe(set, bound)
		fmt.Printf("\nduplicate-safe kernel (still %d instructions):\n%s\n",
			safe.Length, safe.Program.Format(set.N))
	}

	// Static cost model (the uiCA-style estimator of the evaluation).
	a := sortsynth.Analyze(set, res.Program)
	fmt.Printf("\ncost model: %d instructions, %d uops, score %d, critical path %d, ~%.2f cycles/invocation\n",
		a.Instructions, a.Uops, a.Score, a.CriticalPath, a.Throughput)
}
