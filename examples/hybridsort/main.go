// Hybridsort: use synthesized kernels as the base case of quicksort and
// mergesort — the deployment scenario that motivates sorting-kernel
// synthesis (paper §1, §5.3) — and compare against the standard library.
//
//	go run ./examples/hybridsort
package main

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"time"

	"sortsynth/internal/bench"
	"sortsynth/internal/kernels"
)

func main() {
	const size = 500_000
	rng := rand.New(rand.NewSource(2025))
	data := make([]int, size)
	for i := range data {
		data[i] = rng.Intn(200001) - 100000
	}

	timeIt := func(name string, sortFn func([]int)) []int {
		work := slices.Clone(data)
		start := time.Now()
		sortFn(work)
		elapsed := time.Since(start)
		if !slices.IsSorted(work) {
			panic(name + " did not sort")
		}
		fmt.Printf("  %-34s %v\n", name, elapsed.Round(time.Microsecond))
		return work
	}

	fmt.Printf("sorting %d random ints:\n", size)
	ref := timeIt("sort.Ints (stdlib)", sort.Ints)

	var enum3, enum4 func([]int)
	for _, k := range kernels.Contenders(3) {
		if k.Name == "enum" {
			enum3 = k.Go
		}
	}
	for _, k := range kernels.Contenders(4) {
		if k.Name == "enum" {
			enum4 = k.Go
		}
	}

	checks := [][]int{
		timeIt("quicksort + synthesized sort3", func(a []int) { bench.Quicksort(a, 3, enum3) }),
		timeIt("quicksort + synthesized sort4", func(a []int) { bench.Quicksort(a, 4, enum4) }),
		timeIt("quicksort + network sort3", func(a []int) { bench.Quicksort(a, 3, kernels.Sort3Network) }),
		timeIt("quicksort + branchy default3", func(a []int) { bench.Quicksort(a, 3, kernels.Sort3Default) }),
		timeIt("mergesort + synthesized sort3", func(a []int) { bench.Mergesort(a, 3, enum3) }),
		timeIt("mergesort + network sort3", func(a []int) { bench.Mergesort(a, 3, kernels.Sort3Network) }),
	}
	for _, got := range checks {
		if !slices.Equal(got, ref) {
			panic("hybrid sort output differs from the standard library")
		}
	}
	fmt.Println("\nall hybrid sorts produced identical output ✓")
}
