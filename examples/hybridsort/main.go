// Hybridsort: sort with the generated library of internal/sortgen —
// synthesized kernels as the ≤ 5-element base cases of an introsort and
// a mergesort, plus fully branchless composed sorters for fixed small
// lengths — and check every result byte-for-byte against slices.Sort.
// This is the deployment scenario that motivates sorting-kernel
// synthesis (paper §1, §5.3): the kernels matter because they sit
// inside real sorts.
//
//	go run ./examples/hybridsort
package main

import (
	"fmt"
	"log"
	"math/rand"
	"slices"
	"sort"
	"time"

	"sortsynth/internal/sortgen"
)

func main() {
	const size = 500_000
	rng := rand.New(rand.NewSource(2025))
	data := make([]int, size)
	for i := range data {
		data[i] = rng.Intn(200001) - 100000
	}

	// The reference: whatever slices.Sort produces is, by definition,
	// the correct answer — every contender must match it exactly, not
	// merely be sorted.
	ref := slices.Clone(data)
	slices.Sort(ref)

	timeIt := func(name string, sortFn func([]int)) {
		work := slices.Clone(data)
		start := time.Now()
		sortFn(work)
		elapsed := time.Since(start)
		if !slices.Equal(work, ref) {
			log.Fatalf("%s output differs from slices.Sort", name)
		}
		fmt.Printf("  %-38s %v\n", name, elapsed.Round(time.Microsecond))
	}

	fmt.Printf("sorting %d random ints (all outputs checked against slices.Sort):\n", size)
	timeIt("slices.Sort (stdlib)", func(a []int) { slices.Sort(a) })
	timeIt("sort.Slice (stdlib, func compare)", func(a []int) {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	})
	timeIt("sortgen.HybridSort (kernel base cases)", sortgen.HybridSort)
	timeIt("sortgen.HybridMergesort", sortgen.HybridMergesort)

	// Fixed-n: compose a fully branchless sorter (kernel blocks + merge
	// networks) and run it over many small arrays — the shape generated
	// sorters exist for.
	fmt.Println("\nfixed-length composed sorters (1e5 arrays each, vs slices.Sort):")
	for _, n := range []int{6, 13, 32} {
		plan, err := sortgen.Compose(n)
		if err != nil {
			log.Fatal(err)
		}
		sorter := plan.Sorter()
		const arrays = 100_000
		inputs := make([][]int, arrays)
		for i := range inputs {
			a := make([]int, n)
			for j := range a {
				a[j] = rng.Intn(20001) - 10000
			}
			inputs[i] = a
		}
		start := time.Now()
		for _, a := range inputs {
			sorter(a)
		}
		elapsed := time.Since(start)
		for _, a := range inputs {
			if !slices.IsSorted(a) {
				log.Fatalf("Sort%d left an unsorted array", n)
			}
		}
		// Spot-check exact agreement with slices.Sort on fresh inputs.
		for trial := 0; trial < 1000; trial++ {
			in := make([]int, n)
			for j := range in {
				in[j] = rng.Intn(100)
			}
			want := slices.Clone(in)
			slices.Sort(want)
			sorter(in)
			if !slices.Equal(in, want) {
				log.Fatalf("Sort%d output differs from slices.Sort", n)
			}
		}
		fmt.Printf("  Sort%-3d (blocks %-8s %3d kernel instr, %3d comparators)  %v\n",
			n, plan.BlocksDesc()+",", plan.KernelInstructions(), plan.Comparators(),
			elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nall sorts produced output identical to slices.Sort ✓")
}
