// Minmax: synthesize vector-style min/max kernels (paper §5.4) and
// compare them against the sorting-network implementations they beat.
//
//	go run ./examples/minmax
package main

import (
	"fmt"
	"log"
	"time"

	"sortsynth"
	"sortsynth/internal/sortnet"
)

func main() {
	fmt.Println("min/max kernel synthesis (movdqa/pminud/pmaxud model)")
	fmt.Println()
	fmt.Printf("%-4s %-14s %-14s %-10s %-20s\n", "n", "synthesized", "network impl", "time", "model throughput")
	for n := 3; n <= 4; n++ {
		set := sortsynth.NewMinMaxSet(n, 1)
		bound, _ := sortsynth.KnownOptimalLength(set)
		start := time.Now()
		res := sortsynth.SynthesizeBest(set, bound)
		if res.Length < 0 || !sortsynth.Verify(set, res.Program) {
			log.Fatalf("n=%d synthesis failed", n)
		}
		elapsed := time.Since(start)

		net := sortnet.Optimal(n).CompileMinMax()
		syn := sortsynth.Analyze(set, res.Program)
		nw := sortsynth.Analyze(set, net)
		fmt.Printf("%-4d %-14s %-14s %-10v %.2f vs %.2f cycles\n",
			n,
			fmt.Sprintf("%d instr", res.Length),
			fmt.Sprintf("%d instr", len(net)),
			elapsed.Round(time.Millisecond),
			syn.Throughput, nw.Throughput)
	}

	fmt.Println()
	set := sortsynth.NewMinMaxSet(3, 1)
	res := sortsynth.SynthesizeBest(set, 8)
	fmt.Println("the 8-instruction n=3 kernel (one movdqa shorter than the 9-instruction network):")
	fmt.Println()
	fmt.Println(res.Program.Format(3))

	// The §5.4 minimality claim, certified by exhaustion.
	ok, proof := sortsynth.ProveNoKernel(set, 7)
	if !ok {
		log.Fatal("lower-bound proof failed")
	}
	fmt.Printf("\n✓ proved minimal: no 7-instruction min/max kernel exists (%d states, %v)\n",
		proof.Expanded, proof.Elapsed.Round(time.Millisecond))
}
