// Command sortsynthd serves synthesized sorting kernels over HTTP.
//
// For a given (isa, n, m, options) tuple the optimal kernel is a pure,
// deterministic artifact: the daemon synthesizes it once — coalescing
// concurrent identical requests into a single search — caches it in a
// two-tier content-addressed store, and serves it from the cache forever
// after.
//
//	sortsynthd -addr :8080 -cache-dir /var/cache/sortsynth
//
//	curl -s localhost:8080/v1/synthesize -d '{"n": 3}'
//	curl -s 'localhost:8080/v1/kernels?n=3'
//	curl -s 'localhost:8080/v1/sortgen?n=13'
//	curl -s localhost:8080/v1/verify -d '{"n": 2, "program": "..."}'
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests for -drain, then hard-cancels any searches still
// running and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"sortsynth/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache-dir", "", "on-disk kernel store (empty = memory-only)")
		cacheSize = flag.Int("cache-size", 256, "in-memory LRU capacity (entries)")
		searches  = flag.Int("max-searches", 0, "concurrent search bound (0 = GOMAXPROCS)")
		workers   = flag.Int("search-workers", 0, "enum workers per search (0 = GOMAXPROCS, 1 = sequential engine)")
		uprofile  = flag.String("uarch-profile", "", `uarch profile for objective ranking (deployment-wide; empty = "big-ooo" default)`)
		timeout   = flag.Duration("search-timeout", 2*time.Minute, "per-search wall-clock cap")
		maxN      = flag.Int("max-n", 5, "largest array length to accept")
		maxSortN  = flag.Int("max-sort-n", 256, "largest generated-sorter length for /v1/sortgen")
		uniPath   = flag.String("universe", "", "baked universe artifact (sortsynth-bake) mounted as the L0 tier (empty = off)")
		tunedPath = flag.String("tuned", "", "autotuned dispatch table (experiments -table=autotune) for staggered portfolio scheduling (empty = race everything)")
		maxBatch  = flag.Int("max-batch", 32, "largest spec list accepted by /v1/synthesize/batch")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain period")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	srv, err := service.New(service.Config{
		CacheDir:              *cacheDir,
		CacheSize:             *cacheSize,
		MaxConcurrentSearches: *searches,
		SearchWorkers:         *workers,
		UarchProfile:          *uprofile,
		SearchTimeout:         *timeout,
		MaxN:                  *maxN,
		MaxSortN:              *maxSortN,
		UniversePath:          *uniPath,
		TunedPath:             *tunedPath,
		MaxBatch:              *maxBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *uniPath != "" {
		log.Printf("universe mounted: %s", *uniPath)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Profiling is opt-in and lives on its own listener so the profile
	// endpoints are never reachable through the service address. The
	// default ServeMux is avoided on purpose: importing net/http/pprof
	// registers handlers there, and serving http.DefaultServeMux would
	// expose them to anything else that registered too.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("sortsynthd listening on %s (cache-dir=%q)", *addr, *cacheDir)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests (and their searches)
	// finish within the drain budget.
	log.Printf("shutting down, draining for up to %v", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = httpSrv.Shutdown(drainCtx)
	// Hard stop: abort whatever searches are still running so their
	// handlers return and the process can exit.
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain period elapsed; cancelled remaining searches")
		// Give the cancelled handlers a moment to unwind.
		final, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		httpSrv.Shutdown(final)
	}
	log.Printf("bye")
}
