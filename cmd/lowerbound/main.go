// Command lowerbound certifies minimal kernel lengths by exhaustive
// search with only optimality-preserving pruning (deduplication,
// admissible distance bounds, viability) — the method behind the paper's
// new n=4 result: no length-19 kernel exists, so the length-20 kernels
// are optimal (§5.3).
//
// Examples:
//
//	lowerbound -n 3 -len 10              # seconds: validates 11 is optimal
//	lowerbound -n 3 -isa minmax -len 7   # validates 8 is optimal (§5.4)
//	lowerbound -n 4 -len 19              # the paper's two-week computation
//	lowerbound -n 4 -len 19 -budget 5e7  # a bounded slice of it
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sortsynth"
	"sortsynth/internal/enum"
)

func main() {
	log.SetFlags(0)
	var (
		n       = flag.Int("n", 3, "array length")
		m       = flag.Int("m", 1, "scratch registers")
		isaName = flag.String("isa", "cmov", "instruction set: cmov or minmax")
		length  = flag.Int("len", 10, "certify that no kernel of length ≤ len exists")
		budget  = flag.Float64("budget", 0, "state budget (0 = unlimited; inexhaustive runs are inconclusive)")
		timeout = flag.Duration("timeout", 0, "wall-clock budget")
		workers = flag.Int("workers", 0, "parallel workers (0 = sequential)")
	)
	flag.Parse()

	var set *sortsynth.Set
	switch *isaName {
	case "cmov":
		set = sortsynth.NewCmovSet(*n, *m)
	case "minmax":
		set = sortsynth.NewMinMaxSet(*n, *m)
	default:
		log.Fatalf("unknown -isa %q", *isaName)
	}

	opt := enum.ConfigProof(*length)
	opt.StateBudget = int64(*budget)
	opt.Timeout = *timeout
	opt.Workers = *workers

	start := time.Now()
	res := sortsynth.Synthesize(set, opt)
	elapsed := time.Since(start).Round(time.Millisecond)

	switch {
	case res.Length >= 0:
		fmt.Printf("DISPROVED: a length-%d kernel exists (%d optimal programs found, %v):\n%s\n",
			res.Length, res.SolutionCount, elapsed, res.Program.Format(*n))
		os.Exit(1)
	case res.Proof:
		fmt.Printf("PROVED: no %s kernel of length ≤ %d exists.\n", set, *length)
		fmt.Printf("states expanded: %d, generated: %d, deduplicated: %d, pruned: %d, time: %v\n",
			res.Expanded, res.Generated, res.Deduped, res.Pruned, elapsed)
	default:
		fmt.Printf("INCONCLUSIVE: stopped before exhaustion (expanded %d states in %v).\n", res.Expanded, elapsed)
		fmt.Printf("Re-run without -budget/-timeout for a certified bound.\n")
		os.Exit(2)
	}
}
