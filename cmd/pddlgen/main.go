// Command pddlgen emits the sorting-kernel synthesis problem as PDDL
// domain and problem files — the format in which the paper's artifact
// hands the problem to fast-downward, LAMA, Scorpion and CPDDL (§5.2).
// The files use :strips and :conditional-effects only, so any classical
// planner supporting conditional effects can consume them.
//
//	pddlgen -n 3 -out-domain domain.pddl -out-problem problem.pddl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/plan"
)

func main() {
	log.SetFlags(0)
	var (
		n       = flag.Int("n", 3, "array length")
		m       = flag.Int("m", 1, "scratch registers")
		isaName = flag.String("isa", "cmov", "instruction set: cmov or minmax")
		domOut  = flag.String("out-domain", "domain.pddl", "domain output path")
		probOut = flag.String("out-problem", "problem.pddl", "problem output path")
	)
	flag.Parse()

	var set *isa.Set
	switch *isaName {
	case "cmov":
		set = isa.NewCmov(*n, *m)
	case "minmax":
		set = isa.NewMinMax(*n, *m)
	default:
		log.Fatalf("unknown -isa %q", *isaName)
	}

	prob := plan.Encode(set, nil)
	namer := plan.AtomNamer(perm.Factorial(*n), set.Regs(), *n+1)

	dom, err := os.Create(*domOut)
	if err != nil {
		log.Fatal(err)
	}
	defer dom.Close()
	pr, err := os.Create(*probOut)
	if err != nil {
		log.Fatal(err)
	}
	defer pr.Close()
	plan.WritePDDL(dom, pr, prob, fmt.Sprintf("sortsynth-%s-n%d", *isaName, *n), namer)
	fmt.Printf("wrote %s and %s (%d atoms, %d actions, %d goal literals)\n",
		*domOut, *probOut, prob.NumAtoms, len(prob.Actions), len(prob.Goal))
}
