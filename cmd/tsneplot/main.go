// Command tsneplot reproduces Figure 2: enumerate the optimal n=3
// kernels, color them by the smallest cut constant that preserves them,
// and embed them in 2-D with t-SNE. Equivalent to
// "experiments -figure=2" but with tunable t-SNE parameters.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/tsne"
	"sortsynth/internal/viz"
)

func main() {
	log.SetFlags(0)
	var (
		out        = flag.String("out", "tsne.svg", "output SVG path")
		perplexity = flag.Float64("perplexity", 50, "t-SNE perplexity")
		iterations = flag.Int("iterations", 300, "t-SNE iterations")
		seed       = flag.Int64("seed", 70, "t-SNE seed")
		limit      = flag.Int("limit", 800, "max points to embed (0 = all 5602; O(N²) per iteration)")
	)
	flag.Parse()

	set := isa.NewCmov(3, 1)
	enumAll := func(cut enum.CutMode, k float64) []isa.Program {
		o := enum.ConfigAllSolutions()
		o.MaxLen = 11
		o.Cut, o.CutK = cut, k
		return enum.Run(set, o).Programs
	}
	all := enumAll(enum.CutNone, 0)
	log.Printf("enumerated %d optimal kernels", len(all))
	member := func(ps []isa.Program) map[string]bool {
		m := make(map[string]bool, len(ps))
		for _, p := range ps {
			m[p.FormatInline(3)] = true
		}
		return m
	}
	in15 := member(enumAll(enum.CutFactor, 1.5))
	in1 := member(enumAll(enum.CutFactor, 1))

	sample := all
	if *limit > 0 && len(sample) > *limit {
		step := len(sample) / *limit
		var s []isa.Program
		for i := 0; i < len(sample); i += step {
			s = append(s, sample[i])
		}
		sample = s
		log.Printf("embedding a deterministic sample of %d", len(sample))
	}

	ids := make([][]int, len(sample))
	for i, p := range sample {
		row := make([]int, len(p))
		for t, in := range p {
			row[t] = set.InstrID(in)
		}
		ids[i] = row
	}
	emb := tsne.Embed(tsne.ProgramFeatures(ids, set.NumInstrs()),
		tsne.Options{Perplexity: *perplexity, Iterations: *iterations, Seed: *seed})

	series := []viz.Series{
		{Name: "preserved only by k≥2", Color: "darkorange"},
		{Name: "preserved by k=1.5", Color: "forestgreen"},
		{Name: "preserved by k=1", Color: "crimson"},
	}
	for i, p := range sample {
		key := p.FormatInline(3)
		si := 0
		switch {
		case in1[key]:
			si = 2
		case in15[key]:
			si = 1
		}
		series[si].X = append(series[si].X, emb[i][0])
		series[si].Y = append(series[si].Y, emb[i][1])
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	viz.Scatter(f, "t-SNE of n=3 optimal kernels (Figure 2)", "tsne-x", "tsne-y", series)
	fmt.Printf("wrote %s (%d points)\n", *out, len(sample))
}
