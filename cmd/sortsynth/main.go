// Command sortsynth synthesizes sorting kernels from the command line.
//
// Examples:
//
//	sortsynth -n 3                       # minimal cmov kernel for 3 values
//	sortsynth -n 4 -isa minmax           # min/max kernel for 4 values
//	sortsynth -n 3 -all -max-solutions 5 # enumerate optimal kernels
//	sortsynth -n 3 -dupsafe              # kernel that also sorts ties
//	sortsynth -n 3 -prove 10             # prove no kernel of length ≤ 10
//	sortsynth -verify "mov s1 r2; ..." -n 2
//	sortsynth -n 3 -backend smt          # synthesize through the SMT backend
//	sortsynth -n 3 -portfolio enum,stoke # race backends, keep the first verified win
//	sortsynth -emit-sorter -n 13         # emit a full branchless Sort13 as Go source
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sortsynth"
	"sortsynth/internal/backend"
	"sortsynth/internal/enum"
	"sortsynth/internal/sortgen"
)

func main() {
	log.SetFlags(0)
	var (
		n       = flag.Int("n", 3, "array length (number of values to sort)")
		m       = flag.Int("m", 1, "scratch registers")
		isaName = flag.String("isa", "cmov", "instruction set: cmov or minmax")
		maxLen  = flag.Int("len", 0, "length bound (0 = known optimal for this set)")
		all     = flag.Bool("all", false, "enumerate all optimal kernels")
		maxSols = flag.Int("max-solutions", 10, "programs to print in -all mode")
		dupsafe = flag.Bool("dupsafe", false, "require correctness on duplicate values")

		objective = flag.String("objective", "", `ranking objective: "shortest" (default), "fastest" or "balanced"; for -emit-sorter: "fastest" (default) or "shortest"`)
		profile   = flag.String("uarch-profile", "", "uarch profile for objective ranking (see internal/uarch; empty = big-ooo default)")
		minimal   = flag.Bool("minimal", false, "certify minimality (no known bound needed; may be slow)")
		asm       = flag.Bool("asm", false, "print x86-64 assembly instead of the abstract syntax")
		prove     = flag.Int("prove", 0, "prove no kernel of length ≤ N exists (exhaustive)")
		verify    = flag.String("verify", "", "verify a kernel given as text instead of synthesizing")
		k         = flag.Float64("k", 1, "cut constant (0 disables the cut)")
		workers   = flag.Int("workers", 1, "parallel level-synchronous workers")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		quiet     = flag.Bool("q", false, "print only the kernel")

		backendName = flag.String("backend", "enum",
			"synthesis backend: one of the registry names ("+strings.Join(backend.Default().Names(), ", ")+")")
		portfolioList = flag.String("portfolio", "",
			"race a comma-separated list of backends (or \"all\") and keep the first verified kernel")
		seed = flag.Int64("seed", 0, "seed for the randomized backends (stoke, mcts)")

		emitSorter = flag.Bool("emit-sorter", false,
			"emit a complete branchless sorter for length -n as Go source (kernel blocks + merge networks)")
		elemType = flag.String("elem", "int", "element type for -emit-sorter (ordered integer types or string)")
		pkgName  = flag.String("pkg", "", `package name for -emit-sorter (default "sorter")`)
		funcName = flag.String("func", "", `function name for -emit-sorter (default "Sort<n>")`)
	)
	flag.Parse()

	if *emitSorter {
		sorterObj := enum.ObjectiveFastest // a generated sorter exists to be executed
		if *objective != "" {
			var err error
			if sorterObj, err = enum.ParseObjective(*objective); err != nil {
				log.Fatal(err)
			}
		}
		plan, err := sortgen.ComposeObjective(*n, sorterObj)
		if err != nil {
			log.Fatal(err)
		}
		src, err := plan.GoFile(sortgen.EmitOptions{Package: *pkgName, FuncName: *funcName, Elem: *elemType})
		if err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			log.Printf("# n=%d blocks=%s kernel instructions=%d merge comparators=%d",
				*n, plan.BlocksDesc(), plan.KernelInstructions(), plan.Comparators())
		}
		fmt.Print(src)
		return
	}

	var set *sortsynth.Set
	switch *isaName {
	case "cmov":
		set = sortsynth.NewCmovSet(*n, *m)
	case "minmax":
		set = sortsynth.NewMinMaxSet(*n, *m)
	default:
		log.Fatalf("unknown -isa %q (want cmov or minmax)", *isaName)
	}

	if *verify != "" {
		p, err := sortsynth.Parse(*verify, *n)
		if err != nil {
			log.Fatal(err)
		}
		if ce := sortsynth.Counterexample(set, p); ce != nil {
			fmt.Printf("INCORRECT: fails on input %v\n", ce)
			os.Exit(1)
		}
		a := sortsynth.Analyze(set, p)
		fmt.Printf("correct on all permutations and duplicates\n%d instructions, score %d, critical path %d, est. throughput %.2f cycles\n",
			a.Instructions, a.Score, a.CriticalPath, a.Throughput)
		return
	}

	if *prove > 0 {
		start := time.Now()
		ok, res := sortsynth.ProveNoKernel(set, *prove)
		switch {
		case ok:
			fmt.Printf("PROVED: no %s kernel of length ≤ %d exists (%d states, %v)\n",
				set, *prove, res.Expanded, time.Since(start).Round(time.Millisecond))
		case res.Length >= 0:
			fmt.Printf("DISPROVED: found a length-%d kernel:\n%s\n", res.Length, res.Program.Format(*n))
		default:
			fmt.Printf("INCONCLUSIVE: search stopped before exhaustion (timeout/budget)\n")
			os.Exit(1)
		}
		return
	}

	emit := func(p sortsynth.Program) string {
		if *asm {
			return sortsynth.AsmX86(set, p)
		}
		return p.Format(*n) + "\n"
	}

	if *minimal {
		res := sortsynth.SynthesizeMinimal(set, *timeout)
		if res.Length < 0 {
			log.Fatal("no kernel found below the sorting-network bound")
		}
		if !*quiet {
			cert := "minimality certified"
			if !res.Proof {
				cert = "minimality NOT certified (budget); shortest found"
			}
			fmt.Printf("# length %d, %s\n", res.Length, cert)
		}
		fmt.Print(emit(res.Program))
		return
	}

	bound := *maxLen
	if bound == 0 {
		var ok bool
		if bound, ok = sortsynth.KnownOptimalLength(set); !ok {
			log.Fatalf("no known optimal length for %s; pass -len or use -minimal", set)
		}
	}

	obj, err := enum.ParseObjective(*objective)
	if err != nil {
		log.Fatal(err)
	}

	if *portfolioList != "" || *backendName != "enum" {
		if *all {
			log.Fatal("-all applies only to the default enum backend")
		}
		runBackend(set, *n, bound, *backendName, *portfolioList, *seed, *dupsafe, obj, *profile, *timeout, *asm, *quiet)
		return
	}

	opt := enum.ConfigBest()
	opt.MaxLen = bound
	opt.DuplicateSafe = *dupsafe
	opt.Timeout = *timeout
	opt.Workers = *workers
	if *k == 0 {
		opt.Cut = enum.CutNone
	} else {
		opt.Cut, opt.CutK = enum.CutFactor, *k
	}
	if *all {
		opt = enum.ConfigAllSolutions()
		opt.MaxLen = bound
		opt.DuplicateSafe = *dupsafe
		opt.MaxSolutions = *maxSols
		opt.Timeout = *timeout
		if *k > 0 {
			opt.Cut, opt.CutK = enum.CutFactor, *k
		}
	}
	opt.Objective = obj
	opt.Profile = *profile

	res := sortsynth.Synthesize(set, opt)
	if res.TimedOut || res.Cancelled {
		why := "timed out"
		if res.Cancelled {
			why = "was cancelled"
		}
		if *all && res.Length >= 0 {
			log.Fatalf("search %s after %v: enumeration incomplete (found kernels of length %d, but the count and set are partial); increase -timeout",
				why, res.Elapsed.Round(time.Millisecond), res.Length)
		}
		log.Fatalf("search %s after %v (expanded %d states, no kernel of length ≤ %d found); increase -timeout",
			why, res.Elapsed.Round(time.Millisecond), res.Expanded, bound)
	}
	if res.Length < 0 {
		log.Fatalf("no kernel of length ≤ %d found (expanded %d states in %v)", bound, res.Expanded, res.Elapsed)
	}
	if *all {
		if !*quiet {
			fmt.Printf("# %d optimal kernels of length %d (%v, %d states); showing %d\n",
				res.SolutionCount, res.Length, res.Elapsed.Round(time.Millisecond), res.Expanded, len(res.Programs))
		}
		for i, p := range res.Programs {
			if i > 0 {
				fmt.Println("---")
			}
			fmt.Print(emit(p))
		}
		return
	}
	if !*quiet {
		a := sortsynth.Analyze(set, res.Program)
		fmt.Printf("# length %d, %v, %d states expanded, score %d, est. throughput %.2f cycles\n",
			res.Length, res.Elapsed.Round(time.Millisecond), res.Expanded, a.Score, a.Throughput)
		if obj != enum.ObjectiveShortest {
			fmt.Printf("# objective %s: ranked %d optimal kernels, winner cost %.3f\n",
				obj, res.RerankCandidates, res.Cost)
		}
	}
	fmt.Print(emit(res.Program))
}

// runBackend synthesizes through the backend registry: a single named
// backend, or a portfolio race over a comma-separated list ("all" races
// every non-portfolio backend). Correctness is checked centrally by
// backend.Run; a printed kernel is always verified.
func runBackend(set *sortsynth.Set, n, bound int, name, portfolio string, seed int64, dupsafe bool, obj enum.Objective, profile string, timeout time.Duration, asm, quiet bool) {
	reg := backend.Default()
	spec := backend.Spec{MaxLen: bound, Seed: seed, DuplicateSafe: dupsafe, Objective: obj, Profile: profile}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var res *backend.Result
	var err error
	if portfolio != "" {
		var members []backend.Backend
		names := strings.Split(portfolio, ",")
		if portfolio == "all" {
			names = nil
			for _, bn := range reg.Names() {
				if bn != "portfolio" {
					names = append(names, bn)
				}
			}
		}
		for _, bn := range names {
			b, gerr := reg.Get(strings.TrimSpace(bn))
			if gerr != nil {
				log.Fatal(gerr)
			}
			members = append(members, b)
		}
		res, err = backend.Run(ctx, backend.NewPortfolio(members...), set, spec)
	} else {
		res, err = reg.Synthesize(ctx, name, set, spec)
	}
	if err != nil {
		log.Fatal(err)
	}

	if res.Status != backend.StatusFound {
		for _, e := range res.Race {
			log.Printf("  %-6s %-10s %v", e.Backend, e.Status, e.Stats.Elapsed.Round(time.Millisecond))
		}
		log.Fatalf("%s: %s after %v (no kernel of length ≤ %d)",
			res.Backend, res.Status, res.Stats.Elapsed.Round(time.Millisecond), bound)
	}
	if !quiet {
		who := res.Backend
		if res.Winner != "" {
			who = res.Winner + " (won the race)"
		}
		opt := ""
		if res.Optimal {
			opt = ", minimality certified"
		}
		fmt.Printf("# length %d via %s, %v%s\n",
			res.Length, who, res.Stats.Elapsed.Round(time.Millisecond), opt)
		for _, e := range res.Race {
			fmt.Printf("#   %-6s %-10s %v\n", e.Backend, e.Status, e.Stats.Elapsed.Round(time.Millisecond))
		}
	}
	if asm {
		fmt.Print(sortsynth.AsmX86(set, res.Program))
	} else {
		fmt.Print(res.Program.Format(n) + "\n")
	}
}
