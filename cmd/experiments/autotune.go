package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/bench"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/tuned"
)

var (
	tuneMaxN    = flag.Int("tune-max-n", 3, "autotune: largest problem size swept (n=4 additionally needs -slow)")
	tuneRounds  = flag.Int("tune-rounds", 3, "autotune: timing rounds per candidate (best-of)")
	tuneTimeout = flag.Duration("tune-timeout", 5*time.Second, "autotune: per-candidate synthesis budget")
	tuneOut     = flag.String("tune-out", "", "autotune: tuned-table output path (default <out>/tuned.json)")
)

// tuneCompareThreshold is the minimum staggered/racing capacity ratio
// (specs per second of engine time) tunecompare accepts. Staggering
// exists to stop paying two losing engines per answered spec, so the
// win should be large; 1.05 only filters measurement noise.
const tuneCompareThreshold = 1.05

// Stagger policy: the predicted best gets a solo window of a few times
// its measured wall clock — enough that normal jitter never launches a
// fallback, small enough that a stuck first pick falls back long before
// any realistic deadline. The floor keeps microsecond-scale classes
// (n=2) from scheduling fallbacks on scheduler noise; the cap keeps a
// mismeasured class from parking fallbacks for whole seconds. The
// portfolio's deadline-pressure clamp further shrinks the window on
// tight requests.
const (
	staggerFactor  = 4.0
	staggerFloorMS = 25.0
	staggerCapMS   = 2000.0
)

// tuneClass is one cell of the sweep grid: ISA × n × duplicate-safety
// × ranking objective.
type tuneClass struct {
	kind isa.Kind
	n    int
	dup  bool
	obj  enum.Objective
}

func (tc tuneClass) class() tuned.Class {
	return tuned.Class{ISA: tc.kind.String(), N: tc.n, DuplicateSafe: tc.dup, Objective: tc.obj.String()}
}

func (tc tuneClass) set() *isa.Set { return isa.New(tc.kind, tc.n, 1) }

// tuneOptimum mirrors sortsynth.KnownOptimalLength for m=1 (the root
// package cannot be imported from cmd/ without dragging in its serving
// deps): the certified optimal kernel lengths the sweep uses as
// budgets, so fixed-length backends synthesize at exactly the optimum.
func tuneOptimum(kind isa.Kind, n int) (int, bool) {
	var table map[int]int
	if kind == isa.KindCmov {
		table = map[int]int{2: 4, 3: 11, 4: 20, 5: 33}
	} else {
		table = map[int]int{2: 3, 3: 8, 4: 15, 5: 26}
	}
	l, ok := table[n]
	return l, ok
}

// sweepClasses enumerates the grid: both ISAs, n = 2..maxN, both
// duplicate-safety settings for shortest, plus the ranking objectives
// (dup=false only — objective search is an enum-only spec class and the
// dup axis would double its cost without changing the single-entry
// ranking).
func sweepClasses(maxN int, objectives bool) []tuneClass {
	var classes []tuneClass
	for _, kind := range []isa.Kind{isa.KindCmov, isa.KindMinMax} {
		for n := 2; n <= maxN; n++ {
			for _, dup := range []bool{false, true} {
				classes = append(classes, tuneClass{kind: kind, n: n, dup: dup})
			}
			if objectives {
				for _, obj := range []enum.Objective{enum.ObjectiveFastest, enum.ObjectiveBalanced} {
					classes = append(classes, tuneClass{kind: kind, n: n, obj: obj})
				}
			}
		}
	}
	return classes
}

// tuneStagger derives a plan's stagger from its best measured wall.
func tuneStagger(bestWallMS float64) float64 {
	s := bestWallMS * staggerFactor
	if s < staggerFloorMS {
		s = staggerFloorMS
	}
	if s > staggerCapMS {
		s = staggerCapMS
	}
	return s
}

// buildTunedTable measures every portfolio member on every class and
// assembles the dispatch table: OK candidates ranked by wall clock,
// failures appended (they still serve as last-resort fallbacks), the
// stagger derived from the winner's wall. With knobs set it also sweeps
// enum worker counts and search configs into Plan.Sweep — audit rows
// that justify the serving defaults, never dispatch targets.
func buildTunedTable(c *ctx, classes []tuneClass, rounds int, timeout time.Duration, knobs bool) (*tuned.Table, error) {
	reg := backend.NewDefault()
	pb, err := reg.Get("portfolio")
	if err != nil {
		return nil, err
	}
	members := pb.(*backend.Portfolio).Backends()

	entries := map[string]tuned.Plan{}
	var t tableWriter
	t.row("class", "best", "wall_ms", "stagger_ms", "ranking")
	for _, tc := range classes {
		budget, ok := tuneOptimum(tc.kind, tc.n)
		if !ok {
			continue
		}
		set := tc.set()
		spec := backend.Spec{MaxLen: budget, Seed: 1, DuplicateSafe: tc.dup, Objective: tc.obj}

		var ranked []tuned.Candidate
		for _, name := range members {
			// Ranking objectives are an enum-only capability: the other
			// members refuse them with a typed error before doing any
			// work, so measuring them would only record the refusal.
			if tc.obj != enum.ObjectiveShortest && name != "enum" {
				continue
			}
			b, err := reg.Get(name)
			if err != nil {
				return nil, err
			}
			ct := bench.TimeCandidate(context.Background(), b, set, spec, timeout, rounds)
			ranked = append(ranked, tuned.Candidate{
				Backend: ct.Backend, WallMS: ct.WallMS, Rounds: ct.Rounds, OK: ct.OK, Note: ct.Note,
			})
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].OK != ranked[j].OK {
				return ranked[i].OK
			}
			return ranked[i].OK && ranked[i].WallMS < ranked[j].WallMS
		})
		if !ranked[0].OK {
			// No member answered this class within the budget: an entry
			// would pin an arbitrary order, so leave the class untuned
			// (a Pick miss races everything, which is the right call).
			c.printf("  %s: no candidate succeeded, leaving class untuned\n", tc.class().Key())
			continue
		}

		plan := tuned.Plan{Ranked: ranked, StaggerMS: tuneStagger(ranked[0].WallMS)}
		if knobs && tc.obj == enum.ObjectiveShortest && !tc.dup {
			plan.Sweep = sweepEnumKnobs(set, budget, timeout, rounds)
		}
		entries[tc.class().Key()] = plan

		var names []string
		for _, cand := range ranked {
			tag := cand.Backend
			if !cand.OK {
				tag += "(lost)"
			}
			names = append(names, tag)
		}
		t.row(tc.class().Key(), ranked[0].Backend,
			fmt.Sprintf("%.3f", ranked[0].WallMS),
			fmt.Sprintf("%.1f", plan.StaggerMS),
			fmt.Sprintf("%v", names))
	}
	t.flush(c.w)
	if len(entries) == 0 {
		return nil, fmt.Errorf("autotune: every class came up empty")
	}
	return &tuned.Table{Entries: entries}, nil
}

// sweepEnumKnobs measures the enum engine's own knobs — worker count
// and search configuration — on one class. The rows land in Plan.Sweep
// for the record; the ranked plan always dispatches the registry's
// default enum (ConfigBest, engine-chosen workers).
func sweepEnumKnobs(set *isa.Set, budget int, timeout time.Duration, rounds int) []tuned.Candidate {
	knobs := []struct {
		label   string
		opt     enum.Options
		workers int
	}{
		{"enum[best,w=1]", enum.ConfigBest(), 1},
		{fmt.Sprintf("enum[best,w=%d]", runtime.GOMAXPROCS(0)), enum.ConfigBest(), runtime.GOMAXPROCS(0)},
		{"enum[base,w=1]", enum.ConfigBase(), 1},
		{"enum[dijkstra,w=1]", enum.ConfigDijkstra(), 1},
	}
	var sweep []tuned.Candidate
	for _, k := range knobs {
		opt := k.opt
		opt.MaxLen = budget
		opt.Workers = k.workers
		opt.Timeout = timeout
		m, err := bench.MeasureSearch(set, opt, rounds)
		if err != nil {
			sweep = append(sweep, tuned.Candidate{Backend: k.label, Rounds: rounds, Note: err.Error()})
			continue
		}
		sweep = append(sweep, tuned.Candidate{Backend: k.label, WallMS: m.WallMS, Rounds: rounds, OK: true})
	}
	return sweep
}

func init() {
	register("autotune", "sweep backend×workers×config per spec class and write the tuned dispatch table", false, func(c *ctx) error {
		maxN := *tuneMaxN
		if maxN > 3 && !c.slow {
			maxN = 3
		}
		c.section(fmt.Sprintf("Autotune sweep (n ≤ %d, best-of-%d, %s per candidate)", maxN, *tuneRounds, *tuneTimeout))

		tab, err := buildTunedTable(c, sweepClasses(maxN, true), *tuneRounds, *tuneTimeout, true)
		if err != nil {
			return err
		}

		out := *tuneOut
		if out == "" {
			out = filepath.Join(c.out, "tuned.json")
		}
		if err := tuned.Write(out, tab); err != nil {
			return err
		}
		// Round-trip through the strict loader: a table this run cannot
		// reload is a table no server should ever be handed.
		loaded, err := tuned.Load(out)
		if err != nil {
			return fmt.Errorf("autotune wrote an unloadable table: %w", err)
		}
		c.printf("\nwrote %s: version %d, %d classes, checksum %s...\n",
			out, loaded.Version, len(loaded.Entries), loaded.Checksum[:12])
		return nil
	})

	register("tunecompare", "capacity regression gate: staggered dispatch vs racing on a tuned mini-table", false, func(c *ctx) error {
		c.section("Tuned-dispatch capacity gate (staggered vs race-everything)")
		ctx := context.Background()

		// Mini-sweep (shortest only, single round) into a throwaway dir,
		// then back through the strict loader — the same path a serving
		// process takes.
		dir, err := os.MkdirTemp("", "tunecompare")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		var mini []tuneClass
		for _, tc := range sweepClasses(3, false) {
			if !tc.dup {
				mini = append(mini, tc)
			}
		}
		tab, err := buildTunedTable(c, mini, 1, 3*time.Second, false)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "tuned.json")
		if err := tuned.Write(path, tab); err != nil {
			return err
		}
		if tab, err = tuned.Load(path); err != nil {
			return err
		}

		reg := backend.NewDefault()
		pb, err := reg.Get("portfolio")
		if err != nil {
			return err
		}
		pf := pb.(*backend.Portfolio)
		staggered := pf.WithScheduler(tuned.NewScheduler(tab, pf.Backends()))

		// A mixed-class workload, every class repeated with distinct
		// seeds, answered by direct enum for the reference kernels.
		enumB, err := reg.Get("enum")
		if err != nil {
			return err
		}
		var items []bench.CapacityItem
		var refs []bench.CapacityAnswer
		for _, tc := range mini {
			set := tc.set()
			budget, _ := tuneOptimum(tc.kind, tc.n)
			for seed := int64(1); seed <= 3; seed++ {
				spec := backend.Spec{MaxLen: budget, Seed: seed}
				res, err := backend.Run(ctx, enumB, set, spec)
				if err != nil {
					return fmt.Errorf("enum reference for %v: %w", set, err)
				}
				items = append(items, bench.CapacityItem{Set: set, Spec: spec})
				refs = append(refs, bench.CapacityAnswer{
					Winner: "enum", Length: res.Length, Kernel: res.Program.FormatInline(set.N),
				})
			}
		}

		racing, err := bench.MeasureCapacity(ctx, pf, items, 10*time.Second)
		if err != nil {
			return fmt.Errorf("racing capacity run: %w", err)
		}
		stag, err := bench.MeasureCapacity(ctx, staggered, items, 10*time.Second)
		if err != nil {
			return fmt.Errorf("staggered capacity run: %w", err)
		}

		var t tableWriter
		t.row("mode", "specs", "wall_ms", "engine_ms", "specs/sec/core", "launches", "parked")
		for _, r := range []struct {
			mode string
			cm   bench.CapacityMeasurement
		}{{"racing", racing}, {"staggered", stag}} {
			t.row(r.mode, fmt.Sprintf("%d", r.cm.Specs),
				fmt.Sprintf("%.1f", r.cm.WallMS), fmt.Sprintf("%.1f", r.cm.EngineMS),
				fmt.Sprintf("%.1f", r.cm.SpecsPerSecCore),
				fmt.Sprintf("%d", r.cm.Launches), fmt.Sprintf("%d", r.cm.Skipped))
		}
		t.flush(c.w)

		// Answer gate: tuned dispatch must reorder engines, never
		// answers. When the predicted best (enum) won the staggered race
		// its pinned seed makes the kernel deterministic — byte-identical
		// to the reference. A fallback win (scheduling, not correctness)
		// and every racing answer must still land on the certified
		// optimal length; central verification already proved them
		// correct.
		divergences := 0
		for i := range items {
			if a := stag.Answers[i]; a.Winner == "enum" && a.Kernel != refs[i].Kernel {
				divergences++
				c.printf("DIVERGE staggered %v seed=%d: enum won with a different kernel\n  ref: %s\n  got: %s\n",
					items[i].Set, items[i].Spec.Seed, refs[i].Kernel, a.Kernel)
			} else if a.Length != refs[i].Length {
				divergences++
				c.printf("DIVERGE staggered %v seed=%d: length %d (winner %s), reference %d\n",
					items[i].Set, items[i].Spec.Seed, a.Length, a.Winner, refs[i].Length)
			}
			if a := racing.Answers[i]; a.Length != refs[i].Length {
				divergences++
				c.printf("DIVERGE racing %v seed=%d: length %d (winner %s), reference %d\n",
					items[i].Set, items[i].Spec.Seed, a.Length, a.Winner, refs[i].Length)
			}
		}

		ratio := 0.0
		if racing.SpecsPerSecCore > 0 {
			ratio = stag.SpecsPerSecCore / racing.SpecsPerSecCore
		}
		c.printf("\ncapacity ratio (staggered / racing): %.2fx (gate: ≥ %.2fx), divergences: %d\n",
			ratio, tuneCompareThreshold, divergences)

		switch {
		case divergences > 0:
			return fmt.Errorf("tunecompare: %d answer divergences", divergences)
		case stag.Skipped == 0:
			return fmt.Errorf("tunecompare: staggered dispatch parked no launches — the tuned table is not steering the portfolio")
		case ratio < tuneCompareThreshold:
			return fmt.Errorf("tunecompare: capacity ratio %.2fx below the %.2fx gate", ratio, tuneCompareThreshold)
		}
		return nil
	})
}
