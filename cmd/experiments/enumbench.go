package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/bench"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/stoke"
)

// seqMergeBaselineN4MS is the n=4 best-config wall time of the previous
// parallel engine (per-level sequential merge, per-candidate state
// clones) at 8 workers on this repository's reference host, measured
// before the sharded merge landed. BENCH_enum.json records the current
// engine's speedup against it.
const seqMergeBaselineN4MS = 1940.0

// enumBenchReport is the BENCH_enum.json payload.
type enumBenchReport struct {
	GOMAXPROCS   int                       `json:"gomaxprocs"`
	Measurements []bench.SearchMeasurement `json:"measurements"`

	// IdenticalAcrossWorkers is true when every parallel worker count
	// produced the same kernel text for the same (isa, n) — the
	// sharded-merge determinism contract, checked on the measured runs
	// themselves. The workers=1 runs use the sequential engine, whose
	// traversal order may surface a different kernel of the same
	// optimal length, so they are excluded from the comparison.
	IdenticalAcrossWorkers bool `json:"identical_across_workers"`

	// Speedup of the current 8-worker n=4 run over the sequential-merge
	// parallel engine this PR replaced.
	SeqMergeBaselineN4MS float64 `json:"seq_merge_baseline_n4_ms"`
	SpeedupVsSeqMergeN4  float64 `json:"speedup_vs_seq_merge_n4"`

	// ObjectiveRows are the shortest-vs-fastest kernel latency rows
	// written by -table=objective. enumbench carries them over unchanged
	// when it regenerates the throughput rows (and vice versa), so the
	// two tables can be re-run independently without clobbering each
	// other's half of the file.
	ObjectiveRows []objectiveRow `json:"objective_rows,omitempty"`
}

// loadBenchReport reads the committed BENCH_enum.json if present; a
// missing file yields a zero report (the writer fills its half).
func loadBenchReport() (enumBenchReport, error) {
	var rep enumBenchReport
	data, err := os.ReadFile("BENCH_enum.json")
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

// writeBenchReport writes BENCH_enum.json in the working directory (the
// repository root under `make bench`) so the headline numbers are
// versioned next to the code they measure.
func writeBenchReport(rep enumBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_enum.json", append(data, '\n'), 0o644)
}

func init() {
	register("enumbench", "synthesis throughput at 1 / GOMAXPROCS / 8 workers (writes BENCH_enum.json)", false, func(c *ctx) error {
		c.section("Synthesis throughput, best configuration (III)")

		// Throughput rows must see the whole machine: undo any GOMAXPROCS
		// env pinning (a GOMAXPROCS=1 environment used to freeze
		// gomaxprocs:1 into BENCH_enum.json and serialize the parallel
		// rows). The previous value is restored when the table finishes.
		prev := runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)

		// workers=2 rides along so the byte-identity check always sees at
		// least two parallel counts, even where GOMAXPROCS(0) == 1.
		workerSet := []int{1, 2, runtime.GOMAXPROCS(0), 8}
		cases := []struct {
			n, maxLen int
			rounds    int
		}{
			{3, 11, 5},
			{4, 20, 2},
		}

		prevRep, err := loadBenchReport()
		if err != nil {
			return fmt.Errorf("read committed BENCH_enum.json: %w", err)
		}
		rep := enumBenchReport{
			GOMAXPROCS:             runtime.GOMAXPROCS(0),
			IdenticalAcrossWorkers: true,
			SeqMergeBaselineN4MS:   seqMergeBaselineN4MS,
			ObjectiveRows:          prevRep.ObjectiveRows,
		}
		var t tableWriter
		t.row("n", "workers", "wall", "swar off", "swar x", "expanded", "expanded/s", "length")
		for _, tc := range cases {
			set := isa.NewCmov(tc.n, 1)
			parKernel := ""
			seen := map[int]bool{}
			for _, w := range workerSet {
				if seen[w] {
					continue // GOMAXPROCS may coincide with 1 or 8
				}
				seen[w] = true
				opt := enum.ConfigBest()
				opt.MaxLen = tc.maxLen
				opt.Workers = w
				m, err := bench.MeasureSearch(set, opt, tc.rounds)
				if err != nil {
					return fmt.Errorf("n=%d workers=%d: %w", tc.n, w, err)
				}
				// SWAR A/B: the same row with the bit-sliced layer off.
				// The kernels must match byte for byte (swar-check proves
				// the full equivalence; this is the cheap tripwire on the
				// measured runs themselves).
				optOff := opt
				optOff.DisableSWAR = true
				mOff, err := bench.MeasureSearch(set, optOff, tc.rounds)
				if err != nil {
					return fmt.Errorf("n=%d workers=%d swar off: %w", tc.n, w, err)
				}
				if mOff.Kernel != m.Kernel {
					return fmt.Errorf("n=%d workers=%d: SWAR and scalar runs produced different kernels:\n  swar   %s\n  scalar %s",
						tc.n, w, m.Kernel, mOff.Kernel)
				}
				m.SWAROffWallMS = mOff.WallMS
				if m.WallMS > 0 {
					m.SWARSpeedup = mOff.WallMS / m.WallMS
				}
				if w > 1 {
					if parKernel == "" {
						parKernel = m.Kernel
					} else if m.Kernel != parKernel {
						rep.IdenticalAcrossWorkers = false
					}
				}
				rep.Measurements = append(rep.Measurements, m)
				t.row(fmt.Sprint(tc.n), fmt.Sprint(w),
					fmt.Sprintf("%.1fms", m.WallMS),
					fmt.Sprintf("%.1fms", m.SWAROffWallMS),
					fmt.Sprintf("%.2f", m.SWARSpeedup),
					fmt.Sprint(m.Expanded),
					fmt.Sprintf("%.0f", m.ExpandedPerSec),
					fmt.Sprint(m.Length))
				if tc.n == 4 && w == 8 {
					rep.SpeedupVsSeqMergeN4 = seqMergeBaselineN4MS / m.WallMS
				}
			}
		}
		// Portfolio row: enum races stoke at n=3. The enum engine is
		// deterministic and wins well before the chain gets lucky, so the
		// row (winner, kernel, length) regenerates identically run to run;
		// only the wall time and the loser's proposal count wiggle.
		pf := backend.NewPortfolio(
			backend.NewEnum(enum.ConfigBest()),
			backend.NewStoke(stoke.Options{}),
		)
		pm, err := bench.MeasureBackend(pf, isa.NewCmov(3, 1),
			backend.Spec{MaxLen: 11, Seed: 1}, time.Minute, 3)
		if err != nil {
			return fmt.Errorf("portfolio n=3: %w", err)
		}
		rep.Measurements = append(rep.Measurements, pm)
		t.row("3", fmt.Sprintf("race(%d)", len(pf.Backends())),
			fmt.Sprintf("%.1fms", pm.WallMS), "-", "-",
			fmt.Sprint(pm.Expanded),
			fmt.Sprintf("%.0f", pm.ExpandedPerSec),
			fmt.Sprint(pm.Length))

		t.flush(c.w)
		c.printf("\nparallel kernels byte-identical across worker counts: %v\n", rep.IdenticalAcrossWorkers)
		c.printf("portfolio (enum vs stoke) winner at n=3: %s\n", pm.Winner)
		if rep.SpeedupVsSeqMergeN4 > 0 {
			c.printf("n=4 ×8 vs sequential-merge parallel baseline (%.0f ms): %.2fx\n",
				seqMergeBaselineN4MS, rep.SpeedupVsSeqMergeN4)
		}

		if err := writeBenchReport(rep); err != nil {
			return err
		}
		c.printf("wrote BENCH_enum.json\n")
		return nil
	})
}
