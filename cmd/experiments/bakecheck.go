package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/conformance"
	"sortsynth/internal/enum"
	"sortsynth/internal/kcache"
	"sortsynth/internal/service"
	"sortsynth/internal/universe"
)

var (
	bakeSeed  = flag.Int64("bake-seed", 1, "bakecheck: conformance spec-generator seed")
	bakeSpecs = flag.Int("bake-specs", 120, "bakecheck: conformance specs judged against the baked store")
)

func init() {
	register("bakecheck", "bake a miniature universe, byte-compare every record against live synthesis, judge it with the conformance harness, and serve from it (nonzero exit on any divergence)", false, func(c *ctx) error {
		dir, err := os.MkdirTemp("", "bakecheck")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "mini.ssuniv")

		// Phase 1: bake the miniature universe — both ISAs, n=2..3, the
		// enum backend with budgets L*±2 plus duplicate-safe variants.
		// (The other deterministic backends are exercised by the main
		// conformance gate; baking them here would pull SMT/CP solve time
		// into every `make check`.)
		opt := universe.Options{
			ISAs: []string{"cmov", "minmax"}, MinN: 2, MaxN: 3, Slack: 2,
			Backends: []string{"enum"}, DuplicateSafe: true,
			Workers: runtime.GOMAXPROCS(0), SpecTimeout: time.Minute,
		}
		c.section("Bake: miniature universe (enum, n=2..3, budgets L*±2, dupsafe)")
		start := time.Now()
		contentID, stats, err := universe.Bake(context.Background(), path, nil, opt)
		if err != nil {
			return fmt.Errorf("bake: %w", err)
		}
		c.printf("specs %d  kernels %d  refutations %d  skipped %d  failed %d  in %v\n",
			stats.Specs, stats.Baked, stats.Negative, stats.Skipped, stats.Failed, time.Since(start).Round(time.Millisecond))
		c.printf("content %s\n", contentID)
		if stats.Failed > 0 {
			return fmt.Errorf("bake: %d specs failed", stats.Failed)
		}

		store, err := universe.Open(path)
		if err != nil {
			return fmt.Errorf("open: %w", err)
		}
		defer store.Close()
		if err := store.VerifyFull(); err != nil {
			return fmt.Errorf("full artifact verification: %w", err)
		}

		// Phase 2: differential replay — every enumerated spec is
		// re-synthesized live through the same registry choke point and
		// the baked record must match it byte for byte (identity fields;
		// timing is run-dependent by nature).
		c.section("Differential: every baked record vs a fresh live synthesis")
		reg := backend.Default()
		mismatches := 0
		for _, sp := range universe.EnumerateSpecs(opt) {
			baked, ok := store.Lookup(sp.Key())
			live, err := bakecheckLive(reg, sp)
			if err != nil {
				return fmt.Errorf("live synthesis for %s: %w", sp, err)
			}
			switch {
			case !ok && live == nil:
				// Skipped at bake time and inconclusive live: consistent.
			case !ok:
				mismatches++
				c.printf("MISSING %s: live synthesis concluded but the record was not baked\n", sp)
			case live == nil:
				mismatches++
				c.printf("EXTRA   %s: baked record for a spec live synthesis cannot conclude\n", sp)
			default:
				b, _ := json.Marshal(bakecheckIdentity(baked))
				l, _ := json.Marshal(bakecheckIdentity(live))
				if !bytes.Equal(b, l) {
					mismatches++
					c.printf("DIFF    %s:\n  baked %s\n  live  %s\n", sp, b, l)
				}
			}
		}
		if mismatches > 0 {
			return fmt.Errorf("differential replay: %d baked records diverge from live synthesis", mismatches)
		}
		c.printf("all %d records byte-identical to live synthesis\n", store.Len())

		// Phase 3: the conformance judge, pointed at a registry containing
		// only the baked store. Found records re-verify centrally inside
		// backend.Run; refutations are held to the soundness rule against
		// independently computed ground truth. Unbaked specs read as
		// exhausted — no claim. Metamorphic invariants exercise live
		// engines, not a read-only store, so they are skipped here.
		c.section("Conformance: baked store as a backend vs ground truth")
		ureg := backend.NewRegistry()
		ureg.Register(universe.AsBackend(store))
		rep, err := conformance.Run(context.Background(), conformance.Options{
			Seed:            *bakeSeed,
			Specs:           *bakeSpecs,
			MaxN:            3,
			Registry:        ureg,
			SkipMetamorphic: true,
			Log: func(format string, args ...any) {
				c.printf(format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("conformance harness: %w", err)
		}
		rep.WriteText(c.w)
		if !rep.Ok() {
			return fmt.Errorf("conformance: %d divergences against the baked store", len(rep.Divergences))
		}

		// Phase 4: serve smoke — mount the artifact under the daemon and
		// check a baked spec is answered from L0 with zero searches.
		c.section("Serve: baked spec answered with zero searches")
		srv, err := service.New(service.Config{UniversePath: path})
		if err != nil {
			return fmt.Errorf("service: %w", err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()

		var sr struct {
			Source string `json:"source"`
			Length int    `json:"length"`
		}
		if err := bakecheckPost(ts.URL+"/v1/synthesize", `{"n": 3}`, &sr); err != nil {
			return err
		}
		if sr.Source != "universe" || sr.Length != 11 {
			return fmt.Errorf("serve: source=%q length=%d, want a length-11 universe hit", sr.Source, sr.Length)
		}
		var m struct {
			Searches struct {
				Started float64 `json:"started"`
			} `json:"searches"`
		}
		if err := bakecheckGet(ts.URL+"/metrics", &m); err != nil {
			return err
		}
		if m.Searches.Started != 0 {
			return fmt.Errorf("serve: %v searches started, want 0", m.Searches.Started)
		}
		c.printf("universe hit for n=3 (length %d), searches started: 0\n", sr.Length)
		return nil
	})
}

// bakecheckLive replays one spec through the registry exactly the way
// the bake does, returning nil for the no-claim outcomes the bake
// skips. It must stay in lockstep with universe.Bake's entry mapping —
// that equivalence is the point of the gate.
func bakecheckLive(reg *backend.Registry, sp universe.Spec) (*kcache.Entry, error) {
	set := sp.Set()
	res, err := reg.Synthesize(context.Background(), sp.Backend, set, backend.Spec{
		MaxLen:        sp.Budget,
		DuplicateSafe: sp.DuplicateSafe,
		Objective:     sp.Objective,
	})
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case backend.StatusFound:
		sc := res.Solutions
		if sc == 0 {
			sc = 1
		}
		var objName string
		if sp.Objective != enum.ObjectiveShortest {
			objName = sp.Objective.String()
		}
		return &kcache.Entry{
			Backend:       sp.Backend,
			Objective:     objName,
			Cost:          res.Cost,
			Program:       res.Program.Format(set.N),
			Length:        res.Length,
			SolutionCount: sc,
		}, nil
	case backend.StatusNoProgram:
		return &kcache.Entry{Backend: sp.Backend, NoKernel: true, Length: sp.Budget}, nil
	case backend.StatusExhausted:
		if sp.Backend == "enum" {
			return &kcache.Entry{Backend: sp.Backend, NoKernel: true, Length: sp.Budget}, nil
		}
		return nil, nil
	default:
		return nil, nil
	}
}

// bakecheckIdentity projects an entry onto the fields that must be
// byte-identical between a bake and a live run; timing and search
// effort counters are run-dependent and excluded.
func bakecheckIdentity(e *kcache.Entry) map[string]any {
	return map[string]any{
		"backend":   e.Backend,
		"objective": e.Objective,
		"cost":      e.Cost,
		"program":   e.Program,
		"length":    e.Length,
		"no_kernel": e.NoKernel,
		"solutions": e.SolutionCount,
	}
}

func bakecheckPost(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func bakecheckGet(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
