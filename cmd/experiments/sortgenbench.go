package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"sort"
	"time"

	"sortsynth/internal/bench"
	"sortsynth/internal/sortgen"
)

// sortgenRow is one BENCH_sortgen.json measurement: a named sorter over
// one input distribution at one element count. Every row carries its
// own gomaxprocs (the PR-4 convention for search rows) so a baseline
// taken on a pinned host is never silently compared against a full-width
// re-measurement.
type sortgenRow struct {
	Name         string  `json:"name"`
	N            int     `json:"n"` // element count of the sorted list
	Distribution string  `json:"distribution"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Rounds       int     `json:"rounds"`
	WallMS       float64 `json:"wall_ms"`
}

// sortgenReport is the BENCH_sortgen.json payload.
type sortgenReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Rows       []sortgenRow `json:"rows"`

	// The ISSUE-6 headline: the kernel-base-case hybrid must beat
	// reflection-based sort.Slice on 500k random ints.
	HybridBeatsSortSlice500kRandom   bool    `json:"hybrid_beats_sort_slice_500k_random"`
	HybridVsSortSlice500kRandomRatio float64 `json:"hybrid_vs_sort_slice_500k_random_ratio"`
}

// sortgenRegressionThreshold is the fresh/committed wall-clock ratio
// above which sortgencompare fails a row. Whole-list sort times are
// noisier than search wall times (allocation, cache residency), so the
// gate is looser than benchcompare's 1.20.
const sortgenRegressionThreshold = 1.35

// sortgenGateFloorMS is the committed wall time below which a row is
// reported but not gated: a 0.03ms measurement moves 50% on timer and
// cache alignment noise alone, and a regression that matters at those
// sizes also shows up in the ≥1ms rows.
const sortgenGateFloorMS = 1.0

// sortgenBenchSeed fixes the benchmark inputs: committed baseline and
// fresh re-measurements sort identical lists.
const sortgenBenchSeed = 20260808

// measureBest times fn on list best-of-rounds: the minimum single-pass
// wall time, which is the standard way to strip scheduler noise from a
// deterministic computation.
func measureBest(fn func([]int), list []int, rounds int) time.Duration {
	best := time.Duration(-1)
	for r := 0; r < rounds; r++ {
		d := bench.MeasureSort(fn, list, 1)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

// wholeListContenders are the dynamic-n sorters compared head-to-head.
func wholeListContenders() []struct {
	name string
	fn   func([]int)
} {
	return []struct {
		name string
		fn   func([]int)
	}{
		{"sortgen_hybrid", sortgen.HybridSort},
		{"sortgen_hybrid_merge", sortgen.HybridMergesort},
		{"slices.Sort", func(a []int) { slices.Sort(a) }},
		{"sort.Slice", func(a []int) { sort.Slice(a, func(i, j int) bool { return a[i] < a[j] }) }},
		{"sort.Ints", sort.Ints},
	}
}

// distGen returns the named distribution's generator.
func distGen(name string) func(*rand.Rand, int) []int {
	for _, d := range sortgen.Distributions() {
		if d.Name == name {
			return d.Gen
		}
	}
	panic("unknown distribution " + name)
}

// sortgenCases enumerates the (distribution, n, rounds) grid measured by
// both the table and the regression gate: random across four decades,
// plus every other shape at the headline 500k size.
func sortgenCases() []struct {
	dist   string
	n      int
	rounds int
} {
	return []struct {
		dist   string
		n      int
		rounds int
	}{
		{"random", 1_000, 50},
		{"random", 10_000, 20},
		{"random", 100_000, 5},
		{"random", 500_000, 3},
		{"sorted", 500_000, 3},
		{"reversed", 500_000, 3},
		{"dups", 500_000, 3},
		{"sawtooth", 500_000, 3},
	}
}

// runSortgenGrid measures every whole-list contender over the case grid
// and the fixed-n plan interpreters, returning the rows in a stable
// order. keep filters which rows are measured (nil = all).
func runSortgenGrid(c *ctx, keep func(name, dist string, n int) bool) ([]sortgenRow, error) {
	rng := rand.New(rand.NewSource(sortgenBenchSeed))
	var rows []sortgenRow
	var t tableWriter
	t.row("sorter", "distribution", "n", "best-of", "wall")

	for _, tc := range sortgenCases() {
		list := distGen(tc.dist)(rng, tc.n)
		for _, cont := range wholeListContenders() {
			if keep != nil && !keep(cont.name, tc.dist, tc.n) {
				continue
			}
			d := measureBest(cont.fn, list, tc.rounds)
			rows = append(rows, sortgenRow{
				Name: cont.name, N: tc.n, Distribution: tc.dist,
				GOMAXPROCS: runtime.GOMAXPROCS(0), Rounds: tc.rounds,
				WallMS: float64(d.Nanoseconds()) / 1e6,
			})
			t.row(cont.name, tc.dist, fmt.Sprint(tc.n), fmt.Sprint(tc.rounds), ms(d))
		}
	}

	// Fixed-n rows: the composed plan interpreter against slices.Sort on
	// batches of small arrays — the regime the generated sorters exist
	// for. 4096 arrays per pass, best-of-5 passes.
	for _, n := range []int{6, 13, 32} {
		p, err := sortgen.Compose(n)
		if err != nil {
			return nil, err
		}
		sorter := p.Sorter()
		inputs := bench.RandomArrays(n, 4096, 10000, sortgenBenchSeed+int64(n))
		for _, cont := range []struct {
			name string
			fn   func([]int)
		}{
			{fmt.Sprintf("sortgen_plan%d", n), sorter},
			{fmt.Sprintf("slices.Sort@%d", n), func(a []int) { slices.Sort(a) }},
		} {
			if keep != nil && !keep(cont.name, "random", n) {
				continue
			}
			best := time.Duration(-1)
			for r := 0; r < 5; r++ {
				d := bench.Measure(cont.fn, inputs, 1)
				if best < 0 || d < best {
					best = d
				}
			}
			rows = append(rows, sortgenRow{
				Name: cont.name, N: n, Distribution: "random",
				GOMAXPROCS: runtime.GOMAXPROCS(0), Rounds: 5,
				WallMS: float64(best.Nanoseconds()) / 1e6,
			})
			t.row(cont.name, "random ×4096", fmt.Sprint(n), "5", ms(best))
		}
	}
	t.flush(c.w)
	return rows, nil
}

// headlineRatio extracts hybrid/sort.Slice at 500k random from a row set.
func headlineRatio(rows []sortgenRow) (float64, bool) {
	var hybrid, sortSlice float64
	for _, r := range rows {
		if r.Distribution != "random" || r.N != 500_000 {
			continue
		}
		switch r.Name {
		case "sortgen_hybrid":
			hybrid = r.WallMS
		case "sort.Slice":
			sortSlice = r.WallMS
		}
	}
	if hybrid == 0 || sortSlice == 0 {
		return 0, false
	}
	return hybrid / sortSlice, true
}

func init() {
	register("sortgen", "generated sorters vs stdlib across five distributions (writes BENCH_sortgen.json)", false, func(c *ctx) error {
		c.section("Generated sorting library vs the standard library")

		rows, err := runSortgenGrid(c, nil)
		if err != nil {
			return err
		}
		rep := sortgenReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Rows: rows}
		if ratio, ok := headlineRatio(rows); ok {
			rep.HybridVsSortSlice500kRandomRatio = ratio
			rep.HybridBeatsSortSlice500kRandom = ratio < 1
		}
		c.printf("\nhybrid (synthesized ≤5 base cases) vs sort.Slice at 500k random: %.2fx wall clock (beats: %v)\n",
			rep.HybridVsSortSlice500kRandomRatio, rep.HybridBeatsSortSlice500kRandom)
		if !rep.HybridBeatsSortSlice500kRandom {
			return fmt.Errorf("hybrid sorter did not beat sort.Slice on 500k random ints (ratio %.2f)",
				rep.HybridVsSortSlice500kRandomRatio)
		}

		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_sortgen.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		c.printf("wrote BENCH_sortgen.json\n")
		return nil
	})

	register("sortgencompare", "re-measure the sortgen rows of BENCH_sortgen.json and fail on a >35% regression", false, func(c *ctx) error {
		c.section("Generated-sorter regression gate vs committed BENCH_sortgen.json")

		data, err := os.ReadFile("BENCH_sortgen.json")
		if err != nil {
			return fmt.Errorf("sortgencompare needs the committed baseline: %w", err)
		}
		var rep sortgenReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("parse BENCH_sortgen.json: %w", err)
		}

		// Gate only this package's own sorters: stdlib rows are context,
		// and a stdlib speedup after a toolchain bump must not fail CI.
		isOurs := func(name string) bool {
			return len(name) > 7 && name[:7] == "sortgen"
		}
		committed := map[string]sortgenRow{}
		for _, r := range rep.Rows {
			if isOurs(r.Name) {
				committed[fmt.Sprintf("%s|%s|%d", r.Name, r.Distribution, r.N)] = r
			}
		}
		if len(committed) == 0 {
			return fmt.Errorf("BENCH_sortgen.json has no sortgen rows; regenerate with -table=sortgen")
		}

		fresh, err := runSortgenGrid(c, func(name, dist string, n int) bool {
			// Re-measure our rows, plus sort.Slice at the headline point
			// for the relative assertion below.
			return isOurs(name) || (name == "sort.Slice" && dist == "random" && n == 500_000)
		})
		if err != nil {
			return err
		}

		var t tableWriter
		t.row("row", "committed", "fresh", "ratio", "verdict")
		worst, failed, compared := 0.0, 0, 0
		for _, f := range fresh {
			base, ok := committed[fmt.Sprintf("%s|%s|%d", f.Name, f.Distribution, f.N)]
			if !ok {
				continue
			}
			ratio := f.WallMS / base.WallMS
			verdict := "ok"
			if base.WallMS < sortgenGateFloorMS {
				verdict = "ungated (noise floor)"
			} else {
				compared++
				if ratio > worst {
					worst = ratio
				}
				if ratio > sortgenRegressionThreshold {
					verdict = "REGRESSION"
					failed++
				}
			}
			t.row(fmt.Sprintf("%s %s n=%d", f.Name, f.Distribution, f.N),
				fmt.Sprintf("%.2fms", base.WallMS),
				fmt.Sprintf("%.2fms", f.WallMS),
				fmt.Sprintf("%.2f", ratio), verdict)
		}
		t.flush(c.w)
		c.printf("\nworst fresh/committed ratio over %d rows: %.2f (threshold %.2f)\n",
			compared, worst, sortgenRegressionThreshold)

		// The headline claim is re-asserted on fresh numbers, so it can
		// never silently rot while the committed file still says true.
		if ratio, ok := headlineRatio(fresh); ok {
			c.printf("fresh hybrid vs sort.Slice at 500k random: %.2fx\n", ratio)
			if ratio >= 1 {
				return fmt.Errorf("hybrid no longer beats sort.Slice on 500k random ints (fresh ratio %.2f)", ratio)
			}
		} else {
			return fmt.Errorf("fresh run missing the 500k-random headline rows")
		}

		if failed > 0 {
			return fmt.Errorf("%d sortgen row(s) regressed beyond %.0f%%; "+
				"if intentional, regenerate the baseline with -table=sortgen",
				failed, (sortgenRegressionThreshold-1)*100)
		}
		return nil
	})
}
