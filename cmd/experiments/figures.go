package main

import (
	"os"
	"path/filepath"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/tsne"
	"sortsynth/internal/verify"
	"sortsynth/internal/viz"
)

func init() {
	register("figure1", "Figure 1: open states and solutions over time, n=4, k=1", false, func(c *ctx) error {
		c.section("Figure 1 (n=4, cut k=1, all-solutions under a state budget)")
		set := isa.NewCmov(4, 1)
		o := enum.ConfigAllSolutions()
		o.MaxLen = 20
		o.Cut, o.CutK = enum.CutFactor, 1
		o.StateBudget = 1_500_000
		o.MaxSolutions = 1
		tr := &enum.Trace{SampleEvery: 2048}
		o.Trace = tr
		res := enum.Run(set, o)
		c.printf("states expanded: %d, solution paths so far: %d, elapsed %s\n",
			res.Expanded, res.SolutionCount, ms(res.Elapsed))

		open := viz.Series{Name: "open states", Color: "steelblue"}
		sols := viz.Series{Name: "solutions found", Color: "darkorange"}
		for _, s := range tr.Samples {
			x := s.Elapsed.Seconds()
			open.X = append(open.X, x)
			open.Y = append(open.Y, float64(s.Open))
			sols.X = append(sols.X, x)
			sols.Y = append(sols.Y, float64(s.Solutions))
		}
		series := []viz.Series{open, sols}
		if err := writeFigure(c, "figure1", "Open states and solutions over time (n=4, k=1)",
			"time [s]", "count", series, false); err != nil {
			return err
		}
		return nil
	})

	register("figure2", "Figure 2: t-SNE of the n=3 solution space under cuts", false, func(c *ctx) error {
		c.section("Figure 2 (t-SNE of n=3 solutions; k=∞ blue, k=2 orange, k=1.5 green, k=1 red)")
		set := isa.NewCmov(3, 1)

		solutionsFor := func(cut enum.CutMode, k float64) []isa.Program {
			o := enum.ConfigAllSolutions()
			o.MaxLen = 11
			o.Cut, o.CutK = cut, k
			return enum.Run(set, o).Programs
		}
		all := solutionsFor(enum.CutNone, 0)
		k2 := solutionsFor(enum.CutFactor, 2)
		k15 := solutionsFor(enum.CutFactor, 1.5)
		k1 := solutionsFor(enum.CutFactor, 1)
		c.printf("solutions: all=%d k2=%d k1.5=%d k1=%d (paper: 5602/5602/838/222)\n",
			len(all), len(k2), len(k15), len(k1))

		// Membership by instruction-sequence key.
		key := func(p isa.Program) string { return verify.InstructionMultisetKey(set, p) + "|" + p.FormatInline(set.N) }
		in15 := map[string]bool{}
		for _, p := range k15 {
			in15[key(p)] = true
		}
		in1 := map[string]bool{}
		for _, p := range k1 {
			in1[key(p)] = true
		}
		in2 := map[string]bool{}
		for _, p := range k2 {
			in2[key(p)] = true
		}

		// Embed a deterministic sample (full set with -slow: O(N²·iters)).
		sample := all
		if !c.slow && len(sample) > 700 {
			step := len(sample) / 700
			var s []isa.Program
			for i := 0; i < len(sample); i += step {
				s = append(s, sample[i])
			}
			sample = s
			c.printf("embedding a deterministic sample of %d solutions (use -slow for all %d)\n", len(sample), len(all))
		}
		ids := make([][]int, len(sample))
		for i, p := range sample {
			row := make([]int, len(p))
			for t, in := range p {
				row[t] = set.InstrID(in)
			}
			ids[i] = row
		}
		feats := tsne.ProgramFeatures(ids, set.NumInstrs())
		emb := tsne.Embed(feats, tsne.Options{Perplexity: 50, Iterations: 300, Seed: 70})

		series := []viz.Series{
			{Name: "all solutions", Color: "steelblue"},
			{Name: "cut k=2", Color: "darkorange"},
			{Name: "cut k=1.5", Color: "forestgreen"},
			{Name: "cut k=1", Color: "crimson"},
		}
		for i, p := range sample {
			k := key(p)
			si := 0
			switch {
			case in1[k]:
				si = 3
			case in15[k]:
				si = 2
			case in2[k]:
				si = 1
			}
			series[si].X = append(series[si].X, emb[i][0])
			series[si].Y = append(series[si].Y, emb[i][1])
		}
		return writeFigure(c, "figure2", "t-SNE of n=3 optimal kernels by surviving cut",
			"tsne-x", "tsne-y", series, true)
	})
}

func writeFigure(c *ctx, name, title, xl, yl string, series []viz.Series, scatter bool) error {
	svgPath := filepath.Join(c.out, name+".svg")
	csvPath := filepath.Join(c.out, name+".csv")
	svg, err := os.Create(svgPath)
	if err != nil {
		return err
	}
	defer svg.Close()
	if scatter {
		viz.Scatter(svg, title, xl, yl, series)
	} else {
		viz.LineChart(svg, title, xl, yl, series)
	}
	csv, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer csv.Close()
	viz.CSV(csv, series)
	c.printf("wrote %s and %s\n", svgPath, csvPath)
	return nil
}
