package main

import (
	"fmt"
	"sort"
	"time"

	"sortsynth/internal/bench"
	"sortsynth/internal/kernels"
	"sortsynth/internal/uarch"
	"sortsynth/internal/verify"
)

// benchContender measures one kernel and renders its row.
type contRow struct {
	name   string
	t      time.Duration
	mix    string
	model  string
	isProg bool
}

func mixOf(k kernels.Kernel) string {
	if k.Prog == nil {
		return "—"
	}
	m := verify.Mix(k.Prog)
	return fmt.Sprintf("cmp=%d mov=%d cmov=%d other=%d", m.Cmp, m.Mov, m.CMov, m.Other)
}

func modelOf(k kernels.Kernel) string {
	if k.Prog == nil {
		return "—"
	}
	a := uarch.Analyze(k.Set, k.Prog)
	return fmt.Sprintf("tp=%.2f cp=%d score=%d", a.Throughput, a.CriticalPath, a.Score)
}

func renderRanked(c *ctx, rows []contRow) {
	timings := make([]bench.Timing, len(rows))
	for i, r := range rows {
		timings[i] = bench.Timing{Name: r.name, Time: r.t}
	}
	ranks := bench.Rank(timings)
	sort.Slice(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	var t tableWriter
	t.row("algorithm", "time", "rank", "instruction mix (register core)", "cost model")
	for _, r := range rows {
		t.row(r.name, ms(r.t), fmt.Sprint(ranks[r.name]), r.mix, r.model)
	}
	t.flush(c.w)
}

func standalone(c *ctx, n int, paperNote string) {
	c.section(fmt.Sprintf("Standalone kernels, n=%d (random values in ±10000)", n))
	inputs := bench.RandomArrays(n, 4096, 10000, 42)
	rounds := 400
	var rows []contRow
	for _, k := range kernels.Contenders(n) {
		d := bench.Measure(k.Go, inputs, rounds)
		rows = append(rows, contRow{name: k.Name, t: d, mix: mixOf(k), model: modelOf(k)})
	}
	renderRanked(c, rows)
	c.printf("%s\n", paperNote)
}

func embedded(c *ctx, n int, merge bool) {
	kind, fn := "quicksort", func(a []int, base int, k func([]int)) { bench.Quicksort(a, base, k) }
	if merge {
		kind, fn = "mergesort", func(a []int, base int, k func([]int)) { bench.Mergesort(a, base, k) }
	}
	c.section(fmt.Sprintf("Kernels embedded in %s, n=%d (random lists ≤ 20000)", kind, n))
	lists := make([][]int, 12)
	for i := range lists {
		lists[i] = bench.RandomList(20000, int64(100+i))
	}
	var rows []contRow
	for _, k := range kernels.Contenders(n) {
		var total time.Duration
		for _, l := range lists {
			total += bench.MeasureSort(func(a []int) { fn(a, n, k.Go) }, l, 6)
		}
		rows = append(rows, contRow{name: k.Name, t: total, mix: mixOf(k), model: modelOf(k)})
	}
	renderRanked(c, rows)
}

func init() {
	register("standalone3", "§5.3 standalone kernel comparison, n=3", false, func(c *ctx) error {
		standalone(c, 3, "Paper n=3 ranking: enum best (5.8 ms), swap, alphadev, cassioneri/branchless, mimicry, enum_worst, default, std slowest.")
		return nil
	})
	register("quick3", "§5.3 quicksort-embedded comparison, n=3", false, func(c *ctx) error {
		embedded(c, 3, false)
		c.printf("Paper: enum first; cassioneri, swap, mimicry close; default/std at the back.\n")
		return nil
	})
	register("merge3", "§5.3 mergesort-embedded comparison, n=3", false, func(c *ctx) error {
		embedded(c, 3, true)
		c.printf("Paper: cassioneri and enum effectively tied at the top.\n")
		return nil
	})
	register("n4", "§5.3 n=4 standalone + quicksort comparison", false, func(c *ctx) error {
		standalone(c, 4, "Paper n=4 standalone: mimicry narrowly first, enum second, std last.")
		embedded(c, 4, false)
		c.printf("Paper n=4 quicksort: enum first.\n")
		return nil
	})
	register("n5", "§5.3 n=5 standalone comparison", false, func(c *ctx) error {
		standalone(c, 5, "Paper n=5: enum 14.84 ms < alphadev 16.20 ms < enum_worst 17.77 ms.")
		return nil
	})
	register("minmax", "§5.4 min/max kernels: sizes, synthesis time, runtime", false, func(c *ctx) error {
		c.section("Min/max kernels (paper §5.4)")
		var t tableWriter
		t.row("n", "#instr (synth)", "network instr", "paper synth time", "paper: min/max vs cmov vs network")
		t.row("3", "8", "9", "3.8 ms", "4.57 / 5.80 / 5.29 ms")
		t.row("4", "15", "15", "70.5 ms", "7.00 / 9.48 / 8.12 ms")
		t.row("5", "26", "27", "32.5 s", "10.66 / 14.84 / 12.23 ms")
		t.flush(c.w)
		c.printf("\nMeasured runtimes of the frozen kernels (this machine):\n")
		for _, n := range []int{3, 4, 5} {
			inputs := bench.RandomArrays(n, 4096, 10000, 7)
			var mmName string
			switch n {
			case 3:
				mmName = "sort3_minmax"
			case 4:
				mmName = "sort4_minmax"
			case 5:
				mmName = "sort5_minmax"
			}
			var rows []contRow
			for _, k := range kernels.Contenders(n) {
				if k.Name != mmName && k.Name != "enum" && k.Name != "network" {
					continue
				}
				rows = append(rows, contRow{name: k.Name, t: bench.Measure(k.Go, inputs, 300), mix: mixOf(k), model: modelOf(k)})
			}
			c.printf("n=%d:\n", n)
			renderRanked(c, rows)
		}
		return nil
	})
}
