package main

import (
	"context"
	"flag"
	"fmt"

	"sortsynth/internal/conformance"
)

var (
	confSeed   = flag.Int64("seed", 1, "conformance: spec-generator seed (the run is deterministic in it)")
	confSpecs  = flag.Int("specs", 200, "conformance: number of generated differential specs")
	confMaxN   = flag.Int("maxn", 3, "conformance: largest generated problem size")
	confInject = flag.Bool("inject", false, "conformance: plant deliberately lying backends; the run must then fail")
)

func init() {
	register("conformance", "differential + metamorphic cross-backend conformance gate (deterministic via -seed; nonzero exit on divergence)", false, func(c *ctx) error {
		c.section("Cross-backend conformance: differential vs enum ground truth + metamorphic invariants")
		opt := conformance.Options{
			Seed:  *confSeed,
			Specs: *confSpecs,
			MaxN:  *confMaxN,
			Log: func(format string, args ...any) {
				c.printf(format+"\n", args...)
			},
		}
		if *confInject {
			opt.Extra = conformance.LiarBackends()
			c.printf("injection mode: liar backends planted; this run MUST report divergences\n")
		}
		rep, err := conformance.Run(context.Background(), opt)
		if err != nil {
			return fmt.Errorf("conformance harness: %w", err)
		}
		rep.WriteText(c.w)
		if !rep.Ok() {
			return fmt.Errorf("conformance: %d divergences", len(rep.Divergences))
		}
		return nil
	})
}
