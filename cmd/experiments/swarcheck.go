package main

import (
	"encoding/json"
	"fmt"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// swarcheck is the SWAR execution-layer equivalence gate (DESIGN.md
// §15): across a cut × workers matrix, a run with the SWAR bit-sliced
// kernels must be byte-identical to the scalar run in everything the
// search computes — the enumerated program set, the exact solution
// count, and every effort counter. On top of the on/off axis it
// re-asserts the parallel engine's invariant that the counters do not
// depend on the worker count. Any divergence fails the process, which
// is what lets DisableSWAR stay out of the kernel-cache keys.

func init() {
	register("swarcheck", "prove SWAR and scalar execution byte-identical (programs, solution counts, all counters) across cut modes and worker counts (nonzero exit on divergence)", false, func(c *ctx) error {
		type swarcase struct {
			name    string
			set     *isa.Set
			dupsafe bool
			cut     bool
			workers []int
		}
		// The cut toggles between the cases so both the cut and no-cut
		// engine paths (pre-apply skip, fused prune, recount) run under
		// SWAR and scalar; n=3 keeps the uncut tree affordable, n=4 is
		// the machine the committed benchmarks anchor; the minmax
		// dupsafe case covers the other ISA and the multi-tag
		// weak-order suite, whose goal check takes the scalar
		// fallback inside the SWAR layer.
		cases := []swarcase{
			{"cmov n=3 cut=none", isa.NewCmov(3, 1), false, false, []int{1, 2, 4, 8}},
			{"cmov n=4 cut=best", isa.NewCmov(4, 1), false, true, []int{1, 2, 4, 8}},
			{"minmax n=3 dupsafe cut=best", isa.NewMinMax(3, 2), true, true, []int{1, 4}},
		}
		tw := &tableWriter{}
		tw.row("case", "workers", "swar", "len", "solutions", "expanded", "generated", "pruned", "cut", "deduped", "wall")
		fail := 0
		for _, cs := range cases {
			// The parallel engine's counters must agree at every worker
			// count; the sequential engine (workers=1) explores a
			// different frontier by design and is compared only against
			// its own scalar twin.
			var parRef string
			var parRefW int
			for _, w := range cs.workers {
				var ids [2]string
				for i, off := range []bool{false, true} {
					opt := enum.ConfigBest()
					if !cs.cut {
						opt.Cut = enum.CutNone
						opt.CutK = 0
					}
					opt.MaxLen = 20
					opt.Workers = w
					opt.AllSolutions = true
					opt.MaxSolutions = 64
					opt.DuplicateSafe = cs.dupsafe
					opt.DisableSWAR = off
					start := time.Now()
					res := enum.Run(cs.set, opt)
					wall := time.Since(start)
					ids[i] = swarcheckIdentity(res, cs.set.N)
					mode := "on"
					if off {
						mode = "off"
					}
					tw.row(cs.name, fmt.Sprint(w), mode,
						fmt.Sprint(res.Length), fmt.Sprint(res.SolutionCount),
						fmt.Sprint(res.Expanded), fmt.Sprint(res.Generated),
						fmt.Sprint(res.Pruned), fmt.Sprint(res.CutCount),
						fmt.Sprint(res.Deduped), wall.Round(time.Millisecond).String())
				}
				if ids[0] != ids[1] {
					fail++
					c.printf("DIVERGENCE %s workers=%d: swar vs scalar\n  swar   %s\n  scalar %s\n",
						cs.name, w, ids[0], ids[1])
				}
				if w > 1 {
					if parRef == "" {
						parRef, parRefW = ids[0], w
					} else if ids[0] != parRef {
						fail++
						c.printf("DIVERGENCE %s: workers=%d vs workers=%d\n  w=%d %s\n  w=%d %s\n",
							cs.name, w, parRefW, w, ids[0], parRefW, parRef)
					}
				}
			}
		}
		tw.flush(c.w)
		if fail > 0 {
			return fmt.Errorf("swarcheck: %d divergences between SWAR and scalar execution", fail)
		}
		c.printf("all runs byte-identical: SWAR on/off and every worker count agree\n")
		return nil
	})
}

// swarcheckIdentity projects a search result onto everything that must
// be byte-identical between SWAR and scalar execution: the solution
// set itself plus every deterministic counter. Wall time is excluded.
func swarcheckIdentity(r *enum.Result, n int) string {
	progs := make([]string, len(r.Programs))
	for i, p := range r.Programs {
		progs[i] = p.FormatInline(n)
	}
	var first string
	if r.Program != nil {
		first = r.Program.FormatInline(n)
	}
	b, _ := json.Marshal(map[string]any{
		"length":    r.Length,
		"solutions": r.SolutionCount,
		"program":   first,
		"programs":  progs,
		"expanded":  r.Expanded,
		"generated": r.Generated,
		"deduped":   r.Deduped,
		"cut":       r.CutCount,
		"pruned":    r.Pruned,
		"exhausted": r.Exhausted,
		"proof":     r.Proof,
	})
	return string(b)
}
