package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sortsynth/internal/backend"
	"sortsynth/internal/cp"
	"sortsynth/internal/ilp"
	"sortsynth/internal/isa"
	"sortsynth/internal/mcts"
	"sortsynth/internal/plan"
	"sortsynth/internal/smt"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/stoke"
)

// runVerified drives one configured backend through backend.Run under a
// wall-clock budget. backend.Run is the single verification point for
// every baseline row: a backend claiming an incorrect program surfaces
// as *backend.IncorrectError ("INCORRECT"), so no table below carries
// its own correctness check.
func runVerified(b backend.Backend, set *isa.Set, spec backend.Spec, budget time.Duration) (*backend.Result, string) {
	ctx := context.Background()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	res, err := backend.Run(ctx, b, set, spec)
	if err != nil {
		var inc *backend.IncorrectError
		if errors.As(err, &inc) {
			return nil, "INCORRECT"
		}
		return nil, "error: " + err.Error()
	}
	return res, res.Status.String()
}

func init() {
	register("smt", "§5.2 SMT-based techniques (SAT-backed SMT-PERM / SMT-CEGIS)", false, func(c *ctx) error {
		c.section("SMT-based synthesis, n=2 (always) and n=3 (-slow)")
		var t tableWriter
		t.row("approach", "n", "time", "status", "paper (n=3, Z3)")
		run := func(name string, n, length int, cegis, arbitrary bool, paper string, budget time.Duration) {
			set := isa.NewCmov(n, 1)
			b := backend.NewSMT(smt.Options{Goal: smt.GoalAscCounts0, Encoding: smt.EncodingDense,
				CEGISArbitrary: arbitrary}, cegis)
			res, status := runVerified(b, set, backend.Spec{MaxLen: length}, budget)
			elapsed := "—"
			if res != nil {
				elapsed = ms(res.Stats.Elapsed)
				if cegis {
					status += fmt.Sprintf(" (%d iters)", res.Stats.Iterations)
				}
			}
			t.row(name, fmt.Sprint(n), elapsed, status, "("+paper+")")
		}
		run("SMT-PERM", 2, 4, false, false, "44 min", time.Minute)
		run("SMT-CEGIS (range 1..n)", 2, 4, true, false, "25 min", time.Minute)
		run("SMT-CEGIS (arbitrary)", 2, 4, true, true, "97 min", time.Minute)
		run("SMT-CEGIS (range 1..n)", 3, 11, true, false, "25 min", 4*time.Minute)
		if c.slow {
			run("SMT-PERM", 3, 11, false, false, "44 min", 15*time.Minute)
		}
		t.row("SMT-SyGuS", "3", "—", "not reproduced", "(— with cvc5)")
		t.row("SMT-MetaLift", "3", "—", "not reproduced", "(—)")
		t.flush(c.w)
		c.printf("\nZ3 is replaced by the repository's CDCL SAT core with a one-hot FD layer\n(DESIGN.md §4.1). SyGuS/MetaLift failed in the paper and are external tools.\nEvery row runs through the backend registry; backend.Run verifies each win.\n")
		return nil
	})

	register("cp", "§5.2 constraint programming (FD engine, MiniZinc-style model)", false, func(c *ctx) error {
		c.section("Constraint programming, n=2 (always) and n=3 (-slow)")
		var t tableWriter
		t.row("approach", "n", "time", "status", "paper n=3")
		run := func(name string, n, length int, o cp.Options, paper string, budget time.Duration) {
			set := isa.NewCmov(n, 1)
			res, status := runVerified(backend.NewCP(o), set, backend.Spec{MaxLen: length}, budget)
			elapsed := "—"
			if res != nil {
				elapsed = ms(res.Stats.Elapsed)
			}
			t.row(name, fmt.Sprint(n), elapsed, status, "("+paper+")")
		}
		heur := cp.Options{Goal: cp.GoalAscCounts0, NoConsecutiveCmp: true, CmpSymmetry: true, NoSelfOps: true}
		run("CP (I)+(II), ≤ #0123", 2, 4, heur, "874 ms (Chuffed)", time.Minute)
		if c.slow {
			run("CP (I)+(II), ≤ #0123", 3, 11, heur, "874 ms (Chuffed)", 30*time.Minute)
		}
		t.flush(c.w)
		c.printf("\nGurobi/CBC/Chuffed replaced by the repository FD engine (no clause learning —\nthe feature the paper identifies as Chuffed's edge; see EXPERIMENTS.md T5).\n")
		c.printf("ILP rows: see -table=ilp.\n")
		return nil
	})

	register("cpgoals", "§5.2 MiniZinc goal-formulation and heuristic sensitivity", false, func(c *ctx) error {
		c.section("CP goal formulations × heuristics, n=2 (the paper's table uses n=3/Chuffed)")
		var t tableWriter
		t.row("goal", "heuristics", "time", "nodes", "paper n=3")
		run := func(goalName string, goal cp.Goal, heurName string, o cp.Options, paper string) {
			o.Goal = goal
			set := isa.NewCmov(2, 1)
			res, status := runVerified(backend.NewCP(o), set, backend.Spec{MaxLen: 4}, time.Minute)
			cell, nodes := status, "—"
			if res != nil {
				cell = ms(res.Stats.Elapsed)
				if res.Status != backend.StatusFound {
					cell += " (none)"
				}
				nodes = fmt.Sprint(res.Stats.Nodes)
			}
			t.row(goalName, heurName, cell, nodes, "("+paper+")")
		}
		run("=123", cp.GoalExact, "—", cp.Options{}, "247 s")
		run("≤,#0123", cp.GoalAscCounts0, "—", cp.Options{}, "232 s")
		run("≤,#0123", cp.GoalAscCounts0, "(I)", cp.Options{NoConsecutiveCmp: true}, "10 s")
		run("≤,#0123", cp.GoalAscCounts0, "(II)", cp.Options{CmpSymmetry: true}, "68 s")
		run("≤,#0123", cp.GoalAscCounts0, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "874 ms")
		run("=123", cp.GoalExact, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "70 s")
		run("≤,#0123,=123", cp.GoalAscExact, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "119 s")
		run("≤,#123", cp.GoalAscCounts, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "30 s")
		run("≤,#0123", cp.GoalAscCounts0, "(I)+(II), cmd[0]=cmp", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true, FirstIsCmp: true}, "64 s")
		t.flush(c.w)
		return nil
	})

	register("ilp", "§5.2 CP-ILP big-M formulation (expected to fail beyond n=2)", false, func(c *ctx) error {
		c.section("ILP (big-M, branch & bound)")
		var t tableWriter
		t.row("n", "length", "time", "status", "nodes", "paper")
		for _, tc := range []struct {
			n, length int
			nodes     int64
			paper     string
		}{
			{2, 4, 5_000_000, "(n=3: — for all ILP rows)"},
			{3, 11, 300_000, "(—)"},
		} {
			set := isa.NewCmov(tc.n, 1)
			b := backend.NewILP(ilp.Options{MaxNodes: tc.nodes})
			res, status := runVerified(b, set, backend.Spec{MaxLen: tc.length}, 2*time.Minute)
			elapsed, nodes := "—", "—"
			if res != nil {
				elapsed, nodes = ms(res.Stats.Elapsed), fmt.Sprint(res.Stats.Nodes)
			}
			t.row(fmt.Sprint(tc.n), fmt.Sprint(tc.length), elapsed, status, nodes, tc.paper)
		}
		t.flush(c.w)
		return nil
	})

	register("stoke", "§5.2 stochastic search (Stoke-style MCMC)", false, func(c *ctx) error {
		c.section("Stochastic superoptimization, n=3 (paper: all rows fail)")
		var t tableWriter
		t.row("mode", "tests", "time", "status", "proposals")
		net := sortnet.Optimal(3).CompileCmov()
		set := isa.NewCmov(3, 1)
		run := func(name string, length int, seed int64, o stoke.Options) {
			o.MaxProposals = 2_000_000
			res, status := runVerified(backend.NewStoke(o), set,
				backend.Spec{MaxLen: length, Seed: seed}, 2*time.Minute)
			elapsed, props := "—", "—"
			if res != nil {
				elapsed, props = ms(res.Stats.Elapsed), fmt.Sprint(res.Stats.Nodes)
				if res.Status == backend.StatusFound {
					status = fmt.Sprintf("found len %d", res.Length)
				}
			}
			t.row(name, fmt.Sprint(max(o.TestSubset, 6)), elapsed, status, props)
		}
		run("cold, permutation suite", 11, 1, stoke.Options{})
		run("cold, random subset", 11, 2, stoke.Options{TestSubset: 3})
		run("warm, network start (len 11)", 11, 3, stoke.Options{Warm: net[:11]})
		run("warm, network start (len 12)", 12, 4, stoke.Options{Warm: net})
		t.flush(c.w)
		c.printf("\nPaper: Stoke synthesizes nothing for n=3 in any mode; a warm start at the\nnetwork's own length 12 trivially keeps the seed. Finding a length-11 kernel\nby MCMC mirrors the paper's negative result.\n")
		return nil
	})

	register("plan", "§5.2 planning approaches", false, func(c *ctx) error {
		c.section("Planning, n=3 (paper: fast-downward —, LAMA 3.54 s, Scorpion 679 s)")
		var t tableWriter
		t.row("configuration", "time", "plan length", "status", "paper analogue")
		set := isa.NewCmov(3, 1)
		run := func(name string, o plan.Options, paper string) {
			// Spec.MaxLen 0: the satisficing planners return correct but
			// non-minimal kernels, and the table reports their length.
			res, status := runVerified(backend.NewPlan(o), set, backend.Spec{}, 2*time.Minute)
			elapsed, length := "—", "—"
			if res != nil {
				elapsed = ms(res.Stats.Elapsed)
				if res.Status == backend.StatusFound {
					length = fmt.Sprint(res.Length)
				}
			}
			t.row(name, elapsed, length, status, "("+paper+")")
		}
		run("GBFS + goal count", plan.Options{Algorithm: plan.GBFS, Heuristic: plan.GoalCount, MaxNodes: 300_000}, "fast-downward: —")
		run("GBFS + h_add", plan.Options{Algorithm: plan.GBFS, Heuristic: plan.HAdd, MaxNodes: 300_000}, "LAMA: 3.54 s")
		run("GBFS + h_add, serialized", plan.Options{Algorithm: plan.GBFS, Heuristic: plan.HAdd, Serialize: true, MaxNodes: 300_000}, "LAMA seq: 3.86 s")
		run("A* + goal count", plan.Options{Algorithm: plan.AStar, Heuristic: plan.GoalCount, MaxNodes: 2_000_000}, "Scorpion: 679 s")
		t.flush(c.w)
		return nil
	})

	register("mcts", "AlphaDev-style MCTS baseline (no learned guidance)", false, func(c *ctx) error {
		c.section("MCTS (UCT, random rollouts)")
		var t tableWriter
		t.row("n", "max len", "time", "status", "iterations")
		for _, tc := range []struct {
			n, maxLen int
			iters     int64
		}{
			{2, 6, 200_000},
			{3, 14, 600_000},
		} {
			set := isa.NewCmov(tc.n, 1)
			b := backend.NewMCTS(mcts.Options{Iterations: tc.iters})
			res, status := runVerified(b, set, backend.Spec{MaxLen: tc.maxLen, Seed: 1}, 2*time.Minute)
			elapsed, iters := "—", "—"
			if res != nil {
				elapsed, iters = ms(res.Stats.Elapsed), fmt.Sprint(res.Stats.Iterations)
				if res.Status == backend.StatusFound {
					status = fmt.Sprintf("found len %d", res.Length)
				}
			}
			t.row(fmt.Sprint(tc.n), fmt.Sprint(tc.maxLen), elapsed, status, iters)
		}
		t.flush(c.w)
		c.printf("\nAlphaDev couples this search with learned policy/value networks; bare UCT\nstalling on n=3 is the expected shape of the substitution (DESIGN.md §4.4).\n")
		return nil
	})

	register("portfolio", "backend portfolio race (first verified kernel wins, losers cancelled)", false, func(c *ctx) error {
		c.section("Portfolio race over the backend registry, n=3 cmov, length ≤ 11")
		reg := backend.Default()
		var members []backend.Backend
		for _, name := range []string{"enum", "smt", "stoke"} {
			b, err := reg.Get(name)
			if err != nil {
				return err
			}
			members = append(members, b)
		}
		set := isa.NewCmov(3, 1)
		res, status := runVerified(backend.NewPortfolio(members...), set,
			backend.Spec{MaxLen: 11, Seed: 1}, 2*time.Minute)
		if res == nil {
			return fmt.Errorf("portfolio race failed: %s", status)
		}
		var t tableWriter
		t.row("backend", "status", "time", "nodes")
		for _, e := range res.Race {
			t.row(e.Backend, e.Status.String(), ms(e.Stats.Elapsed), fmt.Sprint(e.Stats.Nodes))
		}
		t.flush(c.w)
		if res.Status == backend.StatusFound {
			c.printf("\nWinner: %s (length %d in %s). The race cancels the losing backends through\ntheir contexts; every candidate win passes the central verifier first.\n",
				res.Winner, res.Length, ms(res.Stats.Elapsed))
		} else {
			c.printf("\nNo backend found a kernel: %s.\n", status)
		}
		return nil
	})
}
