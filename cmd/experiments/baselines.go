package main

import (
	"fmt"
	"time"

	"sortsynth/internal/cp"
	"sortsynth/internal/ilp"
	"sortsynth/internal/isa"
	"sortsynth/internal/mcts"
	"sortsynth/internal/plan"
	"sortsynth/internal/smt"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/stoke"
	"sortsynth/internal/verify"
)

func init() {
	register("smt", "§5.2 SMT-based techniques (SAT-backed SMT-PERM / SMT-CEGIS)", false, func(c *ctx) error {
		c.section("SMT-based synthesis, n=2 (always) and n=3 (-slow)")
		var t tableWriter
		t.row("approach", "n", "time", "status", "paper (n=3, Z3)")
		run := func(name string, n, length int, cegis, arbitrary bool, paper string, budget time.Duration) {
			set := isa.NewCmov(n, 1)
			o := smt.Options{Length: length, Goal: smt.GoalAscCounts0, Encoding: smt.EncodingDense,
				CEGISArbitrary: arbitrary, Timeout: budget}
			var res *smt.Result
			if cegis {
				res = smt.SynthCEGIS(set, o)
			} else {
				res = smt.SynthPerm(set, o)
			}
			status := res.Status.String()
			if res.Status == smt.Found && !verify.Sorts(set, res.Program) {
				status = "INCORRECT"
			}
			if cegis {
				status += fmt.Sprintf(" (%d iters)", res.Iterations)
			}
			t.row(name, fmt.Sprint(n), ms(res.Elapsed), status, "("+paper+")")
		}
		run("SMT-PERM", 2, 4, false, false, "44 min", time.Minute)
		run("SMT-CEGIS (range 1..n)", 2, 4, true, false, "25 min", time.Minute)
		run("SMT-CEGIS (arbitrary)", 2, 4, true, true, "97 min", time.Minute)
		run("SMT-CEGIS (range 1..n)", 3, 11, true, false, "25 min", 4*time.Minute)
		if c.slow {
			run("SMT-PERM", 3, 11, false, false, "44 min", 15*time.Minute)
		}
		t.row("SMT-SyGuS", "3", "—", "not reproduced", "(— with cvc5)")
		t.row("SMT-MetaLift", "3", "—", "not reproduced", "(—)")
		t.flush(c.w)
		c.printf("\nZ3 is replaced by the repository's CDCL SAT core with a one-hot FD layer\n(DESIGN.md §4.1). SyGuS/MetaLift failed in the paper and are external tools.\n")
		return nil
	})

	register("cp", "§5.2 constraint programming (FD engine, MiniZinc-style model)", false, func(c *ctx) error {
		c.section("Constraint programming, n=2 (always) and n=3 (-slow)")
		var t tableWriter
		t.row("approach", "n", "time", "status", "paper n=3")
		run := func(name string, n, length int, o cp.Options, paper string) {
			o.Length = length
			set := isa.NewCmov(n, 1)
			res := cp.Synthesize(set, o)
			status := "found"
			switch {
			case res.Program == nil && res.Exhausted:
				status = "refuted"
			case res.Program == nil:
				status = "budget"
			case !verify.Sorts(set, res.Program):
				status = "INCORRECT"
			}
			t.row(name, fmt.Sprint(n), ms(res.Elapsed), status, "("+paper+")")
		}
		heur := cp.Options{Goal: cp.GoalAscCounts0, NoConsecutiveCmp: true, CmpSymmetry: true, NoSelfOps: true}
		run("CP (I)+(II), ≤ #0123", 2, 4, heur, "874 ms (Chuffed)")
		if c.slow {
			h3 := heur
			h3.Timeout = 30 * time.Minute
			run("CP (I)+(II), ≤ #0123", 3, 11, h3, "874 ms (Chuffed)")
		}
		t.flush(c.w)
		c.printf("\nGurobi/CBC/Chuffed replaced by the repository FD engine (no clause learning —\nthe feature the paper identifies as Chuffed's edge; see EXPERIMENTS.md T5).\n")
		c.printf("ILP rows: see -table=ilp.\n")
		return nil
	})

	register("cpgoals", "§5.2 MiniZinc goal-formulation and heuristic sensitivity", false, func(c *ctx) error {
		c.section("CP goal formulations × heuristics, n=2 (the paper's table uses n=3/Chuffed)")
		var t tableWriter
		t.row("goal", "heuristics", "time", "nodes", "paper n=3")
		run := func(goalName string, goal cp.Goal, heurName string, o cp.Options, paper string) {
			o.Goal = goal
			o.Length = 4
			set := isa.NewCmov(2, 1)
			res := cp.Synthesize(set, o)
			status := ms(res.Elapsed)
			if res.Program == nil {
				status += " (none)"
			}
			t.row(goalName, heurName, status, fmt.Sprint(res.Nodes), "("+paper+")")
		}
		run("=123", cp.GoalExact, "—", cp.Options{}, "247 s")
		run("≤,#0123", cp.GoalAscCounts0, "—", cp.Options{}, "232 s")
		run("≤,#0123", cp.GoalAscCounts0, "(I)", cp.Options{NoConsecutiveCmp: true}, "10 s")
		run("≤,#0123", cp.GoalAscCounts0, "(II)", cp.Options{CmpSymmetry: true}, "68 s")
		run("≤,#0123", cp.GoalAscCounts0, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "874 ms")
		run("=123", cp.GoalExact, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "70 s")
		run("≤,#0123,=123", cp.GoalAscExact, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "119 s")
		run("≤,#123", cp.GoalAscCounts, "(I)+(II)", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true}, "30 s")
		run("≤,#0123", cp.GoalAscCounts0, "(I)+(II), cmd[0]=cmp", cp.Options{NoConsecutiveCmp: true, CmpSymmetry: true, FirstIsCmp: true}, "64 s")
		t.flush(c.w)
		return nil
	})

	register("ilp", "§5.2 CP-ILP big-M formulation (expected to fail beyond n=2)", false, func(c *ctx) error {
		c.section("ILP (big-M, branch & bound)")
		var t tableWriter
		t.row("n", "length", "time", "status", "vars", "cons", "paper")
		for _, tc := range []struct {
			n, length int
			nodes     int64
			paper     string
		}{
			{2, 4, 5_000_000, "(n=3: — for all ILP rows)"},
			{3, 11, 300_000, "(—)"},
		} {
			set := isa.NewCmov(tc.n, 1)
			res := ilp.Synthesize(set, ilp.Options{Length: tc.length, MaxNodes: tc.nodes, Timeout: 2 * time.Minute})
			status := "found"
			switch {
			case res.Program == nil && res.Exhausted:
				status = "refuted"
			case res.Program == nil:
				status = "budget exhausted"
			case !verify.Sorts(set, res.Program):
				status = "INCORRECT"
			}
			t.row(fmt.Sprint(tc.n), fmt.Sprint(tc.length), ms(res.Elapsed), status,
				fmt.Sprint(res.Vars), fmt.Sprint(res.Cons), tc.paper)
		}
		t.flush(c.w)
		return nil
	})

	register("stoke", "§5.2 stochastic search (Stoke-style MCMC)", false, func(c *ctx) error {
		c.section("Stochastic superoptimization, n=3 (paper: all rows fail)")
		var t tableWriter
		t.row("mode", "tests", "time", "status", "best cost")
		net := sortnet.Optimal(3).CompileCmov()
		set := isa.NewCmov(3, 1)
		run := func(name string, o stoke.Options) {
			o.MaxProposals = 2_000_000
			res := stoke.Run(set, o)
			status := "failed"
			if res.Program != nil {
				if verify.Sorts(set, res.Program) {
					status = fmt.Sprintf("found len %d", len(res.Program))
				} else {
					status = "INCORRECT"
				}
			}
			t.row(name, fmt.Sprint(max(o.TestSubset, 6)), ms(res.Elapsed), status, fmt.Sprint(res.BestCost))
		}
		run("cold, permutation suite", stoke.Options{Length: 11, Seed: 1})
		run("cold, random subset", stoke.Options{Length: 11, Seed: 2, TestSubset: 3})
		run("warm, network start (len 11)", stoke.Options{Length: 11, Warm: net[:11], Seed: 3})
		run("warm, network start (len 12)", stoke.Options{Length: 12, Warm: net, Seed: 4})
		t.flush(c.w)
		c.printf("\nPaper: Stoke synthesizes nothing for n=3 in any mode; a warm start at the\nnetwork's own length 12 trivially keeps the seed. Finding a length-11 kernel\nby MCMC mirrors the paper's negative result.\n")
		return nil
	})

	register("plan", "§5.2 planning approaches", false, func(c *ctx) error {
		c.section("Planning, n=3 (paper: fast-downward —, LAMA 3.54 s, Scorpion 679 s)")
		var t tableWriter
		t.row("configuration", "time", "plan length", "status", "paper analogue")
		set := isa.NewCmov(3, 1)
		prob := plan.Encode(set, nil)
		run := func(name string, o plan.Options, paper string) {
			res := plan.Solve(prob, o)
			status, length := "no plan", "—"
			if res.Plan != nil {
				p := plan.PlanToProgram(set, res.Plan)
				if verify.Sorts(set, p) {
					status = "found"
					length = fmt.Sprint(len(p))
				} else {
					status = "INCORRECT"
				}
			}
			t.row(name, ms(res.Elapsed), length, status, "("+paper+")")
		}
		run("GBFS + goal count", plan.Options{Algorithm: plan.GBFS, Heuristic: plan.GoalCount, MaxNodes: 300_000}, "fast-downward: —")
		run("GBFS + h_add", plan.Options{Algorithm: plan.GBFS, Heuristic: plan.HAdd, MaxNodes: 300_000}, "LAMA: 3.54 s")
		run("GBFS + h_add, serialized", plan.Options{Algorithm: plan.GBFS, Heuristic: plan.HAdd, Serialize: true, MaxNodes: 300_000}, "LAMA seq: 3.86 s")
		run("A* + goal count", plan.Options{Algorithm: plan.AStar, Heuristic: plan.GoalCount, MaxNodes: 2_000_000}, "Scorpion: 679 s")
		t.flush(c.w)
		return nil
	})

	register("mcts", "AlphaDev-style MCTS baseline (no learned guidance)", false, func(c *ctx) error {
		c.section("MCTS (UCT, random rollouts)")
		var t tableWriter
		t.row("n", "max len", "time", "status", "iterations")
		for _, tc := range []struct {
			n, maxLen int
			iters     int64
		}{
			{2, 6, 200_000},
			{3, 14, 600_000},
		} {
			set := isa.NewCmov(tc.n, 1)
			res := mcts.Run(set, mcts.Options{MaxLen: tc.maxLen, Iterations: tc.iters, Seed: 1, Timeout: 2 * time.Minute})
			status := fmt.Sprintf("failed (best reward %.2f)", res.BestReward)
			if res.Program != nil {
				if verify.Sorts(set, res.Program) {
					status = fmt.Sprintf("found len %d", len(res.Program))
				} else {
					status = "INCORRECT"
				}
			}
			t.row(fmt.Sprint(tc.n), fmt.Sprint(tc.maxLen), ms(res.Elapsed), status, fmt.Sprint(res.Iterations))
		}
		t.flush(c.w)
		c.printf("\nAlphaDev couples this search with learned policy/value networks; bare UCT\nstalling on n=3 is the expected shape of the substitution (DESIGN.md §4.4).\n")
		return nil
	})
}
