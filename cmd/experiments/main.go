// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) from this repository's implementations, writing
// human-readable tables to stdout and results/<name>.txt, and figures to
// results/*.svg (+ .csv).
//
// Usage:
//
//	experiments -list
//	experiments -table=ablation
//	experiments -figure=1
//	experiments -all            # every fast experiment
//	experiments -all -slow      # include the multi-minute runs
//
// Paper-reported numbers are printed alongside measurements where they
// exist; EXPERIMENTS.md records the comparison. Experiments marked slow
// (n=5 synthesis, SMT n=3, exhaustive proofs, full-size t-SNE) only run
// with -slow.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type experiment struct {
	name string
	desc string
	slow bool
	run  func(ctx *ctx) error
}

type ctx struct {
	out  string // results directory
	slow bool
	w    io.Writer // tee: stdout + file
}

func (c *ctx) printf(format string, args ...any) { fmt.Fprintf(c.w, format, args...) }

func (c *ctx) section(title string) {
	c.printf("\n== %s ==\n", title)
}

var experiments []experiment

func register(name, desc string, slow bool, run func(*ctx) error) {
	experiments = append(experiments, experiment{name: name, desc: desc, slow: slow, run: run})
}

func main() {
	log.SetFlags(0)
	var (
		table  = flag.String("table", "", "run one table experiment by name")
		figure = flag.String("figure", "", "run one figure experiment (1 or 2)")
		all    = flag.Bool("all", false, "run every experiment (fast ones unless -slow)")
		slow   = flag.Bool("slow", false, "include multi-minute experiments")
		outDir = flag.String("out", "results", "output directory")
		list   = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].name < experiments[j].name })

	if *list {
		for _, e := range experiments {
			tag := ""
			if e.slow {
				tag = " [slow]"
			}
			fmt.Printf("%-14s %s%s\n", e.name, e.desc, tag)
		}
		return
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// The selectors are mutually exclusive; silently honoring one of
	// several (the old behavior) ran something other than what was asked.
	selectors := 0
	for _, on := range []bool{*table != "", *figure != "", *all} {
		if on {
			selectors++
		}
	}
	if selectors > 1 {
		log.Fatalf("conflicting selectors: -table=%q -figure=%q -all=%v — pass exactly one of -table, -figure, -all",
			*table, *figure, *all)
	}

	want := map[string]bool{}
	switch {
	case *table != "":
		want[*table] = true
	case *figure != "":
		want["figure"+*figure] = true
	case *all:
		for _, e := range experiments {
			if !e.slow || *slow {
				want[e.name] = true
			}
		}
	default:
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nexperiments (use -list for descriptions):")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %s\n", e.name)
		}
		os.Exit(2)
	}

	ran, failures := 0, 0
	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		ran++
		f, err := os.Create(filepath.Join(*outDir, e.name+".txt"))
		if err != nil {
			log.Fatal(err)
		}
		c := &ctx{out: *outDir, slow: *slow, w: io.MultiWriter(os.Stdout, f)}
		c.printf("# %s — %s\n", e.name, e.desc)
		if err := e.run(c); err != nil {
			log.Printf("%s: %v", e.name, err)
			failures++
		}
		f.Close()
	}
	if ran == 0 {
		log.Fatalf("no experiment matched %q/%q (use -list)", *table, *figure)
	}
	// A failing experiment fails the process so gates like benchcompare
	// can be wired into make check.
	if failures > 0 {
		os.Exit(1)
	}
}

// tableWriter renders aligned columns.
type tableWriter struct {
	rows [][]string
}

func (t *tableWriter) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) flush(w io.Writer) {
	if len(t.rows) == 0 {
		return
	}
	width := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		var b strings.Builder
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c + strings.Repeat(" ", width[i]-len(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	t.rows = t.rows[:0]
}
