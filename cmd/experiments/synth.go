package main

import (
	"fmt"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/perm"
	"sortsynth/internal/uarch"
	"sortsynth/internal/verify"
)

func ms(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}

func init() {
	register("space", "§5.1 search-space table: n, n!, optimal size, raw program space", false, func(c *ctx) error {
		c.section("Search space (paper §5.1)")
		var t tableWriter
		t.row("n", "n!", "optimal size", "log10 program space", "paper")
		for _, tc := range []struct {
			n, m, opt int
			paper     string
		}{
			{3, 1, 11, "10^19.9"},
			{4, 1, 20, "10^40.0"},
			{5, 1, 33, "10^71.2"},
			{6, 2, 45, "10^108.4"},
		} {
			set := isa.NewCmov(tc.n, tc.m)
			t.row(fmt.Sprint(tc.n), fmt.Sprint(perm.Factorial(tc.n)), fmt.Sprint(tc.opt),
				fmt.Sprintf("10^%.1f", set.RawProgramSpaceLog10(tc.opt)), tc.paper)
		}
		t.flush(c.w)
		return nil
	})

	register("time", "§5.2 headline synthesis times (enum best vs AlphaDev)", false, func(c *ctx) error {
		c.section("Synthesis time, best configuration (III)")
		var t tableWriter
		t.row("n", "enum (this repo)", "paper enum", "AlphaDev-RL", "AlphaDev-S")
		paperEnum := map[int]string{3: "97 ms", 4: "2443 ms", 5: "11 min"}
		alphaRL := map[int]string{3: "6 min", 4: "30 min", 5: "~1050 min"}
		alphaS := map[int]string{3: "0.4 s", 4: "0.6 s", 5: "~345 min"}
		bounds := map[int]int{3: 11, 4: 20, 5: 33}
		maxN := 4
		if c.slow {
			maxN = 5
		}
		for n := 3; n <= maxN; n++ {
			set := isa.NewCmov(n, 1)
			opt := enum.ConfigBest()
			opt.MaxLen = bounds[n]
			res := enum.Run(set, opt)
			if res.Length != bounds[n] {
				return fmt.Errorf("n=%d: length %d, want %d", n, res.Length, bounds[n])
			}
			t.row(fmt.Sprint(n), ms(res.Elapsed), paperEnum[n], alphaRL[n], alphaS[n])
		}
		if !c.slow {
			t.row("5", "(run with -slow: ~8 s)", paperEnum[5], alphaRL[5], alphaS[5])
		}
		t.flush(c.w)
		c.printf("\nAlphaDev numbers quoted from the paper (code unavailable; TPU v3/v4 cluster).\n")
		return nil
	})

	register("states", "§5.1 states enumerated by the best configuration", false, func(c *ctx) error {
		c.section("States enumerated (paper: 7e3 / 7e4 / 6e6; AlphaDev: 4e5 / 1e6 / 6e6)")
		var t tableWriter
		t.row("n", "expanded", "generated", "elapsed")
		bounds := map[int]int{3: 11, 4: 20, 5: 33}
		maxN := 4
		if c.slow {
			maxN = 5
		}
		for n := 3; n <= maxN; n++ {
			set := isa.NewCmov(n, 1)
			opt := enum.ConfigBest()
			opt.MaxLen = bounds[n]
			res := enum.Run(set, opt)
			t.row(fmt.Sprint(n), fmt.Sprint(res.Expanded), fmt.Sprint(res.Generated), ms(res.Elapsed))
		}
		t.flush(c.w)
		return nil
	})

	register("ablation", "§5.2 enum optimization ablation on n=3", false, func(c *ctx) error {
		c.section("Enumerative-approach ablation, n=3 (paper times in parentheses)")
		base := func() enum.Options {
			o := enum.ConfigBase()
			o.MaxLen = 11
			return o
		}
		rows := []struct {
			name  string
			paper string
			mod   func(o *enum.Options)
		}{
			{"dijkstra, single core", "56 s", func(o *enum.Options) { o.Heuristic = enum.HeurNone; o.MaxLen = 0 }},
			{"dijkstra, parallel ×2", "—", func(o *enum.Options) { o.Heuristic = enum.HeurNone; o.MaxLen = 0; o.Workers = 2 }},
			{"dijkstra, parallel ×4", "—", func(o *enum.Options) { o.Heuristic = enum.HeurNone; o.MaxLen = 0; o.Workers = 4 }},
			{"dijkstra, parallel ×8", "17 s", func(o *enum.Options) { o.Heuristic = enum.HeurNone; o.MaxLen = 0; o.Workers = 8 }},
			{"(I) A*, dedup, no heuristic", "219 s", func(o *enum.Options) {}},
			{"(I) + permutation count", "1713 ms", func(o *enum.Options) { o.Heuristic = enum.HeurPermCount }},
			{"(I) + register assignment count", "2582 ms", func(o *enum.Options) { o.Heuristic = enum.HeurAsgCount }},
			{"(I) + assignment instructions needed", "7176 ms", func(o *enum.Options) { o.Heuristic = enum.HeurDistMax; o.UseDistPrune = true }},
			{"(I) + cut 2", "37 s", func(o *enum.Options) { o.Cut, o.CutK = enum.CutFactor, 2 }},
			{"(I) + cut 1.5", "3221 ms", func(o *enum.Options) { o.Cut, o.CutK = enum.CutFactor, 1.5 }},
			{"(I) + cut 1", "325 ms", func(o *enum.Options) { o.Cut, o.CutK = enum.CutFactor, 1 }},
			{"(I) + cut +2", "16 s", func(o *enum.Options) { o.Cut, o.CutK = enum.CutAdditive, 2 }},
			{"(I) + assignment optimal instructions", "90 s", func(o *enum.Options) { o.UseActionGuide = true; o.UseDistPrune = true }},
			{"(I) + assignment viability check", "8646 ms", func(o *enum.Options) { o.UseDistPrune = true }},
			{"(II) permcount+guide+viability", "690 ms", func(o *enum.Options) {
				o.Heuristic = enum.HeurPermCount
				o.UseActionGuide = true
				o.UseDistPrune = true
			}},
			{"(III) = (II) + cut 1", "97 ms", func(o *enum.Options) {
				o.Heuristic = enum.HeurPermCount
				o.UseActionGuide = true
				o.UseDistPrune = true
				o.Cut, o.CutK = enum.CutFactor, 1
			}},
		}
		var t tableWriter
		t.row("configuration", "time", "expanded", "length", "paper")
		set := isa.NewCmov(3, 1)
		for _, r := range rows {
			o := base()
			r.mod(&o)
			res := enum.Run(set, o)
			t.row(r.name, ms(res.Elapsed), fmt.Sprint(res.Expanded), fmt.Sprint(res.Length), "("+r.paper+")")
		}
		t.flush(c.w)
		c.printf("\nNotes: the Dijkstra rows search unbounded; the (I)-based rows use the\nlength bound 11, as the paper's protocol implies. The ×2/×4/×8 rows share\none sharded-merge engine and produce byte-identical results; on\nsingle-core hosts they pay coordination overhead without speedup (the\npaper's 3.3× was measured on 16 cores). See `make bench` / BENCH_enum.json\nfor the throughput comparison against the old sequential-merge engine.\n")
		return nil
	})

	register("cutk", "§5.2 cut-constant table: time and surviving solutions", false, func(c *ctx) error {
		c.section("Cut constant k (first-solution time, config III; solutions from all-solutions runs)")
		var t tableWriter
		t.row("k", "time n=3", "time n=4", "solutions n=3", "paper n=3 time", "paper n=4 time", "paper sol.")
		paper := map[float64][3]string{
			1:   {"97 ms", "2443 ms", "222"},
			1.5: {"215 ms", "82 s", "838"},
			2:   {"629 ms", "763 s", "5602"},
			3:   {"631 ms", "—", "5602"},
			4:   {"623 ms", "—", "5602"},
		}
		for _, k := range []float64{1, 1.5, 2, 3, 4} {
			set3 := isa.NewCmov(3, 1)
			o := enum.ConfigBest()
			o.MaxLen = 11
			o.Cut, o.CutK = enum.CutFactor, k
			r3 := enum.Run(set3, o)

			n4time := "(-slow)"
			if c.slow || k <= 1.5 {
				set4 := isa.NewCmov(4, 1)
				o4 := enum.ConfigBest()
				o4.MaxLen = 20
				o4.Cut, o4.CutK = enum.CutFactor, k
				o4.Timeout = 30 * time.Minute
				r4 := enum.Run(set4, o4)
				if r4.Length == 20 {
					n4time = ms(r4.Elapsed)
				} else {
					n4time = "timeout"
				}
			}

			oa := enum.ConfigAllSolutions()
			oa.MaxLen = 11
			oa.Cut, oa.CutK = enum.CutFactor, k
			oa.MaxSolutions = 1
			ra := enum.Run(set3, oa)

			p := paper[k]
			t.row(fmt.Sprint(k), ms(r3.Elapsed), n4time, fmt.Sprint(ra.SolutionCount), "("+p[0]+")", "("+p[1]+")", "("+p[2]+")")
		}
		t.flush(c.w)
		c.printf("\nSurvivor counts at lethal cuts depend on traversal order (see EXPERIMENTS.md T10).\n")
		return nil
	})

	register("solspace", "§5.1/§5.3 solution-space statistics for n=3 (and sampled n=4)", false, func(c *ctx) error {
		c.section("Solution space, n=3")
		set := isa.NewCmov(3, 1)
		o := enum.ConfigAllSolutions()
		o.MaxLen = 11
		res := enum.Run(set, o)
		combos := verify.DistinctCommandKeys(res.Programs)
		safe := 0
		for _, p := range res.Programs {
			if verify.SortsDuplicates(set, p) {
				safe++
			}
		}
		var t tableWriter
		t.row("metric", "this repo", "paper")
		t.row("optimal length", fmt.Sprint(res.Length), "11")
		t.row("optimal solutions", fmt.Sprint(res.SolutionCount), "5602")
		t.row("distinct command combinations", fmt.Sprint(combos), "23")
		t.row("duplicate-safe solutions", fmt.Sprint(safe), "(not studied)")
		t.row("enumeration time", ms(res.Elapsed), "~30 min (artifact)")
		t.flush(c.w)

		c.section("Solution space, n=4 (k=1 sample under state budget)")
		set4 := isa.NewCmov(4, 1)
		o4 := enum.ConfigAllSolutions()
		o4.MaxLen = 20
		o4.Cut, o4.CutK = enum.CutFactor, 1
		o4.StateBudget = 2_000_000
		o4.MaxSolutions = 4000
		res4 := enum.Run(set4, o4)
		scores := map[int]int{}
		for _, p := range res4.Programs {
			scores[uarch.Score(p)]++
		}
		coverage := "budget-capped"
		if res4.Exhausted {
			coverage = "k=1 space exhausted (complete count)"
		}
		t.row("metric", "this repo", "paper")
		t.row("optimal length", fmt.Sprint(res4.Length), "20")
		t.row("k=1 solution count ("+coverage+")", fmt.Sprint(res4.SolutionCount), "2233360 (k=1, week-long run)")
		t.row("sampled programs", fmt.Sprint(len(res4.Programs)), "4000")
		t.row("distinct command combinations (sample)", fmt.Sprint(verify.DistinctCommandKeys(res4.Programs)), "63 (full set)")
		t.flush(c.w)
		c.printf("score histogram (paper reports scores {55,58,61,64,67,70}):\n")
		for s := 50; s <= 75; s++ {
			if scores[s] > 0 {
				c.printf("  score %d: %d programs\n", s, scores[s])
			}
		}
		return nil
	})

	register("dupsafe", "extension: duplicate-safe synthesis over weak orders", false, func(c *ctx) error {
		c.section("Duplicate-safe synthesis (weak-order suite; repository extension)")
		var t tableWriter
		t.row("set", "length", "time", "expanded", "verified on")
		for _, tc := range []struct {
			set   *isa.Set
			bound int
		}{
			{isa.NewCmov(3, 1), 11},
			{isa.NewMinMax(3, 1), 8},
			{isa.NewCmov(4, 1), 20},
		} {
			o := enum.ConfigBest()
			o.MaxLen = tc.bound
			o.DuplicateSafe = true
			res := enum.Run(tc.set, o)
			suite := fmt.Sprintf("%d weak orders", len(perm.WeakOrders(tc.set.N)))
			t.row(tc.set.String(), fmt.Sprint(res.Length), ms(res.Elapsed), fmt.Sprint(res.Expanded), suite)
			if res.Program != nil && !verify.SortsDuplicates(tc.set, res.Program) {
				return fmt.Errorf("%v: duplicate-safe kernel failed verification", tc.set)
			}
		}
		t.flush(c.w)
		c.printf("\nSame optimal lengths as the permutation suite: duplicate-safety is free.\n")
		c.printf("Of the 5602 permutation-correct optimal n=3 kernels only 2028 sort ties.\n")
		return nil
	})

	register("proof", "§5.3 lower bounds by exhaustion (n=3 length 10; n=4 length 19 budgeted)", true, func(c *ctx) error {
		c.section("Lower-bound proofs (optimality-preserving pruning only)")
		set := isa.NewCmov(3, 1)
		res := enum.Run(set, enum.ConfigProof(10))
		c.printf("n=3, length ≤ 10: solutions=%d exhausted=%v proof=%v (%s, %d states)\n",
			res.SolutionCount, res.Exhausted, res.Proof, ms(res.Elapsed), res.Expanded)
		c.printf("⇒ 11 is the minimal n=3 kernel length (validates AlphaDev's 3-day check).\n\n")

		mm := isa.NewMinMax(3, 1)
		mres := enum.Run(mm, enum.ConfigProof(7))
		c.printf("minmax n=3, length ≤ 7: solutions=%d proof=%v (%s)\n", mres.SolutionCount, mres.Proof, ms(mres.Elapsed))
		c.printf("⇒ 8 is the minimal n=3 min/max kernel length (§5.4 minimality).\n\n")

		// The n=4 length-19 exhaustion took the paper two weeks; here we
		// run a budgeted slice to exercise the machinery and report how
		// far it got.
		set4 := isa.NewCmov(4, 1)
		o := enum.ConfigProof(19)
		o.StateBudget = 3_000_000
		res4 := enum.Run(set4, o)
		c.printf("n=4, length ≤ 19 (budgeted %d states): solutions=%d exhausted=%v (%s)\n",
			o.StateBudget, res4.SolutionCount, res4.Exhausted, ms(res4.Elapsed))
		c.printf("Full exhaustion requires ≈2 weeks (paper); machinery verified on the n=3/minmax bounds above.\n")
		return nil
	})
}
